// Command bots runs a single BOTS benchmark, in the spirit of the
// original suite's per-application drivers: pick an application, an
// input class, a version (tied/untied × cut-off × generator), a
// thread count, and optionally a runtime cut-off and scheduling
// policy; the driver runs the sequential reference, the parallel
// version, verifies the result, and reports runtime statistics.
//
// Examples:
//
//	bots -list
//	bots -bench sort -class medium -version untied -threads 4
//	bots -bench nqueens -version manual-untied -cutoff 5 -verify=false
//	bots -bench fib -version none-tied -runtime-cutoff maxtasks
//	bots -bench sort -class small -threads 8 -policy centralized
//	bots -bench sparselu -version for-tied -simulate 32
//	bots -bench sparselu -version dep-tied -class medium
//	bots -bench strassen -version future-untied -threads 8
//	bots -bench fib -class test -json            # machine-readable lab Record
//	bots -bench fib -json -store bots-lab.jsonl  # ...persisted/cached in the store
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	_ "bots/internal/apps/all"
	"bots/internal/core"
	"bots/internal/lab"
	"bots/internal/obs"
	"bots/internal/omp"
	"bots/internal/sim"
	"bots/internal/trace"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list benchmarks and versions")
		bench     = flag.String("bench", "", "benchmark name")
		className = flag.String("class", "small", "input class: test/small/medium/large")
		version   = flag.String("version", "", "version to run (default: the benchmark's best version)")
		threads   = flag.Int("threads", 4, "team size")
		cutoff    = flag.Int("cutoff", 0, "application depth cut-off override (0 = default)")
		rtCutoff  = flag.String("runtime-cutoff", "none", "runtime cut-off: "+strings.Join(omp.Cutoffs(), "/"))
		policy    = flag.String("policy", "workfirst", "task scheduler: "+strings.Join(omp.Schedulers(), "/"))
		verify    = flag.Bool("verify", true, "run the sequential reference and verify the parallel result")
		simulate  = flag.Int("simulate", 0, "also record a task graph and simulate this many virtual threads (0 = off)")
		jsonOut   = flag.Bool("json", false, "run the full lab pipeline (seq reference + verify + simulate; -simulate 0 means the recording team size) and emit the machine-readable lab Record instead of text")
		storePath = flag.String("store", "", "with -json: persist the record in (and answer cache hits from) this lab store")
		obsDump   = flag.Bool("obs", false, "after the run, dump its runtime counters as bots_run_* Prometheus text exposition on stdout")
		procs     = flag.Int("procs", 0, "set GOMAXPROCS for the run — the oversubscription axis (0 = runtime default; -threads greater than -procs oversubscribes)")
		pin       = flag.Bool("pin", false, "wire each team worker to an OS thread for the run (the pinning axis)")
	)
	flag.Parse()

	if *list {
		for _, b := range core.All() {
			fmt.Printf("%-10s best=%-14s versions=%s\n", b.Name, b.BestVersion, strings.Join(b.Versions, ","))
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "bots: -bench is required (or -list); see -h")
		os.Exit(2)
	}
	b, err := core.Get(*bench)
	fatal(err)
	class, err := core.ParseClass(*className)
	fatal(err)
	v := *version
	if v == "" {
		v = b.BestVersion
	}
	if !b.HasVersion(v) {
		fatal(fmt.Errorf("benchmark %q has no version %q (have %s)",
			b.Name, v, strings.Join(b.Versions, ", ")))
	}

	if *jsonOut {
		// The -json path runs the cell through the lab pipeline so
		// one-off runs and sweep results share one Record schema. The
		// pipeline always runs the sequential reference (it calibrates
		// the simulator) and always simulates; flags that would skip
		// those stages in text mode do not apply here.
		if !*verify {
			fmt.Fprintln(os.Stderr, "bots: note: -json always runs the sequential reference and verification; -verify=false is ignored")
		}
		spec := lab.JobSpec{
			Bench:         b.Name,
			Version:       v,
			Class:         class.String(),
			Threads:       *threads,
			CutoffDepth:   *cutoff,
			RuntimeCutoff: *rtCutoff,
			Policy:        *policy,
			Simulate:      *simulate,
			Procs:         *procs,
			Pin:           *pin,
		}
		var runner lab.Runner = lab.NewDirectRunner()
		if *storePath != "" {
			store, err := lab.OpenStore(*storePath)
			fatal(err)
			defer store.Close()
			runner = lab.NewCachedRunner(store, runner)
		}
		rec, err := runner.Run(spec)
		fatal(err)
		fatal(rec.WriteJSON(os.Stdout))
		if !rec.Verified {
			fmt.Fprintf(os.Stderr, "bots: verification failed: %s\n", rec.VerifyError)
			os.Exit(1)
		}
		return
	}

	cfg := core.RunConfig{
		Class:       class,
		Version:     v,
		Threads:     *threads,
		CutoffDepth: *cutoff,
		Scheduler:   *policy,
		Procs:       *procs,
		PinWorkers:  *pin,
	}
	if *procs > 0 {
		// The process exits after the run, so no restore is needed;
		// setting it before the sequential reference keeps both sides
		// of a -verify run under the same proc count.
		runtime.GOMAXPROCS(*procs)
	}
	// Both name vocabularies resolve through the omp registries, the
	// same single source of truth lab manifests validate against.
	rc, err := omp.NewCutoff(*rtCutoff)
	fatal(err)
	cfg.RuntimeCutoff = rc
	_, err = omp.NewScheduler(*policy)
	fatal(err)

	var seq *core.SeqResult
	if *verify || *simulate > 0 {
		seq, err = b.Seq(class)
		fatal(err)
		fmt.Printf("sequential: %v (work=%d units, mem≈%d bytes)\n", seq.Elapsed, seq.Work, seq.MemBytes)
	}

	var rec *trace.Recorder
	if *simulate > 0 {
		rec = trace.NewRecorder()
		cfg.Threads = *simulate
		cfg.Recorder = rec
		fmt.Printf("note: -simulate records on a %d-thread team\n", *simulate)
	}
	res, err := b.Run(cfg)
	fatal(err)
	fmt.Printf("parallel %s/%s on %d threads: %v\n", b.Name, v, cfg.Threads, res.Elapsed)
	fmt.Printf("  %s\n", res.Stats)
	if res.Metric > 0 {
		fmt.Printf("  metric: %.0f (nodes visited; throughput = %.0f nodes/s)\n",
			res.Metric, res.Metric/res.Elapsed.Seconds())
	}
	if *verify {
		if err := b.Check(seq, res); err != nil {
			fatal(err)
		}
		fmt.Println("  verification: OK")
	}
	if *obsDump {
		// One-shot exposition dump of the finished region's counters —
		// the same vocabulary a live team publishes (obs/DESIGN.md
		// §11), labeled with the run's cell coordinates so dumps from
		// different cells can be concatenated and still be valid.
		reg := obs.NewRegistry()
		st := *res.Stats
		omp.RegisterStats(reg, "bots_run", func() omp.Stats { return st },
			obs.Label{Name: "bench", Value: b.Name},
			obs.Label{Name: "version", Value: v},
			obs.Label{Name: "scheduler", Value: *policy},
			obs.Label{Name: "threads", Value: strconv.Itoa(cfg.Threads)})
		reg.GaugeFunc("bots_run_elapsed_seconds", "Wall-clock time of the parallel run.",
			func() float64 { return res.Elapsed.Seconds() },
			obs.Label{Name: "bench", Value: b.Name},
			obs.Label{Name: "version", Value: v},
			obs.Label{Name: "scheduler", Value: *policy},
			obs.Label{Name: "threads", Value: strconv.Itoa(cfg.Threads)})
		fatal(reg.WritePrometheus(os.Stdout))
	}
	if *simulate > 0 {
		tr := rec.Finish()
		if err := tr.Validate(); err != nil {
			fatal(err)
		}
		p := sim.DefaultOverheads()
		p.WorkUnitNS = float64(seq.Elapsed.Nanoseconds()) / float64(seq.Work)
		p.MemFraction = b.Profile.MemFraction
		p.BandwidthCap = b.Profile.BandwidthCap
		p.Scheduler = *policy // replay under the matching queue discipline
		r, err := sim.Run(tr, *simulate, p)
		fatal(err)
		fmt.Printf("  simulated on %d virtual threads: %s\n", *simulate, r)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bots:", err)
		os.Exit(1)
	}
}
