// Command bots runs a single BOTS benchmark, in the spirit of the
// original suite's per-application drivers: pick an application, an
// input class, a version (tied/untied × cut-off × generator), a
// thread count, and optionally a runtime cut-off and scheduling
// policy; the driver runs the sequential reference, the parallel
// version, verifies the result, and reports runtime statistics.
//
// Examples:
//
//	bots -list
//	bots -bench sort -class medium -version untied -threads 4
//	bots -bench nqueens -version manual-untied -cutoff 5 -verify=false
//	bots -bench fib -version none-tied -runtime-cutoff maxtasks
//	bots -bench sparselu -version for-tied -simulate 32
//	bots -bench sparselu -version dep-tied -class medium
//	bots -bench strassen -version future-untied -threads 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	_ "bots/internal/apps/all"
	"bots/internal/core"
	"bots/internal/omp"
	"bots/internal/sim"
	"bots/internal/trace"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list benchmarks and versions")
		bench     = flag.String("bench", "", "benchmark name")
		className = flag.String("class", "small", "input class: test/small/medium/large")
		version   = flag.String("version", "", "version to run (default: the benchmark's best version)")
		threads   = flag.Int("threads", 4, "team size")
		cutoff    = flag.Int("cutoff", 0, "application depth cut-off override (0 = default)")
		rtCutoff  = flag.String("runtime-cutoff", "none", "runtime cut-off: none/maxtasks/maxqueue/adaptive")
		policy    = flag.String("policy", "workfirst", "local scheduling policy: workfirst/breadthfirst")
		verify    = flag.Bool("verify", true, "run the sequential reference and verify the parallel result")
		simulate  = flag.Int("simulate", 0, "also record a task graph and simulate this many virtual threads (0 = off)")
	)
	flag.Parse()

	if *list {
		for _, b := range core.All() {
			fmt.Printf("%-10s best=%-14s versions=%s\n", b.Name, b.BestVersion, strings.Join(b.Versions, ","))
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "bots: -bench is required (or -list); see -h")
		os.Exit(2)
	}
	b, err := core.Get(*bench)
	fatal(err)
	class, err := core.ParseClass(*className)
	fatal(err)
	v := *version
	if v == "" {
		v = b.BestVersion
	}
	if !b.HasVersion(v) {
		fatal(fmt.Errorf("benchmark %q has no version %q (have %s)",
			b.Name, v, strings.Join(b.Versions, ", ")))
	}
	cfg := core.RunConfig{
		Class:       class,
		Version:     v,
		Threads:     *threads,
		CutoffDepth: *cutoff,
	}
	switch *rtCutoff {
	case "none", "":
	case "maxtasks":
		cfg.RuntimeCutoff = omp.MaxTasks{}
	case "maxqueue":
		cfg.RuntimeCutoff = omp.MaxQueue{}
	case "adaptive":
		cfg.RuntimeCutoff = omp.Adaptive{}
	default:
		fatal(fmt.Errorf("unknown -runtime-cutoff %q", *rtCutoff))
	}
	switch *policy {
	case "workfirst", "":
	case "breadthfirst":
		cfg.Policy = omp.BreadthFirst
	default:
		fatal(fmt.Errorf("unknown -policy %q", *policy))
	}

	var seq *core.SeqResult
	if *verify || *simulate > 0 {
		seq, err = b.Seq(class)
		fatal(err)
		fmt.Printf("sequential: %v (work=%d units, mem≈%d bytes)\n", seq.Elapsed, seq.Work, seq.MemBytes)
	}

	var rec *trace.Recorder
	if *simulate > 0 {
		rec = trace.NewRecorder()
		cfg.Threads = *simulate
		cfg.Recorder = rec
		fmt.Printf("note: -simulate records on a %d-thread team\n", *simulate)
	}
	res, err := b.Run(cfg)
	fatal(err)
	fmt.Printf("parallel %s/%s on %d threads: %v\n", b.Name, v, cfg.Threads, res.Elapsed)
	fmt.Printf("  %s\n", res.Stats)
	if res.Metric > 0 {
		fmt.Printf("  metric: %.0f (nodes visited; throughput = %.0f nodes/s)\n",
			res.Metric, res.Metric/res.Elapsed.Seconds())
	}
	if *verify {
		if err := b.Check(seq, res); err != nil {
			fatal(err)
		}
		fmt.Println("  verification: OK")
	}
	if *simulate > 0 {
		tr := rec.Finish()
		if err := tr.Validate(); err != nil {
			fatal(err)
		}
		p := sim.DefaultOverheads()
		p.WorkUnitNS = float64(seq.Elapsed.Nanoseconds()) / float64(seq.Work)
		p.MemFraction = b.Profile.MemFraction
		p.BandwidthCap = b.Profile.BandwidthCap
		r, err := sim.Run(tr, *simulate, p)
		fatal(err)
		fmt.Printf("  simulated on %d virtual threads: %s\n", *simulate, r)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bots:", err)
		os.Exit(1)
	}
}
