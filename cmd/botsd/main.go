// Command botsd is the fleet worker daemon: it registers with a
// botslab coordinator (started with -fleet), leases sweep cells over
// HTTP, executes them through the same lab Executor an in-process run
// uses, heartbeats while measuring, and ships the finished Records
// back. Several botsd processes — on one box or many — turn one
// botslab sweep into a distributed run with no manifest changes.
//
//	botslab -serve :8080 -fleet -store bots-lab.jsonl &
//	botsd -coordinator http://localhost:8080 -capacity 4
//
// SIGTERM/SIGINT drains gracefully: the daemon stops taking leases,
// finishes what it holds, delivers those results, deregisters, and
// exits 0. A coordinator that is not up yet is retried with backoff
// (-startup-retries); SIGTERM during that wait also exits 0.
//
// The -chaos-* flags route the daemon's coordinator traffic through
// the internal/chaos fault injector (DESIGN.md §14) — deterministic,
// seeded latency, drops, and clock offset for resilience experiments:
//
//	botsd -coordinator http://host:8080 \
//	  -chaos-latency 500ms -chaos-jitter 150ms -chaos-drop 0.1 -chaos-seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	_ "bots/internal/apps/all"
	"bots/internal/chaos"
	"bots/internal/lab"
	"bots/internal/obs"
)

func main() {
	defaultName, _ := os.Hostname()
	if defaultName == "" {
		defaultName = "botsd"
	}
	defaultName = fmt.Sprintf("%s-%d", defaultName, os.Getpid())
	var (
		coordinator    = flag.String("coordinator", "http://localhost:8080", "botslab coordinator base URL")
		name           = flag.String("name", defaultName, "worker name recorded in result provenance")
		capacity       = flag.Int("capacity", runtime.NumCPU(), "max concurrently executing leases")
		poll           = flag.Duration("poll", 250*time.Millisecond, "idle lease-poll interval")
		requestTimeout = flag.Duration("request-timeout", 5*time.Second, "per-request coordinator timeout")
		wireRetries    = flag.Int("wire-retries", 2, "retries per coordinator request on transport errors and 5xx (never 4xx)")
		startupRetries = flag.Int("startup-retries", 5, "registration retries (with backoff) while the coordinator is unreachable at startup")
		metricsAddr    = flag.String("metrics-addr", "", "address to serve /metrics on (e.g. :9091); empty = no metrics endpoint")

		chaosLatency = flag.Duration("chaos-latency", 0, "inject this base latency into every coordinator request")
		chaosJitter  = flag.Duration("chaos-jitter", 0, "uniform ± jitter on the injected latency")
		chaosDrop    = flag.Float64("chaos-drop", 0, "probability [0,1] a coordinator request or response is dropped")
		chaosSeed    = flag.Int64("chaos-seed", 1, "seed for the chaos injector's deterministic fault sequence")
		chaosOffset  = flag.Duration("chaos-clock-offset", 0, "skew this worker's clock by the given offset")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "botsd[%s]: %s\n", *name, fmt.Sprintf(format, args...))
	}
	w := &lab.WorkerClient{
		Coordinator:    *coordinator,
		Name:           *name,
		Capacity:       *capacity,
		Poll:           *poll,
		RequestTimeout: *requestTimeout,
		WireRetries:    *wireRetries,
		StartupRetries: *startupRetries,
		Logf:           logf,
	}

	if *chaosLatency > 0 || *chaosJitter > 0 || *chaosDrop > 0 {
		inj := chaos.New(chaos.Config{
			Seed:     *chaosSeed,
			Latency:  *chaosLatency,
			Jitter:   *chaosJitter,
			DropRate: *chaosDrop,
		})
		w.Client = &http.Client{Transport: inj.Transport(nil)}
		logf("chaos wire enabled: latency=%s±%s drop=%.2f seed=%d", *chaosLatency, *chaosJitter, *chaosDrop, *chaosSeed)
	}
	if *chaosOffset != 0 {
		w.Clock = chaos.OffsetClock(nil, *chaosOffset)
		logf("chaos clock enabled: offset=%s", *chaosOffset)
	}

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		w.RegisterObs(reg)
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "botsd:", err)
			os.Exit(1)
		}
		logf("metrics on http://%s/metrics", ln.Addr())
		go http.Serve(ln, mux)
	}

	if err := w.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "botsd:", err)
		os.Exit(1)
	}
}
