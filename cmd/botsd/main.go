// Command botsd is the fleet worker daemon: it registers with a
// botslab coordinator (started with -fleet), leases sweep cells over
// HTTP, executes them through the same lab Executor an in-process run
// uses, heartbeats while measuring, and ships the finished Records
// back. Several botsd processes — on one box or many — turn one
// botslab sweep into a distributed run with no manifest changes.
//
//	botslab -serve :8080 -fleet -store bots-lab.jsonl &
//	botsd -coordinator http://localhost:8080 -capacity 4
//
// SIGTERM/SIGINT drains gracefully: the daemon stops taking leases,
// finishes what it holds, delivers those results, deregisters, and
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	_ "bots/internal/apps/all"
	"bots/internal/lab"
)

func main() {
	defaultName, _ := os.Hostname()
	if defaultName == "" {
		defaultName = "botsd"
	}
	defaultName = fmt.Sprintf("%s-%d", defaultName, os.Getpid())
	var (
		coordinator = flag.String("coordinator", "http://localhost:8080", "botslab coordinator base URL")
		name        = flag.String("name", defaultName, "worker name recorded in result provenance")
		capacity    = flag.Int("capacity", runtime.NumCPU(), "max concurrently executing leases")
		poll        = flag.Duration("poll", 250*time.Millisecond, "idle lease-poll interval")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	w := &lab.WorkerClient{
		Coordinator: *coordinator,
		Name:        *name,
		Capacity:    *capacity,
		Poll:        *poll,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "botsd[%s]: %s\n", *name, fmt.Sprintf(format, args...))
		},
	}
	if err := w.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "botsd:", err)
		os.Exit(1)
	}
}
