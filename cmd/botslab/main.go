// Command botslab is the experiment-lab driver: it expands
// declarative sweep manifests over the suite's configuration axes,
// runs the cells on a bounded worker pool with a persistent
// content-addressed result store, and serves the whole thing over
// HTTP (`bots serve`-style).
//
// One-shot sweep (CI smoke, batch measurement):
//
//	botslab -manifest examples/manifests/ci-smoke.json -store /tmp/lab.jsonl
//
// HTTP service:
//
//	botslab -serve :8080 -store bots-lab.jsonl
//	curl -X POST localhost:8080/sweeps -d @examples/manifests/ci-smoke.json
//	curl localhost:8080/sweeps/s1                 # status
//	curl localhost:8080/sweeps/s1?follow=true     # NDJSON progress stream
//	curl -X DELETE localhost:8080/sweeps/s1       # cancel
//	curl 'localhost:8080/results?bench=fib&threads=2'
//	curl 'localhost:8080/report/fig4?class=test&threads=1,2,4'
//
// Fleet coordinator (distributed sweeps; pair with cmd/botsd):
//
//	botslab -serve :8080 -fleet -store bots-lab.jsonl
//	botsd -coordinator http://host:8080 &          # on each worker box
//	curl localhost:8080/workers                    # fleet status
//
// With -fleet, sweep cells that miss the cache are leased out to
// registered botsd workers instead of executing in-process; the store
// contract is unchanged (hits still short-circuit locally), so
// `-fleet -manifest` transparently fans a sweep across the fleet.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	_ "bots/internal/apps/all"
	"bots/internal/lab"
	"bots/internal/obs"
	"bots/internal/report"
)

func main() {
	var (
		storePath   = flag.String("store", "bots-lab.jsonl", "lab result store (JSONL); empty = in-memory only")
		manifest    = flag.String("manifest", "", "sweep manifest to run to completion")
		serve       = flag.String("serve", "", "address to serve the lab HTTP API on (e.g. :8080); empty = run the manifest and exit")
		workers     = flag.Int("workers", 0, "dispatcher worker-pool size (0 = NumCPU locally, 64 with -fleet)")
		retries     = flag.Int("retries", 1, "per-job retries after a failure")
		progress    = flag.Bool("progress", true, "print per-job progress lines for -manifest sweeps")
		fleet       = flag.Bool("fleet", false, "dispatch cache misses to registered botsd workers instead of executing in-process (requires -serve)")
		leaseTTL    = flag.Duration("lease-ttl", 10*time.Second, "fleet lease lifetime without a heartbeat")
		maxAttempts = flag.Int("max-attempts", 3, "fleet lease attempts per job before it fails")
		journalPath = flag.String("journal", "", "fleet write-ahead journal for coordinator crash recovery (default <store>.journal with -fleet; 'off' disables)")
	)
	flag.Parse()
	if *manifest == "" && *serve == "" {
		fmt.Fprintln(os.Stderr, "botslab: nothing to do: pass -manifest and/or -serve; see -h")
		os.Exit(2)
	}
	if *fleet && *serve == "" {
		fmt.Fprintln(os.Stderr, "botslab: -fleet needs -serve: workers lease jobs over the HTTP API")
		os.Exit(2)
	}

	store, err := lab.OpenStore(*storePath)
	fatal(err)
	defer store.Close()
	if rep := store.TornTail(); rep != nil {
		fmt.Fprintf(os.Stderr, "botslab: store %s recovered from a crash: %s\n", *storePath, rep.Reason)
	}

	// The write-ahead journal makes a -fleet coordinator restartable:
	// it records sweep submissions and terminal cell outcomes, and a
	// fresh process replays it to resubmit whatever never finished.
	var journal *lab.Journal
	var recovery *lab.Recovery
	jPath := *journalPath
	if jPath == "" && *fleet && *storePath != "" {
		jPath = *storePath + ".journal"
	}
	if jPath != "" && jPath != "off" {
		journal, recovery, err = lab.OpenJournal(jPath)
		fatal(err)
		defer journal.Close()
	}

	// The runner chain decides where a cache miss executes: in-process
	// (DirectRunner) or leased out to the fleet (RemoteRunner). Either
	// way CachedRunner short-circuits hits from the shared store first.
	var coord *lab.Fleet
	var next lab.Runner
	direct := lab.NewDirectRunner()
	poolSize := *workers
	if *fleet {
		coord = lab.NewFleet(lab.FleetConfig{
			LeaseTTL:    *leaseTTL,
			MaxAttempts: *maxAttempts,
			Store:       store,
			Journal:     journal,
		})
		defer coord.Close()
		next = lab.NewRemoteRunner(coord)
		if poolSize == 0 {
			// Fleet dispatch is blocking-wait, not CPU work: size the
			// pool for fan-out, not for cores.
			poolSize = 64
		}
	} else {
		next = direct
		if poolSize == 0 {
			poolSize = runtime.NumCPU()
		}
	}
	runner := lab.NewCachedRunner(store, next)
	disp := lab.NewDispatcher(runner, poolSize, *retries)
	disp.Journal = journal
	defer disp.Close()

	if recovery != nil && recovery.Events > 0 {
		fmt.Fprintf(os.Stderr, "botslab: journal %s replayed %d events (%d grants, %d completions)\n",
			jPath, recovery.Events, recovery.Grants, recovery.Completions)
	}
	if recovery != nil {
		sweeps, cells, err := disp.Resume(recovery)
		fatal(err)
		if sweeps > 0 {
			fmt.Fprintf(os.Stderr, "botslab: resumed %d unfinished sweep(s), %d cell(s) resubmitted\n", sweeps, cells)
		}
	}

	// The server starts before any -manifest run: a fleet sweep needs
	// the registration/lease endpoints up so workers can join, and a
	// watcher can follow the sweep while it runs.
	if *serve != "" {
		server := &lab.Server{
			Disp:   disp,
			Store:  store,
			Fleet:  coord,
			Render: report.RenderFuncFor(runner),
			// The process-wide registry behind GET /metrics; the server
			// adds its bots_lab_* gauges on Handler construction.
			Obs: obs.NewRegistry(),
		}
		ln, err := net.Listen("tcp", *serve)
		fatal(err)
		mode := "local"
		if *fleet {
			mode = "fleet"
		}
		fmt.Fprintf(os.Stderr, "botslab: serving on %s (%s mode, store %s, %d records; /metrics + pprof mounted)\n",
			ln.Addr(), mode, *storePath, store.Len())
		go func() { fatal(http.Serve(ln, server.Handler())) }()
	}

	if *manifest != "" {
		f, err := os.Open(*manifest)
		fatal(err)
		spec, err := lab.ReadSweepSpec(f)
		f.Close()
		fatal(err)
		if *progress {
			disp.OnProgress = func(ev lab.ProgressEvent) {
				fmt.Fprintf(os.Stderr, "botslab: %s %-7s %s %s/%s class=%s threads=%d attempt=%d %s\n",
					ev.SweepID, ev.Job.Status, ev.Job.Key, ev.Job.Spec.Bench, ev.Job.Spec.Version,
					ev.Job.Spec.Class, ev.Job.Spec.Threads, ev.Job.Attempts, ev.Job.Error)
			}
		}
		sw, err := disp.Submit(spec)
		fatal(err)
		st := sw.Wait()
		fmt.Printf("sweep %s (%s): %d jobs, %d done, %d failed; %d cache hits, %d executions; store=%d records\n",
			st.ID, st.Name, st.Total, st.Done, st.Failed, runner.Hits(), direct.Exec.Executions(), store.Len())
		if st.Failed > 0 {
			for _, j := range st.Jobs {
				if j.Status == lab.JobFailed {
					fmt.Fprintf(os.Stderr, "botslab: failed %s %s/%s: %s\n",
						j.Key, j.Spec.Bench, j.Spec.Version, j.Error)
				}
			}
			if *serve == "" {
				os.Exit(1)
			}
		}
	}

	if *serve != "" {
		select {} // the HTTP goroutine serves until the process is killed
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "botslab:", err)
		os.Exit(1)
	}
}
