// Command botslab is the experiment-lab driver: it expands
// declarative sweep manifests over the suite's configuration axes,
// runs the cells on a bounded worker pool with a persistent
// content-addressed result store, and serves the whole thing over
// HTTP (`bots serve`-style).
//
// One-shot sweep (CI smoke, batch measurement):
//
//	botslab -manifest examples/manifests/ci-smoke.json -store /tmp/lab.jsonl
//
// HTTP service:
//
//	botslab -serve :8080 -store bots-lab.jsonl
//	curl -X POST localhost:8080/sweeps -d @examples/manifests/ci-smoke.json
//	curl localhost:8080/sweeps/s1                 # status
//	curl localhost:8080/sweeps/s1?follow=true     # NDJSON progress stream
//	curl 'localhost:8080/results?bench=fib&threads=2'
//	curl 'localhost:8080/report/fig4?class=test&threads=1,2,4'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"

	_ "bots/internal/apps/all"
	"bots/internal/lab"
	"bots/internal/obs"
	"bots/internal/report"
)

func main() {
	var (
		storePath = flag.String("store", "bots-lab.jsonl", "lab result store (JSONL); empty = in-memory only")
		manifest  = flag.String("manifest", "", "sweep manifest to run to completion before serving/exiting")
		serve     = flag.String("serve", "", "address to serve the lab HTTP API on (e.g. :8080); empty = run the manifest and exit")
		workers   = flag.Int("workers", runtime.NumCPU(), "dispatcher worker-pool size")
		retries   = flag.Int("retries", 1, "per-job retries after a failure")
		progress  = flag.Bool("progress", true, "print per-job progress lines for -manifest sweeps")
	)
	flag.Parse()
	if *manifest == "" && *serve == "" {
		fmt.Fprintln(os.Stderr, "botslab: nothing to do: pass -manifest and/or -serve; see -h")
		os.Exit(2)
	}

	store, err := lab.OpenStore(*storePath)
	fatal(err)
	defer store.Close()
	direct := lab.NewDirectRunner()
	runner := lab.NewCachedRunner(store, direct)
	disp := lab.NewDispatcher(runner, *workers, *retries)
	defer disp.Close()

	if *manifest != "" {
		f, err := os.Open(*manifest)
		fatal(err)
		spec, err := lab.ReadSweepSpec(f)
		f.Close()
		fatal(err)
		if *progress {
			disp.OnProgress = func(ev lab.ProgressEvent) {
				fmt.Fprintf(os.Stderr, "botslab: %s %-7s %s %s/%s class=%s threads=%d attempt=%d %s\n",
					ev.SweepID, ev.Job.Status, ev.Job.Key, ev.Job.Spec.Bench, ev.Job.Spec.Version,
					ev.Job.Spec.Class, ev.Job.Spec.Threads, ev.Job.Attempts, ev.Job.Error)
			}
		}
		sw, err := disp.Submit(spec)
		fatal(err)
		st := sw.Wait()
		fmt.Printf("sweep %s (%s): %d jobs, %d done, %d failed; %d cache hits, %d executions; store=%d records\n",
			st.ID, st.Name, st.Total, st.Done, st.Failed, runner.Hits(), direct.Exec.Executions(), store.Len())
		if st.Failed > 0 {
			for _, j := range st.Jobs {
				if j.Status == lab.JobFailed {
					fmt.Fprintf(os.Stderr, "botslab: failed %s %s/%s: %s\n",
						j.Key, j.Spec.Bench, j.Spec.Version, j.Error)
				}
			}
			if *serve == "" {
				os.Exit(1)
			}
		}
	}

	if *serve != "" {
		server := &lab.Server{
			Disp:   disp,
			Store:  store,
			Render: report.RenderFuncFor(runner),
			// The process-wide registry behind GET /metrics; the server
			// adds its bots_lab_* gauges on Handler construction.
			Obs: obs.NewRegistry(),
		}
		fmt.Fprintf(os.Stderr, "botslab: serving on %s (store %s, %d records; /metrics + pprof mounted)\n", *serve, *storePath, store.Len())
		fatal(http.ListenAndServe(*serve, server.Handler()))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "botslab:", err)
		os.Exit(1)
	}
}
