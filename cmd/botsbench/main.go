// Command botsbench runs the pinned performance suite (internal/perf)
// and emits the next BENCH_<n>.json of the repository's perf
// trajectory: spawn-path allocation counts (gated, host-independent),
// fib/nqueens spawn rates, per-scheduler steal throughput with
// contention counters, the strong-scaling suite (per-point speedup
// and gated parallel efficiency for fib/sort/strassen/nqueens/
// sparselu at 1,2,4,… workers), and sort/strassen end-to-end times —
// compared against the committed baseline
// (internal/perf/baseline.json).
//
// Continuous use:
//
//	botsbench                      # full suite, writes ./BENCH_<n>.json
//	botsbench -quick               # CI smoke sizes, gate still enforced
//	botsbench -store bots-lab.jsonl  # also ingest metrics into the lab store
//	botsbench -compare BENCH_0.json BENCH_1.json  # delta table, any two reports
//	botsbench -compare                 # delta of the newest two BENCH_*.json in -out
//
// The process exits non-zero when a gated metric regresses more than
// -max-regression against the baseline, so CI can run it directly.
// Timing metrics are informational (the committed baseline was
// measured on a different host than CI) and never fail the gate;
// scaling-efficiency metrics are gated but pin the measuring host's
// CPU count in their params, so they only compare against baselines
// from an equivalent host.
//
// Re-anchoring after a deliberate performance change:
//
//	botsbench -write-baseline internal/perf/baseline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"bots/internal/lab"
	"bots/internal/perf"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced CI-smoke sizes (fib 20, test-class macros, 1 rep)")
		threads  = flag.Int("threads", 4, "team size for parallel measurements")
		reps     = flag.Int("reps", 0, "timing repetitions (best-of); 0 = mode default")
		outDir   = flag.String("out", ".", "directory to emit BENCH_<n>.json into; empty = don't emit")
		baseline = flag.String("baseline", "", "baseline report to compare against; empty = embedded committed baseline")
		maxReg   = flag.Float64("max-regression", 0.25, "gated-metric regression threshold (fraction)")
		storeOpt = flag.String("store", "", "lab JSONL store to ingest the metrics into (optional)")
		writeTo  = flag.String("write-baseline", "", "write the run as a new baseline to this path and skip comparison")
		compare  = flag.Bool("compare", false, "compare two report files (botsbench -compare a.json b.json) and print a delta table instead of running the suite")
	)
	flag.Parse()

	if *compare {
		args := flag.Args()
		switch len(args) {
		case 0:
			// No operands: diff the newest two trajectory points in
			// -out (the CI benchmark-smoke job runs exactly this after
			// emitting its report, so every run's job summary shows
			// what moved since the previous committed BENCH_<n>.json).
			paths, err := perf.LatestBenchPaths(*outDir, 2)
			fatal(err)
			args = paths
			fmt.Printf("botsbench: comparing %s -> %s\n", args[0], args[1])
		case 2:
		default:
			fmt.Fprintln(os.Stderr, "botsbench: -compare takes two report files (old new), or none to diff the newest two BENCH_*.json in -out")
			os.Exit(2)
		}
		a, err := perf.ReadReport(args[0])
		fatal(err)
		b, err := perf.ReadReport(args[1])
		fatal(err)
		fmt.Print(perf.FormatComparison(a, b))
		return
	}

	rep, err := perf.Run(perf.Options{Quick: *quick, Threads: *threads, Reps: *reps})
	fatal(err)

	if *writeTo != "" {
		fatal(perf.WriteReport(rep, *writeTo))
		fmt.Printf("botsbench: wrote baseline %s (%d metrics)\n", *writeTo, len(rep.Metrics))
		printMetrics(rep)
		return
	}

	base, err := perf.LoadBaseline(*baseline)
	fatal(err)
	cmp := perf.Compare(rep, base, *maxReg)

	var benchPath string
	if *outDir != "" {
		benchPath, err = perf.NextBenchPath(*outDir)
		fatal(err)
		fatal(perf.WriteReport(rep, benchPath))
	}
	if *storeOpt != "" {
		store, err := lab.OpenStore(*storeOpt)
		fatal(err)
		err = perf.AppendToStore(store, rep)
		store.Close()
		fatal(err)
	}

	printMetrics(rep)
	if benchPath != "" {
		fmt.Printf("\nbotsbench: wrote %s (baseline of %s)\n", benchPath, cmp.BaselineCreatedAt.Format("2006-01-02"))
	}
	if cmp.Regressions > 0 {
		fmt.Fprintf(os.Stderr, "botsbench: %d gated metric(s) regressed more than %.0f%% — failing\n",
			cmp.Regressions, *maxReg*100)
		os.Exit(1)
	}
}

// printMetrics renders the human-readable table: every metric, with
// the baseline delta when the comparison matched it.
func printMetrics(rep *perf.Report) {
	deltaBy := map[string]perf.Delta{}
	if rep.Comparison != nil {
		for _, d := range rep.Comparison.Deltas {
			deltaBy[d.Name+"|"+d.Params] = d
		}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "METRIC\tVALUE\tUNIT\tVS BASELINE\tGATE\tPARAMS")
	for _, m := range rep.Metrics {
		vs := "-"
		if d, ok := deltaBy[m.Name+"|"+m.Params]; ok {
			arrow := "~"
			if d.Improved {
				arrow = "improved"
			} else if d.Pct != 0 {
				arrow = "worse"
			}
			vs = fmt.Sprintf("%+.1f%% (%s)", d.Pct, arrow)
			if d.Regression {
				vs += " REGRESSION"
			}
		}
		gate := ""
		if m.Gate {
			gate = "gated"
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%s\t%s\t%s\t%s\n", m.Name, m.Value, m.Unit, vs, gate, m.Params)
	}
	tw.Flush()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "botsbench:", err)
		os.Exit(1)
	}
}
