// Command botserve runs a BOTS kernel in service mode: an open-loop
// load generator (internal/serve) submits independent task-DAG
// requests to a persistent omp team and reports tail latency —
// queueing delay (scheduled arrival → root task start), service time
// (start → DAG complete), and total latency — as log-bucketed
// percentiles, plus throughput, shed counts, and runtime counters.
//
//	botserve -bench health -scheduler workfirst -rate 500 -duration 2s -json
//	botserve -bench sparselu-dep -rate 200 -requests 400
//	botserve -bench alignment -arrivals bursty -rate 300 -duration 5s
//
// The generator is open loop: arrivals follow their absolute schedule
// regardless of server progress, and arrivals past the in-flight cap
// are shed, never queued at the generator. Latencies are measured
// from the scheduled arrival instant, so stalls are charged to every
// request scheduled during them (no coordinated omission).
//
// Exit status is nonzero on configuration errors or when any request
// fails verification against the sequential reference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"bots/internal/core"
	"bots/internal/obs"
	"bots/internal/serve"
)

func main() {
	var (
		bench     = flag.String("bench", "health", "service workload: "+strings.Join(serve.WorkloadNames(), ", "))
		class     = flag.String("class", "test", "input class (test/small/medium/large)")
		scheduler = flag.String("scheduler", "", "omp scheduler name (empty = default)")
		cutoff    = flag.Int("cutoff", -1, "workload cutoff knob (-1 = workload default)")
		workers   = flag.Int("workers", 0, "persistent-team size (0 = GOMAXPROCS)")
		rate      = flag.Float64("rate", 100, "target mean arrival rate, requests/s")
		arrivals  = flag.String("arrivals", "poisson", "arrival process: poisson, fixed, bursty")
		duration  = flag.Duration("duration", 2*time.Second, "generation window (fixed-duration mode)")
		requests  = flag.Int("requests", 0, "fixed-request mode when > 0 (overrides -duration)")
		inflight  = flag.Int("max-inflight", 0, "admission cap before shedding (0 = 64×workers)")
		seed      = flag.Uint64("seed", 1, "arrival-process RNG seed")
		asJSON    = flag.Bool("json", false, "emit the bots-serve/v1 report as JSON on stdout")
		metrics   = flag.String("metrics-addr", "", "listen address for GET /metrics + pprof + /debug/flightrec (empty = off)")
		frCap     = flag.Int("flight-recorder", 0, "per-worker scheduler-event ring size (0 = off; implied 4096 when -metrics-addr is set)")
		stallThr  = flag.Duration("stall-threshold", time.Second, "dump the flight recorder when live tasks sit unclaimed with all workers parked this long (needs -flight-recorder)")
	)
	flag.Parse()

	cls, err := core.ParseClass(*class)
	if err != nil {
		fatal(err)
	}

	cfg := serve.Config{
		Bench:             *bench,
		Class:             cls,
		Scheduler:         *scheduler,
		Cutoff:            *cutoff,
		Workers:           *workers,
		Rate:              *rate,
		Arrivals:          *arrivals,
		Duration:          *duration,
		Requests:          *requests,
		MaxInflight:       *inflight,
		Seed:              *seed,
		FlightRecorderCap: *frCap,
	}
	var flightRec atomic.Pointer[obs.FlightRecorder]
	if *metrics != "" {
		// The metrics listener observes the run live: the serve layer
		// registers its request counters/histograms and the team's
		// gauges into the registry, and the flight recorder (enabled
		// implicitly here) is dumpable at /debug/flightrec and dumped
		// to stderr automatically if the stall detector fires.
		cfg.Obs = obs.NewRegistry()
		obs.RegisterRuntimeMetrics(cfg.Obs)
		if cfg.FlightRecorderCap <= 0 {
			cfg.FlightRecorderCap = 4096
		}
		startMetricsListener(*metrics, cfg.Obs, flightRec.Load)
	}
	if cfg.FlightRecorderCap > 0 {
		cfg.OnRecorder = func(fr *obs.FlightRecorder) { flightRec.Store(fr) }
		if *stallThr > 0 {
			cfg.StallThreshold = *stallThr
			cfg.OnStall = func(fr *obs.FlightRecorder) {
				fmt.Fprintf(os.Stderr, "botserve: stall detected (live tasks with all workers parked > %v); flight-recorder dump:\n", *stallThr)
				fr.WriteJSON(os.Stderr)
			}
		}
	}

	rep, err := serve.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if err := rep.Validate(); err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		printReport(rep)
	}
	if rep.VerifyFailures > 0 {
		fmt.Fprintf(os.Stderr, "botserve: %d requests failed verification\n", rep.VerifyFailures)
		os.Exit(1)
	}
}

func printReport(r *serve.Report) {
	fmt.Printf("botserve: %s/%s scheduler=%s arrivals=%s workers=%d\n",
		r.Bench, r.Class, r.Scheduler, r.Arrivals, r.Workers)
	fmt.Printf("  offered %.1f/s (target %.1f/s), completed %d, shed %d, throughput %.1f/s, elapsed %v\n",
		r.OfferedHz, r.RateHz, r.Completed, r.Shed, r.ThroughputHz, time.Duration(r.ElapsedNS).Round(time.Millisecond))
	if r.VerifyFailures > 0 {
		fmt.Printf("  VERIFY FAILURES: %d\n", r.VerifyFailures)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  latency\tp50\tp90\tp99\tp999\tmax\tmean")
	for _, row := range []struct {
		name string
		s    serve.LatencyStats
	}{{"queueing", r.Queueing}, {"service", r.Service}, {"total", r.Total}} {
		fmt.Fprintf(w, "  %s\t%v\t%v\t%v\t%v\t%v\t%v\n", row.name,
			ms(row.s.P50), ms(row.s.P90), ms(row.s.P99), ms(row.s.P999), ms(row.s.Max), ms(row.s.Mean))
	}
	w.Flush()
	fmt.Printf("  runtime: %d tasks, %d steals, %d parks\n",
		r.Runtime.TasksCreated, r.Runtime.TasksStolen, r.Runtime.IdleParks)
}

func ms(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// startMetricsListener binds the observability endpoint immediately
// (so a scrape racing process startup gets a connection, not a
// refusal) and serves it for the life of the process:
//
//	GET /metrics           Prometheus text exposition of reg
//	GET /debug/flightrec   bots-flightrec/v1 JSON dump (404 until the
//	                       run attaches its recorder)
//	GET /debug/pprof/...   net/http/pprof profiles
func startMetricsListener(addr string, reg *obs.Registry, getFR func() *obs.FlightRecorder) {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /debug/flightrec", func(w http.ResponseWriter, r *http.Request) {
		fr := getFR()
		if fr == nil {
			http.Error(w, "flight recorder not attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fr.WriteJSON(w)
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	go http.Serve(ln, mux)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "botserve:", err)
	os.Exit(2)
}
