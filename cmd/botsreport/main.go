// Command botsreport regenerates every table and figure of the BOTS
// paper's evaluation (Duran et al., ICPP 2009) from this
// reproduction: Table I (application summary), Table II (per-task
// characteristics), Figure 3 (best-version speedups), Figure 4
// (cut-off mechanisms on NQueens), Figure 5 (tied vs untied), and the
// §IV-D ablations (cut-off value sweep, scheduling policies,
// generator schemes).
//
// Every experiment cell goes through the lab's cached runner: results
// persist in a JSONL store (-store), so re-rendering a report
// re-executes nothing that is already measured, and cells within a
// figure run concurrently on first measurement.
//
//	botsreport                      # everything, medium class
//	botsreport -class small -only fig3,fig4
//	botsreport -store /tmp/lab.jsonl -threads 1,2,4,8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	_ "bots/internal/apps/all"
	"bots/internal/core"
	"bots/internal/lab"
	"bots/internal/report"
)

func main() {
	var (
		className = flag.String("class", "medium", "input class for all experiments")
		only      = flag.String("only", "", "comma-separated subset of: "+strings.Join(report.Artifacts(), ","))
		threads   = flag.String("threads", "", "comma-separated thread axis (default 1,2,4,8,16,24,32)")
		storePath = flag.String("store", "bots-lab.jsonl", "lab result store (JSONL); empty = in-memory only")
	)
	flag.Parse()

	class, err := core.ParseClass(*className)
	fatal(err)
	var axis []int
	if *threads != "" {
		axis, err = parseThreadAxis(*threads)
		fatal(err)
	}
	var selected []string
	if *only == "" {
		selected = report.Artifacts()
	} else {
		known := map[string]bool{}
		for _, a := range report.Artifacts() {
			known[a] = true
		}
		for _, part := range strings.Split(*only, ",") {
			name := strings.TrimSpace(part)
			if !known[name] {
				fatal(fmt.Errorf("unknown artifact %q (have %s)", name, strings.Join(report.Artifacts(), ",")))
			}
			selected = append(selected, name)
		}
	}

	store, err := lab.OpenStore(*storePath)
	fatal(err)
	defer store.Close()
	direct := lab.NewDirectRunner()
	runner := lab.NewCachedRunner(store, direct)

	for _, name := range selected {
		fatal(report.Render(runner, os.Stdout, name, class, axis))
	}
	fmt.Fprintf(os.Stderr, "botsreport: %d cache hits, %d executions (store %s, %d records)\n",
		runner.Hits(), direct.Exec.Executions(), storeName(store), store.Len())
}

func storeName(s *lab.Store) string {
	if s.Path() == "" {
		return "in-memory"
	}
	return s.Path()
}

// parseThreadAxis parses a strictly positive comma-separated thread
// list, rejecting trailing garbage ("4x") and non-positive counts.
func parseThreadAxis(s string) ([]int, error) {
	var axis []int
	for _, part := range strings.Split(s, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -threads entry %q: %v", strings.TrimSpace(part), err)
		}
		if t < 1 {
			return nil, fmt.Errorf("bad -threads entry %d: thread counts must be >= 1", t)
		}
		axis = append(axis, t)
	}
	return axis, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "botsreport:", err)
		os.Exit(1)
	}
}
