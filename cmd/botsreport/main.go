// Command botsreport regenerates every table and figure of the BOTS
// paper's evaluation (Duran et al., ICPP 2009) from this
// reproduction: Table I (application summary), Table II (per-task
// characteristics), Figure 3 (best-version speedups), Figure 4
// (cut-off mechanisms on NQueens), Figure 5 (tied vs untied), and the
// §IV-D ablations (cut-off value sweep, scheduling policies,
// generator schemes).
//
//	botsreport                      # everything, medium class
//	botsreport -class small -only fig3,fig4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	_ "bots/internal/apps/all"
	"bots/internal/core"
	"bots/internal/report"
)

func main() {
	var (
		className = flag.String("class", "medium", "input class for all experiments")
		only      = flag.String("only", "", "comma-separated subset: table1,table2,analysis,fig3,fig4,fig5,extensions,cutoffdepth,policy,threadswitch,queuearch,generators")
		threads   = flag.String("threads", "", "comma-separated thread axis (default 1,2,4,8,16,24,32)")
	)
	flag.Parse()

	class, err := core.ParseClass(*className)
	fatal(err)
	axis := report.PaperThreads
	if *threads != "" {
		axis = nil
		for _, part := range strings.Split(*threads, ",") {
			var t int
			_, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &t)
			fatal(err)
			axis = append(axis, t)
		}
	}
	want := map[string]bool{}
	if *only != "" {
		for _, part := range strings.Split(*only, ",") {
			want[strings.TrimSpace(part)] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }
	w := os.Stdout

	if run("table1") {
		report.Table1(w)
	}
	if run("table2") {
		fatal(report.Table2(w, class))
	}
	if run("analysis") {
		fatal(report.TableAnalysis(w, class))
	}
	if run("fig3") {
		fatal(report.Fig3(w, class, axis))
	}
	if run("fig4") {
		fatal(report.Fig4(w, class, axis))
	}
	if run("fig5") {
		fatal(report.Fig5(w, class, axis))
	}
	if run("extensions") {
		fatal(report.FigExtensions(w, class, axis))
	}
	if run("cutoffdepth") {
		fatal(report.AblationCutoffDepth(w, class, 8, nil))
	}
	if run("policy") {
		fatal(report.AblationPolicy(w, class, axis))
	}
	if run("threadswitch") {
		fatal(report.AblationThreadSwitch(w, class, axis))
	}
	if run("queuearch") {
		fatal(report.AblationQueueArch(w, class, axis))
	}
	if run("generators") {
		fatal(report.AblationGenerators(w, class, axis))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "botsreport:", err)
		os.Exit(1)
	}
}
