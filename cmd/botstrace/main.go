// Command botstrace records, analyzes and replays task-graph traces
// of the BOTS benchmarks.
//
//	botstrace -bench sort -class small -o sort.trace      # record
//	botstrace -analyze sort.trace                         # work/span profile
//	botstrace -simulate sort.trace -threads 16            # virtual replay
//	botstrace -bench fib -version none-tied -analyze -    # record + analyze
//
// The work/span analysis (total work W, critical path S, average
// parallelism W/S) explains the scaling ceilings in the paper's
// Figure 3 before any scheduler enters the picture: a benchmark can
// never speed up beyond W/S.
package main

import (
	"flag"
	"fmt"
	"os"

	_ "bots/internal/apps/all"
	"bots/internal/core"
	"bots/internal/sim"
	"bots/internal/trace"
)

func main() {
	var (
		bench     = flag.String("bench", "", "benchmark to record")
		className = flag.String("class", "small", "input class for -bench")
		version   = flag.String("version", "", "version (default: best)")
		record    = flag.Int("record-threads", 1, "team size for the recording run")
		out       = flag.String("o", "", "write the recorded trace to this file")
		analyze   = flag.String("analyze", "", "analyze a trace file ('-' with -bench: analyze the fresh recording)")
		simulate  = flag.String("simulate", "", "simulate a trace file ('-' with -bench: the fresh recording)")
		threads   = flag.Int("threads", 0, "virtual threads for -simulate (default: trace roots)")
		gantt     = flag.Bool("gantt", false, "with -simulate: render an ASCII Gantt chart of the schedule")
		chrome    = flag.String("chrome", "", "with -simulate: write a Chrome trace-event JSON file of the schedule")
	)
	flag.Parse()

	var tr *trace.Trace
	unitNS := 10.0 // default work-unit cost when simulating a bare file
	if *bench != "" {
		b, err := core.Get(*bench)
		fatal(err)
		class, err := core.ParseClass(*className)
		fatal(err)
		v := *version
		if v == "" {
			v = b.BestVersion
		}
		if !b.HasVersion(v) {
			fatal(fmt.Errorf("benchmark %q has no version %q", b.Name, v))
		}
		seq, err := b.Seq(class)
		fatal(err)
		if seq.Work > 0 {
			unitNS = float64(seq.Elapsed.Nanoseconds()) / float64(seq.Work)
		}
		rec := trace.NewRecorder()
		res, err := b.Run(core.RunConfig{
			Class: class, Version: v, Threads: *record, Recorder: rec,
		})
		fatal(err)
		tr = rec.Finish()
		fatal(tr.Validate())
		fmt.Printf("recorded %s/%s (%s class, %d-thread team): %d tasks, %v\n",
			*bench, v, class, *record, tr.NumTasks(), res.Elapsed)
		if *out != "" {
			f, err := os.Create(*out)
			fatal(err)
			n, err := tr.WriteTo(f)
			fatal(err)
			fatal(f.Close())
			fmt.Printf("wrote %s (%d bytes, %.1f B/task)\n", *out, n, float64(n)/float64(len(tr.Tasks)))
		}
	}

	load := func(path string) *trace.Trace {
		if path == "-" {
			if tr == nil {
				fatal(fmt.Errorf("'-' requires -bench to record a trace first"))
			}
			return tr
		}
		f, err := os.Open(path)
		fatal(err)
		defer f.Close()
		t, err := trace.ReadTrace(f)
		fatal(err)
		return t
	}

	if *analyze != "" {
		t := load(*analyze)
		fmt.Printf("\n%s", trace.Analyze(t))
	}
	if *simulate != "" {
		t := load(*simulate)
		n := *threads
		if n == 0 {
			n = t.NumRoots
		}
		p := sim.DefaultOverheads()
		p.WorkUnitNS = unitNS
		res, tl, err := sim.RunWithTimeline(t, n, p)
		fatal(err)
		fmt.Printf("\nsimulated: %s (utilization %.0f%%)\n", res, 100*tl.Utilization())
		if *gantt {
			fmt.Println()
			tl.WriteGantt(os.Stdout, 100)
		}
		if *chrome != "" {
			f, err := os.Create(*chrome)
			fatal(err)
			fatal(tl.WriteChromeTrace(f, t))
			fatal(f.Close())
			fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", *chrome)
		}
	}
	if *bench == "" && *analyze == "" && *simulate == "" {
		fmt.Fprintln(os.Stderr, "botstrace: nothing to do; see -h")
		os.Exit(2)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "botstrace:", err)
		os.Exit(1)
	}
}
