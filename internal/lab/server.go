package lab

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"bots/internal/core"
	"bots/internal/obs"
)

// ErrUnknownFigure is returned by a RenderFunc for a figure name it
// does not dispatch; the server maps it to 404.
var ErrUnknownFigure = errors.New("lab: unknown report figure")

// RenderFunc renders one named report artifact (a figure, table, or
// ablation) from cached records to w. The lab package does not depend
// on the report layer; cmd/botslab injects the report renderer here.
type RenderFunc func(w io.Writer, figure string, class core.Class, threads []int) error

// Server is the `bots serve` HTTP service: it accepts sweep
// manifests, reports sweep progress (with optional streaming), serves
// the result store, and renders report figures from cached records.
type Server struct {
	Disp  *Dispatcher
	Store *Store
	// Render, when non-nil, backs GET /report/{figure}.
	Render RenderFunc
	// PollInterval is the status-streaming poll period (default 100ms).
	PollInterval time.Duration
	// Obs backs GET /metrics. When nil, Handler creates a private
	// registry; either way the server's own bots_lab_* gauges (store
	// size, sweep/job counts) are registered into it on first Handler
	// call, so a shared registry (cmd/botslab passes one) exposes lab
	// state alongside whatever else the process publishes.
	Obs *obs.Registry

	obsOnce sync.Once
}

// Handler returns the service's HTTP handler:
//
//	POST /sweeps              submit a SweepSpec manifest → 202 + status
//	GET  /sweeps              list sweep statuses
//	GET  /sweeps/{id}         one sweep's status; ?follow=true streams
//	                          NDJSON snapshots until the sweep finishes
//	GET  /results             records, filterable by bench/version/
//	                          class/threads/key/verified
//	GET  /report/{figure}     render a report artifact from the store
//	GET  /healthz             liveness + readiness (store/dispatcher counts)
//	GET  /metrics             Prometheus text exposition (Obs registry)
//	GET  /debug/pprof/...     net/http/pprof profiles
func (s *Server) Handler() http.Handler {
	s.obsOnce.Do(func() {
		if s.Obs == nil {
			s.Obs = obs.NewRegistry()
		}
		s.registerObs(s.Obs)
	})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweeps", s.handleSubmit)
	mux.HandleFunc("GET /sweeps", s.handleListSweeps)
	mux.HandleFunc("GET /sweeps/{id}", s.handleSweep)
	mux.HandleFunc("GET /results", s.handleResults)
	mux.HandleFunc("GET /report/{figure}", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.Obs.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// registerObs publishes the lab server's own state as scrape-time
// gauges (DESIGN.md §11): store size, sweep count, and job counts by
// state.
func (s *Server) registerObs(reg *obs.Registry) {
	obs.RegisterRuntimeMetrics(reg)
	reg.GaugeFunc("bots_lab_store_records", "Result records cached in the store.",
		func() float64 {
			if s.Store == nil {
				return 0
			}
			return float64(s.Store.Len())
		})
	reg.GaugeFunc("bots_lab_sweeps", "Sweeps submitted to the dispatcher.",
		func() float64 {
			if s.Disp == nil {
				return 0
			}
			return float64(s.Disp.Counts().Sweeps)
		})
	for _, st := range []struct {
		name string
		sel  func(Counts) int
	}{
		{"queued", func(c Counts) int { return c.Queued }},
		{"running", func(c Counts) int { return c.Running }},
		{"done", func(c Counts) int { return c.Done }},
		{"failed", func(c Counts) int { return c.Failed }},
	} {
		st := st
		reg.GaugeFunc("bots_lab_jobs", "Dispatcher jobs by state.",
			func() float64 {
				if s.Disp == nil {
					return 0
				}
				return float64(st.sel(s.Disp.Counts()))
			}, obs.Label{Name: "state", Value: st.name})
	}
}

// handleHealthz reports liveness plus readiness: a fleet probe needs
// to distinguish a process that is up from one that can actually take
// work, so the body carries the store size and the dispatcher's
// accepting flag and queued/running/done/failed counts. ok means the
// process is live; ready means submissions are currently accepted.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var c Counts
	if s.Disp != nil {
		c = s.Disp.Counts()
	}
	records := 0
	if s.Store != nil {
		records = s.Store.Len()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":      true,
		"ready":   c.Accepting,
		"records": records,
		"sweeps":  c.Sweeps,
		"jobs": map[string]int{
			"queued":  c.Queued,
			"running": c.Running,
			"done":    c.Done,
			"failed":  c.Failed,
		},
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := ReadSweepSpec(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sw, err := s.Disp.Submit(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, sw.Status())
}

func (s *Server) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	out := []SweepStatus{}
	for _, sw := range s.Disp.Sweeps() {
		out = append(out, sw.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.Disp.Sweep(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "lab: unknown sweep %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("follow") != "true" {
		writeJSON(w, http.StatusOK, sw.Status())
		return
	}
	// Streaming progress: one NDJSON snapshot per state change until
	// the sweep finishes or the client goes away.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(st SweepStatus) {
		enc.Encode(st)
		if flusher != nil {
			flusher.Flush()
		}
	}
	interval := s.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	last := sw.Status()
	emit(last)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for !last.Finished() {
		select {
		case <-r.Context().Done():
			return
		case <-sw.Done():
		case <-ticker.C:
		}
		st := sw.Status()
		if st.Queued != last.Queued || st.Running != last.Running ||
			st.Done != last.Done || st.Failed != last.Failed {
			emit(st)
		}
		last = st
	}
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := Filter{
		Bench:   q.Get("bench"),
		Version: q.Get("version"),
		Class:   q.Get("class"),
		Key:     q.Get("key"),
	}
	if t := q.Get("threads"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "lab: bad threads filter %q", t)
			return
		}
		f.Threads = n
	}
	if v := q.Get("verified"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "lab: bad verified filter %q", v)
			return
		}
		f.Verified = &b
	}
	recs := s.Store.Select(f)
	if recs == nil {
		recs = []*Record{}
	}
	writeJSON(w, http.StatusOK, recs)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if s.Render == nil {
		httpError(w, http.StatusNotImplemented, "lab: this server has no report renderer")
		return
	}
	figure := r.PathValue("figure")
	q := r.URL.Query()
	class := core.Test
	if c := q.Get("class"); c != "" {
		var err error
		if class, err = core.ParseClass(c); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	var threads []int
	if t := q.Get("threads"); t != "" {
		for _, part := range strings.Split(t, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				httpError(w, http.StatusBadRequest, "lab: bad threads axis %q", t)
				return
			}
			threads = append(threads, n)
		}
	}
	// Render into a buffer so a failure maps to a clean status code
	// instead of a half-written page.
	var buf bytes.Buffer
	if err := s.Render(&buf, figure, class, threads); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownFigure) {
			status = http.StatusNotFound
		}
		httpError(w, status, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(buf.Bytes())
}
