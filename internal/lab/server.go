package lab

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"bots/internal/core"
	"bots/internal/obs"
)

// ErrUnknownFigure is returned by a RenderFunc for a figure name it
// does not dispatch; the server maps it to 404.
var ErrUnknownFigure = errors.New("lab: unknown report figure")

// RenderFunc renders one named report artifact (a figure, table, or
// ablation) from cached records to w. The lab package does not depend
// on the report layer; cmd/botslab injects the report renderer here.
type RenderFunc func(w io.Writer, figure string, class core.Class, threads []int) error

// Server is the `bots serve` HTTP service: it accepts sweep
// manifests, reports sweep progress (with optional streaming), serves
// the result store, and renders report figures from cached records.
type Server struct {
	Disp  *Dispatcher
	Store *Store
	// Fleet, when non-nil, enables the coordinator endpoints (worker
	// registration, leases, heartbeats, results). Without it the fleet
	// routes answer 503: the server is deliberately local-only.
	Fleet *Fleet
	// Render, when non-nil, backs GET /report/{figure}.
	Render RenderFunc
	// PollInterval is the status-streaming poll period (default 100ms).
	PollInterval time.Duration
	// Obs backs GET /metrics. When nil, Handler creates a private
	// registry; either way the server's own bots_lab_* gauges (store
	// size, sweep/job counts) are registered into it on first Handler
	// call, so a shared registry (cmd/botslab passes one) exposes lab
	// state alongside whatever else the process publishes.
	Obs *obs.Registry

	obsOnce sync.Once
}

// Handler returns the service's HTTP handler:
//
//	POST /sweeps              submit a SweepSpec manifest → 202 + status
//	GET  /sweeps              list sweep statuses
//	GET  /sweeps/{id}         one sweep's status; ?follow=true streams
//	                          NDJSON snapshots until the sweep finishes
//	DELETE /sweeps/{id}       cancel: queued cells flip to cancelled,
//	                          running/leased cells finish or expire
//	GET  /results             records, filterable by bench/version/
//	                          class/threads/key/verified
//	GET  /report/{figure}     render a report artifact from the store
//	GET  /healthz             liveness + readiness (store/dispatcher counts)
//	GET  /metrics             Prometheus text exposition (Obs registry)
//	GET  /debug/pprof/...     net/http/pprof profiles
//
// Fleet coordinator routes (503 unless the server has a Fleet):
//
//	POST /workers/register    {name, capacity} → {worker_id, lease_ttl_ns}
//	POST /workers/deregister  {worker_id}
//	POST /leases              {worker_id, max} → {leases: [Lease...]}
//	POST /heartbeats          {worker_id, leases: [{id, elapsed_ns}...]}
//	                          → {renewed, lost}
//	POST /results             {lease_id, record, error}
//	GET  /workers             FleetStatus snapshot
func (s *Server) Handler() http.Handler {
	s.obsOnce.Do(func() {
		if s.Obs == nil {
			s.Obs = obs.NewRegistry()
		}
		s.registerObs(s.Obs)
	})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweeps", s.handleSubmit)
	mux.HandleFunc("GET /sweeps", s.handleListSweeps)
	mux.HandleFunc("GET /sweeps/{id}", s.handleSweep)
	mux.HandleFunc("DELETE /sweeps/{id}", s.handleCancelSweep)
	mux.HandleFunc("GET /results", s.handleResults)
	mux.HandleFunc("POST /workers/register", s.fleetHandler(s.handleWorkerRegister))
	mux.HandleFunc("POST /workers/deregister", s.fleetHandler(s.handleWorkerDeregister))
	mux.HandleFunc("GET /workers", s.fleetHandler(s.handleWorkers))
	mux.HandleFunc("POST /leases", s.fleetHandler(s.handleLeases))
	mux.HandleFunc("POST /heartbeats", s.fleetHandler(s.handleHeartbeats))
	mux.HandleFunc("POST /results", s.fleetHandler(s.handleResult))
	mux.HandleFunc("GET /report/{figure}", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.Obs.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// registerObs publishes the lab server's own state as scrape-time
// gauges (DESIGN.md §11): store size, sweep count, and job counts by
// state.
func (s *Server) registerObs(reg *obs.Registry) {
	obs.RegisterRuntimeMetrics(reg)
	reg.GaugeFunc("bots_lab_store_records", "Result records cached in the store.",
		func() float64 {
			if s.Store == nil {
				return 0
			}
			return float64(s.Store.Len())
		})
	reg.GaugeFunc("bots_lab_sweeps", "Sweeps submitted to the dispatcher.",
		func() float64 {
			if s.Disp == nil {
				return 0
			}
			return float64(s.Disp.Counts().Sweeps)
		})
	for _, st := range []struct {
		name string
		sel  func(Counts) int
	}{
		{"queued", func(c Counts) int { return c.Queued }},
		{"running", func(c Counts) int { return c.Running }},
		{"done", func(c Counts) int { return c.Done }},
		{"failed", func(c Counts) int { return c.Failed }},
		{"cancelled", func(c Counts) int { return c.Cancelled }},
	} {
		st := st
		reg.GaugeFunc("bots_lab_jobs", "Dispatcher jobs by state.",
			func() float64 {
				if s.Disp == nil {
					return 0
				}
				return float64(st.sel(s.Disp.Counts()))
			}, obs.Label{Name: "state", Value: st.name})
	}
	if s.Fleet == nil {
		return
	}
	// Fleet observability rides the same scrape-time-closure idiom as
	// the rest: each sample is one Fleet.Status() snapshot.
	for _, ws := range []string{WorkerIdle, WorkerBusy, WorkerDead} {
		ws := ws
		reg.GaugeFunc("bots_lab_workers", "Registered fleet workers by state.",
			func() float64 {
				return float64(s.Fleet.Status().WorkersByState()[ws])
			}, obs.Label{Name: "state", Value: ws})
	}
	reg.GaugeFunc("bots_lab_leases_active", "Fleet leases currently outstanding.",
		func() float64 { return float64(s.Fleet.Status().LeasesActive) })
	reg.CounterFunc("bots_lab_leases_granted_total", "Fleet leases handed out since start.",
		func() float64 { return float64(s.Fleet.Status().LeasesGranted) })
	reg.CounterFunc("bots_lab_leases_expired_total", "Fleet leases lost to a missed deadline.",
		func() float64 { return float64(s.Fleet.Status().LeasesExpired) })
	reg.CounterFunc("bots_lab_jobs_redispatched_total", "Fleet jobs returned to the queue for another lease.",
		func() float64 { return float64(s.Fleet.Status().JobsRedispatched) })
}

// fleetHandler gates a coordinator route on the fleet being enabled.
func (s *Server) fleetHandler(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Fleet == nil {
			httpError(w, http.StatusServiceUnavailable, "lab: this server runs without a fleet (start with -fleet)")
			return
		}
		h(w, r)
	}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "lab: decoding request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name     string `json:"name"`
		Capacity int    `json:"capacity"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" {
		httpError(w, http.StatusBadRequest, "lab: worker registration needs a name")
		return
	}
	id := s.Fleet.Register(req.Name, req.Capacity)
	writeJSON(w, http.StatusOK, map[string]any{
		"worker_id":    id,
		"lease_ttl_ns": s.Fleet.LeaseTTL().Nanoseconds(),
	})
}

func (s *Server) handleWorkerDeregister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		WorkerID string `json:"worker_id"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	s.Fleet.Deregister(req.WorkerID)
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Fleet.Status())
}

func (s *Server) handleLeases(w http.ResponseWriter, r *http.Request) {
	var req struct {
		WorkerID string `json:"worker_id"`
		Max      int    `json:"max"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	leases, err := s.Fleet.Lease(req.WorkerID, req.Max)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	if leases == nil {
		leases = []Lease{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"leases": leases})
}

func (s *Server) handleHeartbeats(w http.ResponseWriter, r *http.Request) {
	var req struct {
		WorkerID string              `json:"worker_id"`
		Leases   []HeartbeatProgress `json:"leases"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	renewed, lost, err := s.Fleet.Heartbeat(req.WorkerID, req.Leases)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	if renewed == nil {
		renewed = []string{}
	}
	if lost == nil {
		lost = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"renewed": renewed, "lost": lost})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	var req struct {
		LeaseID string  `json:"lease_id"`
		Record  *Record `json:"record"`
		Error   string  `json:"error"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.LeaseID == "" {
		httpError(w, http.StatusBadRequest, "lab: result needs a lease_id")
		return
	}
	s.Fleet.Complete(req.LeaseID, req.Record, req.Error)
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleHealthz reports liveness plus readiness: a fleet probe needs
// to distinguish a process that is up from one that can actually take
// work, so the body carries the store size and the dispatcher's
// accepting flag and queued/running/done/failed counts. ok means the
// process is live; ready means submissions are currently accepted.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var c Counts
	if s.Disp != nil {
		c = s.Disp.Counts()
	}
	records := 0
	if s.Store != nil {
		records = s.Store.Len()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":      true,
		"ready":   c.Accepting,
		"records": records,
		"sweeps":  c.Sweeps,
		"jobs": map[string]int{
			"queued":    c.Queued,
			"running":   c.Running,
			"done":      c.Done,
			"failed":    c.Failed,
			"cancelled": c.Cancelled,
		},
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := ReadSweepSpec(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sw, err := s.Disp.Submit(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, sw.Status())
}

func (s *Server) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	out := []SweepStatus{}
	for _, sw := range s.Disp.Sweeps() {
		out = append(out, sw.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.Disp.Sweep(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "lab: unknown sweep %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("follow") != "true" {
		writeJSON(w, http.StatusOK, sw.Status())
		return
	}
	// Streaming progress: one NDJSON snapshot per state change until
	// the sweep finishes or the client goes away.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(st SweepStatus) {
		enc.Encode(st)
		if flusher != nil {
			flusher.Flush()
		}
	}
	interval := s.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	last := sw.Status()
	emit(last)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for !last.Finished() {
		select {
		case <-r.Context().Done():
			return
		case <-sw.Done():
		case <-ticker.C:
		}
		st := sw.Status()
		if st.Queued != last.Queued || st.Running != last.Running ||
			st.Done != last.Done || st.Failed != last.Failed ||
			st.Cancelled != last.Cancelled || st.State != last.State {
			emit(st)
		}
		last = st
	}
}

// handleCancelSweep is DELETE /sweeps/{id}: queued cells (including
// those waiting out a retry backoff) flip to cancelled immediately;
// cells already running or leased to fleet workers finish or expire on
// their own. A follower streaming ?follow=true sees a terminal
// snapshot with state "cancelled" once the last straggler resolves.
func (s *Server) handleCancelSweep(w http.ResponseWriter, r *http.Request) {
	st, err := s.Disp.Cancel(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := Filter{
		Bench:   q.Get("bench"),
		Version: q.Get("version"),
		Class:   q.Get("class"),
		Key:     q.Get("key"),
	}
	if t := q.Get("threads"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "lab: bad threads filter %q", t)
			return
		}
		f.Threads = n
	}
	if v := q.Get("verified"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "lab: bad verified filter %q", v)
			return
		}
		f.Verified = &b
	}
	recs := s.Store.Select(f)
	if recs == nil {
		recs = []*Record{}
	}
	writeJSON(w, http.StatusOK, recs)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if s.Render == nil {
		httpError(w, http.StatusNotImplemented, "lab: this server has no report renderer")
		return
	}
	figure := r.PathValue("figure")
	q := r.URL.Query()
	class := core.Test
	if c := q.Get("class"); c != "" {
		var err error
		if class, err = core.ParseClass(c); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	var threads []int
	if t := q.Get("threads"); t != "" {
		for _, part := range strings.Split(t, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				httpError(w, http.StatusBadRequest, "lab: bad threads axis %q", t)
				return
			}
			threads = append(threads, n)
		}
	}
	// Render into a buffer so a failure maps to a clean status code
	// instead of a half-written page.
	var buf bytes.Buffer
	if err := s.Render(&buf, figure, class, threads); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownFigure) {
			status = http.StatusNotFound
		}
		httpError(w, status, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(buf.Bytes())
}
