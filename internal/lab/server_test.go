package lab_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	_ "bots/internal/apps/all"
	"bots/internal/lab"
	"bots/internal/report"
)

// newTestServer assembles the full service the way cmd/botslab does:
// store → executor → cached runner → dispatcher → HTTP handler, with
// the real report renderer injected.
func newTestServer(t *testing.T) (*httptest.Server, *lab.DirectRunner, *lab.Store) {
	t.Helper()
	store, err := lab.OpenStore(filepath.Join(t.TempDir(), "lab.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	direct := lab.NewDirectRunner()
	runner := lab.NewCachedRunner(store, direct)
	disp := lab.NewDispatcher(runner, 8, 1)
	srv := &lab.Server{
		Disp:         disp,
		Store:        store,
		Render:       report.RenderFuncFor(runner),
		PollInterval: 10 * time.Millisecond,
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		disp.Close()
		store.Close()
	})
	return ts, direct, store
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, body)
		}
	}
	return resp
}

// TestServerEndToEnd drives the full submit → poll → results →
// report flow over HTTP with a manifest covering 24 real job cells
// on the test class.
func TestServerEndToEnd(t *testing.T) {
	ts, direct, store := newTestServer(t)

	// 2 benches × 2 versions × 3 thread counts × 2 cut-off depths.
	manifest := `{
		"name": "e2e-grid",
		"benches": ["fib", "nqueens"],
		"versions": ["manual-tied", "if-tied"],
		"classes": ["test"],
		"threads": [1, 2, 4],
		"cutoff_depths": [3, 5]
	}`
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	var submitted lab.SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweeps status = %d", resp.StatusCode)
	}
	if submitted.Total != 24 {
		t.Fatalf("sweep expanded to %d cells, want 24", submitted.Total)
	}

	// Poll until the sweep completes.
	deadline := time.Now().Add(60 * time.Second)
	var st lab.SweepStatus
	for {
		getJSON(t, ts.URL+"/sweeps/"+submitted.ID, &st)
		if st.Finished() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.Done != 24 || st.Failed != 0 {
		t.Fatalf("sweep finished badly: %+v", st)
	}

	// Every record is retrievable, and filters narrow correctly.
	var all []lab.Record
	getJSON(t, ts.URL+"/results", &all)
	if len(all) != 24 {
		t.Fatalf("GET /results returned %d records, want 24", len(all))
	}
	for _, r := range all {
		if !r.Verified {
			t.Errorf("unverified record %s (%s/%s)", r.Key, r.Spec.Bench, r.Spec.Version)
		}
		if r.Sim == nil || r.Sim.Speedup <= 0 {
			t.Errorf("record %s has no simulated speedup", r.Key)
		}
	}
	var fib2 []lab.Record
	getJSON(t, ts.URL+"/results?bench=fib&threads=2", &fib2)
	if len(fib2) != 4 { // 2 versions × 2 cut-off depths
		t.Fatalf("filtered results = %d records, want 4", len(fib2))
	}

	// The report endpoint renders from the same store/runner; the
	// cut-off sweep below reuses nothing from the grid, so it
	// executes once, and a re-render is free.
	execsBefore := direct.Exec.Executions()
	resp, err = http.Get(ts.URL + "/report/cutoffdepth?class=test&threads=2")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), "cut-off value sweep") {
		t.Fatalf("report page missing content:\n%s", page)
	}
	execsAfterFirst := direct.Exec.Executions()
	if execsAfterFirst == execsBefore {
		t.Fatal("first render should have executed the sweep's cells")
	}
	resp, err = http.Get(ts.URL + "/report/cutoffdepth?class=test&threads=2")
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := direct.Exec.Executions(); got != execsAfterFirst {
		t.Fatalf("re-render executed %d extra benchmarks, want 0", got-execsAfterFirst)
	}

	if store.Len() < 24 {
		t.Fatalf("store holds %d records, want >= 24", store.Len())
	}
}

func TestServerStreamsProgress(t *testing.T) {
	ts, _, _ := newTestServer(t)
	manifest := `{"name":"stream","benches":["fib"],"versions":["manual-tied"],"classes":["test"],"threads":[1,2]}`
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	var submitted lab.SweepStatus
	json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()

	// The follow stream emits NDJSON snapshots and closes when the
	// sweep finishes; the last line must be a finished status.
	resp, err = http.Get(fmt.Sprintf("%s/sweeps/%s?follow=true", ts.URL, submitted.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("follow content type = %q", ct)
	}
	var last lab.SweepStatus
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, sc.Text())
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("follow stream emitted nothing")
	}
	if !last.Finished() || last.Done != 2 {
		t.Fatalf("final streamed status = %+v", last)
	}
}

func TestServerErrors(t *testing.T) {
	ts, _, _ := newTestServer(t)
	if resp := getJSON(t, ts.URL+"/sweeps/s999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep status = %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/report/fig99", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown figure status = %d, want 404", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(`{"benches":["nope"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad manifest status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(`{"benches":["fib"],"typo":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown-field manifest status = %d, want 400", resp.StatusCode)
	}
}

// TestServerObservability covers the observability surface added with
// internal/obs: /healthz readiness JSON, /metrics exposition with the
// bots_lab_* gauges, and the pprof mounts.
func TestServerObservability(t *testing.T) {
	ts, _, _ := newTestServer(t)

	// Run one small sweep so the job gauges have state to report.
	manifest := `{"name":"obs","benches":["fib"],"versions":["manual-tied"],
		"classes":["test"],"threads":[1],"cutoff_depths":[3]}`
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	var st lab.SweepStatus
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit response: %v\n%s", err, body)
	}
	sw, ok := findSweep(ts, t, st.ID)
	if !ok {
		t.Fatalf("sweep %s not found", st.ID)
	}
	_ = sw

	// Poll /healthz until the job is done; the body must carry the
	// readiness fields a fleet probe needs.
	var hz struct {
		OK      bool `json:"ok"`
		Ready   bool `json:"ready"`
		Records int  `json:"records"`
		Sweeps  int  `json:"sweeps"`
		Jobs    struct {
			Queued  int `json:"queued"`
			Running int `json:"running"`
			Done    int `json:"done"`
			Failed  int `json:"failed"`
		} `json:"jobs"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, ts.URL+"/healthz", &hz)
		if !hz.OK || !hz.Ready {
			t.Fatalf("healthz not ok/ready: %+v", hz)
		}
		if hz.Jobs.Done == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", hz)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if hz.Sweeps != 1 || hz.Jobs.Failed != 0 {
		t.Errorf("healthz counts = %+v", hz)
	}

	// /metrics: exposition format with the lab gauges.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	out := string(mbody)
	for _, want := range []string{
		"# TYPE bots_lab_jobs gauge",
		`bots_lab_jobs{state="done"} 1`,
		"bots_lab_sweeps 1",
		"bots_lab_store_records",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}

	// pprof index answers.
	presp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", presp.StatusCode)
	}
}

// TestServerCancelSweep drives DELETE /sweeps/{id} over HTTP with a
// blockable runner: queued cells cancel immediately, running cells
// drain, and a ?follow=true stream ends on a terminal cancelled
// snapshot.
func TestServerCancelSweep(t *testing.T) {
	fake := &fakeRunner{block: make(chan struct{})}
	disp := lab.NewDispatcher(fake, 1, 0)
	srv := &lab.Server{Disp: disp, PollInterval: 5 * time.Millisecond}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		disp.Close()
	})

	sw, err := disp.SubmitJobs("victim", []lab.JobSpec{testSpec("fib", 1), testSpec("fib", 2), testSpec("fib", 4)})
	if err != nil {
		t.Fatal(err)
	}
	for sw.Status().Running != 1 {
		time.Sleep(time.Millisecond)
	}
	follow, err := http.Get(fmt.Sprintf("%s/sweeps/%s?follow=true", ts.URL, sw.ID()))
	if err != nil {
		t.Fatal(err)
	}
	defer follow.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sweeps/"+sw.ID(), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled lab.SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&cancelled); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	if cancelled.State != lab.SweepCancelling || cancelled.Cancelled != 2 {
		t.Fatalf("DELETE response = %+v", cancelled)
	}
	close(fake.block) // release the one running cell

	// The follow stream must terminate with a cancelled snapshot.
	var last lab.SweepStatus
	sc := bufio.NewScanner(follow.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, sc.Text())
		}
	}
	if last.State != lab.SweepCancelled || !last.Finished() {
		t.Fatalf("final streamed status = %+v", last)
	}
	if last.Done != 1 || last.Cancelled != 2 {
		t.Fatalf("final counts = %+v", last)
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/sweeps/s999", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown sweep status = %d, want 404", resp.StatusCode)
	}
}

// findSweep fetches one sweep's status by id, reporting existence.
func findSweep(ts *httptest.Server, t *testing.T, id string) (lab.SweepStatus, bool) {
	t.Helper()
	var st lab.SweepStatus
	resp := getJSON(t, ts.URL+"/sweeps/"+id, &st)
	return st, resp.StatusCode == http.StatusOK
}
