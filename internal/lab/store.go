package lab

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Store is the persistent result store: an append-only JSONL file
// (one checksum-framed Record per line, frame.go) with an in-memory
// index by job key. Opening a store replays the log; on duplicate
// keys the last record wins, so re-running a cell supersedes the old
// measurement without rewriting history. A store killed mid-Put
// reopens with every complete record intact: the torn final line is
// truncated away with a warning (DESIGN.md §14), never a failed open.
// A Store with an empty path is purely in-memory.
type Store struct {
	mu     sync.RWMutex
	path   string
	f      *os.File
	byKey  map[string]*Record
	order  []string // insertion order of first appearance
	repair *TailRepair
}

// OpenStore opens (creating if needed) the JSONL store at path and
// loads its index. An empty path yields an in-memory store.
func OpenStore(path string) (*Store, error) {
	s := &Store{path: path, byKey: map[string]*Record{}}
	if path == "" {
		return s, nil
	}
	// O_APPEND: every Put lands at the file's current EOF, so two
	// processes sharing a store file (botslab -serve + botsreport)
	// interleave whole lines instead of splicing into each other.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lab: opening store %s: %w", path, err)
	}
	payloads, repair, err := loadFrames(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	if repair != nil {
		s.repair = repair
		fmt.Fprintf(os.Stderr, "lab: store %s: %s\n", path, repair.Reason)
	}
	for i, raw := range payloads {
		var r Record
		if err := json.Unmarshal(raw, &r); err != nil {
			f.Close()
			return nil, fmt.Errorf("lab: store %s record %d: %w", path, i+1, err)
		}
		s.index(&r)
	}
	s.f = f
	return s, nil
}

// TornTail reports the crash repair performed at open, if any: a
// partially written final line dropped (or a missing terminator
// restored) so the reload could proceed.
func (s *Store) TornTail() *TailRepair { return s.repair }

func (s *Store) index(r *Record) {
	if _, seen := s.byKey[r.Key]; !seen {
		s.order = append(s.order, r.Key)
	}
	s.byKey[r.Key] = r
}

// Path returns the backing file path ("" for in-memory stores).
func (s *Store) Path() string { return s.path }

// Len returns the number of distinct keys in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byKey)
}

// Get returns the record for a job key, if present.
func (s *Store) Get(key string) (*Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.byKey[key]
	return r, ok
}

// Put appends the record to the log and indexes it. The append is
// flushed before Put returns so a concurrent reader of the file never
// sees a half-written line on a crash-free run.
func (s *Store) Put(r *Record) error {
	if r.Key == "" {
		r.Key = r.Spec.Key()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		raw, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("lab: encoding record %s: %w", r.Key, err)
		}
		if _, err := s.f.Write(frameOf(raw)); err != nil {
			return fmt.Errorf("lab: appending to store %s: %w", s.path, err)
		}
	}
	s.index(r)
	return nil
}

// Records returns all current records in first-appearance order.
func (s *Store) Records() []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Record, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.byKey[k])
	}
	return out
}

// Select returns the records matching the filter, in store order.
func (s *Store) Select(f Filter) []*Record {
	var out []*Record
	for _, r := range s.Records() {
		if r.Matches(f) {
			out = append(out, r)
		}
	}
	return out
}

// Close closes the backing file. The Store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
