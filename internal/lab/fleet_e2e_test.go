package lab_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	_ "bots/internal/apps/all"
	"bots/internal/lab"
)

// newFleetServer assembles the distributed stack the way
// `botslab -serve -fleet` does: store → RemoteRunner(fleet) under a
// CachedRunner → dispatcher → HTTP handler with the coordinator
// endpoints mounted. Workers then join over HTTP like botsd would.
func newFleetServer(t *testing.T, cfg lab.FleetConfig) (*httptest.Server, *lab.Fleet, *lab.Store) {
	t.Helper()
	store, err := lab.OpenStore(filepath.Join(t.TempDir(), "lab.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	fleet := lab.NewFleet(cfg)
	runner := lab.NewCachedRunner(store, lab.NewRemoteRunner(fleet))
	disp := lab.NewDispatcher(runner, 32, 1)
	srv := &lab.Server{
		Disp:         disp,
		Store:        store,
		Fleet:        fleet,
		PollInterval: 10 * time.Millisecond,
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		fleet.Close()
		store.Close()
	})
	return ts, fleet, store
}

// startWorker runs an in-process WorkerClient against the coordinator
// and returns a stop function that drains it (like SIGTERM to botsd).
func startWorker(t *testing.T, ts *httptest.Server, name string, capacity int) (*lab.WorkerClient, func()) {
	t.Helper()
	w := &lab.WorkerClient{
		Coordinator: ts.URL,
		Name:        name,
		Capacity:    capacity,
		Poll:        5 * time.Millisecond,
		Logf:        t.Logf,
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.Run(ctx); err != nil {
			t.Errorf("worker %s: %v", name, err)
		}
	}()
	stop := func() {
		cancel()
		wg.Wait()
	}
	t.Cleanup(stop)
	return w, stop
}

func postSweep(t *testing.T, ts *httptest.Server, manifest string) lab.SweepStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st lab.SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweeps status = %d", resp.StatusCode)
	}
	return st
}

func waitSweepDone(t *testing.T, ts *httptest.Server, id string, within time.Duration) lab.SweepStatus {
	t.Helper()
	deadline := time.Now().Add(within)
	var st lab.SweepStatus
	for {
		getJSON(t, ts.URL+"/sweeps/"+id, &st)
		if st.Finished() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s never finished: %+v", id, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetEndToEnd drives a 24-cell sweep through two in-process
// worker daemons over real HTTP: both execute cells (distinct host
// provenance in the records), everything verifies, and a second pass
// of the same manifest is answered entirely from the cache — zero new
// leases, zero new executions.
func TestFleetEndToEnd(t *testing.T) {
	ts, fleet, store := newFleetServer(t, lab.FleetConfig{LeaseTTL: 10 * time.Second})
	alpha, _ := startWorker(t, ts, "alpha", 2)
	beta, _ := startWorker(t, ts, "beta", 2)

	manifest := `{
		"name": "fleet-grid",
		"benches": ["fib", "nqueens"],
		"versions": ["manual-tied", "if-tied"],
		"classes": ["test"],
		"threads": [1, 2, 4],
		"cutoff_depths": [3, 5]
	}`
	submitted := postSweep(t, ts, manifest)
	if submitted.Total != 24 {
		t.Fatalf("sweep expanded to %d cells, want 24", submitted.Total)
	}
	st := waitSweepDone(t, ts, submitted.ID, 120*time.Second)
	if st.Done != 24 || st.Failed != 0 {
		t.Fatalf("sweep finished badly: %+v", st)
	}

	// Every record is verified and carries fleet provenance; with two
	// greedy workers and 24 cells, both must have executed some.
	var all []lab.Record
	getJSON(t, ts.URL+"/results", &all)
	if len(all) != 24 {
		t.Fatalf("GET /results returned %d records, want 24", len(all))
	}
	byWorker := map[string]int{}
	for _, r := range all {
		if !r.Verified {
			t.Errorf("unverified record %s (%s/%s)", r.Key, r.Spec.Bench, r.Spec.Version)
		}
		byWorker[r.Host.Worker]++
	}
	if byWorker["alpha"] == 0 || byWorker["beta"] == 0 || byWorker["alpha"]+byWorker["beta"] != 24 {
		t.Fatalf("records by worker = %v, want both alpha and beta, nothing else", byWorker)
	}
	var fst lab.FleetStatus
	getJSON(t, ts.URL+"/workers", &fst)
	if len(fst.Workers) != 2 {
		t.Fatalf("GET /workers lists %d workers, want 2", len(fst.Workers))
	}
	for _, w := range fst.Workers {
		if w.Done < 1 {
			t.Errorf("worker %s executed %d jobs, want >= 1", w.Name, w.Done)
		}
	}

	// Second pass: same manifest, answered from the store. No cell
	// reaches the fleet, so the lease counter and both workers' tallies
	// stay exactly where they were.
	grantsBefore := fleet.Status().LeasesGranted
	doneBefore := alpha.Done() + beta.Done()
	again := postSweep(t, ts, manifest)
	st2 := waitSweepDone(t, ts, again.ID, 30*time.Second)
	if st2.Done != 24 || st2.Failed != 0 {
		t.Fatalf("second pass finished badly: %+v", st2)
	}
	if got := fleet.Status().LeasesGranted; got != grantsBefore {
		t.Fatalf("second pass granted %d new leases, want 0", got-grantsBefore)
	}
	if got := alpha.Done() + beta.Done(); got != doneBefore {
		t.Fatalf("second pass executed %d new cells on workers, want 0", got-doneBefore)
	}
	if store.Len() != 24 {
		t.Fatalf("store holds %d records, want 24", store.Len())
	}
}

// TestFleetWorkerDeathRedispatch kills a worker mid-sweep: a "doomed"
// worker leases a cell and goes silent (no heartbeat, no result); its
// lease expires and the cell is re-dispatched to the surviving
// worker, so the sweep still converges with no cell lost.
func TestFleetWorkerDeathRedispatch(t *testing.T) {
	ts, fleet, _ := newFleetServer(t, lab.FleetConfig{
		LeaseTTL:    300 * time.Millisecond,
		MaxAttempts: 5,
		RetryBase:   10 * time.Millisecond,
		RetryCap:    50 * time.Millisecond,
	})

	// The doomed worker speaks the Fleet API directly so the test
	// controls exactly what it does: lease one job, then vanish.
	doomed := fleet.Register("doomed", 1)

	manifest := `{"name":"death","benches":["fib"],"versions":["manual-tied"],
		"classes":["test"],"threads":[1,2,4]}`
	submitted := postSweep(t, ts, manifest)
	if submitted.Total != 3 {
		t.Fatalf("sweep expanded to %d cells, want 3", submitted.Total)
	}

	// Wait for the dispatcher to enqueue cells, then grab one and die.
	var grabbed []lab.Lease
	for deadline := time.Now().Add(5 * time.Second); len(grabbed) == 0; {
		var err error
		grabbed, err = fleet.Lease(doomed, 1)
		if err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never got a lease")
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Logf("doomed worker holds lease %s for %s; going silent", grabbed[0].ID, grabbed[0].Key)

	startWorker(t, ts, "survivor", 2)
	st := waitSweepDone(t, ts, submitted.ID, 60*time.Second)
	if st.Done != 3 || st.Failed != 0 {
		t.Fatalf("sweep finished badly after worker death: %+v", st)
	}
	fst := fleet.Status()
	if fst.LeasesExpired < 1 {
		t.Fatalf("leases expired = %d, want >= 1", fst.LeasesExpired)
	}
	if fst.JobsRedispatched < 1 {
		t.Fatalf("jobs redispatched = %d, want >= 1", fst.JobsRedispatched)
	}
	var all []lab.Record
	getJSON(t, ts.URL+"/results", &all)
	for _, r := range all {
		if !r.Verified {
			t.Errorf("unverified record %s", r.Key)
		}
		if r.Host.Worker != "survivor" {
			t.Errorf("record %s executed by %q, want survivor", r.Key, r.Host.Worker)
		}
	}
}

// TestFleetEndpointsWithoutFleet pins the local-only contract: a
// server without a Fleet answers every coordinator route 503.
func TestFleetEndpointsWithoutFleet(t *testing.T) {
	ts, _, _ := newTestServer(t)
	for _, route := range []struct{ method, path string }{
		{http.MethodPost, "/workers/register"},
		{http.MethodPost, "/workers/deregister"},
		{http.MethodGet, "/workers"},
		{http.MethodPost, "/leases"},
		{http.MethodPost, "/heartbeats"},
		{http.MethodPost, "/results"},
	} {
		req, _ := http.NewRequest(route.method, ts.URL+route.path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s %s status = %d, want 503", route.method, route.path, resp.StatusCode)
		}
	}
}

// TestFleetWireProtocol round-trips the raw coordinator wire format —
// what a non-Go worker would speak.
func TestFleetWireProtocol(t *testing.T) {
	ts, fleet, _ := newFleetServer(t, lab.FleetConfig{LeaseTTL: 10 * time.Second})

	post := func(path, body string, out any) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("decoding %s response: %v", path, err)
			}
		}
		return resp
	}

	var reg struct {
		WorkerID   string `json:"worker_id"`
		LeaseTTLNS int64  `json:"lease_ttl_ns"`
	}
	post("/workers/register", `{"name":"wire","capacity":1}`, &reg)
	if reg.WorkerID == "" || reg.LeaseTTLNS != (10*time.Second).Nanoseconds() {
		t.Fatalf("registration = %+v", reg)
	}
	// Unregistered names 404, prompting a worker re-register.
	if resp := post("/leases", `{"worker_id":"w999","max":1}`, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown worker lease status = %d, want 404", resp.StatusCode)
	}

	ticket := fleet.Enqueue(testSpec("fib", 2))
	var leased struct {
		Leases []lab.Lease `json:"leases"`
	}
	post("/leases", `{"worker_id":"`+reg.WorkerID+`","max":2}`, &leased)
	if len(leased.Leases) != 1 {
		t.Fatalf("leases = %+v", leased.Leases)
	}
	l := leased.Leases[0]

	var hb struct {
		Renewed []string `json:"renewed"`
		Lost    []string `json:"lost"`
	}
	post("/heartbeats", `{"worker_id":"`+reg.WorkerID+`","leases":[{"id":"`+l.ID+`","elapsed_ns":1000}]}`, &hb)
	if len(hb.Renewed) != 1 || len(hb.Lost) != 0 {
		t.Fatalf("heartbeat = %+v", hb)
	}

	rec, _ := json.Marshal(fakeRecordFor(l.Spec, "wire"))
	post("/results", `{"lease_id":"`+l.ID+`","record":`+string(rec)+`}`, nil)
	got, err := waitTicket(t, ticket)
	if err != nil {
		t.Fatal(err)
	}
	if got.Host.Worker != "wire" || got.Key != l.Key {
		t.Fatalf("delivered record = key %s worker %q", got.Key, got.Host.Worker)
	}
	post("/workers/deregister", `{"worker_id":"`+reg.WorkerID+`"}`, nil)
	if n := len(fleet.Status().Workers); n != 0 {
		t.Fatalf("workers after deregister = %d", n)
	}
}
