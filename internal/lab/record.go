package lab

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"bots/internal/omp"
	"bots/internal/sim"
	"bots/internal/trace"
)

// HostInfo records where a measurement was taken, so a store mixing
// records from several machines stays interpretable.
type HostInfo struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
	// Hostname is the measuring machine's name, when resolvable.
	Hostname string `json:"hostname,omitempty"`
	// Worker is the fleet worker that executed the cell ("" for
	// in-process runs). With Hostname and Commit it keeps cross-host
	// sweep results honest: every record says who measured it, where,
	// at which revision.
	Worker string `json:"worker,omitempty"`
	// Commit is the VCS revision of the binary, when the build
	// embedded one.
	Commit string `json:"commit,omitempty"`
}

// CurrentHost returns the HostInfo of this process.
func CurrentHost() HostInfo {
	h := HostInfo{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	if name, err := os.Hostname(); err == nil {
		h.Hostname = name
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				h.Commit = s.Value
			}
		}
	}
	return h
}

// SeqSummary is the sequential-reference side of a record: the
// calibration baseline the simulator's speedups are computed against.
type SeqSummary struct {
	ElapsedNS int64   `json:"elapsed_ns"`
	Work      int64   `json:"work"`
	MemBytes  int64   `json:"mem_bytes"`
	Metric    float64 `json:"metric,omitempty"`
}

// SimSummary is the simulated-execution side of a record.
type SimSummary struct {
	Threads    int     `json:"threads"`
	Speedup    float64 `json:"speedup"`
	MakespanNS float64 `json:"makespan_ns"`
	SerialNS   float64 `json:"serial_ns"`
	Steals     int64   `json:"steals"`
	Parks      int64   `json:"parks"`
	Switches   int64   `json:"switches,omitempty"`
	IdleNS     float64 `json:"idle_ns"`
}

func summarizeSim(r sim.Result) *SimSummary {
	return &SimSummary{
		Threads:    r.Threads,
		Speedup:    r.Speedup,
		MakespanNS: r.MakespanNS,
		SerialNS:   r.SerialNS,
		Steals:     r.Steals,
		Parks:      r.Parks,
		Switches:   r.Switches,
		IdleNS:     r.IdleNS,
	}
}

// Record is the machine-readable outcome of one experiment cell: the
// single schema shared by one-off `bots -json` runs, sweep results in
// the store, and the `GET /results` API.
type Record struct {
	// Key is the content address of Spec (JobSpec.Key).
	Key string `json:"key"`
	// Spec is the normalized job configuration.
	Spec JobSpec `json:"spec"`
	// Host and CreatedAt are measurement provenance.
	Host      HostInfo  `json:"host"`
	CreatedAt time.Time `json:"created_at"`
	// Seq is the sequential baseline (shared across cells of one
	// bench/class, re-stated per record for self-containedness).
	Seq SeqSummary `json:"seq"`
	// ElapsedNS is the wall-clock time of the parallel recording run.
	ElapsedNS int64 `json:"elapsed_ns"`
	// Metric is the application throughput-metric basis, when the
	// benchmark reports one (Floorplan's nodes visited).
	Metric float64 `json:"metric,omitempty"`
	// Stats are the real runtime's counters for the recording run.
	Stats *omp.Stats `json:"stats"`
	// Tasks is the number of explicit tasks in the recorded trace.
	Tasks int `json:"tasks"`
	// Analysis is the work/span summary of the recorded task graph
	// (the trace itself is not stored; its analysis is).
	Analysis *trace.Analysis `json:"analysis,omitempty"`
	// Sim is the simulated replay on Spec.Simulate virtual threads.
	Sim *SimSummary `json:"sim"`
	// Verified reports whether the parallel digest passed the
	// benchmark's verification rules; VerifyError carries the failure.
	Verified    bool   `json:"verified"`
	VerifyError string `json:"verify_error,omitempty"`
}

// Speedup is the record's headline number: the simulated speedup over
// the measured sequential baseline.
func (r *Record) Speedup() float64 {
	if r.Sim == nil {
		return 0
	}
	return r.Sim.Speedup
}

// WriteJSON writes the record as a single JSON object.
func (r *Record) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Matches reports whether the record satisfies a field filter, as
// used by GET /results: empty filter fields match everything.
func (r *Record) Matches(f Filter) bool {
	if f.Bench != "" && r.Spec.Bench != f.Bench {
		return false
	}
	if f.Version != "" && r.Spec.Version != f.Version {
		return false
	}
	if f.Class != "" && r.Spec.Class != f.Class {
		return false
	}
	if f.Threads != 0 && r.Spec.Threads != f.Threads {
		return false
	}
	if f.Key != "" && r.Key != f.Key {
		return false
	}
	if f.Verified != nil && r.Verified != *f.Verified {
		return false
	}
	return true
}

// Filter selects records by exact field match; zero values match all.
type Filter struct {
	Bench    string
	Version  string
	Class    string
	Threads  int
	Key      string
	Verified *bool
}

func (f Filter) String() string {
	return fmt.Sprintf("bench=%s version=%s class=%s threads=%d key=%s",
		f.Bench, f.Version, f.Class, f.Threads, f.Key)
}
