package lab

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bots/internal/obs"
)

// WorkerClient is the worker half of the fleet protocol: it registers
// with a coordinator, pulls leases over HTTP, executes them through a
// local Executor (the same one DirectRunner uses, so a record is
// byte-for-byte what an in-process run would have produced, modulo
// provenance), heartbeats while executing, and ships Records back.
// cmd/botsd wraps it in a process; fleet tests run it in-process
// against an httptest coordinator.
type WorkerClient struct {
	// Coordinator is the lab server's base URL (http://host:port).
	Coordinator string
	// Name labels this worker in records (Host.Worker) and GET /workers.
	Name string
	// Capacity bounds concurrently executing leases (default 1).
	Capacity int
	// Poll is the idle re-lease interval (default 250ms).
	Poll time.Duration
	// Exec runs the leases. Defaults to a fresh Executor.
	Exec *Executor
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Logf, when non-nil, receives progress lines (botsd points it at
	// stderr; tests leave it nil).
	Logf func(format string, args ...any)
	// RequestTimeout bounds each coordinator request (default 5s), so
	// a stalled wire — injected latency, half-open connection — costs
	// one timeout, not a hung worker.
	RequestTimeout time.Duration
	// WireRetries is how many times a failed coordinator request is
	// retried (default 2; negative disables). Retries cover transport
	// errors and 5xx responses with jittered exponential backoff; 4xx
	// responses are the coordinator speaking clearly and never retried.
	// Every endpoint is safe to repeat: registration worst-case leaves
	// a ghost worker that ages out, and duplicate results land on
	// content-addressed keys.
	WireRetries int
	// StartupRetries is how many times the initial registration is
	// re-attempted (after its own wire retries) when the coordinator
	// is unreachable at startup — botsd racing `botslab -fleet` at
	// boot. Default 0: fail fast, for tests and interactive use.
	StartupRetries int
	// Clock replaces time.Now for chaos tests that skew the worker's
	// view of time.
	Clock func() time.Time

	workerID string
	ttl      time.Duration

	mu     sync.Mutex
	active map[string]*leaseRun // leaseID → in-flight execution

	done    atomic.Int64
	failed  atomic.Int64
	retries atomic.Int64 // wire-level request retries, for /metrics
}

type leaseRun struct {
	lease Lease
	start time.Time
	// expires is the lease deadline measured on the WORKER's clock
	// from the coordinator-issued relative TTL — immune to clock skew
	// between the two hosts (DESIGN.md §14).
	expires time.Time
	lost    bool // coordinator reported the lease expired under us
}

func (c *WorkerClient) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *WorkerClient) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now()
}

// Retries reports lifetime wire-level request retries.
func (c *WorkerClient) Retries() int64 { return c.retries.Load() }

// RegisterObs exposes the worker's wire counters on an obs registry
// (botsd's -metrics-addr endpoint).
func (c *WorkerClient) RegisterObs(reg *obs.Registry) {
	reg.CounterFunc("bots_lab_http_retries_total",
		"Coordinator requests retried after a transport error or 5xx.",
		func() float64 { return float64(c.retries.Load()) })
	reg.CounterFunc("bots_lab_worker_leases_done_total",
		"Leases executed to a record by this worker.",
		func() float64 { return float64(c.done.Load()) })
	reg.CounterFunc("bots_lab_worker_leases_failed_total",
		"Leases that failed execution on this worker.",
		func() float64 { return float64(c.failed.Load()) })
}

// Run is the daemon loop: register, then lease/execute/report until
// ctx is cancelled. Cancellation (SIGTERM in botsd) drains
// gracefully: no new leases are taken, in-flight executions finish,
// their results are posted with a background context, and the worker
// deregisters before returning.
func (c *WorkerClient) Run(ctx context.Context) error {
	if c.Capacity < 1 {
		c.Capacity = 1
	}
	if c.Poll <= 0 {
		c.Poll = 250 * time.Millisecond
	}
	if c.Exec == nil {
		c.Exec = NewExecutor()
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.WireRetries == 0 {
		c.WireRetries = 2
	}
	c.active = map[string]*leaseRun{}

	// Startup: the coordinator may not be up yet (botsd and botslab
	// racing out of the same supervisor). Retry registration with
	// backoff up to StartupRetries times; a SIGTERM while waiting is a
	// clean shutdown, not an error.
	for attempt := 0; ; attempt++ {
		err := c.register(ctx)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			c.logf("shutdown requested before registration completed")
			return nil
		}
		if attempt >= c.StartupRetries {
			return err
		}
		delay := backoffDelay(500*time.Millisecond, 10*time.Second, attempt+1)
		c.logf("registration failed (attempt %d of %d): %v; retrying in %s",
			attempt+1, c.StartupRetries+1, err, delay.Round(time.Millisecond))
		if !c.sleep(ctx, delay) {
			c.logf("shutdown requested before registration completed")
			return nil
		}
	}
	c.logf("registered as %s (capacity %d, lease TTL %s)", c.workerID, c.Capacity, c.ttl)

	// Heartbeats renew held leases at TTL/3 — one missed beat leaves
	// slack, two risk the deadline.
	hbCtx, hbCancel := context.WithCancel(context.Background())
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(c.ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				c.heartbeat()
			}
		}
	}()

	sem := make(chan struct{}, c.Capacity)
	var execWG sync.WaitGroup
lease:
	for {
		select {
		case <-ctx.Done():
			break lease
		default:
		}
		// Claim free slots before asking, so the coordinator never
		// grants more than this worker can actually start.
		free := 0
	claim:
		for free < c.Capacity {
			select {
			case sem <- struct{}{}:
				free++
			default:
				break claim
			}
		}
		if free == 0 {
			if !c.sleep(ctx, c.Poll) {
				break lease
			}
			continue
		}
		leases, err := c.lease(ctx, free)
		if err != nil {
			for i := 0; i < free; i++ {
				<-sem
			}
			if ctx.Err() != nil {
				break lease
			}
			c.logf("lease request failed: %v", err)
			if !c.sleep(ctx, c.Poll) {
				break lease
			}
			continue
		}
		for i := len(leases); i < free; i++ {
			<-sem // return unused slots
		}
		if len(leases) == 0 {
			if !c.sleep(ctx, c.Poll) {
				break lease
			}
			continue
		}
		for _, l := range leases {
			l := l
			ttl := time.Duration(l.TTLNS)
			if ttl <= 0 {
				ttl = c.ttl
			}
			c.mu.Lock()
			// Expiry measured on OUR clock from the relative TTL — the
			// coordinator's absolute Deadline is never consulted, so
			// clock skew between the hosts cannot strand a lease.
			c.active[l.ID] = &leaseRun{lease: l, start: time.Now(), expires: c.now().Add(ttl)}
			c.mu.Unlock()
			execWG.Add(1)
			go func() {
				defer execWG.Done()
				defer func() { <-sem }()
				c.execute(l)
			}()
		}
	}

	c.logf("draining: waiting for %d in-flight lease(s)", len(sem))
	execWG.Wait()
	hbCancel()
	hbWG.Wait()
	c.deregister()
	c.logf("drained and deregistered (%d done, %d failed)", c.done.Load(), c.failed.Load())
	return nil
}

// Done and Failed report lifetime execution counts.
func (c *WorkerClient) Done() int64   { return c.done.Load() }
func (c *WorkerClient) Failed() int64 { return c.failed.Load() }

// execute runs one lease and reports the outcome. Results are posted
// with a background context: a drain (SIGTERM) must still deliver
// work already paid for.
func (c *WorkerClient) execute(l Lease) {
	c.logf("lease %s: %s/%s %s t=%d (attempt %d)",
		l.ID, l.Spec.Bench, l.Spec.Version, l.Spec.Class, l.Spec.Threads, l.Attempt)
	start := time.Now()
	rec, err := c.Exec.Execute(l.Spec)
	c.mu.Lock()
	run := c.active[l.ID]
	delete(c.active, l.ID)
	c.mu.Unlock()
	if run != nil && run.lost {
		c.logf("lease %s: finished after coordinator gave up on it; result will land as an orphan", l.ID)
	}

	var errMsg string
	if err != nil {
		c.failed.Add(1)
		errMsg = err.Error()
		c.logf("lease %s: failed after %s: %v", l.ID, time.Since(start).Round(time.Millisecond), err)
	} else {
		rec.Host.Worker = c.Name
		c.done.Add(1)
		c.logf("lease %s: done in %s (verified=%v)", l.ID, time.Since(start).Round(time.Millisecond), rec.Verified)
	}
	body := map[string]any{"lease_id": l.ID, "record": rec, "error": errMsg}
	if err := c.post(context.Background(), "/results", body, nil); err != nil {
		c.logf("lease %s: posting result: %v", l.ID, err)
	}
}

func (c *WorkerClient) register(ctx context.Context) error {
	var resp struct {
		WorkerID   string `json:"worker_id"`
		LeaseTTLNS int64  `json:"lease_ttl_ns"`
	}
	err := c.post(ctx, "/workers/register", map[string]any{"name": c.Name, "capacity": c.Capacity}, &resp)
	if err != nil {
		return fmt.Errorf("lab: registering with %s: %w", c.Coordinator, err)
	}
	c.workerID = resp.WorkerID
	c.ttl = time.Duration(resp.LeaseTTLNS)
	if c.ttl <= 0 {
		c.ttl = 10 * time.Second
	}
	return nil
}

func (c *WorkerClient) deregister() {
	c.post(context.Background(), "/workers/deregister", map[string]any{"worker_id": c.workerID}, nil)
}

func (c *WorkerClient) lease(ctx context.Context, max int) ([]Lease, error) {
	var resp struct {
		Leases []Lease `json:"leases"`
	}
	err := c.post(ctx, "/leases", map[string]any{"worker_id": c.workerID, "max": max}, &resp)
	if isUnknownWorker(err) {
		// Coordinator restarted or declared us dead: re-register and
		// resume with the fresh identity.
		c.logf("coordinator no longer knows us; re-registering")
		if rerr := c.register(ctx); rerr != nil {
			return nil, rerr
		}
		return nil, nil
	}
	return resp.Leases, err
}

// heartbeat renews every in-flight lease, reporting elapsed time as
// progress. A lease the coordinator reports lost has expired under us
// (our fault or its clock); the execution continues — its record
// still lands in the store as an orphan — but we log the downgrade.
func (c *WorkerClient) heartbeat() {
	c.mu.Lock()
	progress := make([]HeartbeatProgress, 0, len(c.active))
	for id, run := range c.active {
		progress = append(progress, HeartbeatProgress{ID: id, ElapsedNS: time.Since(run.start).Nanoseconds()})
	}
	c.mu.Unlock()
	var resp struct {
		Renewed []string `json:"renewed"`
		Lost    []string `json:"lost"`
	}
	err := c.post(context.Background(), "/heartbeats", map[string]any{"worker_id": c.workerID, "leases": progress}, &resp)
	if err != nil {
		c.logf("heartbeat failed: %v", err)
		return
	}
	now := c.now()
	c.mu.Lock()
	for _, id := range resp.Renewed {
		if run := c.active[id]; run != nil {
			run.expires = now.Add(c.ttl)
		}
	}
	for _, id := range resp.Lost {
		if run := c.active[id]; run != nil && !run.lost {
			run.lost = true
			c.logf("lease %s expired under us; finishing as orphan", id)
		}
	}
	c.mu.Unlock()
}

func (c *WorkerClient) sleep(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// httpStatusError carries a non-2xx response for isUnknownWorker.
type httpStatusError struct {
	status int
	body   string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("lab: coordinator returned %d: %s", e.status, e.body)
}

func isUnknownWorker(err error) bool {
	se, ok := err.(*httpStatusError)
	return ok && se.status == http.StatusNotFound
}

// post sends one coordinator request with a per-attempt timeout and
// bounded retries. Transport errors and 5xx responses retry with the
// shared jittered backoff; a 4xx is the coordinator speaking clearly
// (unknown worker, bad request) and returns immediately. ctx
// cancellation stops the retry loop between attempts.
func (c *WorkerClient) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	attempts := c.WireRetries + 1
	if attempts < 1 {
		attempts = 1
	}
	var last error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			if !c.sleep(ctx, backoffDelay(100*time.Millisecond, 2*time.Second, attempt-1)) {
				return last
			}
		}
		err := c.postOnce(ctx, path, buf, out)
		if err == nil {
			return nil
		}
		if se, ok := err.(*httpStatusError); ok && se.status < 500 {
			return err // 4xx: retrying cannot change the answer
		}
		if ctx.Err() != nil {
			return err
		}
		last = err
	}
	return fmt.Errorf("%w (after %d attempts)", last, attempts)
}

func (c *WorkerClient) postOnce(ctx context.Context, path string, buf []byte, out any) error {
	timeout := c.RequestTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, c.Coordinator+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode/100 != 2 {
		return &httpStatusError{status: resp.StatusCode, body: string(bytes.TrimSpace(data))}
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}
