package lab_test

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bots/internal/lab"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "fleet.journal")
}

// funcRunner adapts a closure to lab.Runner for tests that need
// per-spec behaviour (the shared fakeRunner only counts and fails).
type funcRunner func(lab.JobSpec) (*lab.Record, error)

func (f funcRunner) Run(spec lab.JobSpec) (*lab.Record, error) { return f(spec) }

func waitCond(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalRoundTripRecovery is the core recovery contract: a
// journal that saw a sweep submitted and some cells finish replays
// into a Recovery whose Pending() is exactly the unfinished cells.
func TestJournalRoundTripRecovery(t *testing.T) {
	path := journalPath(t)
	j, rec, err := lab.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Events != 0 || len(rec.Sweeps) != 0 {
		t.Fatalf("fresh journal recovery = %+v", rec)
	}
	jobs := []lab.JobSpec{
		testSpec("fib", 1).Normalize(),
		testSpec("fib", 2).Normalize(),
		testSpec("fib", 4).Normalize(),
	}
	id := j.BeginSweep("night-run", 2, jobs)
	if id == "" {
		t.Fatal("BeginSweep returned empty id")
	}
	j.LeaseGranted("l1", jobs[0].Key(), "w1", 1)
	j.LeaseRenewed("l1")
	j.LeaseCompleted("l1", jobs[0].Key(), true)
	j.JobDone(id, jobs[0].Key(), lab.JobDone)
	j.JobRequeued(jobs[1].Key(), "lease expired")
	j.Close()

	_, rec2, err := lab.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Events != 6 {
		t.Fatalf("replayed %d events, want 6", rec2.Events)
	}
	if rec2.Grants != 1 || rec2.Renewals != 1 || rec2.Completions != 1 || rec2.Requeues != 1 {
		t.Fatalf("lease counts = %+v", rec2)
	}
	if len(rec2.Sweeps) != 1 {
		t.Fatalf("recovered %d sweeps, want 1", len(rec2.Sweeps))
	}
	sw := rec2.Sweeps[0]
	if sw.JournalID != id || sw.Name != "night-run" || sw.Instances != 2 {
		t.Fatalf("recovered sweep = %+v", sw)
	}
	pending := sw.Pending()
	if len(pending) != 2 {
		t.Fatalf("pending = %d cells, want 2 (one finished)", len(pending))
	}
	for _, p := range pending {
		if p.Key() == jobs[0].Key() {
			t.Fatal("finished cell came back as pending")
		}
	}
}

// TestJournalCompactionDropsFinishedWork pins the growth bound:
// reopening drops finished and cancelled sweeps entirely, and a
// second reopen of a fully-finished journal replays zero events.
func TestJournalCompactionDropsFinishedWork(t *testing.T) {
	path := journalPath(t)
	j, _, err := lab.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	done := []lab.JobSpec{testSpec("fib", 1).Normalize()}
	idDone := j.BeginSweep("finished", 0, done)
	j.JobDone(idDone, done[0].Key(), lab.JobDone)
	idCancelled := j.BeginSweep("cancelled", 0, []lab.JobSpec{testSpec("fib", 2).Normalize()})
	j.SweepCancelled(idCancelled)
	live := []lab.JobSpec{testSpec("nqueens", 1).Normalize()}
	idLive := j.BeginSweep("live", 0, live)
	j.Close()

	_, rec, err := lab.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sweeps) != 1 || rec.Sweeps[0].JournalID != idLive {
		t.Fatalf("recovery kept %+v, want only the live sweep", rec.Sweeps)
	}
	// The compacted file holds only the live sweep's submission.
	_, rec2, err := lab.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Events != 1 || len(rec2.Sweeps) != 1 {
		t.Fatalf("second replay: %d events, %d sweeps; want 1 and 1", rec2.Events, len(rec2.Sweeps))
	}
	// And a later sweep ID never collides with a replayed one.
	j3, _, err := lab.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if next := j3.BeginSweep("next", 0, done); next == idLive || next == idDone {
		t.Fatalf("sweep id %s reused across incarnations", next)
	}
}

// TestJournalTornTailTolerated: a coordinator killed mid-append loses
// exactly the torn line; the journal reopens and recovers the rest.
func TestJournalTornTailTolerated(t *testing.T) {
	path := journalPath(t)
	j, _, err := lab.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []lab.JobSpec{testSpec("fib", 1).Normalize()}
	j.BeginSweep("survivor", 0, jobs)
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":"0badf00d","p":{"t":"job","sw`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, rec, err := lab.OpenJournal(path)
	if err != nil {
		t.Fatalf("torn journal failed to open: %v", err)
	}
	if rec.Repair == nil {
		t.Fatal("torn tail not reported")
	}
	if len(rec.Sweeps) != 1 || rec.Sweeps[0].Name != "survivor" {
		t.Fatalf("recovery after tear = %+v", rec.Sweeps)
	}
}

// TestJournalClosedAppendsAreNoOps: a closed journal swallows writes,
// so a crash simulation can sever journaling while its dispatcher
// drains without polluting the file the next incarnation reads.
func TestJournalClosedAppendsAreNoOps(t *testing.T) {
	path := journalPath(t)
	j, _, err := lab.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	id := j.BeginSweep("s", 0, []lab.JobSpec{testSpec("fib", 1).Normalize()})
	j.Close()
	j.JobDone(id, "k", lab.JobFailed)
	j.LeaseGranted("l9", "k", "w9", 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "l9") || strings.Contains(string(raw), "failed") {
		t.Fatal("closed journal accepted appends")
	}
	var nilJ *lab.Journal
	nilJ.JobDone("x", "y", lab.JobDone) // nil receiver must not panic
	nilJ.Close()
}

// TestDispatcherJournalsAndResumes drives the full loop in-process:
// a journaled dispatcher finishes half a sweep, "crashes", and a new
// dispatcher resumes only the unfinished cells.
func TestDispatcherJournalsAndResumes(t *testing.T) {
	path := journalPath(t)
	j, _, err := lab.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []lab.JobSpec{
		testSpec("fib", 1).Normalize(),
		testSpec("fib", 2).Normalize(),
		testSpec("fib", 4).Normalize(),
		testSpec("fib", 8).Normalize(),
	}
	// Incarnation A: runner succeeds for threads 1 and 2, hangs the
	// rest past the "crash".
	blocked := make(chan struct{})
	runA := funcRunner(func(spec lab.JobSpec) (*lab.Record, error) {
		if spec.Threads > 2 {
			<-blocked
		}
		return fakeRecordFor(spec, "a"), nil
	})
	dispA := lab.NewDispatcher(runA, 4, 0)
	dispA.Journal = j
	sw, err := dispA.SubmitJobs("resumable", jobs)
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, 5*time.Second, func() bool { return sw.Status().Done == 2 })
	j.Close() // crash: journaling severed mid-sweep
	close(blocked)
	dispA.Close()

	// Incarnation B replays and resumes.
	j2, rec, err := lab.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var ranMu sync.Mutex
	var ran []int
	runB := funcRunner(func(spec lab.JobSpec) (*lab.Record, error) {
		ranMu.Lock()
		ran = append(ran, spec.Threads)
		ranMu.Unlock()
		return fakeRecordFor(spec, "b"), nil
	})
	dispB := lab.NewDispatcher(runB, 2, 0)
	dispB.Journal = j2
	sweeps, cells, err := dispB.Resume(rec)
	if err != nil {
		t.Fatal(err)
	}
	if sweeps != 1 || cells != 2 {
		t.Fatalf("resumed %d sweeps / %d cells, want 1 / 2", sweeps, cells)
	}
	all := dispB.Sweeps()
	if len(all) != 1 {
		t.Fatalf("dispatcher B has %d sweeps", len(all))
	}
	st := all[0].Wait()
	if st.Done != 2 || st.Failed != 0 {
		t.Fatalf("resumed sweep finished %+v", st)
	}
	for _, th := range ran {
		if th <= 2 {
			t.Fatalf("cell with threads=%d re-ran despite journaled completion", th)
		}
	}
	dispB.Close()

	// Incarnation C: everything finished, nothing to recover.
	_, rec3, err := lab.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Sweeps) != 0 {
		t.Fatalf("fully finished journal still recovers %+v", rec3.Sweeps)
	}
}
