// Package lab is the experiment-orchestration subsystem: declarative
// sweep manifests over the suite's configuration axes (benchmark ×
// version × class × threads × cut-off × runtime cut-off × policy ×
// simulated team × procs × pinning), a bounded-worker dispatcher that runs the expanded
// cells, a persistent content-addressed result store, and an HTTP
// service that accepts sweeps and serves records and rendered report
// figures.
//
// The paper's evaluation is exactly such a grid; the lab makes each
// cell a first-class, cacheable artifact (a Record keyed by the
// canonical content address of its JobSpec) so regenerating a figure
// re-executes nothing that has already been measured.
package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"bots/internal/core"
	"bots/internal/omp"
)

// SimOverrides are the simulator cost-model knobs a job may override
// relative to sim.DefaultOverheads. Only the ablation-bearing fields
// are exposed: they are part of the job's content address, so a
// counterfactual run never aliases a baseline record.
type SimOverrides struct {
	// ThreadSwitch enables untied continuation migration (§IV-C
	// counterfactual); SwitchNS is the migrated-resume cost.
	ThreadSwitch bool    `json:"thread_switch,omitempty"`
	SwitchNS     float64 `json:"switch_ns,omitempty"`
	// QueueSerializeNS, when positive, models a central shared task
	// queue instead of per-worker deques.
	QueueSerializeNS float64 `json:"queue_serialize_ns,omitempty"`
}

func (o *SimOverrides) zero() bool {
	return o == nil || (!o.ThreadSwitch && o.SwitchNS == 0 && o.QueueSerializeNS == 0)
}

// JobSpec identifies one experiment cell: everything needed to
// reproduce a single (record + simulate + verify) execution. Its
// canonical form (Normalize) is content-addressed by Key.
type JobSpec struct {
	Bench   string `json:"bench"`
	Version string `json:"version"`
	Class   string `json:"class"`
	// Threads is the recording team size and, unless Simulate is set,
	// the simulated team size.
	Threads int `json:"threads"`
	// CutoffDepth overrides the application depth cut-off (0 = app
	// default).
	CutoffDepth int `json:"cutoff_depth,omitempty"`
	// RuntimeCutoff is the runtime cut-off policy name, resolved
	// against the omp registry (omp.Cutoffs(); "" = none).
	RuntimeCutoff string `json:"runtime_cutoff,omitempty"`
	// Policy is the scheduler's registry name (omp.Schedulers():
	// workfirst/breadthfirst/centralized/locality; "" = workfirst).
	// It selects both the real runtime scheduler and the simulator's
	// matching queue discipline.
	Policy string `json:"policy,omitempty"`
	// Simulate is the simulated (virtual) team size; 0 means Threads.
	Simulate int `json:"simulate,omitempty"`
	// Procs, when positive, is the GOMAXPROCS value for the recording
	// run — the oversubscription axis (Threads > Procs oversubscribes
	// workers onto fewer cores; 0 keeps the process default). Cells
	// with Procs set run exclusively (GOMAXPROCS is process-global).
	Procs int `json:"procs,omitempty"`
	// Pin wires each team worker to an OS thread for the recording run
	// (omp.WithPinning) — the pinning half of the axis.
	Pin bool `json:"pin,omitempty"`
	// Overheads are optional simulator cost-model overrides.
	Overheads *SimOverrides `json:"overheads,omitempty"`
}

// Normalize returns the canonical form of the spec: defaults made
// explicit where they change identity (Simulate), policy names
// re-rendered through their registries (so spelling variants of one
// configuration — "workfirst(32)" is the default steal batch, its
// canonical name is "workfirst" — share a key), default-valued
// strings collapsed to "", and zero-valued override structs dropped.
// Unresolvable names are left as written for Validate to reject.
func (j JobSpec) Normalize() JobSpec {
	if j.Simulate == 0 {
		j.Simulate = j.Threads
	}
	if c, err := omp.NewCutoff(j.RuntimeCutoff); err == nil {
		j.RuntimeCutoff = c.Name()
	}
	if j.RuntimeCutoff == "none" {
		j.RuntimeCutoff = ""
	}
	if s, err := omp.NewScheduler(j.Policy); err == nil {
		j.Policy = s.Name()
	}
	if j.Policy == omp.DefaultScheduler {
		j.Policy = ""
	}
	if j.Overheads.zero() {
		j.Overheads = nil
	} else {
		o := *j.Overheads
		if !o.ThreadSwitch {
			o.SwitchNS = 0 // SwitchNS is only meaningful with ThreadSwitch
		}
		j.Overheads = &o
	}
	return j
}

// Key returns the job's content address: a short hex digest of the
// normalized spec's canonical serialization. Two specs that describe
// the same cell always share a key.
func (j JobSpec) Key() string {
	n := j.Normalize()
	var ts int
	var sw, qs float64
	if n.Overheads != nil {
		if n.Overheads.ThreadSwitch {
			ts = 1
		}
		sw = n.Overheads.SwitchNS
		qs = n.Overheads.QueueSerializeNS
	}
	pin := 0
	if n.Pin {
		pin = 1
	}
	// v2 added the procs/pin execution axes; every field participates
	// unconditionally so two specs differing only in a new axis can
	// never alias (v1 records re-measure under v2 keys).
	canon := fmt.Sprintf("bots-job-v2|bench=%s|version=%s|class=%s|threads=%d|cutoff=%d|rtcutoff=%s|policy=%s|sim=%d|procs=%d|pin=%d|ts=%d|switchns=%g|qserns=%g",
		n.Bench, n.Version, n.Class, n.Threads, n.CutoffDepth, n.RuntimeCutoff, n.Policy, n.Simulate, n.Procs, pin, ts, sw, qs)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:8])
}

// Validate checks the spec against the registry and the runtime's
// option vocabulary.
func (j JobSpec) Validate() error {
	b, err := core.Get(j.Bench)
	if err != nil {
		return err
	}
	if !b.HasVersion(j.Version) {
		return fmt.Errorf("lab: %s has no version %q", j.Bench, j.Version)
	}
	if _, err := core.ParseClass(j.Class); err != nil {
		return err
	}
	if j.Threads < 1 {
		return fmt.Errorf("lab: job %s/%s has non-positive thread count %d", j.Bench, j.Version, j.Threads)
	}
	if j.Simulate != 0 && j.Simulate < j.Threads {
		return fmt.Errorf("lab: job %s/%s simulates %d threads but records on a %d-thread team (need simulate >= threads)",
			j.Bench, j.Version, j.Simulate, j.Threads)
	}
	if j.CutoffDepth < 0 {
		return fmt.Errorf("lab: job %s/%s has negative cut-off depth %d", j.Bench, j.Version, j.CutoffDepth)
	}
	if j.Procs < 0 {
		return fmt.Errorf("lab: job %s/%s has negative procs %d", j.Bench, j.Version, j.Procs)
	}
	// Name vocabularies have one source of truth: the omp registries.
	if _, err := omp.NewCutoff(j.RuntimeCutoff); err != nil {
		return err
	}
	if _, err := omp.NewScheduler(j.Policy); err != nil {
		return err
	}
	return nil
}

// SweepSpec is a declarative manifest describing a grid of experiment
// cells, testground-style: every axis is a list and the sweep is the
// cross product, filtered to versions each benchmark actually has and
// deduplicated by content address.
type SweepSpec struct {
	// Name labels the sweep in status output.
	Name string `json:"name,omitempty"`
	// Instances is the testground-style worker-count wish: at most this
	// many cells of the sweep run concurrently (0 = no per-sweep cap).
	// It is a request, not a reservation — when the pool or the fleet
	// has fewer workers than asked for, the sweep degrades gracefully
	// to the parallelism actually available instead of erroring.
	Instances int `json:"instances,omitempty"`
	// Benches lists benchmark names; the keywords "paper", "extensions"
	// and "all" expand to the corresponding registry sets.
	Benches []string `json:"benches"`
	// Versions lists version names; the keyword "best" selects each
	// benchmark's BestVersion. A version that exists on some selected
	// benchmarks and not others applies only where it exists; a
	// version no selected benchmark has is an error. Empty means
	// ["best"].
	Versions []string `json:"versions,omitempty"`
	// Classes lists input classes. Empty means ["test"].
	Classes []string `json:"classes,omitempty"`
	// Threads is the recording team-size axis. Empty means [1].
	Threads []int `json:"threads"`
	// CutoffDepths is the application cut-off axis (0 = app default).
	// Empty means [0].
	CutoffDepths []int `json:"cutoff_depths,omitempty"`
	// RuntimeCutoffs is the runtime cut-off axis (omp.Cutoffs()
	// names). Empty means ["none"].
	RuntimeCutoffs []string `json:"runtime_cutoffs,omitempty"`
	// Policies is the scheduler axis (omp.Schedulers() names). Empty
	// means ["workfirst"].
	Policies []string `json:"policies,omitempty"`
	// Simulate is the virtual-team-size axis (0 = same as threads).
	// Empty means [0].
	Simulate []int `json:"simulate,omitempty"`
	// Procs is the GOMAXPROCS axis for the recording run (0 = process
	// default). Sweeping Procs against Threads is the oversubscription
	// grid. Empty means [0].
	Procs []int `json:"procs,omitempty"`
	// Pin is the OS-thread-pinning axis. Empty means [false].
	Pin []bool `json:"pin,omitempty"`
	// Overheads optionally applies simulator overrides to every cell.
	Overheads *SimOverrides `json:"overheads,omitempty"`
}

// ReadSweepSpec decodes a JSON manifest, rejecting unknown fields so
// a typoed axis name fails loudly instead of silently shrinking the
// sweep.
func ReadSweepSpec(r io.Reader) (SweepSpec, error) {
	var s SweepSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("lab: decoding sweep manifest: %w", err)
	}
	return s, nil
}

// Expand resolves the manifest into the deduplicated, deterministic
// list of job cells. The result is sorted by canonical identity so
// identical manifests always expand identically (golden-testable).
func (s SweepSpec) Expand() ([]JobSpec, error) {
	benches, err := s.resolveBenches()
	if err != nil {
		return nil, err
	}
	versions := s.Versions
	if len(versions) == 0 {
		versions = []string{"best"}
	}
	classes := s.Classes
	if len(classes) == 0 {
		classes = []string{"test"}
	}
	for _, c := range classes {
		if _, err := core.ParseClass(c); err != nil {
			return nil, err
		}
	}
	threads := s.Threads
	if len(threads) == 0 {
		threads = []int{1}
	}
	cutoffs := s.CutoffDepths
	if len(cutoffs) == 0 {
		cutoffs = []int{0}
	}
	rtCutoffs := s.RuntimeCutoffs
	if len(rtCutoffs) == 0 {
		rtCutoffs = []string{"none"}
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = []string{"workfirst"}
	}
	sims := s.Simulate
	if len(sims) == 0 {
		sims = []int{0}
	}
	procs := s.Procs
	if len(procs) == 0 {
		procs = []int{0}
	}
	pins := s.Pin
	if len(pins) == 0 {
		pins = []bool{false}
	}

	versionUsed := make(map[string]bool, len(versions))
	seen := map[string]bool{}
	var jobs []JobSpec
	for _, b := range benches {
		for _, v := range versions {
			name := v
			if v == "best" {
				name = b.BestVersion
			} else if !b.HasVersion(v) {
				continue
			}
			versionUsed[v] = true
			for _, class := range classes {
				for _, t := range threads {
					for _, cd := range cutoffs {
						for _, rc := range rtCutoffs {
							for _, pol := range policies {
								for _, sim := range sims {
									for _, pr := range procs {
										for _, pin := range pins {
											j := JobSpec{
												Bench: b.Name, Version: name, Class: class,
												Threads: t, CutoffDepth: cd, RuntimeCutoff: rc,
												Policy: pol, Simulate: sim,
												Procs: pr, Pin: pin,
												Overheads: s.Overheads,
											}.Normalize()
											if err := j.Validate(); err != nil {
												return nil, err
											}
											if k := j.Key(); !seen[k] {
												seen[k] = true
												jobs = append(jobs, j)
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	for _, v := range versions {
		if !versionUsed[v] {
			return nil, fmt.Errorf("lab: no selected benchmark has version %q", v)
		}
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].less(jobs[k]) })
	return jobs, nil
}

func (j JobSpec) less(o JobSpec) bool {
	if j.Bench != o.Bench {
		return j.Bench < o.Bench
	}
	if j.Version != o.Version {
		return j.Version < o.Version
	}
	if j.Class != o.Class {
		return j.Class < o.Class
	}
	if j.Threads != o.Threads {
		return j.Threads < o.Threads
	}
	if j.CutoffDepth != o.CutoffDepth {
		return j.CutoffDepth < o.CutoffDepth
	}
	if j.RuntimeCutoff != o.RuntimeCutoff {
		return j.RuntimeCutoff < o.RuntimeCutoff
	}
	if j.Policy != o.Policy {
		return j.Policy < o.Policy
	}
	if j.Simulate != o.Simulate {
		return j.Simulate < o.Simulate
	}
	if j.Procs != o.Procs {
		return j.Procs < o.Procs
	}
	if j.Pin != o.Pin {
		return !j.Pin
	}
	return j.Key() < o.Key()
}

func (s SweepSpec) resolveBenches() ([]*core.Benchmark, error) {
	if len(s.Benches) == 0 {
		return nil, fmt.Errorf("lab: sweep manifest selects no benchmarks")
	}
	seen := map[string]bool{}
	var out []*core.Benchmark
	add := func(bs ...*core.Benchmark) {
		for _, b := range bs {
			if !seen[b.Name] {
				seen[b.Name] = true
				out = append(out, b)
			}
		}
	}
	for _, name := range s.Benches {
		switch name {
		case "paper":
			add(core.Paper()...)
		case "extensions":
			add(core.Extensions()...)
		case "all":
			add(core.All()...)
		default:
			b, err := core.Get(name)
			if err != nil {
				return nil, err
			}
			add(b)
		}
	}
	return out, nil
}
