package lab_test

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"

	_ "bots/internal/apps/all"
	"bots/internal/lab"
)

// TestPinningAxisExpand checks the oversubscription axes end to end
// through manifest expansion: the procs × pin grid multiplies the
// cell count and every cell gets a distinct canonical key.
func TestPinningAxisExpand(t *testing.T) {
	spec := lab.SweepSpec{
		Benches: []string{"fib"},
		Classes: []string{"test"},
		Threads: []int{2, 4},
		Procs:   []int{0, 2},
		Pin:     []bool{false, true},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2; len(jobs) != want {
		t.Fatalf("expanded %d cells, want %d (threads × procs × pin)", len(jobs), want)
	}
	keys := map[string]lab.JobSpec{}
	for _, j := range jobs {
		k := j.Key()
		if prev, dup := keys[k]; dup {
			t.Errorf("key collision: %+v and %+v share %s", prev, j, k)
		}
		keys[k] = j
	}
}

// TestPinningManifestFile keeps the committed example manifest
// expandable (it is the doc artifact for the axis; a schema drift
// that broke it would otherwise go unnoticed).
func TestPinningManifestFile(t *testing.T) {
	f, err := os.Open("../../examples/manifests/pinning-grid.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := lab.ReadSweepSpec(f)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("pinning-grid.json expanded to zero cells")
	}
}

// TestKeyDistinguishesKnobs pins the no-collision contract for the
// new execution knobs: a steal-batch override, a procs override, and
// the pin bit each change the canonical key, while spelling variants
// of the same configuration do not.
func TestKeyDistinguishesKnobs(t *testing.T) {
	base := lab.JobSpec{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 4}
	variants := []lab.JobSpec{
		func() lab.JobSpec { j := base; j.Policy = "workfirst(8)"; return j }(),
		func() lab.JobSpec { j := base; j.Procs = 2; return j }(),
		func() lab.JobSpec { j := base; j.Pin = true; return j }(),
		func() lab.JobSpec { j := base; j.Procs = 2; j.Pin = true; return j }(),
	}
	seen := map[string]bool{base.Key(): true}
	for _, v := range variants {
		if err := v.Validate(); err != nil {
			t.Fatalf("variant %+v invalid: %v", v, err)
		}
		k := v.Key()
		if seen[k] {
			t.Errorf("variant %+v does not change the key", v)
		}
		seen[k] = true
	}

	// Spelling variants of one configuration normalize to one key:
	// workfirst(32) is the default steal batch, i.e. plain workfirst.
	same := base
	same.Policy = "workfirst(32)"
	if same.Key() != base.Key() {
		t.Errorf("workfirst(32) and the default policy got different keys (%s vs %s)", same.Key(), base.Key())
	}
	if got := same.Normalize().Policy; got != "" {
		t.Errorf("Normalize left policy %q, want \"\" (default)", got)
	}
}

// TestExecutePinnedCell runs one oversubscribed, pinned cell through
// the real executor: the record must verify, round-trip its knobs
// through JSON, and leave the process GOMAXPROCS untouched.
func TestExecutePinnedCell(t *testing.T) {
	before := runtime.GOMAXPROCS(0)
	spec := lab.JobSpec{
		Bench: "fib", Version: "manual-tied", Class: "test",
		Threads: 4, Procs: 2, Pin: true,
	}
	rec, err := lab.NewExecutor().Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if after := runtime.GOMAXPROCS(0); after != before {
		t.Errorf("GOMAXPROCS not restored: %d before, %d after", before, after)
	}
	if !rec.Verified {
		t.Errorf("pinned cell failed verification: %s", rec.VerifyError)
	}
	if rec.Spec.Procs != 2 || !rec.Spec.Pin {
		t.Errorf("record spec lost the knobs: %+v", rec.Spec)
	}

	var sb strings.Builder
	if err := rec.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back lab.Record
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec.Procs != 2 || !back.Spec.Pin {
		t.Errorf("knobs did not survive the JSON round-trip: %+v", back.Spec)
	}
	if back.Key != spec.Key() {
		t.Errorf("record key %s does not match spec key %s", back.Key, spec.Key())
	}
	if back.Stats == nil || back.Stats.SchedulerSeed == 0 {
		t.Errorf("SchedulerSeed did not round-trip (stats=%+v)", back.Stats)
	}
}
