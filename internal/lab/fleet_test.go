package lab_test

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bots/internal/lab"
)

// fakeClock is a hand-advanced time source; with it the fleet runs no
// background expiry ticker, so tests drive ExpireDue deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testFleet(t *testing.T, clock *fakeClock, store *lab.Store) *lab.Fleet {
	t.Helper()
	f := lab.NewFleet(lab.FleetConfig{
		LeaseTTL:    10 * time.Second,
		MaxAttempts: 3,
		RetryBase:   time.Millisecond, // keep re-dispatch gates tiny vs. Advance steps
		RetryCap:    2 * time.Millisecond,
		Store:       store,
		Clock:       clock.Now,
	})
	t.Cleanup(f.Close)
	return f
}

func fakeRecordFor(spec lab.JobSpec, worker string) *lab.Record {
	spec = spec.Normalize()
	r := &lab.Record{Key: spec.Key(), Spec: spec, Verified: true, Tasks: 1}
	r.Host.Worker = worker
	return r
}

func waitTicket(t *testing.T, ticket *lab.FleetTicket) (*lab.Record, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return ticket.Wait(ctx)
}

func TestFleetLeaseGrantAndComplete(t *testing.T) {
	clock := newFakeClock()
	f := testFleet(t, clock, nil)
	w := f.Register("alpha", 2)

	ticket := f.Enqueue(testSpec("fib", 2))
	leases, err := f.Lease(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 1 {
		t.Fatalf("got %d leases, want 1", len(leases))
	}
	l := leases[0]
	if l.Attempt != 1 || l.Key != testSpec("fib", 2).Key() {
		t.Fatalf("lease = %+v", l)
	}
	if want := clock.Now().Add(10 * time.Second); !l.Deadline.Equal(want) {
		t.Fatalf("deadline = %v, want %v", l.Deadline, want)
	}

	f.Complete(l.ID, fakeRecordFor(l.Spec, "alpha"), "")
	rec, err := waitTicket(t, ticket)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Host.Worker != "alpha" {
		t.Fatalf("worker provenance = %q, want alpha", rec.Host.Worker)
	}
	st := f.Status()
	if st.LeasesGranted != 1 || st.LeasesActive != 0 || st.JobsCompleted != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.Workers[0].Done != 1 || st.Workers[0].State != lab.WorkerIdle {
		t.Fatalf("worker view = %+v", st.Workers[0])
	}
}

func TestFleetHeartbeatRenewsDeadline(t *testing.T) {
	clock := newFakeClock()
	f := testFleet(t, clock, nil)
	w := f.Register("alpha", 1)
	ticket := f.Enqueue(testSpec("fib", 1))
	leases, _ := f.Lease(w, 1)

	// 8s in (deadline at 10s), a heartbeat pushes the deadline out.
	clock.Advance(8 * time.Second)
	renewed, lost, err := f.Heartbeat(w, []lab.HeartbeatProgress{{ID: leases[0].ID, ElapsedNS: int64(8 * time.Second)}})
	if err != nil || len(renewed) != 1 || len(lost) != 0 {
		t.Fatalf("heartbeat = %v %v %v", renewed, lost, err)
	}
	// Another 8s: past the original deadline but inside the renewal.
	clock.Advance(8 * time.Second)
	if n := f.ExpireDue(); n != 0 {
		t.Fatalf("expired %d leases after renewal, want 0", n)
	}
	// 10 more seconds without a heartbeat: now it expires.
	clock.Advance(10 * time.Second)
	if n := f.ExpireDue(); n != 1 {
		t.Fatalf("expired %d leases, want 1", n)
	}
	// The job is back in the queue for another worker.
	clock.Advance(time.Second)
	leases2, _ := f.Lease(w, 1)
	if len(leases2) != 1 || leases2[0].Attempt != 2 {
		t.Fatalf("re-dispatch leases = %+v", leases2)
	}
	f.Complete(leases2[0].ID, fakeRecordFor(leases2[0].Spec, "alpha"), "")
	if _, err := waitTicket(t, ticket); err != nil {
		t.Fatal(err)
	}
	st := f.Status()
	if st.LeasesExpired != 1 || st.JobsRedispatched != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestFleetFailureRetryBackoffAndExhaustion(t *testing.T) {
	clock := newFakeClock()
	f := testFleet(t, clock, nil)
	w := f.Register("alpha", 1)
	ticket := f.Enqueue(testSpec("fib", 1))

	for attempt := 1; attempt <= 3; attempt++ {
		// The retry backoff gates the job: immediately after a failure
		// the queue offers nothing.
		leases, err := f.Lease(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		if attempt > 1 && len(leases) == 0 {
			t.Fatalf("attempt %d: job still gated after backoff window", attempt)
		}
		if len(leases) != 1 {
			t.Fatalf("attempt %d: got %d leases", attempt, len(leases))
		}
		if leases[0].Attempt != attempt {
			t.Fatalf("lease attempt = %d, want %d", leases[0].Attempt, attempt)
		}
		f.Complete(leases[0].ID, nil, "bench exploded")
		if attempt < 3 {
			if got, _ := f.Lease(w, 1); len(got) != 0 {
				t.Fatalf("attempt %d: leased again inside backoff window", attempt)
			}
			clock.Advance(50 * time.Millisecond) // well past the tiny RetryCap
		}
	}
	_, err := waitTicket(t, ticket)
	if err == nil || !strings.Contains(err.Error(), "after 3 lease attempts") {
		t.Fatalf("err = %v, want attempts-exhausted failure", err)
	}
	st := f.Status()
	if st.JobsFailed != 1 || st.JobsRedispatched != 2 {
		t.Fatalf("status = %+v", st)
	}
}

func TestFleetAbandonAndOrphanResult(t *testing.T) {
	clock := newFakeClock()
	store, err := lab.OpenStore(filepath.Join(t.TempDir(), "lab.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	f := testFleet(t, clock, store)
	w := f.Register("alpha", 1)

	// Abandon while queued: the job vanishes from the queue.
	queued := f.Enqueue(testSpec("fib", 1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := queued.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if leases, _ := f.Lease(w, 1); len(leases) != 0 {
		t.Fatalf("abandoned job still leased: %+v", leases)
	}

	// Abandon while leased: the worker's record becomes a store-bound
	// orphan instead of being thrown away.
	leased := f.Enqueue(testSpec("fib", 2))
	leases, _ := f.Lease(w, 1)
	if len(leases) != 1 {
		t.Fatalf("got %d leases, want 1", len(leases))
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := leased.Wait(ctx2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	f.Complete(leases[0].ID, fakeRecordFor(leases[0].Spec, "alpha"), "")
	if _, ok := store.Get(testSpec("fib", 2).Key()); !ok {
		t.Fatal("orphan record did not land in the store")
	}
	if st := f.Status(); st.OrphanResults != 1 {
		t.Fatalf("orphans = %d, want 1", st.OrphanResults)
	}

	// A completion for a lease the fleet no longer knows (expired and
	// forgotten) still delivers its record to the store.
	f.Complete("l-unknown", fakeRecordFor(testSpec("fib", 4), "alpha"), "")
	if _, ok := store.Get(testSpec("fib", 4).Key()); !ok {
		t.Fatal("unknown-lease record did not land in the store")
	}
}

func TestFleetUnknownWorker(t *testing.T) {
	clock := newFakeClock()
	f := testFleet(t, clock, nil)
	if _, err := f.Lease("w999", 1); !errors.Is(err, lab.ErrUnknownWorker) {
		t.Fatalf("lease err = %v, want ErrUnknownWorker", err)
	}
	if _, _, err := f.Heartbeat("w999", nil); !errors.Is(err, lab.ErrUnknownWorker) {
		t.Fatalf("heartbeat err = %v, want ErrUnknownWorker", err)
	}
	// Deregistering a live worker expires its leases back to the queue.
	w := f.Register("alpha", 1)
	f.Enqueue(testSpec("fib", 1))
	if leases, _ := f.Lease(w, 1); len(leases) != 1 {
		t.Fatalf("got %d leases", len(leases))
	}
	f.Deregister(w)
	if _, err := f.Lease(w, 1); !errors.Is(err, lab.ErrUnknownWorker) {
		t.Fatalf("post-deregister lease err = %v, want ErrUnknownWorker", err)
	}
	st := f.Status()
	if len(st.Workers) != 0 || st.LeasesExpired != 1 || st.QueueDepth == 0 {
		t.Fatalf("status = %+v", st)
	}
}
