package lab_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"bots/internal/lab"
)

// Fault-path coverage for the runner stack (DESIGN.md §14): coalesced
// CachedRunner waiters under cancellation, retry-vs-cache interaction,
// and RemoteRunner behaviour when the fleet wire is stalled or
// delivers duplicates.

func newMemStore(t *testing.T) *lab.Store {
	t.Helper()
	s, err := lab.OpenStore(filepath.Join(t.TempDir(), "lab.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestCachedRunnerWaiterAbandonsOnCancel: a waiter coalesced onto an
// in-flight execution whose wire has stalled must be able to leave
// through its own context — without killing the execution it was
// piggybacking on.
func TestCachedRunnerWaiterAbandonsOnCancel(t *testing.T) {
	store := newMemStore(t)
	inner := &fakeRunner{block: make(chan struct{})}
	cached := lab.NewCachedRunner(store, inner)
	spec := testSpec("fib", 2)

	leaderDone := make(chan error, 1)
	go func() {
		_, err := lab.RunWithContext(context.Background(), cached, spec)
		leaderDone <- err
	}()
	waitCond(t, 5*time.Second, func() bool { return inner.inflight.Load() == 1 })

	// The waiter joins the in-flight execution, then its caller gives up.
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := lab.RunWithContext(ctx, cached, spec)
		waiterDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park on the inflight slot
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoning waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter did not abandon within 2s of cancellation")
	}

	// The leader's execution was unaffected: unblock it and the record
	// lands in the store exactly once.
	close(inner.block)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed: %v", err)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("runner executed %d times, want 1", got)
	}
	if store.Len() != 1 {
		t.Fatalf("store len = %d, want 1", store.Len())
	}
}

// TestCachedRunnerRetryDoesNotDoubleExecute: a failed attempt is not
// cached, its retry executes once, and every later run of the key is
// a pure cache hit — the retry loop can never double-execute a key
// that already has a record.
func TestCachedRunnerRetryDoesNotDoubleExecute(t *testing.T) {
	store := newMemStore(t)
	inner := &fakeRunner{}
	inner.failN.Store(1) // first attempt fails, as if the wire dropped it
	cached := lab.NewCachedRunner(store, inner)
	spec := testSpec("fib", 4)

	if _, err := cached.Run(spec); err == nil {
		t.Fatal("first attempt unexpectedly succeeded")
	}
	if store.Len() != 0 {
		t.Fatal("failed attempt left a record in the store")
	}
	rec, err := cached.Run(spec)
	if err != nil || rec == nil {
		t.Fatalf("retry failed: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cached.Run(spec); err != nil {
			t.Fatalf("cached re-run %d failed: %v", i, err)
		}
	}
	if got := inner.calls.Load(); got != 2 {
		t.Fatalf("runner executed %d times, want 2 (one failure + one success)", got)
	}
	if cached.Hits() != 3 || store.Len() != 1 {
		t.Fatalf("hits = %d, store len = %d; want 3 and 1", cached.Hits(), store.Len())
	}
}

// TestRemoteRunnerWaiterAbandonWhileWireStalled: with no worker ever
// leasing (the wire to the fleet's workers is dead), a cancelled
// caller must return promptly and its job must leave the queue.
func TestRemoteRunnerWaiterAbandonWhileWireStalled(t *testing.T) {
	clock := newFakeClock()
	fleet := testFleet(t, clock, nil)
	remote := lab.NewRemoteRunner(fleet)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := remote.RunContext(ctx, testSpec("fib", 2))
		done <- err
	}()
	waitCond(t, 5*time.Second, func() bool { return fleet.Status().QueueDepth == 1 })
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stalled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter did not abandon a stalled fleet within 2s")
	}
	if depth := fleet.Status().QueueDepth; depth != 0 {
		t.Fatalf("queue depth after abandon = %d, want 0", depth)
	}
}

// TestRemoteRunnerDuplicateCompleteIdempotent: a retried result post
// (the worker's wire dropped the first response, so it sent again)
// reaches Complete twice. The waiter gets exactly one record and the
// duplicate lands in the store as an idempotent orphan write.
func TestRemoteRunnerDuplicateCompleteIdempotent(t *testing.T) {
	clock := newFakeClock()
	store := newMemStore(t)
	fleet := testFleet(t, clock, store)
	w := fleet.Register("dup", 1)

	ticket := fleet.Enqueue(testSpec("fib", 2))
	leases, err := fleet.Lease(w, 1)
	if err != nil || len(leases) != 1 {
		t.Fatalf("lease: %v (%d)", err, len(leases))
	}
	rec := fakeRecordFor(leases[0].Spec, "dup")
	fleet.Complete(leases[0].ID, rec, "")
	fleet.Complete(leases[0].ID, rec, "") // the retried post

	got, err := waitTicket(t, ticket)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != leases[0].Key {
		t.Fatalf("delivered record key = %s", got.Key)
	}
	st := fleet.Status()
	if st.JobsCompleted != 1 {
		t.Fatalf("jobs completed = %d, want 1", st.JobsCompleted)
	}
	if st.OrphanResults != 1 {
		t.Fatalf("orphan results = %d, want 1 (the duplicate)", st.OrphanResults)
	}
	if store.Len() != 1 {
		t.Fatalf("store len = %d, want 1 (duplicate writes same key)", store.Len())
	}
}
