package lab_test

import (
	"sync"
	"testing"
	"time"

	"bots/internal/lab"
)

func waitSweep(t *testing.T, sw *lab.Sweep) lab.SweepStatus {
	t.Helper()
	select {
	case <-sw.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("sweep %s did not finish: %+v", sw.ID(), sw.Status())
	}
	return sw.Status()
}

func TestDispatcherRunsSweep(t *testing.T) {
	fake := &fakeRunner{}
	d := lab.NewDispatcher(fake, 4, 0)
	defer d.Close()
	jobs := []lab.JobSpec{testSpec("fib", 1), testSpec("fib", 2), testSpec("fib", 4), testSpec("fib", 8)}
	sw, err := d.SubmitJobs("quartet", jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := waitSweep(t, sw)
	if !st.Finished() || st.Done != 4 || st.Failed != 0 {
		t.Fatalf("final status = %+v", st)
	}
	for _, j := range st.Jobs {
		if j.Status != lab.JobDone || j.Attempts != 1 || j.Key == "" {
			t.Errorf("job %+v not cleanly done", j)
		}
	}
	if fake.calls.Load() != 4 {
		t.Fatalf("executed %d jobs, want 4", fake.calls.Load())
	}
}

func TestDispatcherRetriesTransientFailure(t *testing.T) {
	fake := &fakeRunner{}
	fake.failN.Store(1) // first call fails, the retry succeeds
	d := lab.NewDispatcher(fake, 1, 1)
	defer d.Close()
	sw, err := d.SubmitJobs("flaky", []lab.JobSpec{testSpec("fib", 1)})
	if err != nil {
		t.Fatal(err)
	}
	st := waitSweep(t, sw)
	if st.Done != 1 || st.Failed != 0 {
		t.Fatalf("final status = %+v", st)
	}
	if got := st.Jobs[0].Attempts; got != 2 {
		t.Fatalf("attempts = %d, want 2 (one failure + one retry)", got)
	}
}

func TestDispatcherMarksExhaustedJobFailed(t *testing.T) {
	fake := &fakeRunner{}
	fake.failN.Store(1 << 30) // never succeeds
	d := lab.NewDispatcher(fake, 2, 2)
	defer d.Close()
	sw, err := d.SubmitJobs("doomed", []lab.JobSpec{testSpec("fib", 1), testSpec("fib", 2)})
	if err != nil {
		t.Fatal(err)
	}
	st := waitSweep(t, sw)
	if st.Failed != 2 || st.Done != 0 {
		t.Fatalf("final status = %+v", st)
	}
	for _, j := range st.Jobs {
		if j.Status != lab.JobFailed || j.Attempts != 3 {
			t.Errorf("job = %+v, want failed after 3 attempts", j)
		}
		if j.Error == "" {
			t.Error("failed job carries no error message")
		}
	}
}

func TestDispatcherProgressCallbacks(t *testing.T) {
	fake := &fakeRunner{}
	d := lab.NewDispatcher(fake, 1, 0)
	defer d.Close()
	var mu sync.Mutex
	var events []lab.ProgressEvent
	d.OnProgress = func(ev lab.ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	sw, err := d.SubmitJobs("observed", []lab.JobSpec{testSpec("fib", 1), testSpec("fib", 2)})
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, sw)
	mu.Lock()
	defer mu.Unlock()
	// Each job transitions queued→running→done: 2 events per job.
	if len(events) != 4 {
		t.Fatalf("got %d progress events, want 4: %+v", len(events), events)
	}
	var running, done int
	for _, ev := range events {
		if ev.SweepID != sw.ID() {
			t.Errorf("event for wrong sweep: %+v", ev)
		}
		switch ev.Job.Status {
		case lab.JobRunning:
			running++
		case lab.JobDone:
			done++
		}
	}
	if running != 2 || done != 2 {
		t.Fatalf("running/done events = %d/%d, want 2/2", running, done)
	}
}

func TestDispatcherBoundsConcurrency(t *testing.T) {
	fake := &fakeRunner{block: make(chan struct{})}
	d := lab.NewDispatcher(fake, 2, 0)
	defer d.Close()
	var jobs []lab.JobSpec
	for i := 1; i <= 8; i++ {
		jobs = append(jobs, testSpec("fib", i))
	}
	sw, err := d.SubmitJobs("bounded", jobs)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the pool saturate
	close(fake.block)
	waitSweep(t, sw)
	if got := fake.maxInfl.Load(); got > 2 {
		t.Fatalf("observed %d concurrent jobs on a 2-worker pool", got)
	}
}

// TestDispatcherRetryBackoff pins the retry schedule: a failed job
// goes back to queued with its last error and a NextAttempt gate, and
// the retry does not run before the backoff window elapses.
func TestDispatcherRetryBackoff(t *testing.T) {
	fake := &fakeRunner{}
	fake.failN.Store(1)
	d := lab.NewDispatcher(fake, 1, 1)
	d.RetryBase = 200 * time.Millisecond
	d.RetryCap = 200 * time.Millisecond
	defer d.Close()
	start := time.Now()
	sw, err := d.SubmitJobs("backoff", []lab.JobSpec{testSpec("fib", 1)})
	if err != nil {
		t.Fatal(err)
	}
	// Catch the job inside its backoff window: queued again, first
	// attempt's error retained, retry time advertised.
	sawGate := false
	for !sawGate {
		st := sw.Status()
		j := st.Jobs[0]
		if j.Status == lab.JobQueued && j.Attempts == 1 {
			if j.Error == "" || j.NextAttempt == nil {
				t.Fatalf("backed-off job missing error/next_attempt: %+v", j)
			}
			sawGate = true
		}
		if st.Finished() {
			t.Fatal("sweep finished before the backoff window was observed")
		}
		time.Sleep(time.Millisecond)
	}
	st := waitSweep(t, sw)
	if st.Done != 1 || st.Jobs[0].Attempts != 2 {
		t.Fatalf("final status = %+v", st)
	}
	// 200ms base with ±25% jitter: the retry can fire no earlier than
	// 150ms after the first failure.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("retry fired after %s, want >= 150ms of backoff", elapsed)
	}
	if j := st.Jobs[0]; j.NextAttempt != nil || j.Error != "" {
		t.Fatalf("done job still carries retry state: %+v", j)
	}
}

// TestDispatcherCancel cancels a sweep with cells in every pre-terminal
// state: queued cells flip to cancelled immediately, running cells
// finish normally, and the sweep lands in the cancelled state.
func TestDispatcherCancel(t *testing.T) {
	fake := &fakeRunner{block: make(chan struct{})}
	d := lab.NewDispatcher(fake, 2, 0)
	defer d.Close()
	var jobs []lab.JobSpec
	for i := 1; i <= 6; i++ {
		jobs = append(jobs, testSpec("fib", i))
	}
	sw, err := d.SubmitJobs("doomed", jobs)
	if err != nil {
		t.Fatal(err)
	}
	for sw.Status().Running != 2 {
		time.Sleep(time.Millisecond)
	}
	st, err := d.Cancel(sw.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != lab.SweepCancelling || st.Cancelled != 4 {
		t.Fatalf("status right after cancel = %+v", st)
	}
	close(fake.block) // let the two in-flight cells finish
	final := waitSweep(t, sw)
	if final.State != lab.SweepCancelled || final.Done != 2 || final.Cancelled != 4 || final.Failed != 0 {
		t.Fatalf("final status = %+v", final)
	}
	if fake.calls.Load() != 2 {
		t.Fatalf("executed %d cells after cancel, want 2", fake.calls.Load())
	}
	if _, err := d.Cancel("s999"); err == nil {
		t.Fatal("cancelling an unknown sweep should fail")
	}
}

// TestDispatcherInstancesCap pins the testground-style instances
// knob: a sweep asking for 2 instances never has more than 2 cells in
// flight even on a larger pool, and still completes.
func TestDispatcherInstancesCap(t *testing.T) {
	fake := &fakeRunner{block: make(chan struct{})}
	d := lab.NewDispatcher(fake, 4, 0)
	defer d.Close()
	var jobs []lab.JobSpec
	for i := 1; i <= 8; i++ {
		jobs = append(jobs, testSpec("fib", i))
	}
	sw, err := d.SubmitJobsN("capped", 2, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Status().Instances != 2 {
		t.Fatalf("status instances = %d, want 2", sw.Status().Instances)
	}
	for sw.Status().Running != 2 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // give the pool a chance to overshoot
	if got := fake.inflight.Load(); got != 2 {
		t.Fatalf("%d cells in flight under an instances=2 cap", got)
	}
	close(fake.block)
	st := waitSweep(t, sw)
	if st.Done != 8 {
		t.Fatalf("final status = %+v", st)
	}
	if got := fake.maxInfl.Load(); got > 2 {
		t.Fatalf("observed %d concurrent cells, cap was 2", got)
	}
	// An uncapped sibling on the same pool uses all four workers.
	if _, err := d.SubmitJobsN("neg", -1, jobs); err == nil {
		t.Fatal("negative instances should fail at submit")
	}
}

func TestDispatcherRejectsAfterClose(t *testing.T) {
	d := lab.NewDispatcher(&fakeRunner{}, 1, 0)
	d.Close()
	if _, err := d.SubmitJobs("late", []lab.JobSpec{testSpec("fib", 1)}); err == nil {
		t.Fatal("submit after Close should fail")
	}
}

func TestDispatcherRejectsEmptySweep(t *testing.T) {
	d := lab.NewDispatcher(&fakeRunner{}, 1, 0)
	defer d.Close()
	if _, err := d.SubmitJobs("empty", nil); err == nil {
		t.Fatal("empty sweep should fail at submit")
	}
}
