package lab

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Fleet is the coordinator side of the distributed sweep fleet
// (DESIGN.md §13): a lease-based job queue in the mold of simq's
// dispatcher/simd protocol. Worker daemons (cmd/botsd, or an
// in-process WorkerClient) register with a capacity, pull pending
// JobSpecs as *leases* (job + deadline), renew them with heartbeats
// while executing, and ship the finished Record back. A lease whose
// deadline passes — dead worker, missed heartbeats — returns its job
// to the queue for re-dispatch with bounded attempts and jittered
// exponential backoff, so a sweep survives worker churn without
// losing cells.
//
// The fleet is transport-agnostic about results: completed Records
// are delivered to the waiter that enqueued the job (a RemoteRunner
// blocked in RunContext). A record that arrives after its waiter is
// gone (abandoned job, expired lease racing a slow worker) is not
// discarded: it is written straight to the configured Store, where
// content-addressed keys make the duplicate write idempotent.
type Fleet struct {
	cfg FleetConfig

	mu      sync.Mutex
	nextID  int
	workers map[string]*fleetWorker
	queue   []*fleetJob // pending jobs in submission order
	leases  map[string]*fleetLease

	// lifetime counters behind the bots_lab_* fleet metrics
	granted      int64 // leases handed out
	expired      int64 // leases lost to a missed deadline
	redispatched int64 // jobs returned to the queue (expiry or failed attempt)
	completed    int64 // jobs finished with a record
	failedJobs   int64 // jobs that exhausted their attempts
	orphans      int64 // records landed after their waiter left

	stopOnce sync.Once
	stop     chan struct{}
}

// FleetConfig tunes the coordinator. Zero values select defaults.
type FleetConfig struct {
	// LeaseTTL is how long a lease stays valid without a heartbeat
	// (default 10s). Workers are told to heartbeat at TTL/3.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times one job may be leased before
	// the fleet gives up and fails it (default 3).
	MaxAttempts int
	// RetryBase/RetryCap shape the re-dispatch backoff: a job going
	// back to the queue waits base*2^(attempt-1), jittered ±25%,
	// capped (defaults 250ms / 10s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Store, when non-nil, receives orphan records (results whose
	// waiter is gone) so finished work is never thrown away.
	Store *Store
	// Journal, when non-nil, receives lease traffic (grants, renewals,
	// completions, re-queues) for crash-recovery accounting.
	Journal *Journal
	// Clock replaces time.Now for tests. When set, the fleet does NOT
	// run its background expiry ticker; the test drives ExpireDue.
	Clock func() time.Time
	// ExpiryTick forces the background expiry ticker even when Clock is
	// set — for chaos tests that skew the coordinator's clock but still
	// want real-time expiry behaviour.
	ExpiryTick time.Duration
}

func (c *FleetConfig) withDefaults() FleetConfig {
	out := *c
	if out.LeaseTTL <= 0 {
		out.LeaseTTL = 10 * time.Second
	}
	if out.MaxAttempts < 1 {
		out.MaxAttempts = 3
	}
	if out.RetryBase <= 0 {
		out.RetryBase = 250 * time.Millisecond
	}
	if out.RetryCap <= 0 {
		out.RetryCap = 10 * time.Second
	}
	return out
}

// NewFleet returns a coordinator. With a real clock (cfg.Clock nil)
// it runs a background expiry scan every LeaseTTL/4 until Close.
func NewFleet(cfg FleetConfig) *Fleet {
	f := &Fleet{
		cfg:     cfg.withDefaults(),
		workers: map[string]*fleetWorker{},
		leases:  map[string]*fleetLease{},
		stop:    make(chan struct{}),
	}
	switch {
	case f.cfg.Clock == nil:
		go f.expireLoop(f.cfg.LeaseTTL / 4)
	case f.cfg.ExpiryTick > 0:
		go f.expireLoop(f.cfg.ExpiryTick)
	}
	return f
}

// Close stops the background expiry scan. Pending jobs and leases are
// left as-is (the owning process is exiting).
func (f *Fleet) Close() { f.stopOnce.Do(func() { close(f.stop) }) }

// LeaseTTL returns the configured lease lifetime, advertised to
// workers at registration so they can pick a heartbeat cadence.
func (f *Fleet) LeaseTTL() time.Duration { return f.cfg.LeaseTTL }

func (f *Fleet) now() time.Time {
	if f.cfg.Clock != nil {
		return f.cfg.Clock()
	}
	return time.Now()
}

func (f *Fleet) expireLoop(tick time.Duration) {
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.ExpireDue()
		}
	}
}

// fleetWorker is the coordinator's view of one registered daemon.
type fleetWorker struct {
	id         string
	name       string
	capacity   int
	registered time.Time
	lastSeen   time.Time
	leases     map[string]*fleetLease
	done       int
	failed     int
}

// fleetJob is one enqueued cell waiting for (or out on) a lease.
type fleetJob struct {
	id        string
	spec      JobSpec
	key       string
	attempts  int       // lease grants so far
	notBefore time.Time // backoff gate for re-dispatch
	result    chan jobOutcome
	abandoned bool
}

type jobOutcome struct {
	rec *Record
	err error
}

// fleetLease is one in-flight grant.
type fleetLease struct {
	id       string
	job      *fleetJob
	workerID string
	granted  time.Time
	deadline time.Time
	elapsed  time.Duration // worker-reported progress, via heartbeats
}

// Lease is the wire form of a grant: the job, which attempt this is,
// and how long the worker has to complete or renew. TTLNS is the
// authoritative lifetime — it is *relative*, so a worker whose clock
// is minutes off the coordinator's still measures the same window
// from its own clock (DESIGN.md §14). Deadline is the coordinator's
// absolute view, kept for humans and dashboards; workers must not
// compare it against their own clocks.
type Lease struct {
	ID       string    `json:"id"`
	Key      string    `json:"key"`
	Spec     JobSpec   `json:"spec"`
	Attempt  int       `json:"attempt"`
	TTLNS    int64     `json:"ttl_ns"`
	Deadline time.Time `json:"deadline"`
}

// FleetTicket tracks one enqueued job for the party awaiting its
// record.
type FleetTicket struct {
	f   *Fleet
	job *fleetJob
}

// Enqueue adds one cell to the fleet queue and returns a ticket to
// wait on. The spec is normalized so the queue and the store agree on
// the job's identity.
func (f *Fleet) Enqueue(spec JobSpec) *FleetTicket {
	spec = spec.Normalize()
	f.mu.Lock()
	f.nextID++
	job := &fleetJob{
		id:     fmt.Sprintf("j%d", f.nextID),
		spec:   spec,
		key:    spec.Key(),
		result: make(chan jobOutcome, 1),
	}
	f.queue = append(f.queue, job)
	f.mu.Unlock()
	return &FleetTicket{f: f, job: job}
}

// Wait blocks until the job completes or ctx is cancelled. On
// cancellation the job is abandoned: removed from the queue if still
// pending, and — if already leased — left to finish as an orphan
// whose record lands in the store.
func (t *FleetTicket) Wait(ctx context.Context) (*Record, error) {
	select {
	case out := <-t.job.result:
		return out.rec, out.err
	case <-ctx.Done():
		t.f.abandon(t.job)
		// A completion may have raced the cancellation; prefer it.
		select {
		case out := <-t.job.result:
			return out.rec, out.err
		default:
			return nil, ctx.Err()
		}
	}
}

func (f *Fleet) abandon(job *fleetJob) {
	f.mu.Lock()
	defer f.mu.Unlock()
	job.abandoned = true
	for i, q := range f.queue {
		if q == job {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			return
		}
	}
}

// Register adds (or refreshes) a worker and returns its fleet ID.
func (f *Fleet) Register(name string, capacity int) string {
	if capacity < 1 {
		capacity = 1
	}
	now := f.now()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextID++
	w := &fleetWorker{
		id:         fmt.Sprintf("w%d", f.nextID),
		name:       name,
		capacity:   capacity,
		registered: now,
		lastSeen:   now,
		leases:     map[string]*fleetLease{},
	}
	f.workers[w.id] = w
	return w.id
}

// Deregister removes a worker. Any leases it still holds expire
// immediately, returning their jobs to the queue — a graceful drain
// (botsd on SIGTERM) completes its leases *before* deregistering, so
// reaching this with live leases means the worker is giving up.
func (f *Fleet) Deregister(workerID string) {
	f.mu.Lock()
	w, ok := f.workers[workerID]
	if !ok {
		f.mu.Unlock()
		return
	}
	delete(f.workers, workerID)
	var fails []*fleetJob
	for id, l := range w.leases {
		delete(f.leases, id)
		f.expired++
		if j := f.requeueLocked(l.job, "worker deregistered"); j != nil {
			fails = append(fails, j)
		}
	}
	f.mu.Unlock()
	for _, j := range fails {
		f.deliver(j, jobOutcome{err: fmt.Errorf("lab: job %s failed after %d lease attempts (worker %s deregistered)", j.key, j.attempts, workerID)})
	}
}

// requeueLocked returns a leased job to the queue with backoff, or —
// when its attempts are exhausted — returns it for failure delivery
// (delivery happens outside the lock). Abandoned jobs are dropped.
func (f *Fleet) requeueLocked(job *fleetJob, reason string) (failed *fleetJob) {
	if job.abandoned {
		return nil
	}
	if job.attempts >= f.cfg.MaxAttempts {
		f.failedJobs++
		return job
	}
	job.notBefore = f.now().Add(backoffDelay(f.cfg.RetryBase, f.cfg.RetryCap, job.attempts))
	f.queue = append(f.queue, job)
	f.redispatched++
	f.cfg.Journal.JobRequeued(job.key, reason)
	return nil
}

// ErrUnknownWorker is returned by Lease/Heartbeat for a worker ID the
// fleet does not know (never registered, or deregistered); the worker
// should re-register.
var ErrUnknownWorker = fmt.Errorf("lab: unknown fleet worker")

// Lease grants up to max pending jobs to the worker, each with a
// fresh deadline. Jobs still inside their re-dispatch backoff window
// are skipped. An empty grant means "poll again later".
func (f *Fleet) Lease(workerID string, max int) ([]Lease, error) {
	if max < 1 {
		max = 1
	}
	now := f.now()
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[workerID]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownWorker, workerID)
	}
	w.lastSeen = now
	var grants []Lease
	kept := f.queue[:0]
	for _, job := range f.queue {
		if len(grants) >= max || now.Before(job.notBefore) {
			kept = append(kept, job)
			continue
		}
		f.nextID++
		job.attempts++
		l := &fleetLease{
			id:       fmt.Sprintf("l%d", f.nextID),
			job:      job,
			workerID: w.id,
			granted:  now,
			deadline: now.Add(f.cfg.LeaseTTL),
		}
		f.leases[l.id] = l
		w.leases[l.id] = l
		f.granted++
		f.cfg.Journal.LeaseGranted(l.id, job.key, w.id, job.attempts)
		grants = append(grants, Lease{ID: l.id, Key: job.key, Spec: job.spec, Attempt: job.attempts, TTLNS: int64(f.cfg.LeaseTTL), Deadline: l.deadline})
	}
	f.queue = kept
	return grants, nil
}

// HeartbeatProgress is one worker-reported in-flight lease.
type HeartbeatProgress struct {
	ID        string `json:"id"`
	ElapsedNS int64  `json:"elapsed_ns,omitempty"`
}

// Heartbeat marks the worker live and renews the named leases,
// recording reported progress. It returns the renewed lease IDs and
// the ones the fleet no longer recognizes (already expired and
// re-dispatched) so the worker knows which executions became orphans.
func (f *Fleet) Heartbeat(workerID string, progress []HeartbeatProgress) (renewed, lost []string, err error) {
	now := f.now()
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[workerID]
	if !ok {
		return nil, nil, fmt.Errorf("%w %q", ErrUnknownWorker, workerID)
	}
	w.lastSeen = now
	for _, p := range progress {
		l, ok := w.leases[p.ID]
		if !ok {
			lost = append(lost, p.ID)
			continue
		}
		l.deadline = now.Add(f.cfg.LeaseTTL)
		l.elapsed = time.Duration(p.ElapsedNS)
		f.cfg.Journal.LeaseRenewed(p.ID)
		renewed = append(renewed, p.ID)
	}
	return renewed, lost, nil
}

// Complete finishes a lease: a record delivers the job; an error
// message counts the attempt against the job's budget and re-queues
// it with backoff. A completion for an unknown lease (expired while
// the worker kept running) is an orphan: its record, if any, still
// goes to the store, where the content-addressed key keeps the
// duplicate write idempotent.
func (f *Fleet) Complete(leaseID string, rec *Record, errMsg string) {
	f.mu.Lock()
	l, ok := f.leases[leaseID]
	if !ok {
		f.mu.Unlock()
		if rec != nil {
			f.storeOrphan(rec)
		}
		return
	}
	delete(f.leases, leaseID)
	w := f.workers[l.workerID]
	if w != nil {
		delete(w.leases, leaseID)
	}
	job := l.job
	f.cfg.Journal.LeaseCompleted(leaseID, job.key, errMsg == "" && rec != nil)
	var outcome *jobOutcome
	var orphan *Record
	switch {
	case errMsg == "" && rec != nil:
		f.completed++
		if w != nil {
			w.done++
		}
		if job.abandoned {
			orphan = rec
		} else {
			outcome = &jobOutcome{rec: rec}
		}
	default:
		if w != nil {
			w.failed++
		}
		if errMsg == "" {
			errMsg = "worker returned neither record nor error"
		}
		if failed := f.requeueLocked(job, "attempt failed: "+errMsg); failed != nil {
			outcome = &jobOutcome{err: fmt.Errorf("lab: job %s failed after %d lease attempts: %s", job.key, job.attempts, errMsg)}
		}
	}
	f.mu.Unlock()
	if orphan != nil {
		f.storeOrphan(orphan)
	}
	if outcome != nil {
		f.deliver(job, *outcome)
	}
}

func (f *Fleet) deliver(job *fleetJob, out jobOutcome) {
	select {
	case job.result <- out:
	default:
		// Result already delivered (an expired lease's re-dispatch
		// finished first); keep the record anyway.
		if out.rec != nil {
			f.storeOrphan(out.rec)
		}
	}
}

func (f *Fleet) storeOrphan(rec *Record) {
	f.mu.Lock()
	f.orphans++
	st := f.cfg.Store
	f.mu.Unlock()
	if st != nil {
		st.Put(rec)
	}
}

// ExpireDue scans for leases past their deadline and returns their
// jobs to the queue (or fails them when attempts are exhausted). It
// reports how many leases expired. The background ticker calls this
// every LeaseTTL/4; tests with a fake clock call it directly.
func (f *Fleet) ExpireDue() int {
	now := f.now()
	f.mu.Lock()
	var fails []*fleetJob
	n := 0
	for id, l := range f.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(f.leases, id)
		if w := f.workers[l.workerID]; w != nil {
			delete(w.leases, id)
		}
		f.expired++
		n++
		if j := f.requeueLocked(l.job, "lease expired"); j != nil {
			fails = append(fails, j)
		}
	}
	f.mu.Unlock()
	for _, j := range fails {
		f.deliver(j, jobOutcome{err: fmt.Errorf("lab: job %s failed after %d lease attempts: final lease expired (worker dead or stalled)", j.key, j.attempts)})
	}
	return n
}

// Worker states reported by Status and the bots_lab_workers gauge.
const (
	WorkerIdle = "idle" // registered, no active leases
	WorkerBusy = "busy" // at least one active lease
	WorkerDead = "dead" // not heard from for > 3 lease TTLs
)

// WorkerView is the externally visible state of one worker.
type WorkerView struct {
	ID           string         `json:"id"`
	Name         string         `json:"name"`
	Capacity     int            `json:"capacity"`
	State        string         `json:"state"`
	ActiveLeases int            `json:"active_leases"`
	Done         int            `json:"done"`
	Failed       int            `json:"failed"`
	LastSeen     time.Time      `json:"last_seen"`
	Running      []RunningLease `json:"running,omitempty"`
}

// RunningLease is one in-flight lease as shown by GET /workers.
type RunningLease struct {
	LeaseID   string    `json:"lease_id"`
	Key       string    `json:"key"`
	Attempt   int       `json:"attempt"`
	Deadline  time.Time `json:"deadline"`
	ElapsedNS int64     `json:"elapsed_ns,omitempty"`
}

// FleetStatus is a point-in-time snapshot of the coordinator: the
// GET /workers body and the source of the fleet metrics.
type FleetStatus struct {
	Workers          []WorkerView `json:"workers"`
	QueueDepth       int          `json:"queue_depth"`
	LeasesActive     int          `json:"leases_active"`
	LeasesGranted    int64        `json:"leases_granted"`
	LeasesExpired    int64        `json:"leases_expired"`
	JobsRedispatched int64        `json:"jobs_redispatched"`
	JobsCompleted    int64        `json:"jobs_completed"`
	JobsFailed       int64        `json:"jobs_failed"`
	OrphanResults    int64        `json:"orphan_results"`
}

// WorkersByState counts workers per state, for the workers gauge.
func (s FleetStatus) WorkersByState() map[string]int {
	out := map[string]int{WorkerIdle: 0, WorkerBusy: 0, WorkerDead: 0}
	for _, w := range s.Workers {
		out[w.State]++
	}
	return out
}

// Status snapshots the fleet.
func (f *Fleet) Status() FleetStatus {
	now := f.now()
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FleetStatus{
		Workers:          []WorkerView{},
		QueueDepth:       len(f.queue),
		LeasesActive:     len(f.leases),
		LeasesGranted:    f.granted,
		LeasesExpired:    f.expired,
		JobsRedispatched: f.redispatched,
		JobsCompleted:    f.completed,
		JobsFailed:       f.failedJobs,
		OrphanResults:    f.orphans,
	}
	for _, w := range f.workers {
		v := WorkerView{
			ID: w.id, Name: w.name, Capacity: w.capacity,
			ActiveLeases: len(w.leases), Done: w.done, Failed: w.failed,
			LastSeen: w.lastSeen,
		}
		switch {
		case now.Sub(w.lastSeen) > 3*f.cfg.LeaseTTL:
			v.State = WorkerDead
		case len(w.leases) > 0:
			v.State = WorkerBusy
		default:
			v.State = WorkerIdle
		}
		for id, l := range w.leases {
			v.Running = append(v.Running, RunningLease{
				LeaseID: id, Key: l.job.key, Attempt: l.job.attempts,
				Deadline: l.deadline, ElapsedNS: int64(l.elapsed),
			})
		}
		st.Workers = append(st.Workers, v)
	}
	// Deterministic order for tests and human eyes.
	for i := 1; i < len(st.Workers); i++ {
		for j := i; j > 0 && st.Workers[j-1].ID > st.Workers[j].ID; j-- {
			st.Workers[j-1], st.Workers[j] = st.Workers[j], st.Workers[j-1]
		}
	}
	return st
}
