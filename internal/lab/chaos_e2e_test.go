package lab_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	_ "bots/internal/apps/all"
	"bots/internal/chaos"
	"bots/internal/lab"
)

// End-to-end chaos experiments (DESIGN.md §14): the full fleet stack
// — coordinator HTTP server, WorkerClient daemons, store, journal —
// driven through the internal/chaos fault injector. Each test is one
// named experiment from the fault model: healed partition, slow
// network, clock skew, coordinator crash. All run under -race in CI.

// startChaosWorker is startWorker with the worker's wire routed
// through a chaos transport and an optional skewed clock.
func startChaosWorker(t *testing.T, base, name string, capacity int, inj *chaos.Injector, clock func() time.Time) *lab.WorkerClient {
	t.Helper()
	w := &lab.WorkerClient{
		Coordinator:    base,
		Name:           name,
		Capacity:       capacity,
		Poll:           5 * time.Millisecond,
		Logf:           t.Logf,
		RequestTimeout: 3 * time.Second,
		WireRetries:    4,
		StartupRetries: 10,
		Clock:          clock,
	}
	if inj != nil {
		w.Client = &http.Client{Transport: inj.Transport(nil)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.Run(ctx); err != nil {
			t.Errorf("worker %s: %v", name, err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
	return w
}

// sixCellManifest expands to fib × {manual-tied, if-tied} × {1, 2, 4}.
const sixCellManifest = `{"name":"chaos","benches":["fib"],"versions":["manual-tied","if-tied"],
	"classes":["test"],"threads":[1,2,4]}`

func allVerified(t *testing.T, url string, want int) {
	t.Helper()
	var all []lab.Record
	getJSON(t, url+"/results", &all)
	if len(all) != want {
		t.Fatalf("GET /results returned %d records, want %d", len(all), want)
	}
	seen := map[string]bool{}
	for _, r := range all {
		if !r.Verified {
			t.Errorf("unverified record %s (%s/%s t=%d)", r.Key, r.Spec.Bench, r.Spec.Version, r.Spec.Threads)
		}
		if seen[r.Key] {
			t.Errorf("duplicate key %s in results", r.Key)
		}
		seen[r.Key] = true
	}
}

// TestChaosPartitionHealsAndConverges cuts the worker↔coordinator
// wire both ways mid-sweep, long enough for live leases to expire,
// then heals it. The sweep must converge with every cell verified:
// expiry re-dispatch plus idempotent result posting absorb the outage.
func TestChaosPartitionHealsAndConverges(t *testing.T) {
	ts, fleet, _ := newFleetServer(t, lab.FleetConfig{
		LeaseTTL:    500 * time.Millisecond,
		MaxAttempts: 10,
		RetryBase:   10 * time.Millisecond,
		RetryCap:    50 * time.Millisecond,
	})
	inj := chaos.New(chaos.Config{Seed: 11})
	startChaosWorker(t, ts.URL, "alpha", 2, inj, nil)
	startChaosWorker(t, ts.URL, "beta", 2, inj, nil)

	submitted := postSweep(t, ts, sixCellManifest)
	if submitted.Total != 6 {
		t.Fatalf("sweep expanded to %d cells, want 6", submitted.Total)
	}
	// Let the sweep get going, then cut the cable for 3 lease TTLs.
	waitCond(t, 30*time.Second, func() bool { return fleet.Status().LeasesGranted >= 1 })
	inj.SetPartition(chaos.PartitionTwoWay)
	t.Log("two-way partition up")
	time.Sleep(1500 * time.Millisecond)
	inj.Heal()
	t.Log("partition healed")

	st := waitSweepDone(t, ts, submitted.ID, 120*time.Second)
	if st.Done != 6 || st.Failed != 0 {
		t.Fatalf("sweep after healed partition: %+v", st)
	}
	allVerified(t, ts.URL, 6)
	if got := inj.Stats().Partitioned; got == 0 {
		t.Fatal("partition never actually blocked a request")
	}
}

// TestChaosSlowNetworkSweepCompletes runs the wire at 500ms ± 150ms
// per request. Heartbeats, leases, and result posts all eat the
// latency; the sweep still completes with zero failed cells because
// every timeout (lease TTL, request timeout) is sized in TTL-relative
// terms rather than assuming a fast LAN.
func TestChaosSlowNetworkSweepCompletes(t *testing.T) {
	ts, _, _ := newFleetServer(t, lab.FleetConfig{
		LeaseTTL:    5 * time.Second,
		MaxAttempts: 6,
		RetryBase:   10 * time.Millisecond,
		RetryCap:    50 * time.Millisecond,
	})
	inj := chaos.New(chaos.Config{Seed: 7, Latency: 500 * time.Millisecond, Jitter: 150 * time.Millisecond})
	startChaosWorker(t, ts.URL, "slow-alpha", 2, inj, nil)
	startChaosWorker(t, ts.URL, "slow-beta", 2, inj, nil)

	submitted := postSweep(t, ts, sixCellManifest)
	st := waitSweepDone(t, ts, submitted.ID, 120*time.Second)
	if st.Done != 6 || st.Failed != 0 {
		t.Fatalf("sweep on slow network: %+v", st)
	}
	allVerified(t, ts.URL, 6)
	if inj.Stats().Delayed == 0 {
		t.Fatal("latency injection never fired")
	}
}

// TestChaosDropsAndRetries runs the wire at a 25% drop rate — both
// request-side (the coordinator never sees it) and response-side (it
// does, the worker doesn't hear back). Bounded wire retries must
// absorb the drops, every retried result post must land idempotently,
// and the retry counter behind bots_lab_http_retries_total must show
// the wire actually fought for it.
func TestChaosDropsAndRetries(t *testing.T) {
	ts, _, _ := newFleetServer(t, lab.FleetConfig{
		LeaseTTL:    2 * time.Second,
		MaxAttempts: 10,
		RetryBase:   10 * time.Millisecond,
		RetryCap:    50 * time.Millisecond,
	})
	inj := chaos.New(chaos.Config{Seed: 23, DropRate: 0.25})
	alpha := startChaosWorker(t, ts.URL, "drop-alpha", 2, inj, nil)
	beta := startChaosWorker(t, ts.URL, "drop-beta", 2, inj, nil)

	submitted := postSweep(t, ts, sixCellManifest)
	st := waitSweepDone(t, ts, submitted.ID, 120*time.Second)
	if st.Done != 6 || st.Failed != 0 {
		t.Fatalf("sweep on lossy network: %+v", st)
	}
	allVerified(t, ts.URL, 6)
	stats := inj.Stats()
	if stats.DroppedRequests+stats.DroppedResponses == 0 {
		t.Fatal("drop injection never fired")
	}
	if alpha.Retries()+beta.Retries() == 0 {
		t.Fatal("workers absorbed drops without a single counted retry")
	}
	t.Logf("drops: %d request-side, %d response-side; worker retries: %d",
		stats.DroppedRequests, stats.DroppedResponses, alpha.Retries()+beta.Retries())
}

// TestChaosClockSkewLeaseCorrectness skews the coordinator 2 minutes
// behind and the workers 2 minutes ahead — a 4-minute disagreement,
// dwarfing the 2s lease TTL. Because lease lifetimes travel as
// relative TTLs and each side measures them on its own clock, the
// skew must cause zero spurious expiries and a clean sweep.
func TestChaosClockSkewLeaseCorrectness(t *testing.T) {
	ts, fleet, _ := newFleetServer(t, lab.FleetConfig{
		LeaseTTL:    2 * time.Second,
		MaxAttempts: 4,
		RetryBase:   10 * time.Millisecond,
		RetryCap:    50 * time.Millisecond,
		Clock:       chaos.OffsetClock(nil, -2*time.Minute),
		ExpiryTick:  50 * time.Millisecond,
	})
	workerClock := chaos.OffsetClock(nil, 2*time.Minute)
	startChaosWorker(t, ts.URL, "skew-alpha", 2, nil, workerClock)
	startChaosWorker(t, ts.URL, "skew-beta", 2, nil, workerClock)

	submitted := postSweep(t, ts, sixCellManifest)
	st := waitSweepDone(t, ts, submitted.ID, 120*time.Second)
	if st.Done != 6 || st.Failed != 0 {
		t.Fatalf("sweep under ±2min clock skew: %+v", st)
	}
	allVerified(t, ts.URL, 6)
	fst := fleet.Status()
	if fst.LeasesExpired != 0 {
		t.Fatalf("clock skew expired %d leases, want 0 (TTLs are relative)", fst.LeasesExpired)
	}
	if fst.JobsRedispatched != 0 {
		t.Fatalf("clock skew re-dispatched %d jobs, want 0", fst.JobsRedispatched)
	}
}

// coordinator is one incarnation of the `botslab -fleet` stack,
// assembled by hand so a test can kill and restart it on the same
// address with the same store and journal files.
type coordinator struct {
	store   *lab.Store
	journal *lab.Journal
	fleet   *lab.Fleet
	disp    *lab.Dispatcher
	http    *http.Server
	addr    string
}

func startCoordinator(t *testing.T, addr, storePath, journalPath string) (*coordinator, *lab.Recovery) {
	t.Helper()
	store, err := lab.OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	journal, rec, err := lab.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	fleet := lab.NewFleet(lab.FleetConfig{
		LeaseTTL:    2 * time.Second,
		MaxAttempts: 10,
		RetryBase:   10 * time.Millisecond,
		RetryCap:    50 * time.Millisecond,
		Store:       store,
		Journal:     journal,
	})
	disp := lab.NewDispatcher(lab.NewCachedRunner(store, lab.NewRemoteRunner(fleet)), 32, 1)
	disp.Journal = journal
	srv := &lab.Server{Disp: disp, Store: store, Fleet: fleet, PollInterval: 10 * time.Millisecond}

	// The restarted incarnation rebinds the address the workers
	// already hold; retry briefly while the dead listener's socket is
	// released.
	var ln net.Listener
	for deadline := time.Now().Add(10 * time.Second); ; {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &coordinator{store: store, journal: journal, fleet: fleet, disp: disp, http: hs, addr: ln.Addr().String()}, rec
}

// crash simulates a kill -9 as closely as an in-process test can: the
// HTTP server and journal are severed first (no more client traffic,
// no more journal appends), then the incarnation's in-memory state is
// torn down. Nothing is flushed gracefully on its behalf.
func (c *coordinator) crash(t *testing.T, sweepID string) {
	t.Helper()
	c.http.Close()
	c.journal.Close()
	c.fleet.Close()
	if sweepID != "" {
		// Unstick incarnation A's pool goroutines (their fleet tickets
		// will never resolve) so Close() can reap them.
		c.disp.Cancel(sweepID)
	}
	c.disp.Close()
	c.store.Close()
}

// TestChaosCoordinatorCrashRestart kills the coordinator in the
// middle of a 24-cell fleet sweep and restarts it on the same address
// with the same store and journal. The journal replay must recover
// the sweep, resubmit exactly the cells that never finished, and the
// surviving workers must re-adopt the new incarnation through the
// normal unknown-worker re-registration path. No cell may be lost and
// the store must end with exactly one record per key.
func TestChaosCoordinatorCrashRestart(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "lab.jsonl")
	jPath := filepath.Join(dir, "fleet.journal")

	a, recA := startCoordinator(t, "127.0.0.1:0", storePath, jPath)
	if recA.Events != 0 || len(recA.Sweeps) != 0 {
		t.Fatalf("fresh journal recovered %+v", recA)
	}
	base := "http://" + a.addr

	startChaosWorker(t, base, "alpha", 2, nil, nil)
	startChaosWorker(t, base, "beta", 2, nil, nil)

	manifest := `{"name":"crash-sweep","benches":["fib","nqueens"],"versions":["manual-tied","if-tied"],
		"classes":["test"],"threads":[1,2,4],"cutoff_depths":[3,5]}`
	resp, err := http.Post(base+"/sweeps", "application/json", strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	var submitted lab.SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if submitted.Total != 24 {
		t.Fatalf("sweep expanded to %d cells, want 24", submitted.Total)
	}

	// Crash once a third of the sweep has records on disk.
	waitCond(t, 60*time.Second, func() bool { return a.store.Len() >= 8 })
	doneBefore := a.store.Len()
	t.Logf("crashing coordinator with %d/24 records stored", doneBefore)
	a.crash(t, submitted.ID)

	// Incarnation B: same files, same address.
	b, rec := startCoordinator(t, a.addr, storePath, jPath)
	t.Cleanup(func() {
		b.http.Close()
		b.fleet.Close()
		b.store.Close()
		b.journal.Close()
	})
	if rec.Events == 0 {
		t.Fatal("journal replayed zero events after a mid-sweep crash")
	}
	if rec.Grants == 0 {
		t.Fatalf("journal saw no lease grants before the crash: %+v", rec)
	}
	if len(rec.Sweeps) != 1 {
		t.Fatalf("recovered %d sweeps, want 1", len(rec.Sweeps))
	}
	t.Logf("journal replay: %d events (%d grants, %d renewals, %d completions, %d requeues)",
		rec.Events, rec.Grants, rec.Renewals, rec.Completions, rec.Requeues)

	sweeps, cells, err := b.disp.Resume(rec)
	if err != nil {
		t.Fatal(err)
	}
	if sweeps != 1 || cells == 0 || cells > 24 {
		t.Fatalf("resumed %d sweeps / %d cells", sweeps, cells)
	}
	terminal := len(rec.Sweeps[0].Terminal)
	if cells < 24-terminal {
		t.Fatalf("resumed %d cells with %d terminal in journal, want >= %d", cells, terminal, 24-terminal)
	}
	t.Logf("resumed %d cells (%d were journaled terminal)", cells, terminal)

	resumed := b.disp.Sweeps()
	if len(resumed) != 1 {
		t.Fatalf("dispatcher B has %d sweeps, want 1", len(resumed))
	}
	select {
	case <-resumed[0].Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("resumed sweep never finished: %+v", resumed[0].Status())
	}
	st := resumed[0].Status()
	if st.Done != cells || st.Failed != 0 || st.Cancelled != 0 {
		t.Fatalf("resumed sweep finished badly: %+v", st)
	}

	// Exactly-once-per-key: all 24 cells present, verified, no
	// duplicates, nothing lost across the crash.
	allVerified(t, "http://"+a.addr, 24)
	if b.store.Len() != 24 {
		t.Fatalf("store has %d keys, want 24", b.store.Len())
	}
}
