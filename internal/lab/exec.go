package lab

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bots/internal/core"
	"bots/internal/omp"
	"bots/internal/sim"
	"bots/internal/trace"
)

// Executor turns a JobSpec into a Record by actually running the
// experiment: sequential baseline (cached per bench/class), parallel
// recording run on the real runtime, verification, and simulated
// replay under the calibrated cost model. It is safe for concurrent
// use; concurrent jobs of one sweep share the baseline cache.
type Executor struct {
	mu        sync.Mutex
	baselines map[string]*baselineEntry

	// quiet serializes sequential baselines against parallel runs:
	// a baseline holds it exclusively (nothing else executes while it
	// is timed, since its elapsed/work ratio calibrates the
	// simulator's WorkUnitNS and is frozen into every cached record),
	// while parallel recording runs share it (their wall-clock is not
	// used for speedups, only their trace).
	quiet sync.RWMutex

	// executions counts parallel benchmark executions performed, the
	// observable the "second render is all cache hits" guarantee is
	// stated in terms of.
	executions atomic.Int64
}

type baselineEntry struct {
	once sync.Once
	res  *core.SeqResult
	err  error
}

// NewExecutor returns an Executor with an empty baseline cache.
func NewExecutor() *Executor {
	return &Executor{baselines: map[string]*baselineEntry{}}
}

// Executions returns the number of parallel benchmark runs performed
// so far (sequential baselines are not counted).
func (e *Executor) Executions() int64 { return e.executions.Load() }

// Baseline returns the cached sequential reference for bench/class,
// running it once on first use. Concurrent callers for the same cell
// block on a single run.
func (e *Executor) Baseline(b *core.Benchmark, class core.Class) (*core.SeqResult, error) {
	key := b.Name + "/" + class.String()
	e.mu.Lock()
	ent, ok := e.baselines[key]
	if !ok {
		ent = &baselineEntry{}
		e.baselines[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		e.quiet.Lock()
		defer e.quiet.Unlock()
		ent.res, ent.err = b.Seq(class)
	})
	return ent.res, ent.err
}

// simParams assembles the simulator cost model for a job: default
// overheads, the job's overrides, the benchmark's memory profile, and
// the work-unit calibration from the sequential baseline.
func simParams(b *core.Benchmark, seq *core.SeqResult, spec JobSpec) sim.Params {
	p := sim.DefaultOverheads()
	if o := spec.Overheads; o != nil {
		p.ThreadSwitch = o.ThreadSwitch
		p.SwitchNS = o.SwitchNS
		p.QueueSerializeNS = o.QueueSerializeNS
	}
	p.WorkUnitNS = float64(seq.Elapsed.Nanoseconds()) / float64(seq.Work)
	if p.WorkUnitNS <= 0 {
		p.WorkUnitNS = 1
	}
	p.MemFraction = b.Profile.MemFraction
	p.BandwidthCap = b.Profile.BandwidthCap
	p.Scheduler = spec.Policy
	return p
}

// analysisOf computes the stored work/span summary of a trace.
func analysisOf(tr *trace.Trace) *trace.Analysis {
	a := trace.Analyze(tr)
	return &a
}

// ExecuteContext is Execute with a cancellation point at the top: a
// cell cancelled while queued never starts its recording run. A run
// already in flight is never interrupted — a Record is all-or-nothing
// (a half-measured cell would poison the content-addressed store), so
// cancellation mid-execution means the result is completed and then
// discarded by the caller.
func (e *Executor) ExecuteContext(ctx context.Context, spec JobSpec) (*Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.Execute(spec)
}

// Execute runs one experiment cell end to end. A verification
// mismatch is an outcome, not an execution failure: the record comes
// back with Verified=false and no error, so sweeps surface bad cells
// instead of aborting on them.
func (e *Executor) Execute(spec JobSpec) (*Record, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	b, err := core.Get(spec.Bench)
	if err != nil {
		return nil, err
	}
	class, err := core.ParseClass(spec.Class)
	if err != nil {
		return nil, err
	}
	rtCutoff, err := omp.NewCutoff(spec.RuntimeCutoff)
	if err != nil {
		return nil, err
	}

	seq, err := e.Baseline(b, class)
	if err != nil {
		return nil, fmt.Errorf("lab: %s/%s baseline: %w", spec.Bench, spec.Class, err)
	}

	rec := trace.NewRecorder()
	e.executions.Add(1)
	cfg := core.RunConfig{
		Class:         class,
		Version:       spec.Version,
		Threads:       spec.Threads,
		CutoffDepth:   spec.CutoffDepth,
		RuntimeCutoff: rtCutoff,
		Scheduler:     spec.Policy,
		Recorder:      rec,
		Procs:         spec.Procs,
		PinWorkers:    spec.Pin,
	}
	var res *core.RunResult
	if spec.Procs > 0 {
		// GOMAXPROCS is process-global, so an oversubscription cell
		// runs exclusively — the quiet lock already serializes timed
		// baselines against everything else, and taking it exclusively
		// here extends that guarantee to the altered-procs window. The
		// value is restored before other cells may start.
		err = func() error {
			e.quiet.Lock()
			defer e.quiet.Unlock()
			old := runtime.GOMAXPROCS(spec.Procs)
			defer runtime.GOMAXPROCS(old)
			var rerr error
			res, rerr = b.Run(cfg)
			return rerr
		}()
	} else {
		e.quiet.RLock()
		res, err = b.Run(cfg)
		e.quiet.RUnlock()
	}
	if err != nil {
		return nil, fmt.Errorf("lab: running %s/%s on %d threads: %w",
			spec.Bench, spec.Version, spec.Threads, err)
	}
	tr := rec.Finish()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("lab: %s/%s trace: %w", spec.Bench, spec.Version, err)
	}
	simRes, err := sim.Run(tr, spec.Simulate, simParams(b, seq, spec))
	if err != nil {
		return nil, fmt.Errorf("lab: simulating %s/%s on %d threads: %w",
			spec.Bench, spec.Version, spec.Simulate, err)
	}

	out := &Record{
		Key:       spec.Key(),
		Spec:      spec,
		Host:      CurrentHost(),
		CreatedAt: time.Now().UTC(),
		Seq: SeqSummary{
			ElapsedNS: seq.Elapsed.Nanoseconds(),
			Work:      seq.Work,
			MemBytes:  seq.MemBytes,
			Metric:    seq.Metric,
		},
		ElapsedNS: res.Elapsed.Nanoseconds(),
		Metric:    res.Metric,
		Stats:     res.Stats,
		Tasks:     tr.NumTasks(),
		Analysis:  analysisOf(tr),
		Sim:       summarizeSim(simRes),
		Verified:  true,
	}
	if err := b.Check(seq, res); err != nil {
		out.Verified = false
		out.VerifyError = err.Error()
	}
	return out, nil
}
