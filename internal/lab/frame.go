package lab

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Checksummed JSONL framing, shared by the result store and the fleet
// journal (DESIGN.md §14). Each line is
//
//	{"crc":"xxxxxxxx","p":<payload>}
//
// where crc is the CRC-32C (Castagnoli) of the payload bytes exactly
// as they appear between the markers. The framing exists for one
// reason: a process killed mid-append leaves a torn final line, and a
// reload must be able to tell "the tail of an otherwise healthy log
// was cut" (drop it, keep everything else) from "the middle of the
// log is corrupt" (refuse to trust any of it). A checksum makes the
// distinction sharp even when the torn tail happens to be valid JSON
// of a truncated record.
//
// Lines that parse as JSON but carry no "crc" field are legacy
// (pre-framing) records: accepted verbatim, unverifiable. Appends
// always write framed lines, so a legacy file upgrades in place.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameOf renders one framed line (with trailing newline) for
// payload. The payload is embedded verbatim so the checksum covers
// the same bytes a reader will extract.
func frameOf(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+24)
	out = append(out, `{"crc":"`...)
	out = append(out, fmt.Sprintf("%08x", crc32.Checksum(payload, castagnoli))...)
	out = append(out, `","p":`...)
	out = append(out, payload...)
	out = append(out, '}', '\n')
	return out
}

// frameLine is the parsed form of one framed line.
type frameLine struct {
	CRC string          `json:"crc"`
	P   json.RawMessage `json:"p"`
}

// unframe extracts the payload of one line: framed lines are
// checksum-verified, legacy bare-JSON lines pass through. ok=false
// means the line is torn or corrupt.
func unframe(line []byte) (payload []byte, ok bool) {
	if !json.Valid(line) {
		return nil, false
	}
	var f frameLine
	if err := json.Unmarshal(line, &f); err != nil || f.CRC == "" {
		// Legacy line (or non-object JSON): no checksum to verify.
		return line, true
	}
	if fmt.Sprintf("%08x", crc32.Checksum(f.P, castagnoli)) != f.CRC {
		return nil, false
	}
	return f.P, true
}

// TailRepair describes a torn final line dropped during a framed-log
// reload (the crash-safety contract: a process killed mid-append
// reopens with every complete record intact).
type TailRepair struct {
	// DroppedBytes is how much of the file tail was truncated away.
	DroppedBytes int64
	// Reason is a human-readable account of what was wrong with it.
	Reason string
}

// loadFrames reads a framed (or legacy) JSONL file, returning every
// intact payload in order. A torn or checksum-failing FINAL line is
// repaired in place — the file is truncated back to the last good
// line — and reported; the same damage anywhere earlier is real
// corruption and fails the load. A final line that is intact but
// lacks its newline (crash between the payload write and nothing —
// O_APPEND writes are single syscalls, but the filesystem may still
// tear them) gets its newline restored so later appends stay
// line-aligned.
func loadFrames(f *os.File, path string) (payloads [][]byte, repair *TailRepair, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, fmt.Errorf("lab: seeking %s: %w", path, err)
	}
	type rawLine struct {
		off      int64 // byte offset of the line start
		data     []byte
		complete bool // ended with '\n'
	}
	var lines []rawLine
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	for {
		data, rerr := r.ReadBytes('\n')
		if len(data) > 0 {
			line := rawLine{off: off, data: data, complete: data[len(data)-1] == '\n'}
			off += int64(len(data))
			if line.complete {
				line.data = line.data[:len(line.data)-1]
			}
			if len(line.data) > 0 {
				lines = append(lines, line)
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return nil, nil, fmt.Errorf("lab: reading %s: %w", path, rerr)
		}
	}
	for i, line := range lines {
		payload, ok := unframe(line.data)
		last := i == len(lines)-1
		if ok && (line.complete || !last) {
			payloads = append(payloads, payload)
			continue
		}
		if !last {
			return nil, nil, fmt.Errorf("lab: %s line %d: corrupt record mid-file (checksum or JSON failure not at the tail)", path, i+1)
		}
		if ok && !line.complete {
			// Intact payload, missing newline: keep it, restore the
			// terminator (the fd is O_APPEND, so this lands at EOF).
			payloads = append(payloads, payload)
			if _, werr := f.Write([]byte("\n")); werr != nil {
				return nil, nil, fmt.Errorf("lab: repairing %s: %w", path, werr)
			}
			repair = &TailRepair{Reason: "final line missing newline; terminator restored"}
			continue
		}
		// Torn tail: truncate back to the last good line.
		if terr := f.Truncate(line.off); terr != nil {
			return nil, nil, fmt.Errorf("lab: truncating torn tail of %s: %w", path, terr)
		}
		dropped := off - line.off
		repair = &TailRepair{
			DroppedBytes: dropped,
			Reason:       fmt.Sprintf("torn final line (%d bytes) failed checksum/JSON; truncated", dropped),
		}
	}
	return payloads, repair, nil
}
