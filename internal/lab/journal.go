package lab

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal is the coordinator's write-ahead fleet journal (DESIGN.md
// §14): an append-only, checksum-framed JSONL log of every durable
// state transition — sweep submissions, cancellations, per-cell
// terminal outcomes, and the fleet's lease traffic (grants, renewals,
// completions, re-queues). Its job is crash recovery: a `botslab
// -fleet` coordinator killed mid-sweep reopens the journal, learns
// which sweeps were unfinished, and resubmits exactly the cells that
// never reached `done`. Cells that DID finish have their records in
// the result store, so the cache layer makes their "re-run" free —
// the journal never needs to persist results, only intent.
//
// Lease events (grant/renew/complete/requeue) are observability for
// the wire: replay counts them so a recovery can report how much
// traffic the dead incarnation had seen, and chaos tests can assert
// the journal actually witnessed the sweep. They carry no recovery
// obligation — leases die with the incarnation, and workers holding
// orphaned leases re-adopt or abandon them through the normal
// unknown-worker re-registration path.
//
// Opening a journal compacts it: finished and cancelled sweeps are
// dropped, unfinished ones are rewritten (submission + the terminal
// events seen so far) to a temp file that is renamed over the
// original, so the log stays proportional to live work rather than
// lifetime history. The rename is the commit point — a crash during
// compaction leaves the old journal intact.
//
// All methods are nil-receiver safe: a nil *Journal journals nothing,
// so call sites need no guards.
type Journal struct {
	mu        sync.Mutex
	path      string
	f         *os.File
	nextSweep int
	broken    bool
}

// journalEvent is the wire form of one journal line. One struct for
// every event type keeps replay trivial; unused fields stay omitted.
type journalEvent struct {
	T string `json:"t"` // "sweep" | "cancel" | "job" | "grant" | "renew" | "complete" | "requeue"

	// sweep / cancel
	ID        string    `json:"id,omitempty"` // journal-scoped sweep id ("js<n>")
	Name      string    `json:"name,omitempty"`
	Instances int       `json:"instances,omitempty"`
	Jobs      []JobSpec `json:"jobs,omitempty"`

	// job (terminal transition of one cell)
	Sweep  string `json:"sweep,omitempty"`
	Key    string `json:"key,omitempty"`
	Status string `json:"status,omitempty"`

	// lease traffic
	Lease   string `json:"lease,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	OK      bool   `json:"ok,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

// RecoveredSweep is one unfinished sweep reconstructed from the
// journal: its original submission plus the terminal outcome of every
// cell that resolved before the crash.
type RecoveredSweep struct {
	JournalID string
	Name      string
	Instances int
	Jobs      []JobSpec
	Terminal  map[string]JobStatus // key → last terminal status seen
}

// Pending returns the cells to resubmit: every job whose key never
// reached `done`. Failed cells are retried on recovery — a restart is
// as good an excuse as any to give a flaky cell another shot — and
// done cells are excluded so a recovered sweep cannot duplicate work
// (their records are in the store regardless).
func (r *RecoveredSweep) Pending() []JobSpec {
	var out []JobSpec
	for _, j := range r.Jobs {
		if r.Terminal[j.Key()] != JobDone {
			out = append(out, j)
		}
	}
	return out
}

// finished reports whether every cell reached a terminal state (done,
// failed, or cancelled) — such a sweep needs no recovery.
func (r *RecoveredSweep) finished() bool {
	for _, j := range r.Jobs {
		if _, ok := r.Terminal[j.Key()]; !ok {
			return false
		}
	}
	return true
}

// Recovery is what a journal replay found: the unfinished sweeps to
// resubmit and the event counts of the previous incarnation.
type Recovery struct {
	Path   string
	Repair *TailRepair // non-nil if the journal's own tail was torn
	Events int         // total events replayed

	Sweeps []*RecoveredSweep // unfinished, in submission order

	// Lease-traffic counts from the dead incarnation, for reporting
	// and for tests asserting the journal witnessed the sweep.
	Grants      int
	Renewals    int
	Completions int
	Requeues    int
}

// OpenJournal opens (creating if needed) the journal at path, replays
// it into a Recovery, and compacts the file down to unfinished work.
// The same torn-tail tolerance as the result store applies: a crash
// mid-append costs exactly the torn line.
func OpenJournal(path string) (*Journal, *Recovery, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("lab: opening journal %s: %w", path, err)
	}
	payloads, repair, err := loadFrames(f, path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	rec := &Recovery{Path: path, Repair: repair}
	if repair != nil {
		fmt.Fprintf(os.Stderr, "lab: journal %s: %s\n", path, repair.Reason)
	}

	sweeps := map[string]*RecoveredSweep{}
	var order []string
	maxID := 0
	for i, raw := range payloads {
		var ev journalEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("lab: journal %s event %d: %w", path, i+1, err)
		}
		rec.Events++
		switch ev.T {
		case "sweep":
			sw := &RecoveredSweep{
				JournalID: ev.ID, Name: ev.Name, Instances: ev.Instances,
				Jobs: ev.Jobs, Terminal: map[string]JobStatus{},
			}
			if _, dup := sweeps[ev.ID]; !dup {
				order = append(order, ev.ID)
			}
			sweeps[ev.ID] = sw
			var n int
			if _, err := fmt.Sscanf(ev.ID, "js%d", &n); err == nil && n > maxID {
				maxID = n
			}
		case "cancel":
			delete(sweeps, ev.ID)
		case "job":
			if sw := sweeps[ev.Sweep]; sw != nil && ev.Key != "" {
				sw.Terminal[ev.Key] = JobStatus(ev.Status)
			}
		case "grant":
			rec.Grants++
		case "renew":
			rec.Renewals++
		case "complete":
			rec.Completions++
		case "requeue":
			rec.Requeues++
		}
	}
	for _, id := range order {
		sw := sweeps[id]
		if sw == nil || sw.finished() {
			continue
		}
		rec.Sweeps = append(rec.Sweeps, sw)
	}

	// Compact: rewrite only the live sweeps, commit by rename.
	var compacted []byte
	for _, sw := range rec.Sweeps {
		raw, err := json.Marshal(journalEvent{T: "sweep", ID: sw.JournalID, Name: sw.Name, Instances: sw.Instances, Jobs: sw.Jobs})
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("lab: compacting journal %s: %w", path, err)
		}
		compacted = append(compacted, frameOf(raw)...)
		for _, j := range sw.Jobs {
			st, ok := sw.Terminal[j.Key()]
			if !ok {
				continue
			}
			raw, err := json.Marshal(journalEvent{T: "job", Sweep: sw.JournalID, Key: j.Key(), Status: string(st)})
			if err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("lab: compacting journal %s: %w", path, err)
			}
			compacted = append(compacted, frameOf(raw)...)
		}
	}
	f.Close()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, compacted, 0o644); err != nil {
		return nil, nil, fmt.Errorf("lab: compacting journal %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, fmt.Errorf("lab: committing compacted journal %s: %w", path, err)
	}
	f, err = os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("lab: reopening journal %s: %w", path, err)
	}
	return &Journal{path: path, f: f, nextSweep: maxID}, rec, nil
}

// Path returns the journal's backing file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close closes the journal. Later appends become no-ops, so a closed
// journal is safe to leave wired into a still-draining dispatcher.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// appendEvent frames and appends one event. A write failure disables
// the journal (with one stderr warning) rather than failing the
// operation being journaled — the coordinator keeps serving; only
// crash recovery degrades.
func (j *Journal) appendEvent(ev journalEvent) {
	if j == nil {
		return
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || j.broken {
		return
	}
	if _, err := j.f.Write(frameOf(raw)); err != nil {
		j.broken = true
		fmt.Fprintf(os.Stderr, "lab: journal %s: append failed, journaling disabled: %v\n", j.path, err)
	}
}

// BeginSweep journals a sweep submission and returns its
// journal-scoped ID. IDs continue past every ID seen during replay,
// so incarnations never collide.
func (j *Journal) BeginSweep(name string, instances int, jobs []JobSpec) string {
	if j == nil {
		return ""
	}
	j.mu.Lock()
	j.nextSweep++
	id := fmt.Sprintf("js%d", j.nextSweep)
	j.mu.Unlock()
	j.appendEvent(journalEvent{T: "sweep", ID: id, Name: name, Instances: instances, Jobs: jobs})
	return id
}

// SweepCancelled journals a sweep cancellation; recovery drops the
// sweep entirely.
func (j *Journal) SweepCancelled(id string) {
	if id == "" {
		return
	}
	j.appendEvent(journalEvent{T: "cancel", ID: id})
}

// JobDone journals one cell reaching a terminal state.
func (j *Journal) JobDone(sweepID, key string, status JobStatus) {
	if sweepID == "" {
		return
	}
	j.appendEvent(journalEvent{T: "job", Sweep: sweepID, Key: key, Status: string(status)})
}

// LeaseGranted journals one lease grant.
func (j *Journal) LeaseGranted(leaseID, key, workerID string, attempt int) {
	j.appendEvent(journalEvent{T: "grant", Lease: leaseID, Key: key, Worker: workerID, Attempt: attempt})
}

// LeaseRenewed journals one heartbeat renewal.
func (j *Journal) LeaseRenewed(leaseID string) {
	j.appendEvent(journalEvent{T: "renew", Lease: leaseID})
}

// LeaseCompleted journals a lease resolving with a record (ok) or an
// error (not ok).
func (j *Journal) LeaseCompleted(leaseID, key string, ok bool) {
	j.appendEvent(journalEvent{T: "complete", Lease: leaseID, Key: key, OK: ok})
}

// JobRequeued journals a queue transition: a cell going back to
// pending after an expiry, failure, or worker loss.
func (j *Journal) JobRequeued(key, reason string) {
	j.appendEvent(journalEvent{T: "requeue", Key: key, Reason: reason})
}
