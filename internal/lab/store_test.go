package lab_test

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"bots/internal/lab"
)

// fakeRunner is a Runner test double: it fabricates a Record per
// spec, counting executions, optionally failing the first N calls.
type fakeRunner struct {
	calls    atomic.Int64
	failN    atomic.Int64
	inflight atomic.Int64
	maxInfl  atomic.Int64
	block    chan struct{} // when non-nil, Run waits on it
}

func (f *fakeRunner) Run(spec lab.JobSpec) (*lab.Record, error) {
	cur := f.inflight.Add(1)
	defer f.inflight.Add(-1)
	for {
		prev := f.maxInfl.Load()
		if cur <= prev || f.maxInfl.CompareAndSwap(prev, cur) {
			break
		}
	}
	if f.block != nil {
		<-f.block
	}
	f.calls.Add(1)
	if f.failN.Add(-1) >= 0 {
		return nil, errFake
	}
	spec = spec.Normalize()
	return &lab.Record{Key: spec.Key(), Spec: spec, Verified: true, Tasks: 1}, nil
}

type fakeErr string

func (e fakeErr) Error() string { return string(e) }

const errFake = fakeErr("fake runner: injected failure")

func testSpec(bench string, threads int) lab.JobSpec {
	return lab.JobSpec{Bench: bench, Version: "manual-tied", Class: "test", Threads: threads}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lab.jsonl")
	s, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	specA, specB := testSpec("fib", 1).Normalize(), testSpec("fib", 2).Normalize()
	for _, sp := range []lab.JobSpec{specA, specB} {
		if err := s.Put(&lab.Record{Key: sp.Key(), Spec: sp, Verified: true}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("store len = %d, want 2", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := lab.OpenStore(path)
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("reloaded store len = %d, want 2", re.Len())
	}
	got, ok := re.Get(specB.Key())
	if !ok || got.Spec.Threads != 2 {
		t.Fatalf("reloaded record = %+v, %v", got, ok)
	}
	recs := re.Records()
	if len(recs) != 2 || recs[0].Key != specA.Key() || recs[1].Key != specB.Key() {
		t.Fatalf("record order not preserved: %+v", recs)
	}
}

func TestStoreLastRecordWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lab.jsonl")
	s, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec("fib", 1).Normalize()
	s.Put(&lab.Record{Key: sp.Key(), Spec: sp, ElapsedNS: 100})
	s.Put(&lab.Record{Key: sp.Key(), Spec: sp, ElapsedNS: 200})
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1 (same key supersedes)", s.Len())
	}
	s.Close()
	re, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, _ := re.Get(sp.Key())
	if got == nil || got.ElapsedNS != 200 {
		t.Fatalf("reloaded record = %+v, want the later append", got)
	}
}

func TestStoreSelectFilters(t *testing.T) {
	s, _ := lab.OpenStore("")
	for _, sp := range []lab.JobSpec{testSpec("fib", 1), testSpec("fib", 2), testSpec("nqueens", 2)} {
		n := sp.Normalize()
		s.Put(&lab.Record{Key: n.Key(), Spec: n, Verified: true})
	}
	if got := len(s.Select(lab.Filter{Bench: "fib"})); got != 2 {
		t.Errorf("bench filter matched %d, want 2", got)
	}
	if got := len(s.Select(lab.Filter{Threads: 2})); got != 2 {
		t.Errorf("threads filter matched %d, want 2", got)
	}
	if got := len(s.Select(lab.Filter{Bench: "fib", Threads: 2})); got != 1 {
		t.Errorf("combined filter matched %d, want 1", got)
	}
	f := false
	if got := len(s.Select(lab.Filter{Verified: &f})); got != 0 {
		t.Errorf("verified=false filter matched %d, want 0", got)
	}
}

// writeStoreRecords populates a fresh store file with n fib records
// and returns the path plus the keys written.
func writeStoreRecords(t *testing.T, n int) (string, []string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lab.jsonl")
	s, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < n; i++ {
		sp := testSpec("fib", i+1).Normalize()
		if err := s.Put(&lab.Record{Key: sp.Key(), Spec: sp, Verified: true}); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, sp.Key())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return path, keys
}

// TestStoreTornTailTruncated simulates a crash mid-Put: the final
// line is cut partway through. The reopen must keep every complete
// record, drop the torn tail with a repair report, and leave the file
// appendable (the next Put lands on a clean line boundary).
func TestStoreTornTailTruncated(t *testing.T) {
	path, keys := writeStoreRecords(t, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-way through the last line, newline included.
	lines := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := lab.OpenStore(path)
	if err != nil {
		t.Fatalf("reopening torn store failed: %v", err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded store len = %d, want 2 (torn record dropped)", re.Len())
	}
	rep := re.TornTail()
	if rep == nil || rep.DroppedBytes == 0 {
		t.Fatalf("torn-tail repair = %+v, want dropped bytes reported", rep)
	}
	if _, ok := re.Get(keys[2]); ok {
		t.Fatal("torn record survived the reload")
	}
	// The store must keep working after the repair: re-Put the lost
	// cell, close, reload, and see all three.
	sp3 := testSpec("fib", 3).Normalize()
	if err := re.Put(&lab.Record{Key: sp3.Key(), Spec: sp3, Verified: true}); err != nil {
		t.Fatal(err)
	}
	re.Close()
	again, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Len() != 3 || again.TornTail() != nil {
		t.Fatalf("post-repair reload: len=%d repair=%+v, want 3 records and no repair", again.Len(), again.TornTail())
	}
}

// TestStoreTornTailMissingNewline covers the other tear: the final
// record is intact but the terminator is gone. The record is kept and
// the newline restored, so a later append cannot splice onto it.
func TestStoreTornTailMissingNewline(t *testing.T) {
	path, keys := writeStoreRecords(t, 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.TrimSuffix(string(raw), "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded store len = %d, want 2 (intact record kept)", re.Len())
	}
	if re.TornTail() == nil {
		t.Fatal("missing-newline repair not reported")
	}
	sp := testSpec("nqueens", 2).Normalize()
	if err := re.Put(&lab.Record{Key: sp.Key(), Spec: sp, Verified: true}); err != nil {
		t.Fatal(err)
	}
	re.Close()
	again, err := lab.OpenStore(path)
	if err != nil {
		t.Fatalf("reload after repaired append failed: %v", err)
	}
	defer again.Close()
	if again.Len() != 3 {
		t.Fatalf("len = %d, want 3", again.Len())
	}
	if _, ok := again.Get(keys[1]); !ok {
		t.Fatal("repaired record lost")
	}
}

// TestStoreMidFileCorruptionStillFails pins the boundary of the
// tolerance: damage that is NOT a torn tail (a checksum-failing line
// with valid lines after it) is real corruption and must fail the
// open rather than silently dropping records.
func TestStoreMidFileCorruptionStillFails(t *testing.T) {
	path, _ := writeStoreRecords(t, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first line's payload.
	mangled := []byte(string(raw))
	idx := strings.Index(string(mangled), `"verified":true`)
	if idx < 0 {
		t.Fatal("no payload byte to flip")
	}
	mangled[idx+12] = 'X' // `true` -> `trXe` under an unchanged crc
	if err := os.WriteFile(path, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lab.OpenStore(path); err == nil {
		t.Fatal("mid-file corruption did not fail the open")
	}
}

// TestStoreLegacyUnframedLinesAccepted keeps pre-framing stores
// readable: bare Record lines (no crc wrapper) load fine and new
// appends upgrade the file in place.
func TestStoreLegacyUnframedLinesAccepted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.jsonl")
	sp := testSpec("fib", 1).Normalize()
	legacy := `{"key":"` + sp.Key() + `","spec":{"bench":"fib","version":"manual-tied","class":"test","threads":1,"simulate":1},"host":{"os":"linux","arch":"amd64","cpus":1,"go_version":"go"},"created_at":"2026-01-01T00:00:00Z","seq":{"elapsed_ns":1,"work":1,"mem_bytes":0},"elapsed_ns":1,"stats":null,"tasks":1,"sim":null,"verified":true}` + "\n"
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := lab.OpenStore(path)
	if err != nil {
		t.Fatalf("legacy store failed to open: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("legacy store len = %d, want 1", s.Len())
	}
	sp2 := testSpec("fib", 2).Normalize()
	if err := s.Put(&lab.Record{Key: sp2.Key(), Spec: sp2, Verified: true}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("mixed legacy+framed store len = %d, want 2", re.Len())
	}
}

func TestCachedRunnerHitSkipsExecution(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lab.jsonl")
	store, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fake := &fakeRunner{}
	c := lab.NewCachedRunner(store, fake)
	sp := testSpec("fib", 2)
	if _, err := c.Run(sp); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(sp); err != nil {
		t.Fatal(err)
	}
	if fake.calls.Load() != 1 {
		t.Fatalf("executed %d times, want 1", fake.calls.Load())
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
	store.Close()

	// Cache hits must survive a process restart (store reload).
	re, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	c2 := lab.NewCachedRunner(re, fake)
	if _, err := c2.Run(sp); err != nil {
		t.Fatal(err)
	}
	if fake.calls.Load() != 1 {
		t.Fatalf("reloaded store re-executed: %d calls", fake.calls.Load())
	}
	if c2.Hits() != 1 {
		t.Fatalf("reloaded store hits = %d, want 1", c2.Hits())
	}
}

func TestCachedRunnerCoalescesConcurrentMisses(t *testing.T) {
	store, _ := lab.OpenStore("")
	fake := &fakeRunner{block: make(chan struct{})}
	c := lab.NewCachedRunner(store, fake)
	sp := testSpec("fib", 4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Run(sp); err != nil {
				t.Error(err)
			}
		}()
	}
	close(fake.block)
	wg.Wait()
	if fake.calls.Load() != 1 {
		t.Fatalf("concurrent misses executed %d times, want 1", fake.calls.Load())
	}
}
