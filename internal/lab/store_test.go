package lab_test

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"bots/internal/lab"
)

// fakeRunner is a Runner test double: it fabricates a Record per
// spec, counting executions, optionally failing the first N calls.
type fakeRunner struct {
	calls    atomic.Int64
	failN    atomic.Int64
	inflight atomic.Int64
	maxInfl  atomic.Int64
	block    chan struct{} // when non-nil, Run waits on it
}

func (f *fakeRunner) Run(spec lab.JobSpec) (*lab.Record, error) {
	cur := f.inflight.Add(1)
	defer f.inflight.Add(-1)
	for {
		prev := f.maxInfl.Load()
		if cur <= prev || f.maxInfl.CompareAndSwap(prev, cur) {
			break
		}
	}
	if f.block != nil {
		<-f.block
	}
	f.calls.Add(1)
	if f.failN.Add(-1) >= 0 {
		return nil, errFake
	}
	spec = spec.Normalize()
	return &lab.Record{Key: spec.Key(), Spec: spec, Verified: true, Tasks: 1}, nil
}

type fakeErr string

func (e fakeErr) Error() string { return string(e) }

const errFake = fakeErr("fake runner: injected failure")

func testSpec(bench string, threads int) lab.JobSpec {
	return lab.JobSpec{Bench: bench, Version: "manual-tied", Class: "test", Threads: threads}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lab.jsonl")
	s, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	specA, specB := testSpec("fib", 1).Normalize(), testSpec("fib", 2).Normalize()
	for _, sp := range []lab.JobSpec{specA, specB} {
		if err := s.Put(&lab.Record{Key: sp.Key(), Spec: sp, Verified: true}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("store len = %d, want 2", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := lab.OpenStore(path)
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("reloaded store len = %d, want 2", re.Len())
	}
	got, ok := re.Get(specB.Key())
	if !ok || got.Spec.Threads != 2 {
		t.Fatalf("reloaded record = %+v, %v", got, ok)
	}
	recs := re.Records()
	if len(recs) != 2 || recs[0].Key != specA.Key() || recs[1].Key != specB.Key() {
		t.Fatalf("record order not preserved: %+v", recs)
	}
}

func TestStoreLastRecordWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lab.jsonl")
	s, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec("fib", 1).Normalize()
	s.Put(&lab.Record{Key: sp.Key(), Spec: sp, ElapsedNS: 100})
	s.Put(&lab.Record{Key: sp.Key(), Spec: sp, ElapsedNS: 200})
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1 (same key supersedes)", s.Len())
	}
	s.Close()
	re, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, _ := re.Get(sp.Key())
	if got == nil || got.ElapsedNS != 200 {
		t.Fatalf("reloaded record = %+v, want the later append", got)
	}
}

func TestStoreSelectFilters(t *testing.T) {
	s, _ := lab.OpenStore("")
	for _, sp := range []lab.JobSpec{testSpec("fib", 1), testSpec("fib", 2), testSpec("nqueens", 2)} {
		n := sp.Normalize()
		s.Put(&lab.Record{Key: n.Key(), Spec: n, Verified: true})
	}
	if got := len(s.Select(lab.Filter{Bench: "fib"})); got != 2 {
		t.Errorf("bench filter matched %d, want 2", got)
	}
	if got := len(s.Select(lab.Filter{Threads: 2})); got != 2 {
		t.Errorf("threads filter matched %d, want 2", got)
	}
	if got := len(s.Select(lab.Filter{Bench: "fib", Threads: 2})); got != 1 {
		t.Errorf("combined filter matched %d, want 1", got)
	}
	f := false
	if got := len(s.Select(lab.Filter{Verified: &f})); got != 0 {
		t.Errorf("verified=false filter matched %d, want 0", got)
	}
}

func TestCachedRunnerHitSkipsExecution(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lab.jsonl")
	store, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fake := &fakeRunner{}
	c := lab.NewCachedRunner(store, fake)
	sp := testSpec("fib", 2)
	if _, err := c.Run(sp); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(sp); err != nil {
		t.Fatal(err)
	}
	if fake.calls.Load() != 1 {
		t.Fatalf("executed %d times, want 1", fake.calls.Load())
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
	store.Close()

	// Cache hits must survive a process restart (store reload).
	re, err := lab.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	c2 := lab.NewCachedRunner(re, fake)
	if _, err := c2.Run(sp); err != nil {
		t.Fatal(err)
	}
	if fake.calls.Load() != 1 {
		t.Fatalf("reloaded store re-executed: %d calls", fake.calls.Load())
	}
	if c2.Hits() != 1 {
		t.Fatalf("reloaded store hits = %d, want 1", c2.Hits())
	}
}

func TestCachedRunnerCoalescesConcurrentMisses(t *testing.T) {
	store, _ := lab.OpenStore("")
	fake := &fakeRunner{block: make(chan struct{})}
	c := lab.NewCachedRunner(store, fake)
	sp := testSpec("fib", 4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Run(sp); err != nil {
				t.Error(err)
			}
		}()
	}
	close(fake.block)
	wg.Wait()
	if fake.calls.Load() != 1 {
		t.Fatalf("concurrent misses executed %d times, want 1", fake.calls.Load())
	}
}
