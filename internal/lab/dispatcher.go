package lab

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// JobStatus is the lifecycle state of one job in a sweep.
type JobStatus string

const (
	JobQueued    JobStatus = "queued"
	JobRunning   JobStatus = "running"
	JobDone      JobStatus = "done"
	JobFailed    JobStatus = "failed"
	JobCancelled JobStatus = "cancelled"
)

// JobView is the externally visible state of one job (what the
// status API returns). Between a failed attempt and its retry the job
// sits in `queued` with Attempts, the last Error, and NextAttempt
// (the end of its backoff window) all populated.
type JobView struct {
	Key         string     `json:"key"`
	Spec        JobSpec    `json:"spec"`
	Status      JobStatus  `json:"status"`
	Attempts    int        `json:"attempts"`
	Error       string     `json:"error,omitempty"`
	NextAttempt *time.Time `json:"next_attempt,omitempty"`
}

// Sweep states reported by SweepStatus.State.
const (
	SweepRunning    = "running"
	SweepDone       = "done"
	SweepCancelling = "cancelling" // cancel requested, leased/running cells finishing
	SweepCancelled  = "cancelled"
)

// SweepStatus is a point-in-time snapshot of a sweep.
type SweepStatus struct {
	ID      string    `json:"id"`
	Name    string    `json:"name,omitempty"`
	State   string    `json:"state"`
	Created time.Time `json:"created"`
	// Instances is the manifest's requested worker count (0 = no
	// per-sweep cap); the dispatcher degrades gracefully when the
	// pool or fleet offers less.
	Instances int       `json:"instances,omitempty"`
	Total     int       `json:"total"`
	Queued    int       `json:"queued"`
	Running   int       `json:"running"`
	Done      int       `json:"done"`
	Failed    int       `json:"failed"`
	Cancelled int       `json:"cancelled"`
	Jobs      []JobView `json:"jobs"`
}

// Finished reports whether every job has reached a terminal state.
func (s SweepStatus) Finished() bool { return s.Done+s.Failed+s.Cancelled == s.Total }

// ProgressEvent is delivered to the dispatcher's progress callback on
// every job state transition.
type ProgressEvent struct {
	SweepID string  `json:"sweep_id"`
	Job     JobView `json:"job"`
}

type dispJob struct {
	sweep *Sweep
	idx   int
}

// Sweep is one submitted manifest expansion being worked through the
// pool.
type Sweep struct {
	id        string
	name      string
	created   time.Time
	journalID string // "" when the dispatcher has no journal

	// ctx is cancelled by Dispatcher.Cancel; context-aware runners
	// (RemoteRunner waiting on the fleet) abort through it.
	ctx    context.Context
	cancel context.CancelFunc

	// instances and inflight are guarded by the dispatcher's mutex
	// (they steer queue pops, not status reads).
	instances int
	inflight  int

	mu        sync.Mutex
	jobs      []JobView
	remaining int
	cancelled bool
	done      chan struct{}
}

// ID returns the sweep's dispatcher-assigned identifier.
func (s *Sweep) ID() string { return s.id }

// Done returns a channel closed when every job has finished.
func (s *Sweep) Done() <-chan struct{} { return s.done }

// Wait blocks until the sweep finishes and returns its final status.
func (s *Sweep) Wait() SweepStatus {
	<-s.done
	return s.Status()
}

func (s *Sweep) isCancelled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cancelled
}

// Status returns a snapshot of the sweep.
func (s *Sweep) Status() SweepStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SweepStatus{
		ID:        s.id,
		Name:      s.name,
		Created:   s.created,
		Instances: s.instances,
		Total:     len(s.jobs),
		Jobs:      append([]JobView(nil), s.jobs...),
	}
	for _, j := range s.jobs {
		switch j.Status {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		case JobCancelled:
			st.Cancelled++
		}
	}
	finished := st.Finished()
	switch {
	case s.cancelled && finished:
		st.State = SweepCancelled
	case s.cancelled:
		st.State = SweepCancelling
	case finished:
		st.State = SweepDone
	default:
		st.State = SweepRunning
	}
	return st
}

// Dispatcher runs sweep jobs on a bounded worker pool with
// per-job status, bounded retry with jittered exponential backoff,
// per-sweep instance caps, cancellation, and progress callbacks.
type Dispatcher struct {
	runner  Runner
	retries int

	// RetryBase and RetryCap shape the backoff between attempts of a
	// failing job: attempt n waits RetryBase*2^(n-1), jittered ±25%,
	// capped at RetryCap (defaults 250ms / 10s). Set before the first
	// Submit.
	RetryBase time.Duration
	RetryCap  time.Duration

	// OnProgress, when non-nil, is called (from worker goroutines,
	// without internal locks held) on every job state transition.
	OnProgress func(ProgressEvent)

	// Journal, when non-nil, receives sweep submissions, cancellations,
	// and terminal cell outcomes so a crashed coordinator can recover
	// its unfinished work (Resume). Set before the first Submit.
	Journal *Journal

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []dispJob
	sweeps map[string]*Sweep
	order  []string
	nextID int
	closed bool
	wg     sync.WaitGroup
}

// NewDispatcher starts a pool of `workers` goroutines executing jobs
// on runner. Each failed job is retried up to `retries` more times
// before being marked failed.
func NewDispatcher(runner Runner, workers, retries int) *Dispatcher {
	if workers < 1 {
		workers = 1
	}
	if retries < 0 {
		retries = 0
	}
	d := &Dispatcher{
		runner:    runner,
		retries:   retries,
		RetryBase: 250 * time.Millisecond,
		RetryCap:  10 * time.Second,
		sweeps:    map[string]*Sweep{},
	}
	d.cond = sync.NewCond(&d.mu)
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	return d
}

// backoffDelay is the shared retry schedule of the dispatcher and the
// fleet: base*2^(attempt-1) capped at max, jittered ±25% so a burst
// of same-cause failures doesn't re-arrive in lockstep.
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if max <= 0 {
		max = 10 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// ±25% jitter; rand's global source is fine — this is schedule
	// noise, not an experiment input (those take seeded RNGs).
	j := d / 4
	if j > 0 {
		d += time.Duration(rand.Int63n(int64(2*j))) - j
	}
	return d
}

// Submit expands the manifest and enqueues every cell. It returns
// the tracking Sweep immediately; jobs run in the background.
func (d *Dispatcher) Submit(spec SweepSpec) (*Sweep, error) {
	if spec.Instances < 0 {
		return nil, fmt.Errorf("lab: sweep %q has negative instances %d", spec.Name, spec.Instances)
	}
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	return d.submit(spec.Name, spec.Instances, jobs, "")
}

// SubmitJobs enqueues an explicit job list as one sweep with no
// per-sweep instance cap.
func (d *Dispatcher) SubmitJobs(name string, jobs []JobSpec) (*Sweep, error) {
	return d.submit(name, 0, jobs, "")
}

// SubmitJobsN is SubmitJobs with a testground-style instances cap: at
// most `instances` cells of the sweep run concurrently (0 = no cap).
// The cap is a *request* — a smaller pool or fleet simply yields less
// parallelism, never an error.
func (d *Dispatcher) SubmitJobsN(name string, instances int, jobs []JobSpec) (*Sweep, error) {
	return d.submit(name, instances, jobs, "")
}

// Resume resubmits the unfinished sweeps of a journal recovery. Each
// recovered sweep keeps its journal ID — its new terminal events
// append under the identity the compacted journal already re-wrote —
// and only cells that never reached `done` are resubmitted; finished
// cells resolve from the result store anyway. It returns how many
// sweeps and cells went back into the queue.
func (d *Dispatcher) Resume(rec *Recovery) (sweeps, cells int, err error) {
	if rec == nil {
		return 0, 0, nil
	}
	for _, sw := range rec.Sweeps {
		pending := sw.Pending()
		if len(pending) == 0 {
			continue
		}
		if _, err := d.submit(sw.Name, sw.Instances, pending, sw.JournalID); err != nil {
			return sweeps, cells, fmt.Errorf("lab: resuming sweep %s (%q): %w", sw.JournalID, sw.Name, err)
		}
		sweeps++
		cells += len(pending)
	}
	return sweeps, cells, nil
}

func (d *Dispatcher) submit(name string, instances int, jobs []JobSpec, journalID string) (*Sweep, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("lab: sweep %q expands to zero jobs", name)
	}
	if instances < 0 {
		return nil, fmt.Errorf("lab: sweep %q has negative instances %d", name, instances)
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, fmt.Errorf("lab: dispatcher is closed")
	}
	d.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	sw := &Sweep{
		id:        fmt.Sprintf("s%d", d.nextID),
		name:      name,
		created:   time.Now().UTC(),
		ctx:       ctx,
		cancel:    cancel,
		instances: instances,
		remaining: len(jobs),
		done:      make(chan struct{}),
	}
	normalized := make([]JobSpec, 0, len(jobs))
	for _, j := range jobs {
		j = j.Normalize()
		normalized = append(normalized, j)
		sw.jobs = append(sw.jobs, JobView{Key: j.Key(), Spec: j, Status: JobQueued})
	}
	if d.Journal != nil {
		if journalID == "" {
			// New sweep: journal the submission. A recovered sweep
			// (journalID set by Resume) is already in the compacted
			// journal; re-journaling it would double it on replay.
			journalID = d.Journal.BeginSweep(name, instances, normalized)
		}
		sw.journalID = journalID
	}
	d.sweeps[sw.id] = sw
	d.order = append(d.order, sw.id)
	for i := range sw.jobs {
		d.queue = append(d.queue, dispJob{sweep: sw, idx: i})
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	return sw, nil
}

// Sweep returns a submitted sweep by ID.
func (d *Dispatcher) Sweep(id string) (*Sweep, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sw, ok := d.sweeps[id]
	return sw, ok
}

// Cancel cancels a sweep: cells still queued (including those inside
// a retry-backoff window) flip to cancelled immediately; cells
// already running — or leased out to fleet workers — finish or expire
// on their own, with context-aware runners (RemoteRunner) abandoning
// their wait so the sweep converges without blocking on remote work.
func (d *Dispatcher) Cancel(id string) (SweepStatus, error) {
	d.mu.Lock()
	sw, ok := d.sweeps[id]
	if !ok {
		d.mu.Unlock()
		return SweepStatus{}, fmt.Errorf("lab: unknown sweep %q", id)
	}
	var dropped []dispJob
	kept := d.queue[:0]
	for _, q := range d.queue {
		if q.sweep == sw {
			dropped = append(dropped, q)
		} else {
			kept = append(kept, q)
		}
	}
	d.queue = kept
	d.mu.Unlock()

	sw.mu.Lock()
	already := sw.cancelled
	sw.cancelled = true
	sw.mu.Unlock()
	if !already {
		sw.cancel() // wake context-aware runners
		d.Journal.SweepCancelled(sw.journalID)
	}
	for _, j := range dropped {
		d.setStatus(j, JobCancelled, sw.jobs[j.idx].Attempts, "sweep cancelled")
	}
	return sw.Status(), nil
}

// Counts is the dispatcher-wide job accounting across every sweep,
// plus whether the dispatcher still accepts submissions — the
// readiness view /healthz and the bots_lab_* gauges expose.
type Counts struct {
	Accepting bool `json:"accepting"`
	Sweeps    int  `json:"sweeps"`
	Queued    int  `json:"queued"`
	Running   int  `json:"running"`
	Done      int  `json:"done"`
	Failed    int  `json:"failed"`
	Cancelled int  `json:"cancelled"`
}

// Counts aggregates the job states of all sweeps. Like Sweep.Status
// it is a point-in-time snapshot, consistent per sweep.
func (d *Dispatcher) Counts() Counts {
	d.mu.Lock()
	c := Counts{Accepting: !d.closed}
	sweeps := make([]*Sweep, 0, len(d.order))
	for _, id := range d.order {
		sweeps = append(sweeps, d.sweeps[id])
	}
	d.mu.Unlock()
	for _, sw := range sweeps {
		st := sw.Status()
		c.Sweeps++
		c.Queued += st.Queued
		c.Running += st.Running
		c.Done += st.Done
		c.Failed += st.Failed
		c.Cancelled += st.Cancelled
	}
	return c
}

// Sweeps returns all sweeps in submission order.
func (d *Dispatcher) Sweeps() []*Sweep {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Sweep, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, d.sweeps[id])
	}
	return out
}

// Close stops accepting submissions, drains the remaining queue, and
// waits for in-flight jobs to finish. Jobs waiting out a retry
// backoff when Close is called fail at their scheduled time instead
// of re-running.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
}

// worker pops runnable jobs: the oldest queued cell whose sweep is
// under its instances cap. Capped or empty, it parks on the cond var
// until a finishing job or a fresh submission changes the picture.
func (d *Dispatcher) worker() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		var job dispJob
		found := false
		for !found {
			for i, q := range d.queue {
				sw := q.sweep
				if sw.instances > 0 && sw.inflight >= sw.instances {
					continue
				}
				job = q
				d.queue = append(d.queue[:i], d.queue[i+1:]...)
				found = true
				break
			}
			if found {
				break
			}
			if d.closed && len(d.queue) == 0 {
				d.mu.Unlock()
				return
			}
			d.cond.Wait()
		}
		job.sweep.inflight++
		d.mu.Unlock()
		d.runJob(job)
		d.mu.Lock()
		job.sweep.inflight--
		d.cond.Broadcast()
		d.mu.Unlock()
	}
}

// setStatus transitions one job and reports the new view; callbacks
// fire outside the sweep lock.
func (d *Dispatcher) setStatus(j dispJob, status JobStatus, attempts int, errMsg string) {
	d.setStatusAt(j, status, attempts, errMsg, nil)
}

func (d *Dispatcher) setStatusAt(j dispJob, status JobStatus, attempts int, errMsg string, next *time.Time) {
	sw := j.sweep
	sw.mu.Lock()
	v := &sw.jobs[j.idx]
	v.Status = status
	v.Attempts = attempts
	v.Error = errMsg
	v.NextAttempt = next
	view := *v
	finished := false
	terminal := status == JobDone || status == JobFailed || status == JobCancelled
	if terminal {
		sw.remaining--
		finished = sw.remaining == 0
	}
	sw.mu.Unlock()
	if terminal {
		d.Journal.JobDone(sw.journalID, view.Key, status)
	}
	if cb := d.OnProgress; cb != nil {
		cb(ProgressEvent{SweepID: sw.id, Job: view})
	}
	if finished {
		close(sw.done)
	}
}

// runJob runs one attempt. Failure with attempts left schedules a
// re-enqueue after a jittered exponential backoff — the worker slot
// is freed for the wait, so a flaky cell never blocks the pool.
func (d *Dispatcher) runJob(j dispJob) {
	sw := j.sweep
	sw.mu.Lock()
	attempt := sw.jobs[j.idx].Attempts + 1
	spec := sw.jobs[j.idx].Spec
	cancelled := sw.cancelled
	sw.mu.Unlock()
	if cancelled {
		d.setStatus(j, JobCancelled, attempt-1, "sweep cancelled")
		return
	}

	d.setStatus(j, JobRunning, attempt, "")
	_, err := RunWithContext(sw.ctx, d.runner, spec)
	if err == nil {
		d.setStatus(j, JobDone, attempt, "")
		return
	}
	if sw.isCancelled() || errors.Is(err, context.Canceled) {
		d.setStatus(j, JobCancelled, attempt, "sweep cancelled")
		return
	}
	if attempt >= d.retries+1 {
		d.setStatus(j, JobFailed, attempt, err.Error())
		return
	}
	delay := backoffDelay(d.RetryBase, d.RetryCap, attempt)
	next := time.Now().Add(delay)
	d.setStatusAt(j, JobQueued, attempt, err.Error(), &next)
	time.AfterFunc(delay, func() { d.requeue(j) })
}

// requeue returns a backed-off job to the queue when its timer fires.
// A sweep cancelled or a dispatcher closed in the meantime resolves
// the job terminally instead.
func (d *Dispatcher) requeue(j dispJob) {
	sw := j.sweep
	sw.mu.Lock()
	attempts := sw.jobs[j.idx].Attempts
	lastErr := sw.jobs[j.idx].Error
	cancelled := sw.cancelled
	sw.mu.Unlock()
	if cancelled {
		d.setStatus(j, JobCancelled, attempts, "sweep cancelled")
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.setStatus(j, JobFailed, attempts, lastErr+" (dispatcher closed before retry)")
		return
	}
	d.queue = append(d.queue, j)
	d.cond.Broadcast()
	d.mu.Unlock()
}
