package lab

import (
	"fmt"
	"sync"
	"time"
)

// JobStatus is the lifecycle state of one job in a sweep.
type JobStatus string

const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// JobView is the externally visible state of one job (what the
// status API returns).
type JobView struct {
	Key      string    `json:"key"`
	Spec     JobSpec   `json:"spec"`
	Status   JobStatus `json:"status"`
	Attempts int       `json:"attempts"`
	Error    string    `json:"error,omitempty"`
}

// SweepStatus is a point-in-time snapshot of a sweep.
type SweepStatus struct {
	ID      string    `json:"id"`
	Name    string    `json:"name,omitempty"`
	Created time.Time `json:"created"`
	Total   int       `json:"total"`
	Queued  int       `json:"queued"`
	Running int       `json:"running"`
	Done    int       `json:"done"`
	Failed  int       `json:"failed"`
	Jobs    []JobView `json:"jobs"`
}

// Finished reports whether every job has reached a terminal state.
func (s SweepStatus) Finished() bool { return s.Done+s.Failed == s.Total }

// ProgressEvent is delivered to the dispatcher's progress callback on
// every job state transition.
type ProgressEvent struct {
	SweepID string  `json:"sweep_id"`
	Job     JobView `json:"job"`
}

type dispJob struct {
	sweep *Sweep
	idx   int
}

// Sweep is one submitted manifest expansion being worked through the
// pool.
type Sweep struct {
	id      string
	name    string
	created time.Time

	mu        sync.Mutex
	jobs      []JobView
	remaining int
	done      chan struct{}
}

// ID returns the sweep's dispatcher-assigned identifier.
func (s *Sweep) ID() string { return s.id }

// Done returns a channel closed when every job has finished.
func (s *Sweep) Done() <-chan struct{} { return s.done }

// Wait blocks until the sweep finishes and returns its final status.
func (s *Sweep) Wait() SweepStatus {
	<-s.done
	return s.Status()
}

// Status returns a snapshot of the sweep.
func (s *Sweep) Status() SweepStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SweepStatus{
		ID:      s.id,
		Name:    s.name,
		Created: s.created,
		Total:   len(s.jobs),
		Jobs:    append([]JobView(nil), s.jobs...),
	}
	for _, j := range s.jobs {
		switch j.Status {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		}
	}
	return st
}

// Dispatcher runs sweep jobs on a bounded worker pool with
// per-job status, bounded retry on failure, and progress callbacks.
type Dispatcher struct {
	runner  Runner
	retries int

	// OnProgress, when non-nil, is called (from worker goroutines,
	// without internal locks held) on every job state transition.
	OnProgress func(ProgressEvent)

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []dispJob
	sweeps map[string]*Sweep
	order  []string
	nextID int
	closed bool
	wg     sync.WaitGroup
}

// NewDispatcher starts a pool of `workers` goroutines executing jobs
// on runner. Each failed job is retried up to `retries` more times
// before being marked failed.
func NewDispatcher(runner Runner, workers, retries int) *Dispatcher {
	if workers < 1 {
		workers = 1
	}
	if retries < 0 {
		retries = 0
	}
	d := &Dispatcher{runner: runner, retries: retries, sweeps: map[string]*Sweep{}}
	d.cond = sync.NewCond(&d.mu)
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	return d
}

// Submit expands the manifest and enqueues every cell. It returns
// the tracking Sweep immediately; jobs run in the background.
func (d *Dispatcher) Submit(spec SweepSpec) (*Sweep, error) {
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	return d.SubmitJobs(spec.Name, jobs)
}

// SubmitJobs enqueues an explicit job list as one sweep.
func (d *Dispatcher) SubmitJobs(name string, jobs []JobSpec) (*Sweep, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("lab: sweep %q expands to zero jobs", name)
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, fmt.Errorf("lab: dispatcher is closed")
	}
	d.nextID++
	sw := &Sweep{
		id:        fmt.Sprintf("s%d", d.nextID),
		name:      name,
		created:   time.Now().UTC(),
		remaining: len(jobs),
		done:      make(chan struct{}),
	}
	for _, j := range jobs {
		j = j.Normalize()
		sw.jobs = append(sw.jobs, JobView{Key: j.Key(), Spec: j, Status: JobQueued})
	}
	d.sweeps[sw.id] = sw
	d.order = append(d.order, sw.id)
	for i := range sw.jobs {
		d.queue = append(d.queue, dispJob{sweep: sw, idx: i})
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	return sw, nil
}

// Sweep returns a submitted sweep by ID.
func (d *Dispatcher) Sweep(id string) (*Sweep, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sw, ok := d.sweeps[id]
	return sw, ok
}

// Counts is the dispatcher-wide job accounting across every sweep,
// plus whether the dispatcher still accepts submissions — the
// readiness view /healthz and the bots_lab_* gauges expose.
type Counts struct {
	Accepting bool `json:"accepting"`
	Sweeps    int  `json:"sweeps"`
	Queued    int  `json:"queued"`
	Running   int  `json:"running"`
	Done      int  `json:"done"`
	Failed    int  `json:"failed"`
}

// Counts aggregates the job states of all sweeps. Like Sweep.Status
// it is a point-in-time snapshot, consistent per sweep.
func (d *Dispatcher) Counts() Counts {
	d.mu.Lock()
	c := Counts{Accepting: !d.closed}
	sweeps := make([]*Sweep, 0, len(d.order))
	for _, id := range d.order {
		sweeps = append(sweeps, d.sweeps[id])
	}
	d.mu.Unlock()
	for _, sw := range sweeps {
		st := sw.Status()
		c.Sweeps++
		c.Queued += st.Queued
		c.Running += st.Running
		c.Done += st.Done
		c.Failed += st.Failed
	}
	return c
}

// Sweeps returns all sweeps in submission order.
func (d *Dispatcher) Sweeps() []*Sweep {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Sweep, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, d.sweeps[id])
	}
	return out
}

// Close stops accepting submissions, drains the remaining queue, and
// waits for in-flight jobs to finish.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
}

func (d *Dispatcher) worker() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.closed {
			d.cond.Wait()
		}
		if len(d.queue) == 0 && d.closed {
			d.mu.Unlock()
			return
		}
		job := d.queue[0]
		d.queue = d.queue[1:]
		d.mu.Unlock()
		d.runJob(job)
	}
}

// setStatus transitions one job and reports the new view; callbacks
// fire outside the sweep lock.
func (d *Dispatcher) setStatus(j dispJob, status JobStatus, attempts int, errMsg string) {
	sw := j.sweep
	sw.mu.Lock()
	v := &sw.jobs[j.idx]
	v.Status = status
	v.Attempts = attempts
	v.Error = errMsg
	view := *v
	finished := false
	if status == JobDone || status == JobFailed {
		sw.remaining--
		finished = sw.remaining == 0
	}
	sw.mu.Unlock()
	if cb := d.OnProgress; cb != nil {
		cb(ProgressEvent{SweepID: sw.id, Job: view})
	}
	if finished {
		close(sw.done)
	}
}

func (d *Dispatcher) runJob(j dispJob) {
	spec := j.sweep.jobs[j.idx].Spec
	var lastErr error
	for attempt := 1; attempt <= d.retries+1; attempt++ {
		d.setStatus(j, JobRunning, attempt, "")
		_, err := d.runner.Run(spec)
		if err == nil {
			d.setStatus(j, JobDone, attempt, "")
			return
		}
		lastErr = err
	}
	d.setStatus(j, JobFailed, d.retries+1, lastErr.Error())
}
