package lab

import (
	"context"
	"sync"
	"sync/atomic"
)

// Runner turns a JobSpec into a Record. It is the seam between the
// report layer (which asks for experiment cells) and the lab (which
// decides whether — and, since the fleet, *where* — a cell actually
// executes): a CachedRunner answers from the store, a DirectRunner
// measures in-process, a RemoteRunner ships the cell to a registered
// worker daemon, and tests substitute fakes.
type Runner interface {
	Run(spec JobSpec) (*Record, error)
}

// ContextRunner is the optional cancellation-aware extension of
// Runner. The dispatcher runs jobs through RunWithContext, so a
// runner implementing this sees sweep cancellation: a RemoteRunner
// stops waiting on the fleet, a DirectRunner declines to start a
// queued cell. Runners that don't implement it simply run to
// completion (a recording run is never interrupted mid-measurement —
// Records are all-or-nothing).
type ContextRunner interface {
	Runner
	RunContext(ctx context.Context, spec JobSpec) (*Record, error)
}

// RunWithContext runs the spec on r, threading ctx through when the
// runner supports it. For a plain Runner, cancellation is only
// honored before the run starts.
func RunWithContext(ctx context.Context, r Runner, spec JobSpec) (*Record, error) {
	if cr, ok := r.(ContextRunner); ok {
		return cr.RunContext(ctx, spec)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.Run(spec)
}

// DirectRunner executes every job through an Executor, with no
// caching beyond the executor's sequential-baseline cache.
type DirectRunner struct {
	Exec *Executor
}

// NewDirectRunner returns a DirectRunner with a fresh Executor.
func NewDirectRunner() *DirectRunner { return &DirectRunner{Exec: NewExecutor()} }

// Run implements Runner.
func (d *DirectRunner) Run(spec JobSpec) (*Record, error) { return d.Exec.Execute(spec) }

// RunContext implements ContextRunner: a cancelled cell never starts.
func (d *DirectRunner) RunContext(ctx context.Context, spec JobSpec) (*Record, error) {
	return d.Exec.ExecuteContext(ctx, spec)
}

// RemoteRunner executes jobs on the fleet: Run enqueues the cell with
// the coordinator and blocks until a worker daemon leases, executes,
// and ships its Record back (or the fleet exhausts the job's lease
// attempts). Stacked under a CachedRunner it gives `botslab` fleet
// sweeps the same contract local ones have: hits short-circuit from
// the shared store, only misses travel.
type RemoteRunner struct {
	Fleet *Fleet
}

// NewRemoteRunner returns a RemoteRunner dispatching through fleet.
func NewRemoteRunner(fleet *Fleet) *RemoteRunner { return &RemoteRunner{Fleet: fleet} }

// Run implements Runner.
func (r *RemoteRunner) Run(spec JobSpec) (*Record, error) {
	return r.RunContext(context.Background(), spec)
}

// RunContext implements ContextRunner: on cancellation the job is
// abandoned — dropped from the fleet queue if still pending, left to
// finish as a store-bound orphan if already leased.
func (r *RemoteRunner) RunContext(ctx context.Context, spec JobSpec) (*Record, error) {
	return r.Fleet.Enqueue(spec).Wait(ctx)
}

// CachedRunner consults a Store before delegating to the next
// Runner, and persists what the next runner produces. Concurrent
// requests for the same key are coalesced into a single execution.
type CachedRunner struct {
	Store *Store
	Next  Runner

	hits, misses atomic.Int64

	mu       sync.Mutex
	inflight map[string]*inflightJob
}

type inflightJob struct {
	done chan struct{}
	rec  *Record
	err  error
}

// NewCachedRunner returns a CachedRunner over store, executing
// misses on next.
func NewCachedRunner(store *Store, next Runner) *CachedRunner {
	return &CachedRunner{Store: store, Next: next, inflight: map[string]*inflightJob{}}
}

// Hits and Misses report cache behaviour since construction.
func (c *CachedRunner) Hits() int64   { return c.hits.Load() }
func (c *CachedRunner) Misses() int64 { return c.misses.Load() }

// Run implements Runner: store hit → cached record; miss → execute
// once (coalescing concurrent callers), persist, return.
func (c *CachedRunner) Run(spec JobSpec) (*Record, error) {
	return c.RunContext(context.Background(), spec)
}

// RunContext implements ContextRunner. Cancellation propagates both
// to the executing side (via the next runner) and to coalesced
// waiters: a caller whose ctx dies stops waiting for the in-flight
// execution it piggybacked on. Note the executing caller's ctx covers
// everyone coalesced onto it; a waiter that outlives a cancelled
// executor sees the cancellation error and may simply retry.
func (c *CachedRunner) RunContext(ctx context.Context, spec JobSpec) (*Record, error) {
	spec = spec.Normalize()
	key := spec.Key()
	if r, ok := c.Store.Get(key); ok {
		c.hits.Add(1)
		return r, nil
	}

	c.mu.Lock()
	if job, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-job.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if job.err == nil {
			c.hits.Add(1)
		}
		return job.rec, job.err
	}
	job := &inflightJob{done: make(chan struct{})}
	c.inflight[key] = job
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(job.done)
	}()

	// Re-check under inflight ownership: the store may have been
	// populated between the first Get and acquiring the slot.
	if r, ok := c.Store.Get(key); ok {
		c.hits.Add(1)
		job.rec = r
		return r, nil
	}
	c.misses.Add(1)
	r, err := RunWithContext(ctx, c.Next, spec)
	if err != nil {
		job.err = err
		return nil, err
	}
	if err := c.Store.Put(r); err != nil {
		job.err = err
		return nil, err
	}
	job.rec = r
	return r, nil
}
