package lab

import (
	"sync"
	"sync/atomic"
)

// Runner turns a JobSpec into a Record. It is the seam between the
// report layer (which asks for experiment cells) and the lab (which
// decides whether a cell must actually execute): a CachedRunner
// answers from the store, a DirectRunner always measures, and tests
// substitute fakes.
type Runner interface {
	Run(spec JobSpec) (*Record, error)
}

// DirectRunner executes every job through an Executor, with no
// caching beyond the executor's sequential-baseline cache.
type DirectRunner struct {
	Exec *Executor
}

// NewDirectRunner returns a DirectRunner with a fresh Executor.
func NewDirectRunner() *DirectRunner { return &DirectRunner{Exec: NewExecutor()} }

// Run implements Runner.
func (d *DirectRunner) Run(spec JobSpec) (*Record, error) { return d.Exec.Execute(spec) }

// CachedRunner consults a Store before delegating to the next
// Runner, and persists what the next runner produces. Concurrent
// requests for the same key are coalesced into a single execution.
type CachedRunner struct {
	Store *Store
	Next  Runner

	hits, misses atomic.Int64

	mu       sync.Mutex
	inflight map[string]*inflightJob
}

type inflightJob struct {
	done chan struct{}
	rec  *Record
	err  error
}

// NewCachedRunner returns a CachedRunner over store, executing
// misses on next.
func NewCachedRunner(store *Store, next Runner) *CachedRunner {
	return &CachedRunner{Store: store, Next: next, inflight: map[string]*inflightJob{}}
}

// Hits and Misses report cache behaviour since construction.
func (c *CachedRunner) Hits() int64   { return c.hits.Load() }
func (c *CachedRunner) Misses() int64 { return c.misses.Load() }

// Run implements Runner: store hit → cached record; miss → execute
// once (coalescing concurrent callers), persist, return.
func (c *CachedRunner) Run(spec JobSpec) (*Record, error) {
	spec = spec.Normalize()
	key := spec.Key()
	if r, ok := c.Store.Get(key); ok {
		c.hits.Add(1)
		return r, nil
	}

	c.mu.Lock()
	if job, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-job.done
		if job.err == nil {
			c.hits.Add(1)
		}
		return job.rec, job.err
	}
	job := &inflightJob{done: make(chan struct{})}
	c.inflight[key] = job
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(job.done)
	}()

	// Re-check under inflight ownership: the store may have been
	// populated between the first Get and acquiring the slot.
	if r, ok := c.Store.Get(key); ok {
		c.hits.Add(1)
		job.rec = r
		return r, nil
	}
	c.misses.Add(1)
	r, err := c.Next.Run(spec)
	if err != nil {
		job.err = err
		return nil, err
	}
	if err := c.Store.Put(r); err != nil {
		job.err = err
		return nil, err
	}
	job.rec = r
	return r, nil
}
