package lab_test

import (
	"strings"
	"testing"

	_ "bots/internal/apps/all"
	"bots/internal/core"
	"bots/internal/lab"
	"bots/internal/omp"
)

func TestExpandGolden(t *testing.T) {
	spec := lab.SweepSpec{
		Benches:  []string{"fib"},
		Versions: []string{"manual-tied", "if-tied"},
		Classes:  []string{"test"},
		Threads:  []int{1, 2},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic expansion: sorted by (bench, version, class,
	// threads, ...), versions alphabetical within a bench.
	want := []struct {
		version string
		threads int
	}{
		{"if-tied", 1}, {"if-tied", 2},
		{"manual-tied", 1}, {"manual-tied", 2},
	}
	if len(jobs) != len(want) {
		t.Fatalf("expanded %d jobs, want %d: %+v", len(jobs), len(want), jobs)
	}
	for i, w := range want {
		j := jobs[i]
		if j.Bench != "fib" || j.Version != w.version || j.Threads != w.threads || j.Class != "test" {
			t.Errorf("job[%d] = %+v, want fib/%s/test/%d", i, j, w.version, w.threads)
		}
		if j.Simulate != w.threads {
			t.Errorf("job[%d].Simulate = %d, want normalized to %d", i, j.Simulate, w.threads)
		}
	}
	// Same manifest → same keys (content addressing is stable).
	again, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Key() != again[i].Key() {
			t.Fatalf("expansion keys not stable at %d", i)
		}
	}
}

func TestExpandDedupsBestAgainstExplicit(t *testing.T) {
	fib, _ := core.Get("fib")
	spec := lab.SweepSpec{
		Benches:  []string{"fib"},
		Versions: []string{"best", fib.BestVersion},
		Classes:  []string{"test"},
		Threads:  []int{2},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("best + explicit best expanded to %d jobs, want 1 (dedup by key)", len(jobs))
	}
}

func TestExpandAppliesVersionsWhereTheyExist(t *testing.T) {
	// manual-tied exists on fib but not sort; tied exists on sort but
	// not fib. Each applies only where present.
	spec := lab.SweepSpec{
		Benches:  []string{"fib", "sort"},
		Versions: []string{"manual-tied", "tied"},
		Threads:  []int{1},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, j := range jobs {
		got[j.Bench] = j.Version
	}
	if len(jobs) != 2 || got["fib"] != "manual-tied" || got["sort"] != "tied" {
		t.Fatalf("cross-bench version filtering produced %+v", jobs)
	}
}

func TestExpandRejectsUnknownVersionEverywhere(t *testing.T) {
	spec := lab.SweepSpec{Benches: []string{"fib"}, Versions: []string{"bogus-tied"}, Threads: []int{1}}
	if _, err := spec.Expand(); err == nil || !strings.Contains(err.Error(), "bogus-tied") {
		t.Fatalf("expected unknown-version error, got %v", err)
	}
}

func TestExpandKeywordBenches(t *testing.T) {
	spec := lab.SweepSpec{Benches: []string{"paper"}, Threads: []int{1}}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(core.Paper()) {
		t.Fatalf("paper keyword expanded to %d jobs, want %d", len(jobs), len(core.Paper()))
	}
}

func TestReadSweepSpecRejectsUnknownFields(t *testing.T) {
	_, err := lab.ReadSweepSpec(strings.NewReader(`{"benches":["fib"],"thread":[1]}`))
	if err == nil || !strings.Contains(err.Error(), "thread") {
		t.Fatalf("typoed axis should fail decoding, got %v", err)
	}
}

func TestKeyCanonicalization(t *testing.T) {
	base := lab.JobSpec{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 4}
	same := []lab.JobSpec{
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 4, Simulate: 4},
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 4, Policy: "workfirst"},
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 4, RuntimeCutoff: "none"},
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 4, Overheads: &lab.SimOverrides{}},
	}
	for i, s := range same {
		if s.Key() != base.Key() {
			t.Errorf("spec %d should alias the base key: %+v", i, s)
		}
	}
	diff := []lab.JobSpec{
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 8},
		{Bench: "fib", Version: "manual-tied", Class: "small", Threads: 4},
		{Bench: "fib", Version: "if-tied", Class: "test", Threads: 4},
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 4, CutoffDepth: 3},
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 4, RuntimeCutoff: "maxtasks"},
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 4, Policy: "breadthfirst"},
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 4, Simulate: 16},
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 4, Overheads: &lab.SimOverrides{QueueSerializeNS: 120}},
	}
	seen := map[string]int{base.Key(): -1}
	for i, s := range diff {
		k := s.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("spec %d aliases spec %d: %+v", i, prev, s)
		}
		seen[k] = i
	}
}

// TestPolicyAxisSweep sweeps the full scheduler axis end to end: the
// manifest expands to one cell per registered scheduler with distinct
// canonical keys, and every cell runs the real pipeline (record +
// verify + simulate) successfully.
func TestPolicyAxisSweep(t *testing.T) {
	spec := lab.SweepSpec{
		Benches:  []string{"fib"},
		Versions: []string{"manual-tied"},
		Classes:  []string{"test"},
		Threads:  []int{2},
		Policies: omp.Schedulers(),
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(omp.Schedulers()) {
		t.Fatalf("policy axis expanded to %d cells, want %d", len(jobs), len(omp.Schedulers()))
	}
	keys := map[string]string{}
	runner := lab.NewDirectRunner()
	for _, j := range jobs {
		if prev, dup := keys[j.Key()]; dup {
			t.Fatalf("policy %q aliases %q: same canonical key", j.Policy, prev)
		}
		keys[j.Key()] = j.Policy
		rec, err := runner.Run(j)
		if err != nil {
			t.Fatalf("policy %q: %v", j.Policy, err)
		}
		if !rec.Verified {
			t.Fatalf("policy %q failed verification: %s", j.Policy, rec.VerifyError)
		}
		if rec.Sim == nil || rec.Sim.Speedup <= 0 {
			t.Fatalf("policy %q: missing simulated replay in record", j.Policy)
		}
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	bad := []lab.JobSpec{
		{Bench: "nope", Version: "tied", Class: "test", Threads: 1},
		{Bench: "fib", Version: "nope-tied", Class: "test", Threads: 1},
		{Bench: "fib", Version: "manual-tied", Class: "gigantic", Threads: 1},
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 0},
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 4, Simulate: 2},
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 1, RuntimeCutoff: "sometimes"},
		{Bench: "fib", Version: "manual-tied", Class: "test", Threads: 1, Policy: "chaotic"},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should not validate: %+v", i, s)
		}
	}
}
