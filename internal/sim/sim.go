// Package sim is a discrete-event simulator for work-stealing task
// schedulers. It replays a task graph recorded by internal/trace
// (from a real internal/omp execution) on an arbitrary number of
// virtual threads, reproducing the scheduling semantics of the omp
// runtime — a queue discipline per registered scheduler (work-first
// and breadth-first deques, the centralized shared queue, locality
// steal-half/last-victim stealing; Params.Scheduler), random-victim
// stealing, the OpenMP task scheduling constraint for tied tasks,
// undeferred (inline) tasks, dependence-deferred tasks (trace Deps
// edges hold a spawned task back until its predecessors complete) —
// together with a cost model for task-management overheads and shared
// memory bandwidth.
// Task priorities are replayed as ordinary tasks: priority is a
// scheduling hint that changes pick order, not the dependence
// structure, and the simulator's deques keep creation order.
//
// This is the substitution (see DESIGN.md) for the paper's 32-CPU
// Altix testbed: on a host with one core, wall-clock speedup curves
// are structurally flat, but the paper's Figures 3–5 are properties
// of the task graph, the scheduler and the memory system, all of
// which the simulator models explicitly. Simulated time is exact
// (event-driven, no sampling): the reported makespan for one virtual
// thread equals total work plus total overhead by construction.
package sim

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"bots/internal/trace"
)

// Params is the simulator cost model.
type Params struct {
	// WorkUnitNS is the duration, in virtual nanoseconds, of one
	// application work unit (calibrated per benchmark from a serial
	// run: serial time / total work units).
	WorkUnitNS float64
	// SpawnNS is the creator-side overhead of deferring a task
	// (allocation, queue push).
	SpawnNS float64
	// InlineNS is the creator-side overhead of an undeferred task
	// (if-clause false or runtime cut-off): bookkeeping without a
	// queue operation. The gap between InlineNS and zero is exactly
	// the paper's distinction between the if-clause cut-off and the
	// manual cut-off (which creates no task at all).
	InlineNS float64
	// StealNS is the thief-side cost of a successful steal.
	StealNS float64
	// TaskwaitNS is the cost of executing a taskwait.
	TaskwaitNS float64
	// MemFraction is the fraction of task work that is bound by the
	// shared memory system (0 = pure compute, scales linearly;
	// 1 = pure memory traffic).
	MemFraction float64
	// BandwidthCap is the number of concurrently active workers the
	// memory system can sustain at full speed; with A active workers,
	// memory-bound work slows by max(1, A/BandwidthCap). Zero means
	// unlimited bandwidth.
	BandwidthCap float64
	// Scheduler names the queue discipline to replay under, matching
	// the omp scheduler registry so simulated sweeps stay faithful per
	// policy ("" = workfirst):
	//
	//   - "workfirst": per-worker deques, LIFO own consumption, FIFO
	//     single-task steals from random victims.
	//   - "breadthfirst": as workfirst but the owner consumes its own
	//     deque FIFO (roughly creation order).
	//   - "centralized": one shared team FIFO; every spawn enqueues
	//     there and every worker dequeues from the front. There is no
	//     stealing (Steals stays 0) and no StealNS is charged; combine
	//     with QueueSerializeNS to cost the shared-queue contention.
	//     The real scheduler's MPMC-ring rework (omp §9.1) changed the
	//     queue's synchronization, not its discipline — same FIFO
	//     order, same constrained-scan reachability, still no steals —
	//     so this replay stays faithful to it; QueueSerializeNS now
	//     models only the mutex slow paths (overflow, tied scans)
	//     rather than every operation.
	//   - "locality": workfirst local order plus affinity stealing —
	//     thieves return to their last successful victim first and an
	//     unconstrained steal moves half the victim's backlog.
	Scheduler string
	// QueueSerializeNS, when positive, models a *central shared task
	// queue* instead of per-worker deques: every enqueue (deferred
	// spawn) and dequeue (task start) serializes through one lock,
	// occupying it for this long. The queue-architecture ablation
	// contrasts this with distributed deques (zero), reproducing the
	// classic result that a central queue collapses under fine-grained
	// task rates as threads grow.
	QueueSerializeNS float64
	// ThreadSwitch enables true untied-task migration: an untied task
	// suspended at a taskwait detaches from its worker's stack and,
	// once its children complete, may be resumed by any worker — the
	// OpenMP untied capability that the paper's §IV-C observes the
	// Intel 11.0 runtime did not implement (and which the real
	// internal/omp runtime, stack-bound like Intel's, cannot provide).
	// The simulator can, enabling the counterfactual study of what
	// thread switching would have bought.
	ThreadSwitch bool
	// SwitchNS is the cost of resuming a migrated continuation on a
	// new worker (cold stack/cache); only used with ThreadSwitch.
	SwitchNS float64
	// OnStart and OnComplete, when non-nil, observe the simulated
	// timeline: they are called with the task ID, the worker, and the
	// virtual time at which the task started/completed. Intended for
	// schedule visualization and debugging.
	OnStart    func(id int32, worker int, atNS float64)
	OnComplete func(id int32, worker int, atNS float64)
}

// DefaultOverheads returns Params with representative task-management
// costs (in ns) for a 2009-era runtime, leaving the application
// calibration fields zero.
func DefaultOverheads() Params {
	return Params{
		SpawnNS:    320,
		InlineNS:   110,
		StealNS:    450,
		TaskwaitNS: 90,
	}
}

// Result summarizes one simulated execution.
type Result struct {
	// Threads is the simulated team size.
	Threads int
	// MakespanNS is the simulated wall-clock time of the region.
	MakespanNS float64
	// SerialNS is the overhead-free serial time (total work ×
	// WorkUnitNS), the paper's speedup baseline.
	SerialNS float64
	// Speedup is SerialNS / MakespanNS.
	Speedup float64
	// Steals is the number of successful steals.
	Steals int64
	// Parks is the number of times a taskwait blocked with no
	// runnable task available under its scheduling constraint.
	Parks int64
	// Switches is the number of untied continuations resumed on a
	// worker (only non-zero with Params.ThreadSwitch).
	Switches int64
	// IdleNS is the total worker time spent idle or blocked.
	IdleNS float64
}

func (r Result) String() string {
	return fmt.Sprintf("threads=%d speedup=%.2f makespan=%.3fms steals=%d parks=%d",
		r.Threads, r.Speedup, r.MakespanNS/1e6, r.Steals, r.Parks)
}

// workerState is the mode of a virtual worker.
type workerState uint8

const (
	wIdle    workerState = iota // looking for work (instantaneous retry on availability)
	wRunning                    // executing a timed segment
	wBlocked                    // suspended in a taskwait, waiting for children
	wDone                       // root finished and nothing left (still steals on wake)
)

// frame is one entry of a worker's execution stack: a task instance
// in progress.
type frame struct {
	id        int32   // task ID in the trace
	evIdx     int     // next event to process
	doneWork  int64   // work units completed so far
	remaining float64 // base-ns remaining in the current segment
	memBound  bool    // current segment subject to the bandwidth model
	inWait    bool    // suspended at a taskwait
}

type vworker struct {
	id         int
	state      workerState
	stack      []frame
	dq         []int32 // ready deque: bottom = end of slice, top = index 0
	rng        uint64
	lastVictim int // last successful steal victim (locality), or -1
}

// discipline is the parsed Params.Scheduler queue discipline.
type discipline uint8

const (
	schedWorkFirst discipline = iota
	schedBreadthFirst
	schedCentralized
	schedLocality
)

// builtinDiscipline resolves the four disciplines modeled natively.
func builtinDiscipline(name string) (discipline, bool) {
	switch name {
	case "", "workfirst":
		return schedWorkFirst, true
	case "breadthfirst":
		return schedBreadthFirst, true
	case "centralized":
		return schedCentralized, true
	case "locality":
		return schedLocality, true
	}
	return 0, false
}

// disciplineAlias maps scheduler names registered outside the four
// built-ins (omp.RegisterScheduler extensions) onto the built-in
// discipline that models them most closely, so sweeps and reports
// over the full scheduler registry can still replay their cells.
var (
	aliasMu         sync.RWMutex
	disciplineAlias = map[string]discipline{}
)

// RegisterDiscipline declares that traces recorded under scheduler
// name replay under base's queue discipline (one of workfirst/
// breadthfirst/centralized/locality). Call it alongside
// omp.RegisterScheduler for any scheduler added outside this package;
// without it, simulating that scheduler's cells errors explicitly
// rather than silently mis-modeling them as workfirst.
func RegisterDiscipline(name, base string) error {
	d, ok := builtinDiscipline(base)
	if !ok || name == "" {
		return fmt.Errorf("sim: RegisterDiscipline(%q, %q): base must be one of workfirst/breadthfirst/centralized/locality", name, base)
	}
	aliasMu.Lock()
	disciplineAlias[name] = d
	aliasMu.Unlock()
	return nil
}

// parseDiscipline maps an omp scheduler registry name onto the
// simulator's matching (or registered-alias) queue discipline. A
// parameterized registry form — workfirst(8) and friends, carrying a
// steal-batch size — resolves to its base name's discipline: the
// simulator models queue order and steal direction, not raid width,
// so every batch parameterization of one scheduler replays the same.
func parseDiscipline(name string) (discipline, error) {
	if d, ok := builtinDiscipline(name); ok {
		return d, nil
	}
	aliasMu.RLock()
	d, ok := disciplineAlias[name]
	aliasMu.RUnlock()
	if ok {
		return d, nil
	}
	if i := strings.IndexByte(name, '('); i > 0 && strings.HasSuffix(name, ")") {
		return parseDiscipline(name[:i])
	}
	return 0, fmt.Errorf("sim: no queue discipline for scheduler %q (have workfirst/breadthfirst/centralized/locality; RegisterDiscipline maps new scheduler names onto one of them)", name)
}

type sim struct {
	tr      *trace.Trace
	p       Params
	disc    discipline
	workers []*vworker

	// central is the shared team queue of the centralized discipline
	// (front = index 0, tasks spawn onto the back).
	central []int32
	// pending[i] = outstanding children of task i; waitingOn[i] =
	// worker blocked in task i's taskwait, or -1.
	pending   []int32
	waiterOf  []int32
	liveTasks int

	// Dependence state: depsLeft[i] counts unfinished predecessors of
	// task i (from trace Deps edges), succs[i] lists its successors,
	// and depWaiting[i] marks a spawned task held back until its last
	// predecessor completes — mirroring the runtime's
	// deferred-on-dependence state.
	depsLeft   []int32
	succs      [][]int32
	depWaiting []bool
	now        float64
	steals     int64
	parks      int64
	switches   int64
	idleNS     float64

	// Thread-switching state (Params.ThreadSwitch): suspended untied
	// continuations detached from worker stacks, and the subset whose
	// children have completed, ready to resume on any worker.
	suspended map[int32]frame
	readyCont []int32

	// queueFreeAt is the virtual time at which the central queue lock
	// becomes free (Params.QueueSerializeNS model).
	queueFreeAt float64
}

// queueAcquire returns the time an operation spends acquiring and
// holding the central queue at virtual time s.now, advancing the
// queue's busy horizon.
func (s *sim) queueAcquire() float64 {
	d := s.p.QueueSerializeNS
	if d <= 0 {
		return 0
	}
	wait := s.queueFreeAt - s.now
	if wait < 0 {
		wait = 0
	}
	s.queueFreeAt = s.now + wait + d
	return wait + d
}

// Run simulates tr on the given number of virtual threads. The team
// may not be smaller than the recording team (each implicit task
// needs its own thread); extra threads beyond tr.NumRoots start idle
// and participate by stealing. For faithful reproduction of
// worksharing distribution, record on a team of the same size.
func Run(tr *trace.Trace, threads int, p Params) (Result, error) {
	if threads < tr.NumRoots {
		return Result{}, fmt.Errorf("sim: trace has %d roots but simulating only %d threads; record the trace on a team of at most that size", tr.NumRoots, threads)
	}
	if p.WorkUnitNS <= 0 {
		p.WorkUnitNS = 1
	}
	disc, err := parseDiscipline(p.Scheduler)
	if err != nil {
		return Result{}, err
	}
	s := &sim{
		tr:         tr,
		p:          p,
		disc:       disc,
		pending:    make([]int32, len(tr.Tasks)),
		waiterOf:   make([]int32, len(tr.Tasks)),
		depsLeft:   make([]int32, len(tr.Tasks)),
		succs:      make([][]int32, len(tr.Tasks)),
		depWaiting: make([]bool, len(tr.Tasks)),
	}
	for i := range s.waiterOf {
		s.waiterOf[i] = -1
	}
	for i := range tr.Tasks {
		for _, d := range tr.Tasks[i].Deps {
			s.depsLeft[i]++
			s.succs[d] = append(s.succs[d], int32(i))
		}
	}
	s.workers = make([]*vworker, threads)
	for i := 0; i < threads; i++ {
		w := &vworker{id: i, rng: uint64(i)*0x9e3779b97f4a7c15 + 1, lastVictim: -1}
		if i < tr.NumRoots {
			w.startTask(s, int32(i), false)
		} else {
			w.state = wIdle
		}
		s.workers[i] = w
	}
	s.liveTasks = len(tr.Tasks)
	if err := s.run(); err != nil {
		return Result{}, err
	}
	serial := float64(tr.TotalWork()) * p.WorkUnitNS
	res := Result{
		Threads:    threads,
		MakespanNS: s.now,
		SerialNS:   serial,
		Steals:     s.steals,
		Parks:      s.parks,
		Switches:   s.switches,
		IdleNS:     s.idleNS,
	}
	if s.now > 0 {
		res.Speedup = serial / s.now
	}
	return res, nil
}

// startTask pushes a new frame for task id on w's stack, charging the
// thief-side steal overhead if stolen. The frame starts with only the
// overhead as its current segment; segmentDone loads work segments.
func (w *vworker) startTask(s *sim, id int32, stolen bool) {
	f := frame{id: id}
	if stolen {
		f.remaining = s.p.StealNS
	}
	if id >= int32(s.tr.NumRoots) {
		f.remaining += s.queueAcquire() // dequeue through the central queue, if modeled
	}
	w.stack = append(w.stack, f)
	w.state = wRunning
	if s.p.OnStart != nil {
		s.p.OnStart(id, w.id, s.now)
	}
}

func (w *vworker) nextRand() uint64 {
	x := w.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	w.rng = x
	return x * 0x2545f4914f6cdd1d
}

// slowFactor is the bandwidth-model stretch for memory-bound work
// when a active workers share the memory system.
func (s *sim) slowFactor(active int) float64 {
	if s.p.BandwidthCap <= 0 || s.p.MemFraction <= 0 || active <= 1 {
		return 1
	}
	contend := float64(active) / s.p.BandwidthCap
	if contend < 1 {
		contend = 1
	}
	return (1 - s.p.MemFraction) + s.p.MemFraction*contend
}

func (s *sim) run() error {
	const maxIter = 1 << 40
	for iter := 0; s.liveTasks > 0; iter++ {
		if iter >= maxIter {
			return fmt.Errorf("sim: exceeded %d iterations; scheduler stuck", maxIter)
		}
		// Phase 1: settle all instantaneous transitions.
		progress := true
		for progress {
			progress = false
			for _, w := range s.workers {
				if w.state == wIdle || w.state == wDone {
					if s.tryAcquire(w) {
						progress = true
					}
				}
			}
		}
		if s.liveTasks == 0 {
			break
		}
		// Phase 2: advance virtual time to the next segment completion.
		active := 0
		for _, w := range s.workers {
			if w.state == wRunning {
				active++
			}
		}
		if active == 0 {
			var queued, depWaiting int
			blocked := 0
			queued += len(s.central)
			for _, w := range s.workers {
				queued += len(w.dq)
				if w.state == wBlocked {
					blocked++
				}
			}
			for _, held := range s.depWaiting {
				if held {
					depWaiting++
				}
			}
			return fmt.Errorf("sim: deadlock at t=%.0fns: %d tasks outstanding (queued %d, dep-waiting %d, suspended %d, readyCont %d, blocked workers %d)",
				s.now, s.liveTasks, queued, depWaiting, len(s.suspended), len(s.readyCont), blocked)
		}
		factor := s.slowFactor(active)
		dt := math.Inf(1)
		for _, w := range s.workers {
			if w.state != wRunning {
				continue
			}
			f := &w.stack[len(w.stack)-1]
			d := f.remaining
			if f.memBound {
				d *= factor
			}
			if d < dt {
				dt = d
			}
		}
		s.now += dt
		s.idleNS += dt * float64(len(s.workers)-active)
		// Two passes: advance every running segment first, then fire
		// completions. segmentDone may wake blocked workers and load
		// fresh segments; those must not be decremented by a dt they
		// never waited through.
		var finished []*vworker
		for _, w := range s.workers {
			if w.state != wRunning {
				continue
			}
			f := &w.stack[len(w.stack)-1]
			dec := dt
			if f.memBound {
				dec /= factor
			}
			f.remaining -= dec
			if f.remaining <= 1e-9 {
				f.remaining = 0
				finished = append(finished, w)
			}
		}
		for _, w := range finished {
			if w.state == wRunning && len(w.stack) > 0 && w.stack[len(w.stack)-1].remaining == 0 {
				s.segmentDone(w)
			}
		}
	}
	return nil
}

// segmentDone processes the event at the end of the just-finished
// segment of w's top frame, cascading through zero-length segments,
// inline children, taskwaits and task completions until the worker
// either has a timed segment to run, blocks, or goes idle.
func (s *sim) segmentDone(w *vworker) {
	for {
		if len(w.stack) == 0 {
			w.state = wIdle
			return
		}
		f := &w.stack[len(w.stack)-1]
		if f.remaining > 0 {
			w.state = wRunning
			return
		}
		if f.inWait {
			// A suspended taskwait whose overhead segment has been
			// consumed: re-evaluate (control returns here both after
			// interleaved tasks and on wake-up from a block).
			if !s.resumeTaskwait(w, f) {
				return // blocked, or started another task
			}
			continue
		}
		t := &s.tr.Tasks[f.id]
		var boundary int64
		if f.evIdx < len(t.Events) {
			boundary = t.Events[f.evIdx].At
		} else {
			boundary = t.Work
		}
		if f.doneWork < boundary {
			// Load the work segment up to the next event (or to the
			// end of the task's own work).
			f.remaining = float64(boundary-f.doneWork) * s.p.WorkUnitNS
			f.doneWork = boundary
			f.memBound = true
			continue
		}
		if f.evIdx >= len(t.Events) {
			// All events consumed and all work done: task completes.
			s.completeTask(w, f.id)
			continue
		}
		ev := t.Events[f.evIdx]
		f.evIdx++
		switch ev.Kind {
		case trace.EvSpawn:
			s.pending[f.id]++
			if s.depsLeft[ev.Child] > 0 {
				// Deferred on dependences: counted in pending but not
				// enqueued; the last predecessor's completion will
				// push it (see completeTask).
				s.depWaiting[ev.Child] = true
			} else {
				s.enqueueReady(w, ev.Child)
			}
			f.remaining = s.p.SpawnNS + s.queueAcquire()
			f.memBound = false
		case trace.EvSpawnInline:
			// Undeferred child: bookkeeping cost on the parent, then
			// the child executes immediately as a new top frame.
			s.pending[f.id]++
			f.remaining = s.p.InlineNS
			f.memBound = false
			w.startTask(s, ev.Child, false)
		case trace.EvTaskwait:
			f.remaining = s.p.TaskwaitNS
			f.memBound = false
			if s.pending[f.id] > 0 {
				f.inWait = true
			}
		}
	}
}

// resumeTaskwait re-evaluates a frame suspended at a taskwait. It
// returns true if the wait is over (children all done) and execution
// of f may continue; false if the worker started another task (new
// top frame), blocked, or (with ThreadSwitch) detached the untied
// continuation. f must be w's top frame with inWait set.
func (s *sim) resumeTaskwait(w *vworker, f *frame) bool {
	if s.pending[f.id] == 0 {
		f.inWait = false
		return true
	}
	id := f.id
	untied := s.tr.Tasks[id].Untied
	if untied && s.p.ThreadSwitch {
		// Detach the continuation: this worker is free immediately,
		// and any worker may resume the task when its children are
		// done. This is the thread-switching capability of untied
		// tasks that stack-bound runtimes forgo.
		cont := *f
		w.stack = w.stack[:len(w.stack)-1]
		if s.suspended == nil {
			s.suspended = make(map[int32]frame)
		}
		s.suspended[id] = cont
		s.workerAfterDetach(w)
		return false
	}
	constraint := id
	if untied {
		constraint = -1
	}
	// Note: findWork/resumeReady may grow w.stack and invalidate f;
	// all frame state was written before this call.
	if s.resumeReady(w, constraint) {
		return false
	}
	if s.findWork(w, constraint) {
		w.state = wRunning
		return false
	}
	// Nothing runnable under the constraint: block like the real
	// runtime's park (woken when the last child finishes, or when an
	// admissible continuation becomes ready).
	s.parks++
	w.state = wBlocked
	s.waiterOf[id] = int32(w.id)
	return false
}

// resumeReady looks for a detached continuation that the worker may
// execute under its scheduling constraint (any for unconstrained
// workers; descendants only for a suspended tied task, per the TSC)
// and resumes it as the worker's new top frame.
func (s *sim) resumeReady(w *vworker, constraint int32) bool {
	for i, id := range s.readyCont {
		if constraint >= 0 && !s.isDescendant(id, constraint) {
			continue
		}
		s.readyCont = append(s.readyCont[:i], s.readyCont[i+1:]...)
		f := s.suspended[id]
		delete(s.suspended, id)
		f.remaining = s.p.SwitchNS
		f.memBound = false
		w.stack = append(w.stack, f)
		w.state = wRunning
		s.switches++
		return true
	}
	return false
}

// workerAfterDetach re-dispatches a worker that just shed its top
// frame: continue the frame below (itself suspended), pick up ready
// work, or go idle.
func (s *sim) workerAfterDetach(w *vworker) {
	if len(w.stack) > 0 {
		// The frame below is a suspended taskwait; the main loop's
		// segmentDone will re-evaluate it.
		w.state = wRunning
		return
	}
	w.state = wIdle
}

// isDescendant reports whether task id descends from anc in the trace.
func (s *sim) isDescendant(id, anc int32) bool {
	for p := s.tr.Tasks[id].Parent; p >= 0; p = s.tr.Tasks[p].Parent {
		if p == anc {
			return true
		}
	}
	return false
}

// enqueueReady makes a spawned or dependence-released task ready
// under the active discipline: the shared team queue for centralized,
// the acting worker's own deque (push bottom) otherwise.
func (s *sim) enqueueReady(w *vworker, id int32) {
	if s.disc == schedCentralized {
		s.central = append(s.central, id)
		return
	}
	w.dq = append(w.dq, id)
}

// findWork implements the runtime's runOne for virtual workers under
// the active queue discipline: take from the local area (own deque,
// or the shared queue for centralized), else steal. Returns true if a
// new frame was started.
func (s *sim) findWork(w *vworker, constraint int32) bool {
	if s.disc == schedCentralized {
		// One shared FIFO: the oldest admissible task. A constrained
		// waiter scans the queue, exactly like the runtime's
		// centralized scheduler; there is no stealing.
		for i, id := range s.central {
			if constraint >= 0 && !s.isDescendant(id, constraint) {
				continue
			}
			s.central = append(s.central[:i], s.central[i+1:]...)
			w.startTask(s, id, false)
			return true
		}
		return false
	}
	if n := len(w.dq); n > 0 {
		// A constrained (tied) waiter always pops LIFO — its children
		// are the most recent pushes — matching the runtime's rule.
		if s.disc == schedBreadthFirst && constraint < 0 {
			id := w.dq[0]
			w.dq = w.dq[1:]
			w.startTask(s, id, false)
			return true
		}
		id := w.dq[n-1]
		if constraint < 0 || s.isDescendant(id, constraint) {
			w.dq = w.dq[:n-1]
			w.startTask(s, id, false)
			return true
		}
		// Blocked bottom task under tied constraint: leave for thieves.
		return false
	}
	nw := len(s.workers)
	if nw == 1 {
		return false
	}
	if s.disc == schedLocality && w.lastVictim >= 0 && w.lastVictim != w.id {
		if s.stealFrom(w, s.workers[w.lastVictim], constraint) {
			return true
		}
	}
	start := int(w.nextRand() % uint64(nw))
	for i := 0; i < nw; i++ {
		v := s.workers[(start+i)%nw]
		if v == w {
			continue
		}
		if s.stealFrom(w, v, constraint) {
			if s.disc == schedLocality {
				w.lastVictim = v.id
			}
			return true
		}
	}
	if s.disc == schedLocality {
		w.lastVictim = -1
	}
	return false
}

// stealFrom takes the victim's oldest task if admissible; under the
// locality discipline an unconstrained steal also moves half the
// victim's remaining backlog onto the thief's deque (steal-half),
// each moved task counting as a steal, with the steal overhead
// charged only on the task started now (bulk moves amortize it).
func (s *sim) stealFrom(w, v *vworker, constraint int32) bool {
	if len(v.dq) == 0 {
		return false
	}
	id := v.dq[0]
	if constraint >= 0 && !s.isDescendant(id, constraint) {
		return false
	}
	v.dq = v.dq[1:]
	s.steals++
	if s.disc == schedLocality && constraint < 0 {
		if k := len(v.dq) / 2; k > 0 {
			w.dq = append(w.dq, v.dq[:k]...)
			v.dq = v.dq[k:]
			s.steals += int64(k)
		}
	}
	w.startTask(s, id, true)
	return true
}

// releaseDeps performs the dependence side of task completion: every
// successor whose last unfinished predecessor was id is enqueued on
// the completing worker's deque (as in the runtime), and a blocked
// waiter that may now run or steal it is woken — without the wake, a
// released task could sit in the deque of a worker that parks while
// every thread able to execute it is already blocked.
func (s *sim) releaseDeps(w *vworker, id int32) {
	for _, succ := range s.succs[id] {
		s.depsLeft[succ]--
		if s.depsLeft[succ] > 0 || !s.depWaiting[succ] {
			continue
		}
		s.depWaiting[succ] = false
		s.enqueueReady(w, succ)
		for _, bw := range s.workers {
			if bw.state != wBlocked {
				continue
			}
			waitID := bw.stack[len(bw.stack)-1].id
			if s.tr.Tasks[waitID].Untied || s.isDescendant(succ, waitID) {
				s.waiterOf[waitID] = -1
				bw.state = wRunning
				s.segmentDone(bw)
				break
			}
		}
	}
}

// tryAcquire lets an idle worker look for work: first a ready
// (detached) untied continuation, then any ready task; zero-length
// segments settle immediately.
func (s *sim) tryAcquire(w *vworker) bool {
	if s.resumeReady(w, -1) {
		s.segmentDone(w)
		return true
	}
	if !s.findWork(w, -1) {
		return false
	}
	s.segmentDone(w)
	return true
}

// completeTask pops w's top frame and performs completion
// bookkeeping: decrement the parent's pending count and wake a
// blocked waiter.
func (s *sim) completeTask(w *vworker, id int32) {
	w.stack = w.stack[:len(w.stack)-1]
	s.liveTasks--
	if s.p.OnComplete != nil {
		s.p.OnComplete(id, w.id, s.now)
	}
	s.releaseDeps(w, id)
	parent := s.tr.Tasks[id].Parent
	if parent < 0 {
		return
	}
	s.pending[parent]--
	if s.pending[parent] == 0 {
		if _, ok := s.suspended[parent]; ok {
			// A detached untied continuation becomes ready. Idle
			// workers pick it up in the next dispatch pass; a blocked
			// tied waiter for which it is an admissible descendant
			// must be woken explicitly, or a lone blocked worker
			// could starve with ready work in hand.
			s.readyCont = append(s.readyCont, parent)
			for _, bw := range s.workers {
				if bw.state != wBlocked {
					continue
				}
				waitID := bw.stack[len(bw.stack)-1].id
				if s.isDescendant(parent, waitID) {
					s.waiterOf[waitID] = -1
					bw.state = wRunning
					s.segmentDone(bw)
					break
				}
			}
			return
		}
		if wi := s.waiterOf[parent]; wi >= 0 {
			s.waiterOf[parent] = -1
			waiter := s.workers[wi]
			// The waiter was blocked with the waiting frame on top
			// (inWait still set); segmentDone resumes it.
			waiter.state = wRunning
			s.segmentDone(waiter)
		}
	}
}
