package sim

import (
	"bytes"
	"testing"

	"bots/internal/trace"
)

// depChainTrace builds a root that spawns n equal tasks forming a
// serial InOut chain (each depends on the previous).
func depChainTrace(n int, work int64) *trace.Trace {
	r := trace.NewRecorder()
	root := r.Root()
	var prev *trace.Node
	for i := 0; i < n; i++ {
		t := r.Spawn(root, false, false, 0)
		t.AddWork(work)
		if prev != nil {
			t.DependsOn(prev)
		}
		prev = t
	}
	tr := r.Finish()
	return tr
}

// TestDepChainSerializes: a dependence chain cannot speed up with
// more threads — the simulated makespan must be at least the chain's
// total work regardless of team size.
func TestDepChainSerializes(t *testing.T) {
	tr := depChainTrace(16, 100)
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	for _, threads := range []int{1, 4, 8} {
		res, err := Run(tr, threads, Params{WorkUnitNS: 1})
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if res.MakespanNS < 1600 {
			t.Errorf("threads=%d: makespan %.0f < serial chain 1600 — dependences not enforced",
				threads, res.MakespanNS)
		}
		if res.Speedup > 1.01 {
			t.Errorf("threads=%d: speedup %.2f on a serial chain", threads, res.Speedup)
		}
	}
}

// TestDepDiamondOrdering replays a diamond and asserts, via the
// timeline hooks, that no task starts before its predecessors
// complete.
func TestDepDiamondOrdering(t *testing.T) {
	r := trace.NewRecorder()
	root := r.Root()
	a := r.Spawn(root, false, false, 0)
	a.AddWork(50)
	b := r.Spawn(root, false, false, 0)
	b.AddWork(30)
	b.DependsOn(a)
	c := r.Spawn(root, false, false, 0)
	c.AddWork(40)
	c.DependsOn(a)
	d := r.Spawn(root, false, false, 0)
	d.AddWork(20)
	d.DependsOn(b)
	d.DependsOn(c)
	tr := r.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}

	start := map[int32]float64{}
	complete := map[int32]float64{}
	p := Params{
		WorkUnitNS: 1,
		OnStart:    func(id int32, _ int, at float64) { start[id] = at },
		OnComplete: func(id int32, _ int, at float64) { complete[id] = at },
	}
	res, err := Run(tr, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	for succ, preds := range map[int32][]int32{2: {1}, 3: {1}, 4: {2, 3}} {
		for _, pred := range preds {
			if start[succ] < complete[pred] {
				t.Errorf("task %d started at %.0f before predecessor %d completed at %.0f",
					succ, start[succ], pred, complete[pred])
			}
		}
	}
	// B and C are independent once A is done: with 4 threads they
	// must overlap, so the makespan beats the serial sum.
	if res.MakespanNS >= 140 {
		t.Errorf("makespan %.0f: readers did not overlap (serial = 140)", res.MakespanNS)
	}
}

// TestDepWideGraphScales replays a two-phase graph — one producer,
// many independent consumers — and checks consumers parallelize.
func TestDepWideGraphScales(t *testing.T) {
	r := trace.NewRecorder()
	root := r.Root()
	prod := r.Spawn(root, false, false, 0)
	prod.AddWork(100)
	const fan = 32
	for i := 0; i < fan; i++ {
		c := r.Spawn(root, false, false, 0)
		c.AddWork(100)
		c.DependsOn(prod)
	}
	tr := r.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	r1, err := Run(tr, 1, Params{WorkUnitNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(tr, 8, Params{WorkUnitNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r8.MakespanNS >= r1.MakespanNS {
		t.Errorf("8 threads (%.0f) not faster than 1 (%.0f)", r8.MakespanNS, r1.MakespanNS)
	}
	// Ideal: 100 (producer) + 32*100/8 = 500; allow scheduling slack.
	if r8.MakespanNS > 900 {
		t.Errorf("8-thread makespan %.0f, want near 500 — consumers not overlapping", r8.MakespanNS)
	}
}

// TestDepTraceRoundTripReplays is the end-to-end acceptance path at
// the sim level: serialize a dep trace, reload it, and replay the
// loaded copy.
func TestDepTraceRoundTripReplays(t *testing.T) {
	tr := depChainTrace(8, 10)
	res1, err := Run(tr, 2, Params{WorkUnitNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(tr2, 2, Params{WorkUnitNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res1.MakespanNS != res2.MakespanNS {
		t.Errorf("replay of reloaded trace differs: %.0f vs %.0f", res1.MakespanNS, res2.MakespanNS)
	}
}
