package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"bots/internal/trace"
)

// TimelineSpan is one task execution interval on a virtual worker.
type TimelineSpan struct {
	Task    int32
	Worker  int
	StartNS float64
	EndNS   float64
}

// Timeline is a recorded virtual schedule: the (start, end, worker)
// interval of every task of one simulated run.
type Timeline struct {
	Threads    int
	MakespanNS float64
	Spans      []TimelineSpan
}

// RunWithTimeline simulates like Run and additionally captures the
// full schedule. Note that span intervals cover a task's lifetime
// from first dispatch to completion; time spent suspended in
// taskwaits (possibly executing other tasks, which have their own
// spans) is included in the interval.
func RunWithTimeline(tr *trace.Trace, threads int, p Params) (Result, *Timeline, error) {
	tl := &Timeline{Threads: threads}
	open := map[int32]int{} // task → index in Spans
	prevStart, prevComplete := p.OnStart, p.OnComplete
	p.OnStart = func(id int32, worker int, at float64) {
		open[id] = len(tl.Spans)
		tl.Spans = append(tl.Spans, TimelineSpan{Task: id, Worker: worker, StartNS: at})
		if prevStart != nil {
			prevStart(id, worker, at)
		}
	}
	p.OnComplete = func(id int32, worker int, at float64) {
		if idx, ok := open[id]; ok {
			tl.Spans[idx].EndNS = at
			delete(open, id)
		}
		if prevComplete != nil {
			prevComplete(id, worker, at)
		}
	}
	res, err := Run(tr, threads, p)
	if err != nil {
		return res, nil, err
	}
	tl.MakespanNS = res.MakespanNS
	return res, tl, nil
}

// chromeEvent is one entry of the Chrome trace-event ("catapult")
// format, loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the timeline in the Chrome trace-event
// JSON format: one complete ("X") event per task span, with the
// virtual worker as the thread ID. Open the file in chrome://tracing
// or https://ui.perfetto.dev.
func (tl *Timeline) WriteChromeTrace(w io.Writer, tr *trace.Trace) error {
	events := make([]chromeEvent, 0, len(tl.Spans))
	for _, s := range tl.Spans {
		t := &tr.Tasks[s.Task]
		name := fmt.Sprintf("task %d (d%d)", s.Task, t.Depth)
		if t.Parent < 0 {
			name = fmt.Sprintf("implicit %d", s.Task)
		}
		events = append(events, chromeEvent{
			Name: name,
			Ph:   "X",
			Ts:   s.StartNS / 1e3,
			Dur:  (s.EndNS - s.StartNS) / 1e3,
			Pid:  0,
			Tid:  s.Worker,
			Args: map[string]any{
				"work":   t.Work,
				"untied": t.Untied,
				"inline": t.Inline,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// WriteGantt renders an ASCII Gantt chart of the schedule: one row
// per virtual worker, time left to right, '#' where the worker is
// executing its deepest active task and '.' where it idles or blocks.
func (tl *Timeline) WriteGantt(w io.Writer, width int) {
	if width <= 0 {
		width = 100
	}
	if tl.MakespanNS <= 0 {
		fmt.Fprintln(w, "(empty timeline)")
		return
	}
	rows := make([][]byte, tl.Threads)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	scale := float64(width) / tl.MakespanNS
	// Paint shallow (long) spans first so nested executions overwrite
	// their suspended ancestors.
	spans := append([]TimelineSpan(nil), tl.Spans...)
	sort.Slice(spans, func(i, j int) bool {
		return spans[i].EndNS-spans[i].StartNS > spans[j].EndNS-spans[j].StartNS
	})
	for _, s := range spans {
		if s.Worker < 0 || s.Worker >= tl.Threads {
			continue
		}
		lo := int(s.StartNS * scale)
		hi := int(s.EndNS * scale)
		if hi >= width {
			hi = width - 1
		}
		mark := byte('#')
		for x := lo; x <= hi; x++ {
			rows[s.Worker][x] = mark
		}
	}
	fmt.Fprintf(w, "virtual schedule (%d workers, makespan %.3fms)\n", tl.Threads, tl.MakespanNS/1e6)
	for i, r := range rows {
		fmt.Fprintf(w, "w%02d |%s|\n", i, r)
	}
}

// Utilization returns the fraction of worker-time spent executing
// tasks (busy time / (threads × makespan)), computed from the
// non-overlapping portions of the span set per worker.
func (tl *Timeline) Utilization() float64 {
	if tl.MakespanNS <= 0 || tl.Threads == 0 {
		return 0
	}
	// Merge spans per worker (they nest; union length is what counts).
	type iv struct{ lo, hi float64 }
	byWorker := make(map[int][]iv)
	for _, s := range tl.Spans {
		byWorker[s.Worker] = append(byWorker[s.Worker], iv{s.StartNS, s.EndNS})
	}
	var busy float64
	for _, ivs := range byWorker {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
		curLo, curHi := ivs[0].lo, ivs[0].hi
		for _, v := range ivs[1:] {
			if v.lo > curHi {
				busy += curHi - curLo
				curLo, curHi = v.lo, v.hi
				continue
			}
			if v.hi > curHi {
				curHi = v.hi
			}
		}
		busy += curHi - curLo
	}
	return busy / (float64(tl.Threads) * tl.MakespanNS)
}
