package sim

import (
	"strings"
	"testing"

	"bots/internal/trace"
)

// schedNames mirrors the omp scheduler registry — the disciplines a
// lab policy sweep replays under.
var schedNames = []string{"workfirst", "breadthfirst", "centralized", "locality"}

func TestUnknownSchedulerRejected(t *testing.T) {
	tr := flatTrace(4, 100, false)
	_, err := Run(tr, 2, Params{WorkUnitNS: 1, Scheduler: "chaotic"})
	if err == nil || !strings.Contains(err.Error(), "chaotic") {
		t.Fatalf("unknown scheduler should error, got %v", err)
	}
}

// TestRegisterDiscipline: a scheduler registered outside the four
// built-ins replays under its declared base discipline instead of
// erroring.
func TestRegisterDiscipline(t *testing.T) {
	if err := RegisterDiscipline("numa-test", "bogus"); err == nil {
		t.Fatal("bad base discipline should be rejected")
	}
	if err := RegisterDiscipline("numa-test", "locality"); err != nil {
		t.Fatal(err)
	}
	tr := flatTrace(16, 1000, false)
	res, err := Run(tr, 2, Params{WorkUnitNS: 1, Scheduler: "numa-test"})
	if err != nil {
		t.Fatalf("aliased scheduler should simulate: %v", err)
	}
	if res.Speedup <= 0 {
		t.Fatal("aliased replay produced no result")
	}
}

// TestAllDisciplinesReplayFib checks every queue discipline replays a
// real recorded task graph to completion with a sane makespan: no
// deadlock under the tied constraint, full drain, speedup within the
// thread count.
func TestAllDisciplinesReplayFib(t *testing.T) {
	tr := recordFib(t, 14, 4)
	for _, name := range schedNames {
		res, err := Run(tr, 4, Params{WorkUnitNS: 50, SpawnNS: 100, StealNS: 200, Scheduler: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Speedup <= 1 || res.Speedup > 4+1e-9 {
			t.Errorf("%s: speedup = %v, want in (1, 4]", name, res.Speedup)
		}
	}
}

// TestCentralizedHasNoSteals: a single shared queue has no per-worker
// queues, so the steal counter must stay zero while the work still
// spreads across the team.
func TestCentralizedHasNoSteals(t *testing.T) {
	tr := flatTrace(64, 10000, false)
	res, err := Run(tr, 1, Params{WorkUnitNS: 1, Scheduler: "centralized"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals != 0 {
		t.Fatalf("centralized replay counted %d steals, want 0", res.Steals)
	}
}

// TestCentralizedSpreadsWork: extra virtual threads draw from the
// shared queue even though nothing is ever "stolen".
func TestCentralizedSpreadsWork(t *testing.T) {
	rec := trace.NewRecorder()
	roots := make([]*trace.Node, 4)
	for i := range roots {
		roots[i] = rec.Root()
	}
	for i := 0; i < 64; i++ {
		rec.Spawn(roots[0], false, false, 0).AddWork(10000)
	}
	roots[0].Taskwait()
	tr := rec.Finish()
	res, err := Run(tr, 4, Params{WorkUnitNS: 1, Scheduler: "centralized"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 3.5 {
		t.Fatalf("centralized 4-thread speedup on 64 equal tasks = %v, want ≈ 4", res.Speedup)
	}
	if res.Steals != 0 {
		t.Fatalf("centralized replay counted %d steals", res.Steals)
	}
}

// TestLocalityStealsInBulk: with one generator and many short tasks,
// steal-half moves backlog in batches, so locality needs no more
// steal operations than workfirst's one-at-a-time discipline while
// counting at least one bulk move.
func TestLocalityStealHalf(t *testing.T) {
	rec := trace.NewRecorder()
	roots := make([]*trace.Node, 4)
	for i := range roots {
		roots[i] = rec.Root()
	}
	for i := 0; i < 128; i++ {
		rec.Spawn(roots[0], false, false, 0).AddWork(1000)
	}
	roots[0].Taskwait()
	tr := rec.Finish()
	loc, err := Run(tr, 4, Params{WorkUnitNS: 1, Scheduler: "locality"})
	if err != nil {
		t.Fatal(err)
	}
	if loc.Speedup < 3 {
		t.Fatalf("locality speedup = %v, want ≈ 4", loc.Speedup)
	}
	if loc.Steals == 0 {
		t.Fatal("locality replay should steal from the single generator")
	}
}

// TestDisciplinesDiverge: the disciplines are really distinct models
// — under a cost model that charges steals, a deep task graph must
// not produce identical schedules across all four.
func TestDisciplinesDiverge(t *testing.T) {
	tr := recordFib(t, 14, 4)
	p := Params{WorkUnitNS: 20, SpawnNS: 100, StealNS: 400, TaskwaitNS: 50}
	seen := map[float64][]string{}
	for _, name := range schedNames {
		p.Scheduler = name
		res, err := Run(tr, 4, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seen[res.MakespanNS] = append(seen[res.MakespanNS], name)
	}
	if len(seen) < 2 {
		t.Fatalf("all disciplines produced one makespan: %v", seen)
	}
}

// TestParameterizedSchedulerResolves: batch-parameterized registry
// forms (workfirst(8), locality(64), …) replay under their base
// name's discipline — the simulator models queue order and steal
// direction, not raid width — while malformed or unknown
// parameterized names still error.
func TestParameterizedSchedulerResolves(t *testing.T) {
	tr := flatTrace(16, 500, false)
	for _, name := range []string{"workfirst(8)", "breadthfirst(2)", "locality(64)"} {
		res, err := Run(tr, 2, Params{WorkUnitNS: 1, Scheduler: name})
		if err != nil {
			t.Fatalf("%s should simulate under its base discipline: %v", name, err)
		}
		if res.Speedup <= 0 {
			t.Fatalf("%s replay produced no result", name)
		}
	}
	if _, err := Run(tr, 2, Params{WorkUnitNS: 1, Scheduler: "chaotic(8)"}); err == nil {
		t.Fatal("unknown base with a parameter should still error")
	}
}
