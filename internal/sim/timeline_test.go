package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bots/internal/trace"
)

func timelineFixture(t *testing.T) (*trace.Trace, Result, *Timeline) {
	t.Helper()
	tr := recordFib(t, 12, 4)
	res, tl, err := RunWithTimeline(tr, 4, Params{WorkUnitNS: 50, SpawnNS: 20, StealNS: 40})
	if err != nil {
		t.Fatal(err)
	}
	return tr, res, tl
}

func TestTimelineCoversAllTasks(t *testing.T) {
	tr, res, tl := timelineFixture(t)
	if len(tl.Spans) != len(tr.Tasks) {
		t.Fatalf("timeline has %d spans, want %d (every task exactly once)",
			len(tl.Spans), len(tr.Tasks))
	}
	seen := map[int32]bool{}
	for _, s := range tl.Spans {
		if seen[s.Task] {
			t.Fatalf("task %d has two spans", s.Task)
		}
		seen[s.Task] = true
		if s.EndNS < s.StartNS {
			t.Fatalf("span of task %d ends before it starts", s.Task)
		}
		if s.EndNS > res.MakespanNS+1e-9 {
			t.Fatalf("span of task %d ends after the makespan", s.Task)
		}
		if s.Worker < 0 || s.Worker >= tl.Threads {
			t.Fatalf("span of task %d on bogus worker %d", s.Task, s.Worker)
		}
	}
}

func TestTimelineChildWithinSpawnOrder(t *testing.T) {
	tr, _, tl := timelineFixture(t)
	start := map[int32]float64{}
	for _, s := range tl.Spans {
		start[s.Task] = s.StartNS
	}
	// A child can never start before its parent.
	for i := tr.NumRoots; i < len(tr.Tasks); i++ {
		p := tr.Tasks[i].Parent
		if start[int32(i)] < start[p]-1e-9 {
			t.Fatalf("task %d starts before its parent %d", i, p)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr, _, tl := timelineFixture(t)
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(tl.Spans) {
		t.Fatalf("exported %d events, want %d", len(doc.TraceEvents), len(tl.Spans))
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Dur < 0 {
			t.Fatalf("bad event %+v", e)
		}
	}
}

func TestGanttRendering(t *testing.T) {
	_, _, tl := timelineFixture(t)
	var buf bytes.Buffer
	tl.WriteGantt(&buf, 80)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+tl.Threads {
		t.Fatalf("gantt has %d lines, want header + %d workers", len(lines), tl.Threads)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("gantt shows no execution at all")
	}
	// Worker 0 ran the single root: its row must start busy.
	if !strings.HasPrefix(lines[1], "w00 |#") {
		t.Fatalf("worker 0 row does not start busy: %q", lines[1])
	}
}

func TestUtilizationRange(t *testing.T) {
	_, _, tl := timelineFixture(t)
	u := tl.Utilization()
	if u <= 0 || u > 1.0+1e-9 {
		t.Fatalf("utilization = %v, want in (0, 1]", u)
	}
	// 4 threads on an abundant DAG should keep workers mostly busy.
	if u < 0.5 {
		t.Fatalf("utilization = %v, suspiciously low for fib on 4 threads", u)
	}
}

func TestGanttEmptyTimeline(t *testing.T) {
	tl := &Timeline{Threads: 2}
	var buf bytes.Buffer
	tl.WriteGantt(&buf, 40)
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("empty timeline should say so")
	}
}
