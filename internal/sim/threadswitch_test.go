package sim

import (
	"testing"

	"bots/internal/trace"
)

// switchFixture builds the DAG where thread switching provably pays.
// Timeline (3 workers, work units = ns):
//
//	w0: root0 works 60, queues untied P, then P runs on w0:
//	    head 1, spawn C1(500), spawn C2(5), taskwait, tail 900.
//	w1: root1 works 65, queues decoy D(1000), works 335 more.
//	w2: root2 works 63, goes idle, steals C1 (the only theft target).
//
// At P's taskwait (t=66, after self-helping C2) its only option is to
// steal the just-published D. Without migration, P's continuation is
// pinned under D until t≈1066 and its 900-unit tail ends ≈1966. With
// migration the continuation detaches, C1 finishes on w2 at ≈563, an
// idle worker resumes the tail there, and the makespan drops to ≈1463.
func switchFixture() *trace.Trace {
	rec := trace.NewRecorder()
	root0, root1, root2 := rec.Root(), rec.Root(), rec.Root()

	root0.AddWork(60)
	p := rec.Spawn(root0, true, false, 0)

	p.AddWork(1)
	c1 := rec.Spawn(p, false, false, 0)
	c1.AddWork(500)
	c2 := rec.Spawn(p, false, false, 0)
	c2.AddWork(5)
	p.Taskwait()
	p.AddWork(900)

	root1.AddWork(65)
	d := rec.Spawn(root1, false, false, 0)
	d.AddWork(1000)
	root1.AddWork(335)

	root2.AddWork(63)
	return rec.Finish()
}

func TestThreadSwitchImprovesMakespan(t *testing.T) {
	tr := switchFixture()
	noSwitch, err := Run(tr, 3, Params{WorkUnitNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	withSwitch, err := Run(tr, 3, Params{WorkUnitNS: 1, ThreadSwitch: true})
	if err != nil {
		t.Fatal(err)
	}
	if withSwitch.Switches == 0 {
		t.Fatal("expected at least one continuation migration")
	}
	if noSwitch.MakespanNS < 1900 {
		t.Fatalf("no-switch makespan %.0f; fixture did not pin the continuation as designed",
			noSwitch.MakespanNS)
	}
	if withSwitch.MakespanNS > noSwitch.MakespanNS-400 {
		t.Fatalf("thread switching should help substantially: %.0f vs %.0f",
			withSwitch.MakespanNS, noSwitch.MakespanNS)
	}
}

func TestThreadSwitchPreservesCorrectnessBounds(t *testing.T) {
	// The makespan bounds must hold with switching enabled too.
	for _, script := range [][]byte{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		{200, 100, 50, 25, 12, 6, 3, 1, 0, 255, 128, 64},
	} {
		tr := randomTrace(script, 3)
		res, err := Run(tr, 3, Params{WorkUnitNS: 1, ThreadSwitch: true})
		if err != nil {
			t.Fatal(err)
		}
		total := float64(tr.TotalWork())
		if res.MakespanNS < total/3-1e-6 || res.MakespanNS > total+1e-6 {
			t.Fatalf("makespan %v outside [%v, %v]", res.MakespanNS, total/3, total)
		}
		if res.MakespanNS < float64(tr.CriticalPath())-1e-6 {
			t.Fatalf("makespan %v below critical path %d", res.MakespanNS, tr.CriticalPath())
		}
	}
}

func TestThreadSwitchOnTiedTasksIsInert(t *testing.T) {
	// Tied tasks may not migrate: enabling ThreadSwitch on an
	// all-tied trace must change nothing.
	rec := trace.NewRecorder()
	root := rec.Root()
	for i := 0; i < 4; i++ {
		p := rec.Spawn(root, false, false, 0)
		p.AddWork(10)
		c := rec.Spawn(p, false, false, 0)
		c.AddWork(50)
		p.Taskwait()
		p.AddWork(10)
	}
	root.Taskwait()
	tr := rec.Finish()
	a, err := Run(tr, 1, Params{WorkUnitNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, 1, Params{WorkUnitNS: 1, ThreadSwitch: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.Switches != 0 {
		t.Fatalf("tied tasks migrated %d times", b.Switches)
	}
	if a.MakespanNS != b.MakespanNS {
		t.Fatalf("ThreadSwitch changed a tied-only schedule: %v vs %v", a.MakespanNS, b.MakespanNS)
	}
}

func TestCentralQueueSerialization(t *testing.T) {
	// Many tiny tasks through a serialized queue: the queue becomes
	// the bottleneck and the makespan approaches ops × serializeNS.
	rec := trace.NewRecorder()
	roots := []*trace.Node{rec.Root(), rec.Root(), rec.Root(), rec.Root()}
	const n = 200
	for i := 0; i < n; i++ {
		rec.Spawn(roots[0], false, false, 0).AddWork(1)
	}
	roots[0].Taskwait()
	tr := rec.Finish()
	deques, err := Run(tr, 4, Params{WorkUnitNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	central, err := Run(tr, 4, Params{WorkUnitNS: 1, QueueSerializeNS: 50})
	if err != nil {
		t.Fatal(err)
	}
	if central.MakespanNS <= deques.MakespanNS {
		t.Fatalf("central queue should be slower: %v vs %v", central.MakespanNS, deques.MakespanNS)
	}
	// 2n queue ops (enqueue + dequeue) at 50ns each bound from below.
	if central.MakespanNS < float64(2*n*50) {
		t.Fatalf("makespan %v below the queue serialization bound %v",
			central.MakespanNS, 2*n*50)
	}
}

func TestSwitchCostCharged(t *testing.T) {
	tr := switchFixture()
	free, err := Run(tr, 3, Params{WorkUnitNS: 1, ThreadSwitch: true})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := Run(tr, 3, Params{WorkUnitNS: 1, ThreadSwitch: true, SwitchNS: 500})
	if err != nil {
		t.Fatal(err)
	}
	if costly.Switches == 0 {
		t.Fatal("no switches in costly run")
	}
	if costly.MakespanNS < free.MakespanNS {
		t.Fatalf("switch cost should not speed things up: %v vs %v",
			costly.MakespanNS, free.MakespanNS)
	}
}
