package sim

import (
	"math"
	"testing"
	"testing/quick"

	"bots/internal/trace"
)

// randomTrace builds a structurally valid random task graph from a
// byte script: each byte picks a parent among existing tasks, a work
// amount, tiedness, inlining, and occasionally a taskwait.
func randomTrace(script []byte, roots int) *trace.Trace {
	rec := trace.NewRecorder()
	nodes := make([]*trace.Node, 0, len(script)+roots)
	for i := 0; i < roots; i++ {
		r := rec.Root()
		r.AddWork(int64(i%3) + 1)
		nodes = append(nodes, r)
	}
	for _, b := range script {
		parent := nodes[int(b)%len(nodes)]
		child := rec.Spawn(parent, b%2 == 0, b%7 == 0, int(b%64))
		child.AddWork(int64(b%23) + 1)
		nodes = append(nodes, child)
		if b%3 == 0 {
			parent.Taskwait()
		}
		if b%11 == 0 {
			parent.AddWork(int64(b % 5))
		}
	}
	return rec.Finish()
}

// TestMakespanBounds: for any DAG and any thread count, with zero
// overheads the simulated makespan must satisfy the fundamental
// scheduling bounds: makespan ≥ totalWork/T, makespan ≥ critical
// path, and makespan ≤ totalWork (no idle inflation beyond serial).
func TestMakespanBounds(t *testing.T) {
	f := func(script []byte, tRaw uint8) bool {
		if len(script) == 0 {
			return true
		}
		threads := int(tRaw%8) + 1
		tr := randomTrace(script, threads)
		if err := tr.Validate(); err != nil {
			t.Logf("invalid trace: %v", err)
			return false
		}
		res, err := Run(tr, threads, Params{WorkUnitNS: 1})
		if err != nil {
			t.Logf("sim error: %v", err)
			return false
		}
		total := float64(tr.TotalWork())
		cp := float64(tr.CriticalPath())
		const eps = 1e-6
		if res.MakespanNS < total/float64(threads)-eps {
			t.Logf("makespan %v below work bound %v", res.MakespanNS, total/float64(threads))
			return false
		}
		if res.MakespanNS < cp-eps {
			t.Logf("makespan %v below critical path %v", res.MakespanNS, cp)
			return false
		}
		if res.MakespanNS > total+eps {
			t.Logf("makespan %v exceeds serial work %v", res.MakespanNS, total)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestOneThreadMakespanIsExact: with one thread and zero overheads
// the makespan must equal total work exactly (the simulator neither
// loses nor invents time).
func TestOneThreadMakespanIsExact(t *testing.T) {
	f := func(script []byte) bool {
		if len(script) == 0 {
			return true
		}
		tr := randomTrace(script, 1)
		res, err := Run(tr, 1, Params{WorkUnitNS: 1})
		if err != nil {
			return false
		}
		return math.Abs(res.MakespanNS-float64(tr.TotalWork())) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// (No cross-thread-count monotonicity property is asserted: traces
// are recorded per team size, so the DAGs differ across thread
// counts, and even on a fixed DAG work stealing under the tied-task
// scheduling constraint is subject to classic schedule anomalies.)

// TestOverheadAccounting: with pure overheads and no work, the
// 1-thread makespan must be exactly the sum of charged costs.
func TestOverheadAccounting(t *testing.T) {
	rec := trace.NewRecorder()
	root := rec.Root()
	for i := 0; i < 5; i++ {
		rec.Spawn(root, false, false, 0) // 5 deferred spawns
	}
	for i := 0; i < 3; i++ {
		rec.Spawn(root, false, true, 0) // 3 inline spawns
	}
	root.Taskwait()
	tr := rec.Finish()
	p := Params{WorkUnitNS: 1, SpawnNS: 100, InlineNS: 10, TaskwaitNS: 1000}
	res, err := Run(tr, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 5*100.0 + 3*10.0 + 1000.0
	if math.Abs(res.MakespanNS-want) > 1e-9 {
		t.Fatalf("makespan = %v, want %v", res.MakespanNS, want)
	}
}

// TestBandwidthNeverSpeedsUp: enabling the bandwidth model can only
// increase the makespan.
func TestBandwidthNeverSpeedsUp(t *testing.T) {
	f := func(script []byte) bool {
		if len(script) == 0 {
			return true
		}
		tr := randomTrace(script, 4)
		free, err1 := Run(tr, 4, Params{WorkUnitNS: 1})
		capped, err2 := Run(tr, 4, Params{WorkUnitNS: 1, MemFraction: 0.8, BandwidthCap: 1.5})
		if err1 != nil || err2 != nil {
			return false
		}
		return capped.MakespanNS >= free.MakespanNS-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
