package sim

import (
	"math"
	"testing"

	"bots/internal/omp"
	"bots/internal/trace"
)

// flatTrace builds a trace with one root spawning n independent tasks
// of the given work, with a final taskwait.
func flatTrace(n int, work int64, untiedRoot bool) *trace.Trace {
	rec := trace.NewRecorder()
	root := rec.Root()
	children := make([]*trace.Node, n)
	for i := 0; i < n; i++ {
		children[i] = rec.Spawn(root, false, false, 0)
		children[i].AddWork(work)
	}
	root.Taskwait()
	_ = untiedRoot
	return rec.Finish()
}

// recordFib traces the canonical fib pattern on a real omp team of
// the given size.
func recordFib(t *testing.T, n, threads int) *trace.Trace {
	t.Helper()
	rec := trace.NewRecorder()
	var res int64
	omp.Parallel(threads, func(c *omp.Context) {
		c.Single(func(c *omp.Context) {
			c.Task(func(c *omp.Context) { fibBody(c, n, &res) })
		})
	}, omp.WithRecorder(rec))
	tr := rec.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatalf("recorded fib trace invalid: %v", err)
	}
	return tr
}

func fibBody(c *omp.Context, n int, res *int64) {
	c.AddWork(10)
	if n < 2 {
		*res = int64(n)
		return
	}
	var a, b int64
	c.Task(func(c *omp.Context) { fibBody(c, n-1, &a) })
	c.Task(func(c *omp.Context) { fibBody(c, n-2, &b) })
	c.Taskwait()
	*res = a + b
}

func TestRunThreadCountVsRoots(t *testing.T) {
	// A 4-root trace cannot run on fewer than 4 threads (each
	// implicit task needs a thread) ...
	rec := trace.NewRecorder()
	roots := []*trace.Node{rec.Root(), rec.Root(), rec.Root(), rec.Root()}
	for _, r := range roots {
		r.AddWork(100)
	}
	for i := 0; i < 8; i++ {
		rec.Spawn(roots[0], false, false, 0).AddWork(500)
	}
	roots[0].Taskwait()
	tr := rec.Finish()
	if _, err := Run(tr, 2, Params{WorkUnitNS: 1}); err == nil {
		t.Fatal("Run should reject thread counts below the root count")
	}
	// ... but extra threads join as thieves.
	res, err := Run(tr, 8, Params{WorkUnitNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 3 {
		t.Fatalf("8 threads on a 4-root trace with 8 stealable tasks: speedup %v, want > 3", res.Speedup)
	}
}

func TestSerialMakespanEqualsWorkPlusOverhead(t *testing.T) {
	const n, work = 10, 1000
	tr := flatTrace(n, work, false)
	p := Params{WorkUnitNS: 1, SpawnNS: 7, TaskwaitNS: 13}
	res, err := Run(tr, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n*work) + float64(n)*7 + 13
	if math.Abs(res.MakespanNS-want) > 1e-6 {
		t.Fatalf("serial makespan = %v, want %v", res.MakespanNS, want)
	}
	if res.SerialNS != float64(n*work) {
		t.Fatalf("SerialNS = %v, want %v", res.SerialNS, float64(n*work))
	}
	if res.Speedup >= 1 {
		t.Fatalf("speedup with overheads on 1 thread should be < 1, got %v", res.Speedup)
	}
}

func TestFlatTraceScalesWithSimThreads(t *testing.T) {
	// A trace recorded on a 4-thread team where only the root spawns:
	// rebuild with 4 roots, the other 3 empty.
	rec := trace.NewRecorder()
	roots := make([]*trace.Node, 4)
	for i := range roots {
		roots[i] = rec.Root()
	}
	const n, work = 64, 10000
	for i := 0; i < n; i++ {
		ch := rec.Spawn(roots[0], false, false, 0)
		ch.AddWork(work)
	}
	roots[0].Taskwait()
	tr := rec.Finish()
	res, err := Run(tr, 4, Params{WorkUnitNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 3.5 || res.Speedup > 4.01 {
		t.Fatalf("4-thread speedup on 64 independent equal tasks = %v, want ≈ 4", res.Speedup)
	}
	if res.Steals == 0 {
		t.Fatal("expected steals when one root generates all tasks")
	}
}

func TestZeroOverheadFibSpeedup(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 8} {
		tr := recordFib(t, 16, threads)
		res, err := Run(tr, threads, Params{WorkUnitNS: 100})
		if err != nil {
			t.Fatal(err)
		}
		if threads == 1 {
			if math.Abs(res.Speedup-1) > 1e-9 {
				t.Fatalf("1-thread zero-overhead speedup = %v, want exactly 1", res.Speedup)
			}
			continue
		}
		// fib(16) has abundant parallelism; zero-overhead scheduling
		// should get close to linear.
		if res.Speedup < 0.75*float64(threads) {
			t.Fatalf("threads=%d: speedup = %v, want >= %v", threads, res.Speedup, 0.75*float64(threads))
		}
		if res.Speedup > float64(threads)+1e-9 {
			t.Fatalf("threads=%d: speedup = %v exceeds thread count", threads, res.Speedup)
		}
	}
}

func TestOverheadsReduceSpeedup(t *testing.T) {
	tr := recordFib(t, 14, 4)
	free, err := Run(tr, 4, Params{WorkUnitNS: 10})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := Run(tr, 4, Params{WorkUnitNS: 10, SpawnNS: 500, StealNS: 500, TaskwaitNS: 100})
	if err != nil {
		t.Fatal(err)
	}
	if costly.Speedup >= free.Speedup {
		t.Fatalf("overheads should reduce speedup: free=%v costly=%v", free.Speedup, costly.Speedup)
	}
}

func TestBandwidthCapSaturatesSpeedup(t *testing.T) {
	// 32 equal independent tasks on 8 threads: compute-bound scales
	// to 8, memory-bound with cap 2 saturates near 2.
	rec := trace.NewRecorder()
	roots := make([]*trace.Node, 8)
	for i := range roots {
		roots[i] = rec.Root()
	}
	for i := 0; i < 32; i++ {
		rec.Spawn(roots[0], false, false, 0).AddWork(100000)
	}
	roots[0].Taskwait()
	tr := rec.Finish()

	unbounded, err := Run(tr, 8, Params{WorkUnitNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Run(tr, 8, Params{WorkUnitNS: 1, MemFraction: 1, BandwidthCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.Speedup < 7 {
		t.Fatalf("unbounded speedup = %v, want ≈ 8", unbounded.Speedup)
	}
	if bounded.Speedup > 2.6 {
		t.Fatalf("bandwidth-capped speedup = %v, want ≈ 2", bounded.Speedup)
	}
	partial, err := Run(tr, 8, Params{WorkUnitNS: 1, MemFraction: 0.5, BandwidthCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Speedup <= bounded.Speedup || partial.Speedup >= unbounded.Speedup {
		t.Fatalf("β=0.5 speedup %v should lie between %v and %v",
			partial.Speedup, bounded.Speedup, unbounded.Speedup)
	}
}

func TestSimulationIsDeterministic(t *testing.T) {
	tr := recordFib(t, 15, 4)
	p := Params{WorkUnitNS: 25, SpawnNS: 100, StealNS: 200, TaskwaitNS: 50}
	a, err := Run(tr, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("simulation not deterministic:\n%v\n%v", a, b)
	}
}

func TestInlineTasksSerializeIntoParent(t *testing.T) {
	// Root spawns 4 deferred tasks, each of which spawns 4 inline
	// children: on 4 threads the inline children must not add
	// parallelism beyond 4.
	rec := trace.NewRecorder()
	roots := []*trace.Node{rec.Root(), rec.Root(), rec.Root(), rec.Root()}
	for i := 0; i < 4; i++ {
		ch := rec.Spawn(roots[0], false, false, 0)
		for j := 0; j < 4; j++ {
			g := rec.Spawn(ch, false, true, 0) // inline
			g.AddWork(1000)
		}
		ch.Taskwait()
	}
	roots[0].Taskwait()
	tr := rec.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, 4, Params{WorkUnitNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Total work 16000, 4 chains of 4000 each → makespan 4000.
	if math.Abs(res.MakespanNS-4000) > 1 {
		t.Fatalf("makespan = %v, want 4000 (inline children serialized)", res.MakespanNS)
	}
}

func TestTiedConstraintLimitsInterleaving(t *testing.T) {
	// Construct a pathology: two deferred subtrees; in the tied case
	// a waiter stuck on a stolen child cannot help elsewhere. We just
	// assert untied never performs worse than tied on a recorded fib
	// DAG, and both produce valid makespans.
	rec := trace.NewRecorder()
	root := rec.Root()
	// Two chains: parent A with child a (work 10000); parent B with
	// child b (work 10000). A and B themselves have tiny work and
	// taskwait their children.
	for i := 0; i < 2; i++ {
		p := rec.Spawn(root, false, false, 0)
		p.AddWork(1)
		c := rec.Spawn(p, false, false, 0)
		c.AddWork(10000)
		p.Taskwait()
	}
	root.Taskwait()
	trTied := rec.Finish()
	res, err := Run(trTied, 1, Params{WorkUnitNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanNS < 20000 {
		t.Fatalf("1-thread makespan %v < total work 20002", res.MakespanNS)
	}
}

func TestUntiedVsTiedOnFib(t *testing.T) {
	mk := func(untied bool) *trace.Trace {
		rec := trace.NewRecorder()
		var res int64
		var opts []omp.TaskOpt
		if untied {
			opts = append(opts, omp.Untied())
		}
		var body func(c *omp.Context, n int, res *int64)
		body = func(c *omp.Context, n int, res *int64) {
			c.AddWork(10)
			if n < 2 {
				*res = int64(n)
				return
			}
			var a, b int64
			c.Task(func(c *omp.Context) { body(c, n-1, &a) }, opts...)
			c.Task(func(c *omp.Context) { body(c, n-2, &b) }, opts...)
			c.Taskwait()
			*res = a + b
		}
		omp.Parallel(4, func(c *omp.Context) {
			c.Single(func(c *omp.Context) {
				c.Task(func(c *omp.Context) { body(c, 14, &res) }, opts...)
			})
		}, omp.WithRecorder(rec))
		return rec.Finish()
	}
	p := Params{WorkUnitNS: 50, SpawnNS: 100, StealNS: 200}
	tied, err := Run(mk(false), 4, p)
	if err != nil {
		t.Fatal(err)
	}
	untied, err := Run(mk(true), 4, p)
	if err != nil {
		t.Fatal(err)
	}
	// The paper found tied and untied within a few percent of each
	// other on a runtime without thread switching; allow a generous
	// band but require both to scale.
	if tied.Speedup < 2 || untied.Speedup < 2 {
		t.Fatalf("both variants should scale: tied=%v untied=%v", tied.Speedup, untied.Speedup)
	}
	ratio := untied.Speedup / tied.Speedup
	if ratio < 0.7 || ratio > 1.5 {
		t.Fatalf("tied/untied divergence too large: tied=%v untied=%v", tied.Speedup, untied.Speedup)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Threads: 4, Speedup: 3.5, MakespanNS: 2e6}
	if r.String() == "" {
		t.Fatal("empty Result string")
	}
}

func TestDefaultOverheadsPopulated(t *testing.T) {
	p := DefaultOverheads()
	if p.SpawnNS <= 0 || p.StealNS <= 0 || p.InlineNS <= 0 || p.TaskwaitNS <= 0 {
		t.Fatal("DefaultOverheads should set all overhead fields")
	}
	if p.InlineNS >= p.SpawnNS {
		t.Fatal("inline overhead should be cheaper than deferred-spawn overhead")
	}
}
