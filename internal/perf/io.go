package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// NextBenchPath returns the path the next report should be written
// to: BENCH_<n>.json in dir, where n is one past the highest existing
// index (starting at 0). The trajectory is append-only — each PR that
// touches performance adds the next file instead of rewriting an old
// one.
func NextBenchPath(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("perf: creating %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("perf: scanning %s: %w", dir, err)
	}
	next := 0
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if i, err := strconv.Atoi(m[1]); err == nil && i+1 > next {
			next = i + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}

// LatestBenchPaths returns the n highest-indexed BENCH_<i>.json paths
// in dir, oldest first. It errors when fewer than n trajectory points
// exist — the caller asked to compare history that is not there.
func LatestBenchPaths(dir string, n int) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("perf: scanning %s: %w", dir, err)
	}
	var idx []int
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if i, err := strconv.Atoi(m[1]); err == nil {
			idx = append(idx, i)
		}
	}
	if len(idx) < n {
		return nil, fmt.Errorf("perf: %s holds %d BENCH_*.json file(s), need %d", dir, len(idx), n)
	}
	sort.Ints(idx)
	out := make([]string, 0, n)
	for _, i := range idx[len(idx)-n:] {
		out = append(out, filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", i)))
	}
	return out, nil
}

// WriteReport writes the report to path, then reads it back and
// validates it — the emitted artifact is checked to parse before the
// process reports success.
func WriteReport(r *Report, path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: encoding report: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("perf: writing %s: %w", path, err)
	}
	if _, err := ReadReport(path); err != nil {
		return fmt.Errorf("perf: self-check of %s failed: %w", path, err)
	}
	return nil
}

// ReadReport loads and validates a report file.
func ReadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("perf: decoding %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return &r, nil
}
