package perf

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"os"
)

// baselineJSON is the committed baseline: a full-mode suite run on
// the pre-optimization runtime (the "current main" the hot-path
// overhaul was measured against), so BENCH_0.json records the
// overhaul's improvement. Regenerate with
//
//	go run ./cmd/botsbench -write-baseline internal/perf/baseline.json
//
// whenever a deliberate performance change lands and the trajectory
// should re-anchor — the next performance PR should re-anchor to the
// post-overhaul values. Until then, the gate against this baseline is
// deliberately loose around the new ~0 allocs/task steady state; the
// hard floor protecting the overhaul itself is the absolute bounds in
// internal/omp/alloc_test.go (≤1 alloc/task), which tier-1 CI runs on
// every push.
//
//go:embed baseline.json
var baselineJSON []byte

// LoadBaseline returns the baseline report at path, or the embedded
// committed baseline when path is empty.
func LoadBaseline(path string) (*Report, error) {
	raw := baselineJSON
	if path != "" {
		var err error
		raw, err = os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("perf: reading baseline: %w", err)
		}
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("perf: decoding baseline: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("perf: baseline: %w", err)
	}
	return &r, nil
}
