package perf

import "testing"

// TestServiceGates enforces the service-mode bounds that the
// baseline comparison cannot (Compare skips gating when the baseline
// value is 0, and both of these must be ~0): steady-state allocations
// per persistent-team submission, and the shed rate at calibrated
// load. CI's service-smoke job asserts the same properties from the
// botserve JSON side.
func TestServiceGates(t *testing.T) {
	metrics, err := serviceMetrics(Options{Quick: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Metric{}
	for _, m := range metrics {
		byName[m.Name] = m
	}

	alloc, ok := byName["serve/submit-allocs"]
	if !ok {
		t.Fatal("serve/submit-allocs metric missing")
	}
	if alloc.Value > 0.5 {
		t.Errorf("serve/submit-allocs = %.2f allocs/request, want ~0 steady state", alloc.Value)
	}
	if !alloc.Gate {
		t.Errorf("serve/submit-allocs must be a gated metric")
	}

	shed, ok := byName["serve/shed-rate"]
	if !ok {
		t.Fatal("serve/shed-rate metric missing")
	}
	if shed.Value != 0 {
		t.Errorf("serve/shed-rate = %v at calibrated load, want exactly 0", shed.Value)
	}
	if shed.Extra["verify_failures"] != 0 {
		t.Errorf("service run had %v verification failures", shed.Extra["verify_failures"])
	}

	for _, name := range []string{"serve/health/total-p50", "serve/health/total-p99", "serve/health/total-p999"} {
		m, ok := byName[name]
		if !ok {
			t.Fatalf("%s metric missing", name)
		}
		if m.Gate {
			t.Errorf("%s is host-dependent timing and must stay informational", name)
		}
		if m.Value <= 0 {
			t.Errorf("%s = %v, want positive", name, m.Value)
		}
	}
}
