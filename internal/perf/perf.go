// Package perf is the continuous benchmark pipeline of the suite: a
// pinned micro+macro measurement suite over the internal/omp hot
// paths (task spawn rate, spawn-path allocations, per-scheduler steal
// throughput, end-to-end application times), a stable machine-readable
// report schema (`BENCH_<n>.json`), and a committed-baseline
// comparison that turns the suite into a regression gate.
//
// The BOTS paper is about overheads — which scheduler/cut-off
// configuration wins is decided by task creation, queuing, and
// stealing costs — so the reproduction needs a measurement loop that
// watches exactly those costs across PRs. `cmd/botsbench` drives this
// package, emits `BENCH_<n>.json` at the repo root (the perf
// trajectory), and fails CI when a gated metric regresses more than
// the configured threshold against the committed baseline
// (internal/perf/baseline.json).
//
// Two metric classes:
//
//   - gated metrics (Gate=true) are compared hard against the
//     committed baseline: allocation counts per task (host-independent
//     by construction, measured with testing.AllocsPerRun) and the
//     strong-scaling parallel-efficiency points (scaling.go), which
//     pin the measuring host's CPU count in their params so the gate
//     only ever fires between comparable hosts;
//   - informational metrics (spawn rates, elapsed times, steal
//     counters, scaling speedups) depend on the measuring host and are
//     reported with deltas but never fail the gate, since the
//     committed baseline was measured on a different machine than CI.
package perf

import (
	"fmt"
	"time"

	"bots/internal/lab"
)

// Schema identifies the report format. Bump only with a reader that
// still accepts every older version.
const Schema = "bots-bench/v1"

// Metric is one measured quantity of a benchmark run.
type Metric struct {
	// Name identifies the metric across runs ("fib/spawn-allocs");
	// comparisons match on it.
	Name string `json:"name"`
	// Value is the measurement in Unit.
	Value float64 `json:"value"`
	// Unit is the measurement unit ("allocs/task", "tasks/s", "ns").
	Unit string `json:"unit"`
	// Better is "lower" or "higher" — the direction of improvement.
	Better string `json:"better"`
	// Gate marks host-independent metrics that participate in the
	// regression gate.
	Gate bool `json:"gate,omitempty"`
	// Params pins the workload parameters the value was measured
	// under ("fib=25/threads=4"). Metrics are only compared when both
	// Name and Params match, so a quick-mode run never compares its
	// timings against a full-mode baseline.
	Params string `json:"params,omitempty"`
	// Extra carries secondary counters (steal attempts/fails, idle
	// parks, task counts) alongside the headline value.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// key is the comparison identity of a metric.
func (m Metric) key() string { return m.Name + "|" + m.Params }

// Report is one full benchmark-suite run — the object serialized as
// BENCH_<n>.json and as the committed baseline.
type Report struct {
	Schema    string       `json:"schema"`
	CreatedAt time.Time    `json:"created_at"`
	Host      lab.HostInfo `json:"host"`
	// Quick marks reduced-size runs (CI smoke).
	Quick   bool     `json:"quick,omitempty"`
	Metrics []Metric `json:"metrics"`
	// Comparison is the delta against the baseline the run was
	// compared to, when one was.
	Comparison *Comparison `json:"comparison,omitempty"`
}

// Metric returns the named metric, if present (first match wins; the
// suite never emits duplicate keys).
func (r *Report) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Validate checks the structural invariants every reader relies on.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("perf: unknown schema %q (want %q)", r.Schema, Schema)
	}
	if len(r.Metrics) == 0 {
		return fmt.Errorf("perf: report has no metrics")
	}
	seen := map[string]bool{}
	for _, m := range r.Metrics {
		if m.Name == "" {
			return fmt.Errorf("perf: metric with empty name")
		}
		if m.Better != "lower" && m.Better != "higher" {
			return fmt.Errorf("perf: metric %s: better must be lower/higher, got %q", m.Name, m.Better)
		}
		if seen[m.key()] {
			return fmt.Errorf("perf: duplicate metric %s (params %q)", m.Name, m.Params)
		}
		seen[m.key()] = true
	}
	return nil
}

// Delta is one metric compared across two reports. Pct is the change
// in the metric's value relative to the baseline (negative = value
// went down); Improved orients it by the metric's Better direction.
type Delta struct {
	Name     string  `json:"name"`
	Params   string  `json:"params,omitempty"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Pct      float64 `json:"pct"`
	Improved bool    `json:"improved"`
	// Regression is set when a gated metric moved in the wrong
	// direction past the comparison threshold.
	Regression bool `json:"regression,omitempty"`
}

// Comparison is a full run-vs-baseline diff.
type Comparison struct {
	// BaselineCreatedAt and BaselineHost locate the baseline run.
	BaselineCreatedAt time.Time    `json:"baseline_created_at"`
	BaselineHost      lab.HostInfo `json:"baseline_host"`
	// MaxRegression is the gate threshold the comparison used
	// (fraction, e.g. 0.25).
	MaxRegression float64 `json:"max_regression"`
	Deltas        []Delta `json:"deltas"`
	// Regressions counts gated metrics past the threshold; CI fails
	// when it is non-zero.
	Regressions int `json:"regressions"`
}

// Compare diffs cur against base: metrics match when Name and Params
// both match, and gated metrics moving in the wrong direction by more
// than maxRegression are flagged. The returned comparison is also
// attached to cur.
func Compare(cur, base *Report, maxRegression float64) *Comparison {
	cmp := &Comparison{
		BaselineCreatedAt: base.CreatedAt,
		BaselineHost:      base.Host,
		MaxRegression:     maxRegression,
	}
	baseBy := map[string]Metric{}
	for _, m := range base.Metrics {
		baseBy[m.key()] = m
	}
	for _, m := range cur.Metrics {
		b, ok := baseBy[m.key()]
		if !ok {
			continue
		}
		d := Delta{
			Name:     m.Name,
			Params:   m.Params,
			Baseline: b.Value,
			Current:  m.Value,
		}
		if b.Value != 0 {
			d.Pct = (m.Value - b.Value) / b.Value * 100
		}
		if m.Better == "lower" {
			d.Improved = m.Value < b.Value
		} else {
			d.Improved = m.Value > b.Value
		}
		if m.Gate && b.Value != 0 {
			worse := 0.0
			if m.Better == "lower" {
				worse = (m.Value - b.Value) / b.Value
			} else {
				worse = (b.Value - m.Value) / b.Value
			}
			if worse > maxRegression {
				d.Regression = true
				cmp.Regressions++
			}
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	cur.Comparison = cmp
	return cmp
}
