package perf

import "testing"

// TestObsGates enforces the observability-layer bound the baseline
// comparison cannot (Compare skips gating when the baseline value is
// 0, and this one must be exactly 0): the record path — counter
// increments and histogram records — allocates nothing, so teams can
// stay instrumented without disturbing the allocation gates on the
// paths they observe.
func TestObsGates(t *testing.T) {
	metrics := obsMetrics(Options{Quick: true, Threads: 2}.defaults())
	byName := map[string]Metric{}
	for _, m := range metrics {
		byName[m.Name] = m
	}

	alloc, ok := byName["obs/record-allocs"]
	if !ok {
		t.Fatal("obs/record-allocs metric missing")
	}
	if alloc.Value != 0 {
		t.Errorf("obs/record-allocs = %v allocs/op, want exactly 0", alloc.Value)
	}
	if !alloc.Gate {
		t.Error("obs/record-allocs must be a gated metric")
	}

	over, ok := byName["obs/fib-overhead"]
	if !ok {
		t.Fatal("obs/fib-overhead metric missing")
	}
	if over.Gate {
		t.Error("obs/fib-overhead is host-dependent timing and must stay informational")
	}
	if over.Value <= 0 {
		t.Errorf("obs/fib-overhead = %v, want a positive ratio", over.Value)
	}
	if over.Extra["bare_ns"] <= 0 || over.Extra["instr_ns"] <= 0 {
		t.Errorf("obs/fib-overhead lacks the raw timings: %+v", over.Extra)
	}
}
