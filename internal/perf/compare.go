package perf

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// FormatComparison renders a benchstat-style delta table between two
// reports: every metric of b (the "new" side) against its match in a
// (the "old" side), matched by Name+Params, followed by metrics only
// one side has. It is the human- and CI-facing view behind
// `botsbench -compare a.json b.json`, used to annotate the
// BENCH_<n>.json trajectory: unlike the baseline gate, it diffs any
// two committed reports, so a PR can show exactly what moved between
// trajectory points.
func FormatComparison(a, b *Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "old: %s (%s, %d cpus)\n", a.CreatedAt.Format("2006-01-02 15:04"), a.Host.OS, a.Host.CPUs)
	fmt.Fprintf(&sb, "new: %s (%s, %d cpus)\n\n", b.CreatedAt.Format("2006-01-02 15:04"), b.Host.OS, b.Host.CPUs)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "METRIC\tPARAMS\tOLD\tNEW\tDELTA\t")
	oldBy := map[string]Metric{}
	for _, m := range a.Metrics {
		oldBy[m.key()] = m
	}
	seen := map[string]bool{}
	for _, m := range b.Metrics {
		o, ok := oldBy[m.key()]
		if !ok {
			fmt.Fprintf(tw, "%s\t%s\t-\t%.4g %s\t(added)\t\n", m.Name, m.Params, m.Value, m.Unit)
			continue
		}
		seen[m.key()] = true
		note := "~"
		if m.Value != o.Value {
			improved := m.Value > o.Value
			if m.Better == "lower" {
				improved = m.Value < o.Value
			}
			if improved {
				note = "improved"
			} else {
				note = "worse"
			}
		}
		if m.Gate {
			note += " (gated)"
		}
		delta := "n/a" // a zero old value has no meaningful percentage
		if o.Value != 0 {
			delta = fmt.Sprintf("%+.1f%%", (m.Value-o.Value)/o.Value*100)
		} else if m.Value == o.Value {
			delta = "+0.0%"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.4g\t%.4g\t%s\t%s\n", m.Name, m.Params, o.Value, m.Value, delta, note)
	}
	for _, m := range a.Metrics {
		// seen covers every key present on both sides, so an unseen old
		// metric has no new-side counterpart.
		if !seen[m.key()] {
			fmt.Fprintf(tw, "%s\t%s\t%.4g %s\t-\t(removed)\t\n", m.Name, m.Params, m.Value, m.Unit)
		}
	}
	tw.Flush()
	return sb.String()
}
