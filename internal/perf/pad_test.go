package perf

import "testing"

// TestPaddingMetrics exercises the false-sharing microbench at a tiny
// iteration count (it runs under -race in CI, where atomics are ~20×
// slower) and checks the shape of its output, not the host-dependent
// values: three informational metrics, positive costs, and a
// well-formed ratio.
func TestPaddingMetrics(t *testing.T) {
	sharedNs, paddedNs := falseSharingCost(1<<12, 2)
	if sharedNs <= 0 || paddedNs <= 0 {
		t.Fatalf("non-positive cost: shared=%v padded=%v", sharedNs, paddedNs)
	}

	ms := paddingMetrics(Options{Quick: true, Reps: 1}.defaults())
	if len(ms) != 3 {
		t.Fatalf("paddingMetrics returned %d metrics, want 3", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Name] = true
		if m.Gate {
			t.Errorf("%s: padding metrics must be informational, found Gate=true", m.Name)
		}
		if m.Value < 0 {
			t.Errorf("%s: negative value %v", m.Name, m.Value)
		}
	}
	for _, want := range []string{"padding/shared-line", "padding/split-lines", "padding/invalidation-ratio"} {
		if !names[want] {
			t.Errorf("missing metric %q", want)
		}
	}
}

// TestHammerPairCounts verifies the microbench actually performs the
// increments it claims to time.
func TestHammerPairCounts(t *testing.T) {
	pp := new(paddedPair)
	const n = 1 << 10
	hammerPair(&pp.a, &pp.b, n)
	if got := pp.a.Load(); got != n {
		t.Errorf("counter a = %d, want %d", got, n)
	}
	if got := pp.b.Load(); got != n {
		t.Errorf("counter b = %d, want %d", got, n)
	}
}
