package perf

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"bots/internal/lab"
)

func sampleReport() *Report {
	return &Report{
		Schema:    Schema,
		CreatedAt: time.Date(2026, 7, 28, 0, 0, 0, 0, time.UTC),
		Host:      lab.CurrentHost(),
		Metrics: []Metric{
			{Name: "a/allocs", Value: 4, Unit: "allocs/task", Better: "lower", Gate: true},
			{Name: "a/rate", Value: 100, Unit: "tasks/s", Better: "higher", Params: "n=5"},
			{Name: "a/elapsed", Value: 1000, Unit: "ns", Better: "lower", Params: "class=test"},
		},
	}
}

func TestReportValidate(t *testing.T) {
	r := sampleReport()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sampleReport()
	bad.Schema = "bogus"
	if bad.Validate() == nil {
		t.Error("unknown schema should fail validation")
	}
	dup := sampleReport()
	dup.Metrics = append(dup.Metrics, dup.Metrics[0])
	if dup.Validate() == nil {
		t.Error("duplicate metric key should fail validation")
	}
	wrongDir := sampleReport()
	wrongDir.Metrics[0].Better = "sideways"
	if wrongDir.Validate() == nil {
		t.Error("invalid better direction should fail validation")
	}
}

func TestCompareGatesOnlyGatedMetrics(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Metrics[0].Value = 6    // gated, lower-is-better: +50% — regression
	cur.Metrics[1].Value = 10   // informational, -90% — reported, not gated
	cur.Metrics[2].Value = 5000 // informational, +400% — reported, not gated

	cmp := Compare(cur, base, 0.25)
	if cmp.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (only the gated metric)", cmp.Regressions)
	}
	if len(cmp.Deltas) != 3 {
		t.Fatalf("deltas = %d, want 3", len(cmp.Deltas))
	}
	if !cmp.Deltas[0].Regression || cmp.Deltas[1].Regression || cmp.Deltas[2].Regression {
		t.Fatalf("regression flags wrong: %+v", cmp.Deltas)
	}
	if cur.Comparison != cmp {
		t.Fatal("comparison not attached to the current report")
	}

	// Within threshold: no regression.
	cur2 := sampleReport()
	cur2.Metrics[0].Value = 4.8 // +20% < 25%
	if got := Compare(cur2, base, 0.25); got.Regressions != 0 {
		t.Fatalf("within-threshold change flagged: %+v", got)
	}

	// Improvement on a gated lower-is-better metric: never a regression.
	cur3 := sampleReport()
	cur3.Metrics[0].Value = 0.1
	cmp3 := Compare(cur3, base, 0.25)
	if cmp3.Regressions != 0 || !cmp3.Deltas[0].Improved {
		t.Fatalf("improvement misclassified: %+v", cmp3.Deltas[0])
	}
}

func TestCompareSkipsMismatchedParams(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Metrics[2].Params = "class=small" // full-mode run vs quick baseline
	cmp := Compare(cur, base, 0.25)
	for _, d := range cmp.Deltas {
		if d.Name == "a/elapsed" {
			t.Fatalf("metric with mismatched params should not be compared: %+v", d)
		}
	}
	if len(cmp.Deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(cmp.Deltas))
	}
}

func TestWriteReadReportAndNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	p, err := NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_0.json" {
		t.Fatalf("first path = %s, want BENCH_0.json", p)
	}
	if err := WriteReport(sampleReport(), p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Metrics) != 3 || got.Metrics[0].Name != "a/allocs" {
		t.Fatalf("round-trip lost metrics: %+v", got.Metrics)
	}
	// Trajectory is append-only: next index follows the highest.
	if err := os.Rename(p, filepath.Join(dir, "BENCH_7.json")); err != nil {
		t.Fatal(err)
	}
	p2, err := NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p2) != "BENCH_8.json" {
		t.Fatalf("next path = %s, want BENCH_8.json", p2)
	}
}

// TestEmbeddedBaseline pins the committed baseline: it must parse,
// validate, and contain both gated metric families the CI gate is
// stated in terms of — the post-overhaul spawn-path allocation counts
// (the trajectory's PR-4 improvement is re-anchored into the
// baseline; the absolute floor protecting it is alloc_test.go) and
// the strong-scaling efficiency metrics (≥ 5 benchmarks × ≥ 3 worker
// counts; the scalability overhaul's regression net).
func TestEmbeddedBaseline(t *testing.T) {
	base, err := LoadBaseline("")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := base.Metric("fib/spawn-allocs")
	if !ok {
		t.Fatal("embedded baseline lacks fib/spawn-allocs")
	}
	if !m.Gate || m.Better != "lower" {
		t.Fatalf("fib/spawn-allocs misconfigured in baseline: %+v", m)
	}
	if m.Value > 1.0 {
		t.Fatalf("baseline fib/spawn-allocs = %v; expected the post-overhaul ~0 allocs/task steady state (re-anchor deliberately, not accidentally)", m.Value)
	}
	benches := map[string]map[string]bool{} // bench -> worker-count params
	for _, m := range base.Metrics {
		var bench string
		if n, ok := strings.CutPrefix(m.Name, "scaling/"); ok {
			bench, ok = strings.CutSuffix(n, "/efficiency")
			if !ok {
				continue
			}
		} else {
			continue
		}
		if !m.Gate || m.Better != "higher" {
			t.Fatalf("scaling efficiency metric misconfigured: %+v", m)
		}
		if !strings.Contains(m.Params, "/cpus=") || !strings.Contains(m.Params, "threads=") {
			t.Fatalf("scaling params must pin threads and host cpus, got %q", m.Params)
		}
		if benches[bench] == nil {
			benches[bench] = map[string]bool{}
		}
		benches[bench][m.Params] = true
	}
	if len(benches) < 5 {
		t.Fatalf("baseline covers %d scaling benchmarks, want >= 5 (have %v)", len(benches), benches)
	}
	for b, pts := range benches {
		if len(pts) < 3 {
			t.Fatalf("scaling/%s has %d worker-count points, want >= 3", b, len(pts))
		}
	}
}

func TestLabRecords(t *testing.T) {
	rep := sampleReport()
	rep.Metrics[1].Extra = map[string]float64{"steal_attempts": 7, "steal_fails": 3}
	recs := LabRecords(rep)
	if len(recs) != len(rep.Metrics) {
		t.Fatalf("records = %d, want %d", len(recs), len(rep.Metrics))
	}
	keys := map[string]bool{}
	for i, r := range recs {
		if r.Spec.Bench != "perf" || r.Spec.Version != rep.Metrics[i].Name {
			t.Fatalf("record spec mismapped: %+v", r.Spec)
		}
		if r.Key == "" || keys[r.Key] {
			t.Fatalf("record keys must be unique and stable, got %q", r.Key)
		}
		keys[r.Key] = true
		if r.Metric != rep.Metrics[i].Value {
			t.Fatalf("metric value lost: %v != %v", r.Metric, rep.Metrics[i].Value)
		}
	}
	if recs[1].Stats == nil || recs[1].Stats.StealAttempts != 7 {
		t.Fatalf("extra counters not carried into stats: %+v", recs[1].Stats)
	}

	// Same-metric re-runs supersede in a store (last wins by key).
	store, err := lab.OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	if err := AppendToStore(store, rep); err != nil {
		t.Fatal(err)
	}
	rep.Metrics[0].Value = 9
	if err := AppendToStore(store, rep); err != nil {
		t.Fatal(err)
	}
	if store.Len() != len(rep.Metrics) {
		t.Fatalf("store has %d keys, want %d (re-runs must supersede)", store.Len(), len(rep.Metrics))
	}
}

// TestQuickSuiteSmoke runs the real measurement suite at its smallest
// size: the emitted report must validate and carry every pinned
// metric family.
func TestQuickSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks")
	}
	rep, err := Run(Options{Quick: true, Threads: 2, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fib/spawn-allocs", "fib/spawn-allocs-undeferred", "future/spawn-allocs",
		"fib/spawn-rate", "nqueens/spawn-rate",
		"steal/workfirst/throughput", "steal/centralized/throughput",
		"sort/elapsed", "strassen/elapsed",
		"scaling/fib/speedup", "scaling/fib/efficiency",
		"scaling/nqueens/efficiency", "scaling/sort/efficiency",
		"scaling/strassen/efficiency", "scaling/sparselu/efficiency",
		"serve/submit-allocs", "serve/shed-rate",
		"obs/record-allocs", "obs/fib-overhead",
	} {
		if _, ok := rep.Metric(want); !ok {
			t.Errorf("suite report lacks %s", want)
		}
	}
	// The recycling overhaul's headline must hold in absolute terms
	// (the committed baseline now carries the post-overhaul values, so
	// a relative check would not catch a full regression to the ~4
	// allocs/task pre-recycling runtime).
	cur, _ := rep.Metric("fib/spawn-allocs")
	if cur.Value > 1.0 {
		t.Errorf("fib/spawn-allocs = %v, want <= 1.0 (steady state is ~0)", cur.Value)
	}
}

// TestScalingMetrics pins the strong-scaling suite's shape: every
// benchmark reports a speedup/efficiency pair per worker count, the
// single-worker point is exactly 1.0 by construction, params carry
// the host CPU count, and the contention counters ride in Extra.
func TestScalingMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks")
	}
	ms, err := scalingMetrics(Options{Quick: true, Reps: 1}.defaults())
	if err != nil {
		t.Fatal(err)
	}
	counts := scalingWorkerCounts()
	if len(counts) < 3 || counts[0] != 1 || counts[1] != 2 || counts[2] != 4 {
		t.Fatalf("worker counts = %v, want at least [1 2 4]", counts)
	}
	if want := 5 * len(counts) * 2; len(ms) != want {
		t.Fatalf("scaling metrics = %d, want %d (5 benches x %d counts x speedup+efficiency)", len(ms), want, len(counts))
	}
	cpus := fmt.Sprintf("cpus=%d", runtime.NumCPU())
	for i := 0; i < len(ms); i += 2 {
		sp, eff := ms[i], ms[i+1]
		if !strings.HasSuffix(sp.Name, "/speedup") || !strings.HasSuffix(eff.Name, "/efficiency") {
			t.Fatalf("metric pair out of shape: %s / %s", sp.Name, eff.Name)
		}
		if sp.Gate || !eff.Gate {
			t.Fatalf("gating wrong: speedup gated=%v efficiency gated=%v", sp.Gate, eff.Gate)
		}
		if sp.Params != eff.Params || !strings.Contains(sp.Params, cpus) {
			t.Fatalf("params must match and pin the host cpu count: %q vs %q", sp.Params, eff.Params)
		}
		if strings.Contains(sp.Params, "threads=1/") && sp.Value != 1.0 {
			t.Fatalf("single-worker speedup = %v, want exactly 1.0: %q", sp.Value, sp.Params)
		}
		if sp.Extra["elapsed_ns"] <= 0 {
			t.Fatalf("scaling point lacks elapsed_ns: %+v", sp)
		}
		if _, ok := sp.Extra["idle_parks"]; !ok {
			t.Fatalf("scaling point lacks contention counters: %+v", sp.Extra)
		}
	}
}

// TestFormatComparison checks the -compare rendering: matched
// metrics show deltas, one-sided metrics are marked added/removed.
func TestFormatComparison(t *testing.T) {
	a, b := sampleReport(), sampleReport()
	b.Metrics[0].Value = 2 // improved (lower-better, gated)
	b.Metrics = append(b.Metrics[:2:2], Metric{
		Name: "a/new", Value: 1, Unit: "x", Better: "higher",
	})
	out := FormatComparison(a, b)
	for _, want := range []string{"a/allocs", "-50.0%", "improved (gated)", "(added)", "a/elapsed", "(removed)"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison table lacks %q:\n%s", want, out)
		}
	}
}
