package perf

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"bots/internal/lab"
)

func sampleReport() *Report {
	return &Report{
		Schema:    Schema,
		CreatedAt: time.Date(2026, 7, 28, 0, 0, 0, 0, time.UTC),
		Host:      lab.CurrentHost(),
		Metrics: []Metric{
			{Name: "a/allocs", Value: 4, Unit: "allocs/task", Better: "lower", Gate: true},
			{Name: "a/rate", Value: 100, Unit: "tasks/s", Better: "higher", Params: "n=5"},
			{Name: "a/elapsed", Value: 1000, Unit: "ns", Better: "lower", Params: "class=test"},
		},
	}
}

func TestReportValidate(t *testing.T) {
	r := sampleReport()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sampleReport()
	bad.Schema = "bogus"
	if bad.Validate() == nil {
		t.Error("unknown schema should fail validation")
	}
	dup := sampleReport()
	dup.Metrics = append(dup.Metrics, dup.Metrics[0])
	if dup.Validate() == nil {
		t.Error("duplicate metric key should fail validation")
	}
	wrongDir := sampleReport()
	wrongDir.Metrics[0].Better = "sideways"
	if wrongDir.Validate() == nil {
		t.Error("invalid better direction should fail validation")
	}
}

func TestCompareGatesOnlyGatedMetrics(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Metrics[0].Value = 6    // gated, lower-is-better: +50% — regression
	cur.Metrics[1].Value = 10   // informational, -90% — reported, not gated
	cur.Metrics[2].Value = 5000 // informational, +400% — reported, not gated

	cmp := Compare(cur, base, 0.25)
	if cmp.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (only the gated metric)", cmp.Regressions)
	}
	if len(cmp.Deltas) != 3 {
		t.Fatalf("deltas = %d, want 3", len(cmp.Deltas))
	}
	if !cmp.Deltas[0].Regression || cmp.Deltas[1].Regression || cmp.Deltas[2].Regression {
		t.Fatalf("regression flags wrong: %+v", cmp.Deltas)
	}
	if cur.Comparison != cmp {
		t.Fatal("comparison not attached to the current report")
	}

	// Within threshold: no regression.
	cur2 := sampleReport()
	cur2.Metrics[0].Value = 4.8 // +20% < 25%
	if got := Compare(cur2, base, 0.25); got.Regressions != 0 {
		t.Fatalf("within-threshold change flagged: %+v", got)
	}

	// Improvement on a gated lower-is-better metric: never a regression.
	cur3 := sampleReport()
	cur3.Metrics[0].Value = 0.1
	cmp3 := Compare(cur3, base, 0.25)
	if cmp3.Regressions != 0 || !cmp3.Deltas[0].Improved {
		t.Fatalf("improvement misclassified: %+v", cmp3.Deltas[0])
	}
}

func TestCompareSkipsMismatchedParams(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Metrics[2].Params = "class=small" // full-mode run vs quick baseline
	cmp := Compare(cur, base, 0.25)
	for _, d := range cmp.Deltas {
		if d.Name == "a/elapsed" {
			t.Fatalf("metric with mismatched params should not be compared: %+v", d)
		}
	}
	if len(cmp.Deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(cmp.Deltas))
	}
}

func TestWriteReadReportAndNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	p, err := NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_0.json" {
		t.Fatalf("first path = %s, want BENCH_0.json", p)
	}
	if err := WriteReport(sampleReport(), p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Metrics) != 3 || got.Metrics[0].Name != "a/allocs" {
		t.Fatalf("round-trip lost metrics: %+v", got.Metrics)
	}
	// Trajectory is append-only: next index follows the highest.
	if err := os.Rename(p, filepath.Join(dir, "BENCH_7.json")); err != nil {
		t.Fatal(err)
	}
	p2, err := NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p2) != "BENCH_8.json" {
		t.Fatalf("next path = %s, want BENCH_8.json", p2)
	}
}

// TestEmbeddedBaseline pins the committed baseline: it must parse,
// validate, and contain the gated spawn-path allocation metrics the
// CI gate is stated in terms of — with the pre-overhaul values, so
// the trajectory records the improvement.
func TestEmbeddedBaseline(t *testing.T) {
	base, err := LoadBaseline("")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := base.Metric("fib/spawn-allocs")
	if !ok {
		t.Fatal("embedded baseline lacks fib/spawn-allocs")
	}
	if !m.Gate || m.Better != "lower" {
		t.Fatalf("fib/spawn-allocs misconfigured in baseline: %+v", m)
	}
	if m.Value < 3.5 {
		t.Fatalf("baseline fib/spawn-allocs = %v; expected the pre-overhaul ~4 allocs/task (re-anchor deliberately, not accidentally)", m.Value)
	}
}

func TestLabRecords(t *testing.T) {
	rep := sampleReport()
	rep.Metrics[1].Extra = map[string]float64{"steal_attempts": 7, "steal_fails": 3}
	recs := LabRecords(rep)
	if len(recs) != len(rep.Metrics) {
		t.Fatalf("records = %d, want %d", len(recs), len(rep.Metrics))
	}
	keys := map[string]bool{}
	for i, r := range recs {
		if r.Spec.Bench != "perf" || r.Spec.Version != rep.Metrics[i].Name {
			t.Fatalf("record spec mismapped: %+v", r.Spec)
		}
		if r.Key == "" || keys[r.Key] {
			t.Fatalf("record keys must be unique and stable, got %q", r.Key)
		}
		keys[r.Key] = true
		if r.Metric != rep.Metrics[i].Value {
			t.Fatalf("metric value lost: %v != %v", r.Metric, rep.Metrics[i].Value)
		}
	}
	if recs[1].Stats == nil || recs[1].Stats.StealAttempts != 7 {
		t.Fatalf("extra counters not carried into stats: %+v", recs[1].Stats)
	}

	// Same-metric re-runs supersede in a store (last wins by key).
	store, err := lab.OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	if err := AppendToStore(store, rep); err != nil {
		t.Fatal(err)
	}
	rep.Metrics[0].Value = 9
	if err := AppendToStore(store, rep); err != nil {
		t.Fatal(err)
	}
	if store.Len() != len(rep.Metrics) {
		t.Fatalf("store has %d keys, want %d (re-runs must supersede)", store.Len(), len(rep.Metrics))
	}
}

// TestQuickSuiteSmoke runs the real measurement suite at its smallest
// size: the emitted report must validate and carry every pinned
// metric family.
func TestQuickSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks")
	}
	rep, err := Run(Options{Quick: true, Threads: 2, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fib/spawn-allocs", "fib/spawn-allocs-undeferred", "future/spawn-allocs",
		"fib/spawn-rate", "nqueens/spawn-rate",
		"steal/workfirst/throughput", "steal/centralized/throughput",
		"sort/elapsed", "strassen/elapsed",
	} {
		if _, ok := rep.Metric(want); !ok {
			t.Errorf("suite report lacks %s", want)
		}
	}
	// The overhauled runtime must keep the gated headline under the
	// committed pre-overhaul baseline by a wide margin (the ≥20%
	// reduction the overhaul was acceptance-tested against).
	base, err := LoadBaseline("")
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := rep.Metric("fib/spawn-allocs")
	old, _ := base.Metric("fib/spawn-allocs")
	if cur.Value > old.Value*0.8 {
		t.Errorf("fib/spawn-allocs = %v, want at least 20%% under the %v baseline", cur.Value, old.Value)
	}
}
