package perf

import (
	"fmt"
	"testing"
	"time"

	_ "bots/internal/apps/all" // macro measurements resolve through the registry
	"bots/internal/core"
	"bots/internal/lab"
	"bots/internal/omp"
)

// Options configures one suite run.
type Options struct {
	// Quick selects the reduced CI-smoke sizes (fib 20, nqueens 8,
	// test-class macros, one rep) instead of the full pinned sizes
	// (fib 25, nqueens 10, small-class macros, three reps).
	Quick bool
	// Threads is the team size for parallel measurements (default 4).
	Threads int
	// Reps overrides the repetition count (best-of-Reps for timing
	// metrics); 0 keeps the mode default.
	Reps int
}

func (o Options) defaults() Options {
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Reps <= 0 {
		if o.Quick {
			o.Reps = 1
		} else {
			o.Reps = 3
		}
	}
	return o
}

// Run executes the pinned benchmark suite and returns its report.
// The suite is deliberately small and fixed: the same micro kernels
// (fib and nqueens spawn rate, spawn-path allocation counts), the
// same per-scheduler steal-throughput probe, the same strong-scaling
// sweep (five benchmarks at 1,2,4,… workers; scaling.go), and the
// same two macro benchmarks (sort and strassen end-to-end) every run,
// so the BENCH_<n>.json trajectory stays comparable across PRs.
func Run(o Options) (*Report, error) {
	o = o.defaults()
	rep := &Report{
		Schema:    Schema,
		CreatedAt: time.Now().UTC(),
		Host:      lab.CurrentHost(),
		Quick:     o.Quick,
	}

	// Gated, host-independent: spawn-path allocations per task.
	rep.Metrics = append(rep.Metrics, allocMetrics()...)

	// Spawn rate: the tasks/second the runtime sustains on the
	// canonical recursive pattern, single-threaded (pure creation
	// overhead) and on a team (creation + queuing + stealing).
	fibN := 25
	if o.Quick {
		fibN = 20
	}
	fibThreads := []int{1, o.Threads}
	if o.Threads == 1 {
		fibThreads = fibThreads[:1] // metric keys must stay unique
	}
	for _, threads := range fibThreads {
		m := spawnRateFib(fibN, threads, o.Reps)
		rep.Metrics = append(rep.Metrics, m)
	}
	qN := 10
	if o.Quick {
		qN = 8
	}
	rep.Metrics = append(rep.Metrics, spawnRateNQueens(qN, o.Threads, o.Reps))

	// Steal throughput per registered scheduler: the same fib tree
	// pushed through every scheduler, reporting sustained tasks/s with
	// the contention counters (steal attempts/fails, idle parks)
	// alongside — the observable the backoff design is judged by.
	for _, sched := range omp.Schedulers() {
		rep.Metrics = append(rep.Metrics, stealThroughput(sched, fibN, o.Threads, o.Reps))
	}

	// Strong scaling: the same problems at 1,2,4,… workers, with
	// speedup (informational) and parallel-efficiency (gated) per
	// point — the paper's actual subject, and the regression net over
	// the scheduler/synchronization contention paths. See scaling.go.
	sm, err := scalingMetrics(o)
	if err != nil {
		return nil, err
	}
	rep.Metrics = append(rep.Metrics, sm...)

	// Macro: end-to-end application times through the core registry.
	class := "small"
	if o.Quick {
		class = "test"
	}
	for _, bench := range []string{"sort", "strassen"} {
		m, err := macroElapsed(bench, class, o.Threads, o.Reps)
		if err != nil {
			return nil, err
		}
		rep.Metrics = append(rep.Metrics, m)
	}

	// Service mode: persistent-team submission allocations (gated),
	// shed rate at calibrated load (gated at zero), and informational
	// tail-latency percentiles. See service.go.
	svc, err := serviceMetrics(o)
	if err != nil {
		return nil, err
	}
	rep.Metrics = append(rep.Metrics, svc...)

	// Observability layer: record-path allocations (gated at ~0) and
	// the informational flight-recorder fib tax. See obsmetrics.go.
	rep.Metrics = append(rep.Metrics, obsMetrics(o)...)

	// False-sharing ledger: what a shared cache line costs on this
	// host (informational; justifies the pads in internal/omp). See
	// pad.go.
	rep.Metrics = append(rep.Metrics, paddingMetrics(o)...)

	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("perf: suite produced an invalid report: %w", err)
	}
	return rep, nil
}

// perfFib is the task-per-node fib kernel used by the spawn-rate and
// steal probes (the paper's canonical overhead stressor: ~zero work
// per task, so elapsed time is pure runtime cost).
func perfFib(c *omp.Context, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var a, b int64
	c.Task(func(c *omp.Context) { perfFib(c, n-1, &a) })
	c.Task(func(c *omp.Context) { perfFib(c, n-2, &b) })
	c.Taskwait()
	*out = a + b
}

// runFibRegion runs one fib tree on a team and returns the region
// stats and elapsed time.
func runFibRegion(n, threads int, opts ...omp.TeamOpt) (*omp.Stats, time.Duration) {
	var res int64
	start := time.Now()
	st := omp.Parallel(threads, func(c *omp.Context) {
		c.Single(func(c *omp.Context) {
			c.Task(func(c *omp.Context) { perfFib(c, n, &res) })
		})
	}, opts...)
	return st, time.Since(start)
}

func spawnRateFib(n, threads, reps int) Metric {
	var best float64
	var tasks int64
	for r := 0; r < reps; r++ {
		st, el := runFibRegion(n, threads)
		tasks = st.TotalTasks()
		if rate := float64(tasks) / el.Seconds(); rate > best {
			best = rate
		}
	}
	return Metric{
		Name:   "fib/spawn-rate",
		Value:  best,
		Unit:   "tasks/s",
		Better: "higher",
		Params: fmt.Sprintf("n=%d/threads=%d", n, threads),
		Extra:  map[string]float64{"tasks": float64(tasks)},
	}
}

// perfQueens counts n-queens solutions with one task per row
// placement above the cutoff depth — the paper's other spawn-heavy
// kernel, with a copied board per task (captured-environment cost).
func perfQueens(c *omp.Context, board []int8, row int, count *int64) {
	n := cap(board)
	if row == n {
		*count += 1
		return
	}
	counts := make([]int64, n)
	for col := 0; col < n; col++ {
		col := col
		ok := true
		for r := 0; r < row; r++ {
			d := int(board[r]) - col
			if d == 0 || d == row-r || d == r-row {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		child := make([]int8, row+1, n)
		copy(child, board[:row])
		child[row] = int8(col)
		c.Task(func(c *omp.Context) { perfQueens(c, child, row+1, &counts[col]) }, omp.Captured(row+1))
	}
	c.Taskwait()
	for col := 0; col < n; col++ {
		*count += counts[col]
	}
}

func spawnRateNQueens(n, threads, reps int) Metric {
	var best float64
	var tasks int64
	for r := 0; r < reps; r++ {
		var count int64
		start := time.Now()
		st := omp.Parallel(threads, func(c *omp.Context) {
			c.Single(func(c *omp.Context) {
				perfQueens(c, make([]int8, 0, n), 0, &count)
			})
		})
		el := time.Since(start)
		tasks = st.TotalTasks()
		if rate := float64(tasks) / el.Seconds(); rate > best {
			best = rate
		}
	}
	return Metric{
		Name:   "nqueens/spawn-rate",
		Value:  best,
		Unit:   "tasks/s",
		Better: "higher",
		Params: fmt.Sprintf("n=%d/threads=%d", n, threads),
		Extra:  map[string]float64{"tasks": float64(tasks)},
	}
}

func stealThroughput(sched string, n, threads, reps int) Metric {
	var best float64
	var bestStats *omp.Stats
	for r := 0; r < reps; r++ {
		st, el := runFibRegion(n, threads, omp.WithScheduler(sched))
		if rate := float64(st.TotalTasks()) / el.Seconds(); rate > best || bestStats == nil {
			best = rate
			bestStats = st // counters always from the run that set the headline
		}
	}
	return Metric{
		Name:   "steal/" + sched + "/throughput",
		Value:  best,
		Unit:   "tasks/s",
		Better: "higher",
		Params: fmt.Sprintf("n=%d/threads=%d", n, threads),
		Extra: map[string]float64{
			"tasks_stolen":   float64(bestStats.TasksStolen),
			"steal_attempts": float64(bestStats.StealAttempts),
			"steal_fails":    float64(bestStats.StealFails),
			"idle_parks":     float64(bestStats.IdleParks),
		},
	}
}

func macroElapsed(bench, class string, threads, reps int) (Metric, error) {
	b, err := core.Get(bench)
	if err != nil {
		return Metric{}, err
	}
	cls, err := core.ParseClass(class)
	if err != nil {
		return Metric{}, err
	}
	var best time.Duration
	var last *core.RunResult
	for r := 0; r < reps; r++ {
		res, err := b.Run(core.RunConfig{
			Class:   cls,
			Version: b.BestVersion,
			Threads: threads,
		})
		if err != nil {
			return Metric{}, fmt.Errorf("perf: %s/%s: %w", bench, class, err)
		}
		last = res
		if best == 0 || res.Elapsed < best {
			best = res.Elapsed
		}
	}
	return Metric{
		Name:   bench + "/elapsed",
		Value:  float64(best.Nanoseconds()),
		Unit:   "ns",
		Better: "lower",
		Params: fmt.Sprintf("class=%s/version=%s/threads=%d", class, b.BestVersion, threads),
		Extra: map[string]float64{
			"tasks":        float64(last.Stats.TotalTasks()),
			"tasks_stolen": float64(last.Stats.TasksStolen),
		},
	}, nil
}

// allocMetrics measures steady-state spawn-path allocations per task
// with testing.AllocsPerRun. These are the gated metrics: allocation
// counts are a property of the code, not of the host, so the
// committed baseline compares exactly across machines. Measurements
// run on a one-thread team so the counts are deterministic (no
// stealing, no racing pool refills).
func allocMetrics() []Metric {
	const n = 2000
	noop := func(c *omp.Context) {}

	deferred := testing.AllocsPerRun(10, func() {
		omp.Parallel(1, func(c *omp.Context) {
			for i := 0; i < n; i++ {
				c.Task(noop)
				if i%64 == 63 {
					c.Taskwait()
				}
			}
			c.Taskwait()
		})
	}) / n

	undeferred := testing.AllocsPerRun(10, func() {
		omp.Parallel(1, func(c *omp.Context) {
			for i := 0; i < n; i++ {
				c.Task(noop, omp.If(false))
			}
		})
	}) / n

	// Every spawned future is Wait()ed: consumption is what licenses
	// the typed cell pools to recycle at region end (future.go), so a
	// consumed future costs zero steady-state allocations — the number
	// this gate pins.
	future := testing.AllocsPerRun(10, func() {
		omp.Parallel(1, func(c *omp.Context) {
			fn := func(c *omp.Context) int { return 1 }
			var fs [64]*omp.Future[int]
			for i := 0; i < n; i++ {
				fs[i%64] = omp.Spawn(c, fn)
				if i%64 == 63 {
					for _, f := range fs {
						f.Wait(c)
					}
				}
			}
			c.Taskwait()
		})
	}) / n

	mk := func(name string, v float64) Metric {
		return Metric{Name: name, Value: v, Unit: "allocs/task", Better: "lower", Gate: true}
	}
	return []Metric{
		mk("fib/spawn-allocs", deferred),
		mk("fib/spawn-allocs-undeferred", undeferred),
		mk("future/spawn-allocs", future),
	}
}
