package perf

import (
	"fmt"
	"testing"

	"bots/internal/core"
	"bots/internal/omp"
	"bots/internal/serve"
)

// serviceMetrics measures the service-mode subsystem (internal/serve
// on a persistent team). Two kinds of metric come out:
//
//   - Host-independent, gated: steady-state allocations per
//     persistent-team submission (the serve hot path — pooled
//     Submission, pooled task, reused queues — should not allocate),
//     and the shed rate at a calibrated load far below capacity
//     (must be exactly 0: shedding at low load means the admission
//     accounting leaks). Zero-valued baselines cannot regress through
//     Compare, so TestServiceGates and CI's service-smoke job assert
//     the same bounds directly.
//
//   - Host-dependent, informational: tail-latency percentiles of a
//     short calibrated health run, recorded so the BENCH_<n>.json
//     trajectory tracks how scheduler/runtime changes move the tail.
func serviceMetrics(o Options) ([]Metric, error) {
	metrics := []Metric{submitAllocMetric()}

	requests := 400
	if o.Quick {
		requests = 120
	}
	// Calibrated load: the health test-class request costs well under
	// a millisecond, so 200/s on any host is a small fraction of one
	// worker's capacity — at this load nothing may be shed.
	rep, err := serve.Run(serve.Config{
		Bench:     "health",
		Class:     core.Test,
		Scheduler: omp.DefaultScheduler,
		Cutoff:    -1,
		Workers:   o.Threads,
		Rate:      200,
		Requests:  requests,
		Seed:      1,
	})
	if err != nil {
		return nil, fmt.Errorf("perf: service run: %w", err)
	}
	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("perf: service report: %w", err)
	}
	params := fmt.Sprintf("bench=health/class=test/rate=200/requests=%d/threads=%d", requests, o.Threads)
	metrics = append(metrics,
		Metric{
			Name:   "serve/shed-rate",
			Value:  float64(rep.Shed) / float64(rep.Submitted+rep.Shed),
			Unit:   "fraction",
			Better: "lower",
			Gate:   true,
			Params: params,
			Extra: map[string]float64{
				"shed":            float64(rep.Shed),
				"verify_failures": float64(rep.VerifyFailures),
			},
		},
		Metric{
			Name:   "serve/health/total-p50",
			Value:  float64(rep.Total.P50),
			Unit:   "ns",
			Better: "lower",
			Params: params,
		},
		Metric{
			Name:   "serve/health/total-p99",
			Value:  float64(rep.Total.P99),
			Unit:   "ns",
			Better: "lower",
			Params: params,
		},
		Metric{
			Name:   "serve/health/total-p999",
			Value:  float64(rep.Total.P999),
			Unit:   "ns",
			Better: "lower",
			Params: params,
			Extra: map[string]float64{
				"queueing_p99_ns": float64(rep.Queueing.P99),
				"service_p99_ns":  float64(rep.Service.P99),
				"throughput_hz":   rep.ThroughputHz,
			},
		},
	)
	return metrics, nil
}

// submitAllocMetric measures steady-state allocations per
// persistent-team submission with a small task DAG per request, on a
// one-worker team so the counts are deterministic. The submission
// path recycles the Submission struct, its done channel, and every
// task, so steady state is ~0.
func submitAllocMetric() Metric {
	pt := omp.NewPersistentTeam(1)
	noop := func(c *omp.Context) {}
	body := func(c *omp.Context) {
		for i := 0; i < 16; i++ {
			c.Task(noop)
		}
		c.Taskwait()
	}
	for i := 0; i < 50; i++ { // warm the pools
		pt.SubmitWait(body)
	}
	allocs := testing.AllocsPerRun(300, func() { pt.SubmitWait(body) })
	pt.Close()
	return Metric{
		Name:   "serve/submit-allocs",
		Value:  allocs,
		Unit:   "allocs/request",
		Better: "lower",
		Gate:   true,
		Params: "workers=1/tasks=16",
	}
}
