package perf

import (
	"fmt"
	"runtime"
	"time"

	"bots/internal/core"
	"bots/internal/omp"
)

// Strong-scaling suite: the same problem at growing team sizes. This
// is the measurement the BOTS paper is actually about — how a task
// runtime's overheads bend the speedup curve as threads grow — and
// the observable the scheduler/synchronization contention work is
// judged by. Five benchmarks cover the design space: fib and nqueens
// (spawn-dominated microkernels), sort and strassen (real recursive
// workloads through the core registry), and sparselu's dep-tied
// version (dependence-driven execution, so the dependence-release and
// wake paths are on the measured path too).
//
// Per (bench, workers) point the suite emits:
//
//   - scaling/<bench>/speedup — T(1 worker) / T(n workers),
//     informational (wall-clock, host-dependent);
//   - scaling/<bench>/efficiency — speedup / min(n, NumCPU), gated.
//     Dividing by *effective* parallelism (a team larger than the
//     host's core count cannot speed up past the core count) keeps
//     the metric meaningful on any host: on a big machine it is
//     classic parallel efficiency, on a small one it measures how
//     much the runtime's contention overhead (queue traffic, steal
//     sweeps, park/wake churn) taxes an oversubscribed team — an
//     ideal contention-free runtime holds it near 1.0 either way.
//
// Params pin the workload size, the worker count and the host's CPU
// count, so comparisons (the gate, `botsbench -compare`) only ever
// match points measured under the same effective-parallelism regime;
// quick-mode sizes never compare against full-mode baselines.
//
// Contention counters (steal attempts/fails, idle and taskwait parks,
// tasks stolen) ride in Extra on every point, so a scaling regression
// comes with the queue-discipline evidence needed to read it.

// scalingWorkerCounts returns the team sizes of the strong-scaling
// suite: powers of two from 1 up to max(4, NumCPU), plus the full
// count itself when it is not a power of two (a 6- or 12-core host
// must measure its full-machine point — that is where whole-team
// contention shows). The floor of 4 keeps at least three points
// (1, 2, 4) on any host — on a small host the oversubscribed points
// measure contention overhead rather than speedup (see the
// efficiency definition above).
func scalingWorkerCounts() []int {
	max := runtime.NumCPU()
	if max < 4 {
		max = 4
	}
	counts := []int{}
	for n := 1; n <= max; n *= 2 {
		counts = append(counts, n)
	}
	if counts[len(counts)-1] != max {
		counts = append(counts, max)
	}
	return counts
}

// scalingBench is one strong-scaling subject: run executes the
// workload once on a team of the given size and reports elapsed time
// and runtime stats. params names the pinned workload size.
type scalingBench struct {
	name   string
	params string
	run    func(threads int) (time.Duration, *omp.Stats, error)
}

// scalingBenches assembles the five suite subjects at the mode's
// pinned sizes.
func scalingBenches(quick bool) []scalingBench {
	fibN, queensN, class := 25, 10, "small"
	if quick {
		fibN, queensN, class = 20, 8, "test"
	}
	benches := []scalingBench{
		{
			name:   "fib",
			params: fmt.Sprintf("n=%d", fibN),
			run: func(threads int) (time.Duration, *omp.Stats, error) {
				st, el := runFibRegion(fibN, threads)
				return el, st, nil
			},
		},
		{
			name:   "nqueens",
			params: fmt.Sprintf("n=%d", queensN),
			run: func(threads int) (time.Duration, *omp.Stats, error) {
				var count int64
				start := time.Now()
				st := omp.Parallel(threads, func(c *omp.Context) {
					c.Single(func(c *omp.Context) {
						perfQueens(c, make([]int8, 0, queensN), 0, &count)
					})
				})
				return time.Since(start), st, nil
			},
		},
	}
	for _, m := range []struct{ bench, version string }{
		{"sort", ""},             // registry best version
		{"strassen", ""},         // registry best version
		{"sparselu", "dep-tied"}, // dependence-driven: the dep release path scales too
	} {
		m := m
		b, err := core.Get(m.bench)
		version := m.version
		if err == nil && version == "" {
			version = b.BestVersion
		}
		benches = append(benches, scalingBench{
			name:   m.bench,
			params: fmt.Sprintf("class=%s/version=%s", class, version),
			run: func(threads int) (time.Duration, *omp.Stats, error) {
				if err != nil {
					return 0, nil, err
				}
				cls, cerr := core.ParseClass(class)
				if cerr != nil {
					return 0, nil, cerr
				}
				res, rerr := b.Run(core.RunConfig{Class: cls, Version: version, Threads: threads})
				if rerr != nil {
					return 0, nil, fmt.Errorf("perf: scaling %s: %w", m.bench, rerr)
				}
				return res.Elapsed, res.Stats, nil
			},
		})
	}
	return benches
}

// scalingMetrics runs the strong-scaling suite (best-of-reps per
// point) and returns its speedup and efficiency metrics.
func scalingMetrics(o Options) ([]Metric, error) {
	counts := scalingWorkerCounts()
	cpus := runtime.NumCPU()
	var out []Metric
	for _, b := range scalingBenches(o.Quick) {
		var base time.Duration
		for _, threads := range counts {
			best := time.Duration(0)
			var bestStats *omp.Stats
			for r := 0; r < o.Reps; r++ {
				el, st, err := b.run(threads)
				if err != nil {
					return nil, err
				}
				if best == 0 || el < best {
					best, bestStats = el, st
				}
			}
			if threads == 1 {
				base = best
			}
			if base == 0 {
				return nil, fmt.Errorf("perf: scaling %s: zero single-worker baseline", b.name)
			}
			speedup := float64(base) / float64(best)
			effPar := threads
			if cpus < effPar {
				effPar = cpus
			}
			params := fmt.Sprintf("%s/threads=%d/cpus=%d", b.params, threads, cpus)
			extra := map[string]float64{"elapsed_ns": float64(best.Nanoseconds())}
			if bestStats != nil {
				extra["tasks"] = float64(bestStats.TotalTasks())
				extra["tasks_stolen"] = float64(bestStats.TasksStolen)
				extra["steal_attempts"] = float64(bestStats.StealAttempts)
				extra["steal_fails"] = float64(bestStats.StealFails)
				extra["idle_parks"] = float64(bestStats.IdleParks)
				extra["taskwait_parks"] = float64(bestStats.TaskwaitParks)
			}
			out = append(out,
				Metric{
					Name:   "scaling/" + b.name + "/speedup",
					Value:  speedup,
					Unit:   "x",
					Better: "higher",
					Params: params,
					Extra:  extra,
				},
				Metric{
					Name:   "scaling/" + b.name + "/efficiency",
					Value:  speedup / float64(effPar),
					Unit:   "ratio",
					Better: "higher",
					Gate:   true,
					Params: params,
				})
		}
	}
	return out, nil
}
