package perf

import (
	"fmt"
	"testing"
	"time"

	"bots/internal/obs"
	"bots/internal/omp"
)

// obsMetrics measures the observability layer itself (internal/obs,
// DESIGN.md §11). Two metrics come out:
//
//   - Host-independent, gated: steady-state allocations per record
//     operation (counter increment, sharded increment, histogram
//     record). The whole point of the sharded-counter and log-bucket
//     designs is that recording is a few atomic ops and nothing else,
//     so this must stay ~0. A zero baseline cannot regress through
//     Compare, so TestObsGates asserts the bound directly.
//
//   - Host-dependent, informational: the fib spawn-rate tax of full
//     instrumentation — a flight recorder sized as the drivers size
//     it, which stamps a timestamped event on every spawn, steal,
//     park, wake, and finish — relative to a bare region. The
//     pull-based registry costs nothing between scrapes by
//     construction; the recorder is the only per-event cost, and this
//     ratio tracks it across PRs.
func obsMetrics(o Options) []Metric {
	metrics := []Metric{obsRecordAllocMetric()}

	n := 22
	if o.Quick {
		n = 18
	}
	var bare, instr time.Duration
	for r := 0; r < o.Reps; r++ {
		if _, el := runFibRegion(n, o.Threads); bare == 0 || el < bare {
			bare = el
		}
	}
	for r := 0; r < o.Reps; r++ {
		fr := obs.NewFlightRecorder(o.Threads, 4096)
		if _, el := runFibRegion(n, o.Threads, omp.WithFlightRecorder(fr)); instr == 0 || el < instr {
			instr = el
		}
	}
	metrics = append(metrics, Metric{
		Name:   "obs/fib-overhead",
		Value:  float64(instr) / float64(bare),
		Unit:   "ratio",
		Better: "lower",
		Params: fmt.Sprintf("n=%d/threads=%d/ring=4096", n, o.Threads),
		Extra: map[string]float64{
			"bare_ns":  float64(bare),
			"instr_ns": float64(instr),
		},
	})
	return metrics
}

// obsRecordAllocMetric measures steady-state allocations across the
// three record-path operations every instrumented hot path uses:
// Counter.Inc, Counter.AddShard, and Histogram.RecordValue. All three
// are fixed-size atomic updates into preallocated storage, so the
// per-operation count is exactly 0.
func obsRecordAllocMetric() Metric {
	reg := obs.NewRegistry()
	c := reg.Counter("perf_obs_ops_total", "Record-path allocation probe.")
	var h obs.Histogram
	reg.RegisterHistogram("perf_obs_probe_seconds", "Record-path allocation probe.", &h)
	const n = 1024
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < n; i++ {
			c.Inc()
			c.AddShard(i, 1)
			h.RecordValue(int64(i) * 1000)
		}
	}) / (3 * n)
	return Metric{
		Name:   "obs/record-allocs",
		Value:  allocs,
		Unit:   "allocs/op",
		Better: "lower",
		Gate:   true,
		Params: "ops=inc+addshard+hist-record",
	}
}
