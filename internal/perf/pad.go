package perf

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Padding microbench: measures what a shared cache line actually costs
// on this host, so the false-sharing pads in internal/omp (Team's hot
// atomic clusters, the deque header, schedSlot — layout pinned by
// omp's TestPaddedLayout) are justified by a number instead of
// folklore. Two goroutines hammer two independent atomic counters that
// are either adjacent (same line — every increment invalidates the
// peer's line) or a line apart. The metrics are informational, not
// gated: the ratio is a property of the host's coherence fabric, not
// of this repo's code, and it collapses to ~1 on a single-core
// machine.

// sharedPair puts both counters on one cache line.
type sharedPair struct {
	a atomic.Int64
	b atomic.Int64
}

// paddedPair gives each counter its own line (the same 8-byte word +
// 56-byte pad recipe the runtime structs use).
type paddedPair struct {
	a atomic.Int64
	_ [56]byte
	b atomic.Int64
	_ [56]byte
}

// padIters is the per-goroutine increment count for one measurement.
const padIters = 1 << 20

// hammerPair runs two goroutines incrementing ca and cb iters times
// each and returns the wall time of the contended phase.
func hammerPair(ca, cb *atomic.Int64, iters int) time.Duration {
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(2)
	for _, c := range []*atomic.Int64{ca, cb} {
		go func(c *atomic.Int64) {
			defer done.Done()
			start.Wait()
			for i := 0; i < iters; i++ {
				c.Add(1)
			}
		}(c)
	}
	begin := time.Now()
	start.Done()
	done.Wait()
	return time.Since(begin)
}

// falseSharingCost measures ns/op for the shared-line and padded
// layouts (best of reps, like the timing metrics elsewhere in the
// suite) and returns (sharedNs, paddedNs).
func falseSharingCost(iters, reps int) (float64, float64) {
	bestShared := time.Duration(1<<63 - 1)
	bestPadded := bestShared
	for r := 0; r < reps; r++ {
		sp := new(sharedPair)
		if d := hammerPair(&sp.a, &sp.b, iters); d < bestShared {
			bestShared = d
		}
		pp := new(paddedPair)
		if d := hammerPair(&pp.a, &pp.b, iters); d < bestPadded {
			bestPadded = d
		}
	}
	perOp := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(iters) }
	return perOp(bestShared), perOp(bestPadded)
}

// paddingMetrics runs the false-sharing microbench and renders it as
// three informational metrics: the two absolute costs and their ratio
// (sharedNs / paddedNs — how many times more an increment costs when
// an independent hot word shares its line). The ratio is the number
// DESIGN.md §12 cites when deciding which runtime words earned a pad.
func paddingMetrics(o Options) []Metric {
	iters := padIters
	if o.Quick {
		iters = padIters / 8
	}
	sharedNs, paddedNs := falseSharingCost(iters, o.Reps)
	ratio := 0.0
	if paddedNs > 0 {
		ratio = sharedNs / paddedNs
	}
	extra := map[string]float64{"procs": float64(runtime.GOMAXPROCS(0))}
	return []Metric{
		{Name: "padding/shared-line", Value: sharedNs, Unit: "ns/op", Better: "lower", Extra: extra},
		{Name: "padding/split-lines", Value: paddedNs, Unit: "ns/op", Better: "lower", Extra: extra},
		{Name: "padding/invalidation-ratio", Value: ratio, Unit: "x", Better: "lower", Extra: extra},
	}
}
