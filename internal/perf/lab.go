package perf

import (
	"bots/internal/lab"
	"bots/internal/omp"
)

// LabRecords converts a report into lab Records — one per metric —
// so a benchmark run lands in the same JSONL store (and HTTP API)
// sweep results use. The mapping pins Bench to "perf" and carries the
// metric identity in Version, so the records content-address stably:
// re-running the suite supersedes the previous measurement of each
// metric (the store's last-wins rule) instead of piling up rows.
func LabRecords(r *Report) []*lab.Record {
	out := make([]*lab.Record, 0, len(r.Metrics))
	for _, m := range r.Metrics {
		spec := lab.JobSpec{
			Bench:   "perf",
			Version: m.Name,
			Class:   "bench",
			Threads: 1,
		}
		rec := &lab.Record{
			Key:       spec.Key(),
			Spec:      spec,
			Host:      r.Host,
			CreatedAt: r.CreatedAt,
			Metric:    m.Value,
			Verified:  true,
		}
		// Attach runtime counters only when the metric actually carries
		// them (steal/macro probes); a metric whose Extra has none of
		// these keys gets no Stats rather than a misleading all-zero one.
		st := &omp.Stats{}
		hasStats := false
		for key, dst := range map[string]*int64{
			"tasks_stolen":   &st.TasksStolen,
			"steal_attempts": &st.StealAttempts,
			"steal_fails":    &st.StealFails,
			"idle_parks":     &st.IdleParks,
		} {
			if v, ok := m.Extra[key]; ok {
				*dst = int64(v)
				hasStats = true
			}
		}
		if hasStats {
			rec.Stats = st
		}
		out = append(out, rec)
	}
	return out
}

// AppendToStore writes every metric of the report into the lab store.
func AppendToStore(s *lab.Store, r *Report) error {
	for _, rec := range LabRecords(r) {
		if err := s.Put(rec); err != nil {
			return err
		}
	}
	return nil
}
