package chaos

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is the listener-level injection point: a TCP forwarder that
// subjects whole connections to the injector's faults. It covers what
// the RoundTripper wrapper cannot — clients that dial a socket rather
// than accept a custom http.Client (curl, a non-Go worker), and
// connection-granular failure modes (a connection accepted and then
// blackholed mid-stream by a partition).
//
// Per-connection faults, decided at accept time from the seeded RNG:
//
//   - drop: the connection is accepted and immediately closed
//     (probability DropRate);
//   - latency: the dial to the target is delayed by Latency ± Jitter;
//   - two-way partition (checked continuously): both directions stall
//     — bytes stop flowing until Heal;
//   - one-way partition: client→target bytes still flow, the return
//     path is discarded.
type Proxy struct {
	inj    *Injector
	target string
	ln     net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// NewProxy listens on addr (e.g. "127.0.0.1:0") and forwards each
// accepted connection to target through inj's faults.
func NewProxy(addr, target string, inj *Injector) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{inj: inj, target: target, ln: ln, conns: map[net.Conn]struct{}{}}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address, for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops the listener and severs every live connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.inj.conns.Add(1)
		d := p.inj.decide()
		if d.dropRequest || d.dropResponse {
			p.inj.droppedConns.Add(1)
			c.Close()
			continue
		}
		go p.forward(c, d.delay)
	}
}

func (p *Proxy) forward(client net.Conn, delay time.Duration) {
	defer client.Close()
	if !p.track(client) {
		return
	}
	defer p.untrack(client)
	if delay > 0 {
		p.inj.delayed.Add(1)
		time.Sleep(delay)
	}
	target, err := net.DialTimeout("tcp", p.target, 10*time.Second)
	if err != nil {
		return
	}
	defer target.Close()
	done := make(chan struct{}, 2)
	go func() { p.copyDir(target, client, false); done <- struct{}{} }()
	go func() { p.copyDir(client, target, true); done <- struct{}{} }()
	<-done // either direction closing tears the pair down (deferred Closes)
}

// copyDir pumps one direction in small chunks so partition state is
// re-consulted continuously: a two-way partition stalls the stream
// mid-flight, a one-way partition blackholes only the return path.
func (p *Proxy) copyDir(dst io.Writer, src net.Conn, returning bool) {
	buf := make([]byte, 32<<10)
	for {
		src.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, err := src.Read(buf)
		if n > 0 {
			mode := p.inj.partition.Load()
			for mode == PartitionTwoWay {
				p.inj.partitioned.Add(1)
				time.Sleep(20 * time.Millisecond)
				mode = p.inj.partition.Load()
			}
			if returning && mode == PartitionOneWay {
				p.inj.partitioned.Add(1)
				continue // discard the return path
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
	}
}
