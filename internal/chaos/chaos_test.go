package chaos

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestDeterministicDecisions pins the replayability contract: two
// injectors with the same seed draw the identical (delay, drop) fate
// sequence; a different seed diverges.
func TestDeterministicDecisions(t *testing.T) {
	cfg := Config{Seed: 42, Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, DropRate: 0.3}
	a, b := New(cfg), New(cfg)
	diverged := false
	other := New(Config{Seed: 43, Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, DropRate: 0.3})
	for i := 0; i < 200; i++ {
		da, db, dc := a.decide(), b.decide(), other.decide()
		if da != db {
			t.Fatalf("decision %d: same seed diverged: %+v vs %+v", i, da, db)
		}
		if da != dc {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("a different seed never changed a decision in 200 draws")
	}
}

func TestDecideDelayBounds(t *testing.T) {
	i := New(Config{Seed: 1, Latency: 100 * time.Millisecond, Jitter: 30 * time.Millisecond})
	for n := 0; n < 1000; n++ {
		d := i.decide()
		if d.delay < 70*time.Millisecond || d.delay > 130*time.Millisecond {
			t.Fatalf("delay %v outside 100ms ± 30ms", d.delay)
		}
		if d.dropRequest || d.dropResponse {
			t.Fatal("drop decided with DropRate 0")
		}
	}
}

func TestDropRateSplitsSides(t *testing.T) {
	i := New(Config{Seed: 7, DropRate: 0.5})
	var req, resp int
	for n := 0; n < 2000; n++ {
		d := i.decide()
		if d.dropRequest {
			req++
		}
		if d.dropResponse {
			resp++
		}
	}
	total := req + resp
	if total < 800 || total > 1200 {
		t.Fatalf("dropped %d of 2000 at rate 0.5", total)
	}
	if req == 0 || resp == 0 {
		t.Fatalf("drop sides not both exercised: request=%d response=%d", req, resp)
	}
}

func newEchoServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		fmt.Fprint(w, "ok")
	}))
	t.Cleanup(ts.Close)
	return ts, &served
}

// TestTransportOneWayPartition pins the nasty case: the server
// processes the request, the caller gets an error.
func TestTransportOneWayPartition(t *testing.T) {
	ts, served := newEchoServer(t)
	inj := New(Config{Seed: 1})
	client := &http.Client{Transport: inj.Transport(nil)}

	if _, err := client.Get(ts.URL); err != nil {
		t.Fatalf("pre-partition request failed: %v", err)
	}
	inj.SetPartition(PartitionOneWay)
	if _, err := client.Get(ts.URL); err == nil {
		t.Fatal("one-way partition returned a response")
	}
	if served.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2 (one-way delivers the request)", served.Load())
	}
	inj.SetPartition(PartitionTwoWay)
	if _, err := client.Get(ts.URL); err == nil {
		t.Fatal("two-way partition returned a response")
	}
	if served.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2 (two-way must not deliver)", served.Load())
	}
	inj.Heal()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("post-heal request failed: %v", err)
	}
	resp.Body.Close()
	st := inj.Stats()
	if st.Partitioned != 2 || st.Requests != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTransportDelayHonorsContext(t *testing.T) {
	ts, _ := newEchoServer(t)
	inj := New(Config{Seed: 1, Latency: 10 * time.Second})
	client := &http.Client{Transport: inj.Transport(nil)}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("10s injected delay beat a 50ms deadline")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("cancellation took %v, delay not context-aware", time.Since(start))
	}
}

func TestTransportDropsAreErrors(t *testing.T) {
	ts, served := newEchoServer(t)
	inj := New(Config{Seed: 3, DropRate: 1})
	client := &http.Client{Transport: inj.Transport(nil)}
	var failed int
	for n := 0; n < 20; n++ {
		if _, err := client.Get(ts.URL); err != nil {
			failed++
		}
	}
	if failed != 20 {
		t.Fatalf("%d of 20 requests failed at DropRate 1, want all", failed)
	}
	st := inj.Stats()
	if st.DroppedRequests+st.DroppedResponses != 20 {
		t.Fatalf("stats = %+v", st)
	}
	// Response-side drops reached the server; request-side did not.
	if served.Load() != st.DroppedResponses {
		t.Fatalf("server saw %d requests, want %d (= response-side drops)", served.Load(), st.DroppedResponses)
	}
}

// TestProxyForwardsAndPartitions drives HTTP through the TCP proxy:
// clean pass-through, then a two-way partition stalling a request
// until healed.
func TestProxyForwardsAndPartitions(t *testing.T) {
	ts, _ := newEchoServer(t)
	inj := New(Config{Seed: 5})
	p, err := NewProxy("127.0.0.1:0", ts.Listener.Addr().String(), inj)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	url := "http://" + p.Addr()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("through-proxy request failed: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("through-proxy body = %q", body)
	}

	inj.SetPartition(PartitionTwoWay)
	healed := make(chan struct{})
	go func() {
		time.Sleep(300 * time.Millisecond)
		inj.Heal()
		close(healed)
	}()
	start := time.Now()
	// A fresh connection per request: the partition stalls the stream,
	// the heal releases it.
	c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 10 * time.Second}
	resp2, err := c.Get(url)
	if err != nil {
		t.Fatalf("post-heal request failed: %v", err)
	}
	resp2.Body.Close()
	<-healed
	if time.Since(start) < 250*time.Millisecond {
		t.Fatalf("request completed in %v, before the partition healed", time.Since(start))
	}
	if inj.Stats().Conns < 2 {
		t.Fatalf("stats = %+v", inj.Stats())
	}
}

func TestProxyDropsConnections(t *testing.T) {
	ts, _ := newEchoServer(t)
	inj := New(Config{Seed: 9, DropRate: 1})
	p, err := NewProxy("127.0.0.1:0", ts.Listener.Addr().String(), inj)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 2 * time.Second}
	if _, err := c.Get("http://" + p.Addr()); err == nil {
		t.Fatal("DropRate 1 proxy served a request")
	}
	if inj.Stats().DroppedConns == 0 {
		t.Fatalf("stats = %+v", inj.Stats())
	}
}

func TestOffsetClock(t *testing.T) {
	base := func() time.Time { return time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC) }
	ahead := OffsetClock(base, 2*time.Minute)
	behind := OffsetClock(base, -2*time.Minute)
	if got := ahead().Sub(base()); got != 2*time.Minute {
		t.Fatalf("ahead offset = %v", got)
	}
	if got := behind().Sub(base()); got != -2*time.Minute {
		t.Fatalf("behind offset = %v", got)
	}
	if OffsetClock(nil, 0)().IsZero() {
		t.Fatal("nil base did not default to time.Now")
	}
}
