// Package chaos is the deterministic fault-injection layer of the
// fleet's robustness story (DESIGN.md §14): it perturbs the
// worker↔coordinator wire with latency, request drops, one-way and
// two-way partitions, and clock offset, all driven by a seeded RNG
// and an injectable clock so a chaos experiment replays the same
// fault schedule run after run.
//
// Two injection points cover the stack:
//
//   - Transport (an http.RoundTripper wrapper) perturbs individual
//     HTTP requests in-process — the workhorse of the Go chaos suite
//     and of botsd's -chaos-* flags;
//   - Proxy (a TCP listener forwarder) perturbs whole connections at
//     the socket level, for clients that cannot be instrumented.
//
// The one-way partition is deliberately the nasty one: the request
// REACHES the server (which acts on it) but the response is dropped,
// so the client cannot tell "lost" from "done". Every protocol the
// fleet speaks must be idempotent against that ambiguity; the chaos
// suite exists to prove it stays so.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Partition modes, set with SetPartition / Heal.
const (
	PartitionNone   int32 = iota // traffic flows
	PartitionOneWay              // requests arrive, responses are dropped
	PartitionTwoWay              // requests never arrive
)

// Config tunes an Injector. Zero values inject nothing.
type Config struct {
	// Seed seeds the decision RNG; the same seed yields the same
	// decision sequence (given the same request order), which is what
	// makes a chaos run replayable.
	Seed int64
	// Latency is the base injected delay per request (0 = none).
	Latency time.Duration
	// Jitter widens Latency to Latency ± uniform(Jitter).
	Jitter time.Duration
	// DropRate is the probability in [0,1] that a request is dropped.
	// A dropped request is lost on the request side or the response
	// side with equal probability — the latter means the server
	// processed it and only the caller is in the dark.
	DropRate float64
	// Clock replaces time.Now for delay bookkeeping (tests).
	Clock func() time.Time
}

// Stats counts what an injector actually did, so a chaos test can
// assert faults genuinely fired instead of passing vacuously.
type Stats struct {
	Requests         int64 // requests seen by the transport
	Delayed          int64 // requests that served an injected delay
	DroppedRequests  int64 // dropped before reaching the server
	DroppedResponses int64 // processed by the server, response dropped
	Partitioned      int64 // refused (or blackholed) by a partition
	Conns            int64 // proxy connections accepted
	DroppedConns     int64 // proxy connections dropped at accept
}

// Injector is the shared fault source behind Transport and Proxy.
// All methods are safe for concurrent use; decisions are serialized
// on one seeded RNG so a single-threaded request sequence is exactly
// reproducible.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	partition atomic.Int32

	requests         atomic.Int64
	delayed          atomic.Int64
	droppedRequests  atomic.Int64
	droppedResponses atomic.Int64
	partitioned      atomic.Int64
	conns            atomic.Int64
	droppedConns     atomic.Int64
}

// New returns an Injector for cfg.
func New(cfg Config) *Injector {
	if cfg.DropRate < 0 {
		cfg.DropRate = 0
	}
	if cfg.DropRate > 1 {
		cfg.DropRate = 1
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (i *Injector) now() time.Time {
	if i.cfg.Clock != nil {
		return i.cfg.Clock()
	}
	return time.Now()
}

// SetPartition switches the partition mode (PartitionNone/OneWay/
// TwoWay) for all traffic through this injector.
func (i *Injector) SetPartition(mode int32) { i.partition.Store(mode) }

// Heal clears any partition.
func (i *Injector) Heal() { i.partition.Store(PartitionNone) }

// Partitioned reports the current partition mode.
func (i *Injector) Partitioned() int32 { return i.partition.Load() }

// Stats snapshots the injector's fault counters.
func (i *Injector) Stats() Stats {
	return Stats{
		Requests:         i.requests.Load(),
		Delayed:          i.delayed.Load(),
		DroppedRequests:  i.droppedRequests.Load(),
		DroppedResponses: i.droppedResponses.Load(),
		Partitioned:      i.partitioned.Load(),
		Conns:            i.conns.Load(),
		DroppedConns:     i.droppedConns.Load(),
	}
}

// decision is one request's fate, drawn atomically from the seeded
// RNG so the (delay, drop) tuple sequence is deterministic.
type decision struct {
	delay        time.Duration
	dropRequest  bool // lose it before the server
	dropResponse bool // server acts, caller never hears
}

func (i *Injector) decide() decision {
	i.mu.Lock()
	defer i.mu.Unlock()
	var d decision
	if i.cfg.Latency > 0 || i.cfg.Jitter > 0 {
		d.delay = i.cfg.Latency
		if i.cfg.Jitter > 0 {
			d.delay += time.Duration(i.rng.Int63n(int64(2*i.cfg.Jitter))) - i.cfg.Jitter
		}
		if d.delay < 0 {
			d.delay = 0
		}
	}
	if i.cfg.DropRate > 0 && i.rng.Float64() < i.cfg.DropRate {
		// A lost request and a lost response are equally likely; only
		// the second leaves the server with work the client will retry.
		if i.rng.Intn(2) == 0 {
			d.dropRequest = true
		} else {
			d.dropResponse = true
		}
	}
	return d
}

// Error is the typed failure surfaced for injected faults, so tests
// (and retry loops) can tell chaos from genuine transport errors
// while still treating both as transient.
type Error struct{ Kind string }

func (e *Error) Error() string { return fmt.Sprintf("chaos: injected fault: %s", e.Kind) }

var (
	errPartitioned  = &Error{Kind: "partitioned"}
	errDropRequest  = &Error{Kind: "request dropped"}
	errDropResponse = &Error{Kind: "response dropped"}
	errConnDropped  = &Error{Kind: "connection dropped"}
)
