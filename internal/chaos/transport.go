package chaos

import (
	"io"
	"net/http"
	"time"
)

// transport is the http.RoundTripper wrapper behind
// Injector.Transport.
type transport struct {
	inj  *Injector
	base http.RoundTripper
}

// Transport wraps base (nil = http.DefaultTransport) so every request
// through it is subject to this injector's faults: injected latency
// first, then partitions and drops. Fault order matters and mirrors a
// real network: a slow link still delays a request that is then lost.
//
//   - two-way partition: the request never reaches the server;
//   - request drop: ditto, for this one request;
//   - one-way partition / response drop: the request is delivered and
//     the server's work happens, but the caller gets an error — the
//     "did it land?" ambiguity every fleet call must survive.
//
// Delays respect the request context: a caller whose per-request
// timeout fires mid-delay gets ctx.Err(), exactly like a deadline
// expiring on a slow wire.
func (i *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{inj: i, base: base}
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	i := t.inj
	i.requests.Add(1)
	d := i.decide()
	if d.delay > 0 {
		i.delayed.Add(1)
		timer := time.NewTimer(d.delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	switch i.partition.Load() {
	case PartitionTwoWay:
		i.partitioned.Add(1)
		return nil, errPartitioned
	case PartitionOneWay:
		// Deliver the request, drop the response.
		i.partitioned.Add(1)
		resp, err := t.base.RoundTrip(req)
		if err == nil {
			drainClose(resp)
		}
		return nil, errPartitioned
	}
	if d.dropRequest {
		i.droppedRequests.Add(1)
		return nil, errDropRequest
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.dropResponse {
		i.droppedResponses.Add(1)
		drainClose(resp)
		return nil, errDropResponse
	}
	return resp, nil
}

// drainClose consumes a dropped response so the underlying connection
// is reusable — the fault is ours, not the transport's.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// OffsetClock returns a clock running `offset` away from base — the
// clock-skew axis. Hand it to lab.FleetConfig.Clock (a coordinator
// living in the future or past relative to its workers) or to a
// WorkerClient to skew the other side.
func OffsetClock(base func() time.Time, offset time.Duration) func() time.Time {
	if base == nil {
		base = time.Now
	}
	return func() time.Time { return base().Add(offset) }
}
