package inputs

// Proteins generates n synthetic protein sequences over the standard
// 20-letter amino-acid alphabet with lengths in [minLen, maxLen],
// deterministically from seed. The BOTS Alignment benchmark aligns
// every sequence against every other; the length spread below
// reproduces the imbalance across pair tasks that the paper's
// dynamic-schedule discussion relies on.
func Proteins(n, minLen, maxLen int, seed uint64) [][]byte {
	const alphabet = "ARNDCQEGHILKMFPSTWYV"
	r := NewRNG(seed)
	seqs := make([][]byte, n)
	for i := range seqs {
		ln := minLen
		if maxLen > minLen {
			ln += r.Intn(maxLen - minLen + 1)
		}
		s := make([]byte, ln)
		for j := range s {
			s[j] = alphabet[r.Intn(len(alphabet))]
		}
		seqs[i] = s
	}
	return seqs
}

// Ints32 generates n pseudo-random 32-bit integers (as the BOTS Sort
// benchmark sorts "a random permutation of n 32-bit numbers").
func Ints32(n int, seed uint64) []int32 {
	r := NewRNG(seed)
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(r.Uint64())
	}
	return v
}

// ComplexVector generates n complex values with components in
// [-1, 1) for the FFT benchmark.
func ComplexVector(n int, seed uint64) []complex128 {
	r := NewRNG(seed)
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(2*r.Float64()-1, 2*r.Float64()-1)
	}
	return v
}

// Matrix generates an n×n dense matrix with entries in [-1, 1),
// stored row-major, for the Strassen benchmark.
func Matrix(n int, seed uint64) []float64 {
	r := NewRNG(seed)
	m := make([]float64, n*n)
	for i := range m {
		m[i] = 2*r.Float64() - 1
	}
	return m
}

// Cell is one floorplan cell: a component with a set of alternative
// shapes (width×height orientations) from which the branch-and-bound
// search picks one while minimizing the bounding area.
type Cell struct {
	// Alts is the list of alternative shapes; each entry is {w, h}.
	Alts [][2]int
}

// FloorplanCells generates n cells, each with 2 or 3 alternative
// shapes of bounded dimensions, deterministically from seed. Shapes
// are small (1..maxDim) so that good packings exist and the pruning
// is aggressive and irregular, as in the AKM kernel the paper ports.
func FloorplanCells(n, maxDim int, seed uint64) []Cell {
	r := NewRNG(seed)
	cells := make([]Cell, n)
	for i := range cells {
		w := 1 + r.Intn(maxDim)
		h := 1 + r.Intn(maxDim)
		alts := [][2]int{{w, h}}
		if w != h {
			alts = append(alts, [2]int{h, w}) // rotation
		}
		if r.Bernoulli(0.5) {
			// An alternative aspect ratio with similar area.
			w2 := 1 + r.Intn(maxDim)
			h2 := (w*h + w2 - 1) / w2
			if h2 >= 1 && (w2 != w || h2 != h) {
				alts = append(alts, [2]int{w2, h2})
			}
		}
		cells[i] = Cell{Alts: alts}
	}
	return cells
}

// SparsePattern returns the non-null-block pattern for an nb×nb block
// matrix in the shape the BOTS SparseLU generator uses: a structured
// sparse pattern (dense diagonal plus deterministic off-diagonal
// fill) that leaves null blocks to create the load imbalance the
// paper discusses. pattern[i*nb+j] reports whether block (i,j) is
// allocated initially.
func SparsePattern(nb int, seed uint64) []bool {
	r := NewRNG(seed)
	p := make([]bool, nb*nb)
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			switch {
			case i == j:
				p[i*nb+j] = true // dense diagonal keeps the factorization well-defined
			case (i+j)%3 == 0 || (i-j+nb)%5 == 0:
				p[i*nb+j] = true
			default:
				p[i*nb+j] = r.Bernoulli(0.15)
			}
		}
	}
	return p
}

// Block fills a bs×bs block with deterministic, diagonally-dominant
// values derived from the block coordinates, so LU factorization
// without pivoting is numerically stable.
func Block(bs, i, j, nb int, seed uint64) []float64 {
	r := NewRNG(seed).Split(uint64(i)*uint64(nb) + uint64(j))
	b := make([]float64, bs*bs)
	for k := range b {
		b[k] = 2*r.Float64() - 1
	}
	if i == j {
		for d := 0; d < bs; d++ {
			b[d*bs+d] += float64(2 * bs) // diagonal dominance
		}
	}
	return b
}
