package inputs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file implements the text input-file formats of the original
// suite's style, so users can feed their own data sets instead of the
// synthetic generators: protein sets for Alignment (FASTA), cell sets
// for Floorplan (the AKM-style counted format), and parameter files
// for Health. Writers are provided so the synthetic inputs can be
// dumped, inspected and edited.

// ReadProteins parses a FASTA-style protein set: lines beginning with
// '>' start a new (named) sequence, other lines append residues;
// blank lines and spaces are ignored. Residues must come from the
// standard 20-letter amino-acid alphabet (case-insensitive).
func ReadProteins(r io.Reader) ([][]byte, error) {
	const alphabet = "ARNDCQEGHILKMFPSTWYV"
	valid := [256]bool{}
	for _, c := range alphabet {
		valid[c] = true
		valid[c+'a'-'A'] = true
	}
	var seqs [][]byte
	var cur []byte
	flush := func() {
		if cur != nil {
			seqs = append(seqs, cur)
			cur = nil
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '>' {
			flush()
			cur = []byte{}
			continue
		}
		if cur == nil {
			cur = []byte{}
		}
		for _, c := range []byte(text) {
			if c == ' ' || c == '\t' {
				continue
			}
			if !valid[c] {
				return nil, fmt.Errorf("inputs: line %d: invalid residue %q", line, c)
			}
			if c >= 'a' {
				c -= 'a' - 'A'
			}
			cur = append(cur, c)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("inputs: reading proteins: %w", err)
	}
	flush()
	if len(seqs) == 0 {
		return nil, fmt.Errorf("inputs: no sequences in protein file")
	}
	for i, s := range seqs {
		if len(s) == 0 {
			return nil, fmt.Errorf("inputs: sequence %d is empty", i+1)
		}
	}
	return seqs, nil
}

// WriteProteins writes a protein set in the FASTA format accepted by
// ReadProteins.
func WriteProteins(w io.Writer, seqs [][]byte) error {
	bw := bufio.NewWriter(w)
	for i, s := range seqs {
		fmt.Fprintf(bw, ">seq%d\n", i+1)
		for off := 0; off < len(s); off += 60 {
			end := off + 60
			if end > len(s) {
				end = len(s)
			}
			bw.Write(s[off:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ReadFloorplanCells parses an AKM-style cell file: the first token
// is the cell count, then for each cell the number of alternative
// shapes followed by that many "width height" pairs. '#' starts a
// comment to end of line.
func ReadFloorplanCells(r io.Reader) ([]Cell, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	next := func() (int, error) {
		if len(toks) == 0 {
			return 0, fmt.Errorf("inputs: floorplan file truncated")
		}
		var v int
		if _, err := fmt.Sscanf(toks[0], "%d", &v); err != nil {
			return 0, fmt.Errorf("inputs: floorplan file: bad number %q", toks[0])
		}
		toks = toks[1:]
		return v, nil
	}
	n, err := next()
	if err != nil {
		return nil, err
	}
	if n <= 0 || n > 64 {
		return nil, fmt.Errorf("inputs: floorplan cell count %d out of range (1..64)", n)
	}
	cells := make([]Cell, n)
	for i := range cells {
		k, err := next()
		if err != nil {
			return nil, err
		}
		if k <= 0 || k > 16 {
			return nil, fmt.Errorf("inputs: cell %d has %d alternatives (want 1..16)", i+1, k)
		}
		for a := 0; a < k; a++ {
			w, err := next()
			if err != nil {
				return nil, err
			}
			h, err := next()
			if err != nil {
				return nil, err
			}
			if w <= 0 || h <= 0 {
				return nil, fmt.Errorf("inputs: cell %d alternative %d has degenerate shape %d×%d", i+1, a+1, w, h)
			}
			cells[i].Alts = append(cells[i].Alts, [2]int{w, h})
		}
	}
	if len(toks) != 0 {
		return nil, fmt.Errorf("inputs: floorplan file has %d trailing tokens", len(toks))
	}
	return cells, nil
}

// WriteFloorplanCells writes cells in the format accepted by
// ReadFloorplanCells.
func WriteFloorplanCells(w io.Writer, cells []Cell) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", len(cells))
	for i, c := range cells {
		fmt.Fprintf(bw, "# cell %d\n%d\n", i+1, len(c.Alts))
		for _, a := range c.Alts {
			fmt.Fprintf(bw, "%d %d\n", a[0], a[1])
		}
	}
	return bw.Flush()
}

// HealthParams is the parameter set of a Health simulation input
// file.
type HealthParams struct {
	Levels    int
	Branching int
	Steps     int
	Seed      uint64
}

// ReadHealthParams parses a Health parameter file: "key value" lines
// with keys levels, branching, steps, seed; '#' comments allowed.
func ReadHealthParams(r io.Reader) (HealthParams, error) {
	p := HealthParams{Seed: 1}
	sc := bufio.NewScanner(r)
	line := 0
	seen := map[string]bool{}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(stripComment(sc.Text()))
		if text == "" {
			continue
		}
		var key string
		var val uint64
		if _, err := fmt.Sscanf(text, "%s %d", &key, &val); err != nil {
			return p, fmt.Errorf("inputs: health file line %d: %q", line, text)
		}
		seen[key] = true
		switch key {
		case "levels":
			p.Levels = int(val)
		case "branching":
			p.Branching = int(val)
		case "steps":
			p.Steps = int(val)
		case "seed":
			p.Seed = val
		default:
			return p, fmt.Errorf("inputs: health file line %d: unknown key %q", line, key)
		}
	}
	if err := sc.Err(); err != nil {
		return p, err
	}
	for _, k := range []string{"levels", "branching", "steps"} {
		if !seen[k] {
			return p, fmt.Errorf("inputs: health file missing %q", k)
		}
	}
	if p.Levels < 1 || p.Levels > 10 || p.Branching < 1 || p.Branching > 8 || p.Steps < 1 {
		return p, fmt.Errorf("inputs: health parameters out of range: %+v", p)
	}
	return p, nil
}

// WriteHealthParams writes a parameter file accepted by
// ReadHealthParams.
func WriteHealthParams(w io.Writer, p HealthParams) error {
	_, err := fmt.Fprintf(w, "# health simulation parameters\nlevels %d\nbranching %d\nsteps %d\nseed %d\n",
		p.Levels, p.Branching, p.Steps, p.Seed)
	return err
}

func stripComment(s string) string {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		return s[:i]
	}
	return s
}

func tokenize(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	var toks []string
	for sc.Scan() {
		toks = append(toks, strings.Fields(stripComment(sc.Text()))...)
	}
	return toks, sc.Err()
}
