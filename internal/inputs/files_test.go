package inputs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestProteinsRoundTrip(t *testing.T) {
	orig := Proteins(12, 5, 120, 77)
	var buf bytes.Buffer
	if err := WriteProteins(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProteins(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("protein round trip changed sequences")
	}
}

func TestReadProteinsFormats(t *testing.T) {
	in := `
>first
ARND CQEG
hilk
>second
MFPSTWYV
`
	seqs, err := ReadProteins(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d sequences, want 2", len(seqs))
	}
	if string(seqs[0]) != "ARNDCQEGHILK" {
		t.Fatalf("seq1 = %q (whitespace/case folding broken)", seqs[0])
	}
	if string(seqs[1]) != "MFPSTWYV" {
		t.Fatalf("seq2 = %q", seqs[1])
	}
}

func TestReadProteinsErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"invalid residue": ">a\nARNDX\n",
		"empty sequence":  ">a\n>b\nARND\n",
	}
	for name, in := range cases {
		if _, err := ReadProteins(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadProteins should fail", name)
		}
	}
}

func TestFloorplanCellsRoundTrip(t *testing.T) {
	orig := FloorplanCells(9, 5, 42)
	var buf bytes.Buffer
	if err := WriteFloorplanCells(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFloorplanCells(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("floorplan round trip changed cells")
	}
}

func TestReadFloorplanCellsWithComments(t *testing.T) {
	in := `
2          # two cells
1          # one alternative
3 4
2          # two alternatives
1 2
2 1
`
	cells, err := ReadFloorplanCells(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || len(cells[0].Alts) != 1 || len(cells[1].Alts) != 2 {
		t.Fatalf("parsed %+v", cells)
	}
	if cells[0].Alts[0] != [2]int{3, 4} {
		t.Fatalf("cell 1 = %v", cells[0].Alts)
	}
}

func TestReadFloorplanCellsErrors(t *testing.T) {
	cases := map[string]string{
		"truncated":   "3\n1\n2 2\n",
		"zero shape":  "1\n1\n0 4\n",
		"bad token":   "1\n1\nx y\n",
		"trailing":    "1\n1\n2 2\n99\n",
		"silly count": "9999\n",
	}
	for name, in := range cases {
		if _, err := ReadFloorplanCells(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadFloorplanCells should fail", name)
		}
	}
}

func TestHealthParamsRoundTrip(t *testing.T) {
	orig := HealthParams{Levels: 5, Branching: 4, Steps: 120, Seed: 99}
	var buf bytes.Buffer
	if err := WriteHealthParams(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHealthParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip: %+v != %+v", got, orig)
	}
}

func TestReadHealthParamsErrors(t *testing.T) {
	cases := map[string]string{
		"missing key": "levels 3\nbranching 4\n",
		"unknown key": "levels 3\nbranching 4\nsteps 5\nbogus 1\n",
		"range":       "levels 99\nbranching 4\nsteps 5\n",
		"garbage":     "levels three\n",
	}
	for name, in := range cases {
		if _, err := ReadHealthParams(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadHealthParams should fail", name)
		}
	}
}

func TestHealthParamsDefaultsSeed(t *testing.T) {
	p, err := ReadHealthParams(strings.NewReader("levels 3\nbranching 2\nsteps 10\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 1 {
		t.Fatalf("default seed = %d, want 1", p.Seed)
	}
}
