package inputs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds must produce equal streams")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	s1b := NewRNG(7).Split(1)
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s1b.Uint64() {
			t.Fatal("Split must be deterministic in (seed, stream)")
		}
	}
	// Split must not disturb the parent stream.
	r1, r2 := NewRNG(7), NewRNG(7)
	r2.Split(99)
	for i := 0; i < 100; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("Split must not advance the parent generator")
		}
	}
	_ = s2
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %v, want ≈ 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(2)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn never produced %d in 1000 draws", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(3)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", f)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint32) bool {
		r := NewRNG(uint64(seed))
		p := r.Perm(30)
		seen := make([]bool, 30)
		for _, v := range p {
			if v < 0 || v >= 30 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProteinsShape(t *testing.T) {
	seqs := Proteins(20, 10, 50, 9)
	if len(seqs) != 20 {
		t.Fatalf("got %d sequences", len(seqs))
	}
	lens := map[int]bool{}
	for _, s := range seqs {
		if len(s) < 10 || len(s) > 50 {
			t.Fatalf("sequence length %d outside [10,50]", len(s))
		}
		lens[len(s)] = true
		for _, c := range s {
			if c < 'A' || c > 'Z' {
				t.Fatalf("non-letter residue %q", c)
			}
		}
	}
	if len(lens) < 5 {
		t.Fatal("sequence lengths should vary (imbalance across pair tasks)")
	}
	again := Proteins(20, 10, 50, 9)
	for i := range seqs {
		if string(seqs[i]) != string(again[i]) {
			t.Fatal("Proteins must be deterministic in the seed")
		}
	}
}

func TestFloorplanCellsValid(t *testing.T) {
	cells := FloorplanCells(15, 6, 11)
	if len(cells) != 15 {
		t.Fatalf("got %d cells", len(cells))
	}
	for i, c := range cells {
		if len(c.Alts) == 0 {
			t.Fatalf("cell %d has no alternatives", i)
		}
		for _, a := range c.Alts {
			if a[0] < 1 || a[1] < 1 || a[0] > 12 || a[1] > 12 {
				t.Fatalf("cell %d has degenerate shape %v", i, a)
			}
		}
	}
}

func TestSparsePatternProperties(t *testing.T) {
	nb := 16
	p := SparsePattern(nb, 5)
	var filled int
	for i := 0; i < nb; i++ {
		if !p[i*nb+i] {
			t.Fatalf("diagonal block (%d,%d) must be present", i, i)
		}
		for j := 0; j < nb; j++ {
			if p[i*nb+j] {
				filled++
			}
		}
	}
	density := float64(filled) / float64(nb*nb)
	if density < 0.2 || density > 0.9 {
		t.Fatalf("pattern density = %v, want sparse but non-trivial", density)
	}
}

func TestBlockDiagonalDominance(t *testing.T) {
	bs := 8
	b := Block(bs, 3, 3, 16, 7)
	for i := 0; i < bs; i++ {
		var off float64
		for j := 0; j < bs; j++ {
			if i != j {
				off += math.Abs(b[i*bs+j])
			}
		}
		if math.Abs(b[i*bs+i]) <= off {
			t.Fatalf("diagonal block row %d not dominant: |d|=%v off=%v",
				i, math.Abs(b[i*bs+i]), off)
		}
	}
}

func TestInts32AndComplexAndMatrixDeterminism(t *testing.T) {
	if a, b := Ints32(100, 1), Ints32(100, 1); a[50] != b[50] {
		t.Fatal("Ints32 not deterministic")
	}
	if a, b := ComplexVector(100, 1), ComplexVector(100, 1); a[50] != b[50] {
		t.Fatal("ComplexVector not deterministic")
	}
	if a, b := Matrix(10, 1), Matrix(10, 1); a[50] != b[50] {
		t.Fatal("Matrix not deterministic")
	}
	m := Matrix(10, 1)
	for _, v := range m {
		if v < -1 || v >= 1 {
			t.Fatalf("Matrix entry %v outside [-1,1)", v)
		}
	}
}
