// Package inputs provides the deterministic pseudo-random generators
// and synthetic data sets used by the BOTS reproduction: protein
// sequences for Alignment, cell sets for Floorplan, village-hierarchy
// parameters for Health, vectors and matrices for FFT/Sort/SparseLU/
// Strassen. Everything is seeded, so every input class is
// reproducible bit-for-bit across runs and platforms — the property
// the paper's self-verification methodology depends on.
package inputs

// RNG is a small, fast, deterministic PRNG (splitmix64 for seeding,
// xoshiro256** for the stream). It deliberately avoids math/rand so
// that sequences are stable across Go releases, and it is the
// mechanism behind the paper's per-village seeding fix for Health's
// indeterminism (§III-B): any subcomponent can derive its own
// independent deterministic stream.
type RNG struct {
	s [4]uint64
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

// Split derives an independent generator from this one's seed space
// and the given stream index, without disturbing this generator's
// state. Equal (seed, stream) pairs always produce equal generators.
func (r *RNG) Split(stream uint64) *RNG {
	x := r.s[0] ^ (stream * 0xd1342543de82ef95)
	return NewRNG(splitmix64(&x))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("inputs: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int31 returns a non-negative 31-bit integer.
func (r *RNG) Int31() int32 {
	return int32(r.Uint64() >> 33)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
