package knapsack

import "testing"

func BenchmarkSeqBranchAndBound(b *testing.B) {
	items, capacity := GenItems(22, inputSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Seq(items, capacity)
	}
}

func BenchmarkSeqDP(b *testing.B) {
	items, capacity := GenItems(22, inputSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SeqDP(items, capacity)
	}
}
