// Package knapsack implements the 0/1 knapsack branch-and-bound
// benchmark from the Cilk distribution — part of the task-benchmark
// lineage the BOTS paper builds on (its Intel Task Queues / Cilk
// related work) and a natural extension benchmark for the suite: at
// every node the search either includes or excludes the next item,
// pruning with the fractional (linear-relaxation) bound against the
// best value found so far. Like Floorplan, the pruning makes the
// visited-node count scheduling-dependent, so the benchmark verifies
// the optimal value and reports nodes visited as its metric.
package knapsack

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"bots/internal/core"
	"bots/internal/inputs"
	"bots/internal/omp"
)

const inputSeed = 0x6A95AC50

// Item is one knapsack item.
type Item struct {
	Weight, Value int
}

// itemCount and capacity factor per class.
var classItems = map[core.Class]int{
	core.Test:   20,
	core.Small:  26,
	core.Medium: 30,
	core.Large:  34,
}

// DefaultCutoffDepth bounds task creation in the if/manual versions.
const DefaultCutoffDepth = 8

const capturedBytes = 32 // depth, weight, value, best pointer

// GenItems generates n items with correlated weights/values (the hard
// regime for knapsack) and returns them sorted by value density, as
// the bound requires.
func GenItems(n int, seed uint64) ([]Item, int) {
	r := inputs.NewRNG(seed)
	items := make([]Item, n)
	totalW := 0
	for i := range items {
		w := 10 + r.Intn(90)
		items[i] = Item{Weight: w, Value: w + r.Intn(21) - 10}
		if items[i].Value < 1 {
			items[i].Value = 1
		}
		totalW += w
	}
	sort.Slice(items, func(i, j int) bool {
		return items[i].Value*items[j].Weight > items[j].Value*items[i].Weight
	})
	return items, totalW / 2 // capacity: half the total weight
}

// bound computes the fractional upper bound for a node that has
// already packed (value, weight) and may still use items[idx:].
func bound(items []Item, idx, capacity, weight, value int) float64 {
	b := float64(value)
	room := capacity - weight
	for _, it := range items[idx:] {
		if it.Weight <= room {
			room -= it.Weight
			b += float64(it.Value)
		} else {
			b += float64(it.Value) * float64(room) / float64(it.Weight)
			break
		}
	}
	return b
}

// shared is the cross-task search state.
type shared struct {
	items    []Item
	capacity int
	best     atomic.Int64
}

// explore visits one node; spawn (when non-nil) may take over a
// branch as a task and returns true if it did.
func explore(sh *shared, idx, weight, value int, nodes *int64,
	spawn func(idx, weight, value int) bool) {
	*nodes++
	if int64(value) > sh.best.Load() {
		for {
			cur := sh.best.Load()
			if int64(value) <= cur || sh.best.CompareAndSwap(cur, int64(value)) {
				break
			}
		}
	}
	if idx == len(sh.items) {
		return
	}
	if bound(sh.items, idx, sh.capacity, weight, value) <= float64(sh.best.Load()) {
		return // prune: even the fractional relaxation cannot win
	}
	it := sh.items[idx]
	if weight+it.Weight <= sh.capacity {
		if spawn == nil || !spawn(idx+1, weight+it.Weight, value+it.Value) {
			explore(sh, idx+1, weight+it.Weight, value+it.Value, nodes, spawn)
		}
	}
	if spawn == nil || !spawn(idx+1, weight, value) {
		explore(sh, idx+1, weight, value, nodes, spawn)
	}
}

// Seq solves the instance sequentially; returns best value and nodes.
func Seq(items []Item, capacity int) (best, nodes int64) {
	sh := &shared{items: items, capacity: capacity}
	var n int64
	explore(sh, 0, 0, 0, &n, nil)
	return sh.best.Load(), n
}

// SeqDP solves the instance with dynamic programming — the exact
// oracle used to validate the branch-and-bound.
func SeqDP(items []Item, capacity int) int64 {
	dp := make([]int64, capacity+1)
	for _, it := range items {
		for w := capacity; w >= it.Weight; w-- {
			if v := dp[w-it.Weight] + int64(it.Value); v > dp[w] {
				dp[w] = v
			}
		}
	}
	return dp[capacity]
}

func taskOpts(variant core.Variant, extra omp.TaskOpt) []omp.TaskOpt {
	opts := []omp.TaskOpt{omp.Captured(capturedBytes)}
	if variant.Untied {
		opts = append(opts, omp.Untied())
	}
	if extra != nil {
		opts = append(opts, extra)
	}
	return opts
}

// parExplore is the task-parallel search.
func parExplore(c *omp.Context, sh *shared, idx, weight, value, cutoff int,
	variant core.Variant, nodes *omp.ThreadPrivate[int64]) {
	var local int64
	spawn := func(ni, nw, nv int) bool {
		depth := ni
		body := func(c *omp.Context) { parExplore(c, sh, ni, nw, nv, cutoff, variant, nodes) }
		switch variant.Cutoff {
		case "manual":
			if depth >= cutoff {
				return false
			}
			c.Task(body, taskOpts(variant, nil)...)
		case "if":
			c.Task(body, taskOpts(variant, omp.If(depth < cutoff))...)
		default:
			c.Task(body, taskOpts(variant, nil)...)
		}
		return true
	}
	explore(sh, idx, weight, value, &local, spawn)
	c.AddWork(local * int64(len(sh.items)/4+1))
	c.AddWrites(local, local/8)
	*nodes.Get(c) += local
	c.Taskwait()
}

func digest(best int64) string { return fmt.Sprintf("knapsack-best=%d", best) }

func seqRun(class core.Class) (*core.SeqResult, error) {
	items, capacity := GenItems(classItems[class], inputSeed)
	start := time.Now()
	best, nodes := Seq(items, capacity)
	elapsed := time.Since(start)
	if oracle := SeqDP(items, capacity); best != oracle {
		return nil, fmt.Errorf("knapsack: branch-and-bound found %d, DP oracle says %d", best, oracle)
	}
	return &core.SeqResult{
		Digest:   digest(best),
		Work:     nodes * int64(len(items)/4+1),
		Metric:   float64(nodes),
		Elapsed:  elapsed,
		MemBytes: int64(len(items))*16 + int64(capacity)*8,
	}, nil
}

func parRun(cfg core.RunConfig) (*core.RunResult, error) {
	variant, err := core.ParseVersion(cfg.Version)
	if err != nil {
		return nil, err
	}
	items, capacity := GenItems(classItems[cfg.Class], inputSeed)
	cutoff := cfg.CutoffDepth
	if cutoff <= 0 {
		cutoff = DefaultCutoffDepth
	}
	sh := &shared{items: items, capacity: capacity}
	nodes := omp.NewThreadPrivate[int64](cfg.Threads)
	start := time.Now()
	st := omp.Parallel(cfg.Threads, func(c *omp.Context) {
		c.Single(func(c *omp.Context) {
			parExplore(c, sh, 0, 0, 0, cutoff, variant, nodes)
		})
	}, cfg.TeamOpts()...)
	elapsed := time.Since(start)
	var total int64
	for i := 0; i < nodes.Len(); i++ {
		total += *nodes.Slot(i)
	}
	return &core.RunResult{
		Digest:  digest(sh.best.Load()),
		Metric:  float64(total),
		Stats:   st,
		Elapsed: elapsed,
	}, nil
}

func init() {
	core.Register(&core.Benchmark{
		Name:           "knapsack",
		Origin:         "Cilk",
		Domain:         "Optimization",
		Structure:      "At each node",
		TaskDirectives: 2,
		TasksInside:    "single",
		NestedTasks:    true,
		AppCutoff:      "depth-based",
		Extension:      true,
		Versions:       core.CutoffVersions(),
		BestVersion:    "manual-untied",
		Profile:        core.Profile{MemFraction: 0.05, BandwidthCap: 32},
		Seq:            seqRun,
		Run:            parRun,
		Verify: func(seq *core.SeqResult, par *core.RunResult) error {
			if seq.Digest != par.Digest {
				return fmt.Errorf("knapsack: optimal value mismatch: %s vs %s", par.Digest, seq.Digest)
			}
			if par.Metric <= 0 {
				return fmt.Errorf("knapsack: no nodes visited")
			}
			return nil
		},
	})
}
