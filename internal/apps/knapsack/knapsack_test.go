package knapsack

import (
	"testing"
	"testing/quick"

	"bots/internal/core"
)

func TestBranchAndBoundMatchesDP(t *testing.T) {
	f := func(seed uint16) bool {
		items, capacity := GenItems(14, uint64(seed)+1)
		bb, _ := Seq(items, capacity)
		return bb == SeqDP(items, capacity)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundIsAdmissible(t *testing.T) {
	// The fractional bound must never underestimate the best integral
	// completion: check at the root for many instances.
	f := func(seed uint16) bool {
		items, capacity := GenItems(12, uint64(seed)+3)
		opt := SeqDP(items, capacity)
		return bound(items, 0, capacity, 0, 0) >= float64(opt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestItemsSortedByDensity(t *testing.T) {
	items, _ := GenItems(40, 5)
	for i := 1; i < len(items); i++ {
		// density[i-1] >= density[i] (cross-multiplied)
		if items[i-1].Value*items[i].Weight < items[i].Value*items[i-1].Weight {
			t.Fatalf("items not sorted by value density at %d", i)
		}
	}
}

func TestPruningHappens(t *testing.T) {
	items, capacity := GenItems(22, 9)
	_, nodes := Seq(items, capacity)
	if nodes >= 1<<22 {
		t.Fatalf("visited %d nodes of a 2^22-node tree: pruning is not working", nodes)
	}
}

func TestAllVersionsFindOptimum(t *testing.T) {
	b, err := core.Get("knapsack")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range b.Versions {
		for _, threads := range []int{1, 4} {
			res, err := b.Run(core.RunConfig{Class: core.Test, Version: version, Threads: threads})
			if err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
			if err := b.Check(seq, res); err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
		}
	}
}

func TestZeroCapacity(t *testing.T) {
	items := []Item{{10, 5}, {3, 8}}
	best, _ := Seq(items, 0)
	if best != 0 {
		t.Fatalf("zero capacity best = %d, want 0", best)
	}
	if SeqDP(items, 0) != 0 {
		t.Fatal("DP zero capacity should be 0")
	}
}

func TestSingleItemFits(t *testing.T) {
	items := []Item{{5, 7}}
	best, _ := Seq(items, 5)
	if best != 7 {
		t.Fatalf("best = %d, want 7", best)
	}
}
