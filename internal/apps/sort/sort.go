// Package sort implements the BOTS Sort benchmark (Cilk's cilksort):
// a random permutation of 32-bit integers is sorted by a parallel
// mergesort whose merge step is itself a parallel divide-and-conquer
// (binary-search split), rather than the conventional serial merge.
// Small subarrays fall back to a sequential quicksort, and arrays
// below a 20-element threshold to insertion sort, exactly as the
// paper describes. Tasks are created at the leaves of the recursion.
package sort

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"time"

	"bots/internal/core"
	"bots/internal/inputs"
	"bots/internal/omp"
)

// Thresholds of the cilksort decomposition.
const (
	// quickThreshold is the subarray size below which the parallel
	// sort falls back to sequential quicksort.
	quickThreshold = 1024
	// mergeThreshold is the merge size below which the parallel merge
	// falls back to a sequential merge.
	mergeThreshold = 1024
	// insertionThreshold is the size below which quicksort falls back
	// to insertion sort ("below a threshold of 20 elements").
	insertionThreshold = 20
)

const inputSeed = 0xB0757051

var classN = map[core.Class]int{
	core.Test:   1 << 14,
	core.Small:  1 << 18,
	core.Medium: 1 << 21,
	core.Large:  1 << 23,
}

// capturedBytes approximates the environment captured per task: two
// or three slice headers.
const capturedBytes = 48

// insertionSort sorts a in place.
func insertionSort(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// seqQuick is the sequential quicksort with median-of-three pivoting
// and insertion sort below the threshold.
func seqQuick(a []int32) {
	for len(a) > insertionThreshold {
		lo, hi := 0, len(a)-1
		mid := lo + (hi-lo)/2
		// Median-of-three.
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		// Recurse on the smaller side, loop on the larger.
		if j-lo < hi-i {
			seqQuick(a[lo : j+1])
			a = a[i:]
		} else {
			seqQuick(a[i:])
			a = a[lo : j+1]
		}
	}
	insertionSort(a)
}

// seqMerge merges sorted a and b into dest (len(dest) == len(a)+len(b)).
func seqMerge(a, b, dest []int32) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dest[k] = a[i]
			i++
		} else {
			dest[k] = b[j]
			j++
		}
		k++
	}
	k += copy(dest[k:], a[i:])
	copy(dest[k:], b[j:])
}

// binSplit returns the index of the first element of a greater than
// or equal to v (lower bound).
func binSplit(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// workQuick estimates quicksort work in element-operations.
func workQuick(n int) int64 {
	if n <= 1 {
		return 1
	}
	return int64(n) * int64(bits.Len(uint(n)))
}

// parMerge merges sorted a and b into dest with the Cilk
// divide-and-conquer scheme: split the larger array at its middle,
// binary-search the split value in the smaller one, and merge the two
// halves as tasks.
func parMerge(c *omp.Context, a, b, dest []int32, untied bool) {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(a)+len(b) <= mergeThreshold {
		seqMerge(a, b, dest)
		c.AddWork(int64(len(dest)))
		c.AddWrites(0, int64(len(dest))) // merge writes land in the shared destination
		return
	}
	if len(b) == 0 {
		copy(dest, a)
		c.AddWork(int64(len(a)))
		c.AddWrites(0, int64(len(a)))
		return
	}
	ha := len(a) / 2
	hb := binSplit(b, a[ha])
	c.AddWork(int64(bits.Len(uint(len(b))) + 1))
	opts := taskOpts(untied)
	c.Task(func(c *omp.Context) {
		parMerge(c, a[:ha], b[:hb], dest[:ha+hb], untied)
	}, opts...)
	c.Task(func(c *omp.Context) {
		parMerge(c, a[ha:], b[hb:], dest[ha+hb:], untied)
	}, opts...)
	c.Taskwait()
}

// parSort sorts a using tmp as scratch, with the cilksort 4-way
// decomposition.
func parSort(c *omp.Context, a, tmp []int32, untied bool) {
	n := len(a)
	if n <= quickThreshold {
		seqQuick(a)
		c.AddWork(workQuick(n))
		c.AddWrites(int64(n), 0) // in-place, task-local segment
		return
	}
	q1, q2, q3 := n/4, n/2, 3*(n/4)
	opts := taskOpts(untied)
	c.Task(func(c *omp.Context) { parSort(c, a[:q1], tmp[:q1], untied) }, opts...)
	c.Task(func(c *omp.Context) { parSort(c, a[q1:q2], tmp[q1:q2], untied) }, opts...)
	c.Task(func(c *omp.Context) { parSort(c, a[q2:q3], tmp[q2:q3], untied) }, opts...)
	c.Task(func(c *omp.Context) { parSort(c, a[q3:], tmp[q3:], untied) }, opts...)
	c.Taskwait()
	c.Task(func(c *omp.Context) { parMerge(c, a[:q1], a[q1:q2], tmp[:q2], untied) }, opts...)
	c.Task(func(c *omp.Context) { parMerge(c, a[q2:q3], a[q3:], tmp[q2:], untied) }, opts...)
	c.Taskwait()
	parMerge(c, tmp[:q2], tmp[q2:], a, untied)
}

func taskOpts(untied bool) []omp.TaskOpt {
	opts := []omp.TaskOpt{omp.Captured(capturedBytes)}
	if untied {
		opts = append(opts, omp.Untied())
	}
	return opts
}

// digest hashes the array contents.
func digest(a []int32) string {
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range a {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// isSorted reports whether a is non-decreasing.
func isSorted(a []int32) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			return false
		}
	}
	return true
}

func seqRun(class core.Class) (*core.SeqResult, error) {
	n := classN[class]
	a := inputs.Ints32(n, inputSeed)
	start := time.Now()
	seqQuick(a)
	elapsed := time.Since(start)
	if !isSorted(a) {
		return nil, fmt.Errorf("sort: sequential output not sorted")
	}
	return &core.SeqResult{
		Digest:   digest(a),
		Work:     workQuick(n) + 2*int64(n), // sort + the merge passes the parallel version performs
		Elapsed:  elapsed,
		MemBytes: int64(n) * 8, // array + scratch
	}, nil
}

func parRun(cfg core.RunConfig) (*core.RunResult, error) {
	variant, err := core.ParseVersion(cfg.Version)
	if err != nil {
		return nil, err
	}
	n := classN[cfg.Class]
	a := inputs.Ints32(n, inputSeed)
	tmp := make([]int32, n)
	start := time.Now()
	st := omp.Parallel(cfg.Threads, func(c *omp.Context) {
		c.Single(func(c *omp.Context) {
			c.Task(func(c *omp.Context) { parSort(c, a, tmp, variant.Untied) }, taskOpts(variant.Untied)...)
		})
	}, cfg.TeamOpts()...)
	elapsed := time.Since(start)
	if !isSorted(a) {
		return nil, fmt.Errorf("sort: parallel output not sorted (version %s)", cfg.Version)
	}
	return &core.RunResult{Digest: digest(a), Stats: st, Elapsed: elapsed}, nil
}

func init() {
	core.Register(&core.Benchmark{
		Name:           "sort",
		Origin:         "Cilk",
		Domain:         "Integer sorting",
		Structure:      "At leafs",
		TaskDirectives: 9,
		TasksInside:    "single",
		NestedTasks:    true,
		AppCutoff:      "none",
		Versions:       core.PlainVersions(),
		BestVersion:    "untied",
		Profile:        core.Profile{MemFraction: 0.55, BandwidthCap: 8},
		Seq:            seqRun,
		Run:            parRun,
	})
}
