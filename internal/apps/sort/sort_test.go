package sort

import (
	gosort "sort"
	"testing"
	"testing/quick"

	"bots/internal/core"
	"bots/internal/inputs"
	"bots/internal/omp"
)

func TestInsertionSortSmall(t *testing.T) {
	a := []int32{5, 2, 9, 1, 5, 6, 0, -3}
	insertionSort(a)
	if !isSorted(a) {
		t.Fatalf("not sorted: %v", a)
	}
}

func TestSeqQuickMatchesStdlib(t *testing.T) {
	f := func(vals []int32) bool {
		mine := append([]int32(nil), vals...)
		ref := append([]int32(nil), vals...)
		seqQuick(mine)
		gosort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		if len(mine) != len(ref) {
			return false
		}
		for i := range mine {
			if mine[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqMergeProperty(t *testing.T) {
	f := func(x, y []int32) bool {
		gosort.Slice(x, func(i, j int) bool { return x[i] < x[j] })
		gosort.Slice(y, func(i, j int) bool { return y[i] < y[j] })
		dest := make([]int32, len(x)+len(y))
		seqMerge(x, y, dest)
		return isSorted(dest)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinSplitLowerBound(t *testing.T) {
	a := []int32{1, 3, 3, 5, 7}
	cases := []struct {
		v    int32
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 3}, {7, 4}, {8, 5}}
	for _, tc := range cases {
		if got := binSplit(a, tc.v); got != tc.want {
			t.Errorf("binSplit(%v, %d) = %d, want %d", a, tc.v, got, tc.want)
		}
	}
}

func TestParMergeLargeArrays(t *testing.T) {
	a := inputs.Ints32(40000, 1)
	b := inputs.Ints32(30000, 2)
	seqQuick(a)
	seqQuick(b)
	dest := make([]int32, len(a)+len(b))
	omp.Parallel(4, func(c *omp.Context) {
		c.Single(func(c *omp.Context) {
			parMerge(c, a, b, dest, false)
		})
	})
	if !isSorted(dest) {
		t.Fatal("parallel merge output not sorted")
	}
}

func TestParallelVersionsVerify(t *testing.T) {
	b, err := core.Get("sort")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range b.Versions {
		for _, threads := range []int{1, 3, 8} {
			res, err := b.Run(core.RunConfig{Class: core.Test, Version: version, Threads: threads})
			if err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
			if err := b.Check(seq, res); err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
			if res.Stats.TotalTasks() == 0 {
				t.Fatalf("%s/%d: no tasks created", version, threads)
			}
		}
	}
}

func TestDigestDetectsCorruption(t *testing.T) {
	a := inputs.Ints32(1000, 3)
	d1 := digest(a)
	a[500]++
	if digest(a) == d1 {
		t.Fatal("digest should change when the array changes")
	}
}

func TestSortedInputIsHandled(t *testing.T) {
	a := make([]int32, 5000)
	for i := range a {
		a[i] = int32(i)
	}
	seqQuick(a) // already sorted: exercises pivot pathology path
	if !isSorted(a) {
		t.Fatal("sorted input broken")
	}
	for i := range a {
		a[i] = int32(len(a) - i) // reverse order
	}
	seqQuick(a)
	if !isSorted(a) {
		t.Fatal("reverse input broken")
	}
}
