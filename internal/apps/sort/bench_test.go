package sort

import (
	"testing"

	"bots/internal/inputs"
)

func BenchmarkSeqQuick(b *testing.B) {
	src := inputs.Ints32(1<<16, 1)
	buf := make([]int32, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		seqQuick(buf)
	}
}

func BenchmarkSeqMerge(b *testing.B) {
	x := inputs.Ints32(1<<15, 2)
	y := inputs.Ints32(1<<15, 3)
	seqQuick(x)
	seqQuick(y)
	dest := make([]int32, len(x)+len(y))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seqMerge(x, y, dest)
	}
}

func BenchmarkInsertionSort(b *testing.B) {
	src := inputs.Ints32(insertionThreshold, 4)
	buf := make([]int32, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		insertionSort(buf)
	}
}
