// Package all registers every BOTS benchmark with the core registry.
// Import it for side effects from binaries, benches and integration
// tests that need the full suite.
package all

import (
	_ "bots/internal/apps/alignment"
	_ "bots/internal/apps/fft"
	_ "bots/internal/apps/fib"
	_ "bots/internal/apps/floorplan"
	_ "bots/internal/apps/health"
	_ "bots/internal/apps/knapsack"
	_ "bots/internal/apps/nqueens"
	_ "bots/internal/apps/sort"
	_ "bots/internal/apps/sparselu"
	_ "bots/internal/apps/strassen"
	_ "bots/internal/apps/uts"
)
