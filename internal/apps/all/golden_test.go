package all

import (
	"testing"

	"bots/internal/core"
)

// goldenDigests pins the sequential test-class digest of every
// benchmark. The suite's inputs and algorithms are fully
// deterministic (seeded generators, fixed decompositions), so any
// change here means an algorithmic change — intended ones must update
// the table consciously; unintended ones are regressions that plain
// verification (parallel-vs-sequential) cannot catch because both
// sides drift together.
var goldenDigests = map[string]string{
	"alignment": "dd2922c3b939934a",
	"fft":       "e0d3cf434ddc37f1",
	"fib":       "fib(16)=987",
	"floorplan": "minarea=108",
	"health":    "patients=537 treated=338 wait=676 hospitals=399 open=106/52/41",
	"knapsack":  "knapsack-best=561",
	"nqueens":   "nqueens(8)=92",
	"sort":      "f772d5f21614d924",
	"sparselu":  "d43efa975f3cf08c",
	"strassen":  "242fc96166732c80",
	"uts":       "uts-nodes=905",
}

func TestGoldenDigests(t *testing.T) {
	bs := core.All()
	if len(bs) != len(goldenDigests) {
		t.Fatalf("registry has %d benchmarks, golden table has %d", len(bs), len(goldenDigests))
	}
	for _, b := range bs {
		want, ok := goldenDigests[b.Name]
		if !ok {
			t.Errorf("%s: missing golden digest", b.Name)
			continue
		}
		seq, err := b.Seq(core.Test)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if seq.Digest != want {
			t.Errorf("%s: digest drifted:\n got %s\nwant %s", b.Name, seq.Digest, want)
		}
	}
}
