package all

import (
	"testing"

	"bots/internal/core"
)

// TestSuiteComplete checks the registry holds exactly the nine BOTS
// paper applications plus the two post-paper extensions, with
// coherent metadata.
func TestSuiteComplete(t *testing.T) {
	wantPaper := []string{
		"alignment", "fft", "fib", "floorplan", "health",
		"nqueens", "sort", "sparselu", "strassen",
	}
	paper := core.Paper()
	if len(paper) != len(wantPaper) {
		t.Fatalf("paper set has %d benchmarks, want %d", len(paper), len(wantPaper))
	}
	for i, b := range paper {
		if b.Name != wantPaper[i] {
			t.Fatalf("paper benchmark %d = %q, want %q", i, b.Name, wantPaper[i])
		}
	}
	ext := core.Extensions()
	if len(ext) != 2 || ext[0].Name != "knapsack" || ext[1].Name != "uts" {
		t.Fatalf("extensions = %v, want [knapsack uts]", names(ext))
	}
	want := []string{
		"alignment", "fft", "fib", "floorplan", "health", "knapsack",
		"nqueens", "sort", "sparselu", "strassen", "uts",
	}
	got := core.All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d benchmarks, want %d", len(got), len(want))
	}
	for i, b := range got {
		if b.Name != want[i] {
			t.Fatalf("benchmark %d = %q, want %q", i, b.Name, want[i])
		}
		if b.Domain == "" || b.Structure == "" || b.TasksInside == "" || b.AppCutoff == "" {
			t.Errorf("%s: incomplete Table I metadata", b.Name)
		}
		if b.TaskDirectives <= 0 {
			t.Errorf("%s: TaskDirectives = %d", b.Name, b.TaskDirectives)
		}
		if !b.HasVersion(b.BestVersion) {
			t.Errorf("%s: best version %q not in version list", b.Name, b.BestVersion)
		}
		for _, v := range b.Versions {
			if _, err := core.ParseVersion(v); err != nil {
				t.Errorf("%s: unparseable version %q: %v", b.Name, v, err)
			}
		}
		if b.Profile.MemFraction < 0 || b.Profile.MemFraction > 1 {
			t.Errorf("%s: MemFraction %v out of [0,1]", b.Name, b.Profile.MemFraction)
		}
	}
}

func names(bs []*core.Benchmark) []string {
	var out []string
	for _, b := range bs {
		out = append(out, b.Name)
	}
	return out
}

// TestEveryBenchmarkEveryClassSeq smoke-runs the sequential reference
// of every benchmark on the test class.
func TestEveryBenchmarkEveryClassSeq(t *testing.T) {
	for _, b := range core.All() {
		seq, err := b.Seq(core.Test)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if seq.Digest == "" || seq.Work <= 0 {
			t.Fatalf("%s: empty sequential result %+v", b.Name, seq)
		}
		if seq.MemBytes <= 0 {
			t.Errorf("%s: MemBytes not estimated", b.Name)
		}
	}
}

// TestIntegrationBestVersions runs every benchmark's best version on
// 1 and 4 threads on the test class and verifies against the
// sequential reference — the suite's core self-verification loop.
func TestIntegrationBestVersions(t *testing.T) {
	for _, b := range core.All() {
		seq, err := b.Seq(core.Test)
		if err != nil {
			t.Fatalf("%s seq: %v", b.Name, err)
		}
		for _, threads := range []int{1, 4} {
			res, err := b.Run(core.RunConfig{Class: core.Test, Version: b.BestVersion, Threads: threads})
			if err != nil {
				t.Fatalf("%s/%s/%d: %v", b.Name, b.BestVersion, threads, err)
			}
			if err := b.Check(seq, res); err != nil {
				t.Fatalf("%s/%s/%d: %v", b.Name, b.BestVersion, threads, err)
			}
		}
	}
}

// TestSmallClassIntegration exercises the small class end-to-end on
// the best versions (slower; skipped in -short).
func TestSmallClassIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, b := range core.All() {
		seq, err := b.Seq(core.Small)
		if err != nil {
			t.Fatalf("%s seq: %v", b.Name, err)
		}
		res, err := b.Run(core.RunConfig{Class: core.Small, Version: b.BestVersion, Threads: 4})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := b.Check(seq, res); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}
}
