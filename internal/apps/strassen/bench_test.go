package strassen

import (
	"testing"

	"bots/internal/inputs"
)

func BenchmarkBaseMultiply(b *testing.B) {
	n := baseSize
	x := inputs.Matrix(n, 1)
	y := inputs.Matrix(n, 2)
	c := make([]float64, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zero(view{c, n}, n)
		matmulAdd(view{c, n}, view{x, n}, view{y, n}, n)
	}
}

func BenchmarkStrassenSeq256(b *testing.B) {
	x := inputs.Matrix(256, 1)
	y := inputs.Matrix(256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Seq(x, y, 256)
	}
}
