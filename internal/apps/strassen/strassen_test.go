package strassen

import (
	"math"
	"testing"

	"bots/internal/core"
	"bots/internal/inputs"
)

func TestSeqMatchesNaiveSmall(t *testing.T) {
	// 128 recurses once (base 64), so the Strassen path is exercised.
	for _, n := range []int{64, 128} {
		a := inputs.Matrix(n, 1)
		b := inputs.Matrix(n, 2)
		got, _ := Seq(a, b, n)
		want := Naive(a, b, n)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: c[%d] = %v, naive %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestIdentityMultiplication(t *testing.T) {
	n := 128
	a := inputs.Matrix(n, 3)
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	c, _ := Seq(a, id, n)
	for i := range a {
		if math.Abs(c[i]-a[i]) > 1e-12 {
			t.Fatalf("A·I diverges from A at %d: %v vs %v", i, c[i], a[i])
		}
	}
}

// TestFreivalds probabilistically verifies a large product: for
// random vector x, A(Bx) must equal (AB)x.
func TestFreivalds(t *testing.T) {
	n := 256
	a := inputs.Matrix(n, 4)
	b := inputs.Matrix(n, 5)
	c, _ := Seq(a, b, n)
	r := inputs.NewRNG(99)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64()
	}
	matVec := func(m []float64, v []float64) []float64 {
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			var s float64
			row := m[i*n : i*n+n]
			for j := 0; j < n; j++ {
				s += row[j] * v[j]
			}
			out[i] = s
		}
		return out
	}
	bx := matVec(b, x)
	abx := matVec(a, bx)
	cx := matVec(c, x)
	for i := range cx {
		if math.Abs(cx[i]-abx[i]) > 1e-6*float64(n) {
			t.Fatalf("Freivalds check failed at %d: %v vs %v", i, cx[i], abx[i])
		}
	}
}

func TestAllVersionsVerify(t *testing.T) {
	bm, err := core.Get("strassen")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := bm.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range bm.Versions {
		for _, threads := range []int{1, 4} {
			res, err := bm.Run(core.RunConfig{Class: core.Test, Version: version, Threads: threads})
			if err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
			// Identical decomposition ⇒ bit-identical result.
			if err := bm.Check(seq, res); err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
		}
	}
}

func TestWorkParity(t *testing.T) {
	bm, _ := core.Get("strassen")
	seq, err := bm.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"none-tied", "manual-untied", "if-tied"} {
		res, err := bm.Run(core.RunConfig{Class: core.Test, Version: v, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.WorkUnits != seq.Work {
			t.Fatalf("%s: work units %d != sequential %d", v, res.Stats.WorkUnits, seq.Work)
		}
	}
}

func TestManualCutoffTaskCount(t *testing.T) {
	bm, _ := core.Get("strassen")
	man, err := bm.Run(core.RunConfig{Class: core.Test, Version: "manual-tied", Threads: 2, CutoffDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 128→64 is one level: cut-off 1 defers only the first level's 7 tasks.
	if man.Stats.TotalTasks() != 7 {
		t.Fatalf("tasks at cut-off depth 1 on 128 = %d, want 7", man.Stats.TotalTasks())
	}
}

func TestViewSubIndexing(t *testing.T) {
	n := 4
	m := make([]float64, n*n)
	for i := range m {
		m[i] = float64(i)
	}
	v := view{m, n}
	q := v.sub(2, 2)
	if q.d[0] != float64(2*n+2) || q.d[q.ld+1] != float64(3*n+3) {
		t.Fatalf("sub(2,2) wrong: %v %v", q.d[0], q.d[q.ld+1])
	}
}

// TestFutureVersionUsesFutures checks the future-based versions go
// through Spawn/Wait: on the small class the recursion nests, so
// inner Waits must block (and execute other products meanwhile).
func TestFutureVersionUsesFutures(t *testing.T) {
	bm, _ := core.Get("strassen")
	seq, err := bm.Seq(core.Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range []string{"future-tied", "future-untied"} {
		res, err := bm.Run(core.RunConfig{Class: core.Small, Version: version, Threads: 4})
		if err != nil {
			t.Fatalf("%s: %v", version, err)
		}
		if err := bm.Check(seq, res); err != nil {
			t.Fatalf("%s: %v", version, err)
		}
		if res.Stats.FutureWaits == 0 {
			t.Errorf("%s: FutureWaits = 0, want > 0 (nested recursion must block on futures)", version)
		}
		if res.Stats.Taskwaits != 0 {
			t.Errorf("%s: Taskwaits = %d, want 0 (futures replace taskwait)", version, res.Stats.Taskwaits)
		}
		if res.Stats.WorkUnits != seq.Work {
			t.Errorf("%s: work %d != sequential %d", version, res.Stats.WorkUnits, seq.Work)
		}
	}
}
