// Package strassen implements the BOTS Strassen benchmark:
// multiplication of large dense matrices by Strassen's hierarchical
// decomposition. Each dimension is halved per level; the seven
// half-size products become tasks, and a depth-based cut-off (or
// none) bounds task creation. Below the base-case size a standard
// O(n³) multiply runs sequentially.
package strassen

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"bots/internal/core"
	"bots/internal/inputs"
	"bots/internal/omp"
)

const (
	inputSeedA = 0x57A55E11
	inputSeedB = 0x57A55E12
	// baseSize is the matrix dimension at which the recursion bottoms
	// out into a standard multiply.
	baseSize = 64
)

// DefaultCutoffDepth is the default recursion depth for the if/manual
// cut-off versions.
const DefaultCutoffDepth = 2

const capturedBytes = 88 // three matrix views + geometry

var classN = map[core.Class]int{
	core.Test:   128,
	core.Small:  256,
	core.Medium: 512,
	core.Large:  1024,
}

// view is an n×n submatrix of a row-major array with leading
// dimension ld.
type view struct {
	d  []float64
	ld int
}

func (v view) sub(i, j int) view {
	return view{d: v.d[i*v.ld+j:], ld: v.ld}
}

func newView(n int) view { return view{d: make([]float64, n*n), ld: n} }

// matmulAdd computes c += a·b (n×n) in i-k-j order.
func matmulAdd(c, a, b view, n int) {
	for i := 0; i < n; i++ {
		ci := c.d[i*c.ld : i*c.ld+n]
		for k := 0; k < n; k++ {
			aik := a.d[i*a.ld+k]
			bk := b.d[k*b.ld : k*b.ld+n]
			for j := 0; j < n; j++ {
				ci[j] += aik * bk[j]
			}
		}
	}
}

func zero(c view, n int) {
	for i := 0; i < n; i++ {
		row := c.d[i*c.ld : i*c.ld+n]
		for j := range row {
			row[j] = 0
		}
	}
}

// add computes dst = x + y; sub computes dst = x − y (n×n views).
func add(dst, x, y view, n int) {
	for i := 0; i < n; i++ {
		di, xi, yi := dst.d[i*dst.ld:i*dst.ld+n], x.d[i*x.ld:i*x.ld+n], y.d[i*y.ld:i*y.ld+n]
		for j := 0; j < n; j++ {
			di[j] = xi[j] + yi[j]
		}
	}
}

func sub(dst, x, y view, n int) {
	for i := 0; i < n; i++ {
		di, xi, yi := dst.d[i*dst.ld:i*dst.ld+n], x.d[i*x.ld:i*x.ld+n], y.d[i*y.ld:i*y.ld+n]
		for j := 0; j < n; j++ {
			di[j] = xi[j] - yi[j]
		}
	}
}

// env carries the execution mode through the recursion: a live omp
// context for parallel runs (work reported to the runtime) or a plain
// accumulator for sequential runs. Exactly one field is non-nil.
type env struct {
	ctx  *omp.Context
	work *int64
}

func (e env) addWork(n int64) {
	if e.ctx != nil {
		e.ctx.AddWork(n)
	} else {
		*e.work += n
	}
}

func (e env) addWrites(private, shared int64) {
	if e.ctx != nil {
		e.ctx.AddWrites(private, shared)
	}
}

// strassen computes c = a·b by Strassen recursion. In parallel mode
// (e.ctx != nil) the seven products are created as tasks subject to
// the version's depth cut-off; in sequential mode they recurse
// directly.
func strassen(e env, c, a, b view, n, depth, cutoff int, variant core.Variant) {
	if n <= baseSize {
		zero(c, n)
		matmulAdd(c, a, b, n)
		nn := int64(n) * int64(n)
		e.addWork(nn * int64(n))
		e.addWrites(nn, nn)
		return
	}
	h := n / 2
	a11, a12, a21, a22 := a.sub(0, 0), a.sub(0, h), a.sub(h, 0), a.sub(h, h)
	b11, b12, b21, b22 := b.sub(0, 0), b.sub(0, h), b.sub(h, 0), b.sub(h, h)
	c11, c12, c21, c22 := c.sub(0, 0), c.sub(0, h), c.sub(h, 0), c.sub(h, h)

	m := make([]view, 7)
	for i := range m {
		m[i] = newView(h)
	}
	// The seven Strassen products; each computes its operand
	// temporaries privately so the tasks are independent.
	products := [7]func(e env){
		func(e env) { // M1 = (A11 + A22)(B11 + B22)
			t1, t2 := newView(h), newView(h)
			add(t1, a11, a22, h)
			add(t2, b11, b22, h)
			e.addWork(2 * int64(h) * int64(h))
			strassen(e, m[0], t1, t2, h, depth+1, cutoff, variant)
		},
		func(e env) { // M2 = (A21 + A22) B11
			t1 := newView(h)
			add(t1, a21, a22, h)
			e.addWork(int64(h) * int64(h))
			strassen(e, m[1], t1, b11, h, depth+1, cutoff, variant)
		},
		func(e env) { // M3 = A11 (B12 − B22)
			t1 := newView(h)
			sub(t1, b12, b22, h)
			e.addWork(int64(h) * int64(h))
			strassen(e, m[2], a11, t1, h, depth+1, cutoff, variant)
		},
		func(e env) { // M4 = A22 (B21 − B11)
			t1 := newView(h)
			sub(t1, b21, b11, h)
			e.addWork(int64(h) * int64(h))
			strassen(e, m[3], a22, t1, h, depth+1, cutoff, variant)
		},
		func(e env) { // M5 = (A11 + A12) B22
			t1 := newView(h)
			add(t1, a11, a12, h)
			e.addWork(int64(h) * int64(h))
			strassen(e, m[4], t1, b22, h, depth+1, cutoff, variant)
		},
		func(e env) { // M6 = (A21 − A11)(B11 + B12)
			t1, t2 := newView(h), newView(h)
			sub(t1, a21, a11, h)
			add(t2, b11, b12, h)
			e.addWork(2 * int64(h) * int64(h))
			strassen(e, m[5], t1, t2, h, depth+1, cutoff, variant)
		},
		func(e env) { // M7 = (A12 − A22)(B21 + B22)
			t1, t2 := newView(h), newView(h)
			sub(t1, a12, a22, h)
			add(t2, b21, b22, h)
			e.addWork(2 * int64(h) * int64(h))
			strassen(e, m[6], t1, t2, h, depth+1, cutoff, variant)
		},
	}

	if e.ctx == nil {
		for _, p := range products {
			p(e)
		}
	} else if variant.Futures {
		// Futures version: each product is a typed future; the combine
		// phase blocks on exactly the values it consumes via Wait
		// (a task scheduling point — the waiter executes other ready
		// tasks, including other products, while blocked) instead of a
		// joint taskwait.
		futs := make([]*omp.Future[view], len(products))
		for i, p := range products {
			i, p := i, p
			opts := []omp.TaskOpt{omp.Captured(capturedBytes)}
			if variant.Untied {
				opts = append(opts, omp.Untied())
			}
			futs[i] = omp.Spawn(e.ctx, func(c2 *omp.Context) view {
				p(env{ctx: c2})
				return m[i]
			}, opts...)
		}
		for i, f := range futs {
			m[i] = f.Wait(e.ctx)
		}
	} else {
		spawnAsTask := true
		if variant.Cutoff == "manual" && depth >= cutoff {
			spawnAsTask = false
		}
		for _, p := range products {
			p := p
			if !spawnAsTask {
				p(e) // manual cut-off: direct call, no task
				continue
			}
			opts := []omp.TaskOpt{omp.Captured(capturedBytes)}
			if variant.Untied {
				opts = append(opts, omp.Untied())
			}
			if variant.Cutoff == "if" {
				opts = append(opts, omp.If(depth < cutoff))
			}
			e.ctx.Task(func(c2 *omp.Context) { p(env{ctx: c2}) }, opts...)
		}
		e.ctx.Taskwait()
	}

	// Combine: C11 = M1+M4−M5+M7, C12 = M3+M5, C21 = M2+M4,
	// C22 = M1−M2+M3+M6.
	hh := int64(h) * int64(h)
	add(c11, m[0], m[3], h)
	sub(c11, c11, m[4], h)
	add(c11, c11, m[6], h)
	add(c12, m[2], m[4], h)
	add(c21, m[1], m[3], h)
	sub(c22, m[0], m[1], h)
	add(c22, c22, m[2], h)
	add(c22, c22, m[5], h)
	e.addWork(8 * hh)
	e.addWrites(0, 4*hh)
}

// Seq computes the Strassen product of two n×n matrices sequentially,
// returning the result and the work performed.
func Seq(a, b []float64, n int) ([]float64, int64) {
	c := make([]float64, n*n)
	var work int64
	strassen(env{work: &work}, view{c, n}, view{a, n}, view{b, n}, n, 0, 0, core.Variant{})
	return c, work
}

// Naive computes c = a·b by the standard triple loop (test oracle).
func Naive(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	matmulAdd(view{c, n}, view{a, n}, view{b, n}, n)
	return c
}

func digest(a []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range a {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func seqRun(class core.Class) (*core.SeqResult, error) {
	n := classN[class]
	a := inputs.Matrix(n, inputSeedA)
	b := inputs.Matrix(n, inputSeedB)
	start := time.Now()
	c, work := Seq(a, b, n)
	elapsed := time.Since(start)
	return &core.SeqResult{
		Digest:   digest(c),
		Work:     work,
		Elapsed:  elapsed,
		MemBytes: 3 * int64(n) * int64(n) * 8,
	}, nil
}

func parRun(cfg core.RunConfig) (*core.RunResult, error) {
	variant, err := core.ParseVersion(cfg.Version)
	if err != nil {
		return nil, err
	}
	n := classN[cfg.Class]
	cutoff := cfg.CutoffDepth
	if cutoff <= 0 {
		cutoff = DefaultCutoffDepth
	}
	a := inputs.Matrix(n, inputSeedA)
	b := inputs.Matrix(n, inputSeedB)
	c := make([]float64, n*n)
	start := time.Now()
	st := omp.Parallel(cfg.Threads, func(ctx *omp.Context) {
		ctx.Single(func(ctx *omp.Context) {
			strassen(env{ctx: ctx}, view{c, n}, view{a, n}, view{b, n}, n, 0, cutoff, variant)
		})
	}, cfg.TeamOpts()...)
	elapsed := time.Since(start)
	return &core.RunResult{Digest: digest(c), Stats: st, Elapsed: elapsed}, nil
}

func init() {
	core.Register(&core.Benchmark{
		Name:           "strassen",
		Origin:         "Cilk",
		Domain:         "Dense linear algebra",
		Structure:      "At each node",
		TaskDirectives: 8,
		TasksInside:    "single",
		NestedTasks:    true,
		AppCutoff:      "depth-based",
		Versions:       core.FutureVersions(core.CutoffVersions()),
		BestVersion:    "none-tied",
		Profile:        core.Profile{MemFraction: 0.55, BandwidthCap: 8},
		Seq:            seqRun,
		Run:            parRun,
	})
}
