// Package fft implements the BOTS FFT benchmark: the one-dimensional
// Fast Fourier Transform of a vector of n complex values with the
// Cooley–Tukey algorithm, a divide-and-conquer that recursively
// splits a DFT into two half-size DFTs; each division generates
// tasks, with the actual butterflies at the leaves. (The original
// Cilk code specializes many base-case codelets, which is why the
// paper counts 41 task directives; this port keeps the same task
// topology with a single generic recursion.)
package fft

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"time"

	"bots/internal/core"
	"bots/internal/inputs"
	"bots/internal/omp"
)

const inputSeed = 0xFF7C001

// leafSize is the sub-transform size at and below which the
// recursion runs sequentially (the leaf-task granularity).
const leafSize = 256

var classN = map[core.Class]int{
	core.Test:   1 << 12,
	core.Small:  1 << 16,
	core.Medium: 1 << 19,
	core.Large:  1 << 21,
}

const capturedBytes = 56 // two slice headers + stride/size ints

// seqFFT computes the DFT of in (viewed with the given stride) into
// out, recursively, and returns the work performed. It is both the
// sequential reference and the leaf case of the parallel version, so
// sequential and parallel runs produce bit-identical results.
func seqFFT(in, out []complex128, n, stride int) int64 {
	if n == 1 {
		out[0] = in[0]
		return 1
	}
	h := n / 2
	work := seqFFT(in, out[:h], n/2, stride*2) +
		seqFFT(in[stride:], out[h:], n/2, stride*2)
	return work + combine(out, n)
}

// combine performs the butterfly pass merging the two half-transforms
// stored in out's halves, in place. It returns the work performed.
func combine(out []complex128, n int) int64 {
	h := n / 2
	ang := -2 * math.Pi / float64(n)
	for k := 0; k < h; k++ {
		s, c := math.Sincos(ang * float64(k))
		w := complex(c, s)
		e, o := out[k], out[h+k]
		t := w * o
		out[k] = e + t
		out[h+k] = e - t
	}
	return int64(n)
}

// Seq computes the FFT of src into a fresh slice and returns it with
// the work performed.
func Seq(src []complex128) ([]complex128, int64) {
	out := make([]complex128, len(src))
	w := seqFFT(src, out, len(src), 1)
	return out, w
}

// Naive computes the DFT by direct summation; the O(n²) oracle used
// for output validation on small sizes.
func Naive(src []complex128) []complex128 {
	n := len(src)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s, c := math.Sincos(ang)
			sum += src[j] * complex(c, s)
		}
		out[k] = sum
	}
	return out
}

// Inverse computes the inverse FFT (for round-trip verification).
func Inverse(src []complex128) []complex128 {
	n := len(src)
	conj := make([]complex128, n)
	for i, v := range src {
		conj[i] = complex(real(v), -imag(v))
	}
	out, _ := Seq(conj)
	inv := 1 / float64(n)
	for i, v := range out {
		out[i] = complex(real(v)*inv, -imag(v)*inv)
	}
	return out
}

// parFFT is the task-parallel recursion: each division spawns two
// half-size transforms; leaves run sequentially.
func parFFT(c *omp.Context, in, out []complex128, n, stride int, untied bool) {
	if n <= leafSize {
		c.AddWork(seqFFT(in, out, n, stride))
		c.AddWrites(int64(n), int64(n)) // butterfly writes: half local reuse, half shared output
		return
	}
	h := n / 2
	opts := []omp.TaskOpt{omp.Captured(capturedBytes)}
	if untied {
		opts = append(opts, omp.Untied())
	}
	c.Task(func(c *omp.Context) { parFFT(c, in, out[:h], h, stride*2, untied) }, opts...)
	c.Task(func(c *omp.Context) { parFFT(c, in[stride:], out[h:], h, stride*2, untied) }, opts...)
	c.Taskwait()
	c.AddWork(combine(out, n))
	c.AddWrites(0, int64(n))
}

func digest(a []complex128) string {
	h := fnv.New64a()
	var buf [16]byte
	for _, v := range a {
		r := math.Float64bits(real(v))
		im := math.Float64bits(imag(v))
		for i := 0; i < 8; i++ {
			buf[i] = byte(r >> (8 * i))
			buf[8+i] = byte(im >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func seqRun(class core.Class) (*core.SeqResult, error) {
	n := classN[class]
	src := inputs.ComplexVector(n, inputSeed)
	start := time.Now()
	out, work := Seq(src)
	elapsed := time.Since(start)
	// Output validation: the round trip must recover the input.
	back := Inverse(out)
	for i := range src {
		if d := back[i] - src[i]; math.Abs(real(d)) > 1e-9 || math.Abs(imag(d)) > 1e-9 {
			return nil, fmt.Errorf("fft: inverse round-trip error at %d: %v", i, d)
		}
	}
	return &core.SeqResult{
		Digest:   digest(out),
		Work:     work,
		Elapsed:  elapsed,
		MemBytes: int64(n) * 32,
	}, nil
}

func parRun(cfg core.RunConfig) (*core.RunResult, error) {
	variant, err := core.ParseVersion(cfg.Version)
	if err != nil {
		return nil, err
	}
	n := classN[cfg.Class]
	if bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("fft: size %d is not a power of two", n)
	}
	src := inputs.ComplexVector(n, inputSeed)
	out := make([]complex128, n)
	start := time.Now()
	st := omp.Parallel(cfg.Threads, func(c *omp.Context) {
		c.Single(func(c *omp.Context) {
			parFFT(c, src, out, n, 1, variant.Untied)
		})
	}, cfg.TeamOpts()...)
	elapsed := time.Since(start)
	return &core.RunResult{Digest: digest(out), Stats: st, Elapsed: elapsed}, nil
}

func init() {
	core.Register(&core.Benchmark{
		Name:           "fft",
		Origin:         "Cilk",
		Domain:         "Spectral method",
		Structure:      "At leafs",
		TaskDirectives: 2,
		TasksInside:    "single",
		NestedTasks:    true,
		AppCutoff:      "none",
		Versions:       core.PlainVersions(),
		BestVersion:    "untied",
		Profile:        core.Profile{MemFraction: 0.65, BandwidthCap: 6},
		Seq:            seqRun,
		Run:            parRun,
	})
}
