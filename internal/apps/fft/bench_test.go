package fft

import (
	"testing"

	"bots/internal/inputs"
)

func BenchmarkSeqFFT(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14} {
		src := inputs.ComplexVector(n, 1)
		b.Run(byteSize(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Seq(src)
			}
		})
	}
}

func byteSize(n int) string {
	switch n {
	case 1 << 10:
		return "1K"
	case 1 << 14:
		return "16K"
	}
	return "n"
}
