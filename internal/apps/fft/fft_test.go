package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"bots/internal/core"
	"bots/internal/inputs"
)

func close2(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestSeqMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		src := inputs.ComplexVector(n, 42)
		got, _ := Seq(src)
		want := Naive(src)
		for i := range got {
			if !close2(got[i], want[i], 1e-8*float64(n)) {
				t.Fatalf("n=%d: FFT[%d] = %v, naive %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestImpulseResponse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	src := make([]complex128, 64)
	src[0] = 1
	out, _ := Seq(src)
	for i, v := range out {
		if !close2(v, 1, 1e-12) {
			t.Fatalf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
}

func TestConstantSignal(t *testing.T) {
	// FFT of a constant is an impulse of height n at bin 0.
	n := 128
	src := make([]complex128, n)
	for i := range src {
		src[i] = 2.5
	}
	out, _ := Seq(src)
	if !close2(out[0], complex(2.5*float64(n), 0), 1e-9) {
		t.Fatalf("DC bin = %v, want %v", out[0], 2.5*float64(n))
	}
	for i := 1; i < n; i++ {
		if cmplx.Abs(out[i]) > 1e-9 {
			t.Fatalf("bin %d = %v, want 0", i, out[i])
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	for _, n := range []int{256, 1024} {
		src := inputs.ComplexVector(n, 7)
		out, _ := Seq(src)
		var eIn, eOut float64
		for i := range src {
			eIn += real(src[i])*real(src[i]) + imag(src[i])*imag(src[i])
			eOut += real(out[i])*real(out[i]) + imag(out[i])*imag(out[i])
		}
		if math.Abs(eOut/float64(n)-eIn) > 1e-6*eIn {
			t.Fatalf("n=%d: Parseval violated: in=%v out/n=%v", n, eIn, eOut/float64(n))
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	src := inputs.ComplexVector(4096, 99)
	out, _ := Seq(src)
	back := Inverse(out)
	for i := range src {
		if !close2(back[i], src[i], 1e-9) {
			t.Fatalf("round-trip[%d] = %v, want %v", i, back[i], src[i])
		}
	}
}

func TestParallelBitIdenticalToSeq(t *testing.T) {
	b, err := core.Get("fft")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range b.Versions {
		for _, threads := range []int{1, 4} {
			res, err := b.Run(core.RunConfig{Class: core.Test, Version: version, Threads: threads})
			if err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
			// Same decomposition ⇒ identical rounding ⇒ exact digest.
			if err := b.Check(seq, res); err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
			if res.Stats.TotalTasks() == 0 {
				t.Fatalf("%s/%d: no tasks", version, threads)
			}
		}
	}
}

func TestWorkParity(t *testing.T) {
	b, _ := core.Get("fft")
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(core.RunConfig{Class: core.Test, Version: "tied", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WorkUnits != seq.Work {
		t.Fatalf("work units: parallel %d != sequential %d", res.Stats.WorkUnits, seq.Work)
	}
}
