// Package health implements the BOTS Health benchmark, a simulation
// of the Columbian health care system (from the Olden suite): a
// multilevel hierarchy of villages, each with a list of potential
// patients and one hospital holding double-linked queues for the
// possible patient states (waiting, in assessment, in treatment,
// waiting for reallocation). At each timestep a task is created per
// village; once the lower levels have been simulated, synchronization
// occurs (taskwait) and reallocated patients climb to the parent.
//
// Indeterminism control follows §III-B exactly: instead of one global
// random seed, every village derives its own deterministic stream, so
// all probabilities inside a village (computed by a single task) are
// identical across executions regardless of scheduling.
package health

import (
	"fmt"
	"time"

	"bots/internal/core"
	"bots/internal/inputs"
	"bots/internal/omp"
)

const inputSeed = 0x4EA17400

// params configures the simulated hierarchy per input class.
type params struct {
	levels    int // depth of the village tree
	branching int // children per village
	steps     int // simulated timesteps
}

var classParams = map[core.Class]params{
	core.Test:   {3, 4, 30},
	core.Small:  {4, 4, 80},
	core.Medium: {6, 4, 100},
	core.Large:  {7, 4, 120},
}

// Probabilities of the simulation (per potential patient per step).
const (
	probSick         = 0.02 // a villager gets sick
	probConvalescent = 0.40 // an assessed patient needs treatment
	probRealloc      = 0.25 // an assessed patient is referred up a level
	assessTime       = 3    // steps in assessment
	treatmentTime    = 7    // steps in treatment
	personnelPerVill = 4    // hospital capacity factor
	populationBase   = 30   // potential patients per leaf village
)

// DefaultCutoffLevel is the village level below which the if/manual
// versions stop creating tasks (leaves are level 0, so level 1 keeps
// tasks for every non-leaf village).
const DefaultCutoffLevel = 1

const capturedBytes = 8 // the village pointer

// Patient is one simulated patient.
type Patient struct {
	id        int64
	timeLeft  int
	hospitals int   // hospitals visited (reallocation count + 1)
	totalWait int64 // steps spent waiting
}

// Hospital holds the per-village patient queues.
type Hospital struct {
	personnel     int
	freePersonnel int
	waiting       []*Patient
	assess        []*Patient
	inside        []*Patient
	// reallocUp is written only by this village's task and consumed
	// by the parent after the taskwait, so no locking is needed.
	reallocUp []*Patient
}

// Village is one node of the hierarchy.
type Village struct {
	id       int
	level    int  // distance from the leaves (leaves are level 0)
	isRoot   bool // the root has no upper level to refer patients to
	children []*Village
	hospital Hospital
	// population is the number of potential patients generated here.
	population int
	rng        *inputs.RNG
	nextID     int64

	// Aggregate statistics (the verification digest).
	totalPatients  int64
	totalWaitTime  int64
	totalHospitals int64
	totalTreated   int64
}

// Build constructs the deterministic village hierarchy.
func Build(p params) *Village {
	root := inputs.NewRNG(inputSeed)
	var next int
	var build func(level int) *Village
	build = func(level int) *Village {
		v := &Village{
			id:         next,
			level:      level,
			population: populationBase * (level + 1),
			rng:        root.Split(uint64(next)),
		}
		v.hospital.personnel = personnelPerVill * (level + 1)
		v.hospital.freePersonnel = v.hospital.personnel
		next++
		if level > 0 {
			v.children = make([]*Village, p.branching)
			for i := range v.children {
				v.children[i] = build(level - 1)
			}
		}
		return v
	}
	top := build(p.levels - 1)
	top.isRoot = true
	return top
}

// CountVillages returns the number of villages in the tree.
func (v *Village) CountVillages() int {
	n := 1
	for _, c := range v.children {
		n += c.CountVillages()
	}
	return n
}

// simStep simulates one timestep of a single village (its own
// hospital only; children are handled by the caller). It returns the
// work performed in patient-operations.
func (v *Village) simStep() int64 {
	h := &v.hospital
	var work int64

	// Patients inside treatment.
	var stillInside []*Patient
	for _, p := range h.inside {
		work++
		p.timeLeft--
		if p.timeLeft <= 0 {
			h.freePersonnel++
			v.totalTreated++
			v.totalWaitTime += p.totalWait
			v.totalHospitals += int64(p.hospitals)
		} else {
			stillInside = append(stillInside, p)
		}
	}
	h.inside = stillInside

	// Patients in assessment.
	var stillAssess []*Patient
	for _, p := range h.assess {
		work++
		p.timeLeft--
		if p.timeLeft > 0 {
			stillAssess = append(stillAssess, p)
			continue
		}
		switch {
		case !v.isRoot && v.rng.Bernoulli(probRealloc):
			// Referred to the upper-level hospital.
			h.freePersonnel++
			p.hospitals++
			h.reallocUp = append(h.reallocUp, p)
		case v.rng.Bernoulli(probConvalescent):
			p.timeLeft = treatmentTime
			h.inside = append(h.inside, p)
		default:
			h.freePersonnel++
			v.totalTreated++
			v.totalWaitTime += p.totalWait
			v.totalHospitals += int64(p.hospitals)
		}
	}
	h.assess = stillAssess

	// Waiting patients move to assessment while personnel is free.
	var stillWaiting []*Patient
	for _, p := range h.waiting {
		work++
		if h.freePersonnel > 0 {
			h.freePersonnel--
			p.timeLeft = assessTime
			h.assess = append(h.assess, p)
		} else {
			p.totalWait++
			stillWaiting = append(stillWaiting, p)
		}
	}
	h.waiting = stillWaiting

	// New patients fall sick.
	for i := 0; i < v.population; i++ {
		work++
		if v.rng.Bernoulli(probSick) {
			v.nextID++
			v.totalPatients++
			h.waiting = append(h.waiting, &Patient{
				id:        int64(v.id)<<32 | v.nextID,
				hospitals: 1,
			})
		}
	}
	return work
}

// absorbChildren moves patients reallocated by the children into this
// village's waiting queue. Must run after the children's step.
func (v *Village) absorbChildren() int64 {
	var work int64
	for _, c := range v.children {
		for _, p := range c.hospital.reallocUp {
			work++
			v.hospital.waiting = append(v.hospital.waiting, p)
		}
		c.hospital.reallocUp = c.hospital.reallocUp[:0]
	}
	return work
}

// seqSim simulates one timestep of the subtree rooted at v.
func seqSim(v *Village) int64 {
	var work int64
	for _, c := range v.children {
		work += seqSim(c)
	}
	work += v.absorbChildren()
	return work + v.simStep()
}

// parSim is the task-parallel version: one task per child village,
// bounded by the level cut-off.
func parSim(c *omp.Context, v *Village, cutoffLevel int, variant core.Variant) {
	for _, child := range v.children {
		child := child
		body := func(c *omp.Context) { parSim(c, child, cutoffLevel, variant) }
		switch variant.Cutoff {
		case "manual":
			if child.level >= cutoffLevel {
				c.Task(body, taskOpts(variant, nil)...)
			} else {
				c.AddWork(seqSim(child))
			}
		case "if":
			c.Task(body, taskOpts(variant, omp.If(child.level >= cutoffLevel))...)
		default:
			c.Task(body, taskOpts(variant, nil)...)
		}
	}
	c.Taskwait()
	w := v.absorbChildren()
	w += v.simStep()
	c.AddWork(w)
	c.AddWrites(w/4, w/8) // queue-pointer updates; partially shared structures
}

func taskOpts(variant core.Variant, extra omp.TaskOpt) []omp.TaskOpt {
	opts := []omp.TaskOpt{omp.Captured(capturedBytes)}
	if variant.Untied {
		opts = append(opts, omp.Untied())
	}
	if extra != nil {
		opts = append(opts, extra)
	}
	return opts
}

// stats aggregates the verification statistics over the tree.
type stats struct {
	Patients, Treated, WaitTime, Hospitals int64
	StillWaiting, StillAssess, StillInside int64
}

func collect(v *Village, s *stats) {
	s.Patients += v.totalPatients
	s.Treated += v.totalTreated
	s.WaitTime += v.totalWaitTime
	s.Hospitals += v.totalHospitals
	s.StillWaiting += int64(len(v.hospital.waiting))
	s.StillAssess += int64(len(v.hospital.assess))
	s.StillInside += int64(len(v.hospital.inside))
	for _, c := range v.children {
		collect(c, s)
	}
}

func digest(v *Village) string {
	var s stats
	collect(v, &s)
	return fmt.Sprintf("patients=%d treated=%d wait=%d hospitals=%d open=%d/%d/%d",
		s.Patients, s.Treated, s.WaitTime, s.Hospitals,
		s.StillWaiting, s.StillAssess, s.StillInside)
}

func seqRun(class core.Class) (*core.SeqResult, error) {
	p := classParams[class]
	v := Build(p)
	start := time.Now()
	var work int64
	for t := 0; t < p.steps; t++ {
		work += seqSim(v)
	}
	elapsed := time.Since(start)
	return &core.SeqResult{
		Digest:   digest(v),
		Work:     work,
		Elapsed:  elapsed,
		MemBytes: int64(v.CountVillages()) * 512,
	}, nil
}

func parRun(cfg core.RunConfig) (*core.RunResult, error) {
	variant, err := core.ParseVersion(cfg.Version)
	if err != nil {
		return nil, err
	}
	p := classParams[cfg.Class]
	cutoff := cfg.CutoffDepth
	if cutoff <= 0 {
		cutoff = DefaultCutoffLevel
	}
	v := Build(p)
	start := time.Now()
	st := omp.Parallel(cfg.Threads, func(c *omp.Context) {
		c.Single(func(c *omp.Context) {
			for t := 0; t < p.steps; t++ {
				parSim(c, v, cutoff, variant)
			}
		})
	}, cfg.TeamOpts()...)
	elapsed := time.Since(start)
	return &core.RunResult{Digest: digest(v), Stats: st, Elapsed: elapsed}, nil
}

func init() {
	core.Register(&core.Benchmark{
		Name:           "health",
		Origin:         "Olden",
		Domain:         "Simulation",
		Structure:      "At each node",
		TaskDirectives: 1,
		TasksInside:    "single",
		NestedTasks:    true,
		AppCutoff:      "depth-based",
		Versions:       core.CutoffVersions(),
		BestVersion:    "manual-tied",
		Profile:        core.Profile{MemFraction: 0.7, BandwidthCap: 6},
		Seq:            seqRun,
		Run:            parRun,
	})
}
