package health

import (
	"strings"
	"testing"

	"bots/internal/core"
)

func TestBuildHierarchyShape(t *testing.T) {
	v := Build(params{levels: 3, branching: 4, steps: 1})
	if got, want := v.CountVillages(), 1+4+16; got != want {
		t.Fatalf("villages = %d, want %d", got, want)
	}
	if !v.isRoot {
		t.Fatal("root must be marked isRoot")
	}
	if v.level != 2 {
		t.Fatalf("root level = %d, want 2", v.level)
	}
	for _, c := range v.children {
		if c.isRoot {
			t.Fatal("child marked as root")
		}
		if c.level != 1 {
			t.Fatalf("child level = %d, want 1", c.level)
		}
	}
}

func TestSimulationIsDeterministic(t *testing.T) {
	run := func() string {
		v := Build(classParams[core.Test])
		for i := 0; i < 20; i++ {
			seqSim(v)
		}
		return digest(v)
	}
	if run() != run() {
		t.Fatal("sequential simulation not deterministic")
	}
}

func TestPatientsFlowThroughSystem(t *testing.T) {
	v := Build(classParams[core.Test])
	for i := 0; i < 50; i++ {
		seqSim(v)
	}
	d := digest(v)
	if strings.Contains(d, "patients=0") {
		t.Fatalf("no patients generated after 50 steps: %s", d)
	}
	if strings.Contains(d, "treated=0") {
		t.Fatalf("no patients treated after 50 steps: %s", d)
	}
	if strings.Contains(d, "hospitals=0") {
		t.Fatalf("hospital-visit statistics empty: %s", d)
	}
}

func TestReallocationClimbsLevels(t *testing.T) {
	// After enough steps, some patient must have visited more than
	// one hospital: totalHospitals > totalTreated.
	v := Build(params{levels: 3, branching: 4, steps: 0})
	var sawRealloc bool
	for i := 0; i < 80 && !sawRealloc; i++ {
		seqSim(v)
		var s stats
		collect(v, &s)
		if s.Hospitals > s.Treated && s.Treated > 0 {
			sawRealloc = true
		}
	}
	if !sawRealloc {
		t.Fatal("no patient was ever referred to an upper-level hospital")
	}
}

func TestAllVersionsMatchSequential(t *testing.T) {
	b, err := core.Get("health")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range b.Versions {
		for _, threads := range []int{1, 4} {
			res, err := b.Run(core.RunConfig{Class: core.Test, Version: version, Threads: threads})
			if err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
			// Per-village RNG seeding makes parallel == sequential.
			if err := b.Check(seq, res); err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
		}
	}
}

func TestWorkParity(t *testing.T) {
	b, _ := core.Get("health")
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"none-tied", "manual-untied"} {
		res, err := b.Run(core.RunConfig{Class: core.Test, Version: v, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.WorkUnits != seq.Work {
			t.Fatalf("%s: work %d != sequential %d", v, res.Stats.WorkUnits, seq.Work)
		}
	}
}

func TestLevelCutoffBoundsTasks(t *testing.T) {
	b, _ := core.Get("health")
	// With cut-off level above the root, the manual version should
	// create almost no tasks.
	res, err := b.Run(core.RunConfig{Class: core.Test, Version: "manual-tied", Threads: 2, CutoffDepth: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalTasks() != 0 {
		t.Fatalf("cut-off above root should yield 0 tasks, got %d", res.Stats.TotalTasks())
	}
	all, err := b.Run(core.RunConfig{Class: core.Test, Version: "none-tied", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if all.Stats.TotalTasks() == 0 {
		t.Fatal("no-cutoff version should create tasks")
	}
}
