package health

import (
	"testing"

	"bots/internal/core"
)

// BenchmarkSimulation measures a complete 30-step simulation on a
// fresh test-class hierarchy per iteration. (Benchmarking repeated
// steps on one tree would not be stationary: patient queues grow with
// simulated time, so per-step cost rises across iterations.)
func BenchmarkSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := Build(classParams[core.Test])
		for s := 0; s < 30; s++ {
			seqSim(v)
		}
	}
}

func BenchmarkBuildHierarchy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(classParams[core.Small])
	}
}
