package health

import (
	"bots/internal/core"
	"bots/internal/omp"
)

// Service-mode hooks: internal/serve drives the health simulation as a
// per-request task DAG on a persistent team, outside the Benchmark
// registry's Parallel-region entry points. A request builds a fresh
// village tree, simulates the class's timesteps with the manual-cutoff
// task scheme, and verifies the digest against the deterministic
// sequential reference (§III-B's indeterminism control makes the two
// digests equal for every schedule).

// BuildClass constructs the deterministic hierarchy for class.
func BuildClass(class core.Class) *Village { return Build(classParams[class]) }

// Steps returns the simulated timestep count for class.
func Steps(class core.Class) int { return classParams[class].steps }

// Simulate runs steps timesteps of the task-parallel simulation
// (manual cut-off at cutoffLevel) on the subtree rooted at v. It must
// run inside a task region — an explicit task or a persistent-team
// submission — and returns when the subtree is fully simulated.
func Simulate(c *omp.Context, v *Village, steps, cutoffLevel int) {
	variant := core.Variant{Cutoff: "manual"}
	for t := 0; t < steps; t++ {
		parSim(c, v, cutoffLevel, variant)
	}
}

// SeqSimulate runs steps timesteps of the sequential reference
// simulation on the subtree rooted at v.
func SeqSimulate(v *Village, steps int) {
	for t := 0; t < steps; t++ {
		seqSim(v)
	}
}

// Digest returns the verification digest of the tree's aggregate
// statistics.
func Digest(v *Village) string { return digest(v) }
