// Package nqueens implements the BOTS NQueens benchmark: counting
// all placements of n queens on an n×n board such that no queen
// attacks another, by backtracking search with pruning. A task is
// created for each step of the solution, and the parent's partial
// board state is copied into each child task (the paper's captured-
// environment cost). To keep the computational load deterministic the
// kernel counts all solutions rather than stopping at the first, and
// per-thread solution counters (threadprivate) are reduced under a
// critical section at the end of the region — both exactly as §III-B
// describes.
package nqueens

import (
	"fmt"
	"time"

	"bots/internal/core"
	"bots/internal/omp"
)

// knownSolutions[n] is the number of n-queens solutions (OEIS A000170).
var knownSolutions = map[int]int64{
	1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352,
	10: 724, 11: 2680, 12: 14200, 13: 73712, 14: 365596, 15: 2279184,
}

var classN = map[core.Class]int{
	core.Test:   8,
	core.Small:  10,
	core.Medium: 12,
	core.Large:  13,
}

// DefaultCutoffDepth is the default depth for if/manual cut-off
// versions (rows beyond this are explored without creating tasks).
const DefaultCutoffDepth = 3

// ok reports whether a queen may be placed in column col of row row,
// given the columns of the queens in rows [0, row).
func ok(board []int8, row int, col int8) bool {
	for i := 0; i < row; i++ {
		d := board[i] - col
		if d == 0 || d == int8(row-i) || d == int8(i-row) {
			return false
		}
	}
	return true
}

// seqCount counts solutions extending the first row rows of board,
// accumulating visited-node work in *work.
func seqCount(board []int8, row int, work *int64) int64 {
	n := len(board)
	*work += int64(row) + 1
	if row == n {
		return 1
	}
	var total int64
	for col := int8(0); col < int8(n); col++ {
		if ok(board, row, col) {
			board[row] = col
			total += seqCount(board, row+1, work)
		}
	}
	return total
}

// Seq counts all n-queens solutions sequentially, returning the count
// and the work performed (in visited-node units).
func Seq(n int) (solutions, work int64) {
	board := make([]int8, n)
	solutions = seqCount(board, 0, &work)
	return solutions, work
}

// par explores one node of the search tree. Each viable placement in
// the next row becomes a child task with a private copy of the board
// prefix. Solutions are accumulated into the executing thread's slot
// of counts.
func par(c *omp.Context, board []int8, row, cutoff int, variant core.Variant, counts *omp.ThreadPrivate[int64]) {
	n := len(board)
	c.AddWork(int64(row) + 1)
	c.AddWrites(int64(row), 0) // the board copy is written into task-private memory
	if row == n {
		*counts.Get(c)++
		return
	}
	for col := int8(0); col < int8(n); col++ {
		if !ok(board, row, col) {
			continue
		}
		child := make([]int8, n)
		copy(child, board[:row])
		child[row] = col
		body := func(c *omp.Context) { par(c, child, row+1, cutoff, variant, counts) }
		switch variant.Cutoff {
		case "manual":
			if row < cutoff {
				c.Task(body, taskOpts(variant, n, nil)...)
			} else {
				// Manual cut-off: continue on this thread without any
				// task; reuse the child buffer for the whole subtree.
				var w int64
				*counts.Get(c) += seqCount(child, row+1, &w)
				c.AddWork(w)
			}
		case "if":
			c.Task(body, taskOpts(variant, n, omp.If(row < cutoff))...)
		default: // "none"
			c.Task(body, taskOpts(variant, n, nil)...)
		}
	}
	c.Taskwait()
}

func taskOpts(variant core.Variant, n int, extra omp.TaskOpt) []omp.TaskOpt {
	opts := []omp.TaskOpt{omp.Captured(n + 16)}
	if variant.Untied {
		opts = append(opts, omp.Untied())
	}
	if extra != nil {
		opts = append(opts, extra)
	}
	return opts
}

func digest(n int, count int64) string { return fmt.Sprintf("nqueens(%d)=%d", n, count) }

func seqRun(class core.Class) (*core.SeqResult, error) {
	n := classN[class]
	start := time.Now()
	count, work := Seq(n)
	elapsed := time.Since(start)
	if want, known := knownSolutions[n]; known && count != want {
		return nil, fmt.Errorf("nqueens: sequential count %d != known %d for n=%d", count, want, n)
	}
	return &core.SeqResult{
		Digest:   digest(n, count),
		Work:     work,
		Elapsed:  elapsed,
		MemBytes: int64(n) * int64(n) * 2,
	}, nil
}

func parRun(cfg core.RunConfig) (*core.RunResult, error) {
	variant, err := core.ParseVersion(cfg.Version)
	if err != nil {
		return nil, err
	}
	n := classN[cfg.Class]
	cutoff := cfg.CutoffDepth
	if cutoff <= 0 {
		cutoff = DefaultCutoffDepth
	}
	counts := omp.NewThreadPrivate[int64](cfg.Threads)
	var total int64
	start := time.Now()
	st := omp.Parallel(cfg.Threads, func(c *omp.Context) {
		c.SingleNowait(func(c *omp.Context) {
			board := make([]int8, n)
			c.Task(func(c *omp.Context) {
				par(c, board, 0, cutoff, variant, counts)
			}, taskOpts(variant, n, nil)...)
		})
		c.Barrier()
		// Each thread folds its threadprivate count into the global
		// total under a critical, as in the paper's reduction scheme.
		mine := counts.Get(c)
		c.Critical("nqueens-reduce", func() { total += *mine })
	}, cfg.TeamOpts()...)
	elapsed := time.Since(start)
	if want, known := knownSolutions[n]; known && total != want {
		return nil, fmt.Errorf("nqueens: parallel count %d != known %d for n=%d (version %s)",
			total, want, n, cfg.Version)
	}
	return &core.RunResult{Digest: digest(n, total), Stats: st, Elapsed: elapsed}, nil
}

func init() {
	core.Register(&core.Benchmark{
		Name:           "nqueens",
		Origin:         "Cilk",
		Domain:         "Search",
		Structure:      "At each node",
		TaskDirectives: 1,
		TasksInside:    "single",
		NestedTasks:    true,
		AppCutoff:      "depth-based",
		Versions:       core.CutoffVersions(),
		BestVersion:    "manual-untied",
		Profile:        core.Profile{MemFraction: 0.0, BandwidthCap: 32},
		Seq:            seqRun,
		Run:            parRun,
	})
}
