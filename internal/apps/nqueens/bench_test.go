package nqueens

import "testing"

func BenchmarkSeq10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Seq(10)
	}
}
