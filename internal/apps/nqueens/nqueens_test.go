package nqueens

import (
	"testing"

	"bots/internal/core"
)

func TestSeqKnownCounts(t *testing.T) {
	for n := 1; n <= 10; n++ {
		got, _ := Seq(n)
		if got != knownSolutions[n] {
			t.Errorf("Seq(%d) = %d, want %d", n, got, knownSolutions[n])
		}
	}
}

func TestOkRejectsAttacks(t *testing.T) {
	board := []int8{0, 2, 4, 0} // queens at (0,0), (1,2), (2,4)
	cases := []struct {
		col  int8
		want bool
	}{
		{0, false}, // same column as row 0
		{2, false}, // same column as row 1
		{3, false}, // diagonal from (2,4)
		{5, false}, // diagonal from (2,4)
		{1, false}, // diagonal from (0,0)? (3,1): |3-0|=3 |1-0|=1 no; from (1,2): |3-1|=2 |1-2|=1 no; from (2,4): |3-2|=1 |1-4|=3 no → actually legal
	}
	_ = cases
	// Recompute carefully: row 3 candidates against queens (0,0),(1,2),(2,4).
	legal := map[int8]bool{}
	for col := int8(0); col < 6; col++ {
		conflict := false
		for r, qc := range []int8{0, 2, 4} {
			d := qc - col
			if d == 0 || int(d) == 3-r || int(-d) == 3-r {
				conflict = true
			}
		}
		legal[col] = !conflict
	}
	for col := int8(0); col < 6; col++ {
		if got := ok(board, 3, col); got != legal[col] {
			t.Errorf("ok(row 3, col %d) = %v, want %v", col, got, legal[col])
		}
	}
}

func TestAllVersionsAndThreadCounts(t *testing.T) {
	b, err := core.Get("nqueens")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range b.Versions {
		for _, threads := range []int{1, 4} {
			res, err := b.Run(core.RunConfig{Class: core.Test, Version: version, Threads: threads})
			if err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
			if err := b.Check(seq, res); err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
		}
	}
}

func TestWorkParitySeqVsNoCutoff(t *testing.T) {
	b, _ := core.Get("nqueens")
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(core.RunConfig{Class: core.Test, Version: "none-tied", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WorkUnits != seq.Work {
		t.Fatalf("work units: parallel %d != sequential %d", res.Stats.WorkUnits, seq.Work)
	}
	man, err := b.Run(core.RunConfig{Class: core.Test, Version: "manual-tied", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if man.Stats.WorkUnits != seq.Work {
		t.Fatalf("work units: manual %d != sequential %d", man.Stats.WorkUnits, seq.Work)
	}
}

func TestCutoffReducesTasks(t *testing.T) {
	b, _ := core.Get("nqueens")
	none, err := b.Run(core.RunConfig{Class: core.Test, Version: "none-tied", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	man, err := b.Run(core.RunConfig{Class: core.Test, Version: "manual-tied", Threads: 2, CutoffDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if man.Stats.TotalTasks() >= none.Stats.TotalTasks()/4 {
		t.Fatalf("manual cut-off should slash task count: manual=%d none=%d",
			man.Stats.TotalTasks(), none.Stats.TotalTasks())
	}
}

func TestCapturedEnvironmentAccounted(t *testing.T) {
	b, _ := core.Get("nqueens")
	res, err := b.Run(core.RunConfig{Class: core.Test, Version: "none-tied", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CapturedBytes == 0 {
		t.Fatal("nqueens copies the board into each task; captured bytes must be non-zero")
	}
	perTask := float64(res.Stats.CapturedBytes) / float64(res.Stats.TotalTasks())
	if perTask < 8 || perTask > 64 {
		t.Fatalf("captured bytes per task = %.1f, want a few tens", perTask)
	}
}
