// Package alignment implements the BOTS Alignment benchmark: all
// protein sequences from an input set are aligned against every other
// sequence, and the best score for each pair is produced. The scoring
// method is a full dynamic-programming algorithm with a weight matrix
// for mismatches and affine penalties for opening and extending gaps
// (Gotoh's formulation, score-equivalent to the Myers–Miller forward
// pass used by the original code; see DESIGN.md for the
// substitution).
//
// The parallelization mirrors the original: the outer loop is an omp
// for worksharing construct and a task is created per pair inside it,
// letting the implementation split iterations when threads outnumber
// rows or when the triangular iteration space causes imbalance. As in
// the BOTS port, all temporary DP state is task-local so that the
// untied version is safe.
package alignment

import (
	"fmt"
	"hash/fnv"
	"time"

	"bots/internal/core"
	"bots/internal/inputs"
	"bots/internal/omp"
)

const inputSeed = 0xA119A914

// sizes per class: number of sequences and length band.
type params struct {
	n, minLen, maxLen int
}

var classParams = map[core.Class]params{
	core.Test:   {12, 30, 90},
	core.Small:  {24, 60, 180},
	core.Medium: {40, 80, 300},
	core.Large:  {64, 100, 400},
}

// Affine gap penalties (positive costs, subtracted).
const (
	gapOpen   = 10
	gapExtend = 1
	negInf    = int32(-1 << 29)
)

const capturedBytes = 56 // two sequence headers + result pointer

// weight is the 20×20 substitution matrix: a deterministic symmetric
// matrix with positive diagonal (matches) and mixed mismatch scores,
// standing in for the PAM/BLOSUM table of the original input files.
var weight [20][20]int32

func init() {
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if i == j {
				weight[i][j] = 5
			} else {
				// Symmetric, in [-4, +1], deterministic.
				lo, hi := i, j
				if lo > hi {
					lo, hi = hi, lo
				}
				weight[i][j] = int32((lo*31+hi*17)%6) - 4
			}
		}
	}
}

// aaIndex maps an amino-acid letter to its matrix row.
var aaIndex [256]int8

func init() {
	for i := range aaIndex {
		aaIndex[i] = -1
	}
	for i, c := range "ARNDCQEGHILKMFPSTWYV" {
		aaIndex[c] = int8(i)
	}
}

// Score computes the global alignment score of a and b with affine
// gaps (Gotoh). It returns the score and the work performed (DP cells
// computed). All state is local, so it is safe for concurrent calls.
func Score(a, b []byte) (int32, int64) {
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return -int32(gapOpen) - int32(gapExtend*(la+lb)), int64(la + lb + 1)
	}
	// m[j]: best score ending at (i, j) with a[i] aligned to b[j] or
	// any state; ix: gap in b (vertical); iy: gap in a (horizontal).
	m := make([]int32, lb+1)
	ix := make([]int32, lb+1)
	iy := make([]int32, lb+1)
	m[0] = 0
	ix[0], iy[0] = negInf, negInf
	for j := 1; j <= lb; j++ {
		iy[j] = -int32(gapOpen) - int32(gapExtend*j)
		m[j] = negInf
		ix[j] = negInf
	}
	for i := 1; i <= la; i++ {
		diagM, diagIx, diagIy := m[0], ix[0], iy[0]
		m[0] = negInf
		ix[0] = -int32(gapOpen) - int32(gapExtend*i)
		iy[0] = negInf
		ca := aaIndex[a[i-1]]
		for j := 1; j <= lb; j++ {
			oldM, oldIx, oldIy := m[j], ix[j], iy[j]
			w := weight[ca][aaIndex[b[j-1]]]
			best := diagM
			if diagIx > best {
				best = diagIx
			}
			if diagIy > best {
				best = diagIy
			}
			m[j] = best + w
			// ix: gap in b — come from row above.
			openIx := maxi32(oldM-gapOpen-gapExtend, oldIx-gapExtend)
			ix[j] = openIx
			// iy: gap in a — come from the left in this row.
			iy[j] = maxi32(m[j-1]-gapOpen-gapExtend, iy[j-1]-gapExtend)
			diagM, diagIx, diagIy = oldM, oldIx, oldIy
		}
	}
	return maxi32(m[lb], maxi32(ix[lb], iy[lb])), int64(la) * int64(lb)
}

func maxi32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// pairIndex returns the flat index of pair (i, j), i < j, among the
// n(n−1)/2 pairs.
func pairIndex(n, i, j int) int {
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// SeqAlign scores every pair sequentially; returns the score vector
// and work.
func SeqAlign(seqs [][]byte) ([]int32, int64) {
	n := len(seqs)
	scores := make([]int32, n*(n-1)/2)
	var work int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s, w := Score(seqs[i], seqs[j])
			scores[pairIndex(n, i, j)] = s
			work += w
		}
	}
	return scores, work
}

func digest(scores []int32) string {
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range scores {
		buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func seqRun(class core.Class) (*core.SeqResult, error) {
	p := classParams[class]
	seqs := inputs.Proteins(p.n, p.minLen, p.maxLen, inputSeed)
	start := time.Now()
	scores, work := SeqAlign(seqs)
	elapsed := time.Since(start)
	var bytes int64
	for _, s := range seqs {
		bytes += int64(len(s))
	}
	return &core.SeqResult{
		Digest:   digest(scores),
		Work:     work,
		Elapsed:  elapsed,
		MemBytes: bytes + int64(len(scores))*4,
	}, nil
}

func parRun(cfg core.RunConfig) (*core.RunResult, error) {
	variant, err := core.ParseVersion(cfg.Version)
	if err != nil {
		return nil, err
	}
	p := classParams[cfg.Class]
	seqs := inputs.Proteins(p.n, p.minLen, p.maxLen, inputSeed)
	n := len(seqs)
	scores := make([]int32, n*(n-1)/2)
	opts := []omp.TaskOpt{omp.Captured(capturedBytes)}
	if variant.Untied {
		opts = append(opts, omp.Untied())
	}
	pairTask := func(c *omp.Context, i, j int) {
		c.Task(func(c *omp.Context) {
			s, w := Score(seqs[i], seqs[j])
			scores[pairIndex(n, i, j)] = s
			c.AddWork(w)
			c.AddWrites(3*w, 1) // DP rows are task-local; only the result is shared
		}, opts...)
	}
	start := time.Now()
	var st *omp.Stats
	if variant.Generator == "single" {
		// The released suite's alignment_single variant: one thread
		// generates all pair tasks from inside a single construct.
		st = omp.Parallel(cfg.Threads, func(c *omp.Context) {
			c.Single(func(c *omp.Context) {
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						pairTask(c, i, j)
					}
				}
			})
		}, cfg.TeamOpts()...)
	} else {
		// The paper's structure (alignment_for): tasks nested inside
		// an omp for over the outer loop, dynamic schedule to absorb
		// the triangular imbalance.
		st = omp.Parallel(cfg.Threads, func(c *omp.Context) {
			c.For(0, n, func(c *omp.Context, i int) {
				for j := i + 1; j < n; j++ {
					pairTask(c, i, j)
				}
			}, omp.WithSchedule(omp.Dynamic, 1))
		}, cfg.TeamOpts()...)
	}
	elapsed := time.Since(start)
	return &core.RunResult{Digest: digest(scores), Stats: st, Elapsed: elapsed}, nil
}

func init() {
	core.Register(&core.Benchmark{
		Name:           "alignment",
		Origin:         "AKM",
		Domain:         "Dynamic programming",
		Structure:      "Iterative",
		TaskDirectives: 1,
		TasksInside:    "for",
		NestedTasks:    false,
		AppCutoff:      "none",
		Versions:       []string{"tied", "untied", "single-tied", "single-untied"},
		BestVersion:    "untied",
		Profile:        core.Profile{MemFraction: 0.05, BandwidthCap: 32},
		Seq:            seqRun,
		Run:            parRun,
	})
}
