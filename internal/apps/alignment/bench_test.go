package alignment

import (
	"testing"

	"bots/internal/inputs"
)

func BenchmarkScorePair(b *testing.B) {
	seqs := inputs.Proteins(2, 200, 200, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Score(seqs[0], seqs[1])
	}
}
