package alignment

import (
	"testing"
	"testing/quick"

	"bots/internal/core"
	"bots/internal/inputs"
)

func TestScoreIdenticalSequences(t *testing.T) {
	s := []byte("ARNDCQEGHILKMFPSTWYV")
	got, work := Score(s, s)
	if got != int32(len(s))*5 {
		t.Fatalf("self-alignment score = %d, want %d (all matches)", got, len(s)*5)
	}
	if work != int64(len(s))*int64(len(s)) {
		t.Fatalf("work = %d, want %d", work, len(s)*len(s))
	}
}

func TestScoreSymmetry(t *testing.T) {
	f := func(seedA, seedB uint16) bool {
		a := inputs.Proteins(1, 5, 60, uint64(seedA)+1)[0]
		b := inputs.Proteins(1, 5, 60, uint64(seedB)+7)[0]
		sa, _ := Score(a, b)
		sb, _ := Score(b, a)
		return sa == sb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGapPenaltyStructure(t *testing.T) {
	a := []byte("AAAA")
	b := []byte("AAAAA") // one extra residue: one gap of length 1
	s, _ := Score(a, b)
	want := int32(4*5 - gapOpen - gapExtend)
	if s != want {
		t.Fatalf("score with single insertion = %d, want %d", s, want)
	}
	// A longer gap costs open + k·extend, not k·open.
	c := []byte("AAAAAAA") // gap of length 3
	s2, _ := Score(a, c)
	want2 := int32(4*5 - gapOpen - 3*gapExtend)
	if s2 != want2 {
		t.Fatalf("score with length-3 gap = %d, want %d (affine)", s2, want2)
	}
}

func TestEmptySequences(t *testing.T) {
	s, _ := Score(nil, []byte("ARND"))
	if s >= 0 {
		t.Fatalf("aligning against empty should be negative, got %d", s)
	}
}

func TestWeightMatrixSymmetric(t *testing.T) {
	for i := 0; i < 20; i++ {
		if weight[i][i] <= 0 {
			t.Fatalf("diagonal weight[%d][%d] = %d, want positive", i, i, weight[i][i])
		}
		for j := 0; j < 20; j++ {
			if weight[i][j] != weight[j][i] {
				t.Fatalf("weight matrix asymmetric at (%d,%d)", i, j)
			}
			if i != j && weight[i][j] >= weight[i][i] {
				t.Fatalf("mismatch weight[%d][%d]=%d not below match %d",
					i, j, weight[i][j], weight[i][i])
			}
		}
	}
}

func TestPairIndexBijection(t *testing.T) {
	n := 13
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			k := pairIndex(n, i, j)
			if k < 0 || k >= n*(n-1)/2 {
				t.Fatalf("pairIndex(%d,%d,%d) = %d out of range", n, i, j, k)
			}
			if seen[k] {
				t.Fatalf("pairIndex collision at (%d,%d)", i, j)
			}
			seen[k] = true
		}
	}
	if len(seen) != n*(n-1)/2 {
		t.Fatalf("pairIndex covered %d slots, want %d", len(seen), n*(n-1)/2)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	b, err := core.Get("alignment")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range b.Versions {
		for _, threads := range []int{1, 4} {
			res, err := b.Run(core.RunConfig{Class: core.Test, Version: version, Threads: threads})
			if err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
			if err := b.Check(seq, res); err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
		}
	}
}

func TestTaskPerPair(t *testing.T) {
	b, _ := core.Get("alignment")
	res, err := b.Run(core.RunConfig{Class: core.Test, Version: "tied", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := classParams[core.Test]
	want := int64(p.n * (p.n - 1) / 2)
	if res.Stats.TotalTasks() != want {
		t.Fatalf("tasks = %d, want one per pair = %d", res.Stats.TotalTasks(), want)
	}
}

func TestWorkParity(t *testing.T) {
	b, _ := core.Get("alignment")
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(core.RunConfig{Class: core.Test, Version: "untied", Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WorkUnits != seq.Work {
		t.Fatalf("work: parallel %d != sequential %d", res.Stats.WorkUnits, seq.Work)
	}
}
