package alignment

import (
	"bots/internal/core"
	"bots/internal/inputs"
)

// Service-mode hooks: internal/serve drives the all-pairs alignment as
// a per-request task DAG on a persistent team — one task per sequence
// pair, verified against the sequential score digest.

// Sequences returns the deterministic protein input set for class.
func Sequences(class core.Class) [][]byte {
	p := classParams[class]
	return inputs.Proteins(p.n, p.minLen, p.maxLen, inputSeed)
}

// PairIndex returns the flat index of pair (i, j), i < j, among the
// n(n−1)/2 pairs of an n-sequence set.
func PairIndex(n, i, j int) int { return pairIndex(n, i, j) }

// Digest returns the verification digest of a score vector.
func Digest(scores []int32) string { return digest(scores) }
