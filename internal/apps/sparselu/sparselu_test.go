package sparselu

import (
	"bytes"
	"math"
	"testing"

	"bots/internal/core"
	"bots/internal/sim"
	"bots/internal/trace"
)

// toDense expands the block matrix to a dense n×n matrix (nil blocks
// are zero).
func toDense(m *Matrix) []float64 {
	n := m.NB * m.BS
	out := make([]float64, n*n)
	for bi := 0; bi < m.NB; bi++ {
		for bj := 0; bj < m.NB; bj++ {
			b := m.at(bi, bj)
			if b == nil {
				continue
			}
			for i := 0; i < m.BS; i++ {
				for j := 0; j < m.BS; j++ {
					out[(bi*m.BS+i)*n+(bj*m.BS+j)] = b[i*m.BS+j]
				}
			}
		}
	}
	return out
}

// TestLUReconstruction checks that the factorization satisfies
// L·U = A on the dense expansion: the definitive correctness check
// for lu0/fwd/bdiv/bmod working together.
func TestLUReconstruction(t *testing.T) {
	m := NewMatrix(4, 8)
	orig := toDense(m)
	Seq(m)
	fact := toDense(m)
	n := m.NB * m.BS
	// Extract L (unit lower) and U (upper) and multiply.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				var l float64
				if k == i {
					l = 1
				} else {
					l = fact[i*n+k]
				}
				if k <= j {
					sum += l * fact[k*n+j]
				}
			}
			// A position can be nonzero in L·U only where the
			// factorization placed values; compare against original.
			if d := math.Abs(sum - orig[i*n+j]); d > 1e-6 {
				t.Fatalf("L·U differs from A at (%d,%d): %v vs %v (Δ=%v)",
					i, j, sum, orig[i*n+j], d)
			}
		}
	}
}

func TestFillInHappens(t *testing.T) {
	m := NewMatrix(8, 4)
	var before int
	for _, b := range m.Blocks {
		if b != nil {
			before++
		}
	}
	Seq(m)
	var after int
	for _, b := range m.Blocks {
		if b != nil {
			after++
		}
	}
	if after <= before {
		t.Fatalf("expected fill-in: %d blocks before, %d after", before, after)
	}
	if before == len(m.Blocks) {
		t.Fatal("input matrix should be sparse (have nil blocks)")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMatrix(4, 4)
	c := m.Clone()
	m.Blocks[0][0] = 12345
	if c.Blocks[0][0] == 12345 {
		t.Fatal("Clone must deep-copy block data")
	}
}

func TestAllGeneratorVersionsVerify(t *testing.T) {
	b, err := core.Get("sparselu")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range b.Versions {
		for _, threads := range []int{1, 4} {
			res, err := b.Run(core.RunConfig{Class: core.Test, Version: version, Threads: threads})
			if err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
			if err := b.Check(seq, res); err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
			if res.Stats.TotalTasks() == 0 {
				t.Fatalf("%s/%d: no tasks created", version, threads)
			}
		}
	}
}

func TestWorkParityAcrossGenerators(t *testing.T) {
	b, _ := core.Get("sparselu")
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"single-tied", "for-untied"} {
		res, err := b.Run(core.RunConfig{Class: core.Test, Version: v, Threads: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.WorkUnits != seq.Work {
			t.Fatalf("%s: work %d != sequential %d", v, res.Stats.WorkUnits, seq.Work)
		}
	}
}

// TestDepVersionVerifiesAcrossClasses checks the dependence-driven
// factorization against the sequential digest on the test, small and
// medium classes (the acceptance gate for the dep generator).
func TestDepVersionVerifiesAcrossClasses(t *testing.T) {
	b, err := core.Get("sparselu")
	if err != nil {
		t.Fatal(err)
	}
	classes := []core.Class{core.Test, core.Small}
	if !testing.Short() {
		classes = append(classes, core.Medium)
	}
	for _, class := range classes {
		seq, err := b.Seq(class)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run(core.RunConfig{Class: class, Version: "dep-tied", Threads: 4})
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if err := b.Check(seq, res); err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if res.Stats.WorkUnits != seq.Work {
			t.Fatalf("%s: work %d != sequential %d", class, res.Stats.WorkUnits, seq.Work)
		}
	}
}

// TestDepVersionFewerBarriers: the point of the dependence API — the
// dep generator must synchronize with strictly fewer barriers than
// the paper's best barrier-driven scheme (for-tied), and it must
// actually exercise the dependence machinery.
func TestDepVersionFewerBarriers(t *testing.T) {
	b, _ := core.Get("sparselu")
	dep, err := b.Run(core.RunConfig{Class: core.Test, Version: "dep-tied", Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	forv, err := b.Run(core.RunConfig{Class: core.Test, Version: "for-tied", Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Stats.Barriers >= forv.Stats.Barriers {
		t.Fatalf("dep-tied barriers = %d, want strictly fewer than for-tied's %d",
			dep.Stats.Barriers, forv.Stats.Barriers)
	}
	if dep.Stats.DepEdges == 0 || dep.Stats.TasksDepDeferred == 0 {
		t.Fatalf("dep-tied resolved %d edges, deferred %d tasks — dependence machinery unused",
			dep.Stats.DepEdges, dep.Stats.TasksDepDeferred)
	}
	if dep.Stats.Taskwaits != 0 {
		t.Fatalf("dep-tied used %d taskwaits; the dep graph should need none", dep.Stats.Taskwaits)
	}
}

// TestDepTraceRoundTripAndReplay is the end-to-end acceptance test:
// record a dep-driven region, check the dependence edges survive the
// binary trace format, and replay the loaded trace in the simulator.
func TestDepTraceRoundTripAndReplay(t *testing.T) {
	b, _ := core.Get("sparselu")
	rec := trace.NewRecorder()
	const threads = 4
	if _, err := b.Run(core.RunConfig{
		Class: core.Test, Version: "dep-tied", Threads: threads, Recorder: rec,
	}); err != nil {
		t.Fatal(err)
	}
	tr := rec.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	edges := 0
	for i := range tr.Tasks {
		edges += len(tr.Tasks[i].Deps)
	}
	if edges == 0 {
		t.Fatal("recorded dep-tied trace has no dependence edges")
	}
	prio := 0
	for i := range tr.Tasks {
		if tr.Tasks[i].Priority != 0 {
			prio++
		}
	}
	if prio == 0 {
		t.Fatal("recorded dep-tied trace has no prioritized tasks")
	}

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loadedEdges := 0
	for i := range loaded.Tasks {
		loadedEdges += len(loaded.Tasks[i].Deps)
		for _, d := range loaded.Tasks[i].Deps {
			found := false
			for _, od := range tr.Tasks[i].Deps {
				if od == d {
					found = true
				}
			}
			if !found {
				t.Fatalf("task %d: loaded dep %d not in recorded deps %v", i, d, tr.Tasks[i].Deps)
			}
		}
	}
	if loadedEdges != edges {
		t.Fatalf("dependence edges after round-trip: %d, want %d", loadedEdges, edges)
	}

	res, err := sim.Run(loaded, 8, sim.Params{WorkUnitNS: 1})
	if err != nil {
		t.Fatalf("simulating dep trace: %v", err)
	}
	if res.Speedup <= 1 {
		t.Errorf("dep graph simulated speedup on 8 threads = %.2f, want > 1", res.Speedup)
	}
}

func TestImbalanceExists(t *testing.T) {
	// The paper's premise: non-null blocks are unevenly distributed,
	// so per-phase task counts vary. Sanity-check the input pattern.
	m := NewMatrix(16, 4)
	counts := make([]int, 16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if m.at(i, j) != nil {
				counts[i]++
			}
		}
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == max {
		t.Fatalf("row occupancies are uniform (%d); expected imbalance", min)
	}
}
