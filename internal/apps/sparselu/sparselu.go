// Package sparselu implements the BOTS SparseLU benchmark: an LU
// factorization of a sparse blocked matrix. The first-level matrix
// holds pointers to bs×bs submatrices, many of which are not
// allocated; the sparseness creates heavy load imbalance, which task
// parallelism absorbs better than a static loop schedule. In each
// phase of step kk a task is created for every non-null block:
// forward substitution along row kk (fwd), block division along
// column kk (bdiv), and trailing-submatrix update (bmod), with
// fill-in blocks allocated as updates hit null blocks.
//
// Three generator schemes are provided. The "single" and "for"
// versions are the paper's: one thread creates all tasks inside a
// single construct with taskwaits between phases, or a for
// worksharing construct distributes creation with barriers between
// phases. The "dep" versions are the OpenMP 4.0-style successor the
// paper's future work points toward: every task carries In/Out/InOut
// dependence clauses on the blocks it touches, the runtime derives
// the inter-task ordering from them, and the per-phase barriers
// disappear entirely — tasks from step kk+1 start as soon as their
// actual predecessors finish, while unrelated bmod updates from step
// kk are still in flight.
package sparselu

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"bots/internal/core"
	"bots/internal/inputs"
	"bots/internal/omp"
)

const inputSeed = 0x5BA25E10

// dims holds the block-matrix geometry per class: nb×nb blocks of
// bs×bs values.
type dims struct{ nb, bs int }

var classDims = map[core.Class]dims{
	core.Test:   {8, 16},
	core.Small:  {16, 32},
	core.Medium: {32, 48},
	core.Large:  {48, 64},
}

const capturedBytes = 32 // block pointers + indices

// Matrix is the first-level sparse block matrix.
type Matrix struct {
	NB, BS int
	Blocks [][]float64 // nil = unallocated block
}

// NewMatrix builds the deterministic input matrix for the given
// geometry.
func NewMatrix(nb, bs int) *Matrix {
	pattern := inputs.SparsePattern(nb, inputSeed)
	m := &Matrix{NB: nb, BS: bs, Blocks: make([][]float64, nb*nb)}
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			if pattern[i*nb+j] {
				m.Blocks[i*nb+j] = inputs.Block(bs, i, j, nb, inputSeed)
			}
		}
	}
	return m
}

// Clone deep-copies the matrix (so sequential and parallel runs
// factorize identical inputs).
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{NB: m.NB, BS: m.BS, Blocks: make([][]float64, len(m.Blocks))}
	for i, b := range m.Blocks {
		if b != nil {
			c.Blocks[i] = append([]float64(nil), b...)
		}
	}
	return c
}

func (m *Matrix) at(i, j int) []float64 { return m.Blocks[i*m.NB+j] }

// allocIfNeeded returns the block at (i, j), allocating a zero block
// for fill-in.
func (m *Matrix) allocIfNeeded(i, j int) []float64 {
	if m.Blocks[i*m.NB+j] == nil {
		m.Blocks[i*m.NB+j] = make([]float64, m.BS*m.BS)
	}
	return m.Blocks[i*m.NB+j]
}

// lu0 factorizes the diagonal block in place (Doolittle, no
// pivoting; the input generator makes diagonals dominant). Returns
// work units.
func lu0(d []float64, bs int) int64 {
	for k := 0; k < bs; k++ {
		dk := d[k*bs+k]
		for i := k + 1; i < bs; i++ {
			d[i*bs+k] /= dk
			lik := d[i*bs+k]
			for j := k + 1; j < bs; j++ {
				d[i*bs+j] -= lik * d[k*bs+j]
			}
		}
	}
	return int64(bs) * int64(bs) * int64(bs) / 3
}

// fwd solves L·X = B for X in place (B := L⁻¹B), with L the
// unit-lower triangle of diag.
func fwd(diag, b []float64, bs int) int64 {
	for k := 0; k < bs; k++ {
		for i := k + 1; i < bs; i++ {
			lik := diag[i*bs+k]
			if lik == 0 {
				continue
			}
			for j := 0; j < bs; j++ {
				b[i*bs+j] -= lik * b[k*bs+j]
			}
		}
	}
	return int64(bs) * int64(bs) * int64(bs) / 2
}

// bdiv solves X·U = B for X in place (B := B·U⁻¹), with U the upper
// triangle of diag.
func bdiv(diag, b []float64, bs int) int64 {
	for i := 0; i < bs; i++ {
		for k := 0; k < bs; k++ {
			b[i*bs+k] /= diag[k*bs+k]
			bik := b[i*bs+k]
			for j := k + 1; j < bs; j++ {
				b[i*bs+j] -= bik * diag[k*bs+j]
			}
		}
	}
	return int64(bs) * int64(bs) * int64(bs) / 2
}

// bmod computes inner -= row·col (the trailing update).
func bmod(row, col, inner []float64, bs int) int64 {
	for i := 0; i < bs; i++ {
		for k := 0; k < bs; k++ {
			rik := row[i*bs+k]
			if rik == 0 {
				continue
			}
			for j := 0; j < bs; j++ {
				inner[i*bs+j] -= rik * col[k*bs+j]
			}
		}
	}
	return int64(bs) * int64(bs) * int64(bs)
}

// Seq factorizes m in place sequentially, returning work units.
func Seq(m *Matrix) int64 {
	nb, bs := m.NB, m.BS
	var work int64
	for kk := 0; kk < nb; kk++ {
		work += lu0(m.at(kk, kk), bs)
		for jj := kk + 1; jj < nb; jj++ {
			if m.at(kk, jj) != nil {
				work += fwd(m.at(kk, kk), m.at(kk, jj), bs)
			}
		}
		for ii := kk + 1; ii < nb; ii++ {
			if m.at(ii, kk) != nil {
				work += bdiv(m.at(kk, kk), m.at(ii, kk), bs)
			}
		}
		for ii := kk + 1; ii < nb; ii++ {
			if m.at(ii, kk) == nil {
				continue
			}
			for jj := kk + 1; jj < nb; jj++ {
				if m.at(kk, jj) == nil {
					continue
				}
				work += bmod(m.at(ii, kk), m.at(kk, jj), m.allocIfNeeded(ii, jj), bs)
			}
		}
	}
	return work
}

func taskOpts(untied bool) []omp.TaskOpt {
	opts := []omp.TaskOpt{omp.Captured(capturedBytes)}
	if untied {
		opts = append(opts, omp.Untied())
	}
	return opts
}

// parSingle is the single-generator parallel factorization: one
// thread creates every task, with taskwaits separating the phases.
func parSingle(c *omp.Context, m *Matrix, untied bool) {
	nb, bs := m.NB, m.BS
	opts := taskOpts(untied)
	bsq := int64(bs) * int64(bs)
	for kk := 0; kk < nb; kk++ {
		c.AddWork(lu0(m.at(kk, kk), bs))
		c.AddWrites(0, bsq)
		for jj := kk + 1; jj < nb; jj++ {
			if b := m.at(kk, jj); b != nil {
				diag := m.at(kk, kk)
				c.Task(func(c *omp.Context) {
					c.AddWork(fwd(diag, b, bs))
					c.AddWrites(bsq/2, bsq/2)
				}, opts...)
			}
		}
		for ii := kk + 1; ii < nb; ii++ {
			if b := m.at(ii, kk); b != nil {
				diag := m.at(kk, kk)
				c.Task(func(c *omp.Context) {
					c.AddWork(bdiv(diag, b, bs))
					c.AddWrites(bsq/2, bsq/2)
				}, opts...)
			}
		}
		c.Taskwait()
		for ii := kk + 1; ii < nb; ii++ {
			row := m.at(ii, kk)
			if row == nil {
				continue
			}
			for jj := kk + 1; jj < nb; jj++ {
				col := m.at(kk, jj)
				if col == nil {
					continue
				}
				inner := m.allocIfNeeded(ii, jj)
				c.Task(func(c *omp.Context) {
					c.AddWork(bmod(row, col, inner, bs))
					c.AddWrites(bsq/2, bsq/2)
				}, opts...)
			}
		}
		c.Taskwait()
	}
}

// parFor is the multiple-generator factorization: for worksharing
// distributes task creation across the team, with barriers (which
// drain tasks) separating the phases.
func parFor(c *omp.Context, m *Matrix, untied bool) {
	nb, bs := m.NB, m.BS
	opts := taskOpts(untied)
	bsq := int64(bs) * int64(bs)
	for kk := 0; kk < nb; kk++ {
		kk := kk
		c.Single(func(c *omp.Context) {
			c.AddWork(lu0(m.at(kk, kk), bs))
			c.AddWrites(0, bsq)
			// Fill-in must be allocated before the parallel phases so
			// the for-loops below see a stable structure.
			for ii := kk + 1; ii < nb; ii++ {
				if m.at(ii, kk) == nil {
					continue
				}
				for jj := kk + 1; jj < nb; jj++ {
					if m.at(kk, jj) != nil {
						m.allocIfNeeded(ii, jj)
					}
				}
			}
		})
		c.For(kk+1, nb, func(c *omp.Context, jj int) {
			if b := m.at(kk, jj); b != nil {
				diag := m.at(kk, kk)
				c.Task(func(c *omp.Context) {
					c.AddWork(fwd(diag, b, bs))
					c.AddWrites(bsq/2, bsq/2)
				}, opts...)
			}
			if b := m.at(jj, kk); b != nil {
				diag := m.at(kk, kk)
				c.Task(func(c *omp.Context) {
					c.AddWork(bdiv(diag, b, bs))
					c.AddWrites(bsq/2, bsq/2)
				}, opts...)
			}
		}, omp.WithSchedule(omp.Dynamic, 1))
		c.For(kk+1, nb, func(c *omp.Context, ii int) {
			row := m.at(ii, kk)
			if row == nil {
				return
			}
			for jj := kk + 1; jj < nb; jj++ {
				col := m.at(kk, jj)
				if col == nil {
					continue
				}
				inner := m.at(ii, jj)
				c.Task(func(c *omp.Context) {
					c.AddWork(bmod(row, col, inner, bs))
					c.AddWrites(bsq/2, bsq/2)
				}, opts...)
			}
		}, omp.WithSchedule(omp.Dynamic, 1))
	}
}

// symbolicFill precomputes the fill-in pattern: it allocates, in
// factorization order, every block that Seq would allocate, without
// touching values. The dep generator needs all block storage to exist
// before task creation so dependence clauses can name stable
// addresses across the whole factorization.
func symbolicFill(m *Matrix) {
	nb := m.NB
	for kk := 0; kk < nb; kk++ {
		for ii := kk + 1; ii < nb; ii++ {
			if m.at(ii, kk) == nil {
				continue
			}
			for jj := kk + 1; jj < nb; jj++ {
				if m.at(kk, jj) != nil {
					m.allocIfNeeded(ii, jj)
				}
			}
		}
	}
}

// parDep is the dependence-driven factorization: one generator
// creates every task of every step up front, with In/Out/InOut
// clauses keyed on the block storage standing in for the phase
// barriers of the other schemes. The diagonal-factor and
// panel-solve tasks sit on the critical path, so they carry a
// higher priority than the O(nb²) trailing updates.
func parDep(c *omp.Context, m *Matrix, untied bool) {
	nb, bs := m.NB, m.BS
	opts := taskOpts(untied)
	prioOpts := append(append([]omp.TaskOpt(nil), opts...), omp.Priority(1))
	bsq := int64(bs) * int64(bs)
	symbolicFill(m)
	for kk := 0; kk < nb; kk++ {
		diag := m.at(kk, kk)
		c.Task(func(c *omp.Context) {
			c.AddWork(lu0(diag, bs))
			c.AddWrites(0, bsq)
		}, append([]omp.TaskOpt{omp.InOut(diag)}, prioOpts...)...)
		for jj := kk + 1; jj < nb; jj++ {
			if b := m.at(kk, jj); b != nil {
				b := b
				c.Task(func(c *omp.Context) {
					c.AddWork(fwd(diag, b, bs))
					c.AddWrites(bsq/2, bsq/2)
				}, append([]omp.TaskOpt{omp.In(diag), omp.InOut(b)}, prioOpts...)...)
			}
		}
		for ii := kk + 1; ii < nb; ii++ {
			if b := m.at(ii, kk); b != nil {
				b := b
				c.Task(func(c *omp.Context) {
					c.AddWork(bdiv(diag, b, bs))
					c.AddWrites(bsq/2, bsq/2)
				}, append([]omp.TaskOpt{omp.In(diag), omp.InOut(b)}, prioOpts...)...)
			}
		}
		for ii := kk + 1; ii < nb; ii++ {
			row := m.at(ii, kk)
			if row == nil {
				continue
			}
			for jj := kk + 1; jj < nb; jj++ {
				col := m.at(kk, jj)
				if col == nil {
					continue
				}
				inner := m.at(ii, jj)
				c.Task(func(c *omp.Context) {
					c.AddWork(bmod(row, col, inner, bs))
					c.AddWrites(bsq/2, bsq/2)
				}, append([]omp.TaskOpt{omp.In(row, col), omp.InOut(inner)}, opts...)...)
			}
		}
	}
}

func digest(m *Matrix) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, b := range m.Blocks {
		if b == nil {
			h.Write([]byte{0xFF})
			continue
		}
		for _, v := range b {
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				buf[i] = byte(bits >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func seqRun(class core.Class) (*core.SeqResult, error) {
	d := classDims[class]
	m := NewMatrix(d.nb, d.bs)
	start := time.Now()
	work := Seq(m)
	elapsed := time.Since(start)
	var allocated int64
	for _, b := range m.Blocks {
		if b != nil {
			allocated++
		}
	}
	return &core.SeqResult{
		Digest:   digest(m),
		Work:     work,
		Elapsed:  elapsed,
		MemBytes: allocated * int64(d.bs) * int64(d.bs) * 8,
	}, nil
}

func parRun(cfg core.RunConfig) (*core.RunResult, error) {
	variant, err := core.ParseVersion(cfg.Version)
	if err != nil {
		return nil, err
	}
	d := classDims[cfg.Class]
	m := NewMatrix(d.nb, d.bs)
	start := time.Now()
	var st *omp.Stats
	switch variant.Generator {
	case "for":
		st = omp.Parallel(cfg.Threads, func(c *omp.Context) {
			parFor(c, m, variant.Untied)
		}, cfg.TeamOpts()...)
	case "dep":
		st = omp.Parallel(cfg.Threads, func(c *omp.Context) {
			c.SingleNowait(func(c *omp.Context) { parDep(c, m, variant.Untied) })
			// No phase synchronization at all: the region-end barrier
			// drains the dependence graph.
		}, cfg.TeamOpts()...)
	default: // "single"
		st = omp.Parallel(cfg.Threads, func(c *omp.Context) {
			c.Single(func(c *omp.Context) { parSingle(c, m, variant.Untied) })
		}, cfg.TeamOpts()...)
	}
	elapsed := time.Since(start)
	return &core.RunResult{Digest: digest(m), Stats: st, Elapsed: elapsed}, nil
}

func init() {
	core.Register(&core.Benchmark{
		Name:           "sparselu",
		Origin:         "-",
		Domain:         "Sparse linear algebra",
		Structure:      "Iterative",
		TaskDirectives: 4,
		TasksInside:    "single/for",
		NestedTasks:    false,
		AppCutoff:      "none",
		Versions:       core.GeneratorVersions(),
		BestVersion:    "for-tied",
		Profile:        core.Profile{MemFraction: 0.15, BandwidthCap: 16},
		Seq:            seqRun,
		Run:            parRun,
	})
}
