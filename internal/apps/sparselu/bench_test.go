package sparselu

import "testing"

func BenchmarkKernels(b *testing.B) {
	const bs = 64
	m := NewMatrix(2, bs)
	diag := append([]float64(nil), m.at(0, 0)...)
	lu0(diag, bs)
	// Off-diagonal blocks may be absent in the sparse pattern;
	// materialize them for the kernel benchmarks.
	row := append([]float64(nil), m.allocIfNeeded(0, 1)...)
	col := append([]float64(nil), m.allocIfNeeded(1, 0)...)
	inner := make([]float64, bs*bs)
	b.Run("lu0", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := append([]float64(nil), m.at(0, 0)...)
			lu0(d, bs)
		}
	})
	b.Run("fwd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fwd(diag, row, bs)
		}
	})
	b.Run("bdiv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bdiv(diag, col, bs)
		}
	})
	b.Run("bmod", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bmod(row, col, inner, bs)
		}
	})
}

func BenchmarkSeqFactorize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := NewMatrix(8, 32)
		Seq(m)
	}
}
