package sparselu

import (
	"bots/internal/core"
	"bots/internal/omp"
)

// Service-mode hooks: internal/serve drives the dependence-driven
// factorization as a per-request task DAG on a persistent team. A
// request clones a shared input matrix, factorizes it with ParDep, and
// verifies the digest against the sequential reference.

// DimsFor returns the block-matrix geometry for class.
func DimsFor(class core.Class) (nb, bs int) {
	d := classDims[class]
	return d.nb, d.bs
}

// ParDep factorizes m in place with the dependence-driven generator
// (In/Out/InOut clauses, no phase barriers). It must run inside a task
// region; the caller synchronizes completion (taskwait, or the end of
// a persistent-team submission).
func ParDep(c *omp.Context, m *Matrix, untied bool) { parDep(c, m, untied) }

// Digest returns the verification digest of the factorized matrix.
func Digest(m *Matrix) string { return digest(m) }
