package fib

import (
	"testing"
	"testing/quick"

	"bots/internal/core"
	"bots/internal/omp"
)

func TestIterativeKnownValues(t *testing.T) {
	known := map[int]uint64{0: 0, 1: 1, 2: 1, 10: 55, 20: 6765, 30: 832040, 50: 12586269025}
	for n, want := range known {
		if got := Iterative(n); got != want {
			t.Errorf("Iterative(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSeqMatchesIterative(t *testing.T) {
	for n := 0; n <= 25; n++ {
		v, calls := Seq(n)
		if v != Iterative(n) {
			t.Fatalf("Seq(%d) = %d, want %d", n, v, Iterative(n))
		}
		if calls < 1 {
			t.Fatalf("Seq(%d) reported %d calls", n, calls)
		}
	}
}

func TestSeqCallCountRecurrence(t *testing.T) {
	// calls(n) = calls(n-1) + calls(n-2) + 1
	f := func(raw uint8) bool {
		n := int(raw%20) + 2
		_, c := Seq(n)
		_, c1 := Seq(n - 1)
		_, c2 := Seq(n - 2)
		return c == c1+c2+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllVersionsVerify(t *testing.T) {
	b, err := core.Get("fib")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range b.Versions {
		for _, threads := range []int{1, 4} {
			res, err := b.Run(core.RunConfig{
				Class: core.Test, Version: version, Threads: threads,
			})
			if err != nil {
				t.Fatalf("%s/%d threads: %v", version, threads, err)
			}
			if err := b.Check(seq, res); err != nil {
				t.Fatalf("%s/%d threads: %v", version, threads, err)
			}
		}
	}
}

func TestManualCutoffCreatesFewerTasks(t *testing.T) {
	b, _ := core.Get("fib")
	run := func(version string) *core.RunResult {
		r, err := b.Run(core.RunConfig{Class: core.Test, Version: version, Threads: 2, CutoffDepth: 4})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	manual := run("manual-tied")
	ifv := run("if-tied")
	none := run("none-tied")
	if manual.Stats.TotalTasks() >= none.Stats.TotalTasks() {
		t.Fatalf("manual cut-off tasks (%d) should be far below no-cutoff (%d)",
			manual.Stats.TotalTasks(), none.Stats.TotalTasks())
	}
	// The if-clause version still *creates* (undeferred) tasks below
	// the cut-off, so it must report more total tasks than manual.
	if ifv.Stats.TotalTasks() <= manual.Stats.TotalTasks() {
		t.Fatalf("if-clause tasks (%d) should exceed manual tasks (%d)",
			ifv.Stats.TotalTasks(), manual.Stats.TotalTasks())
	}
	if ifv.Stats.TasksUndeferred == 0 {
		t.Fatal("if-clause version should have undeferred tasks")
	}
	if none.Stats.TasksUndeferred != 0 {
		t.Fatal("no-cutoff version should not undefer anything")
	}
}

func TestCutoffDepthOverride(t *testing.T) {
	b, _ := core.Get("fib")
	shallow, err := b.Run(core.RunConfig{Class: core.Test, Version: "manual-tied", Threads: 2, CutoffDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := b.Run(core.RunConfig{Class: core.Test, Version: "manual-tied", Threads: 2, CutoffDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Stats.TotalTasks() >= deep.Stats.TotalTasks() {
		t.Fatalf("deeper cut-off should create more tasks: depth2=%d depth8=%d",
			shallow.Stats.TotalTasks(), deep.Stats.TotalTasks())
	}
}

func TestWorkAccountingMatchesSeq(t *testing.T) {
	// The no-cutoff parallel version must report exactly the serial
	// call count as work units (work-unit parity is what makes the
	// simulator calibration sound).
	b, _ := core.Get("fib")
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(core.RunConfig{Class: core.Test, Version: "none-tied", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WorkUnits != seq.Work {
		t.Fatalf("parallel work units %d != sequential %d", res.Stats.WorkUnits, seq.Work)
	}
	// And the manual version folds the same total work into fewer tasks.
	man, err := b.Run(core.RunConfig{Class: core.Test, Version: "manual-untied", Threads: 2, CutoffDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if man.Stats.WorkUnits != seq.Work {
		t.Fatalf("manual version work units %d != sequential %d", man.Stats.WorkUnits, seq.Work)
	}
}

func TestRuntimeCutoffInteraction(t *testing.T) {
	b, _ := core.Get("fib")
	res, err := b.Run(core.RunConfig{
		Class: core.Test, Version: "none-tied", Threads: 2,
		RuntimeCutoff: omp.MaxTasks{Limit: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TasksUndeferred == 0 {
		t.Fatal("runtime MaxTasks cut-off should undefer tasks in the no-cutoff version")
	}
}
