package fib

import "testing"

func BenchmarkSeqFib25(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Seq(25)
	}
}

func BenchmarkIterative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Iterative(90)
	}
}
