// Package fib implements the BOTS Fibonacci benchmark: the n-th
// Fibonacci number by naive binary recursion, parallelized with one
// task per recursive call. As the paper notes, it is not a sensible
// way to compute Fibonacci numbers; it is the canonical stress test
// of a deep tree of very fine-grained tasks, where the entire
// challenge is task-management overhead. It ships with if-clause,
// manual and no-cut-off versions, tied and untied.
package fib

import (
	"fmt"
	"time"

	"bots/internal/core"
	"bots/internal/omp"
)

// Input sizes per class. Scaled from the paper's fib(50) medium so
// the no-cut-off version remains traceable (task count = 2·fib(n+1)−1).
var classN = map[core.Class]int{
	core.Test:   16,
	core.Small:  23,
	core.Medium: 27,
	core.Large:  31,
}

// DefaultCutoffDepth is the default depth for the if/manual cut-off
// versions, matching the grain BOTS uses for fib.
const DefaultCutoffDepth = 10

// capturedBytes is the environment copied into each task: the int
// argument and the result pointer.
const capturedBytes = 16

// Seq computes fib(n) by naive recursion, returning the value and
// the number of calls performed (the benchmark's work measure).
func Seq(n int) (value uint64, calls int64) {
	if n < 2 {
		return uint64(n), 1
	}
	a, ca := Seq(n - 1)
	b, cb := Seq(n - 2)
	return a + b, ca + cb + 1
}

// Iterative computes fib(n) in linear time; it is the benchmark's
// output-validation oracle.
func Iterative(n int) uint64 {
	a, b := uint64(0), uint64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// par runs one task-parallel fib computation.
func par(c *omp.Context, n, depth, cutoff int, variant core.Variant, res *uint64) {
	c.AddWork(1)
	c.AddWrites(0, 1) // result returned through a shared (parent-stack) variable
	if n < 2 {
		*res = uint64(n)
		return
	}
	var a, b uint64
	spawn := func(m int, dst *uint64) {
		body := func(c *omp.Context) { par(c, m, depth+1, cutoff, variant, dst) }
		switch variant.Cutoff {
		case "manual":
			if depth < cutoff {
				c.Task(body, taskOpts(variant, nil)...)
			} else {
				// Manual cut-off: plain recursion, no task at all.
				v, calls := Seq(m)
				c.AddWork(calls)
				c.AddWrites(0, calls)
				*dst = v
			}
		case "if":
			c.Task(body, taskOpts(variant, omp.If(depth < cutoff))...)
		default: // "none"
			c.Task(body, taskOpts(variant, nil)...)
		}
	}
	spawn(n-1, &a)
	spawn(n-2, &b)
	c.Taskwait()
	*res = a + b
}

func taskOpts(variant core.Variant, extra omp.TaskOpt) []omp.TaskOpt {
	opts := []omp.TaskOpt{omp.Captured(capturedBytes)}
	if variant.Untied {
		opts = append(opts, omp.Untied())
	}
	if extra != nil {
		opts = append(opts, extra)
	}
	return opts
}

func digest(n int, v uint64) string { return fmt.Sprintf("fib(%d)=%d", n, v) }

func seqRun(class core.Class) (*core.SeqResult, error) {
	n := classN[class]
	start := time.Now()
	v, calls := Seq(n)
	elapsed := time.Since(start)
	if v != Iterative(n) {
		return nil, fmt.Errorf("fib: sequential self-check failed for n=%d", n)
	}
	return &core.SeqResult{
		Digest:   digest(n, v),
		Work:     calls,
		Elapsed:  elapsed,
		MemBytes: int64(n) * 64, // recursion stack only
	}, nil
}

func parRun(cfg core.RunConfig) (*core.RunResult, error) {
	variant, err := core.ParseVersion(cfg.Version)
	if err != nil {
		return nil, err
	}
	n := classN[cfg.Class]
	cutoff := cfg.CutoffDepth
	if cutoff <= 0 {
		cutoff = DefaultCutoffDepth
	}
	var res uint64
	start := time.Now()
	st := omp.Parallel(cfg.Threads, func(c *omp.Context) {
		c.Single(func(c *omp.Context) {
			c.Task(func(c *omp.Context) {
				par(c, n, 0, cutoff, variant, &res)
			}, taskOpts(variant, nil)...)
		})
	}, cfg.TeamOpts()...)
	elapsed := time.Since(start)
	if res != Iterative(n) {
		return nil, fmt.Errorf("fib: parallel result %d != %d for n=%d (version %s)",
			res, Iterative(n), n, cfg.Version)
	}
	return &core.RunResult{
		Digest:  digest(n, res),
		Stats:   st,
		Elapsed: elapsed,
	}, nil
}

func init() {
	core.Register(&core.Benchmark{
		Name:           "fib",
		Origin:         "-",
		Domain:         "Integer",
		Structure:      "At each node",
		TaskDirectives: 2,
		TasksInside:    "single",
		NestedTasks:    true,
		AppCutoff:      "depth-based",
		Versions:       core.CutoffVersions(),
		BestVersion:    "manual-tied",
		Profile:        core.Profile{MemFraction: 0.05, BandwidthCap: 16},
		Seq:            seqRun,
		Run:            parRun,
	})
}
