package uts

import (
	"testing"

	"bots/internal/core"
)

func TestTreeIsDeterministic(t *testing.T) {
	p := classParams[core.Test]
	if Seq(p) != Seq(p) {
		t.Fatal("UTS tree must be a pure function of its parameters")
	}
}

func TestTreeSizeScalesWithClass(t *testing.T) {
	sizes := map[core.Class]int64{}
	for _, c := range []core.Class{core.Test, core.Small, core.Medium} {
		sizes[c] = Seq(classParams[c])
	}
	if !(sizes[core.Test] < sizes[core.Small] && sizes[core.Small] < sizes[core.Medium]) {
		t.Fatalf("class sizes not increasing: %v", sizes)
	}
	if sizes[core.Test] < 100 {
		t.Fatalf("test tree only %d nodes; root branching alone should exceed that", sizes[core.Test])
	}
}

func TestChildHashAvalanche(t *testing.T) {
	// Sibling hashes must differ and child hashes must not equal the
	// parent's (no degenerate cycles).
	h := uint64(0xDEADBEEF)
	seen := map[uint64]bool{h: true}
	for i := 0; i < 16; i++ {
		c := childHash(h, i)
		if seen[c] {
			t.Fatalf("hash collision at child %d", i)
		}
		seen[c] = true
	}
}

func TestTreeIsUnbalanced(t *testing.T) {
	// The defining property: sibling subtree sizes vary wildly.
	p := classParams[core.Small]
	root := uint64(12345)
	_ = root
	rootHash := uint64(99)
	var min, max int64 = 1 << 62, 0
	n := numChildren(rootHash, p, true)
	if n != p.b0 {
		t.Fatalf("root must have b0 children")
	}
	for i := 0; i < 64; i++ {
		var sink uint64
		s := seqCount(childHash(rootHash, i), 1, p, &sink)
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max < 10*min+10 {
		t.Fatalf("subtree sizes too uniform: min=%d max=%d (want heavy imbalance)", min, max)
	}
}

func TestAllVersionsCountTheSameTree(t *testing.T) {
	b, err := core.Get("uts")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range b.Versions {
		for _, threads := range []int{1, 4} {
			res, err := b.Run(core.RunConfig{Class: core.Test, Version: version, Threads: threads})
			if err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
			if err := b.Check(seq, res); err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
		}
	}
}

func TestWorkEqualsNodes(t *testing.T) {
	b, _ := core.Get("uts")
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(core.RunConfig{Class: core.Test, Version: "none-tied", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WorkUnits != seq.Work {
		t.Fatalf("work %d != nodes %d", res.Stats.WorkUnits, seq.Work)
	}
	if res.Stats.TotalTasks() != seq.Work {
		t.Fatalf("no-cutoff should create one task per node: %d vs %d",
			res.Stats.TotalTasks(), seq.Work)
	}
}

func TestExtensionFlagSet(t *testing.T) {
	b, _ := core.Get("uts")
	if !b.Extension {
		t.Fatal("uts must be marked as a post-paper extension")
	}
}
