// Package uts implements Unbalanced Tree Search, the benchmark the
// BOTS authors added to the suite after the ICPP 2009 paper (its §V
// future work): counting the nodes of an implicitly defined, highly
// unbalanced tree. Each node's children are determined by a
// deterministic splittable hash of the node's identity (the original
// uses SHA-1; this port uses the suite's splitmix-based generator,
// preserving the property that the tree shape is a pure function of
// the root seed), so the tree can only be discovered by traversal and
// the work distribution is impossible to balance statically — the
// worst case for task schedulers and the best case for work stealing.
//
// The tree model is the binomial variant of UTS: the root has b0
// children; every other node has m children with probability q and 0
// with probability 1−q (q·m < 1 keeps the tree finite, with heavy-
// tailed subtree sizes).
package uts

import (
	"fmt"
	"time"

	"bots/internal/core"
	"bots/internal/inputs"
	"bots/internal/omp"
)

// params defines one UTS tree.
type params struct {
	b0   int     // root branching factor
	m    int     // non-root branching factor
	q    float64 // branching probability
	gran int     // hash iterations per node (the original's SHA-1 cost)
	seed uint64
}

var classParams = map[core.Class]params{
	core.Test:   {200, 4, 0.200, 150, 19},
	core.Small:  {2000, 4, 0.230, 150, 29},
	core.Medium: {6000, 4, 0.235, 150, 31},
	core.Large:  {12000, 4, 0.2400, 150, 37},
}

// DefaultCutoffDepth bounds task creation in the if/manual versions.
const DefaultCutoffDepth = 6

const capturedBytes = 24 // node hash + depth

// childHash derives child i's identity from its parent's, the UTS
// "split" operation.
func childHash(parent uint64, i int) uint64 {
	x := parent ^ (uint64(i)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// numChildren decides a node's branching from its identity hash.
func numChildren(hash uint64, p params, isRoot bool) int {
	if isRoot {
		return p.b0
	}
	// Uniform in [0,1) from the hash.
	u := float64(hash>>11) / (1 << 53)
	if u < p.q {
		return p.m
	}
	return 0
}

// visitWork performs the per-node computation: gran rounds of the
// mixing function, standing in for the SHA-1 evaluation the original
// UTS performs at every node (which is where its time goes). The
// result is folded into the return value so the loop cannot be
// elided.
func visitWork(hash uint64, gran int) uint64 {
	x := hash
	for i := 0; i < gran; i++ {
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// seqCount counts the subtree rooted at the node with the given hash,
// folding the per-node work product into sink.
func seqCount(hash uint64, depth int, p params, sink *uint64) int64 {
	*sink ^= visitWork(hash, p.gran)
	n := numChildren(hash, p, depth == 0)
	total := int64(1)
	for i := 0; i < n; i++ {
		total += seqCount(childHash(hash, i), depth+1, p, sink)
	}
	return total
}

// Seq counts the tree for the given class parameters, returning the
// node count (the verified result).
func Seq(p params) int64 {
	root := inputs.NewRNG(p.seed).Uint64()
	var sink uint64
	n := seqCount(root, 0, p, &sink)
	sinkGuard = sink
	return n
}

// sinkGuard defeats dead-code elimination of the per-node work.
var sinkGuard uint64

// par is the task-parallel traversal with per-thread counters. Work
// is counted in node units (one unit per node), matching Seq's
// accounting; each node's actual cost is gran hash rounds.
func par(c *omp.Context, hash uint64, depth, cutoff int, p params,
	variant core.Variant, counts *omp.ThreadPrivate[int64]) {
	sinkGuard ^= visitWork(hash, p.gran)
	c.AddWork(1)
	c.AddWrites(1, 0)
	*counts.Get(c)++
	n := numChildren(hash, p, depth == 0)
	for i := 0; i < n; i++ {
		ch := childHash(hash, i)
		body := func(c *omp.Context) { par(c, ch, depth+1, cutoff, p, variant, counts) }
		switch variant.Cutoff {
		case "manual":
			if depth < cutoff {
				c.Task(body, taskOpts(variant, nil)...)
			} else {
				var sink uint64
				sub := seqCount(ch, depth+1, p, &sink)
				sinkGuard ^= sink
				*counts.Get(c) += sub
				c.AddWork(sub)
				c.AddWrites(sub, 0)
			}
		case "if":
			c.Task(body, taskOpts(variant, omp.If(depth < cutoff))...)
		default:
			c.Task(body, taskOpts(variant, nil)...)
		}
	}
	c.Taskwait()
}

func taskOpts(variant core.Variant, extra omp.TaskOpt) []omp.TaskOpt {
	opts := []omp.TaskOpt{omp.Captured(capturedBytes)}
	if variant.Untied {
		opts = append(opts, omp.Untied())
	}
	if extra != nil {
		opts = append(opts, extra)
	}
	return opts
}

func digest(nodes int64) string { return fmt.Sprintf("uts-nodes=%d", nodes) }

func seqRun(class core.Class) (*core.SeqResult, error) {
	p := classParams[class]
	start := time.Now()
	nodes := Seq(p)
	elapsed := time.Since(start)
	return &core.SeqResult{
		Digest:   digest(nodes),
		Work:     nodes,
		Metric:   float64(nodes),
		Elapsed:  elapsed,
		MemBytes: 4096, // implicit tree: only the traversal frontier lives in memory
	}, nil
}

func parRun(cfg core.RunConfig) (*core.RunResult, error) {
	variant, err := core.ParseVersion(cfg.Version)
	if err != nil {
		return nil, err
	}
	p := classParams[cfg.Class]
	cutoff := cfg.CutoffDepth
	if cutoff <= 0 {
		cutoff = DefaultCutoffDepth
	}
	counts := omp.NewThreadPrivate[int64](cfg.Threads)
	root := inputs.NewRNG(p.seed).Uint64()
	start := time.Now()
	st := omp.Parallel(cfg.Threads, func(c *omp.Context) {
		c.SingleNowait(func(c *omp.Context) {
			c.Task(func(c *omp.Context) {
				par(c, root, 0, cutoff, p, variant, counts)
			}, taskOpts(variant, nil)...)
		})
		c.Barrier()
	}, cfg.TeamOpts()...)
	elapsed := time.Since(start)
	var total int64
	for i := 0; i < counts.Len(); i++ {
		total += *counts.Slot(i)
	}
	return &core.RunResult{
		Digest:  digest(total),
		Metric:  float64(total),
		Stats:   st,
		Elapsed: elapsed,
	}, nil
}

func init() {
	core.Register(&core.Benchmark{
		Name:           "uts",
		Origin:         "UTS",
		Domain:         "Search",
		Structure:      "At each node",
		TaskDirectives: 1,
		TasksInside:    "single",
		NestedTasks:    true,
		AppCutoff:      "depth-based",
		Extension:      true,
		Versions:       core.CutoffVersions(),
		BestVersion:    "manual-untied",
		Profile:        core.Profile{MemFraction: 0.05, BandwidthCap: 32},
		Seq:            seqRun,
		Run:            parRun,
	})
}
