package uts

import (
	"testing"

	"bots/internal/core"
)

func BenchmarkSeqTraversal(b *testing.B) {
	p := classParams[core.Test]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Seq(p)
	}
}

func BenchmarkVisitWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkGuard ^= visitWork(uint64(i), 150)
	}
}
