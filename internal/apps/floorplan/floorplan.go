// Package floorplan implements the BOTS Floorplan benchmark (from the
// Application Kernel Matrix project): computing the optimal floorplan
// distribution of a number of cells — the minimum bounding-box area
// that fits them all — by recursive branch-and-bound search. Tasks
// are generated hierarchically for each branch of the solution space,
// and the algorithm's state (the partial placement) is copied into
// every child task, which is why the paper reports Floorplan's
// captured environment as by far the largest in the suite.
//
// The pruning is driven by the best area found so far, shared across
// all tasks; that makes the number of nodes visited scheduling-
// dependent, so — exactly as §III-B prescribes — the benchmark
// reports the total number of visited nodes as its throughput metric,
// and verification compares the minimum area (which is invariant)
// rather than the node count.
package floorplan

import (
	"fmt"
	"sync/atomic"
	"time"

	"bots/internal/core"
	"bots/internal/inputs"
	"bots/internal/omp"
)

const inputSeed = 0xF100A91A

// cellCount per class; the branch factor is alternatives × candidate
// positions, so the tree grows steeply with the cell count.
var classCells = map[core.Class]int{
	core.Test:   7,
	core.Small:  9,
	core.Medium: 10,
	core.Large:  12,
}

const maxCellDim = 6

// DefaultCutoffDepth is the level below which the if/manual versions
// stop creating tasks.
const DefaultCutoffDepth = 4

// rect is a placed cell.
type rect struct {
	x, y, w, h int16
}

// state is a partial placement; it is the data copied into each child
// task (the benchmark's large captured environment).
type state struct {
	placed []rect
	w, h   int16 // bounding box of the placement
}

func (s *state) clone() *state {
	ns := &state{w: s.w, h: s.h}
	ns.placed = append(make([]rect, 0, len(s.placed)+1), s.placed...)
	return ns
}

func (s *state) capturedBytes() int { return 8*len(s.placed) + 16 }

func overlaps(a, b rect) bool {
	return a.x < b.x+b.w && b.x < a.x+a.w && a.y < b.y+b.h && b.y < a.y+a.h
}

func (s *state) fits(r rect) bool {
	for _, p := range s.placed {
		if overlaps(p, r) {
			return false
		}
	}
	return true
}

// candidates enumerates the corner positions where the next cell may
// be anchored: (0,0) for an empty board, else the top-right and
// bottom-left corners of each placed cell.
func (s *state) candidates(buf [][2]int16) [][2]int16 {
	buf = buf[:0]
	if len(s.placed) == 0 {
		return append(buf, [2]int16{0, 0})
	}
	seen := make(map[[2]int16]bool, 2*len(s.placed))
	for _, p := range s.placed {
		for _, c := range [2][2]int16{{p.x + p.w, p.y}, {p.x, p.y + p.h}} {
			if !seen[c] {
				seen[c] = true
				buf = append(buf, c)
			}
		}
	}
	return buf
}

// shared is the cross-task search state: the best area found so far
// (for pruning) and the per-thread node counters.
type shared struct {
	best  atomic.Int64
	cells []inputs.Cell
}

// explore visits the node placing cell idx onto s, counting visited
// nodes into *nodes; the recursion below spawn-control is handled by
// the caller via the spawn callback (nil = sequential).
func explore(sh *shared, s *state, idx int, nodes *int64,
	spawn func(child *state, idx int) bool) {
	*nodes++
	if idx == len(sh.cells) {
		area := int64(s.w) * int64(s.h)
		// Install the new best if it improves; CAS loop keeps it
		// monotonically decreasing without a lock.
		for {
			cur := sh.best.Load()
			if area >= cur || sh.best.CompareAndSwap(cur, area) {
				break
			}
		}
		return
	}
	cand := s.candidates(nil)
	for _, alt := range sh.cells[idx].Alts {
		for _, pos := range cand {
			r := rect{x: pos[0], y: pos[1], w: int16(alt[0]), h: int16(alt[1])}
			if !s.fits(r) {
				continue
			}
			nw, nh := s.w, s.h
			if r.x+r.w > nw {
				nw = r.x + r.w
			}
			if r.y+r.h > nh {
				nh = r.y + r.h
			}
			if int64(nw)*int64(nh) >= sh.best.Load() {
				continue // bound: cannot beat the best known area
			}
			child := s.clone()
			child.placed = append(child.placed, r)
			child.w, child.h = nw, nh
			if spawn == nil || !spawn(child, idx+1) {
				explore(sh, child, idx+1, nodes, spawn)
			}
		}
	}
}

// Seq solves the placement sequentially, returning the minimal area
// and the number of nodes visited.
func Seq(cells []inputs.Cell) (area, nodes int64) {
	sh := &shared{cells: cells}
	sh.best.Store(1 << 62)
	var n int64
	explore(sh, &state{}, 0, &n, nil)
	return sh.best.Load(), n
}

func taskOpts(variant core.Variant, captured int, extra omp.TaskOpt) []omp.TaskOpt {
	opts := []omp.TaskOpt{omp.Captured(captured)}
	if variant.Untied {
		opts = append(opts, omp.Untied())
	}
	if extra != nil {
		opts = append(opts, extra)
	}
	return opts
}

// parExplore is the task-parallel search: each branch becomes a task
// (subject to the depth cut-off), with per-thread node counters.
func parExplore(c *omp.Context, sh *shared, s *state, idx, cutoff int,
	variant core.Variant, nodes *omp.ThreadPrivate[int64]) {
	var local int64
	spawn := func(child *state, nextIdx int) bool {
		depth := nextIdx // depth in the task tree == cells placed
		body := func(c *omp.Context) {
			parExplore(c, sh, child, nextIdx, cutoff, variant, nodes)
		}
		switch variant.Cutoff {
		case "manual":
			if depth >= cutoff {
				return false // caller recurses sequentially, no task
			}
			c.Task(body, taskOpts(variant, child.capturedBytes(), nil)...)
		case "if":
			c.Task(body, taskOpts(variant, child.capturedBytes(), omp.If(depth < cutoff))...)
		default:
			c.Task(body, taskOpts(variant, child.capturedBytes(), nil)...)
		}
		return true
	}
	explore(sh, s, idx, &local, spawn)
	c.AddWork(local * int64(len(s.placed)+1))
	c.AddWrites(local*2, local/2)
	*nodes.Get(c) += local
	c.Taskwait()
}

func digest(area int64) string { return fmt.Sprintf("minarea=%d", area) }

func seqRun(class core.Class) (*core.SeqResult, error) {
	cells := inputs.FloorplanCells(classCells[class], maxCellDim, inputSeed)
	start := time.Now()
	area, nodes := Seq(cells)
	elapsed := time.Since(start)
	if area >= 1<<62 {
		return nil, fmt.Errorf("floorplan: no placement found")
	}
	return &core.SeqResult{
		Digest:   digest(area),
		Work:     nodes * int64(classCells[class]/2+1),
		Metric:   float64(nodes),
		Elapsed:  elapsed,
		MemBytes: int64(classCells[class]) * 64,
	}, nil
}

func parRun(cfg core.RunConfig) (*core.RunResult, error) {
	variant, err := core.ParseVersion(cfg.Version)
	if err != nil {
		return nil, err
	}
	cells := inputs.FloorplanCells(classCells[cfg.Class], maxCellDim, inputSeed)
	cutoff := cfg.CutoffDepth
	if cutoff <= 0 {
		cutoff = DefaultCutoffDepth
	}
	sh := &shared{cells: cells}
	sh.best.Store(1 << 62)
	nodes := omp.NewThreadPrivate[int64](cfg.Threads)
	start := time.Now()
	st := omp.Parallel(cfg.Threads, func(c *omp.Context) {
		c.Single(func(c *omp.Context) {
			parExplore(c, sh, &state{}, 0, cutoff, variant, nodes)
		})
	}, cfg.TeamOpts()...)
	elapsed := time.Since(start)
	var total int64
	for i := 0; i < nodes.Len(); i++ {
		total += *nodes.Slot(i)
	}
	return &core.RunResult{
		Digest:  digest(sh.best.Load()),
		Metric:  float64(total),
		Stats:   st,
		Elapsed: elapsed,
	}, nil
}

func init() {
	core.Register(&core.Benchmark{
		Name:           "floorplan",
		Origin:         "AKM",
		Domain:         "Optimization",
		Structure:      "At each node",
		TaskDirectives: 1,
		TasksInside:    "single",
		NestedTasks:    true,
		AppCutoff:      "depth-based",
		Versions:       core.CutoffVersions(),
		BestVersion:    "manual-untied",
		Profile:        core.Profile{MemFraction: 0.1, BandwidthCap: 24},
		Seq:            seqRun,
		Run:            parRun,
		Verify: func(seq *core.SeqResult, par *core.RunResult) error {
			// The minimum area is invariant; the node count is not
			// (pruning order differs), which is exactly why the paper
			// uses nodes/second as Floorplan's metric.
			if seq.Digest != par.Digest {
				return fmt.Errorf("floorplan: minimum area mismatch: %s vs %s", par.Digest, seq.Digest)
			}
			if par.Metric <= 0 {
				return fmt.Errorf("floorplan: no nodes visited")
			}
			return nil
		},
	})
}
