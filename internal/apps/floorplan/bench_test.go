package floorplan

import (
	"testing"

	"bots/internal/inputs"
)

func BenchmarkSeqSearch(b *testing.B) {
	cells := inputs.FloorplanCells(7, 6, inputSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Seq(cells)
	}
}
