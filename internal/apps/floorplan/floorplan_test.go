package floorplan

import (
	"testing"

	"bots/internal/core"
	"bots/internal/inputs"
)

func TestOverlapDetection(t *testing.T) {
	a := rect{0, 0, 4, 4}
	cases := []struct {
		b    rect
		want bool
	}{
		{rect{4, 0, 2, 2}, false}, // touching edges do not overlap
		{rect{0, 4, 2, 2}, false},
		{rect{3, 3, 2, 2}, true},
		{rect{1, 1, 1, 1}, true}, // contained
		{rect{5, 5, 1, 1}, false},
	}
	for _, tc := range cases {
		if got := overlaps(a, tc.b); got != tc.want {
			t.Errorf("overlaps(%v, %v) = %v, want %v", a, tc.b, got, tc.want)
		}
	}
}

func TestTwoUnitCellsPackPerfectly(t *testing.T) {
	cells := []inputs.Cell{
		{Alts: [][2]int{{1, 1}}},
		{Alts: [][2]int{{1, 1}}},
	}
	area, nodes := Seq(cells)
	if area != 2 {
		t.Fatalf("two 1×1 cells: min area = %d, want 2", area)
	}
	if nodes <= 2 {
		t.Fatalf("nodes visited = %d, want several", nodes)
	}
}

func TestRotationIsUsed(t *testing.T) {
	// A 1×4 and a 4×1 cell pack into a 4×2 block (area 8) only if
	// rotation alternatives are explored; stacking same orientation
	// gives 4×2 as well, but mixing without rotation gives 5×4.
	cells := []inputs.Cell{
		{Alts: [][2]int{{1, 4}, {4, 1}}},
		{Alts: [][2]int{{1, 4}, {4, 1}}},
	}
	area, _ := Seq(cells)
	if area != 8 {
		t.Fatalf("min area = %d, want 8 (2×4 packing)", area)
	}
}

func TestSeqDeterministicAndPruned(t *testing.T) {
	cells := inputs.FloorplanCells(6, 4, 77)
	a1, n1 := Seq(cells)
	a2, n2 := Seq(cells)
	if a1 != a2 || n1 != n2 {
		t.Fatalf("sequential floorplan not deterministic: (%d,%d) vs (%d,%d)", a1, n1, a2, n2)
	}
}

func TestAreaLowerBound(t *testing.T) {
	// The optimum can never be below the sum of cell areas (using the
	// smallest alternative per cell).
	cells := inputs.FloorplanCells(6, 4, 123)
	area, _ := Seq(cells)
	var lower int64
	for _, c := range cells {
		min := int64(1 << 62)
		for _, a := range c.Alts {
			if s := int64(a[0]) * int64(a[1]); s < min {
				min = s
			}
		}
		lower += min
	}
	if area < lower {
		t.Fatalf("min area %d below additive lower bound %d", area, lower)
	}
}

func TestAllVersionsFindOptimum(t *testing.T) {
	b, err := core.Get("floorplan")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range b.Versions {
		for _, threads := range []int{1, 4} {
			res, err := b.Run(core.RunConfig{Class: core.Test, Version: version, Threads: threads})
			if err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
			// Verify compares areas and requires a node count; node
			// counts themselves may differ (pruning indeterminism).
			if err := b.Check(seq, res); err != nil {
				t.Fatalf("%s/%d: %v", version, threads, err)
			}
		}
	}
}

func TestNodesMetricReported(t *testing.T) {
	b, _ := core.Get("floorplan")
	seq, err := b.Seq(core.Test)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Metric <= 0 {
		t.Fatal("sequential run must report nodes visited as Metric")
	}
	res, err := b.Run(core.RunConfig{Class: core.Test, Version: "manual-untied", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metric <= 0 {
		t.Fatal("parallel run must report nodes visited as Metric")
	}
}

func TestCandidatePositions(t *testing.T) {
	s := &state{}
	c := s.candidates(nil)
	if len(c) != 1 || c[0] != [2]int16{0, 0} {
		t.Fatalf("empty board candidates = %v, want [(0,0)]", c)
	}
	s.placed = append(s.placed, rect{0, 0, 2, 3})
	c = s.candidates(nil)
	want := map[[2]int16]bool{{2, 0}: true, {0, 3}: true}
	if len(c) != 2 || !want[c[0]] || !want[c[1]] {
		t.Fatalf("candidates after one cell = %v, want corners (2,0) and (0,3)", c)
	}
}
