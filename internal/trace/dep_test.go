package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// buildDepTrace records a diamond with priorities through the public
// Recorder API, as the runtime would: root spawns A (writer), B and C
// (readers of A), and D (writer depending on both readers).
func buildDepTrace(t *testing.T) *Trace {
	t.Helper()
	r := NewRecorder()
	root := r.Root()
	root.AddWork(4)
	a := r.Spawn(root, false, false, 16)
	a.AddWork(10)
	a.SetPriority(2)
	b := r.Spawn(root, false, false, 16)
	b.AddWork(5)
	b.DependsOn(a)
	c := r.Spawn(root, true, false, 16)
	c.AddWork(5)
	c.DependsOn(a)
	d := r.Spawn(root, false, false, 16)
	d.AddWork(7)
	d.DependsOn(b)
	d.DependsOn(c)
	d.DependsOn(b) // duplicate: must collapse
	tr := r.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatalf("built trace invalid: %v", err)
	}
	return tr
}

func TestDepEdgesRecorded(t *testing.T) {
	tr := buildDepTrace(t)
	if got := tr.Tasks[1].Priority; got != 2 {
		t.Errorf("task A priority = %d, want 2", got)
	}
	if got := tr.Tasks[2].Deps; !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("task B deps = %v, want [1]", got)
	}
	if got := tr.Tasks[4].Deps; !reflect.DeepEqual(got, []int32{2, 3}) {
		t.Errorf("task D deps = %v, want [2 3] (duplicate collapsed)", got)
	}
}

// TestDepRoundTrip is the io-format check: dependence edges and
// priorities must survive WriteTo → ReadTrace byte-for-byte.
func TestDepRoundTrip(t *testing.T) {
	tr := buildDepTrace(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	wrote := append([]byte(nil), buf.Bytes()...)
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if got.NumRoots != tr.NumRoots {
		t.Errorf("NumRoots = %d, want %d", got.NumRoots, tr.NumRoots)
	}
	if got.Tasks[1].Priority != 2 {
		t.Errorf("loaded priority = %d, want 2", got.Tasks[1].Priority)
	}
	if !reflect.DeepEqual(got.Tasks[4].Deps, []int32{2, 3}) {
		t.Errorf("loaded deps = %v, want [2 3]", got.Tasks[4].Deps)
	}
	// Byte-level idempotence: re-serializing the loaded trace must
	// reproduce the original stream exactly.
	var buf2 bytes.Buffer
	if _, err := got.WriteTo(&buf2); err != nil {
		t.Fatalf("re-WriteTo: %v", err)
	}
	if !bytes.Equal(wrote, buf2.Bytes()) {
		t.Error("round-trip is not byte-idempotent")
	}
}

// TestReadV1Trace checks backward compatibility: a trace serialized
// in the BOTR1 layout (no priority/dep fields) still loads.
func TestReadV1Trace(t *testing.T) {
	r := NewRecorder()
	root := r.Root()
	root.AddWork(3)
	a := r.Spawn(root, false, false, 0)
	a.AddWork(9)
	tr := r.Finish()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	// Rewrite the v2 payload as v1 by stripping the per-task priority
	// and dep-count varints (both zero here, single bytes).
	v2 := buf.Bytes()
	if string(v2[:5]) != "BOTR2" {
		t.Fatalf("unexpected magic %q", v2[:5])
	}
	var v1 bytes.Buffer
	v1.WriteString("BOTR1")
	// Payload layout per task: parent, flags, depth, work, pw, sw,
	// captured, priority, numDeps, numEvents, events... All fields in
	// this tiny trace are single-byte varints, so walk and drop
	// bytes 7 and 8 of each task record.
	p := v2[5:]
	v1.Write(p[:2]) // numRoots, numTasks
	p = p[2:]
	for task := 0; task < 2; task++ {
		v1.Write(p[:7]) // parent..captured
		p = p[7:]
		p = p[2:] // drop priority, numDeps
		nev := p[0]
		v1.Write(p[:1])
		p = p[1:]
		for e := 0; e < int(nev); e++ {
			kind := p[0]
			n := 2
			if kind == byte(EvSpawn) || kind == byte(EvSpawnInline) {
				n = 3
			}
			v1.Write(p[:n])
			p = p[n:]
		}
	}
	got, err := ReadTrace(&v1)
	if err != nil {
		t.Fatalf("ReadTrace(v1): %v", err)
	}
	if got.Tasks[1].Work != 9 || got.Tasks[1].Deps != nil || got.Tasks[1].Priority != 0 {
		t.Errorf("v1 trace loaded wrong: %+v", got.Tasks[1])
	}
}

// TestValidateRejectsBadDeps checks the dep invariants.
func TestValidateRejectsBadDeps(t *testing.T) {
	tr := buildDepTrace(t)
	tr.Tasks[2].Deps = []int32{4} // forward edge: pred created later
	if err := tr.Validate(); err == nil {
		t.Error("Validate accepted a forward dependence edge")
	}
	tr = buildDepTrace(t)
	tr.Tasks[2].Deps = []int32{99}
	if err := tr.Validate(); err == nil {
		t.Error("Validate accepted an out-of-range dependence")
	}
	tr = buildDepTrace(t)
	// Cross-parent edge: rewrite D's dep list to point at a task that
	// is not a sibling (the root's parent differs from D's).
	tr.Tasks[4].Deps = []int32{0}
	if err := tr.Validate(); err == nil {
		t.Error("Validate accepted a cross-parent dependence")
	}
}

// TestCriticalPathFoldsDiamondDeps is the dep-folding regression
// test: on the diamond A → {B, C} → D the critical path must thread
// the dependence edges (A's completion gates B and C, whose
// completions gate D), not just the spawn tree.
func TestCriticalPathFoldsDiamondDeps(t *testing.T) {
	tr := buildDepTrace(t)
	// Absolute schedule on infinitely many threads: root works 4,
	// spawning A/B/C/D at t=4. A runs 4→14; B and C wait for A and
	// run 14→19; D waits for both and runs 19→26.
	if got := tr.CriticalPath(); got != 26 {
		t.Fatalf("diamond critical path = %d, want 26 (4 +10 +5 +7 through the dep chain)", got)
	}
	// Sanity: without deps the same spawn tree has span 14 (root's 4
	// + the longest child, A's 10).
	noDeps := *tr
	noDeps.Tasks = append([]Task(nil), tr.Tasks...)
	for i := range noDeps.Tasks {
		noDeps.Tasks[i].Deps = nil
	}
	if got := noDeps.CriticalPath(); got != 14 {
		t.Fatalf("dep-stripped diamond critical path = %d, want 14", got)
	}
	// The analysis layer sees the folded span too.
	a := Analyze(tr)
	if a.Span != 26 {
		t.Fatalf("Analyze span = %d, want 26", a.Span)
	}
	if want := float64(4+10+5+5+7) / 26; a.Parallelism < want-0.01 || a.Parallelism > want+0.01 {
		t.Fatalf("Analyze parallelism = %v, want %v", a.Parallelism, want)
	}
}

// TestCriticalPathDepChain pins the fully serial dependence chain:
// back-to-back spawned siblings linked T1 → T2 → ... → T5 must
// serialize end to end even though no taskwait orders them.
func TestCriticalPathDepChain(t *testing.T) {
	r := NewRecorder()
	root := r.Root()
	var prev *Node
	for i := 0; i < 5; i++ {
		n := r.Spawn(root, false, false, 0)
		n.AddWork(3)
		if prev != nil {
			n.DependsOn(prev)
		}
		prev = n
	}
	tr := r.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.CriticalPath(); got != 15 {
		t.Fatalf("dep-chain critical path = %d, want 15", got)
	}
	if a := Analyze(tr); a.Parallelism > 1.01 {
		t.Fatalf("dep-chain parallelism = %v, want ≈ 1", a.Parallelism)
	}
}
