// Package trace records the task graph produced by a run of the omp
// tasking runtime in a form that the discrete-event simulator
// (internal/sim) can replay on an arbitrary number of virtual threads.
//
// Costs are expressed in abstract work units rather than wall-clock
// nanoseconds: application task bodies report the work they perform
// (arithmetic operations, in the units the BOTS paper uses for
// Table II) and the tracer records, for every task, the sequence of
// scheduling-relevant events (child spawns, taskwaits, completion)
// together with the cumulative work executed when each event occurs.
// This makes traces deterministic, portable, and independent of timer
// resolution, which matters on a single-core host where individual
// tasks execute in nanoseconds.
package trace

import "fmt"

// EventKind identifies the kind of a scheduling event inside a task.
type EventKind uint8

const (
	// EvSpawn marks the creation of a deferred child task.
	EvSpawn EventKind = iota
	// EvSpawnInline marks the creation of an undeferred child task
	// (if(false) clause, final region, or runtime cut-off): the child
	// executes immediately on the encountering thread but still pays
	// task-management overhead, unlike a manual cut-off.
	EvSpawnInline
	// EvTaskwait marks a taskwait: the task suspends until all
	// children spawned so far have completed.
	EvTaskwait
)

func (k EventKind) String() string {
	switch k {
	case EvSpawn:
		return "spawn"
	case EvSpawnInline:
		return "spawn-inline"
	case EvTaskwait:
		return "taskwait"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one scheduling event inside a task's execution.
type Event struct {
	// At is the cumulative self-work (in work units) the task had
	// executed when the event occurred. Events are ordered by At.
	At int64
	// Kind is the event kind.
	Kind EventKind
	// Child is the ID of the spawned task for EvSpawn/EvSpawnInline;
	// -1 for EvTaskwait.
	Child int32
}

// Task is one recorded task.
type Task struct {
	// ID is the task's index in Trace.Tasks.
	ID int32
	// Parent is the ID of the creating task, or -1 for implicit
	// (per-thread root) tasks.
	Parent int32
	// Untied reports whether the task was created with the untied
	// clause.
	Untied bool
	// Inline reports whether the task was undeferred (executed
	// immediately by the encountering thread).
	Inline bool
	// Depth is the task-tree depth (implicit tasks are depth 0).
	Depth int32
	// Work is the total self-work of the task in work units,
	// excluding all descendants.
	Work int64
	// SharedWrites and PrivateWrites count memory writes reported by
	// the application for this task (Table II accounting; also feeds
	// the simulator's bandwidth model).
	SharedWrites, PrivateWrites int64
	// Captured is the number of bytes of captured environment
	// (firstprivate data) copied into the task at creation.
	Captured int32
	// Priority is the task's scheduling priority (0 = default).
	Priority int32
	// Deps lists the IDs of the sibling tasks this task depends on
	// (its dependence predecessors, resolved from In/Out/InOut
	// clauses at creation). The task may not start before every
	// listed task has completed. Predecessors always share this
	// task's parent and have smaller IDs (they were created earlier).
	Deps []int32
	// Events is the ordered list of scheduling events.
	Events []Event
}

// Trace is a complete recorded task graph for one parallel region.
type Trace struct {
	// Tasks holds every task, indexed by ID. The first NumRoots
	// entries are the implicit tasks of the recording team's threads.
	Tasks []Task
	// NumRoots is the number of implicit (per-thread root) tasks.
	NumRoots int
}

// TotalWork returns the sum of self-work over all tasks.
func (tr *Trace) TotalWork() int64 {
	var w int64
	for i := range tr.Tasks {
		w += tr.Tasks[i].Work
	}
	return w
}

// NumTasks returns the number of explicit tasks in the trace
// (deferred and undeferred), excluding implicit root tasks.
func (tr *Trace) NumTasks() int {
	return len(tr.Tasks) - tr.NumRoots
}

// NumDeferred returns the number of deferred (queued) tasks.
func (tr *Trace) NumDeferred() int {
	n := 0
	for i := tr.NumRoots; i < len(tr.Tasks); i++ {
		if !tr.Tasks[i].Inline {
			n++
		}
	}
	return n
}

// NumTaskwaits returns the total number of taskwait events.
func (tr *Trace) NumTaskwaits() int64 {
	var n int64
	for i := range tr.Tasks {
		for _, e := range tr.Tasks[i].Events {
			if e.Kind == EvTaskwait {
				n++
			}
		}
	}
	return n
}

// CriticalPath returns the length, in work units, of the longest
// chain of spawn/taskwait/dependence constraints in the trace: the
// minimum possible makespan on infinitely many threads with zero
// overheads.
//
// Two completion notions matter (and differ, per OpenMP semantics):
// a taskwait joins only on the *own* completion of direct children —
// a child may finish with its own unawaited descendants still running
// — while the region (and hence the critical path) is bounded by the
// *subtree* completion of every task.
//
// Dependence edges (Task.Deps) are folded in: a task with
// predecessors cannot start before the *own* completion of every
// predecessor (the runtime and the simulator release a held task on
// its last predecessor's completion), so dep-driven traces
// (sparselu/dep-*) report their true span, not the spawn-tree lower
// bound. The computation walks the graph in absolute time: each
// task's earliest start is the later of its spawn point and its
// predecessors' finishes, and because predecessors are always
// earlier-created siblings (Validate), the parent's event walk
// reaches them first.
func (tr *Trace) CriticalPath() int64 {
	type span struct {
		own  int64 // absolute time of the task's own completion
		full int64 // absolute time its entire subtree completes
	}
	fin := make([]span, len(tr.Tasks))
	var eval func(id int32, start int64) span
	eval = func(id int32, start int64) span {
		t := &tr.Tasks[id]
		var pend []int32
		cursor := start
		workDone := int64(0)
		full := int64(0)
		// depStart delays a child past the own-completion of its
		// dependence predecessors, all evaluated earlier in this walk.
		depStart := func(child int32, at int64) int64 {
			for _, d := range tr.Tasks[child].Deps {
				if f := fin[d].own; f > at {
					at = f
				}
			}
			return at
		}
		for _, e := range t.Events {
			cursor += e.At - workDone
			workDone = e.At
			switch e.Kind {
			case EvSpawn:
				s := eval(e.Child, depStart(e.Child, cursor))
				pend = append(pend, e.Child)
				if s.full > full {
					full = s.full
				}
			case EvSpawnInline:
				// Undeferred child executes inline to its own
				// completion (after its own dependences are met);
				// its unawaited descendants overhang.
				s := eval(e.Child, depStart(e.Child, cursor))
				if s.full > full {
					full = s.full
				}
				cursor = s.own
			case EvTaskwait:
				for _, c := range pend {
					if fin[c].own > cursor {
						cursor = fin[c].own
					}
				}
				pend = pend[:0]
			}
		}
		cursor += t.Work - workDone
		if cursor > full {
			full = cursor
		}
		fin[id] = span{own: cursor, full: full}
		return fin[id]
	}
	var cp int64
	for r := 0; r < tr.NumRoots; r++ {
		if s := eval(int32(r), 0); s.full > cp {
			cp = s.full
		}
	}
	return cp
}

// Validate checks structural invariants of the trace: parents precede
// children, event offsets are monotonic and within task work, every
// non-root task is referenced by exactly one spawn event, and
// dependence predecessors are earlier-created siblings.
func (tr *Trace) Validate() error {
	referenced := make([]int32, len(tr.Tasks))
	for i := range tr.Tasks {
		t := &tr.Tasks[i]
		if int(t.ID) != i {
			return fmt.Errorf("trace: task %d has ID %d", i, t.ID)
		}
		if i < tr.NumRoots {
			if t.Parent != -1 {
				return fmt.Errorf("trace: root task %d has parent %d", i, t.Parent)
			}
		} else if t.Parent < 0 || int(t.Parent) >= len(tr.Tasks) {
			return fmt.Errorf("trace: task %d has out-of-range parent %d", i, t.Parent)
		}
		last := int64(0)
		for _, e := range t.Events {
			if e.At < last {
				return fmt.Errorf("trace: task %d has non-monotonic event offsets", i)
			}
			last = e.At
			switch e.Kind {
			case EvSpawn, EvSpawnInline:
				if e.Child <= 0 || int(e.Child) >= len(tr.Tasks) {
					return fmt.Errorf("trace: task %d spawns out-of-range child %d", i, e.Child)
				}
				if tr.Tasks[e.Child].Parent != t.ID {
					return fmt.Errorf("trace: task %d spawns task %d whose parent is %d",
						i, e.Child, tr.Tasks[e.Child].Parent)
				}
				referenced[e.Child]++
			}
		}
		if last > t.Work {
			return fmt.Errorf("trace: task %d has event offset %d beyond its work %d", i, last, t.Work)
		}
		for _, d := range t.Deps {
			if d < 0 || int(d) >= len(tr.Tasks) {
				return fmt.Errorf("trace: task %d depends on out-of-range task %d", i, d)
			}
			if d >= t.ID {
				return fmt.Errorf("trace: task %d depends on task %d, which was not created before it", i, d)
			}
			if tr.Tasks[d].Parent != t.Parent {
				return fmt.Errorf("trace: task %d depends on task %d with a different parent (%d vs %d)",
					i, d, tr.Tasks[d].Parent, t.Parent)
			}
		}
	}
	for i := tr.NumRoots; i < len(tr.Tasks); i++ {
		if referenced[i] != 1 {
			return fmt.Errorf("trace: task %d referenced by %d spawn events (want 1)", i, referenced[i])
		}
	}
	return nil
}
