package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Recorder incrementally builds a Trace while the omp runtime
// executes a parallel region. It is safe for concurrent use by the
// workers of one team: task IDs are allocated atomically and each
// Node is only ever mutated by the worker currently executing that
// task, which the runtime guarantees.
type Recorder struct {
	nextID   atomic.Int32
	mu       sync.Mutex
	tasks    []*Node
	numRoots int
}

// Node is the mutable recording state for one task. The runtime holds
// a *Node per live task and reports events through it.
type Node struct {
	task Task
	rec  *Recorder
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

func (r *Recorder) register(n *Node) {
	r.mu.Lock()
	r.tasks = append(r.tasks, n)
	r.mu.Unlock()
}

// Root allocates the implicit task node for one team thread. All
// Root calls must precede any Spawn calls; the runtime calls Root for
// every worker when the team is created.
func (r *Recorder) Root() *Node {
	id := r.nextID.Add(1) - 1
	n := &Node{rec: r, task: Task{ID: id, Parent: -1}}
	r.mu.Lock()
	r.tasks = append(r.tasks, n)
	r.numRoots++
	r.mu.Unlock()
	return n
}

// Spawn records the creation of a child task of parent. inline marks
// an undeferred task (if-clause false, final region, or runtime
// cut-off). It returns the child node, which the runtime attaches to
// the new task.
func (r *Recorder) Spawn(parent *Node, untied, inline bool, captured int) *Node {
	id := r.nextID.Add(1) - 1
	n := &Node{rec: r, task: Task{
		ID:       id,
		Parent:   parent.task.ID,
		Untied:   untied,
		Inline:   inline,
		Depth:    parent.task.Depth + 1,
		Captured: int32(captured),
	}}
	r.register(n)
	kind := EvSpawn
	if inline {
		kind = EvSpawnInline
	}
	parent.task.Events = append(parent.task.Events, Event{
		At:    parent.task.Work,
		Kind:  kind,
		Child: id,
	})
	return n
}

// AddWork accrues w self-work units on the task.
func (n *Node) AddWork(w int64) {
	n.task.Work += w
}

// AddWrites accrues application-reported memory-write counts
// (Table II accounting and bandwidth-model input).
func (n *Node) AddWrites(private, shared int64) {
	n.task.PrivateWrites += private
	n.task.SharedWrites += shared
}

// DependsOn records a dependence edge: the task may not start before
// pred has completed. Like all creation-side recording it is called
// by the thread executing the parent task, before the child is
// enqueued. Duplicate edges (two clauses resolving to the same
// predecessor) are collapsed.
func (n *Node) DependsOn(pred *Node) {
	for _, d := range n.task.Deps {
		if d == pred.task.ID {
			return
		}
	}
	n.task.Deps = append(n.task.Deps, pred.task.ID)
}

// SetPriority records the task's scheduling priority.
func (n *Node) SetPriority(p int32) {
	n.task.Priority = p
}

// Taskwait records a taskwait event on the task.
func (n *Node) Taskwait() {
	n.task.Events = append(n.task.Events, Event{
		At:    n.task.Work,
		Kind:  EvTaskwait,
		Child: -1,
	})
}

// Finish returns the completed Trace. It must be called after the
// recorded parallel region has fully terminated.
func (r *Recorder) Finish() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	sort.Slice(r.tasks, func(i, j int) bool { return r.tasks[i].task.ID < r.tasks[j].task.ID })
	tr := &Trace{
		Tasks:    make([]Task, len(r.tasks)),
		NumRoots: r.numRoots,
	}
	for i, n := range r.tasks {
		tr.Tasks[i] = n.task
	}
	return tr
}
