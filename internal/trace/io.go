package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format ("BOTR2"): a compact varint encoding so that
// multi-hundred-thousand-task graphs recorded by cmd/botstrace stay
// small on disk and load fast. All integers are unsigned varints
// (zig-zag for the few signed fields); layout:
//
//	magic "BOTR2"
//	numRoots, numTasks
//	per task: parent+1, flags (untied|inline), depth, work,
//	          privateWrites, sharedWrites, captured,
//	          priority (zig-zag), numDeps, then per dep: pred ID,
//	          numEvents, then per event: kind, deltaAt (from the
//	          previous event), child+1 (spawn kinds only)
//
// Version 1 ("BOTR1") lacked the priority and dependence fields;
// ReadTrace still accepts it (tasks load with no deps, priority 0).

const (
	magic   = "BOTR2"
	magicV1 = "BOTR1"
)

// zigzag encoding for the signed priority field.
func zig(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }
func zag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WriteTo serializes the trace in the binary format. It returns the
// number of bytes written.
func (tr *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		m, err := bw.Write(buf[:k])
		n += int64(m)
		return err
	}
	m, err := bw.WriteString(magic)
	n += int64(m)
	if err != nil {
		return n, err
	}
	if err := put(uint64(tr.NumRoots)); err != nil {
		return n, err
	}
	if err := put(uint64(len(tr.Tasks))); err != nil {
		return n, err
	}
	for i := range tr.Tasks {
		t := &tr.Tasks[i]
		if err := put(uint64(t.Parent + 1)); err != nil {
			return n, err
		}
		var flags uint64
		if t.Untied {
			flags |= 1
		}
		if t.Inline {
			flags |= 2
		}
		if err := put(flags); err != nil {
			return n, err
		}
		for _, v := range []uint64{
			uint64(t.Depth), uint64(t.Work),
			uint64(t.PrivateWrites), uint64(t.SharedWrites),
			uint64(t.Captured), zig(int64(t.Priority)), uint64(len(t.Deps)),
		} {
			if err := put(v); err != nil {
				return n, err
			}
		}
		for _, d := range t.Deps {
			if err := put(uint64(d)); err != nil {
				return n, err
			}
		}
		if err := put(uint64(len(t.Events))); err != nil {
			return n, err
		}
		prev := int64(0)
		for _, e := range t.Events {
			if err := put(uint64(e.Kind)); err != nil {
				return n, err
			}
			if err := put(uint64(e.At - prev)); err != nil {
				return n, err
			}
			prev = e.At
			if e.Kind == EvSpawn || e.Kind == EvSpawnInline {
				if err := put(uint64(e.Child + 1)); err != nil {
					return n, err
				}
			}
		}
	}
	return n, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo and validates it.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	version := 2
	switch string(head) {
	case magic:
	case magicV1:
		version = 1
	default:
		return nil, fmt.Errorf("trace: bad magic %q (want %q or %q)", head, magic, magicV1)
	}
	get := func() (uint64, error) { return binary.ReadUvarint(br) }
	numRoots, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: numRoots: %w", err)
	}
	numTasks, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: numTasks: %w", err)
	}
	const maxTasks = 1 << 28
	if numTasks > maxTasks || numRoots > numTasks {
		return nil, fmt.Errorf("trace: implausible sizes roots=%d tasks=%d", numRoots, numTasks)
	}
	tr := &Trace{NumRoots: int(numRoots), Tasks: make([]Task, numTasks)}
	for i := range tr.Tasks {
		t := &tr.Tasks[i]
		t.ID = int32(i)
		parent, err := get()
		if err != nil {
			return nil, fmt.Errorf("trace: task %d parent: %w", i, err)
		}
		t.Parent = int32(parent) - 1
		flags, err := get()
		if err != nil {
			return nil, err
		}
		t.Untied = flags&1 != 0
		t.Inline = flags&2 != 0
		fields := []*int64{nil, &t.Work, &t.PrivateWrites, &t.SharedWrites}
		depth, err := get()
		if err != nil {
			return nil, err
		}
		t.Depth = int32(depth)
		for _, f := range fields[1:] {
			v, err := get()
			if err != nil {
				return nil, err
			}
			*f = int64(v)
		}
		captured, err := get()
		if err != nil {
			return nil, err
		}
		t.Captured = int32(captured)
		if version >= 2 {
			prio, err := get()
			if err != nil {
				return nil, err
			}
			t.Priority = int32(zag(prio))
			numDeps, err := get()
			if err != nil {
				return nil, err
			}
			if numDeps > maxTasks {
				return nil, fmt.Errorf("trace: task %d has implausible dep count %d", i, numDeps)
			}
			if numDeps > 0 {
				t.Deps = make([]int32, numDeps)
				for j := range t.Deps {
					d, err := get()
					if err != nil {
						return nil, err
					}
					t.Deps[j] = int32(d)
				}
			}
		}
		numEvents, err := get()
		if err != nil {
			return nil, err
		}
		if numEvents > maxTasks {
			return nil, fmt.Errorf("trace: task %d has implausible event count %d", i, numEvents)
		}
		t.Events = make([]Event, numEvents)
		at := int64(0)
		for j := range t.Events {
			kind, err := get()
			if err != nil {
				return nil, err
			}
			delta, err := get()
			if err != nil {
				return nil, err
			}
			at += int64(delta)
			ev := Event{At: at, Kind: EventKind(kind), Child: -1}
			if ev.Kind == EvSpawn || ev.Kind == EvSpawnInline {
				child, err := get()
				if err != nil {
					return nil, err
				}
				ev.Child = int32(child) - 1
			}
			t.Events[j] = ev
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: loaded trace invalid: %w", err)
	}
	return tr, nil
}
