package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripBinaryTree(t *testing.T) {
	tr := buildBinaryTree(5, 9)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(tr), normalize(got)) {
		t.Fatal("round trip changed the trace")
	}
}

// normalize clears nil-vs-empty slice differences for DeepEqual.
func normalize(tr *Trace) *Trace {
	out := &Trace{NumRoots: tr.NumRoots, Tasks: make([]Task, len(tr.Tasks))}
	copy(out.Tasks, tr.Tasks)
	for i := range out.Tasks {
		if len(out.Tasks[i].Events) == 0 {
			out.Tasks[i].Events = nil
		}
	}
	return out
}

func TestRoundTripRandomTraces(t *testing.T) {
	f := func(structure []uint8) bool {
		rec := NewRecorder()
		root := rec.Root()
		nodes := []*Node{root}
		for _, b := range structure {
			parent := nodes[int(b)%len(nodes)]
			child := rec.Spawn(parent, b%2 == 0, b%5 == 0, int(b))
			child.AddWork(int64(b%31) + 1)
			child.AddWrites(int64(b%7), int64(b%3))
			nodes = append(nodes, child)
			if b%4 == 0 {
				parent.Taskwait()
			}
		}
		tr := rec.Finish()
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(tr), normalize(got))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad magic": "NOPE!xxxxxxx",
		"truncated": "BOTR1\x02",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadTrace should fail", name)
		}
	}
}

func TestReadTraceRejectsCorruptedStructure(t *testing.T) {
	tr := buildBinaryTree(2, 1)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip bytes across the payload; every corruption must either
	// fail to parse or fail Validate — never yield a silently wrong
	// trace that still differs from the original.
	for i := len(magic); i < len(data); i += 3 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x55
		got, err := ReadTrace(bytes.NewReader(mut))
		if err != nil {
			continue // rejected: good
		}
		// Accepted: must be a structurally valid trace.
		if err := got.Validate(); err != nil {
			t.Fatalf("byte %d: ReadTrace accepted an invalid trace: %v", i, err)
		}
	}
}

func TestFormatIsCompact(t *testing.T) {
	tr := buildBinaryTree(10, 100) // 2047 tasks
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	perTask := float64(buf.Len()) / float64(len(tr.Tasks))
	if perTask > 24 {
		t.Fatalf("%.1f bytes/task, want compact (< 24)", perTask)
	}
}
