package trace

import (
	"testing"
	"testing/quick"
)

// buildBinaryTree records a perfect binary task tree of the given
// depth, each task doing `work` units with a taskwait over its
// children.
func buildBinaryTree(depth int, work int64) *Trace {
	rec := NewRecorder()
	root := rec.Root()
	var grow func(n *Node, d int)
	grow = func(n *Node, d int) {
		n.AddWork(work)
		if d == 0 {
			return
		}
		l := rec.Spawn(n, false, false, 8)
		grow(l, d-1)
		r := rec.Spawn(n, false, false, 8)
		grow(r, d-1)
		n.Taskwait()
	}
	grow(root, depth)
	return rec.Finish()
}

func TestRecorderBasicShape(t *testing.T) {
	tr := buildBinaryTree(3, 5)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumRoots != 1 {
		t.Fatalf("roots = %d", tr.NumRoots)
	}
	wantTasks := 2 + 4 + 8 // nodes below the root
	if tr.NumTasks() != wantTasks {
		t.Fatalf("tasks = %d, want %d", tr.NumTasks(), wantTasks)
	}
	if tr.NumDeferred() != wantTasks {
		t.Fatalf("deferred = %d, want %d", tr.NumDeferred(), wantTasks)
	}
	if got, want := tr.TotalWork(), int64(5*(wantTasks+1)); got != want {
		t.Fatalf("TotalWork = %d, want %d", got, want)
	}
	if got, want := tr.NumTaskwaits(), int64(1+2+4); got != want {
		t.Fatalf("taskwaits = %d, want %d", got, want)
	}
}

func TestCriticalPathBinaryTree(t *testing.T) {
	// In a perfect binary tree where each node does w work before the
	// children spawn... here AddWork happens before spawning, so the
	// critical path is (depth+1) × w.
	for depth := 0; depth <= 5; depth++ {
		tr := buildBinaryTree(depth, 7)
		want := int64(7 * (depth + 1))
		if got := tr.CriticalPath(); got != want {
			t.Fatalf("depth %d: critical path = %d, want %d", depth, got, want)
		}
	}
}

func TestCriticalPathChain(t *testing.T) {
	// A chain of inline tasks serializes completely.
	rec := NewRecorder()
	root := rec.Root()
	cur := root
	for i := 0; i < 10; i++ {
		cur.AddWork(3)
		cur = rec.Spawn(cur, false, true, 0)
	}
	cur.AddWork(3)
	tr := rec.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.CriticalPath(); got != 33 {
		t.Fatalf("inline chain critical path = %d, want 33", got)
	}
}

func TestCriticalPathUnawaitedChildren(t *testing.T) {
	// A child spawned but never awaited still bounds the region.
	rec := NewRecorder()
	root := rec.Root()
	root.AddWork(1)
	c := rec.Spawn(root, false, false, 0)
	c.AddWork(100)
	root.AddWork(1) // root finishes at 2, child at 1+100
	tr := rec.Finish()
	if got := tr.CriticalPath(); got != 101 {
		t.Fatalf("critical path = %d, want 101", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := buildBinaryTree(2, 1)
	// Corrupt: non-monotonic event offsets.
	bad := *tr
	bad.Tasks = append([]Task(nil), tr.Tasks...)
	if len(bad.Tasks[0].Events) >= 2 {
		evs := append([]Event(nil), bad.Tasks[0].Events...)
		evs[0].At = 1 << 40
		bad.Tasks[0].Events = evs
		if bad.Validate() == nil {
			t.Fatal("Validate should catch non-monotonic offsets")
		}
	}
	// Corrupt: dangling parent.
	bad2 := *tr
	bad2.Tasks = append([]Task(nil), tr.Tasks...)
	bad2.Tasks[1].Parent = 999
	if bad2.Validate() == nil {
		t.Fatal("Validate should catch out-of-range parents")
	}
}

func TestEventKindString(t *testing.T) {
	if EvSpawn.String() != "spawn" || EvSpawnInline.String() != "spawn-inline" || EvTaskwait.String() != "taskwait" {
		t.Fatal("EventKind strings wrong")
	}
	if EventKind(9).String() == "" {
		t.Fatal("unknown kind should stringify")
	}
}

func TestWritesAndCapturedRecorded(t *testing.T) {
	rec := NewRecorder()
	root := rec.Root()
	c := rec.Spawn(root, true, false, 64)
	c.AddWrites(10, 4)
	tr := rec.Finish()
	task := tr.Tasks[1]
	if !task.Untied || task.Captured != 64 {
		t.Fatalf("spawn metadata lost: %+v", task)
	}
	if task.PrivateWrites != 10 || task.SharedWrites != 4 {
		t.Fatalf("writes lost: %+v", task)
	}
	if task.Depth != 1 {
		t.Fatalf("depth = %d, want 1", task.Depth)
	}
}

// TestCriticalPathBounds: for any random task tree, the critical path
// must lie between the max single-task work and the total work.
func TestCriticalPathBounds(t *testing.T) {
	f := func(structure []uint8) bool {
		rec := NewRecorder()
		root := rec.Root()
		nodes := []*Node{root}
		var maxWork int64 = 1
		root.AddWork(1)
		for _, b := range structure {
			parent := nodes[int(b)%len(nodes)]
			w := int64(b%17) + 1
			child := rec.Spawn(parent, b%2 == 0, b%5 == 0, 0)
			child.AddWork(w)
			if w > maxWork {
				maxWork = w
			}
			nodes = append(nodes, child)
			if b%3 == 0 {
				parent.Taskwait()
			}
		}
		tr := rec.Finish()
		if tr.Validate() != nil {
			return false
		}
		cp := tr.CriticalPath()
		return cp >= maxWork && cp <= tr.TotalWork()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
