package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Analysis summarizes the parallel structure of a task graph in the
// work/span framework: total work W, critical path (span) S, and the
// average parallelism W/S that upper-bounds achievable speedup on any
// number of threads — the quantity that explains which BOTS
// benchmarks can scale and which cannot, independent of any runtime.
type Analysis struct {
	// Tasks is the number of explicit tasks (deferred + undeferred).
	Tasks int
	// Deferred is the number of queued tasks.
	Deferred int
	// Work is total work in work units; Span is the critical path.
	Work, Span int64
	// Parallelism is Work/Span.
	Parallelism float64
	// MaxDepth is the deepest task-tree level.
	MaxDepth int32
	// DepthTasks[d] is the number of tasks at depth d.
	DepthTasks []int
	// WorkP50, WorkP90, WorkMax summarize per-task self-work.
	WorkP50, WorkP90, WorkMax int64
	// Taskwaits is the total taskwait count.
	Taskwaits int64
	// CapturedTotal is the total captured-environment bytes.
	CapturedTotal int64
}

// Analyze computes the Analysis of a trace.
func Analyze(tr *Trace) Analysis {
	a := Analysis{
		Tasks:    tr.NumTasks(),
		Deferred: tr.NumDeferred(),
		Work:     tr.TotalWork(),
		Span:     tr.CriticalPath(),
	}
	if a.Span > 0 {
		a.Parallelism = float64(a.Work) / float64(a.Span)
	}
	var works []int64
	for i := range tr.Tasks {
		t := &tr.Tasks[i]
		if t.Depth > a.MaxDepth {
			a.MaxDepth = t.Depth
		}
		if int(t.Depth) >= len(a.DepthTasks) {
			grown := make([]int, t.Depth+1)
			copy(grown, a.DepthTasks)
			a.DepthTasks = grown
		}
		a.DepthTasks[t.Depth]++
		a.CapturedTotal += int64(t.Captured)
		if i >= tr.NumRoots {
			works = append(works, t.Work)
		}
		for _, e := range t.Events {
			if e.Kind == EvTaskwait {
				a.Taskwaits++
			}
		}
	}
	if len(works) > 0 {
		sort.Slice(works, func(i, j int) bool { return works[i] < works[j] })
		a.WorkP50 = works[len(works)/2]
		a.WorkP90 = works[len(works)*9/10]
		a.WorkMax = works[len(works)-1]
	}
	return a
}

// String renders a multi-line human-readable summary.
func (a Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tasks:        %d (%d deferred)\n", a.Tasks, a.Deferred)
	fmt.Fprintf(&b, "work:         %d units\n", a.Work)
	fmt.Fprintf(&b, "span:         %d units (critical path)\n", a.Span)
	fmt.Fprintf(&b, "parallelism:  %.1f (work/span — speedup upper bound)\n", a.Parallelism)
	fmt.Fprintf(&b, "depth:        %d levels\n", a.MaxDepth)
	fmt.Fprintf(&b, "task work:    p50=%d p90=%d max=%d units\n", a.WorkP50, a.WorkP90, a.WorkMax)
	fmt.Fprintf(&b, "taskwaits:    %d\n", a.Taskwaits)
	fmt.Fprintf(&b, "captured:     %d bytes total\n", a.CapturedTotal)
	return b.String()
}
