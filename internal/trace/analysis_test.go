package trace

import (
	"strings"
	"testing"
)

func TestAnalyzeBinaryTree(t *testing.T) {
	tr := buildBinaryTree(4, 10)
	a := Analyze(tr)
	wantTasks := 2 + 4 + 8 + 16
	if a.Tasks != wantTasks || a.Deferred != wantTasks {
		t.Fatalf("tasks = %d/%d, want %d", a.Tasks, a.Deferred, wantTasks)
	}
	if a.Work != int64(10*(wantTasks+1)) {
		t.Fatalf("work = %d", a.Work)
	}
	if a.Span != 50 { // (depth+1) × 10
		t.Fatalf("span = %d, want 50", a.Span)
	}
	if a.Parallelism <= 1 || a.Parallelism > float64(a.Tasks) {
		t.Fatalf("parallelism = %v out of range", a.Parallelism)
	}
	if a.MaxDepth != 4 {
		t.Fatalf("max depth = %d, want 4", a.MaxDepth)
	}
	if len(a.DepthTasks) != 5 || a.DepthTasks[4] != 16 {
		t.Fatalf("depth histogram = %v", a.DepthTasks)
	}
	if a.WorkP50 != 10 || a.WorkMax != 10 {
		t.Fatalf("task work percentiles = %d/%d, want 10/10", a.WorkP50, a.WorkMax)
	}
	if a.Taskwaits != 1+2+4+8 { // every non-leaf node (depths 0..3) waits
		t.Fatalf("taskwaits = %d", a.Taskwaits)
	}
	if a.CapturedTotal != int64(8*wantTasks) {
		t.Fatalf("captured = %d", a.CapturedTotal)
	}
}

func TestAnalyzeSerialChain(t *testing.T) {
	// A fully serial chain has parallelism ≈ 1.
	rec := NewRecorder()
	cur := rec.Root()
	for i := 0; i < 20; i++ {
		cur.AddWork(5)
		next := rec.Spawn(cur, false, false, 0)
		cur.Taskwait()
		cur = next
	}
	cur.AddWork(5)
	a := Analyze(rec.Finish())
	if a.Parallelism > 1.01 {
		t.Fatalf("serial chain parallelism = %v, want ≈ 1", a.Parallelism)
	}
}

func TestAnalysisString(t *testing.T) {
	a := Analyze(buildBinaryTree(3, 2))
	s := a.String()
	for _, want := range []string{"parallelism", "span", "taskwaits"} {
		if !strings.Contains(s, want) {
			t.Errorf("Analysis.String missing %q:\n%s", want, s)
		}
	}
}
