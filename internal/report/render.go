package report

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders rows as an aligned ASCII table.
func WriteTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// WriteChart renders speedup-vs-threads series as an ASCII chart with
// one marker letter per series, plus a legend and the numeric table.
func WriteChart(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "%s\n\n", title)
	if len(series) == 0 {
		return
	}
	// Numeric table first: threads as rows, one column per series.
	header := []string{"threads"}
	for _, s := range series {
		header = append(header, s.Label)
	}
	var rows [][]string
	for i := range series[0].Points {
		row := []string{fmt.Sprintf("%d", series[0].Points[i].Threads)}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.2f", s.Points[i].Speedup))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	WriteTable(w, header, rows)
	fmt.Fprintln(w)

	// ASCII chart: x = thread index, y = speedup.
	const height = 16
	maxY := 1.0
	maxT := 1
	for _, s := range series {
		for _, p := range s.Points {
			if p.Speedup > maxY {
				maxY = p.Speedup
			}
			if p.Threads > maxT {
				maxT = p.Threads
			}
		}
	}
	width := 2 * len(series[0].Points)
	grid := make([][]byte, height+1)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width+1))
	}
	for si, s := range series {
		marker := byte('A' + si%26)
		for pi, p := range s.Points {
			x := 2 * pi
			y := int(p.Speedup / maxY * float64(height))
			if y > height {
				y = height
			}
			row := height - y
			if grid[row][x] == ' ' {
				grid[row][x] = marker
			} else {
				grid[row][x] = '*' // overlapping points
			}
		}
	}
	for i, row := range grid {
		yVal := maxY * float64(height-i) / float64(height)
		fmt.Fprintf(w, "%6.1f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(w, "       +%s\n", strings.Repeat("-", width+1))
	var axis strings.Builder
	axis.WriteString("        ")
	for _, p := range series[0].Points {
		axis.WriteString(fmt.Sprintf("%-2d", p.Threads))
	}
	fmt.Fprintln(w, axis.String())
	for si, s := range series {
		fmt.Fprintf(w, "  %c = %s\n", byte('A'+si%26), s.Label)
	}
	fmt.Fprintln(w)
}
