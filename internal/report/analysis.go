package report

import (
	"fmt"
	"io"

	"bots/internal/core"
	"bots/internal/trace"
)

// TableAnalysis renders the work/span analysis of every benchmark's
// best version: total work W, critical path (span) S, and average
// parallelism W/S — the scheduler-independent speedup ceiling. This
// artifact goes beyond the paper's tables but explains its Figure 3
// directly: applications saturate either because W/S is low
// (structural) or because they are memory-bound (the bandwidth term
// of the cost model); the table separates the two causes.
func TableAnalysis(w io.Writer, class core.Class) error {
	fmt.Fprintf(w, "Task-graph analysis — best version per application (%s class)\n\n", class)
	header := []string{
		"Application", "Version", "Tasks", "Work (units)", "Span (units)",
		"Parallelism", "Max depth", "p50 task", "p90 task",
	}
	var rows [][]string
	for _, b := range core.All() {
		a, err := AnalyzeBenchmark(b, b.BestVersion, class)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			b.Name, b.BestVersion,
			fmt.Sprintf("%d", a.Tasks),
			fmt.Sprintf("%d", a.Work),
			fmt.Sprintf("%d", a.Span),
			fmt.Sprintf("%.1f", a.Parallelism),
			fmt.Sprintf("%d", a.MaxDepth),
			fmt.Sprintf("%d", a.WorkP50),
			fmt.Sprintf("%d", a.WorkP90),
		})
	}
	WriteTable(w, header, rows)
	fmt.Fprintln(w)
	return nil
}

// AnalyzeBenchmark records one version on a single-thread team and
// returns its task-graph analysis.
func AnalyzeBenchmark(b *core.Benchmark, version string, class core.Class) (trace.Analysis, error) {
	rec := trace.NewRecorder()
	if _, err := b.Run(core.RunConfig{
		Class: class, Version: version, Threads: 1, Recorder: rec,
	}); err != nil {
		return trace.Analysis{}, fmt.Errorf("report: analyzing %s/%s: %w", b.Name, version, err)
	}
	tr := rec.Finish()
	if err := tr.Validate(); err != nil {
		return trace.Analysis{}, fmt.Errorf("report: %s/%s trace: %w", b.Name, version, err)
	}
	return trace.Analyze(tr), nil
}
