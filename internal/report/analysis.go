package report

import (
	"fmt"
	"io"

	"bots/internal/core"
	"bots/internal/lab"
	"bots/internal/trace"
)

// TableAnalysis renders the work/span analysis of every benchmark's
// best version: total work W, critical path (span) S, and average
// parallelism W/S — the scheduler-independent speedup ceiling. This
// artifact goes beyond the paper's tables but explains its Figure 3
// directly: applications saturate either because W/S is low
// (structural) or because they are memory-bound (the bandwidth term
// of the cost model); the table separates the two causes.
func TableAnalysis(r lab.Runner, w io.Writer, class core.Class) error {
	fmt.Fprintf(w, "Task-graph analysis — best version per application (%s class)\n\n", class)
	header := []string{
		"Application", "Version", "Tasks", "Work (units)", "Span (units)",
		"Parallelism", "Max depth", "p50 task", "p90 task",
	}
	var rows [][]string
	for _, b := range core.All() {
		a, err := AnalyzeBenchmark(r, b, b.BestVersion, class)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			b.Name, b.BestVersion,
			fmt.Sprintf("%d", a.Tasks),
			fmt.Sprintf("%d", a.Work),
			fmt.Sprintf("%d", a.Span),
			fmt.Sprintf("%.1f", a.Parallelism),
			fmt.Sprintf("%d", a.MaxDepth),
			fmt.Sprintf("%d", a.WorkP50),
			fmt.Sprintf("%d", a.WorkP90),
		})
	}
	WriteTable(w, header, rows)
	fmt.Fprintln(w)
	return nil
}

// AnalyzeBenchmark returns the task-graph analysis of one version's
// single-thread cell. The analysis is part of the lab Record, so a
// cached runner answers repeat renders without re-running anything.
func AnalyzeBenchmark(r lab.Runner, b *core.Benchmark, version string, class core.Class) (trace.Analysis, error) {
	rec, err := r.Run(lab.JobSpec{
		Bench: b.Name, Version: version, Class: class.String(), Threads: 1,
	})
	if err != nil {
		return trace.Analysis{}, fmt.Errorf("report: analyzing %s/%s: %w", b.Name, version, err)
	}
	if rec.Analysis == nil {
		return trace.Analysis{}, fmt.Errorf("report: record %s (%s/%s) predates the stored task-graph analysis; re-measure with a fresh store",
			rec.Key, b.Name, version)
	}
	return *rec.Analysis, nil
}
