package report

import (
	"fmt"
	"io"

	"bots/internal/core"
	"bots/internal/lab"
)

// Artifacts lists the renderable report artifacts, in the order the
// full report prints them.
func Artifacts() []string {
	return []string{
		"table1", "table2", "analysis",
		"fig3", "fig4", "fig5", "extensions",
		"cutoffdepth", "policy", "threadswitch", "queuearch", "generators",
	}
}

// Render renders one named artifact through the runner. A nil threads
// axis means PaperThreads. It is the single dispatch both cmd/botsreport
// and the lab server's GET /report/{figure} endpoint use.
func Render(r lab.Runner, w io.Writer, name string, class core.Class, threads []int) error {
	if threads == nil {
		threads = PaperThreads
	}
	switch name {
	case "table1":
		Table1(w)
		return nil
	case "table2":
		return Table2(r, w, class)
	case "analysis":
		return TableAnalysis(r, w, class)
	case "fig3":
		return Fig3(r, w, class, threads)
	case "fig4":
		return Fig4(r, w, class, threads)
	case "fig5":
		return Fig5(r, w, class, threads)
	case "extensions":
		return FigExtensions(r, w, class, threads)
	case "cutoffdepth":
		// The cut-off sweep is a single-thread-count study: 8 threads
		// (the paper's §IV-D setup) when the axis includes it,
		// otherwise the largest requested team.
		t := threads[len(threads)-1]
		for _, c := range threads {
			if c == 8 {
				t = 8
			}
		}
		return AblationCutoffDepth(r, w, class, t, nil)
	case "policy":
		return AblationPolicy(r, w, class, threads)
	case "threadswitch":
		return AblationThreadSwitch(r, w, class, threads)
	case "queuearch":
		return AblationQueueArch(r, w, class, threads)
	case "generators":
		return AblationGenerators(r, w, class, threads)
	}
	return fmt.Errorf("%w: %q (have %v)", lab.ErrUnknownFigure, name, Artifacts())
}

// RenderFuncFor adapts Render over a fixed runner into the lab
// server's injection point, closing the loop from `GET
// /report/{figure}` back to the cached store the sweeps populate.
func RenderFuncFor(r lab.Runner) lab.RenderFunc {
	return func(w io.Writer, figure string, class core.Class, threads []int) error {
		return Render(r, w, figure, class, threads)
	}
}
