package report

import (
	"fmt"
	"io"
	"time"

	"bots/internal/core"
	"bots/internal/lab"
)

// Table1 renders the application summary (paper Table I) from the
// registry metadata.
func Table1(w io.Writer) {
	fmt.Fprintf(w, "Table I — BOTS applications summary\n\n")
	header := []string{
		"Application", "Origin", "Domain", "Computation structure",
		"#task directives", "tasks inside omp...", "nested tasks", "Application cut-off",
	}
	var rows [][]string
	for _, b := range core.Paper() {
		nested := "no"
		if b.NestedTasks {
			nested = "yes"
		}
		rows = append(rows, []string{
			b.Name, b.Origin, b.Domain, b.Structure,
			fmt.Sprintf("%d", b.TaskDirectives), b.TasksInside, nested, b.AppCutoff,
		})
	}
	WriteTable(w, header, rows)
	fmt.Fprintln(w)
}

// Table2Row carries the measured per-task characteristics of one
// benchmark (paper Table II).
type Table2Row struct {
	Name          string
	SerialTime    string
	MemBytes      int64
	Tasks         int64
	OpsPerTask    float64
	WaitsPerTask  float64
	CapturedBytes float64
	PctNonPrivate float64
	OpsPerWrite   float64
	OpsPerShared  float64
}

// Table2 profiles every benchmark on the given class: the sequential
// run provides time/memory, and a single-thread run of the
// no-application-cut-off version provides the potential-task profile
// (task counts, per-task operations, taskwaits, captured bytes,
// write mix), mirroring the paper's profiled serial execution.
func Table2(r lab.Runner, w io.Writer, class core.Class) error {
	fmt.Fprintf(w, "Table II — application characteristics (%s input class)\n\n", class)
	header := []string{
		"Application", "Serial time", "Memory", "#tasks",
		"ops/task", "taskwaits/task", "captured B/task",
		"% writes non-private", "ops/write", "ops/non-priv write",
	}
	var rows [][]string
	for _, b := range core.Paper() {
		row, err := ProfileBenchmark(r, b, class)
		if err != nil {
			return err
		}
		sharedOps := "-"
		if row.OpsPerShared > 0 {
			sharedOps = fmt.Sprintf("%.2f", row.OpsPerShared)
		}
		rows = append(rows, []string{
			row.Name,
			row.SerialTime,
			fmtBytes(row.MemBytes),
			fmt.Sprintf("%d", row.Tasks),
			fmt.Sprintf("%.2f", row.OpsPerTask),
			fmt.Sprintf("%.2f", row.WaitsPerTask),
			fmt.Sprintf("%.2f", row.CapturedBytes),
			fmt.Sprintf("%.2f%%", row.PctNonPrivate),
			fmt.Sprintf("%.2f", row.OpsPerWrite),
			sharedOps,
		})
	}
	WriteTable(w, header, rows)
	fmt.Fprintln(w)
	return nil
}

// ProfileBenchmark computes one Table II row from the benchmark's
// single-thread potential-task profile cell.
func ProfileBenchmark(r lab.Runner, b *core.Benchmark, class core.Class) (Table2Row, error) {
	version := profileVersion(b)
	rec, err := r.Run(lab.JobSpec{
		Bench: b.Name, Version: version, Class: class.String(), Threads: 1,
	})
	if err != nil {
		return Table2Row{}, fmt.Errorf("report: profiling %s/%s: %w", b.Name, version, err)
	}
	st := rec.Stats
	tasks := st.TotalTasks()
	row := Table2Row{
		Name:       b.Name,
		SerialTime: time.Duration(rec.Seq.ElapsedNS).String(),
		MemBytes:   rec.Seq.MemBytes,
		Tasks:      tasks,
	}
	if tasks > 0 {
		row.OpsPerTask = float64(st.WorkUnits) / float64(tasks)
		row.WaitsPerTask = float64(st.Taskwaits) / float64(tasks)
		row.CapturedBytes = float64(st.CapturedBytes) / float64(tasks)
	}
	writes := st.PrivateWrites + st.SharedWrites
	if writes > 0 {
		row.PctNonPrivate = 100 * float64(st.SharedWrites) / float64(writes)
		row.OpsPerWrite = float64(st.WorkUnits) / float64(writes)
	}
	if st.SharedWrites > 0 {
		row.OpsPerShared = float64(st.WorkUnits) / float64(st.SharedWrites)
	}
	return row, nil
}

// profileVersion picks the version that exposes the full potential
// task count: the no-cut-off variant when the benchmark has an
// application cut-off, the plain/default variant otherwise.
func profileVersion(b *core.Benchmark) string {
	for _, v := range []string{"none-tied", "tied", "single-tied"} {
		if b.HasVersion(v) {
			return v
		}
	}
	return b.BestVersion
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
