// Package report regenerates the paper's evaluation artifacts: the
// application summary (Table I), the per-task application
// characteristics (Table II), the overall speedup study (Figure 3),
// the cut-off mechanism comparison (Figure 4), the tied-vs-untied
// comparison (Figure 5), and the §IV-D ablations (cut-off values,
// scheduling policies, generator schemes).
//
// Speedup series are produced by the trace-and-simulate pipeline
// described in DESIGN.md: the real omp runtime executes a version on
// a T-thread team while recording its task graph, and the
// discrete-event simulator replays the graph on T virtual threads
// under a calibrated cost model. The serial baseline is the measured
// sequential run, exactly as the paper computes its speedups (with
// Floorplan's nodes-per-second substitution handled by the invariant
// node set of a recorded trace).
package report

import (
	"fmt"

	"bots/internal/core"
	"bots/internal/omp"
	"bots/internal/sim"
	"bots/internal/trace"
)

// PaperThreads is the thread axis of the paper's figures.
var PaperThreads = []int{1, 2, 4, 8, 16, 24, 32}

// SeriesPoint is one (threads, speedup) sample with its provenance.
type SeriesPoint struct {
	Threads int
	Speedup float64
	// Tasks is the number of explicit tasks in the recorded trace.
	Tasks int
	// Steals and Parks expose the simulated scheduler's behaviour.
	Steals, Parks int64
}

// Series is one labelled speedup curve.
type Series struct {
	Label  string
	Points []SeriesPoint
}

// SeriesConfig configures a speedup-series computation.
type SeriesConfig struct {
	Class core.Class
	// Threads is the thread axis; nil means PaperThreads.
	Threads []int
	// CutoffDepth overrides the app depth cut-off (0 = default).
	CutoffDepth int
	// RuntimeCutoff is the runtime policy for the real recording run.
	RuntimeCutoff omp.CutoffPolicy
	// BreadthFirst switches the simulated local queue discipline.
	BreadthFirst bool
	// Overheads overrides the simulator cost model's task-management
	// constants; zero-valued fields keep sim.DefaultOverheads.
	Overheads *sim.Params
}

// calibCache caches sequential baselines per (benchmark, class).
var calibCache = map[string]*core.SeqResult{}

// Baseline returns (and caches) the sequential reference for b/class.
func Baseline(b *core.Benchmark, class core.Class) (*core.SeqResult, error) {
	key := b.Name + "/" + class.String()
	if r, ok := calibCache[key]; ok {
		return r, nil
	}
	r, err := b.Seq(class)
	if err != nil {
		return nil, err
	}
	calibCache[key] = r
	return r, nil
}

// simParams assembles the simulator cost model for a benchmark: task
// overheads (defaults or overrides), the benchmark's memory profile,
// and the work-unit calibration from the sequential run.
func simParams(b *core.Benchmark, seq *core.SeqResult, cfg SeriesConfig) sim.Params {
	p := sim.DefaultOverheads()
	if cfg.Overheads != nil {
		p = *cfg.Overheads
	}
	p.WorkUnitNS = float64(seq.Elapsed.Nanoseconds()) / float64(seq.Work)
	if p.WorkUnitNS <= 0 {
		p.WorkUnitNS = 1
	}
	p.MemFraction = b.Profile.MemFraction
	p.BandwidthCap = b.Profile.BandwidthCap
	p.BreadthFirst = cfg.BreadthFirst
	return p
}

// SpeedupSeries records and simulates one benchmark version across
// the thread axis.
func SpeedupSeries(b *core.Benchmark, version string, cfg SeriesConfig) (Series, error) {
	if !b.HasVersion(version) {
		return Series{}, fmt.Errorf("report: %s has no version %q", b.Name, version)
	}
	threads := cfg.Threads
	if threads == nil {
		threads = PaperThreads
	}
	seq, err := Baseline(b, cfg.Class)
	if err != nil {
		return Series{}, err
	}
	params := simParams(b, seq, cfg)
	s := Series{Label: fmt.Sprintf("%s (%s)", b.Name, version)}
	for _, t := range threads {
		rec := trace.NewRecorder()
		res, err := b.Run(core.RunConfig{
			Class:         cfg.Class,
			Version:       version,
			Threads:       t,
			CutoffDepth:   cfg.CutoffDepth,
			RuntimeCutoff: cfg.RuntimeCutoff,
			Recorder:      rec,
		})
		if err != nil {
			return Series{}, fmt.Errorf("report: %s/%s on %d threads: %w", b.Name, version, t, err)
		}
		if err := b.Check(seq, res); err != nil {
			return Series{}, fmt.Errorf("report: %s/%s on %d threads failed verification: %w",
				b.Name, version, t, err)
		}
		tr := rec.Finish()
		simRes, err := sim.Run(tr, t, params)
		if err != nil {
			return Series{}, fmt.Errorf("report: simulating %s/%s on %d threads: %w",
				b.Name, version, t, err)
		}
		s.Points = append(s.Points, SeriesPoint{
			Threads: t,
			Speedup: simRes.Speedup,
			Tasks:   tr.NumTasks(),
			Steals:  simRes.Steals,
			Parks:   simRes.Parks,
		})
	}
	return s, nil
}
