// Package report regenerates the paper's evaluation artifacts: the
// application summary (Table I), the per-task application
// characteristics (Table II), the overall speedup study (Figure 3),
// the cut-off mechanism comparison (Figure 4), the tied-vs-untied
// comparison (Figure 5), and the §IV-D ablations (cut-off values,
// scheduling policies, generator schemes).
//
// Speedup series are produced by the trace-and-simulate pipeline
// described in DESIGN.md: the real omp runtime executes a version on
// a T-thread team while recording its task graph, and the
// discrete-event simulator replays the graph on T virtual threads
// under a calibrated cost model. The serial baseline is the measured
// sequential run, exactly as the paper computes its speedups (with
// Floorplan's nodes-per-second substitution handled by the invariant
// node set of a recorded trace).
//
// Every experiment cell is requested through a lab.Runner, so a
// store-backed runner turns repeated renders into pure cache reads
// and a dispatcher-backed sweep can pre-populate the store; the
// report layer itself never runs a benchmark.
package report

import (
	"fmt"
	"runtime"
	"sync"

	"bots/internal/core"
	"bots/internal/lab"
)

// PaperThreads is the thread axis of the paper's figures.
var PaperThreads = []int{1, 2, 4, 8, 16, 24, 32}

// SeriesPoint is one (threads, speedup) sample with its provenance.
type SeriesPoint struct {
	Threads int
	Speedup float64
	// Tasks is the number of explicit tasks in the recorded trace.
	Tasks int
	// Steals and Parks expose the simulated scheduler's behaviour.
	Steals, Parks int64
}

// Series is one labelled speedup curve.
type Series struct {
	Label  string
	Points []SeriesPoint
}

// SeriesConfig configures a speedup-series computation.
type SeriesConfig struct {
	Class core.Class
	// Threads is the thread axis; nil means PaperThreads.
	Threads []int
	// CutoffDepth overrides the app depth cut-off (0 = default).
	CutoffDepth int
	// RuntimeCutoff is the runtime cut-off policy name for the real
	// recording run (an omp.Cutoffs() name; "" = none).
	RuntimeCutoff string
	// Policy is the scheduler's registry name (an omp.Schedulers()
	// name; "" = workfirst). It selects both the real runtime
	// scheduler and the simulator's matching queue discipline.
	Policy string
	// Overheads optionally overrides the simulator cost-model knobs
	// that are part of a cell's identity (thread switching, central
	// queue); nil keeps sim.DefaultOverheads.
	Overheads *lab.SimOverrides
}

// JobFor maps one point of a series onto its lab experiment cell.
func JobFor(b *core.Benchmark, version string, threads int, cfg SeriesConfig) lab.JobSpec {
	return lab.JobSpec{
		Bench:         b.Name,
		Version:       version,
		Class:         cfg.Class.String(),
		Threads:       threads,
		CutoffDepth:   cfg.CutoffDepth,
		RuntimeCutoff: cfg.RuntimeCutoff,
		Policy:        cfg.Policy,
		Overheads:     cfg.Overheads,
	}.Normalize()
}

// pointSem bounds concurrent cell executions requested by the report
// layer, so rendering a figure fans its cells across the host without
// oversubscribing it when the runner has to actually measure.
var pointSem = make(chan struct{}, max(2, runtime.GOMAXPROCS(0)))

// SpeedupSeries obtains one benchmark version's speedup curve across
// the thread axis from the runner. Points are requested concurrently;
// with a cached runner, previously measured cells cost nothing.
func SpeedupSeries(r lab.Runner, b *core.Benchmark, version string, cfg SeriesConfig) (Series, error) {
	if !b.HasVersion(version) {
		return Series{}, fmt.Errorf("report: %s has no version %q", b.Name, version)
	}
	threads := cfg.Threads
	if threads == nil {
		threads = PaperThreads
	}
	s := Series{
		Label:  fmt.Sprintf("%s (%s)", b.Name, version),
		Points: make([]SeriesPoint, len(threads)),
	}
	errs := make([]error, len(threads))
	var wg sync.WaitGroup
	for i, t := range threads {
		wg.Add(1)
		go func(i, t int) {
			defer wg.Done()
			pointSem <- struct{}{}
			defer func() { <-pointSem }()
			rec, err := r.Run(JobFor(b, version, t, cfg))
			if err != nil {
				errs[i] = fmt.Errorf("report: %s/%s on %d threads: %w", b.Name, version, t, err)
				return
			}
			if !rec.Verified {
				errs[i] = fmt.Errorf("report: %s/%s on %d threads failed verification: %s",
					b.Name, version, t, rec.VerifyError)
				return
			}
			p := SeriesPoint{Threads: t, Tasks: rec.Tasks}
			if rec.Sim != nil {
				p.Speedup = rec.Sim.Speedup
				p.Steals = rec.Sim.Steals
				p.Parks = rec.Sim.Parks
			}
			s.Points[i] = p
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Series{}, err
		}
	}
	return s, nil
}
