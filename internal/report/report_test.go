package report

import (
	"bytes"
	"strings"
	"testing"

	_ "bots/internal/apps/all"
	"bots/internal/core"
	"bots/internal/lab"
	"bots/internal/omp"
)

var quickThreads = []int{1, 2, 4, 8}

// testExec and testRunner are shared across the package's tests: an
// in-memory store-backed cached runner, so repeated cells (the same
// figure rendered by two tests) measure once.
var (
	testExec   = lab.NewDirectRunner()
	testRunner = newTestRunner()
)

func newTestRunner() *lab.CachedRunner {
	store, err := lab.OpenStore("")
	if err != nil {
		panic(err)
	}
	return lab.NewCachedRunner(store, testExec)
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, name := range []string{"alignment", "fft", "fib", "floorplan", "health", "nqueens", "sort", "sparselu", "strassen"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table I missing %s", name)
		}
	}
	if !strings.Contains(out, "depth-based") || !strings.Contains(out, "single/for") {
		t.Error("Table I missing expected metadata values")
	}
}

func TestTable2Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(testRunner, &buf, core.Test); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "taskwaits/task") {
		t.Error("Table II missing column headers")
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("Table II contains non-finite values:\n%s", out)
	}
}

func TestProfileBenchmarkFib(t *testing.T) {
	b, _ := core.Get("fib")
	row, err := ProfileBenchmark(testRunner, b, core.Test)
	if err != nil {
		t.Fatal(err)
	}
	// fib's no-cutoff profile has the paper's character: tiny tasks
	// (a few ops each), ~0.5 taskwaits per task, small captured
	// environment, all writes shared.
	if row.OpsPerTask > 10 {
		t.Errorf("fib ops/task = %v, want tiny", row.OpsPerTask)
	}
	if row.WaitsPerTask < 0.3 || row.WaitsPerTask > 0.7 {
		t.Errorf("fib taskwaits/task = %v, want ≈ 0.5", row.WaitsPerTask)
	}
	if row.PctNonPrivate < 99 {
		t.Errorf("fib %% non-private = %v, want ≈ 100", row.PctNonPrivate)
	}
}

func TestSpeedupSeriesFibManual(t *testing.T) {
	b, _ := core.Get("fib")
	s, err := SpeedupSeries(testRunner, b, "manual-tied", SeriesConfig{Class: core.Small, Threads: quickThreads})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != len(quickThreads) {
		t.Fatalf("points = %d, want %d", len(s.Points), len(quickThreads))
	}
	// Speedup should be positive everywhere and grow from 1 to 8
	// threads for a benchmark with abundant parallelism.
	for _, p := range s.Points {
		if p.Speedup <= 0 {
			t.Fatalf("non-positive speedup at %d threads", p.Threads)
		}
	}
	if s.Points[3].Speedup < 2*s.Points[0].Speedup {
		t.Fatalf("manual fib should scale: 1t=%.2f 8t=%.2f",
			s.Points[0].Speedup, s.Points[3].Speedup)
	}
}

func TestCutoffOrderingOnFib(t *testing.T) {
	// The paper's Figure 4 finding, transposed to fib at 8 threads:
	// manual ≥ if-clause ≥ no-cutoff in speedup, because fib's
	// no-cutoff version drowns in task-management overhead.
	b, _ := core.Get("fib")
	get := func(version string) float64 {
		s, err := SpeedupSeries(testRunner, b, version, SeriesConfig{Class: core.Small, Threads: []int{8}})
		if err != nil {
			t.Fatal(err)
		}
		return s.Points[0].Speedup
	}
	man := get("manual-tied")
	ifc := get("if-tied")
	none := get("none-tied")
	if !(man >= ifc) {
		t.Errorf("manual (%.2f) should beat if-clause (%.2f)", man, ifc)
	}
	if !(ifc >= none) {
		t.Errorf("if-clause (%.2f) should beat no-cutoff (%.2f)", ifc, none)
	}
	if none > man/2 {
		t.Errorf("no-cutoff fib (%.2f) should be far below manual (%.2f)", none, man)
	}
}

func TestFig4Nqueens(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(testRunner, &buf, core.Test, quickThreads); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, label := range []string{"manual cut-off", "if clause cut-off", "no cut-off"} {
		if !strings.Contains(out, label) {
			t.Errorf("Figure 4 missing series %q", label)
		}
	}
}

func TestFig5TiedUntied(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(testRunner, &buf, core.Test, quickThreads); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "alignment (tied)") ||
		!strings.Contains(buf.String(), "nqueens (manual-untied)") {
		t.Error("Figure 5 missing series labels")
	}
}

func TestAblationGenerators(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationGenerators(testRunner, &buf, core.Test, quickThreads); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "single-tied") || !strings.Contains(buf.String(), "for-untied") {
		t.Error("generator ablation missing versions")
	}
}

func TestAblationCutoffDepth(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationCutoffDepth(testRunner, &buf, core.Test, 4, []int{2, 6}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cut-off depth") {
		t.Error("cut-off ablation missing header")
	}
}

func TestAblationThreadSwitch(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationThreadSwitch(testRunner, &buf, core.Test, []int{1, 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "+switch") {
		t.Error("thread-switch ablation missing the +switch series")
	}
}

func TestAblationQueueArch(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationQueueArch(testRunner, &buf, core.Test, []int{1, 8}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "central-queue") {
		t.Error("queue-architecture ablation missing central-queue series")
	}
}

func TestAblationPolicy(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationPolicy(testRunner, &buf, core.Test, []int{1, 4}); err != nil {
		t.Fatal(err)
	}
	// One series per registered scheduler, per benchmark.
	for _, pol := range omp.Schedulers() {
		if !strings.Contains(buf.String(), "sort (untied) "+pol) {
			t.Errorf("policy ablation missing %s series", pol)
		}
	}
}

func TestFig3AllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := Fig3(testRunner, &buf, core.Test, quickThreads); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sparselu (for-tied)") || !strings.Contains(out, "strassen (none-tied)") {
		t.Errorf("Figure 3 missing expected best-version labels:\n%s", out)
	}
}

func TestTableAnalysis(t *testing.T) {
	var buf bytes.Buffer
	if err := TableAnalysis(testRunner, &buf, core.Test); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Parallelism") || !strings.Contains(out, "Span") {
		t.Error("analysis table missing columns")
	}
	if strings.Contains(out, "NaN") {
		t.Error("analysis table has NaN")
	}
}

func TestAnalyzeBenchmarkParallelismExplainsSaturation(t *testing.T) {
	// The structural story behind Figure 3: fft's average parallelism
	// must be far below sort's at comparable input classes, which is
	// why fft saturates first in the paper and in our reproduction.
	fft, _ := core.Get("fft")
	srt, _ := core.Get("sort")
	aFft, err := AnalyzeBenchmark(testRunner, fft, "untied", core.Test)
	if err != nil {
		t.Fatal(err)
	}
	aSort, err := AnalyzeBenchmark(testRunner, srt, "untied", core.Test)
	if err != nil {
		t.Fatal(err)
	}
	if aFft.Parallelism >= aSort.Parallelism {
		t.Fatalf("fft parallelism (%v) should be below sort (%v)",
			aFft.Parallelism, aSort.Parallelism)
	}
}

// TestSecondRenderIsAllCacheHits is the store contract the report
// layer is built on: rendering the same figure twice through one
// cached runner must not execute a single benchmark the second time.
func TestSecondRenderIsAllCacheHits(t *testing.T) {
	store, err := lab.OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	direct := lab.NewDirectRunner()
	runner := lab.NewCachedRunner(store, direct)
	var buf bytes.Buffer
	if err := Fig4(runner, &buf, core.Test, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	first := direct.Exec.Executions()
	if first == 0 {
		t.Fatal("first render executed nothing")
	}
	buf.Reset()
	if err := Fig4(runner, &buf, core.Test, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := direct.Exec.Executions(); got != first {
		t.Fatalf("second render executed %d benchmarks, want 0", got-first)
	}
	if runner.Hits() == 0 {
		t.Fatal("second render produced no cache hits")
	}
}

// TestRenderDispatch checks the name → artifact dispatch shared by
// botsreport and the HTTP /report endpoint.
func TestRenderDispatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(testRunner, &buf, "table1", core.Test, []int{1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("dispatching table1 rendered something else")
	}
	err := Render(testRunner, &buf, "fig99", core.Test, []int{1})
	if err == nil || !strings.Contains(err.Error(), "unknown report figure") {
		t.Errorf("unknown figure error = %v", err)
	}
}
