package report

import (
	"fmt"
	"io"
	"strings"

	"bots/internal/core"
	"bots/internal/lab"
	"bots/internal/omp"
)

// Fig3 regenerates the paper's Figure 3: the speedup of the best
// version of each application across the thread axis.
func Fig3(r lab.Runner, w io.Writer, class core.Class, threads []int) error {
	var all []Series
	for _, b := range core.Paper() {
		if b.Name == "fib" {
			// The paper's Figure 3 plots eight applications; fib is
			// the microbenchmark used in the cut-off study instead.
			continue
		}
		s, err := SpeedupSeries(r, b, b.BestVersion, SeriesConfig{Class: class, Threads: threads})
		if err != nil {
			return err
		}
		all = append(all, s)
	}
	WriteChart(w, fmt.Sprintf("Figure 3 — speedup of the best version per application (%s class)", class), all)
	return nil
}

// Fig4 regenerates Figure 4: the NQueens benchmark under the three
// cut-off mechanisms. The no-cut-off curve runs under the runtime's
// task-count cut-off, mirroring the paper's setup where "only the one
// implemented by the runtime (if any) is in use" and the Intel
// runtime bounds the number of live tasks.
func Fig4(r lab.Runner, w io.Writer, class core.Class, threads []int) error {
	b, err := core.Get("nqueens")
	if err != nil {
		return err
	}
	var all []Series
	type cfg struct {
		version string
		label   string
		rt      string
	}
	for _, c := range []cfg{
		{"if-untied", "with if clause cut-off", ""},
		{"manual-untied", "with manual cut-off", ""},
		{"none-untied", "with no cut-off (runtime maxtasks)", "maxtasks"},
	} {
		s, err := SpeedupSeries(r, b, c.version, SeriesConfig{
			Class: class, Threads: threads, RuntimeCutoff: c.rt,
		})
		if err != nil {
			return err
		}
		s.Label = c.label
		all = append(all, s)
	}
	WriteChart(w, fmt.Sprintf("Figure 4 — NQueens under different cut-off mechanisms (%s class)", class), all)
	return nil
}

// Fig5 regenerates Figure 5: tied vs untied tasks on Alignment and
// NQueens.
func Fig5(r lab.Runner, w io.Writer, class core.Class, threads []int) error {
	var all []Series
	type pick struct{ bench, tiedV, untiedV string }
	for _, p := range []pick{
		{"alignment", "tied", "untied"},
		{"nqueens", "manual-tied", "manual-untied"},
	} {
		b, err := core.Get(p.bench)
		if err != nil {
			return err
		}
		for _, v := range []string{p.tiedV, p.untiedV} {
			s, err := SpeedupSeries(r, b, v, SeriesConfig{Class: class, Threads: threads})
			if err != nil {
				return err
			}
			all = append(all, s)
		}
	}
	WriteChart(w, fmt.Sprintf("Figure 5 — tied vs untied tasks (%s class)", class), all)
	return nil
}

// FigExtensions reports the speedup of the extension benchmarks (UTS
// and Knapsack, the suite additions the paper's §V announces) with
// their best versions, alongside their cut-off sensitivity — UTS's
// unbalanced implicit tree is the canonical work-stealing stressor.
func FigExtensions(r lab.Runner, w io.Writer, class core.Class, threads []int) error {
	var all []Series
	for _, b := range core.Extensions() {
		best, err := SpeedupSeries(r, b, b.BestVersion, SeriesConfig{Class: class, Threads: threads})
		if err != nil {
			return err
		}
		all = append(all, best)
		none, err := SpeedupSeries(r, b, "none-tied", SeriesConfig{Class: class, Threads: threads})
		if err != nil {
			return err
		}
		all = append(all, none)
	}
	WriteChart(w, fmt.Sprintf("Extensions — post-paper suite additions (%s class)", class), all)
	return nil
}

// AblationThreadSwitch runs the §IV-C counterfactual the paper could
// not: its first hypothesis for the negligible tied/untied gap is
// that "the Intel Compiler does not implement thread switching and
// thus untied tasks cannot benefit from this feature which should
// avoid imbalances". The simulator can implement it, so this ablation
// compares untied tasks without and with continuation migration on
// the imbalanced benchmarks.
func AblationThreadSwitch(r lab.Runner, w io.Writer, class core.Class, threads []int) error {
	fmt.Fprintf(w, "Ablation — untied thread switching (the paper's §IV-C counterfactual)\n\n")
	var all []Series
	for _, pick := range []struct{ bench, version string }{
		{"floorplan", "manual-untied"},
		{"health", "manual-untied"},
		{"nqueens", "manual-untied"},
	} {
		b, err := core.Get(pick.bench)
		if err != nil {
			return err
		}
		for _, ts := range []bool{false, true} {
			var over *lab.SimOverrides
			if ts {
				// A migrated continuation restarts cold.
				over = &lab.SimOverrides{ThreadSwitch: true, SwitchNS: 800}
			}
			s, err := SpeedupSeries(r, b, pick.version, SeriesConfig{
				Class: class, Threads: threads, Overheads: over,
			})
			if err != nil {
				return err
			}
			if ts {
				s.Label += " +switch"
			}
			all = append(all, s)
		}
	}
	WriteChart(w, "untied speedups without and with continuation migration", all)
	return nil
}

// AblationQueueArch contrasts distributed per-worker deques (the
// runtime's architecture) with a central shared task queue whose
// every operation serializes through one lock — a core implementation
// decision the paper's §III motivation leaves to vendors. Fine-grained
// benchmarks expose the collapse.
func AblationQueueArch(r lab.Runner, w io.Writer, class core.Class, threads []int) error {
	fmt.Fprintf(w, "Ablation — task-queue architecture (per-worker deques vs central queue)\n\n")
	var all []Series
	for _, pick := range []struct{ bench, version string }{
		{"fib", "manual-tied"},
		{"sort", "untied"},
	} {
		b, err := core.Get(pick.bench)
		if err != nil {
			return err
		}
		for _, central := range []bool{false, true} {
			var over *lab.SimOverrides
			if central {
				over = &lab.SimOverrides{QueueSerializeNS: 120}
			}
			s, err := SpeedupSeries(r, b, pick.version, SeriesConfig{
				Class: class, Threads: threads, Overheads: over,
			})
			if err != nil {
				return err
			}
			if central {
				s.Label += " central-queue"
			} else {
				s.Label += " deques"
			}
			all = append(all, s)
		}
	}
	WriteChart(w, "speedups under both queue architectures", all)
	return nil
}

// AblationCutoffDepth sweeps the depth-based cut-off value (§IV-D:
// "Choosing a low cut-off value can restrict parallelism ... a high
// cut-off value can saturate the system") on fib with the manual and
// if-clause mechanisms at a fixed thread count.
func AblationCutoffDepth(r lab.Runner, w io.Writer, class core.Class, threads int, depths []int) error {
	b, err := core.Get("fib")
	if err != nil {
		return err
	}
	if depths == nil {
		depths = []int{2, 4, 6, 8, 12, 16}
	}
	fmt.Fprintf(w, "Ablation — cut-off value sweep: fib (%s class, %d threads)\n\n", class, threads)
	header := []string{"cut-off depth", "manual speedup", "manual tasks", "if-clause speedup", "if-clause tasks"}
	var rows [][]string
	for _, d := range depths {
		man, err := SpeedupSeries(r, b, "manual-tied", SeriesConfig{
			Class: class, Threads: []int{threads}, CutoffDepth: d,
		})
		if err != nil {
			return err
		}
		ifc, err := SpeedupSeries(r, b, "if-tied", SeriesConfig{
			Class: class, Threads: []int{threads}, CutoffDepth: d,
		})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%.2f", man.Points[0].Speedup),
			fmt.Sprintf("%d", man.Points[0].Tasks),
			fmt.Sprintf("%.2f", ifc.Points[0].Speedup),
			fmt.Sprintf("%d", ifc.Points[0].Tasks),
		})
	}
	WriteTable(w, header, rows)
	fmt.Fprintln(w)
	return nil
}

// AblationPolicy compares every registered task scheduler (§IV-D's
// task-scheduling-policy study, extended from the original work-first
// vs breadth-first pair to the full registry — centralized shared
// queue and locality stealing included) on a recursive and an
// iterative benchmark.
func AblationPolicy(r lab.Runner, w io.Writer, class core.Class, threads []int) error {
	policies := omp.Schedulers()
	fmt.Fprintf(w, "Ablation — task scheduler (%s)\n\n", strings.Join(policies, " vs "))
	var all []Series
	for _, name := range []string{"sort", "sparselu"} {
		b, err := core.Get(name)
		if err != nil {
			return err
		}
		for _, pol := range policies {
			s, err := SpeedupSeries(r, b, b.BestVersion, SeriesConfig{
				Class: class, Threads: threads, Policy: pol,
			})
			if err != nil {
				return err
			}
			s.Label += " " + pol
			all = append(all, s)
		}
	}
	WriteChart(w, "speedups per scheduler", all)
	return nil
}

// AblationGenerators compares SparseLU's single-generator and
// multiple-generator (for worksharing) versions (§IV-D).
func AblationGenerators(r lab.Runner, w io.Writer, class core.Class, threads []int) error {
	b, err := core.Get("sparselu")
	if err != nil {
		return err
	}
	var all []Series
	for _, v := range b.Versions {
		s, err := SpeedupSeries(r, b, v, SeriesConfig{Class: class, Threads: threads})
		if err != nil {
			return err
		}
		all = append(all, s)
	}
	WriteChart(w, fmt.Sprintf("Ablation — SparseLU task generation schemes (%s class)", class), all)
	return nil
}
