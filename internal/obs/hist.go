package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is the suite's shared log-bucketed histogram, HDR-style:
// values are bucketed by their power-of-two octave, each octave split
// into 2^subBits linear sub-buckets, so the relative quantization
// error is bounded by 1/2^subBits (≈6%) at every magnitude from
// nanoseconds to hours in a fixed ~500-slot array. Recording is a
// handful of atomic adds — allocation-free and safe from any
// goroutine concurrently with other recordings; quantile extraction
// reads the buckets non-atomically-consistently, which during a run
// only blurs the tail by in-flight samples.
//
// The zero value is ready to use. internal/serve records request
// latencies into it and the obs Registry renders it in Prometheus
// histogram exposition format (prom.go).
const (
	subBits   = 3
	subCount  = 1 << subBits
	histSlots = (64 - subBits) * subCount
)

// Histogram records int64 samples (conventionally nanoseconds; Record
// takes a time.Duration directly).
type Histogram struct {
	buckets [histSlots]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf maps a non-negative value to its slot: exact buckets below
// subCount, then (octave, sub-bucket) pairs.
func bucketOf(v int64) int {
	if v < subCount {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - 1 - subBits
	return (shift << subBits) + int((v>>shift)&(subCount-1)) + subCount
}

// bucketUpper returns the largest value mapping to slot idx — the
// conservative (pessimistic) representative used for quantiles.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	shift := (idx - subCount) >> subBits
	sub := int64(idx & (subCount - 1))
	return (subCount+sub+1)<<shift - 1
}

// Record adds one duration sample.
func (h *Histogram) Record(d time.Duration) { h.RecordValue(int64(d)) }

// RecordValue adds one raw sample; negative values clamp to zero.
func (h *Histogram) RecordValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the exact maximum recorded sample.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns the upper bound of the bucket containing the q-th
// sample (0 < q ≤ 1), clamped to the exact observed max so the
// pessimistic bucket bound never overshoots it; 0 for an empty
// histogram.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	max := h.max.Load()
	var seen int64
	for i := 0; i < histSlots; i++ {
		seen += h.buckets[i].Load()
		if seen >= target {
			if up := bucketUpper(i); up < max {
				return up
			}
			return max
		}
	}
	return max
}

// LatencyStats is the serialized summary of one histogram. All values
// are nanoseconds; quantiles are upper bucket bounds (pessimistic to
// ≈6%) clamped to the exact max, so P50 ≤ P90 ≤ P99 ≤ P999 ≤ Max
// always holds; Max and Mean are exact.
type LatencyStats struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50_ns"`
	P90   int64 `json:"p90_ns"`
	P99   int64 `json:"p99_ns"`
	P999  int64 `json:"p999_ns"`
	Max   int64 `json:"max_ns"`
	Mean  int64 `json:"mean_ns"`
}

// Summary extracts the report form of the histogram.
func (h *Histogram) Summary() LatencyStats {
	n := h.count.Load()
	s := LatencyStats{
		Count: n,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.max.Load(),
	}
	if n > 0 {
		s.Mean = h.sum.Load() / n
	}
	return s
}
