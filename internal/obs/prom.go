package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): families sorted by name,
// each preceded by its # HELP / # TYPE comments, series sorted by
// label set.
//
// Histograms follow the Prometheus convention for duration metrics:
// recorded nanosecond samples are rendered with bucket bounds and
// sums in seconds, cumulative bucket counts, a trailing +Inf bucket,
// and _sum/_count rows. Zero-count buckets are elided (cumulative
// counts stay monotone without them) so a ~500-slot histogram renders
// in proportion to its occupancy, not its resolution.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.snapshotFamilies() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.rows {
			switch {
			case s.hist != nil:
				writeHistogram(&b, f.name, s)
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(float64(s.counter.Value())))
			default:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.fn()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series. The bucket loop reads
// each slot once; recording may proceed concurrently, so the +Inf
// count is the cumulative total actually swept (not a separately
// loaded count that in-flight samples could desynchronize from
// the buckets).
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.hist
	var cum int64
	for i := 0; i < histSlots; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			withLabel(s.labels, "le", formatValue(float64(bucketUpper(i))/1e9)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatValue(float64(h.Sum())/1e9))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, cum)
}

// withLabel splices one extra label pair into a rendered label
// suffix.
func withLabel(labels, name, value string) string {
	pair := name + `="` + escapeLabelValue(value) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// formatValue renders a sample value the way Prometheus expects:
// shortest float representation, integral values without an
// exponent where possible.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// Handler returns an http.Handler serving the registry as
// text/plain exposition — the GET /metrics endpoint of every driver.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
