package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestFlightRingWrap: a ring past capacity drops oldest and keeps the
// newest perWorker events in order.
func TestFlightRingWrap(t *testing.T) {
	const cap = 16
	fr := NewFlightRecorder(1, cap)
	const total = 3*cap + 5
	for i := 0; i < total; i++ {
		fr.Record(0, EvSpawn, int64(i))
	}
	evs := fr.Snapshot()
	if len(evs) != cap {
		t.Fatalf("retained %d events, want %d", len(evs), cap)
	}
	// Drop-oldest: the retained args are the last cap values, in
	// recording order (timestamps are non-decreasing so the sort is
	// stable w.r.t. one ring).
	for i, ev := range evs {
		if want := int64(total - cap + i); ev.Arg != want {
			t.Fatalf("event %d arg = %d, want %d", i, ev.Arg, want)
		}
		if ev.Worker != 0 || ev.Kind != EvSpawn {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if got := fr.Dropped(); got != total-cap {
		t.Fatalf("Dropped() = %d, want %d", got, total-cap)
	}
}

// TestFlightExternalRing: out-of-range worker ids land on the
// external ring as worker -1.
func TestFlightExternalRing(t *testing.T) {
	fr := NewFlightRecorder(2, 16)
	fr.Record(-1, EvSubmit, 1)
	fr.Record(99, EvSubmit, 2)
	fr.Record(1, EvSpawn, 3)
	evs := fr.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("snapshot len = %d", len(evs))
	}
	var external int
	for _, ev := range evs {
		if ev.Kind == EvSubmit {
			external++
			if ev.Worker != -1 {
				t.Fatalf("submit event worker = %d, want -1", ev.Worker)
			}
		}
	}
	if external != 2 {
		t.Fatalf("external events = %d, want 2", external)
	}
}

// TestFlightConcurrent hammers every ring (including the external
// one) from concurrent writers while snapshots run — meaningful under
// -race; also checks no events are lost short of capacity.
func TestFlightConcurrent(t *testing.T) {
	const workers, per = 4, 1000
	fr := NewFlightRecorder(workers, per)
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() { // concurrent reader
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				fr.Snapshot()
				fr.Dropped()
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers+1; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			id := w
			if w == workers {
				id = -1 // external writer
			}
			for i := 0; i < per/2; i++ {
				fr.Record(id, EvSpawn, int64(i))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	reader.Wait()
	if got := len(fr.Snapshot()); got != (workers+1)*per/2 {
		t.Fatalf("retained %d events, want %d", got, (workers+1)*per/2)
	}
}

// TestFlightWriteJSON: the dump is valid bots-flightrec/v1 JSON with
// string event kinds and sorted timestamps.
func TestFlightWriteJSON(t *testing.T) {
	fr := NewFlightRecorder(2, 16)
	fr.Record(0, EvPark, 0)
	fr.Record(1, EvSteal, 2)
	fr.Record(-1, EvSubmit, 1)
	var b strings.Builder
	if err := fr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Schema  string `json:"schema"`
		Workers int    `json:"workers"`
		Dropped int64  `json:"dropped"`
		Events  []struct {
			TimeNS int64  `json:"t_ns"`
			Worker int    `json:"worker"`
			Kind   string `json:"kind"`
			Arg    int64  `json:"arg"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(b.String()), &d); err != nil {
		t.Fatalf("dump not valid JSON: %v\n%s", err, b.String())
	}
	if d.Schema != FlightRecorderSchema || d.Workers != 2 || d.Dropped != 0 {
		t.Fatalf("header = %+v", d)
	}
	if len(d.Events) != 3 {
		t.Fatalf("events = %d", len(d.Events))
	}
	kinds := map[string]bool{}
	var prev int64
	for _, ev := range d.Events {
		kinds[ev.Kind] = true
		if ev.TimeNS < prev {
			t.Fatalf("events not time-sorted")
		}
		prev = ev.TimeNS
	}
	for _, k := range []string{"park", "steal", "submit"} {
		if !kinds[k] {
			t.Fatalf("missing kind %q in %v", k, kinds)
		}
	}
}

// TestEventKindNames: every kind has a distinct vocabulary name.
func TestEventKindNames(t *testing.T) {
	seen := map[string]bool{}
	for k := EventKind(0); k < evKinds; k++ {
		n := k.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("kind %d name %q", k, n)
		}
		seen[n] = true
	}
}
