package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
)

// TestRegisterRuntimeMetrics scrapes the runtime gauges through the
// registry and checks each advertised series appears with a sane
// value (heap live must be positive in any running process; the
// latency percentiles must be finite and non-negative).
func TestRegisterRuntimeMetrics(t *testing.T) {
	// Force a GC so the pause histogram and live-heap figure are
	// populated regardless of test ordering.
	runtime.GC()

	r := NewRegistry()
	RegisterRuntimeMetrics(r, Label{Name: "source", Value: "test"})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"bots_go_gc_pause_p99_seconds",
		"bots_go_sched_latency_p99_seconds",
		"bots_go_heap_live_bytes",
	} {
		if !strings.Contains(out, name+`{source="test"}`) {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}

	s := newRuntimeSampler()
	for i := range runtimeSamples {
		v := s.value(i)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("%s = %v, want a finite non-negative value", runtimeSamples[i].name, v)
		}
	}
	if heap := s.value(2); heap <= 0 {
		t.Errorf("live heap = %v bytes, want > 0", heap)
	}
}

// TestHistQuantile pins the bucket walk on a hand-built histogram,
// including the infinite-bound edges runtime/metrics produces.
func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{10, 80, 9, 1},
		Buckets: []float64{0, 1, 2, 3, math.Inf(+1)},
	}
	if got := histQuantile(h, 0.5); got != 2 {
		t.Errorf("p50 = %v, want 2 (cumulative 90 at bucket (1,2])", got)
	}
	if got := histQuantile(h, 0.99); got != 3 {
		t.Errorf("p99 = %v, want 3 (cumulative 99 at bucket (2,3])", got)
	}
	// The tail lives in the overflow bucket: report its finite floor.
	if got := histQuantile(h, 1.0); got != 3 {
		t.Errorf("p100 = %v, want 3 (finite floor of the +Inf bucket)", got)
	}
	if got := histQuantile(&metrics.Float64Histogram{}, 0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	if got := histQuantile(nil, 0.99); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
}
