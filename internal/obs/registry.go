// Package obs is the runtime observability layer: a metrics registry
// of counters, gauges, and log-bucketed histograms rendered in
// Prometheus text exposition format, plus a bounded ring-buffer
// flight recorder of scheduler events (flight.go).
//
// The package is a stdlib-only leaf so every layer of the suite can
// publish into it: internal/omp registers live team gauges and
// counters sampled from its atomic worker stats, internal/serve
// records per-request latency histograms, internal/lab exposes store
// and dispatcher state, and the cmd drivers surface the whole thing
// over GET /metrics.
//
// Design constraints, in order:
//
//   - recording on the hot path is allocation-free: Counter.Inc/Add
//     and Histogram.Record are a few atomic adds, nothing more (the
//     perf suite gates this as obs/record-allocs ≈ 0);
//   - sampling is pull-based: gauges and sampled counters are
//     closures evaluated only when a scrape renders the registry, so
//     an instrumented-but-unscraped program pays nothing per event;
//   - the metric vocabulary is fixed at registration (names, help,
//     constant labels) so the exposition output is stable and
//     lexically ordered run to run.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name="value" pair attached to a metric series
// at registration.
type Label struct {
	Name, Value string
}

// metricKind is the Prometheus type of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a family: exactly one of counter,
// hist, or fn backs its value.
type series struct {
	labels  string // rendered `{a="b",c="d"}` suffix, "" when unlabeled
	counter *Counter
	hist    *Histogram
	fn      func() float64
}

// family is one named metric with its type, help text, and series.
type family struct {
	name string
	help string
	kind metricKind
	rows []*series
}

// Registry holds registered metrics and renders them. All
// registration methods are safe for concurrent use, as is rendering
// concurrently with recording.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order; rendering sorts
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family returns (creating if needed) the named family, enforcing
// one-kind-per-name. Registering the same name with a different kind
// panics — metric names are a fixed vocabulary, so a collision is a
// programming error, caught at startup where registration happens.
func (r *Registry) family(name, help string, kind metricKind) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// addSeries appends one labeled series to a family, rejecting
// duplicate label sets (two writers for one exposition row would
// render ambiguous output).
func (f *family) addSeries(s *series) {
	for _, have := range f.rows {
		if have.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", f.name, s.labels))
		}
	}
	f.rows = append(f.rows, s)
}

// Counter registers (or extends with a new label set) a counter
// family and returns the writable counter backing the series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := NewCounter()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, kindCounter).addSeries(&series{labels: renderLabels(labels), counter: c})
	return c
}

// CounterFunc registers a sampled counter series: fn is evaluated at
// scrape time and must be monotonically non-decreasing (e.g. a view
// over an existing atomic total).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, kindCounter).addSeries(&series{labels: renderLabels(labels), fn: fn})
}

// GaugeFunc registers a sampled gauge series: fn is evaluated at
// scrape time and may move in either direction.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, kindGauge).addSeries(&series{labels: renderLabels(labels), fn: fn})
}

// Histogram registers a duration histogram series and returns the
// writable histogram backing it. Samples are nanoseconds; the
// exposition renders bucket bounds and sums in seconds, per
// Prometheus convention.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, help, h, labels...)
	return h
}

// RegisterHistogram registers an existing histogram (one the caller
// also records into directly, e.g. internal/serve's latency
// histograms) as a series of the named family.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, kindHistogram).addSeries(&series{labels: renderLabels(labels), hist: h})
}

// snapshotFamilies returns the families sorted by name with their
// rows sorted by label string, for deterministic rendering.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	out := make([]*family, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		rows := append([]*series(nil), f.rows...)
		sort.Slice(rows, func(i, j int) bool { return rows[i].labels < rows[j].labels })
		out = append(out, &family{name: f.name, help: f.help, kind: f.kind, rows: rows})
	}
	return out
}

// validMetricName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels serializes a label set to its exposition suffix, with
// names sorted and values escaped.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validMetricName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// counterShard is one cache-line-padded accumulation cell.
type counterShard struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotone counter. The common single-writer or
// low-frequency case uses Inc/Add (shard 0); per-worker hot paths use
// AddShard with the worker's slot so concurrent writers never share a
// cache line. Value sums the shards.
type Counter struct {
	shards []counterShard
}

// counterShards is the fixed shard count: enough to separate the
// worker counts this suite runs (teams size GOMAXPROCS), small enough
// that Value stays a trivial sweep. AddShard wraps modulo this.
const counterShards = 64

// NewCounter returns a counter usable standalone (most callers get
// one from Registry.Counter instead).
func NewCounter() *Counter {
	return &Counter{shards: make([]counterShard, counterShards)}
}

// Inc adds one.
func (c *Counter) Inc() { c.shards[0].n.Add(1) }

// Add adds delta (which must be non-negative; counters are monotone).
func (c *Counter) Add(delta int64) { c.shards[0].n.Add(delta) }

// AddShard adds delta on the given shard (wrapped modulo the shard
// count), so per-worker writers do not contend on one cache line.
func (c *Counter) AddShard(shard int, delta int64) {
	c.shards[shard&(counterShards-1)].n.Add(delta)
}

// Value returns the summed count. Like every multi-word read in this
// package it is a consistent per-shard, not cross-shard, snapshot.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}
