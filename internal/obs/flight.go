package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// FlightRecorderSchema identifies the JSON dump layout.
const FlightRecorderSchema = "bots-flightrec/v1"

// EventKind classifies one scheduler event in the flight recorder.
type EventKind uint8

const (
	// EvSpawn: a deferred task became runnable (queued); Arg is its depth.
	EvSpawn EventKind = iota
	// EvSteal: a worker took a task queued for another worker; Arg is
	// the stolen task's depth.
	EvSteal
	// EvPark: a worker exhausted its spin budget and blocked on the
	// team doorbell; Arg is the team live-task count at the park.
	EvPark
	// EvWake: a parked worker resumed; Arg is the park duration in ns.
	EvWake
	// EvSubmit: a persistent-team submission was accepted (recorded on
	// the external ring — the submitter is not a team worker); Arg is
	// the inbox length after the append.
	EvSubmit
	// EvFinish: a deferred task completed; Arg is its depth.
	EvFinish

	evKinds
)

var evKindNames = [evKinds]string{"spawn", "steal", "park", "wake", "submit", "finish"}

// String returns the kind's dump vocabulary name.
func (k EventKind) String() string {
	if int(k) < len(evKindNames) {
		return evKindNames[k]
	}
	return "unknown"
}

// Event is one recorded scheduler event.
type Event struct {
	TimeNS int64     // wall-clock nanoseconds (time.Now().UnixNano())
	Worker int       // team slot; -1 for external (submitter) events
	Kind   EventKind //
	Arg    int64     // kind-specific payload, see the kind constants
}

// evRing is one bounded drop-oldest event ring. Each team worker owns
// one (single writer, so the mutex is uncontended — one CAS per
// event); the external ring serializes non-worker writers (request
// submitters) behind the same mutex. The mutex also makes Snapshot
// race-free against writers, which is what lets a stall dump read the
// rings while the team is live.
type evRing struct {
	mu  sync.Mutex
	buf []Event
	n   uint64 // total events ever recorded on this ring
	_   [40]byte
}

func (r *evRing) record(ev Event) {
	r.mu.Lock()
	r.buf[r.n%uint64(len(r.buf))] = ev
	r.n++
	r.mu.Unlock()
}

// snapshot appends the ring's retained events, oldest first.
func (r *evRing) snapshot(out []Event) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	cap64 := uint64(len(r.buf))
	start := uint64(0)
	if r.n > cap64 {
		start = r.n - cap64
	}
	for i := start; i < r.n; i++ {
		out = append(out, r.buf[i%cap64])
	}
	return out
}

// FlightRecorder is a bounded ring-buffer recorder of scheduler
// events: one drop-oldest ring per team worker plus one external ring
// for submitter-side events. Recording is allocation-free (the rings
// are sized at construction) and costs one uncontended mutex
// round-trip plus a clock read per event; it is off unless a team was
// built with omp.WithFlightRecorder, so the default hot path pays
// only a nil check.
type FlightRecorder struct {
	rings []evRing // workers rings, then one external ring
}

// NewFlightRecorder sizes a recorder for a team of `workers`, keeping
// the most recent perWorker events per worker (and per the external
// submit ring). perWorker < 16 is raised to 16.
func NewFlightRecorder(workers, perWorker int) *FlightRecorder {
	if workers < 1 {
		workers = 1
	}
	if perWorker < 16 {
		perWorker = 16
	}
	fr := &FlightRecorder{rings: make([]evRing, workers+1)}
	for i := range fr.rings {
		fr.rings[i].buf = make([]Event, perWorker)
	}
	return fr
}

// Workers returns the per-worker ring count (excluding the external
// ring).
func (fr *FlightRecorder) Workers() int { return len(fr.rings) - 1 }

// Record appends one event. worker < 0 (or >= the team size) lands on
// the external ring.
func (fr *FlightRecorder) Record(worker int, kind EventKind, arg int64) {
	idx := len(fr.rings) - 1
	if worker >= 0 && worker < idx {
		idx = worker
	} else {
		worker = -1
	}
	fr.rings[idx].record(Event{TimeNS: time.Now().UnixNano(), Worker: worker, Kind: kind, Arg: arg})
}

// Snapshot returns the retained events of every ring, merged and
// sorted by timestamp. Safe concurrently with recording; each ring is
// copied consistently, the merge is a point-in-time cut per ring.
func (fr *FlightRecorder) Snapshot() []Event {
	var out []Event
	for i := range fr.rings {
		out = fr.rings[i].snapshot(out)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TimeNS < out[j].TimeNS })
	return out
}

// Dropped returns the total events evicted by ring wrap so far.
func (fr *FlightRecorder) Dropped() int64 {
	var dropped int64
	for i := range fr.rings {
		r := &fr.rings[i]
		r.mu.Lock()
		if c := uint64(len(r.buf)); r.n > c {
			dropped += int64(r.n - c)
		}
		r.mu.Unlock()
	}
	return dropped
}

// eventJSON is the dump form of one event.
type eventJSON struct {
	TimeNS int64  `json:"t_ns"`
	Worker int    `json:"worker"`
	Kind   string `json:"kind"`
	Arg    int64  `json:"arg"`
}

// dumpJSON is the bots-flightrec/v1 document.
type dumpJSON struct {
	Schema  string      `json:"schema"`
	Workers int         `json:"workers"`
	Dropped int64       `json:"dropped"`
	Events  []eventJSON `json:"events"`
}

// WriteJSON dumps the recorder's current timeline as a
// bots-flightrec/v1 JSON document: schema, worker count, drop-oldest
// eviction count, and the merged time-sorted event list.
func (fr *FlightRecorder) WriteJSON(w io.Writer) error {
	evs := fr.Snapshot()
	d := dumpJSON{
		Schema:  FlightRecorderSchema,
		Workers: fr.Workers(),
		Dropped: fr.Dropped(),
		Events:  make([]eventJSON, len(evs)),
	}
	for i, ev := range evs {
		d.Events[i] = eventJSON{TimeNS: ev.TimeNS, Worker: ev.Worker, Kind: ev.Kind.String(), Arg: ev.Arg}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
