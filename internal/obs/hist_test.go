package obs

import (
	"testing"
	"time"
)

// TestHistBuckets checks the bucket mapping exactly: uppers strictly
// increase, bucketOf(bucketUpper(i)) == i, and consecutive buckets
// tile the int64 range with no gaps; spot values respect the relative
// error bound.
func TestHistBuckets(t *testing.T) {
	prevUpper := int64(-1)
	for idx := 0; idx < histSlots; idx++ {
		up := bucketUpper(idx)
		if up <= prevUpper {
			t.Fatalf("bucketUpper(%d) = %d, not above previous %d", idx, up, prevUpper)
		}
		if got := bucketOf(up); got != idx {
			t.Fatalf("bucketOf(bucketUpper(%d)=%d) = %d", idx, up, got)
		}
		// The first value of this bucket is one past the previous
		// bucket's upper bound — no gaps.
		if got := bucketOf(prevUpper + 1); got != idx {
			t.Fatalf("bucketOf(%d) = %d, want %d", prevUpper+1, got, idx)
		}
		prevUpper = up
		if up > int64(1)<<62 {
			break
		}
	}
	for _, v := range []int64{0, 1, 7, 8, 9, 100, 12345, 1e9, 1e15} {
		idx := bucketOf(v)
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("value %d mapped to bucket %d with upper %d < value", v, idx, up)
		}
		if v >= subCount && float64(up-v) > float64(v)/subCount {
			t.Fatalf("value %d bucket upper %d exceeds relative error bound", v, up)
		}
	}
}

// TestHistQuantiles feeds a known distribution and checks the
// quantiles against exact order statistics (within bucket error).
func TestHistQuantiles(t *testing.T) {
	var h Histogram
	// 1000 samples: i microseconds for i in [1,1000].
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	check := func(name string, got, exact int64) {
		t.Helper()
		if got < exact || float64(got-exact) > float64(exact)/subCount+1 {
			t.Errorf("%s = %d, want within bucket error above %d", name, got, exact)
		}
	}
	check("p50", s.P50, 500*1000)
	check("p90", s.P90, 900*1000)
	check("p99", s.P99, 990*1000)
	check("p999", s.P999, 999*1000)
	if s.Max != 1000*1000 {
		t.Errorf("max = %d, want exact 1000000", s.Max)
	}
	if want := int64(500500) * 1000 / 1000; s.Mean != want {
		t.Errorf("mean = %d, want %d", s.Mean, want)
	}
}

// TestHistQuantileClamp: with one sample, every quantile is the exact
// max, never the (pessimistic) bucket upper bound.
func TestHistQuantileClamp(t *testing.T) {
	var h Histogram
	h.RecordValue(12345)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		if got := h.Quantile(q); got != 12345 {
			t.Fatalf("Quantile(%v) = %d, want exact max 12345", q, got)
		}
	}
	s := h.Summary()
	if s.P50 != s.Max || s.P999 != s.Max {
		t.Fatalf("summary quantiles not clamped to max: %+v", s)
	}
}

// TestHistNegativeClamp: negative samples clamp to zero rather than
// indexing out of range.
func TestHistNegativeClamp(t *testing.T) {
	var h Histogram
	h.RecordValue(-5)
	if h.Count() != 1 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("count=%d sum=%d max=%d after negative record", h.Count(), h.Sum(), h.Max())
	}
}
