package obs

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterSharding: concurrent per-shard writers lose no
// increments and Value sums all shards.
func TestCounterSharding(t *testing.T) {
	c := NewCounter()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddShard(w, 1)
			}
		}(w)
	}
	wg.Wait()
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != workers*per+3 {
		t.Fatalf("Value() = %d, want %d", got, workers*per+3)
	}
	// Shard indices beyond the shard count wrap instead of panicking.
	c.AddShard(counterShards+5, 1)
	if got := c.Value(); got != workers*per+4 {
		t.Fatalf("Value() after wrapped shard = %d", got)
	}
}

// TestPrometheusRendering registers one of each metric kind and
// checks the exposition output: HELP/TYPE comments, sorted families,
// label escaping, histogram bucket/sum/count rows with monotone
// cumulative counts.
func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bots_test_events_total", "Test events.", Label{"kind", `qu"ote`})
	c.Add(7)
	r.GaugeFunc("bots_test_depth", "Test gauge.", func() float64 { return 3.5 })
	r.CounterFunc("bots_test_sampled_total", "Sampled counter.", func() float64 { return 11 })
	h := r.Histogram("bots_test_latency_seconds", "Test latency.")
	h.Record(1 * time.Millisecond)
	h.Record(2 * time.Millisecond)
	h.Record(1 * time.Second)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP bots_test_events_total Test events.\n",
		"# TYPE bots_test_events_total counter\n",
		"bots_test_events_total{kind=\"qu\\\"ote\"} 7\n",
		"# TYPE bots_test_depth gauge\n",
		"bots_test_depth 3.5\n",
		"bots_test_sampled_total 11\n",
		"# TYPE bots_test_latency_seconds histogram\n",
		`bots_test_latency_seconds_bucket{le="+Inf"} 3`,
		"bots_test_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Families render sorted by name.
	iDepth := strings.Index(out, "# HELP bots_test_depth")
	iEvents := strings.Index(out, "# HELP bots_test_events_total")
	iLatency := strings.Index(out, "# HELP bots_test_latency_seconds")
	if !(iDepth < iEvents && iEvents < iLatency) {
		t.Errorf("families not sorted: depth@%d events@%d latency@%d", iDepth, iEvents, iLatency)
	}

	// Histogram bucket counts are cumulative and monotone, and the
	// +Inf bucket equals _count.
	var prev int64 = -1
	var buckets int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "bots_test_latency_seconds_bucket") {
			continue
		}
		buckets++
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad bucket line %q", line)
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket count in %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not monotone at %q", line)
		}
		prev = n
	}
	if buckets != 4 { // three distinct sample buckets + +Inf
		t.Errorf("bucket rows = %d, want 4 (zero buckets elided)", buckets)
	}
	if prev != 3 {
		t.Errorf("final (+Inf) bucket = %d, want 3", prev)
	}
}

// TestRegistryPanics: the registration vocabulary is validated.
func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("bots_ok_total", "ok")
	mustPanic("bad name", func() { r.Counter("9bad", "x") })
	mustPanic("kind collision", func() { r.GaugeFunc("bots_ok_total", "x", func() float64 { return 0 }) })
	mustPanic("duplicate series", func() { r.Counter("bots_ok_total", "ok") })
	mustPanic("bad label name", func() { r.Counter("bots_lbl_total", "x", Label{"bad-name", "v"}) })
}

// TestHandlerContentType: the /metrics handler declares the 0.0.4
// text exposition content type.
func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("bots_x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "bots_x_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}
