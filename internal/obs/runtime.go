package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Go-runtime health metrics, pulled from runtime/metrics at scrape
// time. The runtime's own counters answer the questions the task
// counters cannot: is the collector stealing worker time (GC pause
// tail), are worker goroutines waiting for a P (scheduling-latency
// tail — the observable GOMAXPROCS oversubscription degrades), and
// how much of the heap is actually live (allocation-regression
// watchdog alongside the perf suite's allocs/task gates).

// runtimeSamples are the series RegisterRuntimeMetrics publishes.
var runtimeSamples = []struct {
	metric string // runtime/metrics key
	name   string // exposition name
	help   string
	p99    bool // histogram → report its 99th percentile
}{
	{"/gc/pauses:seconds", "bots_go_gc_pause_p99_seconds",
		"99th percentile of recent stop-the-world GC pauses.", true},
	{"/sched/latencies:seconds", "bots_go_sched_latency_p99_seconds",
		"99th percentile of time goroutines spent runnable before running.", true},
	{"/gc/heap/live:bytes", "bots_go_heap_live_bytes",
		"Heap memory occupied by live objects after the last GC.", false},
}

// runtimeSampler batches the runtime/metrics read and caches it
// briefly, so one scrape evaluating several GaugeFuncs performs one
// metrics.Read instead of one per series.
type runtimeSampler struct {
	mu      sync.Mutex
	fetched time.Time
	samples []metrics.Sample
}

const runtimeSampleTTL = 500 * time.Millisecond

func newRuntimeSampler() *runtimeSampler {
	s := &runtimeSampler{samples: make([]metrics.Sample, len(runtimeSamples))}
	for i := range runtimeSamples {
		s.samples[i].Name = runtimeSamples[i].metric
	}
	return s
}

// value returns the current value of series i, refreshing the batch
// read if the cache expired.
func (s *runtimeSampler) value(i int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.fetched) > runtimeSampleTTL {
		metrics.Read(s.samples)
		s.fetched = time.Now()
	}
	sm := s.samples[i]
	switch sm.Value.Kind() {
	case metrics.KindUint64:
		return float64(sm.Value.Uint64())
	case metrics.KindFloat64:
		return sm.Value.Float64()
	case metrics.KindFloat64Histogram:
		if runtimeSamples[i].p99 {
			return histQuantile(sm.Value.Float64Histogram(), 0.99)
		}
	}
	return 0
}

// histQuantile computes a quantile from a runtime/metrics histogram:
// the smallest bucket upper bound at which the cumulative count
// reaches q of the total. Infinite bounds fall back to the nearest
// finite neighbour so a tail in the overflow bucket still yields a
// usable number.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	thresh := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= thresh {
			// Bucket i spans (Buckets[i], Buckets[i+1]].
			ub := h.Buckets[i+1]
			if math.IsInf(ub, +1) {
				return h.Buckets[i] // overflow bucket: report its finite floor
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// RegisterRuntimeMetrics publishes the Go runtime's health series
// (GC pause p99, goroutine scheduling-latency p99, live heap bytes)
// as pull-based gauges: nothing is sampled until the registry is
// scraped, and one scrape costs one runtime/metrics batch read.
func RegisterRuntimeMetrics(r *Registry, labels ...Label) {
	s := newRuntimeSampler()
	for i := range runtimeSamples {
		i := i
		r.GaugeFunc(runtimeSamples[i].name, runtimeSamples[i].help,
			func() float64 { return s.value(i) }, labels...)
	}
}
