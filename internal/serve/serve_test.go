package serve

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"bots/internal/core"
	"bots/internal/omp"
)

// TestHistBuckets checks the slot mapping: every value lands in a
// bucket whose upper bound is ≥ the value and within the promised
// relative error, and slots tile the range without gaps.
func TestHistBuckets(t *testing.T) {
	prevUpper := int64(-1)
	for idx := 0; idx < histSlots; idx++ {
		up := bucketUpper(idx)
		if up <= prevUpper {
			t.Fatalf("bucketUpper(%d) = %d, not above previous %d", idx, up, prevUpper)
		}
		if got := bucketOf(up); got != idx {
			t.Fatalf("bucketOf(bucketUpper(%d)=%d) = %d", idx, up, got)
		}
		// The first value of this bucket is one past the previous
		// bucket's upper bound — no gaps.
		if got := bucketOf(prevUpper + 1); got != idx {
			t.Fatalf("bucketOf(%d) = %d, want %d", prevUpper+1, got, idx)
		}
		prevUpper = up
		if up > int64(1)<<62 {
			break
		}
	}
	for _, v := range []int64{0, 1, 7, 8, 9, 100, 12345, 1e9, 1e15} {
		idx := bucketOf(v)
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("value %d mapped to bucket %d with upper %d < value", v, idx, up)
		}
		if v >= subCount && float64(up-v) > float64(v)/subCount {
			t.Fatalf("value %d bucket upper %d exceeds relative error bound", v, up)
		}
	}
}

// TestHistQuantiles feeds a known distribution and checks the
// quantiles against exact order statistics (within bucket error).
func TestHistQuantiles(t *testing.T) {
	var h hist
	// 1000 samples: i microseconds for i in [1,1000].
	for i := 1; i <= 1000; i++ {
		h.record(time.Duration(i) * time.Microsecond)
	}
	s := h.summary()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	check := func(name string, got, exact int64) {
		t.Helper()
		if got < exact || float64(got-exact) > float64(exact)/subCount+1 {
			t.Errorf("%s = %d, want within bucket error above %d", name, got, exact)
		}
	}
	check("p50", s.P50, 500*1000)
	check("p90", s.P90, 900*1000)
	check("p99", s.P99, 990*1000)
	check("p999", s.P999, 999*1000)
	if s.Max != 1000*1000 {
		t.Errorf("max = %d, want exact 1000000", s.Max)
	}
	if want := int64(500500) * 1000 / 1000; s.Mean != want {
		t.Errorf("mean = %d, want %d", s.Mean, want)
	}
}

// TestArrivalProcesses draws many gaps from each process and checks
// the realized mean rate against the target.
func TestArrivalProcesses(t *testing.T) {
	const rate = 1000.0
	for _, proc := range []string{ArrivalPoisson, ArrivalFixed, ArrivalBursty} {
		gen := newArrivals(Config{Rate: rate, Arrivals: proc, Seed: 7,
			BurstFactor: 4, BurstDwell: 50 * time.Millisecond})
		const n = 20000
		var total time.Duration
		for i := 0; i < n; i++ {
			g := gen.next()
			if g < 0 {
				t.Fatalf("%s: negative gap %v", proc, g)
			}
			total += g
		}
		realized := n / total.Seconds()
		// Poisson/fixed should sit on the target; the bursty envelope
		// oscillates around it (mean ≈ rate×(f+1/f)/2 per dwell mix),
		// so only bound it loosely.
		lo, hi := 0.9*rate, 1.1*rate
		if proc == ArrivalBursty {
			lo, hi = 0.3*rate, 4*rate
		}
		if realized < lo || realized > hi {
			t.Errorf("%s: realized rate %.1f/s outside [%.0f, %.0f]", proc, realized, lo, hi)
		}
	}
}

// TestOpenLoopProperty is the defining test of the generator: with a
// server that completes nothing (bodies block until released), an
// open-loop generator must keep admitting on schedule until the
// in-flight cap, then shed — it must never slow down to the server's
// pace. A closed-loop generator would stall at the first request.
func TestOpenLoopProperty(t *testing.T) {
	const (
		workers = 2
		cap     = 8
		rate    = 2000.0
	)
	release := make(chan struct{})
	var started atomic.Int64
	pt := omp.NewPersistentTeam(workers, omp.WithScheduler(omp.DefaultScheduler))

	var inflight atomic.Int64
	var submitted, shed int64
	gen := newArrivals(Config{Rate: rate, Arrivals: ArrivalPoisson, Seed: 3})
	begin := time.Now()
	deadline := begin.Add(300 * time.Millisecond)
	next := begin.Add(gen.next())
	for next.Before(deadline) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if inflight.Load() >= cap {
			shed++
		} else {
			inflight.Add(1)
			submitted++
			pt.SubmitDetached(func(c *omp.Context) {
				started.Add(1)
				<-release
			}, func() { inflight.Add(-1) })
		}
		next = next.Add(gen.next())
	}
	if submitted != cap {
		t.Errorf("submitted = %d, want exactly the in-flight cap %d", submitted, cap)
	}
	// ~600 arrivals were scheduled; all but the cap must be shed, not
	// deferred: the generator never blocked on the stuck server.
	if shed < 300 {
		t.Errorf("shed = %d, want hundreds (generator must not slow to server pace)", shed)
	}
	close(release)
	pt.Drain()
	pt.Close()
	if got := started.Load(); got != int64(submitted) {
		t.Errorf("started %d of %d admitted requests", got, submitted)
	}
}

// TestRunHealth runs the acceptance-shaped configuration (health,
// workfirst) in fixed-request mode and validates the report.
func TestRunHealth(t *testing.T) {
	rep, err := Run(Config{
		Bench:     "health",
		Class:     core.Test,
		Scheduler: "workfirst",
		Cutoff:    -1,
		Workers:   2,
		Rate:      2000,
		Requests:  60,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Submitted+rep.Shed != 60 {
		t.Errorf("arrivals = %d + %d shed, want 60 total", rep.Submitted, rep.Shed)
	}
	if rep.VerifyFailures != 0 {
		t.Errorf("verify failures = %d", rep.VerifyFailures)
	}
	if rep.Runtime.TasksCreated == 0 {
		t.Errorf("runtime stats empty: %+v", rep.Runtime)
	}
	if rep.ThroughputHz <= 0 || rep.OfferedHz <= 0 {
		t.Errorf("rates not positive: offered %.1f throughput %.1f", rep.OfferedHz, rep.ThroughputHz)
	}
}

// TestRunAllWorkloads runs every registered workload briefly on every
// registered scheduler, checking verification end to end.
func TestRunAllWorkloads(t *testing.T) {
	for _, bench := range WorkloadNames() {
		for _, sched := range omp.Schedulers() {
			rep, err := Run(Config{
				Bench:     bench,
				Class:     core.Test,
				Scheduler: sched,
				Cutoff:    -1,
				Workers:   2,
				Rate:      500,
				Requests:  8,
				Seed:      5,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, sched, err)
			}
			if err := rep.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", bench, sched, err)
			}
			if rep.VerifyFailures != 0 {
				t.Errorf("%s/%s: %d verification failures", bench, sched, rep.VerifyFailures)
			}
			if rep.Completed == 0 {
				t.Errorf("%s/%s: no requests completed", bench, sched)
			}
		}
	}
}

// TestRunBursty exercises the MMPP arrival path end to end.
func TestRunBursty(t *testing.T) {
	rep, err := Run(Config{
		Bench:      "health",
		Class:      core.Test,
		Arrivals:   ArrivalBursty,
		Workers:    2,
		Rate:       1000,
		Requests:   40,
		Seed:       9,
		BurstDwell: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsBadConfig covers the validation paths.
func TestRunRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{Bench: "nope", Rate: 1, Requests: 1},
		{Bench: "health", Rate: 0, Requests: 1},
		{Bench: "health", Rate: 1},
		{Bench: "health", Rate: 1, Requests: 1, Scheduler: "nope"},
		{Bench: "health", Rate: 1, Requests: 1, Arrivals: "nope"},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

// TestQueueingFromScheduledTime checks the coordinated-omission
// convention: with a fixed schedule and a deliberately stalled first
// request, later requests' queueing delay is charged from their
// scheduled arrival even though they were admitted late.
func TestQueueingFromScheduledTime(t *testing.T) {
	var h hist
	sched := time.Now()
	// Simulate: request scheduled at t0, but only started 10ms later.
	start := sched.Add(10 * time.Millisecond)
	h.record(start.Sub(sched))
	s := h.summary()
	if s.Max < int64(9*time.Millisecond) {
		t.Fatalf("queueing max %v does not reflect the stall", time.Duration(s.Max))
	}
	if math.IsNaN(float64(s.Mean)) || s.Mean <= 0 {
		t.Fatalf("mean = %d", s.Mean)
	}
}
