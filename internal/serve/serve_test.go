package serve

import (
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bots/internal/core"
	"bots/internal/obs"
	"bots/internal/omp"
)

// The histogram bucket/quantile tests moved with the histogram to
// internal/obs (TestHistBuckets, TestHistQuantiles); this package
// keeps only the serve-specific uses of it.

// TestArrivalProcesses draws many gaps from each process and checks
// the realized mean rate against the target.
func TestArrivalProcesses(t *testing.T) {
	const rate = 1000.0
	for _, proc := range []string{ArrivalPoisson, ArrivalFixed, ArrivalBursty} {
		gen := newArrivals(Config{Rate: rate, Arrivals: proc, Seed: 7,
			BurstFactor: 4, BurstDwell: 50 * time.Millisecond})
		const n = 20000
		var total time.Duration
		for i := 0; i < n; i++ {
			g := gen.next()
			if g < 0 {
				t.Fatalf("%s: negative gap %v", proc, g)
			}
			total += g
		}
		realized := n / total.Seconds()
		// Poisson/fixed should sit on the target; the bursty envelope
		// oscillates around it (mean ≈ rate×(f+1/f)/2 per dwell mix),
		// so only bound it loosely.
		lo, hi := 0.9*rate, 1.1*rate
		if proc == ArrivalBursty {
			lo, hi = 0.3*rate, 4*rate
		}
		if realized < lo || realized > hi {
			t.Errorf("%s: realized rate %.1f/s outside [%.0f, %.0f]", proc, realized, lo, hi)
		}
	}
}

// TestOpenLoopProperty is the defining test of the generator: with a
// server that completes nothing (bodies block until released), an
// open-loop generator must keep admitting on schedule until the
// in-flight cap, then shed — it must never slow down to the server's
// pace. A closed-loop generator would stall at the first request.
func TestOpenLoopProperty(t *testing.T) {
	const (
		workers = 2
		cap     = 8
		rate    = 2000.0
	)
	release := make(chan struct{})
	var started atomic.Int64
	pt := omp.NewPersistentTeam(workers, omp.WithScheduler(omp.DefaultScheduler))

	var inflight atomic.Int64
	var submitted, shed int64
	gen := newArrivals(Config{Rate: rate, Arrivals: ArrivalPoisson, Seed: 3})
	begin := time.Now()
	deadline := begin.Add(300 * time.Millisecond)
	next := begin.Add(gen.next())
	for next.Before(deadline) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if inflight.Load() >= cap {
			shed++
		} else {
			inflight.Add(1)
			submitted++
			pt.SubmitDetached(func(c *omp.Context) {
				started.Add(1)
				<-release
			}, func() { inflight.Add(-1) })
		}
		next = next.Add(gen.next())
	}
	if submitted != cap {
		t.Errorf("submitted = %d, want exactly the in-flight cap %d", submitted, cap)
	}
	// ~600 arrivals were scheduled; all but the cap must be shed, not
	// deferred: the generator never blocked on the stuck server.
	if shed < 300 {
		t.Errorf("shed = %d, want hundreds (generator must not slow to server pace)", shed)
	}
	close(release)
	pt.Drain()
	pt.Close()
	if got := started.Load(); got != int64(submitted) {
		t.Errorf("started %d of %d admitted requests", got, submitted)
	}
}

// TestRunHealth runs the acceptance-shaped configuration (health,
// workfirst) in fixed-request mode and validates the report.
func TestRunHealth(t *testing.T) {
	rep, err := Run(Config{
		Bench:     "health",
		Class:     core.Test,
		Scheduler: "workfirst",
		Cutoff:    -1,
		Workers:   2,
		Rate:      2000,
		Requests:  60,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Submitted+rep.Shed != 60 {
		t.Errorf("arrivals = %d + %d shed, want 60 total", rep.Submitted, rep.Shed)
	}
	if rep.VerifyFailures != 0 {
		t.Errorf("verify failures = %d", rep.VerifyFailures)
	}
	if rep.Runtime.TasksCreated == 0 {
		t.Errorf("runtime stats empty: %+v", rep.Runtime)
	}
	if rep.ThroughputHz <= 0 || rep.OfferedHz <= 0 {
		t.Errorf("rates not positive: offered %.1f throughput %.1f", rep.OfferedHz, rep.ThroughputHz)
	}
}

// TestRunAllWorkloads runs every registered workload briefly on every
// registered scheduler, checking verification end to end.
func TestRunAllWorkloads(t *testing.T) {
	for _, bench := range WorkloadNames() {
		for _, sched := range omp.Schedulers() {
			rep, err := Run(Config{
				Bench:     bench,
				Class:     core.Test,
				Scheduler: sched,
				Cutoff:    -1,
				Workers:   2,
				Rate:      500,
				Requests:  8,
				Seed:      5,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, sched, err)
			}
			if err := rep.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", bench, sched, err)
			}
			if rep.VerifyFailures != 0 {
				t.Errorf("%s/%s: %d verification failures", bench, sched, rep.VerifyFailures)
			}
			if rep.Completed == 0 {
				t.Errorf("%s/%s: no requests completed", bench, sched)
			}
		}
	}
}

// TestRunBursty exercises the MMPP arrival path end to end.
func TestRunBursty(t *testing.T) {
	rep, err := Run(Config{
		Bench:      "health",
		Class:      core.Test,
		Arrivals:   ArrivalBursty,
		Workers:    2,
		Rate:       1000,
		Requests:   40,
		Seed:       9,
		BurstDwell: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsBadConfig covers the validation paths.
func TestRunRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{Bench: "nope", Rate: 1, Requests: 1},
		{Bench: "health", Rate: 0, Requests: 1},
		{Bench: "health", Rate: 1},
		{Bench: "health", Rate: 1, Requests: 1, Scheduler: "nope"},
		{Bench: "health", Rate: 1, Requests: 1, Arrivals: "nope"},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

// TestQueueingFromScheduledTime checks the coordinated-omission
// convention: with a fixed schedule and a deliberately stalled first
// request, later requests' queueing delay is charged from their
// scheduled arrival even though they were admitted late.
func TestQueueingFromScheduledTime(t *testing.T) {
	var h obs.Histogram
	sched := time.Now()
	// Simulate: request scheduled at t0, but only started 10ms later.
	start := sched.Add(10 * time.Millisecond)
	h.Record(start.Sub(sched))
	s := h.Summary()
	if s.Max < int64(9*time.Millisecond) {
		t.Fatalf("queueing max %v does not reflect the stall", time.Duration(s.Max))
	}
	if math.IsNaN(float64(s.Mean)) || s.Mean <= 0 {
		t.Fatalf("mean = %d", s.Mean)
	}
}

// TestRunWithObs runs with a registry (and flight recorder) attached
// and checks the post-run scrape agrees with the report: request
// counters match, histograms carry the completions, quantile gauges
// render, and the team series are present.
func TestRunWithObs(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := Run(Config{
		Bench:             "health",
		Class:             core.Test,
		Workers:           2,
		Rate:              2000,
		Requests:          40,
		Seed:              21,
		Obs:               reg,
		FlightRecorderCap: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"bots_serve_requests_total " + itoa(rep.Submitted),
		"bots_serve_shed_total " + itoa(rep.Shed),
		"bots_serve_completed_total " + itoa(rep.Completed),
		"bots_serve_total_seconds_count " + itoa(rep.Completed),
		`bots_serve_total_latency_seconds{quantile="0.5"}`,
		`bots_serve_total_latency_seconds{quantile="0.999"}`,
		"bots_team_workers 2",
		"# TYPE bots_serve_queueing_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func itoa(n int64) string { return strconv.FormatInt(n, 10) }
