package serve

import (
	"fmt"
	"sort"

	"bots/internal/apps/alignment"
	"bots/internal/apps/health"
	"bots/internal/apps/sparselu"
	"bots/internal/core"
	"bots/internal/omp"
)

// A Workload adapts one BOTS kernel to service mode: each request is
// an independent task DAG submitted to a persistent team, verified
// against the kernel's deterministic sequential reference.
type Workload struct {
	Name string
	// Prepare builds the shared read-only state (inputs, reference
	// digests) once per run. cutoff < 0 selects the workload default.
	Prepare func(class core.Class, cutoff int) (*Prepared, error)
}

// Prepared is the per-run request factory for one workload.
type Prepared struct {
	// NewRequest materializes one request's private state. It is
	// called on the generator goroutine at arrival time, so it should
	// be cheap relative to the request's service time. body runs as
	// the root task of a persistent-team submission and must have
	// fully joined its DAG when it returns (the adapters end with the
	// kernel's own taskwaits); verify then checks the result against
	// the sequential reference.
	NewRequest func() (body func(*omp.Context), verify func() bool)
}

var workloads = map[string]*Workload{}

func registerWorkload(w *Workload) { workloads[w.Name] = w }

// LookupWorkload returns the named service workload, or an error
// naming the registered set.
func LookupWorkload(name string) (*Workload, error) {
	if w, ok := workloads[name]; ok {
		return w, nil
	}
	return nil, fmt.Errorf("serve: unknown workload %q (have %v)", name, WorkloadNames())
}

// WorkloadNames returns the registered workload names, sorted.
func WorkloadNames() []string {
	names := make([]string, 0, len(workloads))
	for name := range workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	registerWorkload(&Workload{
		Name: "health",
		Prepare: func(class core.Class, cutoff int) (*Prepared, error) {
			if cutoff < 0 {
				cutoff = health.DefaultCutoffLevel
			}
			steps := health.Steps(class)
			ref := health.BuildClass(class)
			health.SeqSimulate(ref, steps)
			refDigest := health.Digest(ref)
			return &Prepared{
				NewRequest: func() (func(*omp.Context), func() bool) {
					v := health.BuildClass(class)
					body := func(c *omp.Context) { health.Simulate(c, v, steps, cutoff) }
					verify := func() bool { return health.Digest(v) == refDigest }
					return body, verify
				},
			}, nil
		},
	})

	registerWorkload(&Workload{
		Name: "alignment",
		Prepare: func(class core.Class, cutoff int) (*Prepared, error) {
			seqs := alignment.Sequences(class)
			refScores, _ := alignment.SeqAlign(seqs)
			refDigest := alignment.Digest(refScores)
			n := len(seqs)
			return &Prepared{
				NewRequest: func() (func(*omp.Context), func() bool) {
					scores := make([]int32, n*(n-1)/2)
					body := func(c *omp.Context) {
						for i := 0; i < n; i++ {
							for j := i + 1; j < n; j++ {
								i, j := i, j
								c.Task(func(c *omp.Context) {
									s, w := alignment.Score(seqs[i], seqs[j])
									scores[alignment.PairIndex(n, i, j)] = s
									c.AddWork(w)
								})
							}
						}
						c.Taskwait()
					}
					verify := func() bool { return alignment.Digest(scores) == refDigest }
					return body, verify
				},
			}, nil
		},
	})

	registerWorkload(&Workload{
		Name: "sparselu-dep",
		Prepare: func(class core.Class, cutoff int) (*Prepared, error) {
			nb, bs := sparselu.DimsFor(class)
			base := sparselu.NewMatrix(nb, bs)
			ref := base.Clone()
			sparselu.Seq(ref)
			refDigest := sparselu.Digest(ref)
			return &Prepared{
				NewRequest: func() (func(*omp.Context), func() bool) {
					m := base.Clone()
					body := func(c *omp.Context) {
						sparselu.ParDep(c, m, false)
						c.Taskwait()
					}
					verify := func() bool { return sparselu.Digest(m) == refDigest }
					return body, verify
				},
			}, nil
		},
	})
}
