// Package serve is the service-mode subsystem: it drives BOTS task
// DAGs as requests against a persistent omp team under an open-loop
// load generator and measures tail latency.
//
// Open-loop means arrivals follow an absolute schedule fixed by the
// arrival process alone — a slow server does not slow the generator
// down, it just grows the backlog. Queueing delay is therefore
// measured from the *scheduled* arrival time, which is exactly the
// coordinated-omission-free convention: a stall inflates the recorded
// latency of every request scheduled during it. When the in-flight
// cap is reached, arrivals are shed (counted, never blocked) so the
// generator keeps its schedule even under overload.
package serve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bots/internal/core"
	"bots/internal/inputs"
	"bots/internal/obs"
	"bots/internal/omp"
)

// LatencyStats is the serialized latency summary; it is the shared
// obs.LatencyStats (the histogram itself moved to internal/obs in the
// observability PR), aliased so the report schema and its consumers
// are unchanged.
type LatencyStats = obs.LatencyStats

// Schema identifies the serve-report JSON layout.
const Schema = "bots-serve/v1"

// Arrival processes for the open-loop generator.
const (
	ArrivalPoisson = "poisson" // exponential inter-arrivals at Rate
	ArrivalFixed   = "fixed"   // deterministic 1/Rate spacing
	ArrivalBursty  = "bursty"  // 2-state MMPP: Rate×f / Rate÷f phases
)

// Config parameterizes one service run.
type Config struct {
	Bench     string        // workload name (see WorkloadNames)
	Class     core.Class    // input class for the workload
	Scheduler string        // omp scheduler name ("" = default)
	Cutoff    int           // workload cutoff knob (<0 = default)
	Workers   int           // team size (<=0 = GOMAXPROCS)
	Rate      float64       // target mean arrival rate, requests/s
	Arrivals  string        // arrival process ("" = poisson)
	Duration  time.Duration // generation window (fixed-duration mode)
	Requests  int           // fixed-request mode when > 0 (overrides Duration)
	// MaxInflight caps concurrently admitted requests; arrivals beyond
	// the cap are shed. <=0 selects 64×workers.
	MaxInflight int
	Seed        uint64  // RNG seed for arrival draws (0 = 1)
	BurstFactor float64 // bursty: rate multiplier/divisor (<=1 = 4)
	// BurstDwell is the mean dwell time per MMPP state (0 = 100ms).
	BurstDwell time.Duration

	// Obs, when non-nil, receives the run's live metrics: request
	// counters and latency histograms under bots_serve_*, plus the
	// team's bots_team_* gauges/counters (see DESIGN.md §11). The
	// registered closures read state owned by this run, so use a fresh
	// registry per run (a reused one panics on duplicate series).
	Obs *obs.Registry
	// FlightRecorderCap, when > 0, attaches a flight recorder keeping
	// that many events per worker.
	FlightRecorderCap int
	// OnRecorder, when non-nil, is called once at run start with the
	// attached flight recorder (only when FlightRecorderCap > 0), so a
	// driver can expose on-demand dumps while the run is live.
	OnRecorder func(*obs.FlightRecorder)
	// StallThreshold, when > 0 (and a flight recorder is attached),
	// arms the stall detector: OnStall fires with the recorder when
	// live tasks sit unclaimed with every worker parked beyond the
	// threshold.
	StallThreshold time.Duration
	OnStall        func(*obs.FlightRecorder)
}

// Report is the serialized outcome of one service run.
type Report struct {
	Schema    string    `json:"schema"`
	CreatedAt time.Time `json:"created_at"`

	Bench     string  `json:"bench"`
	Class     string  `json:"class"`
	Scheduler string  `json:"scheduler"`
	Arrivals  string  `json:"arrivals"`
	Workers   int     `json:"workers"`
	Cutoff    int     `json:"cutoff"`
	RateHz    float64 `json:"rate_hz"`

	ElapsedNS int64 `json:"elapsed_ns"` // generation window start → full drain

	Submitted      int64 `json:"submitted"`
	Completed      int64 `json:"completed"`
	Shed           int64 `json:"shed"`
	VerifyFailures int64 `json:"verify_failures"`

	// OfferedHz is the realized arrival rate (admitted + shed over the
	// generation window); ThroughputHz is completions over the full
	// elapsed time including drain.
	OfferedHz    float64 `json:"offered_hz"`
	ThroughputHz float64 `json:"throughput_hz"`

	Queueing LatencyStats `json:"queueing"` // scheduled arrival → root task start
	Service  LatencyStats `json:"service"`  // root task start → DAG complete
	Total    LatencyStats `json:"total"`    // scheduled arrival → DAG complete

	Runtime omp.Stats `json:"runtime"` // team counters over the whole run
}

// Validate checks structural sanity of a report: accounting balances
// and monotone latency quantiles. CI's service-smoke job asserts the
// same properties from the JSON side.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("serve: schema %q, want %q", r.Schema, Schema)
	}
	if r.Completed != r.Submitted {
		return fmt.Errorf("serve: completed %d != submitted %d", r.Completed, r.Submitted)
	}
	for _, ls := range []struct {
		name string
		s    LatencyStats
	}{{"queueing", r.Queueing}, {"service", r.Service}, {"total", r.Total}} {
		s := ls.s
		if s.Count != r.Completed {
			return fmt.Errorf("serve: %s histogram count %d != completed %d", ls.name, s.Count, r.Completed)
		}
		if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
			return fmt.Errorf("serve: %s quantiles not monotone: p50=%d p90=%d p99=%d p999=%d max=%d",
				ls.name, s.P50, s.P90, s.P99, s.P999, s.Max)
		}
	}
	return nil
}

// request is the pooled per-request timing record.
type request struct {
	enq   time.Time // scheduled arrival (not admission) time
	start time.Time // root task began executing
}

var requestPool = sync.Pool{New: func() any { return new(request) }}

// Run executes one service run and returns its report.
func Run(cfg Config) (*Report, error) {
	w, err := LookupWorkload(cfg.Bench)
	if err != nil {
		return nil, err
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = omp.DefaultScheduler
	}
	if _, err := omp.NewScheduler(cfg.Scheduler); err != nil {
		return nil, err
	}
	if cfg.Rate <= 0 {
		return nil, errors.New("serve: Rate must be positive")
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		return nil, errors.New("serve: need Requests > 0 or Duration > 0")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64 * cfg.Workers
	}
	if cfg.Arrivals == "" {
		cfg.Arrivals = ArrivalPoisson
	}
	switch cfg.Arrivals {
	case ArrivalPoisson, ArrivalFixed, ArrivalBursty:
	default:
		return nil, fmt.Errorf("serve: unknown arrival process %q", cfg.Arrivals)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.BurstFactor <= 1 {
		cfg.BurstFactor = 4
	}
	if cfg.BurstDwell <= 0 {
		cfg.BurstDwell = 100 * time.Millisecond
	}

	prep, err := w.Prepare(cfg.Class, cfg.Cutoff)
	if err != nil {
		return nil, err
	}

	opts := []omp.TeamOpt{omp.WithScheduler(cfg.Scheduler)}
	var fr *obs.FlightRecorder
	if cfg.FlightRecorderCap > 0 {
		fr = obs.NewFlightRecorder(cfg.Workers, cfg.FlightRecorderCap)
		opts = append(opts, omp.WithFlightRecorder(fr))
		if cfg.OnRecorder != nil {
			cfg.OnRecorder(fr)
		}
	}
	pt := omp.NewPersistentTeam(cfg.Workers, opts...)
	startStats := pt.Stats()

	var (
		qHist, sHist, tHist obs.Histogram
		inflight            atomic.Int64
		completed           atomic.Int64
		verifyFails         atomic.Int64
		submitted, shed     atomic.Int64
	)
	if reg := cfg.Obs; reg != nil {
		registerServeObs(reg, pt, &qHist, &sHist, &tHist,
			&submitted, &shed, &completed, &verifyFails, &inflight)
	}
	if fr != nil && cfg.StallThreshold > 0 && cfg.OnStall != nil {
		onStall, rec := cfg.OnStall, fr
		stop := pt.StartStallMonitor(cfg.StallThreshold, 0, func() { onStall(rec) })
		defer stop()
	}

	gen := newArrivals(cfg)
	begin := time.Now()
	deadline := begin.Add(cfg.Duration)
	next := begin.Add(gen.next()) // first arrival one gap in

	for {
		if cfg.Requests > 0 {
			if submitted.Load()+shed.Load() >= int64(cfg.Requests) {
				break
			}
		} else if !next.Before(deadline) {
			break
		}
		// Open loop: wait for the absolute scheduled instant, never
		// for the server. Late wakeups are not re-spaced — the backlog
		// of due arrivals fires immediately, preserving the schedule.
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if inflight.Load() >= int64(cfg.MaxInflight) {
			shed.Add(1)
		} else {
			inflight.Add(1)
			submitted.Add(1)
			r := requestPool.Get().(*request)
			r.enq = next
			body, verify := prep.NewRequest()
			pt.SubmitDetached(func(c *omp.Context) {
				r.start = time.Now()
				body(c)
				// The adapters join their DAG before returning, so the
				// result is stable here; verification is charged to
				// service time like any other per-request work.
				if !verify() {
					verifyFails.Add(1)
				}
			}, func() {
				end := time.Now()
				qHist.Record(r.start.Sub(r.enq))
				sHist.Record(end.Sub(r.start))
				tHist.Record(end.Sub(r.enq))
				requestPool.Put(r)
				completed.Add(1)
				inflight.Add(-1)
			})
		}
		next = next.Add(gen.next())
	}
	genElapsed := time.Since(begin)

	pt.Drain()
	endStats := pt.Stats()
	pt.Close()
	elapsed := time.Since(begin)

	rep := &Report{
		Schema:         Schema,
		CreatedAt:      time.Now().UTC(),
		Bench:          cfg.Bench,
		Class:          cfg.Class.String(),
		Scheduler:      cfg.Scheduler,
		Arrivals:       cfg.Arrivals,
		Workers:        cfg.Workers,
		Cutoff:         cfg.Cutoff,
		RateHz:         cfg.Rate,
		ElapsedNS:      int64(elapsed),
		Submitted:      submitted.Load(),
		Shed:           shed.Load(),
		Completed:      completed.Load(),
		VerifyFailures: verifyFails.Load(),
		Queueing:       qHist.Summary(),
		Service:        sHist.Summary(),
		Total:          tHist.Summary(),
		Runtime:        endStats.Sub(startStats),
	}
	if genElapsed > 0 {
		rep.OfferedHz = float64(rep.Submitted+rep.Shed) / genElapsed.Seconds()
	}
	if elapsed > 0 {
		rep.ThroughputHz = float64(rep.Completed) / elapsed.Seconds()
	}
	return rep, nil
}

// registerServeObs publishes one run's request-side metrics: sampled
// counters over the run's atomics, the three latency histograms, and
// scrape-time quantile gauges of the total (scheduled-arrival →
// completion) latency. The quantile gauges inherit the histogram's
// max-clamping, so p50 ≤ p90 ≤ p99 ≤ p999 at every scrape — CI's
// service-smoke job asserts that from the /metrics side.
func registerServeObs(reg *obs.Registry, pt *omp.PersistentTeam,
	qHist, sHist, tHist *obs.Histogram,
	submitted, shed, completed, verifyFails, inflight *atomic.Int64) {
	reg.CounterFunc("bots_serve_requests_total", "Requests admitted to the team.",
		func() float64 { return float64(submitted.Load()) })
	reg.CounterFunc("bots_serve_shed_total", "Arrivals shed at the in-flight cap.",
		func() float64 { return float64(shed.Load()) })
	reg.CounterFunc("bots_serve_completed_total", "Requests whose task DAG completed.",
		func() float64 { return float64(completed.Load()) })
	reg.CounterFunc("bots_serve_verify_failures_total", "Requests whose result failed verification.",
		func() float64 { return float64(verifyFails.Load()) })
	reg.GaugeFunc("bots_serve_inflight", "Requests admitted and not yet completed.",
		func() float64 { return float64(inflight.Load()) })
	reg.RegisterHistogram("bots_serve_queueing_seconds",
		"Scheduled arrival to root-task start (coordinated-omission-free).", qHist)
	reg.RegisterHistogram("bots_serve_service_seconds",
		"Root-task start to DAG completion.", sHist)
	reg.RegisterHistogram("bots_serve_total_seconds",
		"Scheduled arrival to DAG completion.", tHist)
	for _, q := range []struct {
		v float64
		s string
	}{{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}, {0.999, "0.999"}} {
		q := q
		reg.GaugeFunc("bots_serve_total_latency_seconds",
			"Total-latency quantile sampled at scrape time (seconds).",
			func() float64 { return float64(tHist.Quantile(q.v)) / 1e9 },
			obs.Label{Name: "quantile", Value: q.s})
	}
	pt.RegisterObs(reg)
}

// arrivals draws inter-arrival gaps for the configured process.
type arrivals struct {
	cfg Config
	rng *inputs.RNG

	// bursty (2-state MMPP) state: current rate and scheduled-time
	// budget left in the current dwell.
	burstHigh bool
	dwellLeft time.Duration
}

func newArrivals(cfg Config) *arrivals {
	return &arrivals{cfg: cfg, rng: inputs.NewRNG(cfg.Seed)}
}

// exp draws an exponential variate with the given mean rate (per
// second), as a duration.
func (a *arrivals) exp(rate float64) time.Duration {
	u := a.rng.Float64()
	for u == 0 {
		u = a.rng.Float64()
	}
	return time.Duration(-math.Log(u) / rate * float64(time.Second))
}

func (a *arrivals) next() time.Duration {
	switch a.cfg.Arrivals {
	case ArrivalFixed:
		return time.Duration(float64(time.Second) / a.cfg.Rate)
	case ArrivalBursty:
		// Modulate in scheduled time: each state dwells an
		// exponential span of the arrival schedule, alternating
		// Rate×f and Rate÷f. Equal expected dwell in both states
		// means the offered mean sits slightly above Rate — the
		// report's offered_hz records the realized value.
		if a.dwellLeft <= 0 {
			a.burstHigh = !a.burstHigh
			a.dwellLeft = a.exp(1 / a.cfg.BurstDwell.Seconds())
		}
		rate := a.cfg.Rate / a.cfg.BurstFactor
		if a.burstHigh {
			rate = a.cfg.Rate * a.cfg.BurstFactor
		}
		gap := a.exp(rate)
		a.dwellLeft -= gap
		return gap
	default: // ArrivalPoisson
		return a.exp(a.cfg.Rate)
	}
}
