package core

import (
	"fmt"
	"strings"
)

// Variant is a parsed version name. The suite's version naming
// follows the paper's figure labels:
//
//	"tied" / "untied"                      — plain task versions
//	"if-tied" / "if-untied"                — if-clause depth cut-off (paper Fig. 1)
//	"manual-tied" / "manual-untied"        — manual depth cut-off (paper Fig. 2)
//	"none-tied" / "none-untied"            — no application cut-off
//	"single-tied" / "for-untied" / ...     — generator scheme (SparseLU)
type Variant struct {
	// Cutoff is "if", "manual", "none", or "" for benchmarks without
	// an application-level cut-off.
	Cutoff string
	// Generator is "single", "for", or "" for benchmarks without a
	// generator-scheme choice.
	Generator string
	// Untied reports whether tasks carry the untied clause.
	Untied bool
}

// ParseVersion parses a version name into its variant parts.
func ParseVersion(name string) (Variant, error) {
	v := Variant{}
	parts := strings.Split(name, "-")
	tiedness := parts[len(parts)-1]
	switch tiedness {
	case "tied":
	case "untied":
		v.Untied = true
	default:
		return v, fmt.Errorf("core: version %q must end in -tied or -untied (or be \"tied\"/\"untied\")", name)
	}
	if len(parts) == 1 {
		return v, nil
	}
	if len(parts) != 2 {
		return v, fmt.Errorf("core: malformed version name %q", name)
	}
	switch parts[0] {
	case "if", "manual", "none":
		v.Cutoff = parts[0]
	case "single", "for":
		v.Generator = parts[0]
	default:
		return v, fmt.Errorf("core: unknown version qualifier %q in %q", parts[0], name)
	}
	return v, nil
}

// CutoffVersions is the version list for benchmarks with a
// depth-based application cut-off (fib, floorplan, health, nqueens,
// strassen).
func CutoffVersions() []string {
	return []string{"if-tied", "if-untied", "manual-tied", "manual-untied", "none-tied", "none-untied"}
}

// PlainVersions is the version list for benchmarks without an
// application cut-off (alignment, fft, sort).
func PlainVersions() []string {
	return []string{"tied", "untied"}
}

// GeneratorVersions is the version list for benchmarks with a
// single/multiple generator choice (sparselu).
func GeneratorVersions() []string {
	return []string{"single-tied", "single-untied", "for-tied", "for-untied"}
}
