package core

import (
	"fmt"
	"strings"
)

// Variant is a parsed version name. The suite's version naming
// follows the paper's figure labels:
//
//	"tied" / "untied"                      — plain task versions
//	"if-tied" / "if-untied"                — if-clause depth cut-off (paper Fig. 1)
//	"manual-tied" / "manual-untied"        — manual depth cut-off (paper Fig. 2)
//	"none-tied" / "none-untied"            — no application cut-off
//	"single-tied" / "for-untied" / ...     — generator scheme (SparseLU)
//
// Two post-paper qualifiers expose the OpenMP 4.x-style extensions of
// the omp runtime (the future work the paper's §V points toward):
//
//	"dep-tied" / "dep-untied"              — dependence-driven generator
//	                                         (In/Out/InOut clauses, no
//	                                         phase barriers)
//	"future-tied" / "future-untied"        — typed-future versions
//	                                         (omp.Spawn/Wait instead of
//	                                         task+taskwait)
type Variant struct {
	// Cutoff is "if", "manual", "none", or "" for benchmarks without
	// an application-level cut-off.
	Cutoff string
	// Generator is "single", "for", "dep", or "" for benchmarks
	// without a generator-scheme choice.
	Generator string
	// Untied reports whether tasks carry the untied clause.
	Untied bool
	// Futures reports whether the version uses typed futures
	// (omp.Spawn / Future.Wait) instead of fire-and-forget tasks.
	Futures bool
}

// ParseVersion parses a version name into its variant parts.
func ParseVersion(name string) (Variant, error) {
	v := Variant{}
	parts := strings.Split(name, "-")
	tiedness := parts[len(parts)-1]
	switch tiedness {
	case "tied":
	case "untied":
		v.Untied = true
	default:
		return v, fmt.Errorf("core: version %q must end in -tied or -untied (or be \"tied\"/\"untied\")", name)
	}
	if len(parts) == 1 {
		return v, nil
	}
	if len(parts) != 2 {
		return v, fmt.Errorf("core: malformed version name %q", name)
	}
	switch parts[0] {
	case "if", "manual", "none":
		v.Cutoff = parts[0]
	case "single", "for", "dep":
		v.Generator = parts[0]
	case "future":
		v.Futures = true
	default:
		return v, fmt.Errorf("core: unknown version qualifier %q in %q", parts[0], name)
	}
	return v, nil
}

// CutoffVersions is the version list for benchmarks with a
// depth-based application cut-off (fib, floorplan, health, nqueens,
// strassen).
func CutoffVersions() []string {
	return []string{"if-tied", "if-untied", "manual-tied", "manual-untied", "none-tied", "none-untied"}
}

// PlainVersions is the version list for benchmarks without an
// application cut-off (alignment, fft, sort).
func PlainVersions() []string {
	return []string{"tied", "untied"}
}

// GeneratorVersions is the version list for benchmarks with a
// single/multiple generator choice (sparselu), including the
// dependence-driven generator that replaces phase barriers with
// In/Out/InOut task ordering.
func GeneratorVersions() []string {
	return []string{"single-tied", "single-untied", "for-tied", "for-untied", "dep-tied", "dep-untied"}
}

// FutureVersions appends the typed-future versions to a benchmark's
// version list (strassen).
func FutureVersions(base []string) []string {
	return append(append([]string(nil), base...), "future-tied", "future-untied")
}
