// Package core is the BOTS benchmark framework: the registry of
// applications, the version matrix (tied/untied × cut-off variants ×
// generator schemes), the four input classes, the self-verification
// protocol, and the runner glue between applications, the omp
// runtime, the trace recorder and the simulator.
//
// It corresponds to the suite infrastructure described in §III of the
// paper: every benchmark registers its Table I metadata, its input
// classes, a sequential reference implementation and a set of
// parallel versions, and declares one of the three verification modes
// (output validation, validation data in the input, or serial-vs-
// parallel comparison) through the Digest mechanism.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bots/internal/omp"
	"bots/internal/trace"
)

// Class is an input class, as defined in §III-A of the paper. The
// absolute sizes are scaled for a single-node run (see EXPERIMENTS.md)
// but the four-class scheme and inter-class ratios are preserved.
type Class int

const (
	// Test is very small: only to quickly check that benchmarks work.
	Test Class = iota
	// Small targets about a second of serial time.
	Small
	// Medium is the class used in the paper's evaluation (Tables I/II
	// and all figures), scaled here to a few seconds of serial time.
	Medium
	// Large is the stress class.
	Large
)

var classNames = [...]string{"test", "small", "medium", "large"}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// ParseClass converts a class name to a Class.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if n == s {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown input class %q (want test/small/medium/large)", s)
}

// RunConfig configures one parallel execution of a benchmark version.
type RunConfig struct {
	// Class selects the input class.
	Class Class
	// Version selects the benchmark version (one of Benchmark.Versions).
	Version string
	// Threads is the omp team size (>= 1).
	Threads int
	// CutoffDepth overrides the application's depth-based cut-off
	// value for versions that have one; 0 keeps the app default. It
	// is the knob for the paper's §IV-D cut-off-value study.
	CutoffDepth int
	// RuntimeCutoff is the runtime-level cut-off policy (nil means
	// omp.NoCutoff — the paper's "no-cutoff" configuration relies on
	// whatever the runtime does, which by default is nothing).
	RuntimeCutoff omp.CutoffPolicy
	// Scheduler is the task scheduler's registry name (one of
	// omp.Schedulers(); "" selects omp.DefaultScheduler). Callers
	// validate user input through omp.NewScheduler before building a
	// RunConfig — TeamOpts panics on unknown names.
	Scheduler string
	// Recorder, when non-nil, records the task graph for simulation.
	Recorder *trace.Recorder
	// Procs, when positive, is the GOMAXPROCS value the run wants —
	// the oversubscription axis (Threads > Procs oversubscribes;
	// Threads < Procs leaves cores for the rest of the process). It is
	// process-global state, so RunConfig only records the request:
	// the executing layer (cmd flags, lab executor) sets and restores
	// it around the run, serializing runs that need different values.
	Procs int
	// PinWorkers wires each team worker to an OS thread for the run
	// (omp.WithPinning) — the other half of the pinning axis.
	PinWorkers bool
}

// TeamOpts assembles the omp options for this configuration.
func (cfg *RunConfig) TeamOpts() []omp.TeamOpt {
	opts := []omp.TeamOpt{omp.WithScheduler(cfg.Scheduler)}
	if cfg.RuntimeCutoff != nil {
		opts = append(opts, omp.WithCutoff(cfg.RuntimeCutoff))
	}
	if cfg.Recorder != nil {
		opts = append(opts, omp.WithRecorder(cfg.Recorder))
	}
	if cfg.PinWorkers {
		opts = append(opts, omp.WithPinning(true))
	}
	return opts
}

// RunResult is the outcome of one parallel execution.
type RunResult struct {
	// Digest is the verification digest; it must match the
	// sequential run's digest (up to the benchmark's Verify rules).
	Digest string
	// Metric is an optional application-specific throughput metric
	// basis (Floorplan reports nodes visited, per §III-B; others 0).
	Metric float64
	// Stats are the runtime statistics of the region.
	Stats *omp.Stats
	// Elapsed is the wall-clock duration of the parallel region.
	Elapsed time.Duration
}

// SeqResult is the outcome of the sequential reference execution.
type SeqResult struct {
	// Digest is the verification digest.
	Digest string
	// Work is the total work in application work units; it
	// calibrates the simulator (WorkUnitNS = Elapsed/Work).
	Work int64
	// Metric mirrors RunResult.Metric for the serial run.
	Metric float64
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
	// MemBytes estimates the resident size of the main data
	// structures (Table II's memory column).
	MemBytes int64
}

// Profile carries the per-benchmark constants of the simulator's
// bandwidth model, derived from the application's Table II character
// (low arithmetic-per-write ⇒ memory-bound ⇒ early saturation).
type Profile struct {
	// MemFraction is the fraction of work bound by memory bandwidth.
	MemFraction float64
	// BandwidthCap is the number of workers the memory system feeds
	// at full speed.
	BandwidthCap float64
}

// Benchmark is one registered application.
type Benchmark struct {
	// Name is the suite-wide identifier ("fib", "sort", ...).
	Name string

	// Table I metadata.
	Origin         string // "Cilk", "AKM", "Olden", or "-" for in-house
	Domain         string
	Structure      string // computation structure: "Iterative", "At each node", "At leafs"
	TaskDirectives int    // number of task directives in the source
	TasksInside    string // enclosing generator construct: "for", "single", "single/for"
	NestedTasks    bool
	AppCutoff      string // "none" or "depth-based"

	// Extension marks benchmarks beyond the paper's nine (the future
	// work of §V: UTS and Knapsack joined the suite in later BOTS
	// releases). Extensions are excluded from the paper-reproduction
	// artifacts (Tables I–II, Figure 3) and reported separately.
	Extension bool

	// Versions lists the available parallel versions, e.g.
	// "tied", "untied", "if-tied", "manual-untied", "for-tied".
	Versions []string
	// BestVersion is the version the paper's Figure 3 plots.
	BestVersion string

	// Profile parameterizes the simulator's memory model.
	Profile Profile

	// Seq runs the sequential reference implementation.
	Seq func(class Class) (*SeqResult, error)
	// Run runs one parallel version.
	Run func(cfg RunConfig) (*RunResult, error)
	// Verify checks a parallel result against the sequential
	// reference. When nil, digests must be exactly equal.
	Verify func(seq *SeqResult, par *RunResult) error
}

// HasVersion reports whether name is one of b's versions.
func (b *Benchmark) HasVersion(name string) bool {
	for _, v := range b.Versions {
		if v == name {
			return true
		}
	}
	return false
}

// Check verifies par against seq using the benchmark's rules.
func (b *Benchmark) Check(seq *SeqResult, par *RunResult) error {
	if b.Verify != nil {
		return b.Verify(seq, par)
	}
	if seq.Digest != par.Digest {
		return fmt.Errorf("%s: verification failed: parallel digest %s != sequential %s",
			b.Name, par.Digest, seq.Digest)
	}
	return nil
}

var (
	regMu    sync.Mutex
	registry = map[string]*Benchmark{}
)

// Register adds a benchmark to the suite registry. It panics on
// duplicate names or structurally invalid registrations; it is meant
// to be called from package init functions.
func Register(b *Benchmark) {
	if b.Name == "" || b.Seq == nil || b.Run == nil {
		panic("core: incomplete benchmark registration")
	}
	if len(b.Versions) == 0 || b.BestVersion == "" || !b.HasVersion(b.BestVersion) {
		panic(fmt.Sprintf("core: benchmark %q has an invalid version list", b.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name]; dup {
		panic(fmt.Sprintf("core: duplicate benchmark %q", b.Name))
	}
	registry[b.Name] = b
}

// Get returns the benchmark registered under name.
func Get(name string) (*Benchmark, error) {
	regMu.Lock()
	defer regMu.Unlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown benchmark %q", name)
	}
	return b, nil
}

// All returns every registered benchmark, sorted by name.
func All() []*Benchmark {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Benchmark, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Paper returns the paper's nine applications (extensions excluded),
// sorted by name.
func Paper() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if !b.Extension {
			out = append(out, b)
		}
	}
	return out
}

// Extensions returns the post-paper extension benchmarks, sorted by
// name.
func Extensions() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.Extension {
			out = append(out, b)
		}
	}
	return out
}
