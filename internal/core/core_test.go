package core

import (
	"errors"
	"fmt"
	"testing"

	"bots/internal/omp"
)

func stubBenchmark(name string) *Benchmark {
	return &Benchmark{
		Name:        name,
		Origin:      "-",
		Domain:      "test",
		Structure:   "Iterative",
		TasksInside: "single",
		AppCutoff:   "none",
		Versions:    []string{"tied", "untied"},
		BestVersion: "tied",
		Seq: func(class Class) (*SeqResult, error) {
			return &SeqResult{Digest: "d", Work: 1, MemBytes: 1}, nil
		},
		Run: func(cfg RunConfig) (*RunResult, error) {
			return &RunResult{Digest: "d", Stats: &omp.Stats{}}, nil
		},
	}
}

func TestClassParsingRoundTrip(t *testing.T) {
	for _, c := range []Class{Test, Small, Medium, Large} {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("huge"); err == nil {
		t.Fatal("ParseClass should reject unknown class names")
	}
	if s := Class(99).String(); s != "Class(99)" {
		t.Fatalf("out-of-range class String = %q", s)
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, mutate func(*Benchmark)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register should panic", name)
			}
		}()
		b := stubBenchmark("stub-" + name)
		mutate(b)
		Register(b)
	}
	mustPanic("no-name", func(b *Benchmark) { b.Name = "" })
	mustPanic("no-seq", func(b *Benchmark) { b.Seq = nil })
	mustPanic("no-run", func(b *Benchmark) { b.Run = nil })
	mustPanic("no-versions", func(b *Benchmark) { b.Versions = nil })
	mustPanic("bad-best", func(b *Benchmark) { b.BestVersion = "nope" })
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(stubBenchmark("dup-check"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	Register(stubBenchmark("dup-check"))
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-benchmark"); err == nil {
		t.Fatal("Get should fail for unknown names")
	}
}

func TestCheckDigestComparison(t *testing.T) {
	b := stubBenchmark("check-test")
	seq := &SeqResult{Digest: "abc"}
	if err := b.Check(seq, &RunResult{Digest: "abc"}); err != nil {
		t.Fatalf("matching digests should verify: %v", err)
	}
	if err := b.Check(seq, &RunResult{Digest: "xyz"}); err == nil {
		t.Fatal("mismatched digests should fail verification")
	}
}

func TestCheckCustomVerifier(t *testing.T) {
	b := stubBenchmark("custom-verify")
	sentinel := errors.New("sentinel")
	b.Verify = func(seq *SeqResult, par *RunResult) error { return sentinel }
	if err := b.Check(&SeqResult{}, &RunResult{}); !errors.Is(err, sentinel) {
		t.Fatalf("custom verifier not used: %v", err)
	}
}

func TestParseVersionMatrix(t *testing.T) {
	cases := []struct {
		in      string
		cutoff  string
		gen     string
		untied  bool
		wantErr bool
	}{
		{"tied", "", "", false, false},
		{"untied", "", "", true, false},
		{"if-tied", "if", "", false, false},
		{"manual-untied", "manual", "", true, false},
		{"none-tied", "none", "", false, false},
		{"single-untied", "", "single", true, false},
		{"for-tied", "", "for", false, false},
		{"bogus", "", "", false, true},
		{"weird-untied", "", "", false, true},
		{"a-b-tied", "", "", false, true},
	}
	for _, tc := range cases {
		v, err := ParseVersion(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseVersion(%q) should fail", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseVersion(%q): %v", tc.in, err)
			continue
		}
		if v.Cutoff != tc.cutoff || v.Generator != tc.gen || v.Untied != tc.untied {
			t.Errorf("ParseVersion(%q) = %+v", tc.in, v)
		}
	}
}

func TestVersionListsAreParseable(t *testing.T) {
	for _, list := range [][]string{
		CutoffVersions(), PlainVersions(), GeneratorVersions(),
		FutureVersions(CutoffVersions()),
	} {
		for _, v := range list {
			if _, err := ParseVersion(v); err != nil {
				t.Errorf("%q: %v", v, err)
			}
		}
	}
	if len(CutoffVersions()) != 6 || len(PlainVersions()) != 2 || len(GeneratorVersions()) != 6 {
		t.Error("unexpected version list sizes")
	}
	if len(FutureVersions(PlainVersions())) != 4 {
		t.Error("FutureVersions must append future-tied and future-untied")
	}
	for _, tc := range []struct {
		in  string
		gen string
		fut bool
	}{
		{"dep-tied", "dep", false},
		{"dep-untied", "dep", false},
		{"future-tied", "", true},
		{"future-untied", "", true},
	} {
		v, err := ParseVersion(tc.in)
		if err != nil {
			t.Errorf("ParseVersion(%q): %v", tc.in, err)
			continue
		}
		if v.Generator != tc.gen || v.Futures != tc.fut {
			t.Errorf("ParseVersion(%q) = %+v", tc.in, v)
		}
	}
}

func TestTeamOptsAssembly(t *testing.T) {
	cfg := RunConfig{
		Threads:       2,
		RuntimeCutoff: omp.MaxTasks{Limit: 4},
		Scheduler:     "breadthfirst",
	}
	opts := cfg.TeamOpts()
	if len(opts) != 2 {
		t.Fatalf("TeamOpts = %d options, want 2 (scheduler + cutoff)", len(opts))
	}
	// The options must be applicable without panicking.
	omp.Parallel(1, func(c *omp.Context) {}, opts...)
}

func TestHasVersion(t *testing.T) {
	b := stubBenchmark(fmt.Sprintf("hv-%d", 1))
	if !b.HasVersion("tied") || b.HasVersion("nope") {
		t.Fatal("HasVersion misbehaves")
	}
}
