package omp

import (
	"fmt"
	"sync/atomic"
)

// Stats aggregates per-team runtime counters. All counts are totals
// across the team's workers for one parallel region.
type Stats struct {
	// TasksCreated is the number of deferred tasks pushed to deques.
	TasksCreated int64
	// TasksUndeferred is the number of tasks executed immediately on
	// the encountering thread because of an if(false) clause, a final
	// ancestor, or a runtime cut-off decision.
	TasksUndeferred int64
	// TasksStolen is the number of tasks executed by a worker other
	// than their creator.
	TasksStolen int64
	// StealAttempts is the number of times a worker, finding nothing
	// admissible in its local queue area, asked the scheduler for
	// another worker's task; StealFails counts the attempts that came
	// back empty. Schedulers that maintain a work-advertisement word
	// (all built-ins) suppress attempts entirely while no other worker
	// advertises queued work, so on an idle team both counters stay
	// quiet instead of churning once per spin probe; under a pool
	// scheduler (one shared queue, nothing worker-local to steal) no
	// attempt is ever made, since PopLocal already reaches every task.
	StealAttempts, StealFails int64
	// IdleParks is the number of times a worker exhausted its bounded
	// spin budget at a team barrier and parked on the team doorbell
	// (woken by the next task enqueue or by barrier completion). Each
	// park counts once; spinning probes do not count.
	IdleParks int64
	// Taskwaits is the number of taskwait operations executed.
	Taskwaits int64
	// TaskwaitParks is the number of times a taskwait had to park
	// (no runnable task satisfied the scheduling constraint).
	TaskwaitParks int64
	// Barriers is the number of team barriers executed (per worker
	// arrival; a single barrier of an n-thread team counts n).
	Barriers int64
	// DepEdges is the number of dependence edges resolved at task
	// creation (predecessors found through In/Out/InOut clauses,
	// whether or not the predecessor was still running).
	DepEdges int64
	// TasksDepDeferred is the number of tasks held back at creation
	// because at least one predecessor had not finished.
	TasksDepDeferred int64
	// DepReleases is the number of held tasks enqueued by the
	// completion of their last unfinished predecessor.
	DepReleases int64
	// FutureWaits is the number of Future.Wait operations that had to
	// block (the producing task was not yet done).
	FutureWaits int64
	// CapturedBytes is the total captured-environment (firstprivate)
	// bytes declared at task creation.
	CapturedBytes int64
	// WorkUnits is the total application-reported work.
	WorkUnits int64
	// PrivateWrites and SharedWrites are application-reported write
	// counts (Table II accounting).
	PrivateWrites, SharedWrites int64
	// SchedulerSeed is the region's victim-selection seed, for
	// schedulers whose steal order is randomized (the deque family
	// mixes a process-wide region sequence number into it, so repeated
	// regions explore different steal orders). Zero for schedulers
	// without randomized decisions. Surfaced so a `bots -json` record
	// pins the steal order the run explored.
	SchedulerSeed uint64
}

// TotalTasks returns all tasks that passed through a task directive,
// deferred or not.
func (s *Stats) TotalTasks() int64 { return s.TasksCreated + s.TasksUndeferred }

func (s *Stats) String() string {
	out := fmt.Sprintf(
		"tasks=%d (undeferred %d, stolen %d) taskwaits=%d parks=%d barriers=%d captured=%dB work=%d",
		s.TotalTasks(), s.TasksUndeferred, s.TasksStolen, s.Taskwaits,
		s.TaskwaitParks, s.Barriers, s.CapturedBytes, s.WorkUnits)
	if s.StealAttempts > 0 {
		out += fmt.Sprintf(" stealattempts=%d (failed %d) idleparks=%d",
			s.StealAttempts, s.StealFails, s.IdleParks)
	}
	if s.DepEdges > 0 || s.TasksDepDeferred > 0 {
		out += fmt.Sprintf(" deps=%d (deferred %d, released %d)",
			s.DepEdges, s.TasksDepDeferred, s.DepReleases)
	}
	if s.FutureWaits > 0 {
		out += fmt.Sprintf(" futurewaits=%d", s.FutureWaits)
	}
	if s.SchedulerSeed != 0 {
		out += fmt.Sprintf(" schedseed=%#x", s.SchedulerSeed)
	}
	return out
}

// Sub returns the field-wise difference s - prev: the counters
// accumulated between the two snapshots. The per-submission stats of a
// persistent team are deltas of this form (see PersistentTeam). The
// SchedulerSeed is an identity, not a counter, and is carried over
// from s unchanged.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		TasksCreated:     s.TasksCreated - prev.TasksCreated,
		TasksUndeferred:  s.TasksUndeferred - prev.TasksUndeferred,
		TasksStolen:      s.TasksStolen - prev.TasksStolen,
		StealAttempts:    s.StealAttempts - prev.StealAttempts,
		StealFails:       s.StealFails - prev.StealFails,
		IdleParks:        s.IdleParks - prev.IdleParks,
		Taskwaits:        s.Taskwaits - prev.Taskwaits,
		TaskwaitParks:    s.TaskwaitParks - prev.TaskwaitParks,
		Barriers:         s.Barriers - prev.Barriers,
		DepEdges:         s.DepEdges - prev.DepEdges,
		TasksDepDeferred: s.TasksDepDeferred - prev.TasksDepDeferred,
		DepReleases:      s.DepReleases - prev.DepReleases,
		FutureWaits:      s.FutureWaits - prev.FutureWaits,
		CapturedBytes:    s.CapturedBytes - prev.CapturedBytes,
		WorkUnits:        s.WorkUnits - prev.WorkUnits,
		PrivateWrites:    s.PrivateWrites - prev.PrivateWrites,
		SharedWrites:     s.SharedWrites - prev.SharedWrites,
		SchedulerSeed:    s.SchedulerSeed,
	}
}

// workerStats holds one worker's counters, padded to a cache line to
// avoid false sharing between adjacent workers in the team slice.
//
// The counters are atomic so a snapshot can be taken while workers
// run: a persistent team serves submissions from long-parked workers
// and its observers (latency monitors, the serve report) read stats
// mid-flight, which with plain fields would be a data race. Each
// counter has a single writer (its worker), so the writes are
// uncontended adds — the atomicity buys race-free remote reads, not
// cross-worker aggregation.
type workerStats struct {
	tasksCreated     atomic.Int64
	tasksUndeferred  atomic.Int64
	tasksStolen      atomic.Int64
	stealAttempts    atomic.Int64
	stealFails       atomic.Int64
	idleParks        atomic.Int64
	taskwaits        atomic.Int64
	taskwaitParks    atomic.Int64
	barriers         atomic.Int64
	depEdges         atomic.Int64
	tasksDepDeferred atomic.Int64
	depReleases      atomic.Int64
	futureWaits      atomic.Int64
	capturedBytes    atomic.Int64
	workUnits        atomic.Int64
	privateWrites    atomic.Int64
	sharedWrites     atomic.Int64
	_                [56]byte // pad to a multiple of 64 bytes
}

// snapshot returns a point-in-time copy of the team's aggregated
// counters. Safe to call from any goroutine at any time — all loads
// are atomic — including while every worker is running or parked
// mid-submission; a snapshot taken during execution is a consistent
// set of per-counter values, not a cross-counter atomic cut.
func (tm *Team) snapshot() Stats {
	var s Stats
	if sd, ok := tm.sched.(seededScheduler); ok {
		s.SchedulerSeed = sd.SchedulerSeed()
	}
	for i := range tm.workers {
		ws := &tm.workers[i].stats
		s.TasksCreated += ws.tasksCreated.Load()
		s.TasksUndeferred += ws.tasksUndeferred.Load()
		s.TasksStolen += ws.tasksStolen.Load()
		s.StealAttempts += ws.stealAttempts.Load()
		s.StealFails += ws.stealFails.Load()
		s.IdleParks += ws.idleParks.Load()
		s.Taskwaits += ws.taskwaits.Load()
		s.TaskwaitParks += ws.taskwaitParks.Load()
		s.Barriers += ws.barriers.Load()
		s.DepEdges += ws.depEdges.Load()
		s.TasksDepDeferred += ws.tasksDepDeferred.Load()
		s.DepReleases += ws.depReleases.Load()
		s.FutureWaits += ws.futureWaits.Load()
		s.CapturedBytes += ws.capturedBytes.Load()
		s.WorkUnits += ws.workUnits.Load()
		s.PrivateWrites += ws.privateWrites.Load()
		s.SharedWrites += ws.sharedWrites.Load()
	}
	return s
}

func (tm *Team) aggregateStats() *Stats {
	s := tm.snapshot()
	return &s
}
