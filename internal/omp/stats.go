package omp

import "fmt"

// Stats aggregates per-team runtime counters. All counts are totals
// across the team's workers for one parallel region.
type Stats struct {
	// TasksCreated is the number of deferred tasks pushed to deques.
	TasksCreated int64
	// TasksUndeferred is the number of tasks executed immediately on
	// the encountering thread because of an if(false) clause, a final
	// ancestor, or a runtime cut-off decision.
	TasksUndeferred int64
	// TasksStolen is the number of tasks executed by a worker other
	// than their creator.
	TasksStolen int64
	// StealAttempts is the number of times a worker, finding nothing
	// admissible in its local queue area, asked the scheduler for
	// another worker's task; StealFails counts the attempts that came
	// back empty. Schedulers that maintain a work-advertisement word
	// (all built-ins) suppress attempts entirely while no other worker
	// advertises queued work, so on an idle team both counters stay
	// quiet instead of churning once per spin probe; under a pool
	// scheduler (one shared queue, nothing worker-local to steal) no
	// attempt is ever made, since PopLocal already reaches every task.
	StealAttempts, StealFails int64
	// IdleParks is the number of times a worker exhausted its bounded
	// spin budget at a team barrier and parked on the team doorbell
	// (woken by the next task enqueue or by barrier completion). Each
	// park counts once; spinning probes do not count.
	IdleParks int64
	// Taskwaits is the number of taskwait operations executed.
	Taskwaits int64
	// TaskwaitParks is the number of times a taskwait had to park
	// (no runnable task satisfied the scheduling constraint).
	TaskwaitParks int64
	// Barriers is the number of team barriers executed (per worker
	// arrival; a single barrier of an n-thread team counts n).
	Barriers int64
	// DepEdges is the number of dependence edges resolved at task
	// creation (predecessors found through In/Out/InOut clauses,
	// whether or not the predecessor was still running).
	DepEdges int64
	// TasksDepDeferred is the number of tasks held back at creation
	// because at least one predecessor had not finished.
	TasksDepDeferred int64
	// DepReleases is the number of held tasks enqueued by the
	// completion of their last unfinished predecessor.
	DepReleases int64
	// FutureWaits is the number of Future.Wait operations that had to
	// block (the producing task was not yet done).
	FutureWaits int64
	// CapturedBytes is the total captured-environment (firstprivate)
	// bytes declared at task creation.
	CapturedBytes int64
	// WorkUnits is the total application-reported work.
	WorkUnits int64
	// PrivateWrites and SharedWrites are application-reported write
	// counts (Table II accounting).
	PrivateWrites, SharedWrites int64
	// SchedulerSeed is the region's victim-selection seed, for
	// schedulers whose steal order is randomized (the deque family
	// mixes a process-wide region sequence number into it, so repeated
	// regions explore different steal orders). Zero for schedulers
	// without randomized decisions. Surfaced so a `bots -json` record
	// pins the steal order the run explored.
	SchedulerSeed uint64
}

// TotalTasks returns all tasks that passed through a task directive,
// deferred or not.
func (s *Stats) TotalTasks() int64 { return s.TasksCreated + s.TasksUndeferred }

func (s *Stats) String() string {
	out := fmt.Sprintf(
		"tasks=%d (undeferred %d, stolen %d) taskwaits=%d parks=%d barriers=%d captured=%dB work=%d",
		s.TotalTasks(), s.TasksUndeferred, s.TasksStolen, s.Taskwaits,
		s.TaskwaitParks, s.Barriers, s.CapturedBytes, s.WorkUnits)
	if s.StealAttempts > 0 {
		out += fmt.Sprintf(" stealattempts=%d (failed %d) idleparks=%d",
			s.StealAttempts, s.StealFails, s.IdleParks)
	}
	if s.DepEdges > 0 || s.TasksDepDeferred > 0 {
		out += fmt.Sprintf(" deps=%d (deferred %d, released %d)",
			s.DepEdges, s.TasksDepDeferred, s.DepReleases)
	}
	if s.FutureWaits > 0 {
		out += fmt.Sprintf(" futurewaits=%d", s.FutureWaits)
	}
	if s.SchedulerSeed != 0 {
		out += fmt.Sprintf(" schedseed=%#x", s.SchedulerSeed)
	}
	return out
}

// workerStats holds one worker's counters, padded to a cache line to
// avoid false sharing between adjacent workers in the team slice.
type workerStats struct {
	tasksCreated     int64
	tasksUndeferred  int64
	tasksStolen      int64
	stealAttempts    int64
	stealFails       int64
	idleParks        int64
	taskwaits        int64
	taskwaitParks    int64
	barriers         int64
	depEdges         int64
	tasksDepDeferred int64
	depReleases      int64
	futureWaits      int64
	capturedBytes    int64
	workUnits        int64
	privateWrites    int64
	sharedWrites     int64
	_                [56]byte // pad to a multiple of 64 bytes
}

func (tm *Team) aggregateStats() *Stats {
	s := &Stats{}
	if sd, ok := tm.sched.(seededScheduler); ok {
		s.SchedulerSeed = sd.SchedulerSeed()
	}
	for i := range tm.workers {
		ws := &tm.workers[i].stats
		s.TasksCreated += ws.tasksCreated
		s.TasksUndeferred += ws.tasksUndeferred
		s.TasksStolen += ws.tasksStolen
		s.StealAttempts += ws.stealAttempts
		s.StealFails += ws.stealFails
		s.IdleParks += ws.idleParks
		s.Taskwaits += ws.taskwaits
		s.TaskwaitParks += ws.taskwaitParks
		s.Barriers += ws.barriers
		s.DepEdges += ws.depEdges
		s.TasksDepDeferred += ws.tasksDepDeferred
		s.DepReleases += ws.depReleases
		s.FutureWaits += ws.futureWaits
		s.CapturedBytes += ws.capturedBytes
		s.WorkUnits += ws.workUnits
		s.PrivateWrites += ws.privateWrites
		s.SharedWrites += ws.sharedWrites
	}
	return s
}
