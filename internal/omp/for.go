package omp

import "sync/atomic"

// Schedule selects how a For worksharing loop distributes iterations.
type Schedule uint8

const (
	// Static splits the iteration space into equal contiguous chunks
	// assigned round-robin by thread number, with no runtime
	// coordination.
	Static Schedule = iota
	// Dynamic hands out chunks first-come first-served from a shared
	// counter.
	Dynamic
	// Guided hands out exponentially shrinking chunks (remaining/2n,
	// floored at the chunk size).
	Guided
)

func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return "unknown"
}

// ForOpt configures a For worksharing construct.
type ForOpt func(*forConfig)

type forConfig struct {
	sched  Schedule
	chunk  int
	nowait bool
}

// WithSchedule selects the loop schedule and chunk size. A chunk of
// zero means: range/numThreads for Static, 1 for Dynamic and Guided.
func WithSchedule(s Schedule, chunk int) ForOpt {
	return func(c *forConfig) { c.sched = s; c.chunk = chunk }
}

// Nowait removes the implicit barrier at the end of the loop.
func Nowait() ForOpt { return func(c *forConfig) { c.nowait = true } }

// loopState is the shared per-construct-instance state for Dynamic
// and Guided schedules.
type loopState struct {
	next atomic.Int64
}

func (tm *Team) loopStateFor(idx int64, lo int) *loopState {
	tm.wsMu.Lock()
	st, ok := tm.wsLoops[idx]
	if !ok {
		st = &loopState{}
		st.next.Store(int64(lo))
		tm.wsLoops[idx] = st
	}
	tm.wsMu.Unlock()
	return st
}

// For executes body(c, i) for every i in [lo, hi), distributing
// iterations across the team according to the configured schedule,
// with an implicit task-draining barrier at the end unless Nowait is
// given. Every thread of the team must encounter the construct (it is
// a worksharing construct, not a parallel loop builder), and it must
// be called from the region body, not from inside an explicit task.
//
// Tasks may be created inside the loop body; BOTS Alignment relies on
// exactly that pattern (tasks nested in an omp for), as does the
// multiple-generator version of SparseLU.
func (c *Context) For(lo, hi int, body func(*Context, int), opts ...ForOpt) {
	cfg := forConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	idx := c.w.loopIdx
	c.w.loopIdx++
	n := c.NumThreads()
	total := hi - lo

	switch {
	case total <= 0:
		// Empty range: still synchronize below.
	case cfg.sched == Static:
		chunk := cfg.chunk
		if chunk <= 0 {
			chunk = (total + n - 1) / n
		}
		for base := lo + c.w.id*chunk; base < hi; base += n * chunk {
			end := base + chunk
			if end > hi {
				end = hi
			}
			for i := base; i < end; i++ {
				body(c, i)
			}
		}
	case cfg.sched == Dynamic:
		chunk := cfg.chunk
		if chunk <= 0 {
			chunk = 1
		}
		st := c.w.team.loopStateFor(idx, lo)
		for {
			base := int(st.next.Add(int64(chunk))) - chunk
			if base >= hi {
				break
			}
			end := base + chunk
			if end > hi {
				end = hi
			}
			for i := base; i < end; i++ {
				body(c, i)
			}
		}
	case cfg.sched == Guided:
		minChunk := cfg.chunk
		if minChunk <= 0 {
			minChunk = 1
		}
		st := c.w.team.loopStateFor(idx, lo)
		for {
			cur := st.next.Load()
			if int(cur) >= hi {
				break
			}
			remaining := hi - int(cur)
			chunk := remaining / (2 * n)
			if chunk < minChunk {
				chunk = minChunk
			}
			if !st.next.CompareAndSwap(cur, cur+int64(chunk)) {
				continue
			}
			end := int(cur) + chunk
			if end > hi {
				end = hi
			}
			for i := int(cur); i < end; i++ {
				body(c, i)
			}
		}
	}
	if !cfg.nowait {
		c.Barrier()
	}
}
