package omp

import (
	"sync/atomic"
	"testing"
)

// TestLiveTasksReturnToZero is the regression net over the live-task
// accounting audit: liveTasks is incremented once per task (deferred
// or undeferred) and decremented in exactly one of finish (deferred,
// via execute's deferred call — which runs once even when the body
// panics) or finishInline (undeferred). The counter must read zero
// after every region, whatever mix of paths ran — a double decrement
// on the undeferred/panic paths would both wedge the accounting and,
// since recycling keys off the same completion points, double-free a
// pooled task.
func TestLiveTasksReturnToZero(t *testing.T) {
	var checked atomic.Int64
	prev := regionEndHook
	regionEndHook = func(tm *Team) {
		checked.Add(1)
		if live := tm.liveTasks.Load(); live != 0 {
			t.Errorf("liveTasks = %d after region end, want 0", live)
		}
	}
	defer func() { regionEndHook = prev }()

	scenarios := []struct {
		name string
		body func(c *Context)
	}{
		{"DeferredTree", func(c *Context) {
			c.Single(func(c *Context) {
				var res int64
				c.Task(func(c *Context) { parFib(c, 12, &res) })
			})
		}},
		{"UndeferredIfFalse", func(c *Context) {
			c.Single(func(c *Context) {
				for i := 0; i < 32; i++ {
					c.Task(func(c *Context) {
						c.Task(func(c *Context) {}, If(false))
					}, If(false))
				}
			})
		}},
		{"FinalSubtree", func(c *Context) {
			c.Single(func(c *Context) {
				var res int64
				c.Task(func(c *Context) { parFib(c, 8, &res) }, Final(true))
			})
		}},
		{"MixedUndeferredWithDeferredChildren", func(c *Context) {
			c.Single(func(c *Context) {
				c.Task(func(c *Context) {
					for i := 0; i < 8; i++ {
						c.Task(func(c *Context) {})
					}
					c.Taskwait()
				}, If(false))
			})
		}},
		{"FireAndForgetFromUndeferred", func(c *Context) {
			// Children outliving their undeferred parent: the parent
			// returns without a taskwait, the barrier drains them.
			c.Single(func(c *Context) {
				c.Task(func(c *Context) {
					for i := 0; i < 8; i++ {
						c.Task(func(c *Context) {})
					}
				}, If(false))
			})
		}},
		{"Dependences", func(c *Context) {
			c.Single(func(c *Context) {
				buf := new(int)
				for i := 0; i < 16; i++ {
					c.Task(func(c *Context) { *buf++ }, InOut(buf))
				}
				c.Taskwait()
			})
		}},
		{"Futures", func(c *Context) {
			c.Single(func(c *Context) {
				f := Spawn(c, func(c *Context) int {
					g := Spawn(c, func(c *Context) int { return 21 })
					return 2 * g.Wait(c)
				})
				if got := f.Wait(c); got != 42 {
					t.Errorf("future = %d, want 42", got)
				}
			})
		}},
		{"Taskgroup", func(c *Context) {
			c.Single(func(c *Context) {
				c.Taskgroup(func(c *Context) {
					for i := 0; i < 8; i++ {
						c.Task(func(c *Context) {
							c.Task(func(c *Context) {})
						})
					}
				})
			})
		}},
		{"PanicInDeferredTask", func(c *Context) {
			c.Single(func(c *Context) {
				c.Task(func(c *Context) { panic("deferred boom") })
			})
		}},
		{"PanicInUndeferredTask", func(c *Context) {
			c.Single(func(c *Context) {
				c.Task(func(c *Context) { panic("undeferred boom") }, If(false))
			})
		}},
		{"PanicWithSiblingsDraining", func(c *Context) {
			c.Single(func(c *Context) {
				for i := 0; i < 16; i++ {
					c.Task(func(c *Context) {})
				}
				c.Task(func(c *Context) { panic("boom among siblings") })
				c.Taskwait()
			})
		}},
	}

	runs := 0
	for _, sched := range Schedulers() {
		for _, cut := range []CutoffPolicy{NoCutoff{}, MaxTasks{Limit: 2}, MaxDepth{Limit: 3}} {
			for _, sc := range scenarios {
				runs++
				func() {
					defer func() { recover() }() // panic scenarios re-raise; the hook already ran
					Parallel(4, sc.body, WithScheduler(sched), WithCutoff(cut))
				}()
			}
		}
	}
	if got := checked.Load(); got != int64(runs) {
		t.Fatalf("region-end hook observed %d regions, want %d", got, runs)
	}
}
