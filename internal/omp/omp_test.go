package omp

import (
	"runtime"
	"sync/atomic"
	"testing"

	"bots/internal/trace"
)

func init() {
	// The test host may have a single core; force real interleaving
	// so the runtime's concurrency is actually exercised.
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
}

// parFib runs the canonical BOTS fib pattern through the runtime.
func parFib(c *Context, n int, res *int64, opts ...TaskOpt) {
	if n < 2 {
		*res = int64(n)
		return
	}
	var a, b int64
	c.Task(func(c *Context) { parFib(c, n-1, &a, opts...) }, opts...)
	c.Task(func(c *Context) { parFib(c, n-2, &b, opts...) }, opts...)
	c.Taskwait()
	*res = a + b
}

func fibSeq(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

func TestParallelFibTied(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 8} {
		var got int64
		Parallel(threads, func(c *Context) {
			c.Single(func(c *Context) {
				c.Task(func(c *Context) { parFib(c, 18, &got) })
			})
		})
		if want := fibSeq(18); got != want {
			t.Fatalf("threads=%d: fib(18) = %d, want %d", threads, got, want)
		}
	}
}

func TestParallelFibUntied(t *testing.T) {
	for _, threads := range []int{1, 3, 7} {
		var got int64
		Parallel(threads, func(c *Context) {
			c.Single(func(c *Context) {
				c.Task(func(c *Context) { parFib(c, 17, &got, Untied()) }, Untied())
			})
		})
		if want := fibSeq(17); got != want {
			t.Fatalf("threads=%d: untied fib(17) = %d, want %d", threads, got, want)
		}
	}
}

func TestIfClauseUndefersTasks(t *testing.T) {
	var got int64
	st := Parallel(2, func(c *Context) {
		c.Single(func(c *Context) {
			var rec func(c *Context, n int, res *int64)
			rec = func(c *Context, n int, res *int64) {
				if n < 2 {
					*res = int64(n)
					return
				}
				var a, b int64
				deep := c.Depth() >= 3
				c.Task(func(c *Context) { rec(c, n-1, &a) }, If(!deep))
				c.Task(func(c *Context) { rec(c, n-2, &b) }, If(!deep))
				c.Taskwait()
				*res = a + b
			}
			c.Task(func(c *Context) { rec(c, 15, &got) })
		})
	})
	if want := fibSeq(15); got != want {
		t.Fatalf("fib(15) with if cut-off = %d, want %d", got, want)
	}
	if st.TasksUndeferred == 0 {
		t.Fatal("expected some undeferred tasks with an if-clause cut-off")
	}
	if st.TasksCreated == 0 {
		t.Fatal("expected some deferred tasks above the cut-off depth")
	}
}

func TestFinalClause(t *testing.T) {
	var inFinal atomic.Int64
	st := Parallel(2, func(c *Context) {
		c.Single(func(c *Context) {
			c.Task(func(c *Context) {
				if !c.InFinal() {
					t.Error("task created with Final(true) should be final")
				}
				c.Task(func(c *Context) {
					if c.InFinal() {
						inFinal.Add(1)
					}
				})
			}, Final(true))
		})
	})
	if inFinal.Load() != 1 {
		t.Fatal("descendant of a final task should inherit finality")
	}
	// The descendant must have been undeferred.
	if st.TasksUndeferred < 1 {
		t.Fatalf("undeferred = %d, want >= 1", st.TasksUndeferred)
	}
}

func TestRuntimeCutoffMaxTasks(t *testing.T) {
	var got int64
	st := Parallel(2, func(c *Context) {
		c.Single(func(c *Context) {
			c.Task(func(c *Context) { parFib(c, 16, &got) })
		})
	}, WithCutoff(MaxTasks{Limit: 4}))
	if want := fibSeq(16); got != want {
		t.Fatalf("fib(16) = %d, want %d", got, want)
	}
	if st.TasksUndeferred == 0 {
		t.Fatal("MaxTasks cut-off should undefer tasks under load")
	}
}

func TestRuntimeCutoffMaxDepth(t *testing.T) {
	var got int64
	st := Parallel(4, func(c *Context) {
		c.Single(func(c *Context) {
			c.Task(func(c *Context) { parFib(c, 16, &got) })
		})
	}, WithCutoff(MaxDepth{Limit: 4}))
	if want := fibSeq(16); got != want {
		t.Fatalf("fib(16) = %d, want %d", got, want)
	}
	if st.TasksCreated >= st.TotalTasks() {
		t.Fatal("MaxDepth cut-off should undefer deep tasks")
	}
}

func TestBreadthFirstPolicy(t *testing.T) {
	var got int64
	Parallel(4, func(c *Context) {
		c.Single(func(c *Context) {
			c.Task(func(c *Context) { parFib(c, 15, &got) })
		})
	}, WithScheduler("breadthfirst"))
	if want := fibSeq(15); got != want {
		t.Fatalf("fib(15) breadth-first = %d, want %d", got, want)
	}
}

func TestBarrierDrainsTasks(t *testing.T) {
	var n atomic.Int64
	Parallel(4, func(c *Context) {
		// Every thread creates tasks, then everyone meets at a
		// barrier: all tasks must be done when it releases.
		for i := 0; i < 50; i++ {
			c.Task(func(c *Context) { n.Add(1) })
		}
		c.Barrier()
		if got := n.Load(); got != 200 {
			t.Errorf("after barrier: %d tasks ran, want 200", got)
		}
	})
}

func TestRegionEndDrainsTasks(t *testing.T) {
	var n atomic.Int64
	Parallel(3, func(c *Context) {
		for i := 0; i < 100; i++ {
			c.Task(func(c *Context) { n.Add(1) })
		}
		// No explicit barrier or taskwait: the implicit region-end
		// barrier must run everything.
	})
	if got := n.Load(); got != 300 {
		t.Fatalf("region end: %d tasks ran, want 300", got)
	}
}

func TestTaskwaitWaitsOnlyForChildren(t *testing.T) {
	order := make(chan string, 16)
	Parallel(2, func(c *Context) {
		c.Single(func(c *Context) {
			c.Task(func(c *Context) {
				c.Task(func(c *Context) {
					// Grandchild: taskwait in the parent below must
					// NOT wait for this (it waits for children only).
					order <- "grandchild"
				})
				order <- "child"
				// Note: no taskwait here; grandchild may outlive us.
			})
			c.Taskwait()
			order <- "after-taskwait"
		})
	})
	close(order)
	var events []string
	for e := range order {
		events = append(events, e)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3: %v", len(events), events)
	}
	if events[0] != "child" {
		t.Fatalf("first event = %q, want child (taskwait must wait for the child)", events[0])
	}
}

func TestSingleExecutesOnce(t *testing.T) {
	var n atomic.Int64
	Parallel(8, func(c *Context) {
		for i := 0; i < 10; i++ {
			c.Single(func(c *Context) { n.Add(1) })
		}
	})
	if n.Load() != 10 {
		t.Fatalf("10 single constructs on 8 threads ran %d bodies, want 10", n.Load())
	}
}

func TestMasterRunsOnThreadZero(t *testing.T) {
	var ran atomic.Int64
	Parallel(4, func(c *Context) {
		c.Master(func(c *Context) {
			if c.ThreadNum() != 0 {
				t.Errorf("master ran on thread %d", c.ThreadNum())
			}
			ran.Add(1)
		})
	})
	if ran.Load() != 1 {
		t.Fatalf("master ran %d times, want 1", ran.Load())
	}
}

func TestForSchedules(t *testing.T) {
	const n = 1000
	for _, tc := range []struct {
		name string
		opts []ForOpt
	}{
		{"static", nil},
		{"static-chunk", []ForOpt{WithSchedule(Static, 7)}},
		{"dynamic", []ForOpt{WithSchedule(Dynamic, 13)}},
		{"guided", []ForOpt{WithSchedule(Guided, 4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			counts := make([]atomic.Int32, n)
			Parallel(4, func(c *Context) {
				c.For(0, n, func(c *Context, i int) {
					counts[i].Add(1)
				}, tc.opts...)
			})
			for i := range counts {
				if counts[i].Load() != 1 {
					t.Fatalf("iteration %d ran %d times, want 1", i, counts[i].Load())
				}
			}
		})
	}
}

func TestForWithTasksInside(t *testing.T) {
	// The Alignment pattern: worksharing loop whose body spawns tasks.
	const n = 64
	var sum atomic.Int64
	Parallel(4, func(c *Context) {
		c.For(0, n, func(c *Context, i int) {
			v := int64(i)
			c.Task(func(c *Context) { sum.Add(v) })
		}, WithSchedule(Dynamic, 1))
		// implicit barrier must also drain the spawned tasks
		if got := sum.Load(); got != n*(n-1)/2 {
			t.Errorf("after for-barrier sum = %d, want %d", got, n*(n-1)/2)
		}
	})
}

func TestForEmptyAndNowait(t *testing.T) {
	var n atomic.Int64
	Parallel(3, func(c *Context) {
		c.For(5, 5, func(c *Context, i int) { n.Add(1) })
		c.For(0, 30, func(c *Context, i int) { n.Add(1) }, Nowait())
		c.Barrier()
	})
	if n.Load() != 30 {
		t.Fatalf("ran %d iterations, want 30", n.Load())
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	var counter int // protected only by the critical section
	Parallel(8, func(c *Context) {
		for i := 0; i < 1000; i++ {
			c.Critical("ctr", func() { counter++ })
		}
	})
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
}

func TestThreadPrivateReduction(t *testing.T) {
	const threads = 6
	tp := NewThreadPrivate[int64](threads)
	var global int64
	Parallel(threads, func(c *Context) {
		mine := tp.Get(c)
		c.For(0, 600, func(c *Context, i int) {
			*mine++
		}, WithSchedule(Dynamic, 1), Nowait())
		c.Barrier()
		// The NQueens reduction pattern: each thread folds its
		// threadprivate count into the global under a critical.
		c.Critical("reduce", func() { global += *mine })
	})
	if global != 600 {
		t.Fatalf("reduced = %d, want 600", global)
	}
}

func TestStatsAccounting(t *testing.T) {
	st := Parallel(2, func(c *Context) {
		c.Single(func(c *Context) {
			for i := 0; i < 10; i++ {
				c.Task(func(c *Context) {
					c.AddWork(5)
					c.AddWrites(3, 1)
				}, Captured(16))
			}
			c.Taskwait()
		})
	})
	if st.TotalTasks() != 10 {
		t.Fatalf("TotalTasks = %d, want 10", st.TotalTasks())
	}
	if st.CapturedBytes != 160 {
		t.Fatalf("CapturedBytes = %d, want 160", st.CapturedBytes)
	}
	if st.WorkUnits != 50 {
		t.Fatalf("WorkUnits = %d, want 50", st.WorkUnits)
	}
	if st.PrivateWrites != 30 || st.SharedWrites != 10 {
		t.Fatalf("writes = %d/%d, want 30/10", st.PrivateWrites, st.SharedWrites)
	}
	if st.Taskwaits != 1 {
		t.Fatalf("Taskwaits = %d, want 1", st.Taskwaits)
	}
	if st.String() == "" {
		t.Fatal("Stats.String should be non-empty")
	}
}

func TestDepthTracking(t *testing.T) {
	var d0, d1, d2 int
	Parallel(1, func(c *Context) {
		d0 = c.Depth()
		c.Task(func(c *Context) {
			d1 = c.Depth()
			c.Task(func(c *Context) { d2 = c.Depth() })
			c.Taskwait()
		})
		c.Taskwait()
	})
	if d0 != 0 || d1 != 1 || d2 != 2 {
		t.Fatalf("depths = %d/%d/%d, want 0/1/2", d0, d1, d2)
	}
}

func TestTracingProducesValidTrace(t *testing.T) {
	rec := trace.NewRecorder()
	var got int64
	Parallel(2, func(c *Context) {
		c.Single(func(c *Context) {
			c.Task(func(c *Context) {
				c.AddWork(1)
				parFibTraced(c, 10, &got)
			})
		})
	}, WithRecorder(rec))
	tr := rec.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	if got != fibSeq(10) {
		t.Fatalf("fib(10) = %d, want %d", got, fibSeq(10))
	}
	if tr.NumRoots != 2 {
		t.Fatalf("NumRoots = %d, want 2", tr.NumRoots)
	}
	if tr.NumTasks() < 10 {
		t.Fatalf("NumTasks = %d, want many", tr.NumTasks())
	}
	if tr.TotalWork() == 0 {
		t.Fatal("TotalWork = 0, want > 0")
	}
	if cp := tr.CriticalPath(); cp <= 0 || cp > tr.TotalWork() {
		t.Fatalf("CriticalPath = %d, want in (0, %d]", cp, tr.TotalWork())
	}
}

func parFibTraced(c *Context, n int, res *int64) {
	c.AddWork(1)
	if n < 2 {
		*res = int64(n)
		return
	}
	var a, b int64
	c.Task(func(c *Context) { parFibTraced(c, n-1, &a) })
	c.Task(func(c *Context) { parFibTraced(c, n-2, &b) })
	c.Taskwait()
	*res = a + b
}

func TestDeepRecursionManyTasks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var got int64
	st := Parallel(4, func(c *Context) {
		c.Single(func(c *Context) {
			c.Task(func(c *Context) { parFib(c, 22, &got) })
		})
	})
	if want := fibSeq(22); got != want {
		t.Fatalf("fib(22) = %d, want %d", got, want)
	}
	if st.TotalTasks() < 10000 {
		t.Fatalf("TotalTasks = %d, want tens of thousands", st.TotalTasks())
	}
}

func TestZeroAndOneThreadTeams(t *testing.T) {
	var got int64
	Parallel(0, func(c *Context) { // clamps to 1
		if c.NumThreads() != 1 {
			t.Errorf("NumThreads = %d, want 1", c.NumThreads())
		}
		c.Task(func(c *Context) { parFib(c, 12, &got) })
		c.Taskwait()
	})
	if want := fibSeq(12); got != want {
		t.Fatalf("fib(12) = %d, want %d", got, want)
	}
}

func TestScheduleStrings(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Fatal("Schedule.String mismatch")
	}
	if Schedule(99).String() != "unknown" {
		t.Fatal("unknown enums should stringify to unknown")
	}
}

func TestCutoffPolicyNames(t *testing.T) {
	for _, p := range []CutoffPolicy{NoCutoff{}, MaxTasks{8}, MaxQueue{8}, MaxDepth{3}, Adaptive{}} {
		if p.Name() == "" {
			t.Fatalf("%T has empty name", p)
		}
	}
}
