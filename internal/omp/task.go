package omp

import (
	"sync/atomic"

	"bots/internal/obs"
	"bots/internal/trace"
)

// task is the runtime representation of an OpenMP explicit task (or
// of a thread's implicit task, for depth 0).
type task struct {
	body    func(*Context)
	fut     futureRunner // non-nil for Spawn-created tasks; body is nil then
	parent  *task
	team    *Team
	creator *worker // worker that created (queued) the task; nil for implicit tasks

	depth    int32
	untied   bool
	final    bool
	priority int32

	// visible marks tasks whose pointer may be reachable outside the
	// executing thread — every enqueued task, and every ancestor of an
	// enqueued task (stale thief reads walk parent chains; see
	// pool.go). Only !visible tasks are recycled in-region. Written
	// exclusively by the thread executing the task's parent.
	visible bool

	// spawnedDeferred marks tasks that (transitively through inline
	// children) acquired a deferred descendant: constraint predicates
	// may walk up to this task from a queued descendant, so it cannot
	// be recycled at finish even on a single-worker team. Written
	// exclusively by the thread executing the task.
	spawnedDeferred bool

	// ctx is the task's reusable execution context: execute and the
	// undeferred path hand &ctx to the body, saving a per-execution
	// Context allocation (the pointer escapes through the indirect
	// body call, so a literal &Context{} would always heap-allocate).
	ctx Context

	// pending counts outstanding (created, not yet finished) child
	// tasks; taskwait blocks until it reaches zero. Parked taskwaits
	// block on the team's waitBell (see Team.wakeWaiters) — the task
	// itself carries no park state.
	pending atomic.Int64

	// group is the innermost enclosing taskgroup, inherited by
	// descendants; nil outside any taskgroup.
	group *taskgroup

	// node is the trace-recording node, nil when tracing is off.
	node *trace.Node

	// Dependence state (see depend.go). hasDeps marks tasks that
	// declared depend clauses — only they can appear in the parent's
	// dependence table and acquire successors. depsLeft counts
	// unfinished predecessors plus a creation guard; the task is
	// enqueued when it reaches zero. succHead is the lock-free
	// successor list: creation CAS-pushes successor nodes, and the
	// completion path swaps in a closed sentinel so no successor can
	// attach to a finished predecessor (see releaseSuccessors).
	hasDeps  bool
	depsLeft atomic.Int32
	succHead atomic.Pointer[succNode]

	// depTab is the dependence table for this task's *children*,
	// lazily created on the first dependent child; touched only by
	// the thread executing this task.
	depTab *depTracker
}

// futureRunner is the type-erased face of *Future[T]: the task struct
// cannot be generic, so Spawn hands its Future over as this interface
// and the execution paths call run in place of a body closure. This is
// what makes Spawn a one-allocation operation — the Future is the only
// per-spawn heap object (see future.go).
type futureRunner interface {
	runFuture(*Context)
}

// run invokes the task's work: the future runner when the task was
// created by Spawn, the plain body otherwise.
func (t *task) run(c *Context) {
	if t.fut != nil {
		t.fut.runFuture(c)
		return
	}
	t.body(c)
}

// TaskOpt configures a single task creation.
type TaskOpt func(*taskConfig)

type taskConfig struct {
	untied   bool
	ifClause bool
	final    bool
	captured int
	priority int32
	deps     []dep
	fut      futureRunner // set by Spawn only, not by any TaskOpt
}

// reset readies a (per-worker scratch) config for the next task
// directive, keeping the deps backing array.
func (cfg *taskConfig) reset() {
	cfg.untied = false
	cfg.ifClause = true
	cfg.final = false
	cfg.captured = 0
	cfg.priority = 0
	cfg.deps = cfg.deps[:0]
	cfg.fut = nil
}

// Untied marks the task untied: at scheduling points, a thread
// suspended in this task may execute or steal any ready task, not
// only descendants. (Mid-execution migration to another thread is not
// modeled; see DESIGN.md.)
func Untied() TaskOpt { return func(c *taskConfig) { c.untied = true } }

// If attaches an if clause to the task directive: when cond is false
// the task is undeferred and executes immediately on the encountering
// thread, but the runtime still performs task bookkeeping — exactly
// the distinction the BOTS paper draws between the if-clause cut-off
// (its Figure 1) and the manual cut-off (its Figure 2).
func If(cond bool) TaskOpt { return func(c *taskConfig) { c.ifClause = cond } }

// Final marks the task final: all of its descendants are undeferred.
func Final(cond bool) TaskOpt { return func(c *taskConfig) { c.final = cond } }

// Captured declares the number of bytes of captured environment
// (firstprivate data) copied into the task. It feeds the Table II
// accounting and the creation-cost model; it has no semantic effect.
func Captured(bytes int) TaskOpt { return func(c *taskConfig) { c.captured = bytes } }

// isDescendantOf reports whether t is a descendant of anc.
func (t *task) isDescendantOf(anc *task) bool {
	for p := t.parent; p != nil; p = p.parent {
		if p == anc {
			return true
		}
		if p.depth <= anc.depth {
			return false
		}
	}
	return false
}

// finish performs completion bookkeeping for t on worker w: release
// dependent successor tasks, recycle the dependence table of t's
// children, decrement the team's live-task count, the enclosing
// taskgroup's live count, and the parent's pending count, waking a
// parked taskwait if this was the last outstanding child. The task
// itself is buried for region-end recycling (it was enqueued, so
// stale thief reads may still inspect it; see pool.go).
//
// finish and finishInline are the only two places the team live-task
// count is decremented, and every task goes through exactly one of
// them exactly once — deferred tasks through execute's deferred
// finish (which runs once even when the body panics), undeferred
// tasks through the Task undeferred path's deferred finishInline.
// TestLiveTasksReturnToZero pins this invariant; recycling depends on
// it (a double decrement would also double-recycle a task).
func (t *task) finish(w *worker) {
	if fr := t.team.fr; fr != nil {
		fr.Record(w.id, obs.EvFinish, int64(t.depth))
	}
	t.releaseSuccessors(w)
	if t.depTab != nil {
		recycleDepTab(t.depTab)
		t.depTab = nil
	}
	// The live count drops before the completion signals below: anyone
	// released by this task's completion (a taskwait in the parent, a
	// persistent-team SubmitWait) must observe the team already drained
	// of this task. Unreleased dependent successors hold their own live
	// counts, so the early decrement cannot let a barrier (or a
	// persistent team's quiescence check) pass while work remains.
	t.team.liveTasks.Add(-1)
	wake := false
	if p := t.parent; p != nil {
		if p.pending.Add(-1) == 0 {
			wake = true // a taskwait may be parked in the parent
		}
	}
	if t.group != nil && t.group.leave() {
		wake = true // a Taskgroup drain may be parked on the group
		if s := t.group.sub; s != nil {
			// The group is a persistent-team submission and this was
			// its last live task: complete the submission (signal its
			// waiter or run its callback; see persistent.go).
			s.complete()
		}
	}
	if wake {
		t.team.wakeWaiters()
	}
	// A single-worker team has no thieves, so finished deferred tasks
	// are not stale-readable and can recycle immediately — unless a
	// constraint walk can still reach this task from a queued
	// descendant (spawnedDeferred) or the parent's dependence table
	// still names it as a predecessor (hasDeps).
	if len(t.team.workers) == 1 && !t.spawnedDeferred && !t.hasDeps {
		w.recycle(t)
		return
	}
	w.bury(t)
}

// park blocks until a completion broadcast arrives or the task's
// pending count is observed at zero. The check-then-sleep is made
// race-free by the waitPark registration protocol (waitParkers is
// incremented before the re-check; see Team.wakeWaiters for the
// ordering argument), replacing the old per-task mutex + lazily
// allocated wake channel.
func (t *task) park() {
	t.team.waitPark(func() bool { return t.pending.Load() == 0 })
}
