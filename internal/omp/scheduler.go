package omp

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Scheduler is the pluggable task-placement engine of one team: every
// decision about where a ready task is queued and which ready task a
// worker consumes or steals next lives behind this interface. The
// BOTS paper evaluates the same task graphs under different runtime
// scheduler configurations (work-first vs breadth-first local order,
// centralized vs distributed queues); making the scheduler a named,
// registered object turns that axis — and anything beyond it, like
// NUMA- or load-adaptive placement — into a sweepable dimension.
//
// A Scheduler instance belongs to exactly one parallel region. The
// team calls the lifecycle hooks Init (before any worker runs) and
// Fini (after the final barrier, with all queues drained); the
// per-worker operations identify the calling worker by its team slot.
//
// Contract (verified by the conformance suite in
// sched_conformance_test.go against every registered scheduler):
//
//   - Push(self, t) is called only by the worker occupying slot self
//     (task creation and dependence release are owner-side
//     operations), but the pushed task may be consumed by any worker.
//   - PopLocal/Steal with a non-nil pred must never return a task
//     rejected by pred. pred is a pure function of the task and may
//     be called on tasks that are not ultimately returned.
//   - Progress rule: a worker suspended in a tied task calls
//     PopLocal with a pred accepting only descendants. Its unstarted
//     children are its own most recent pushes, so a scheduler with
//     per-worker local order must serve a constrained PopLocal from
//     the newest-first (LIFO) end — with FIFO consumption those
//     children could sit buried behind non-descendants and every
//     worker could park with runnable tasks queued. Pool schedulers
//     must instead scan for an admissible task.
//   - Queued(self) is the ready backlog cut-off policies see; for
//     pool schedulers it is the shared backlog.
type Scheduler interface {
	// Name returns the scheduler's registry name.
	Name() string
	// Init sizes the scheduler for a team of n workers. It is called
	// exactly once, before any worker starts.
	Init(n int)
	// Push makes t runnable on behalf of the worker in slot self.
	Push(self int, t *task)
	// PopLocal returns the next task from self's local queue area (or
	// from the shared pool, for pool schedulers), honouring pred, or
	// nil when nothing admissible is locally available.
	PopLocal(self int, pred func(*task) bool) *task
	// Steal takes a task queued on behalf of some other worker,
	// honouring pred, or returns nil. Pool schedulers with no
	// per-worker queues may always return nil.
	Steal(self int, pred func(*task) bool) *task
	// Queued reports self's ready backlog, as seen by queue-depth
	// cut-off policies.
	Queued(self int) int64
	// Fini is the region-end lifecycle hook, called once after the
	// final barrier with every queue drained.
	Fini()
}

// DefaultScheduler is the registry name selected by an empty
// scheduler name everywhere (team option, core config, lab specs,
// CLI flags).
const DefaultScheduler = "workfirst"

var (
	schedMu  sync.RWMutex
	schedReg = map[string]func() Scheduler{}
)

// RegisterScheduler adds a scheduler constructor under name. The
// constructor returns a fresh, un-Init-ed instance per call (one per
// parallel region). It panics on empty or duplicate names; it is
// meant to be called from init functions.
func RegisterScheduler(name string, ctor func() Scheduler) {
	if name == "" || ctor == nil {
		panic("omp: invalid scheduler registration")
	}
	schedMu.Lock()
	defer schedMu.Unlock()
	if _, dup := schedReg[name]; dup {
		panic(fmt.Sprintf("omp: duplicate scheduler %q", name))
	}
	schedReg[name] = ctor
}

// Schedulers returns the sorted names of every registered scheduler —
// the single vocabulary CLI flags, lab manifests and reports validate
// against.
func Schedulers() []string {
	schedMu.RLock()
	defer schedMu.RUnlock()
	names := make([]string, 0, len(schedReg))
	for n := range schedReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewScheduler returns a fresh instance of the named scheduler. The
// empty name selects DefaultScheduler. Unknown names error with the
// full registered vocabulary, so every layer that resolves a
// scheduler name reports the same message.
func NewScheduler(name string) (Scheduler, error) {
	if name == "" {
		name = DefaultScheduler
	}
	schedMu.RLock()
	ctor := schedReg[name]
	schedMu.RUnlock()
	if ctor == nil {
		return nil, fmt.Errorf("omp: unknown scheduler %q (have %s)", name, strings.Join(Schedulers(), "/"))
	}
	return ctor(), nil
}

func init() {
	RegisterScheduler("workfirst", func() Scheduler {
		return &dequeScheduler{name: "workfirst"}
	})
	RegisterScheduler("breadthfirst", func() Scheduler {
		return &dequeScheduler{name: "breadthfirst", fifoLocal: true}
	})
	RegisterScheduler("locality", func() Scheduler {
		return &dequeScheduler{name: "locality", stealHalf: true, affinity: true}
	})
	RegisterScheduler("centralized", func() Scheduler {
		return &centralScheduler{}
	})
}

// dequeScheduler is the distributed-queue scheduler family: one
// Chase–Lev deque plus one priority queue per worker. Three of the
// registered schedulers are configurations of it:
//
//   - workfirst: the owner pops its own deque LIFO (depth-first), the
//     classic work-stealing discipline; thieves steal FIFO from the
//     top, taking the shallowest (largest) subtrees.
//   - breadthfirst: the owner consumes its own deque FIFO as well, so
//     tasks execute roughly in creation order.
//   - locality: work-first local order plus affinity stealing — a
//     thief returns to its last successful victim before sweeping,
//     and an unconstrained steal takes half the victim's backlog in
//     one raid (steal-half), amortizing steal traffic and keeping
//     related subtrees on one worker.
type dequeScheduler struct {
	name      string
	fifoLocal bool // own-queue FIFO when unconstrained (breadthfirst)
	stealHalf bool // bulk-steal half the victim's backlog (locality)
	affinity  bool // retry the last successful victim first (locality)
	ws        []schedSlot
}

// schedSlot is one worker's queue state, padded so owner-written
// fields of adjacent slots do not share a cache line. qp is the
// pooled wrapper the queues arrived in, kept so Fini can return it
// without allocating a fresh one.
type schedSlot struct {
	dq         *deque
	pq         *prioQueue
	qp         *queuePair
	rng        uint64 // victim-selection PRNG state, owner-only
	lastVictim int    // last successful steal victim, owner-only
	_          [16]byte
}

// queuePair is the pooled storage unit of the distributed schedulers:
// one worker's deque and priority queue, kept (with their grown rings
// and item arrays) across parallel regions. A scheduler instance
// belongs to one region, but its queue storage is the steady-state
// allocation cost of opening a region — pooling it means a program
// that opens regions in a loop stops allocating queue storage at all.
type queuePair struct {
	dq *deque
	pq *prioQueue
}

var queuePairPool = sync.Pool{New: func() any {
	return &queuePair{dq: newDeque(), pq: &prioQueue{}}
}}

func (d *dequeScheduler) Name() string { return d.name }

func (d *dequeScheduler) Init(n int) {
	d.ws = make([]schedSlot, n)
	for i := range d.ws {
		q := queuePairPool.Get().(*queuePair)
		d.ws[i] = schedSlot{
			dq:         q.dq,
			pq:         q.pq,
			qp:         q,
			rng:        uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
			lastVictim: -1,
		}
	}
}

// Fini returns the (drained) queue storage to the pool, clearing
// stale task pointers first so pooled queues do not pin the finished
// region's tasks.
func (d *dequeScheduler) Fini() {
	for i := range d.ws {
		s := &d.ws[i]
		s.dq.clearStale()
		s.pq.clearStale()
		queuePairPool.Put(s.qp)
		s.dq, s.pq, s.qp = nil, nil, nil
	}
	d.ws = nil
}

func (d *dequeScheduler) Push(self int, t *task) {
	s := &d.ws[self]
	if t.priority != 0 {
		s.pq.push(t)
		return
	}
	s.dq.pushBottom(t)
}

func (d *dequeScheduler) PopLocal(self int, pred func(*task) bool) *task {
	s := &d.ws[self]
	// Prioritized tasks run before anything in the regular deque.
	if t := s.pq.take(pred); t != nil {
		return t
	}
	if pred == nil {
		if d.fifoLocal {
			return s.dq.steal() // FIFO end of own deque
		}
		return s.dq.popBottom()
	}
	// A constrained (tied) waiter must use the LIFO bottom end
	// regardless of local order: its own unstarted children are always
	// the most recent pushes (the progress rule above).
	t := s.dq.popBottom()
	if t != nil && !pred(t) {
		// Cannot run it here now; put it back for thieves and park.
		s.dq.pushBottom(t)
		return nil
	}
	return t
}

func (d *dequeScheduler) Steal(self int, pred func(*task) bool) *task {
	n := len(d.ws)
	if n == 1 {
		return nil
	}
	me := &d.ws[self]
	if d.affinity && me.lastVictim >= 0 && me.lastVictim != self {
		if t := d.takeFrom(self, me.lastVictim, pred); t != nil {
			return t
		}
	}
	// Random victim, then sweep the rest.
	start := int(nextRand(&me.rng) % uint64(n))
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == self {
			continue
		}
		if t := d.takeFrom(self, v, pred); t != nil {
			if d.affinity {
				me.lastVictim = v
			}
			return t
		}
	}
	if d.affinity {
		me.lastVictim = -1
	}
	return nil
}

// takeFrom raids one victim: its priority queue before its deque.
// With steal-half enabled and no constraint, a successful deque steal
// also moves up to half the victim's remaining backlog onto the
// thief's own deque (the thief owns its bottom end, so pushBottom is
// safe here); a constrained thief takes a single admissible task —
// bulk-moving tasks it may not be allowed to run would only bury them.
//
// Relocation can bury a tied waiter's unstarted child mid-deque on
// another worker, where neither the waiter's constrained PopLocal
// (own bottom only) nor Steal (victims' tops only) reaches it. This
// weakens the progress rule's premise ("a waiter's children are its
// own most recent pushes") but not liveness: the park/wake protocol
// guarantees every parked waiter is woken by each child completion
// and by dependence release (enqueueReleased), and the holder's own
// progress — its newest pushes are its own children, whose
// completions wake it in turn — eventually pops or exposes buried
// tasks at an accessible end. A future scheduler that relocates
// tasks *and* parks without those wakes would deadlock; keep both
// halves of the protocol.
func (d *dequeScheduler) takeFrom(self, victim int, pred func(*task) bool) *task {
	vs := &d.ws[victim]
	if t := vs.pq.take(pred); t != nil {
		return t
	}
	t := vs.dq.stealIf(pred)
	if t == nil {
		return nil
	}
	if d.stealHalf && pred == nil {
		me := &d.ws[self]
		for k := vs.dq.size() / 2; k > 0; k-- {
			e := vs.dq.steal()
			if e == nil {
				break
			}
			me.dq.pushBottom(e)
		}
	}
	return t
}

func (d *dequeScheduler) Queued(self int) int64 {
	s := &d.ws[self]
	return s.dq.size() + s.pq.size()
}

// nextRand is xorshift64* for victim selection.
func nextRand(state *uint64) uint64 {
	x := *state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*state = x
	return x * 0x2545f4914f6cdd1d
}

// centralScheduler is the classic breadth-first pool configuration
// from the paper's design space: a single shared team queue. Every
// deferred task goes into one FIFO (prioritized tasks into one shared
// priority queue, drained first); every worker takes from the front,
// so tasks execute globally in roughly creation order and there is no
// stealing — and, past a few threads, no queue-level locality either,
// which is exactly the contention-vs-balance trade-off the
// centralized-vs-distributed ablation measures.
type centralScheduler struct {
	pq      *prioQueue // shared: prioritized tasks, drained before the FIFO
	mu      sync.Mutex
	fifo    []*task // shared FIFO; head is the index of the oldest task
	head    int
	storage *centralStorage // pooled wrapper, returned whole in Fini
}

// centralStorage is the pooled queue storage of the centralized
// scheduler: the FIFO's backing array and the shared priority queue
// survive the per-region scheduler instance (the distributed
// schedulers pool their queue storage the same way; see
// queuePairPool).
type centralStorage struct {
	fifo []*task
	pq   *prioQueue
}

var centralStoragePool = sync.Pool{New: func() any {
	return &centralStorage{fifo: make([]*task, 0, initialDequeCap), pq: &prioQueue{}}
}}

func (c *centralScheduler) Name() string { return "centralized" }

func (c *centralScheduler) Init(n int) {
	c.storage = centralStoragePool.Get().(*centralStorage)
	c.fifo = c.storage.fifo[:0]
	c.pq = c.storage.pq
}

func (c *centralScheduler) Fini() {
	fifo := c.fifo[:cap(c.fifo)]
	for i := range fifo {
		fifo[i] = nil
	}
	c.storage.fifo = fifo[:0]
	c.pq.clearStale()
	centralStoragePool.Put(c.storage)
	c.fifo, c.head, c.pq, c.storage = nil, 0, nil, nil
}

func (c *centralScheduler) Push(self int, t *task) {
	if t.priority != 0 {
		c.pq.push(t)
		return
	}
	c.mu.Lock()
	c.fifo = append(c.fifo, t)
	c.mu.Unlock()
}

// PopLocal takes from the shared pool: the highest-priority task
// first, then the oldest admissible FIFO entry. A constrained waiter
// scans the whole queue — with a single pool that scan is the only
// way its unstarted children stay reachable (the progress rule).
func (c *centralScheduler) PopLocal(self int, pred func(*task) bool) *task {
	if t := c.pq.take(pred); t != nil {
		return t
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := c.head; i < len(c.fifo); i++ {
		t := c.fifo[i]
		if pred != nil && !pred(t) {
			continue
		}
		if i == c.head {
			c.fifo[i] = nil
			c.head++
			if c.head > len(c.fifo)/2 && c.head > 32 {
				c.fifo = append(c.fifo[:0], c.fifo[c.head:]...)
				c.head = 0
			}
		} else {
			c.fifo = append(c.fifo[:i], c.fifo[i+1:]...)
		}
		return t
	}
	return nil
}

// Steal always fails: a single shared queue has nothing worker-local
// to steal from; PopLocal already reaches every queued task.
func (c *centralScheduler) Steal(self int, pred func(*task) bool) *task { return nil }

// Queued reports the shared backlog — the same value for every
// worker, so a MaxQueue cut-off bounds the team queue as a whole.
func (c *centralScheduler) Queued(self int) int64 {
	c.mu.Lock()
	n := len(c.fifo) - c.head
	c.mu.Unlock()
	return int64(n) + c.pq.size()
}
