package omp

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Scheduler is the pluggable task-placement engine of one team: every
// decision about where a ready task is queued and which ready task a
// worker consumes or steals next lives behind this interface. The
// BOTS paper evaluates the same task graphs under different runtime
// scheduler configurations (work-first vs breadth-first local order,
// centralized vs distributed queues); making the scheduler a named,
// registered object turns that axis — and anything beyond it, like
// NUMA- or load-adaptive placement — into a sweepable dimension.
//
// A Scheduler instance belongs to exactly one parallel region. The
// team calls the lifecycle hooks Init (before any worker runs) and
// Fini (after the final barrier, with all queues drained); the
// per-worker operations identify the calling worker by its team slot.
//
// Contract (verified by the conformance suite in
// sched_conformance_test.go against every registered scheduler):
//
//   - Push(self, t) is called only by the worker occupying slot self
//     (task creation and dependence release are owner-side
//     operations), but the pushed task may be consumed by any worker.
//   - PopLocal/Steal with a non-nil pred must never return a task
//     rejected by pred. pred is a pure function of the task and may
//     be called on tasks that are not ultimately returned.
//   - Progress rule: a worker suspended in a tied task calls
//     PopLocal with a pred accepting only descendants. Its unstarted
//     children are its own most recent pushes, so a scheduler with
//     per-worker local order must serve a constrained PopLocal from
//     the newest-first (LIFO) end — with FIFO consumption those
//     children could sit buried behind non-descendants and every
//     worker could park with runnable tasks queued. Pool schedulers
//     must instead scan for an admissible task.
//   - Queued(self) is the ready backlog cut-off policies see; for
//     pool schedulers it is the shared backlog.
type Scheduler interface {
	// Name returns the scheduler's registry name.
	Name() string
	// Init sizes the scheduler for a team of n workers. It is called
	// exactly once, before any worker starts.
	Init(n int)
	// Push makes t runnable on behalf of the worker in slot self.
	Push(self int, t *task)
	// PopLocal returns the next task from self's local queue area (or
	// from the shared pool, for pool schedulers), honouring pred, or
	// nil when nothing admissible is locally available.
	PopLocal(self int, pred func(*task) bool) *task
	// Steal takes a task queued on behalf of some other worker,
	// honouring pred, or returns nil. Pool schedulers with no
	// per-worker queues may always return nil.
	Steal(self int, pred func(*task) bool) *task
	// Queued reports self's ready backlog, as seen by queue-depth
	// cut-off policies.
	Queued(self int) int64
	// Fini is the region-end lifecycle hook, called once after the
	// final barrier with every queue drained.
	Fini()
}

// workAdvertiser is the optional scheduler extension behind the
// team-level work-advertisement word: HasStealableWork(self) reports,
// from shared atomic state maintained by Push/PopLocal/Steal, whether
// any *other* worker currently advertises queued work. When a
// scheduler implements it, an idle worker consults the word before a
// steal attempt and, on "no work anywhere", goes straight to the
// doorbell park instead of sweeping every victim's queue top — an
// O(P) cascade of remote cache-line probes per idle loop otherwise.
//
// The word must be conservative toward liveness: a queue that is
// non-empty must (after any in-flight operations complete) have its
// advertisement set. A falsely-set bit only costs one wasted sweep;
// a falsely-clear bit would strand queued work behind parked thieves.
// See advMask for the clear/recheck protocol that guarantees this.
type workAdvertiser interface {
	HasStealableWork(self int) bool
}

// seededScheduler is the optional extension for schedulers whose
// decisions are randomized: SchedulerSeed returns the region's
// victim-selection seed, surfaced in Stats (and therefore in
// `bots -json` records) for reproducibility.
type seededScheduler interface {
	SchedulerSeed() uint64
}

// DefaultScheduler is the registry name selected by an empty
// scheduler name everywhere (team option, core config, lab specs,
// CLI flags).
const DefaultScheduler = "workfirst"

// schedCtor builds a scheduler from the parsed integer arguments of a
// parameterized name (empty for the bare form) — the same arrangement
// the cut-off registry uses, so lab manifests can sweep scheduler
// *parameters* (today: the steal batch), not just scheduler kinds.
type schedCtor func(args []int64) (Scheduler, error)

var (
	schedMu  sync.RWMutex
	schedReg = map[string]schedCtor{}
)

// regionSeq counts parallel regions process-wide; the distributed
// schedulers mix it into their victim-selection seed so repeated
// regions do not replay identical steal orders (a program that opens
// the same region in a loop would otherwise see the same victim
// sequence every iteration, hiding order-dependent behaviour).
var regionSeq atomic.Uint64

// splitmix64 is the seed mixer (Steele et al.): it turns the small
// sequential region numbers into well-distributed 64-bit seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RegisterScheduler adds a scheduler constructor under name. The
// constructor returns a fresh, un-Init-ed instance per call (one per
// parallel region). It panics on empty or duplicate names; it is
// meant to be called from init functions. Schedulers registered
// through this entry point take no name parameters; the in-package
// deque family registers parameterized constructors directly.
func RegisterScheduler(name string, ctor func() Scheduler) {
	if ctor == nil {
		panic("omp: invalid scheduler registration")
	}
	registerSchedulerParam(name, func(args []int64) (Scheduler, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("omp: scheduler %q takes no parameters", name)
		}
		return ctor(), nil
	})
}

func registerSchedulerParam(name string, ctor schedCtor) {
	if name == "" || ctor == nil {
		panic("omp: invalid scheduler registration")
	}
	schedMu.Lock()
	defer schedMu.Unlock()
	if _, dup := schedReg[name]; dup {
		panic(fmt.Sprintf("omp: duplicate scheduler %q", name))
	}
	schedReg[name] = ctor
}

// Schedulers returns the sorted names of every registered scheduler —
// the single vocabulary CLI flags, lab manifests and reports validate
// against.
func Schedulers() []string {
	schedMu.RLock()
	defer schedMu.RUnlock()
	names := make([]string, 0, len(schedReg))
	for n := range schedReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewScheduler returns a fresh instance of the named scheduler — bare
// ("workfirst") or parameterized ("workfirst(8)", overriding the
// steal batch for the deque family). The empty name selects
// DefaultScheduler. It accepts exactly the strings Scheduler.Name
// renders, so names recorded in lab stores always resolve back to the
// configuration that produced them. Unknown names error with the full
// registered vocabulary, so every layer that resolves a scheduler
// name reports the same message.
func NewScheduler(name string) (Scheduler, error) {
	if name == "" {
		name = DefaultScheduler
	}
	base, args, err := parseParamName("scheduler", name)
	if err != nil {
		return nil, err
	}
	schedMu.RLock()
	ctor := schedReg[base]
	schedMu.RUnlock()
	if ctor == nil {
		return nil, fmt.Errorf("omp: unknown scheduler %q (have %s)", base, strings.Join(Schedulers(), "/"))
	}
	return ctor(args)
}

// dequeCtor builds the parameterized constructor of one deque-family
// configuration: zero arguments select the default steal batch, one
// argument overrides it (name(batch); batch 1 restores the classic
// single-task steal).
func dequeCtor(base string, fifoLocal, affinity bool) schedCtor {
	return func(args []int64) (Scheduler, error) {
		batch := int64(defaultStealBatch)
		switch len(args) {
		case 0:
		case 1:
			batch = args[0]
			if batch < 1 || batch > maxStealBatch {
				return nil, fmt.Errorf("omp: scheduler %s steal batch must be in [1,%d], got %d", base, maxStealBatch, batch)
			}
		default:
			return nil, fmt.Errorf("omp: scheduler %q takes at most one parameter (%s(batch))", base, base)
		}
		return &dequeScheduler{name: base, fifoLocal: fifoLocal, affinity: affinity, stealBatch: int(batch)}, nil
	}
}

func init() {
	registerSchedulerParam("workfirst", dequeCtor("workfirst", false, false))
	registerSchedulerParam("breadthfirst", dequeCtor("breadthfirst", true, false))
	registerSchedulerParam("locality", dequeCtor("locality", false, true))
	RegisterScheduler("centralized", func() Scheduler {
		return &centralScheduler{}
	})
}

// advMask is the work-advertisement word: one bit per worker slot,
// set when that worker's queue area is (conservatively) non-empty.
// Idle thieves read it instead of probing every victim's queue top.
//
// Maintenance protocol, relied on by the liveness argument in
// Team.barrier:
//
//   - The owner pushes to its queues FIRST and sets its bit after
//     (set may skip the CAS when the bit is already visible — see the
//     interleaving argument below).
//   - The owner clears its own bit only after a pop that left its
//     queue area empty. Only the owner ever pushes to its own queues
//     (dependence release enqueues on the releasing worker), so this
//     observation cannot be invalidated concurrently.
//   - A thief that observed a victim's queues empty clears the
//     victim's bit, RE-CHECKS the victim's queues, and re-sets the
//     bit if they are non-empty.
//
// Why the skip-if-set push is safe against a racing thief clear
// (sequentially-consistent atomics): if the pusher's load saw the bit
// set, the thief's clear is ordered after that load, hence after the
// queue push; the thief's recheck is ordered after its own clear and
// therefore observes the pushed task and restores the bit. Either
// way a non-empty queue ends with its bit set.
type advMask struct {
	words []atomic.Uint64
}

// init allocates the mask for a team of n workers. Scheduler
// instances are constructed fresh per region (see RegisterScheduler),
// so there is no prior storage to reuse.
func (a *advMask) init(n int) {
	a.words = make([]atomic.Uint64, (n+63)/64)
}

func (a *advMask) set(i int) {
	w := &a.words[i>>6]
	bit := uint64(1) << (uint(i) & 63)
	for {
		old := w.Load()
		if old&bit != 0 {
			return
		}
		if w.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

func (a *advMask) clear(i int) {
	w := &a.words[i>>6]
	bit := uint64(1) << (uint(i) & 63)
	for {
		old := w.Load()
		if old&bit == 0 {
			return
		}
		if w.CompareAndSwap(old, old&^bit) {
			return
		}
	}
}

// anyOther reports whether any slot besides self advertises work.
func (a *advMask) anyOther(self int) bool {
	selfWord, selfBit := self>>6, uint64(1)<<(uint(self)&63)
	for i := range a.words {
		v := a.words[i].Load()
		if i == selfWord {
			v &^= selfBit
		}
		if v != 0 {
			return true
		}
	}
	return false
}

// dequeScheduler is the distributed-queue scheduler family: one
// Chase–Lev deque plus one priority queue per worker. Three of the
// registered schedulers are configurations of it:
//
//   - workfirst: the owner pops its own deque LIFO (depth-first), the
//     classic work-stealing discipline; thieves steal FIFO from the
//     top, taking the shallowest (largest) subtrees.
//   - breadthfirst: the owner consumes its own deque FIFO as well, so
//     tasks execute roughly in creation order.
//   - locality: work-first local order plus affinity stealing — a
//     thief returns to its last successful victim before sweeping.
//
// All three steal in batches by default: an unconstrained raid takes
// up to half the victim's backlog (capped by the steal batch) in one
// visit, amortizing victim selection, advertisement maintenance and
// the thief's own publish over many tasks. The batch is the family's
// registry parameter — "workfirst(1)" restores single-task stealing,
// "workfirst(8)" caps a raid at 8 tasks — so the knob is sweepable
// through lab manifests like the cut-off limits are.
//
// All three maintain the work-advertisement word (advMask), so an
// idle team parks on the doorbell instead of sweeping P empty queue
// tops per probe.
type dequeScheduler struct {
	name       string
	fifoLocal  bool // own-queue FIFO when unconstrained (breadthfirst)
	affinity   bool // retry the last successful victim first (locality)
	stealBatch int  // max tasks per raid; <=1 means classic single steal
	seed       uint64
	ws         []schedSlot
	adv        advMask
}

// defaultStealBatch is the raid cap the bare deque-family names
// select (half the victim's backlog is taken, but never more than
// this). maxStealBatch bounds the parameterized form; it also sizes
// the per-slot raid buffer, so it is kept small.
const (
	defaultStealBatch = 32
	maxStealBatch     = 256
)

// schedSlot is one worker's queue state, padded to a full cache line
// so owner-written fields of adjacent slots never share one (the
// false-sharing audit in DESIGN.md §12 measures why). qp is the
// pooled wrapper the queues arrived in, kept so Fini can return it
// without allocating a fresh one. batchBuf is the owner-only raid
// scratch the steal-batch path fills and drains (its backing array
// lives in the pooled queuePair).
type schedSlot struct {
	dq         *deque
	pq         *prioQueue
	qp         *queuePair
	batchBuf   []*task
	rng        uint64 // victim-selection PRNG state, owner-only
	lastVictim int    // last successful steal victim, owner-only
	// Pad the 64 bytes of fields to 128 — two cache lines, so a slot
	// never shares a line with its neighbours regardless of where the
	// backing array starts, and the adjacent-line prefetcher cannot
	// couple neighbouring slots either. Size pinned by TestPaddedLayout.
	_ [64]byte
}

// queuePair is the pooled storage unit of the distributed schedulers:
// one worker's deque, priority queue and raid buffer, kept (with
// their grown rings and item arrays) across parallel regions. A
// scheduler instance belongs to one region, but its queue storage is
// the steady-state allocation cost of opening a region — pooling it
// means a program that opens regions in a loop stops allocating queue
// storage at all.
type queuePair struct {
	dq  *deque
	pq  *prioQueue
	buf []*task // raid scratch; grown to the region's steal batch
}

var queuePairPool = sync.Pool{New: func() any {
	return &queuePair{dq: newDeque(), pq: &prioQueue{}}
}}

// Name renders the registry form NewScheduler parses back: the bare
// family name at the default steal batch, name(batch) otherwise — so
// the batch knob rides inside every recorded policy string (lab keys,
// bots -json) with no schema change.
func (d *dequeScheduler) Name() string {
	if d.stealBatch == defaultStealBatch {
		return d.name
	}
	return fmt.Sprintf("%s(%d)", d.name, d.stealBatch)
}

// SchedulerSeed returns the region's victim-selection seed (mixed
// from the process-wide region sequence number), surfaced in Stats
// for reproducibility of steal orders.
func (d *dequeScheduler) SchedulerSeed() uint64 { return d.seed }

func (d *dequeScheduler) Init(n int) {
	d.seed = splitmix64(regionSeq.Add(1))
	d.adv.init(n)
	d.ws = make([]schedSlot, n)
	for i := range d.ws {
		q := queuePairPool.Get().(*queuePair)
		rng := splitmix64(d.seed + uint64(i))
		if rng == 0 {
			rng = 0x2545f4914f6cdd1d // xorshift64* needs a non-zero state
		}
		if need := d.stealBatch - 1; need > 0 && cap(q.buf) < need {
			q.buf = make([]*task, need)
		}
		d.ws[i] = schedSlot{
			dq:         q.dq,
			pq:         q.pq,
			qp:         q,
			batchBuf:   q.buf[:cap(q.buf)],
			rng:        rng,
			lastVictim: -1,
		}
	}
}

// Fini returns the (drained) queue storage to the pool, clearing
// stale task pointers first so pooled queues do not pin the finished
// region's tasks.
func (d *dequeScheduler) Fini() {
	for i := range d.ws {
		s := &d.ws[i]
		s.dq.clearStale()
		s.pq.clearStale()
		clearTasks(s.batchBuf) // raid scratch must not pin tasks in the pool
		queuePairPool.Put(s.qp)
		s.dq, s.pq, s.qp, s.batchBuf = nil, nil, nil, nil
	}
	d.ws = nil
}

func (d *dequeScheduler) Push(self int, t *task) {
	s := &d.ws[self]
	if t.priority != 0 {
		s.pq.push(t)
	} else {
		s.dq.pushBottom(t)
	}
	// Advertise after the push (see advMask for why this order is the
	// one that can never leave a non-empty queue unadvertised).
	d.adv.set(self)
}

// slotEmpty reports whether slot i's queue area is currently empty.
func (d *dequeScheduler) slotEmpty(i int) bool {
	s := &d.ws[i]
	return s.dq.size() == 0 && s.pq.size() == 0
}

func (d *dequeScheduler) PopLocal(self int, pred func(*task) bool) *task {
	s := &d.ws[self]
	t := d.popLocalRaw(self, s, pred)
	if t != nil && d.slotEmpty(self) {
		// Owner-side clear: only the owner pushes to these queues, so
		// the emptiness observation cannot be invalidated before the
		// clear lands (thieves only remove).
		d.adv.clear(self)
	}
	return t
}

func (d *dequeScheduler) popLocalRaw(self int, s *schedSlot, pred func(*task) bool) *task {
	// Prioritized tasks run before anything in the regular deque.
	if t := s.pq.take(pred); t != nil {
		return t
	}
	if pred == nil {
		if d.fifoLocal {
			return s.dq.steal() // FIFO end of own deque
		}
		return s.dq.popBottom()
	}
	// A constrained (tied) waiter must use the LIFO bottom end
	// regardless of local order: its own unstarted children are always
	// the most recent pushes (the progress rule above).
	t := s.dq.popBottom()
	if t != nil && !pred(t) {
		// Cannot run it here now; put it back for thieves and park.
		s.dq.pushBottom(t)
		// Re-advertise: the queue was transiently empty between the
		// pop and the push-back, and a thief's clearVictim recheck may
		// have straddled exactly that window and left the bit clear.
		// Without this set the queue could sit non-empty but
		// unadvertised forever (every other path that makes the slot
		// non-empty goes through Push), gating thieves off work they
		// are the only workers able to run.
		d.adv.set(self)
		return nil
	}
	return t
}

// HasStealableWork reports the advertisement word: whether any other
// worker's queue area advertises queued tasks. The team's idle loop
// consults it before a steal attempt (see worker.runOne).
func (d *dequeScheduler) HasStealableWork(self int) bool {
	return d.adv.anyOther(self)
}

func (d *dequeScheduler) Steal(self int, pred func(*task) bool) *task {
	n := len(d.ws)
	if n == 1 {
		return nil
	}
	me := &d.ws[self]
	if d.affinity && me.lastVictim >= 0 && me.lastVictim != self {
		if t := d.takeFrom(self, me.lastVictim, pred); t != nil {
			return t
		}
	}
	// Random victim, then sweep the rest.
	start := int(nextRand(&me.rng) % uint64(n))
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == self {
			continue
		}
		if t := d.takeFrom(self, v, pred); t != nil {
			if d.affinity {
				me.lastVictim = v
			}
			return t
		}
	}
	if d.affinity {
		me.lastVictim = -1
	}
	return nil
}

// takeFrom raids one victim: its priority queue before its deque.
// With a steal batch above one and no constraint, a successful deque
// steal also moves up to min(batch-1, half the victim's remaining
// backlog) onto the thief's own deque in one raid — the per-item
// steals run inside the deque (stealBatchInto) and land with a single
// batched publish (pushBottomBatch; the thief owns its bottom end).
// A constrained thief takes a single admissible task — bulk-moving
// tasks it may not be allowed to run would only bury them.
//
// Relocation can bury a tied waiter's unstarted child mid-deque on
// another worker, where neither the waiter's constrained PopLocal
// (own bottom only) nor Steal (victims' tops only) reaches it. This
// weakens the progress rule's premise ("a waiter's children are its
// own most recent pushes") but not liveness: the park/wake protocol
// guarantees every parked waiter is woken by each child completion
// and by dependence release (enqueueReleased), and the holder's own
// progress — its newest pushes are its own children, whose
// completions wake it in turn — eventually pops or exposes buried
// tasks at an accessible end. A future scheduler that relocates
// tasks *and* parks without those wakes would deadlock; keep both
// halves of the protocol.
func (d *dequeScheduler) takeFrom(self, victim int, pred func(*task) bool) *task {
	vs := &d.ws[victim]
	if t := vs.pq.take(pred); t != nil {
		if d.slotEmpty(victim) {
			d.clearVictim(victim)
		}
		return t
	}
	t := vs.dq.stealIf(pred)
	if t == nil {
		// Unconstrained and observed empty: retract the victim's
		// advertisement so future probes skip it. A constrained miss
		// proves nothing about emptiness.
		if pred == nil && d.slotEmpty(victim) {
			d.clearVictim(victim)
		}
		return nil
	}
	if d.stealBatch > 1 && pred == nil {
		me := &d.ws[self]
		k := int(vs.dq.size() / 2)
		if k > d.stealBatch-1 {
			k = d.stealBatch - 1
		}
		if k > 0 {
			if n := vs.dq.stealBatchInto(me.batchBuf[:k]); n > 0 {
				me.dq.pushBottomBatch(me.batchBuf[:n])
				clearTasks(me.batchBuf[:n]) // scratch must not pin tasks
				d.adv.set(self)             // relocated backlog is stealable from us now
			}
		}
	}
	if d.slotEmpty(victim) {
		d.clearVictim(victim)
	}
	return t
}

// clearVictim retracts victim's advertisement bit, then re-checks the
// victim's queues and restores the bit if they are non-empty — the
// thief-side half of the advMask protocol (a clear must never be the
// last word on a queue that concurrently received a push).
func (d *dequeScheduler) clearVictim(victim int) {
	d.adv.clear(victim)
	if !d.slotEmpty(victim) {
		d.adv.set(victim)
	}
}

func (d *dequeScheduler) Queued(self int) int64 {
	s := &d.ws[self]
	return s.dq.size() + s.pq.size()
}

// nextRand is xorshift64* for victim selection.
func nextRand(state *uint64) uint64 {
	x := *state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*state = x
	return x * 0x2545f4914f6cdd1d
}

// centralRingCap is the bounded MPMC ring capacity of the centralized
// scheduler (tasks; a power of two). Backlogs beyond it spill to the
// mutex-guarded overflow list and are moved back in bulk, so the lock
// is amortized over ring-capacity tasks even when a breadth-first
// frontier overflows.
const centralRingCap = 1024

// centralScheduler is the classic breadth-first pool configuration
// from the paper's design space: a single shared team queue. Every
// deferred task goes into one queue (prioritized tasks into one
// shared priority queue, drained first); every worker takes from the
// front, so tasks execute globally in roughly creation order and
// there is no stealing — and, past a few threads, no queue-level
// locality either, which is exactly the contention-vs-balance
// trade-off the centralized-vs-distributed ablation measures.
//
// The hot path is a bounded lock-free MPMC ring (mpmc.go): Push and
// an unconstrained PopLocal are one CAS each, so the ablation
// measures the queue *discipline* (one shared FIFO vs distributed
// deques) rather than Go mutex convoy effects. The mutex guards only
// the two slow paths:
//
//   - overflow: pushes that find the ring full append to `over`;
//     consumers that find the ring empty move `over` back into the
//     ring in bulk (one lock per ~ring-capacity tasks);
//   - constrained scans: a tied waiter must be able to reach any
//     admissible queued task (the progress rule), so it drains the
//     ring and overflow into the `held` list under the mutex and
//     scans that newest-first — a waiter's own unstarted children are
//     its most recent pushes, so the scan typically succeeds within a
//     few entries from the tail. `held` entries are older than the
//     ring and are consumed first, preserving rough creation order;
//     mid-list removal nils the vacated tail slot eagerly so a
//     long-running region never pins finished tasks.
type centralScheduler struct {
	pq   *prioQueue // shared: prioritized tasks, drained before the FIFO
	ring *mpmcRing

	// nheld/nover let the lock-free fast path skip the mutex when the
	// slow-path lists are empty (the steady state).
	nheld atomic.Int32
	nover atomic.Int32

	mu       sync.Mutex
	held     []*task // drained by constrained scans; older than ring
	heldHead int     // index of the oldest live entry in held
	over     []*task // ring overflow; newer than ring

	storage *centralStorage // pooled wrapper, returned whole in Fini
}

// centralStorage is the pooled queue storage of the centralized
// scheduler: the MPMC ring, the slow-path lists and the shared
// priority queue survive the per-region scheduler instance (the
// distributed schedulers pool their queue storage the same way; see
// queuePairPool).
type centralStorage struct {
	ring *mpmcRing
	held []*task
	over []*task
	pq   *prioQueue
}

var centralStoragePool = sync.Pool{New: func() any {
	return &centralStorage{ring: newMPMCRing(centralRingCap), pq: &prioQueue{}}
}}

func (c *centralScheduler) Name() string { return "centralized" }

func (c *centralScheduler) Init(n int) {
	c.storage = centralStoragePool.Get().(*centralStorage)
	c.ring = c.storage.ring
	c.held = c.storage.held[:0]
	c.heldHead = 0
	c.over = c.storage.over[:0]
	c.pq = c.storage.pq
}

func (c *centralScheduler) Fini() {
	for t := c.ring.tryPop(); t != nil; t = c.ring.tryPop() {
		// The contract drains queues before Fini; defensively clear any
		// remainder so the pooled ring pins nothing.
	}
	clearTasks(c.held[:cap(c.held)])
	clearTasks(c.over[:cap(c.over)])
	c.storage.held = c.held[:0]
	c.storage.over = c.over[:0]
	c.pq.clearStale()
	centralStoragePool.Put(c.storage)
	c.ring, c.held, c.over, c.pq, c.storage = nil, nil, nil, nil, nil
	c.heldHead = 0
	c.nheld.Store(0)
	c.nover.Store(0)
}

func clearTasks(ts []*task) {
	for i := range ts {
		ts[i] = nil
	}
}

// Push enqueues lock-free while the ring has room; a full ring spills
// to the overflow list under the mutex.
func (c *centralScheduler) Push(self int, t *task) {
	if t.priority != 0 {
		c.pq.push(t)
		return
	}
	if c.ring.tryPush(t) {
		return
	}
	c.mu.Lock()
	c.over = append(c.over, t)
	c.nover.Store(int32(len(c.over)))
	c.mu.Unlock()
}

// PopLocal takes from the shared pool: the highest-priority task
// first, then the oldest available task. The unconstrained path is
// lock-free (one ring pop) unless a slow-path list is non-empty; a
// constrained waiter scans the whole queue under the mutex — with a
// single pool that scan is the only way its unstarted children stay
// reachable (the progress rule).
func (c *centralScheduler) PopLocal(self int, pred func(*task) bool) *task {
	if t := c.pq.take(pred); t != nil {
		return t
	}
	if pred != nil {
		return c.takeConstrained(pred)
	}
	for {
		// held entries are older than the ring: consume them first so
		// the pool keeps rough FIFO order across the slow path.
		if c.nheld.Load() > 0 {
			if t := c.popHeld(); t != nil {
				return t
			}
		}
		if t := c.ring.tryPop(); t != nil {
			return t
		}
		if c.nover.Load() > 0 && c.refillFromOverflow() {
			continue
		}
		// The ring was observed empty — but a concurrent constrained
		// scan may have drained it into held after the nheld check
		// above. The scan pre-stores a conservative non-zero nheld
		// before its first ring pop, so if our empty observation came
		// from its drain this re-load cannot miss it (and popHeld
		// blocks on the mutex until the scan ends). Without the
		// re-check, every task in transit from ring to held would be
		// invisible to this fast path for the duration of the scan,
		// and a barrier parker probing in that window could park with
		// work queued and no later ring to wake it.
		if c.nheld.Load() > 0 {
			continue
		}
		return nil
	}
}

// popHeld takes the oldest held entry under the mutex, nil-ing the
// vacated slot and compacting the backing array once the dead prefix
// dominates.
func (c *centralScheduler) popHeld() *task {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.heldHead >= len(c.held) {
		// Holding the mutex means no scan is in flight, so the exact
		// (zero) count can be restored here; a stale conservative
		// pre-store must not keep PopLocal's re-check looping.
		c.nheld.Store(0)
		return nil
	}
	t := c.held[c.heldHead]
	c.held[c.heldHead] = nil
	c.heldHead++
	if c.heldHead > len(c.held)/2 && c.heldHead > 32 {
		n := copy(c.held, c.held[c.heldHead:])
		clearTasks(c.held[n:])
		c.held = c.held[:n]
		c.heldHead = 0
	}
	c.nheld.Store(int32(len(c.held) - c.heldHead))
	return t
}

// refillFromOverflow moves overflowed tasks back into the ring in
// bulk. It returns false when there was nothing to move (the queue is
// genuinely empty from this consumer's point of view).
func (c *centralScheduler) refillFromOverflow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.over) == 0 {
		return false
	}
	moved := 0
	for _, t := range c.over {
		if !c.ring.tryPush(t) {
			break
		}
		moved++
	}
	if moved == 0 {
		return false
	}
	n := copy(c.over, c.over[moved:])
	clearTasks(c.over[n:])
	c.over = c.over[:n]
	c.nover.Store(int32(n))
	return true
}

// takeConstrained serves a tied waiter: under the mutex, drain the
// ring and the overflow into held (preserving arrival order) and scan
// newest-first for an admissible task. Newest-first matters: the
// waiter's own unstarted children are the youngest entries, so the
// common case touches a handful of tail slots instead of walking a
// deep breadth-first frontier from the head.
func (c *centralScheduler) takeConstrained(pred func(*task) bool) *task {
	if c.nheld.Load() == 0 && c.nover.Load() == 0 && c.ring.size() == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Pre-store a conservative non-zero held count before the first
	// ring pop: a lock-free consumer that observes the ring empty
	// mid-drain re-checks nheld (see PopLocal) and falls into popHeld
	// — which blocks here until the scan ends — instead of reporting
	// an empty pool while its tasks are in transit to held. The exact
	// count is restored below.
	c.nheld.Store(int32(len(c.held)-c.heldHead) + 1)
	for t := c.ring.tryPop(); t != nil; t = c.ring.tryPop() {
		c.held = append(c.held, t)
	}
	if len(c.over) > 0 {
		c.held = append(c.held, c.over...)
		clearTasks(c.over)
		c.over = c.over[:0]
		c.nover.Store(0)
	}
	var found *task
	for i := len(c.held) - 1; i >= c.heldHead; i-- {
		if t := c.held[i]; pred(t) {
			found = t
			copy(c.held[i:], c.held[i+1:])
			c.held[len(c.held)-1] = nil // eager: don't pin t's successor slot
			c.held = c.held[:len(c.held)-1]
			break
		}
	}
	c.nheld.Store(int32(len(c.held) - c.heldHead))
	return found
}

// Steal always fails: a single shared queue has nothing worker-local
// to steal from; PopLocal already reaches every queued task.
func (c *centralScheduler) Steal(self int, pred func(*task) bool) *task { return nil }

// HasStealableWork always reports false for the same reason, so idle
// workers skip the (by-construction futile) steal attempt entirely
// and the StealAttempts/StealFails counters stay quiet under the
// centralized discipline.
func (c *centralScheduler) HasStealableWork(self int) bool { return false }

// Queued reports the shared backlog — the same value for every
// worker, so a MaxQueue cut-off bounds the team queue as a whole. All
// components are atomic counters, so cut-off probes on the spawn hot
// path take no lock.
func (c *centralScheduler) Queued(self int) int64 {
	return int64(c.nheld.Load()) + int64(c.nover.Load()) + c.ring.size() + c.pq.size()
}
