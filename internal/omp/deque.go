package omp

import "sync/atomic"

// deque is a lock-free Chase–Lev work-stealing deque of *task.
//
// The owning worker pushes and pops at the bottom (LIFO); thieves
// steal from the top (FIFO). The implementation follows Chase & Lev,
// "Dynamic Circular Work-Stealing Deque" (SPAA 2005), using Go's
// sequentially-consistent atomics, with a growable circular buffer.
// Only the owner may call pushBottom/popBottom; steal and stealIf may
// be called from any goroutine.
type deque struct {
	// top is CASed by every thief; bottom and ring are written by the
	// owner on every push/pop. On one cache line, every thief CAS
	// would invalidate the owner's line and stall the owner's next
	// push (and vice versa) even though they touch different words —
	// the classic Chase–Lev false-sharing hazard. The pad keeps the
	// thief-side and owner-side words on separate lines; the layout is
	// pinned by TestPaddedLayout, the cost it removes is measured by
	// the internal/perf padding microbench.
	top    atomic.Int64 // next index to steal from
	_      [56]byte
	bottom atomic.Int64 // next index to push at (owner-private writes)
	ring   atomic.Pointer[dequeRing]
	_      [48]byte
}

// initialDequeCap pre-sizes a fresh ring so typical regions never
// grow it; queue storage is additionally pooled across regions (see
// scheduler.go), so a ring grown once by a deep breadth-first backlog
// stays grown and steady-state execution performs no ring allocation
// at all.
const initialDequeCap = 256

type dequeRing struct {
	mask int64
	slot []atomic.Pointer[task]
}

func newDequeRing(capacity int64) *dequeRing {
	return &dequeRing{mask: capacity - 1, slot: make([]atomic.Pointer[task], capacity)}
}

func (r *dequeRing) get(i int64) *task    { return r.slot[i&r.mask].Load() }
func (r *dequeRing) put(i int64, t *task) { r.slot[i&r.mask].Store(t) }
func (r *dequeRing) capacity() int64      { return r.mask + 1 }

// grow returns a ring of twice the capacity containing the elements
// in [top, bottom).
func (r *dequeRing) grow(top, bottom int64) *dequeRing {
	nr := newDequeRing(r.capacity() * 2)
	for i := top; i < bottom; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

func newDeque() *deque {
	d := &deque{}
	d.ring.Store(newDequeRing(initialDequeCap))
	return d
}

// size returns an approximation of the number of queued tasks. It is
// exact when called by the owner with no concurrent steals.
func (d *deque) size() int64 {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return b - t
}

// pushBottom appends t at the bottom. Owner only.
func (d *deque) pushBottom(t *task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	r := d.ring.Load()
	if b-tp >= r.capacity()-1 {
		r = r.grow(tp, b)
		d.ring.Store(r)
	}
	r.put(b, t)
	d.bottom.Store(b + 1)
}

// pushBottomBatch appends every task of ts at the bottom, publishing
// them with a single bottom store (one seq-cst write instead of
// len(ts)) after one capacity check. Owner only. Used by the
// steal-batch path to land a raid's haul on the thief's own deque.
func (d *deque) pushBottomBatch(ts []*task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	r := d.ring.Load()
	for b-tp+int64(len(ts)) >= r.capacity() {
		r = r.grow(tp, b)
		d.ring.Store(r)
	}
	for i, t := range ts {
		r.put(b+int64(i), t)
	}
	d.bottom.Store(b + int64(len(ts)))
}

// popBottom removes and returns the most recently pushed task, or nil
// if the deque is empty. Owner only.
func (d *deque) popBottom() *task {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	tp := d.top.Load()
	if tp > b {
		// Empty: restore bottom.
		d.bottom.Store(tp)
		return nil
	}
	t := r.get(b)
	if tp != b {
		return t // more than one element; no race with thieves
	}
	// Single element: race with thieves for it.
	if !d.top.CompareAndSwap(tp, tp+1) {
		t = nil // a thief got it
	}
	d.bottom.Store(tp + 1)
	return t
}

// clearStale nils every ring slot and collapses the live window to
// empty. Chase–Lev never clears consumed slots itself (the
// [top, bottom) window is what is live), so a drained deque still
// pins the tasks it once held. Called only from quiescent contexts
// (scheduler Fini, with the region joined) before the deque is pooled
// for the next region.
//
// Collapsing bottom onto top is what makes pooling safe when a deque
// is Fini'd with tasks still queued (direct scheduler harnesses do
// this; the region runtime always joins first). Without it the pooled
// deque would carry a non-empty [top, bottom) window of nil slots
// into its next region: top-side consumers (stealIf, and breadthfirst
// PopLocal, which takes FIFO from its own top) return nil at a nil
// slot WITHOUT advancing top, so real tasks later pushed — or batch-
// relocated — above the ghost window would be permanently unreachable
// from the top side, wedging the region with live tasks and every
// worker parked. TestDequePoolResetsWindow pins this.
func (d *deque) clearStale() {
	r := d.ring.Load()
	for i := range r.slot {
		r.slot[i].Store(nil)
	}
	d.bottom.Store(d.top.Load())
}

// steal removes and returns the oldest task, or nil if the deque is
// empty or the steal lost a race. Callable from any goroutine.
func (d *deque) steal() *task {
	return d.stealIf(nil)
}

// stealBatchInto steals up to len(buf) of the oldest tasks into buf
// and returns the count taken, stopping at the first empty
// observation or lost CAS (a lost CAS means another thief is raiding
// the same victim; backing off beats fighting over the same line).
//
// Each task is taken with its own top CAS. A single multi-slot
// CAS(top, top+k) would NOT be linearizable here: the owner's
// uncontended popBottom freely claims index bottom-1 whenever
// top < bottom-1 without touching top, so between a thief's reads and
// its CAS the owner can pop entries in [top+1, top+k) — the CAS would
// still succeed and the raid would double-execute them. Classic
// Chase–Lev is safe precisely because a thief only ever claims index
// top itself, which the owner never free-pops. The batching win lives
// elsewhere: one victim selection, one advertisement update, and one
// bottom publish (pushBottomBatch) per raid, with the victim's
// top/ring lines hot in the thief's cache for the follow-up CASes.
func (d *deque) stealBatchInto(buf []*task) int {
	n := 0
	for n < len(buf) {
		tp := d.top.Load()
		if tp >= d.bottom.Load() {
			break
		}
		r := d.ring.Load()
		t := r.get(tp)
		if t == nil {
			break
		}
		if !d.top.CompareAndSwap(tp, tp+1) {
			break
		}
		buf[n] = t
		n++
	}
	return n
}

// stealIf is like steal but, when pred is non-nil, only completes the
// steal if pred accepts the candidate task; otherwise the task is
// left in place and nil is returned. pred may be called on a task
// that ultimately is not stolen (when the CAS fails), so it must be a
// pure function of the task.
func (d *deque) stealIf(pred func(*task) bool) *task {
	tp := d.top.Load()
	b := d.bottom.Load()
	if tp >= b {
		return nil
	}
	r := d.ring.Load()
	t := r.get(tp)
	if t == nil {
		return nil
	}
	if pred != nil && !pred(t) {
		return nil
	}
	if !d.top.CompareAndSwap(tp, tp+1) {
		return nil
	}
	return t
}
