package omp

import "sync/atomic"

// deque is a lock-free Chase–Lev work-stealing deque of *task.
//
// The owning worker pushes and pops at the bottom (LIFO); thieves
// steal from the top (FIFO). The implementation follows Chase & Lev,
// "Dynamic Circular Work-Stealing Deque" (SPAA 2005), using Go's
// sequentially-consistent atomics, with a growable circular buffer.
// Only the owner may call pushBottom/popBottom; steal and stealIf may
// be called from any goroutine.
type deque struct {
	top    atomic.Int64 // next index to steal from
	bottom atomic.Int64 // next index to push at (owner-private writes)
	ring   atomic.Pointer[dequeRing]
}

// initialDequeCap pre-sizes a fresh ring so typical regions never
// grow it; queue storage is additionally pooled across regions (see
// scheduler.go), so a ring grown once by a deep breadth-first backlog
// stays grown and steady-state execution performs no ring allocation
// at all.
const initialDequeCap = 256

type dequeRing struct {
	mask int64
	slot []atomic.Pointer[task]
}

func newDequeRing(capacity int64) *dequeRing {
	return &dequeRing{mask: capacity - 1, slot: make([]atomic.Pointer[task], capacity)}
}

func (r *dequeRing) get(i int64) *task    { return r.slot[i&r.mask].Load() }
func (r *dequeRing) put(i int64, t *task) { r.slot[i&r.mask].Store(t) }
func (r *dequeRing) capacity() int64      { return r.mask + 1 }

// grow returns a ring of twice the capacity containing the elements
// in [top, bottom).
func (r *dequeRing) grow(top, bottom int64) *dequeRing {
	nr := newDequeRing(r.capacity() * 2)
	for i := top; i < bottom; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

func newDeque() *deque {
	d := &deque{}
	d.ring.Store(newDequeRing(initialDequeCap))
	return d
}

// size returns an approximation of the number of queued tasks. It is
// exact when called by the owner with no concurrent steals.
func (d *deque) size() int64 {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return b - t
}

// pushBottom appends t at the bottom. Owner only.
func (d *deque) pushBottom(t *task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	r := d.ring.Load()
	if b-tp >= r.capacity()-1 {
		r = r.grow(tp, b)
		d.ring.Store(r)
	}
	r.put(b, t)
	d.bottom.Store(b + 1)
}

// popBottom removes and returns the most recently pushed task, or nil
// if the deque is empty. Owner only.
func (d *deque) popBottom() *task {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	tp := d.top.Load()
	if tp > b {
		// Empty: restore bottom.
		d.bottom.Store(tp)
		return nil
	}
	t := r.get(b)
	if tp != b {
		return t // more than one element; no race with thieves
	}
	// Single element: race with thieves for it.
	if !d.top.CompareAndSwap(tp, tp+1) {
		t = nil // a thief got it
	}
	d.bottom.Store(tp + 1)
	return t
}

// clearStale nils every ring slot. Chase–Lev never clears consumed
// slots itself (the [top, bottom) window is what is live), so a
// drained deque still pins the tasks it once held. Called only from
// quiescent contexts (scheduler Fini, with the region joined) before
// the deque is pooled for the next region.
func (d *deque) clearStale() {
	r := d.ring.Load()
	for i := range r.slot {
		r.slot[i].Store(nil)
	}
}

// steal removes and returns the oldest task, or nil if the deque is
// empty or the steal lost a race. Callable from any goroutine.
func (d *deque) steal() *task {
	return d.stealIf(nil)
}

// stealIf is like steal but, when pred is non-nil, only completes the
// steal if pred accepts the candidate task; otherwise the task is
// left in place and nil is returned. pred may be called on a task
// that ultimately is not stolen (when the CAS fails), so it must be a
// pure function of the task.
func (d *deque) stealIf(pred func(*task) bool) *task {
	tp := d.top.Load()
	b := d.bottom.Load()
	if tp >= b {
		return nil
	}
	r := d.ring.Load()
	t := r.get(tp)
	if t == nil {
		return nil
	}
	if pred != nil && !pred(t) {
		return nil
	}
	if !d.top.CompareAndSwap(tp, tp+1) {
		return nil
	}
	return t
}
