//go:build race

package omp

// See race_off_test.go.
const raceEnabled = true
