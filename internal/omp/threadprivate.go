package omp

// ThreadPrivate provides per-thread storage analogous to OpenMP's
// threadprivate directive: one padded slot per team thread, indexed
// by thread number, with no cross-thread synchronization. BOTS
// NQueens uses it to accumulate per-thread solution counts that are
// reduced under a critical section at region end, avoiding contention
// on every solution found.
type ThreadPrivate[T any] struct {
	slots []paddedSlot[T]
}

// paddedSlot pads each value to its own cache line(s) so per-thread
// counters do not false-share.
type paddedSlot[T any] struct {
	v T
	_ [64]byte
}

// NewThreadPrivate returns storage for a team of n threads, each slot
// zero-valued.
func NewThreadPrivate[T any](n int) *ThreadPrivate[T] {
	return &ThreadPrivate[T]{slots: make([]paddedSlot[T], n)}
}

// Get returns a pointer to the calling thread's slot.
func (tp *ThreadPrivate[T]) Get(c *Context) *T {
	return &tp.slots[c.ThreadNum()].v
}

// Slot returns a pointer to slot i directly; intended for the
// reduction phase after the parallel region.
func (tp *ThreadPrivate[T]) Slot(i int) *T { return &tp.slots[i].v }

// Len returns the number of slots.
func (tp *ThreadPrivate[T]) Len() int { return len(tp.slots) }
