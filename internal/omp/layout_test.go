package omp

import (
	"testing"
	"unsafe"
)

// TestPaddedLayout pins the false-sharing separations the padding
// audit landed (DESIGN.md §12): the measured wins only hold while the
// hot words actually sit on distinct cache lines, and an innocent
// field addition would silently fold them back together. Offsets are
// asserted as "at least a line apart" rather than exact, so benign
// reordering inside a cluster stays legal.
func TestPaddedLayout(t *testing.T) {
	const line = 64

	gap := func(name string, lo, hi uintptr) {
		t.Helper()
		if hi < lo {
			lo, hi = hi, lo
		}
		if hi-lo < line {
			t.Errorf("%s: %d bytes apart, want >= %d (false-sharing pad lost)", name, hi-lo, line)
		}
	}

	// deque: the thief-CASed top and the owner-written bottom/ring
	// must not share a line (Chase–Lev's classic hazard).
	var d deque
	gap("deque.top vs deque.bottom", unsafe.Offsetof(d.top), unsafe.Offsetof(d.bottom))
	if sz := unsafe.Sizeof(d); sz%line != 0 {
		t.Errorf("sizeof(deque) = %d, want a multiple of %d", sz, line)
	}

	// schedSlot: exactly two lines per slot so neighbouring slots in
	// the ws array never share a line (and the adjacent-line
	// prefetcher cannot couple them).
	if sz := unsafe.Sizeof(schedSlot{}); sz != 2*line {
		t.Errorf("sizeof(schedSlot) = %d, want %d", sz, 2*line)
	}

	// workerStats: whole-line multiple, as its comment promises.
	if sz := unsafe.Sizeof(workerStats{}); sz%line != 0 {
		t.Errorf("sizeof(workerStats) = %d, want a multiple of %d", sz, line)
	}

	// mpmcSlot: one slot per line (mpmc.go's documented invariant).
	if sz := unsafe.Sizeof(mpmcSlot{}); sz != line {
		t.Errorf("sizeof(mpmcSlot) = %d, want %d", sz, line)
	}

	// Team: the four hot atomic clusters — liveTasks (written by every
	// spawn/finish), the barrier generation words, the read-mostly
	// idleWaiters, and the read-mostly waitParkers — each get their own
	// line, and the worksharing mutex that follows does not share the
	// last one.
	var tm Team
	gap("Team.liveTasks vs Team.barGen", unsafe.Offsetof(tm.liveTasks), unsafe.Offsetof(tm.barGen))
	gap("Team.barGen vs Team.idleWaiters", unsafe.Offsetof(tm.barGen), unsafe.Offsetof(tm.idleWaiters))
	gap("Team.idleWaiters vs Team.waitParkers", unsafe.Offsetof(tm.idleWaiters), unsafe.Offsetof(tm.waitParkers))
	gap("Team.waitParkers vs Team.wsMu", unsafe.Offsetof(tm.waitParkers), unsafe.Offsetof(tm.wsMu))
}
