package omp

// EPCC-style microbenchmarks (Bull, EWOMP 1999 — the paper's related
// work) for the runtime's constructs: parallel region open/close,
// task creation/execution on the deferred and undeferred paths,
// taskwait, barrier, worksharing schedules, single, critical
// contention, and threadprivate access.

import (
	"sync/atomic"
	"testing"
)

func BenchmarkParallelRegionOpenClose(b *testing.B) {
	for _, threads := range []int{1, 4} {
		b.Run(benchName("threads", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Parallel(threads, func(c *Context) {})
			}
		})
	}
}

func BenchmarkTaskSpawnAndDrain(b *testing.B) {
	b.ReportAllocs()
	Parallel(1, func(c *Context) {
		for i := 0; i < b.N; i++ {
			c.Task(func(c *Context) {})
			if i%256 == 255 {
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
}

func BenchmarkTaskUndeferredPath(b *testing.B) {
	b.ReportAllocs()
	Parallel(1, func(c *Context) {
		for i := 0; i < b.N; i++ {
			c.Task(func(c *Context) {}, If(false))
		}
	})
}

func BenchmarkTaskFinalPath(b *testing.B) {
	b.ReportAllocs()
	Parallel(1, func(c *Context) {
		c.Task(func(c *Context) {
			for i := 0; i < b.N; i++ {
				c.Task(func(c *Context) {})
			}
		}, Final(true))
		c.Taskwait()
	})
}

func BenchmarkFibTaskThroughput(b *testing.B) {
	// End-to-end task throughput on the canonical recursive pattern.
	for _, threads := range []int{1, 4} {
		b.Run(benchName("threads", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var res int64
				Parallel(threads, func(c *Context) {
					c.Single(func(c *Context) {
						c.Task(func(c *Context) { parFib(c, 16, &res) })
					})
				})
			}
		})
	}
}

func BenchmarkBarrierLatency(b *testing.B) {
	for _, threads := range []int{2, 8} {
		b.Run(benchName("threads", threads), func(b *testing.B) {
			Parallel(threads, func(c *Context) {
				for i := 0; i < b.N; i++ {
					c.Barrier()
				}
			})
		})
	}
}

func BenchmarkForSchedules(b *testing.B) {
	const iters = 4096
	for _, tc := range []struct {
		name string
		opts []ForOpt
	}{
		{"static", nil},
		{"dynamic1", []ForOpt{WithSchedule(Dynamic, 1)}},
		{"dynamic64", []ForOpt{WithSchedule(Dynamic, 64)}},
		{"guided", []ForOpt{WithSchedule(Guided, 1)}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var sink atomic.Int64
			Parallel(4, func(c *Context) {
				for i := 0; i < b.N; i++ {
					c.For(0, iters, func(c *Context, j int) {
						sink.Add(1)
					}, tc.opts...)
				}
			})
		})
	}
}

func BenchmarkSingleConstruct(b *testing.B) {
	Parallel(4, func(c *Context) {
		for i := 0; i < b.N; i++ {
			c.SingleNowait(func(c *Context) {})
		}
		c.Barrier()
	})
}

func BenchmarkCriticalUncontended(b *testing.B) {
	Parallel(1, func(c *Context) {
		for i := 0; i < b.N; i++ {
			c.Critical("bench-uncontended", func() {})
		}
	})
}

func BenchmarkCriticalContended(b *testing.B) {
	var counter int64
	Parallel(8, func(c *Context) {
		for i := 0; i < b.N; i++ {
			c.Critical("bench-contended", func() { counter++ })
		}
	})
}

func BenchmarkThreadPrivateAccess(b *testing.B) {
	tp := NewThreadPrivate[int64](4)
	Parallel(4, func(c *Context) {
		mine := tp.Get(c)
		for i := 0; i < b.N; i++ {
			*mine++
		}
	})
}

func BenchmarkDequePushPop(b *testing.B) {
	b.ReportAllocs()
	d := newDeque()
	t := &task{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.pushBottom(t)
		d.popBottom()
	}
}

func BenchmarkDequeStealContention(b *testing.B) {
	d := newDeque()
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					d.steal()
				}
			}
		}()
	}
	t := &task{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.pushBottom(t)
		d.popBottom()
	}
	close(stop)
}

func benchName(k string, v int) string {
	return k + "=" + string(rune('0'+v/10)) + string(rune('0'+v%10))
}
