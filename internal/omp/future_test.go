package omp

import (
	"sync/atomic"
	"testing"
)

// futureFib computes fib with a typed future per recursive call — the
// heaviest structural exercise of Wait-executes-other-tasks: every
// level of the tree blocks on two futures while the runtime steals.
func futureFib(c *Context, n int) int {
	if n < 2 {
		return n
	}
	f1 := Spawn(c, func(c *Context) int { return futureFib(c, n-1) })
	f2 := Spawn(c, func(c *Context) int { return futureFib(c, n-2) })
	return f1.Wait(c) + f2.Wait(c)
}

func TestFutureFib(t *testing.T) {
	for _, threads := range []int{1, 4, 8} {
		var got int
		st := Parallel(threads, func(c *Context) {
			c.SingleNowait(func(c *Context) {
				got = futureFib(c, 16)
			})
		})
		if got != 987 {
			t.Errorf("threads=%d: futureFib(16) = %d, want 987", threads, got)
		}
		if threads == 1 && st.TotalTasks() == 0 {
			t.Error("futures created no tasks")
		}
	}
}

// TestFutureValueTypes checks Spawn/Wait round-trips for a non-scalar
// payload (the generic T, not just int).
func TestFutureValueTypes(t *testing.T) {
	type result struct {
		name string
		vals []int
	}
	Parallel(2, func(c *Context) {
		c.SingleNowait(func(c *Context) {
			f := Spawn(c, func(*Context) result {
				return result{name: "x", vals: []int{1, 2, 3}}
			})
			r := f.Wait(c)
			if r.name != "x" || len(r.vals) != 3 {
				t.Errorf("future payload = %+v", r)
			}
			// A second Wait returns the cached value.
			if r2 := f.Wait(c); r2.name != "x" {
				t.Errorf("second Wait = %+v", r2)
			}
		})
	})
}

// TestFutureUndeferred checks Spawn with if(false): the producing
// task runs inline, so the future is complete before Spawn returns.
func TestFutureUndeferred(t *testing.T) {
	Parallel(1, func(c *Context) {
		f := Spawn(c, func(*Context) int { return 7 }, If(false))
		if !f.Done() {
			t.Error("if(false) future should be complete at Spawn return")
		}
		if got := f.Wait(c); got != 7 {
			t.Errorf("Wait = %d, want 7", got)
		}
	})
}

// TestFutureManyWaiters has several tasks Wait on one future; the
// latch must wake all of them.
func TestFutureManyWaiters(t *testing.T) {
	var sum atomic.Int64
	var gate atomic.Bool
	Parallel(4, func(c *Context) {
		c.SingleNowait(func(c *Context) {
			f := Spawn(c, func(*Context) int {
				for !gate.Load() {
					// Hold the value back until all waiters exist.
				}
				return 5
			}, Untied())
			for i := 0; i < 3; i++ {
				c.Task(func(c *Context) {
					sum.Add(int64(f.Wait(c)))
				}, Untied())
			}
			gate.Store(true)
		})
	})
	if sum.Load() != 15 {
		t.Errorf("3 waiters summed %d, want 15", sum.Load())
	}
}

// TestFutureWithDeps combines both new mechanisms: the future's
// producing task carries dependence clauses, so Wait blocks on a task
// that is itself held back by a predecessor.
func TestFutureWithDeps(t *testing.T) {
	x := new(int)
	Parallel(4, func(c *Context) {
		c.SingleNowait(func(c *Context) {
			c.Task(func(*Context) { *x = 41 }, Out(x))
			f := Spawn(c, func(*Context) int { return *x + 1 }, In(x))
			if got := f.Wait(c); got != 42 {
				t.Errorf("dependent future = %d, want 42", got)
			}
		})
	})
}

// TestFutureStats checks the FutureWaits counter.
func TestFutureStats(t *testing.T) {
	st := Parallel(1, func(c *Context) {
		f := Spawn(c, func(*Context) int { return 1 })
		f.Wait(c)
	})
	if st.FutureWaits != 1 {
		t.Errorf("FutureWaits = %d, want 1", st.FutureWaits)
	}
}
