package omp

import (
	"strconv"
	"sync"
	"time"

	"bots/internal/obs"
)

// This file is the runtime's bridge to internal/obs: live sampling
// accessors on PersistentTeam, registry publication of team gauges
// and counters, and the stall detector that triggers automatic
// flight-recorder dumps. All of it is pull-based — nothing here adds
// work to the task hot path; scrape-time closures read the same
// atomics the runtime already maintains.

// WithFlightRecorder attaches a flight recorder to the team: the
// runtime records spawn/steal/park/wake/submit/finish events into it
// (see internal/obs). The recorder should be built with the team's
// worker count (obs.NewFlightRecorder(n, perWorker)); the caller
// keeps the handle for Snapshot/WriteJSON. Off by default — a team
// without one pays only a nil check per event site.
func WithFlightRecorder(fr *obs.FlightRecorder) TeamOpt {
	return func(c *teamConfig) { c.fr = fr }
}

// FlightRecorder returns the team's recorder, or nil when the team
// was built without WithFlightRecorder.
func (pt *PersistentTeam) FlightRecorder() *obs.FlightRecorder { return pt.tm.fr }

// LiveTasks returns the team's current deferred-task count (created,
// not yet finished). Zero after Close.
func (pt *PersistentTeam) LiveTasks() int64 {
	pt.obsMu.RLock()
	defer pt.obsMu.RUnlock()
	if pt.finalized {
		return 0
	}
	return pt.tm.liveTasks.Load()
}

// InflightSubmissions returns submissions accepted and not yet
// completed (inbox plus executing). Zero after Close.
func (pt *PersistentTeam) InflightSubmissions() int64 {
	pt.obsMu.RLock()
	defer pt.obsMu.RUnlock()
	if pt.finalized {
		return 0
	}
	return pt.inflight.Load()
}

// ParkedWorkers returns the number of workers currently registered on
// the team doorbell (parked or in the pre-park re-check). Zero after
// Close.
func (pt *PersistentTeam) ParkedWorkers() int {
	pt.obsMu.RLock()
	defer pt.obsMu.RUnlock()
	if pt.finalized {
		return 0
	}
	return int(pt.tm.idleWaiters.Load())
}

// Queued returns worker w's ready backlog as the scheduler reports
// it. Zero after Close (the scheduler's queues are released by
// shutdown; the obsMu guard is what makes a scrape racing Close safe).
func (pt *PersistentTeam) Queued(w int) int64 {
	pt.obsMu.RLock()
	defer pt.obsMu.RUnlock()
	if pt.finalized || w < 0 || w >= len(pt.tm.workers) {
		return 0
	}
	return pt.tm.sched.Queued(w)
}

// RegisterObs publishes the team's live gauges and cumulative
// counters into reg under the bots_team_* names (DESIGN.md §11), all
// sampled at scrape time. The extra labels are attached to every
// series, so two teams can share one registry when given
// distinguishing labels. Safe to leave registered across Close: the
// sampling accessors return zeros once the team is finalized.
func (pt *PersistentTeam) RegisterObs(reg *obs.Registry, labels ...obs.Label) {
	reg.GaugeFunc("bots_team_workers", "Team size (worker goroutines).",
		func() float64 { return float64(pt.NumWorkers()) }, labels...)
	reg.GaugeFunc("bots_team_live_tasks", "Deferred tasks created and not yet finished.",
		func() float64 { return float64(pt.LiveTasks()) }, labels...)
	reg.GaugeFunc("bots_team_inflight_submissions", "Submissions accepted and not yet completed.",
		func() float64 { return float64(pt.InflightSubmissions()) }, labels...)
	reg.GaugeFunc("bots_team_parked_workers", "Workers registered on the team doorbell (idle).",
		func() float64 { return float64(pt.ParkedWorkers()) }, labels...)
	for i := 0; i < pt.NumWorkers(); i++ {
		i := i
		wl := append(append([]obs.Label(nil), labels...), obs.Label{Name: "worker", Value: strconv.Itoa(i)})
		reg.GaugeFunc("bots_team_queued_tasks", "Ready backlog per worker, as the scheduler reports it.",
			func() float64 { return float64(pt.Queued(i)) }, wl...)
	}
	RegisterStats(reg, "bots_team", pt.Stats, labels...)
}

// RegisterStats publishes the counter fields of a Stats view as
// sampled Prometheus counters named <prefix>_<field>_total. get is
// evaluated at scrape time, so passing a live snapshot method (e.g.
// PersistentTeam.Stats) yields monotone live counters, and passing a
// closure over a finished region's Stats yields its final totals
// (`bots -obs` does this).
func RegisterStats(reg *obs.Registry, prefix string, get func() Stats, labels ...obs.Label) {
	counter := func(field, help string, sel func(Stats) int64) {
		reg.CounterFunc(prefix+"_"+field+"_total", help,
			func() float64 { return float64(sel(get())) }, labels...)
	}
	counter("tasks_created", "Deferred tasks pushed to scheduler queues (spawns).",
		func(s Stats) int64 { return s.TasksCreated })
	counter("tasks_undeferred", "Tasks executed inline by an if(false) clause, final ancestor, or cut-off.",
		func(s Stats) int64 { return s.TasksUndeferred })
	counter("tasks_stolen", "Tasks executed by a worker other than their creator.",
		func(s Stats) int64 { return s.TasksStolen })
	counter("steal_attempts", "Steal attempts made by idle workers.",
		func(s Stats) int64 { return s.StealAttempts })
	counter("steal_fails", "Steal attempts that came back empty.",
		func(s Stats) int64 { return s.StealFails })
	counter("idle_parks", "Times a worker exhausted its spin budget and parked on the doorbell.",
		func(s Stats) int64 { return s.IdleParks })
	counter("taskwaits", "Taskwait operations executed.",
		func(s Stats) int64 { return s.Taskwaits })
	counter("taskwait_parks", "Taskwaits that had to park.",
		func(s Stats) int64 { return s.TaskwaitParks })
	counter("barriers", "Team barrier arrivals.",
		func(s Stats) int64 { return s.Barriers })
	counter("dep_edges", "Dependence edges resolved at task creation.",
		func(s Stats) int64 { return s.DepEdges })
	counter("dep_releases", "Held tasks released by their last predecessor finishing.",
		func(s Stats) int64 { return s.DepReleases })
	counter("future_waits", "Future.Wait operations that blocked.",
		func(s Stats) int64 { return s.FutureWaits })
}

// StartStallMonitor polls the team every poll interval and calls
// onStall once each time the stalled condition — live tasks
// outstanding with every worker parked — has held continuously for at
// least threshold. That condition is the runtime's lost-wakeup
// signature: work exists that nothing will ever pick up. onStall
// typically dumps the flight recorder (botserve wires it to a JSON
// dump on the metrics listener; tests wire it to a channel). The
// detector re-arms when the condition clears. The returned stop
// function halts the monitor and waits for it to exit; the monitor is
// also safe to leave running across Close (the sampling accessors it
// uses return zeros once the team is finalized).
func (pt *PersistentTeam) StartStallMonitor(threshold, poll time.Duration, onStall func()) (stop func()) {
	if poll <= 0 {
		poll = threshold / 4
	}
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(poll)
		defer tick.Stop()
		var stalledSince time.Time
		fired := false
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				stalled := pt.LiveTasks() > 0 && pt.ParkedWorkers() == pt.NumWorkers()
				if !stalled {
					stalledSince = time.Time{}
					fired = false
					continue
				}
				if stalledSince.IsZero() {
					stalledSince = now
				}
				if !fired && now.Sub(stalledSince) >= threshold {
					fired = true
					onStall()
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
