package omp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// fib on the persistent team: the same task-per-node kernel the
// Parallel tests use, exercised as a submitted region.
func subFib(c *Context, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var a, b int64
	c.Task(func(c *Context) { subFib(c, n-1, &a) })
	c.Task(func(c *Context) { subFib(c, n-2, &b) })
	c.Taskwait()
	*out = a + b
}

func TestPersistentTeamSubmitWait(t *testing.T) {
	pt := NewPersistentTeam(2)
	defer pt.Close()
	for i := 0; i < 20; i++ {
		var res int64
		st := pt.SubmitWait(func(c *Context) { subFib(c, 10, &res) })
		if res != 55 {
			t.Fatalf("submission %d: fib(10) = %d, want 55", i, res)
		}
		if st.TotalTasks() == 0 {
			t.Errorf("submission %d: stats delta reports zero tasks", i)
		}
	}
}

// TestPersistentTeamConformance is the region-reuse conformance suite:
// every registered scheduler, at one and at four workers, serves many
// submissions through one persistent team. After each submission the
// result must be correct; between submissions the queues must be
// drained and the live-task count back at zero (else state leaked
// across submissions); and the team must survive a mixed
// deferred/dependence workload. Run with -race in CI.
func TestPersistentTeamConformance(t *testing.T) {
	for _, sched := range Schedulers() {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/w%d", sched, workers), func(t *testing.T) {
				pt := NewPersistentTeam(workers, WithScheduler(sched))
				defer func() {
					st := pt.Close()
					if st.TotalTasks() == 0 {
						t.Errorf("closed team reports zero total tasks")
					}
				}()
				const rounds = 30
				for i := 0; i < rounds; i++ {
					var res int64
					pt.SubmitWait(func(c *Context) { subFib(c, 8, &res) })
					if res != 21 {
						t.Fatalf("round %d: fib(8) = %d, want 21", i, res)
					}
					// Between submissions: no live task may remain and
					// every worker's ready backlog must be empty — a
					// leaked (queued but never run) task would violate
					// both.
					if lt := pt.tm.liveTasks.Load(); lt != 0 {
						t.Fatalf("round %d: liveTasks = %d after SubmitWait, want 0", i, lt)
					}
					for id := range pt.tm.workers {
						if q := pt.tm.sched.Queued(id); q != 0 {
							t.Fatalf("round %d: worker %d backlog = %d after SubmitWait, want 0", i, id, q)
						}
					}
				}
				// A dependence chain must work mid-life too (exercises
				// depTab recycling across submissions).
				var cell int
				pt.SubmitWait(func(c *Context) {
					for k := 0; k < 10; k++ {
						c.Task(func(c *Context) { cell++ }, InOut(&cell))
					}
					c.Taskwait()
				})
				if cell != 10 {
					t.Fatalf("dependence chain: cell = %d, want 10", cell)
				}
			})
		}
	}
}

// TestPersistentTeamSeedsAdvance pins that distinct persistent teams
// draw distinct scheduler seeds (the per-region sequence advances), so
// repeated service runs explore different steal orders just as
// repeated Parallel regions do.
func TestPersistentTeamSeedsAdvance(t *testing.T) {
	seeds := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		pt := NewPersistentTeam(2, WithScheduler("workfirst"))
		pt.SubmitWait(func(c *Context) {
			var r int64
			subFib(c, 6, &r)
		})
		st := pt.Close()
		if st.SchedulerSeed == 0 {
			t.Fatalf("team %d: workfirst scheduler reported zero seed", i)
		}
		if seeds[st.SchedulerSeed] {
			t.Fatalf("team %d: seed %#x repeated across teams", i, st.SchedulerSeed)
		}
		seeds[st.SchedulerSeed] = true
	}
}

// TestPersistentTeamStatsRace samples Stats() from an outside
// goroutine while workers execute submissions. Under -race this pins
// the mid-region snapshot satellite: the counters must be readable
// while every worker is running.
func TestPersistentTeamStatsRace(t *testing.T) {
	pt := NewPersistentTeam(4)
	stop := make(chan struct{})
	var sampled atomic.Int64
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := pt.Stats()
			if st.TotalTasks() < 0 {
				t.Error("negative task count")
				return
			}
			sampled.Add(1)
		}
	}()
	for i := 0; i < 50; i++ {
		var res int64
		pt.SubmitWait(func(c *Context) { subFib(c, 10, &res) })
		if res != 55 {
			t.Fatalf("fib(10) = %d, want 55", res)
		}
	}
	close(stop)
	sampler.Wait()
	pt.Close()
	if sampled.Load() == 0 {
		t.Error("sampler never ran")
	}
}

// TestPersistentTeamDetached exercises the callback completion path
// used by internal/serve's open-loop generator.
func TestPersistentTeamDetached(t *testing.T) {
	pt := NewPersistentTeam(2)
	const n = 40
	var done atomic.Int64
	results := make([]int64, n)
	for i := 0; i < n; i++ {
		i := i
		pt.SubmitDetached(func(c *Context) {
			subFib(c, 9, &results[i])
		}, func() { done.Add(1) })
	}
	pt.Drain()
	if got := done.Load(); got != n {
		t.Fatalf("onDone ran %d times before Drain returned, want %d", got, n)
	}
	for i, r := range results {
		if r != 34 {
			t.Fatalf("request %d: fib(9) = %d, want 34", i, r)
		}
	}
	pt.Close()
}

// TestPersistentTeamConcurrentSubmitters pushes submissions from many
// goroutines at once — the service front door is multi-producer.
func TestPersistentTeamConcurrentSubmitters(t *testing.T) {
	pt := NewPersistentTeam(4)
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var res int64
				pt.SubmitWait(func(c *Context) { subFib(c, 8, &res) })
				total.Add(res)
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 8*10*21 {
		t.Fatalf("total = %d, want %d", got, 8*10*21)
	}
	st := pt.Close()
	if lt := pt.tm.liveTasks.Load(); lt != 0 {
		t.Errorf("liveTasks = %d after Close, want 0", lt)
	}
	if st.TotalTasks() == 0 {
		t.Errorf("no tasks recorded")
	}
}

// TestPersistentTeamPanicAtClose: a panicking submission completes
// (the waiter is released) and the panic surfaces at Close.
func TestPersistentTeamPanicAtClose(t *testing.T) {
	pt := NewPersistentTeam(2)
	pt.SubmitWait(func(c *Context) { panic("boom") })
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("Close recovered %v, want \"boom\"", r)
		}
	}()
	pt.Close()
	t.Fatal("Close did not re-raise the submission panic")
}

// TestPersistentTeamSubmitAllocs pins the steady-state allocation
// cost of the service hot path on a one-worker team: after warm-up,
// a submitted region and all its tasks must reuse pooled structures
// (the submission struct, the root task, the spawned tasks through
// the owner grave flush), so a whole request costs ~0 allocations.
func TestPersistentTeamSubmitAllocs(t *testing.T) {
	pt := NewPersistentTeam(1)
	defer pt.Close()
	body := func(c *Context) {
		for i := 0; i < 16; i++ {
			c.Task(func(c *Context) {})
		}
		c.Taskwait()
	}
	for i := 0; i < 50; i++ { // warm the pools
		pt.SubmitWait(body)
	}
	got := testing.AllocsPerRun(200, func() { pt.SubmitWait(body) })
	if got > 1.0 {
		t.Errorf("persistent submit: %.3f allocs/request, want <= 1.0 (steady state is ~0)", got)
	}
}
