package omp

import (
	"sync/atomic"
	"testing"
)

func TestTaskloopCoversRange(t *testing.T) {
	const n = 1000
	counts := make([]atomic.Int32, n)
	Parallel(4, func(c *Context) {
		c.Single(func(c *Context) {
			c.Taskloop(0, n, func(c *Context, i int) {
				counts[i].Add(1)
			})
		})
	})
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d times", i, counts[i].Load())
		}
	}
}

func TestTaskloopGrainsize(t *testing.T) {
	st := Parallel(2, func(c *Context) {
		c.Single(func(c *Context) {
			c.Taskloop(0, 100, func(c *Context, i int) {}, Grainsize(10))
		})
	})
	if st.TasksCreated != 10 {
		t.Fatalf("grainsize 10 over 100 iterations created %d tasks, want 10", st.TasksCreated)
	}
}

func TestTaskloopNumTasks(t *testing.T) {
	st := Parallel(2, func(c *Context) {
		c.Single(func(c *Context) {
			c.Taskloop(0, 100, func(c *Context, i int) {}, NumTasks(7))
		})
	})
	if st.TasksCreated != 7 {
		t.Fatalf("NumTasks(7) created %d tasks, want 7", st.TasksCreated)
	}
}

func TestTaskloopWaitsViaTaskgroup(t *testing.T) {
	var done atomic.Int64
	Parallel(4, func(c *Context) {
		c.Single(func(c *Context) {
			c.Taskloop(0, 64, func(c *Context, i int) {
				// Nested task: the implicit taskgroup must wait for
				// descendants too, not just the chunk tasks.
				c.Task(func(c *Context) { done.Add(1) })
			}, Grainsize(4))
			if got := done.Load(); got != 64 {
				t.Errorf("after taskloop: %d nested tasks done, want 64", got)
			}
		})
	})
}

func TestTaskloopNogroup(t *testing.T) {
	var ran atomic.Int64
	Parallel(2, func(c *Context) {
		c.Single(func(c *Context) {
			c.Taskloop(0, 32, func(c *Context, i int) { ran.Add(1) }, Nogroup(), Grainsize(1))
			// No wait here; the region-end barrier picks them up.
		})
	})
	if ran.Load() != 32 {
		t.Fatalf("ran = %d, want 32", ran.Load())
	}
}

func TestTaskloopEmptyAndUntied(t *testing.T) {
	var ran atomic.Int64
	Parallel(2, func(c *Context) {
		c.Single(func(c *Context) {
			c.Taskloop(5, 5, func(c *Context, i int) { ran.Add(1) })
			c.Taskloop(0, 16, func(c *Context, i int) { ran.Add(1) }, TaskloopUntied())
		})
	})
	if ran.Load() != 16 {
		t.Fatalf("ran = %d, want 16", ran.Load())
	}
}
