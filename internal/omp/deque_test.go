package omp

import (
	"sync"
	"testing"
	"testing/quick"
)

func mkTask(id int) *task {
	return &task{depth: int32(id)} // depth doubles as an identity tag in these tests
}

func TestDequeLIFOOwner(t *testing.T) {
	d := newDeque()
	for i := 0; i < 10; i++ {
		d.pushBottom(mkTask(i))
	}
	for i := 9; i >= 0; i-- {
		got := d.popBottom()
		if got == nil || got.depth != int32(i) {
			t.Fatalf("popBottom = %v, want task %d", got, i)
		}
	}
	if d.popBottom() != nil {
		t.Fatal("popBottom on empty deque should return nil")
	}
}

func TestDequeFIFOSteal(t *testing.T) {
	d := newDeque()
	for i := 0; i < 10; i++ {
		d.pushBottom(mkTask(i))
	}
	for i := 0; i < 10; i++ {
		got := d.steal()
		if got == nil || got.depth != int32(i) {
			t.Fatalf("steal = %v, want task %d", got, i)
		}
	}
	if d.steal() != nil {
		t.Fatal("steal on empty deque should return nil")
	}
}

func TestDequeInterleavedOwnerOps(t *testing.T) {
	d := newDeque()
	d.pushBottom(mkTask(1))
	d.pushBottom(mkTask(2))
	if got := d.popBottom(); got.depth != 2 {
		t.Fatalf("pop = %d, want 2", got.depth)
	}
	d.pushBottom(mkTask(3))
	if got := d.steal(); got.depth != 1 {
		t.Fatalf("steal = %d, want 1", got.depth)
	}
	if got := d.popBottom(); got.depth != 3 {
		t.Fatalf("pop = %d, want 3", got.depth)
	}
	if d.size() != 0 {
		t.Fatalf("size = %d, want 0", d.size())
	}
}

func TestDequeGrowth(t *testing.T) {
	d := newDeque()
	const n = 10 * initialDequeCap
	for i := 0; i < n; i++ {
		d.pushBottom(mkTask(i))
	}
	if d.size() != n {
		t.Fatalf("size = %d, want %d", d.size(), n)
	}
	// Oldest half out the top, newest half out the bottom.
	for i := 0; i < n/2; i++ {
		if got := d.steal(); got == nil || got.depth != int32(i) {
			t.Fatalf("steal %d = %v", i, got)
		}
	}
	for i := n - 1; i >= n/2; i-- {
		if got := d.popBottom(); got == nil || got.depth != int32(i) {
			t.Fatalf("pop %d = %v", i, got)
		}
	}
}

func TestDequeStealIfPredicate(t *testing.T) {
	d := newDeque()
	d.pushBottom(mkTask(7))
	if got := d.stealIf(func(t *task) bool { return false }); got != nil {
		t.Fatal("stealIf with rejecting predicate should leave the task")
	}
	if d.size() != 1 {
		t.Fatalf("size = %d after rejected steal, want 1", d.size())
	}
	if got := d.stealIf(func(t *task) bool { return t.depth == 7 }); got == nil {
		t.Fatal("stealIf with accepting predicate should take the task")
	}
}

// TestDequeConcurrentStealers checks that, under concurrent thieves
// and an active owner, every pushed task is returned exactly once.
func TestDequeConcurrentStealers(t *testing.T) {
	const (
		numTasks   = 20000
		numThieves = 4
	)
	d := newDeque()
	seen := make([]int32, numTasks)
	var wg sync.WaitGroup
	var mu sync.Mutex
	record := func(tk *task) {
		mu.Lock()
		seen[tk.depth]++
		mu.Unlock()
	}
	for i := 0; i < numThieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			empties := 0
			for empties < 10000 {
				if tk := d.steal(); tk != nil {
					record(tk)
					empties = 0
				} else {
					empties++
				}
			}
		}()
	}
	// Owner: interleave pushes and pops.
	for i := 0; i < numTasks; i++ {
		d.pushBottom(mkTask(i))
		if i%3 == 0 {
			if tk := d.popBottom(); tk != nil {
				record(tk)
			}
		}
	}
	for {
		tk := d.popBottom()
		if tk == nil {
			break
		}
		record(tk)
	}
	wg.Wait()
	// Drain stragglers that a losing popBottom left behind.
	for {
		tk := d.steal()
		if tk == nil {
			break
		}
		record(tk)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("task %d returned %d times, want exactly once", id, n)
		}
	}
}

// TestDequeSequentialSemantics drives the deque with random
// owner-side operation sequences and checks it behaves as a plain
// double-ended queue.
func TestDequeSequentialSemantics(t *testing.T) {
	f := func(ops []uint8) bool {
		d := newDeque()
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				d.pushBottom(mkTask(next))
				model = append(model, next)
				next++
			case 1: // pop bottom
				got := d.popBottom()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if got == nil || int(got.depth) != want {
						return false
					}
				}
			case 2: // steal (top)
				got := d.steal()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := model[0]
					model = model[1:]
					if got == nil || int(got.depth) != want {
						return false
					}
				}
			}
		}
		return int(d.size()) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDequePoolResetsWindow pins the invariant that makes cross-region
// queue pooling safe: clearStale must leave the deque EMPTY, not just
// nil-slotted. A deque Fini'd with tasks still queued (direct
// scheduler harnesses do this) otherwise keeps its non-empty
// [top, bottom) window over the now-nil slots, and in the next region
// every top-side consumer — stealIf, and breadthfirst's own-top
// PopLocal — returns nil at the ghost indices without advancing top.
// Tasks pushed or batch-relocated above such a window are then
// permanently unreachable from the top side: the region wedges with
// live tasks and all workers parked. (Observed as a rare
// TestStealBatchRegionAccounting hang before clearStale collapsed the
// window.)
func TestDequePoolResetsWindow(t *testing.T) {
	d := newDeque()
	for i := 0; i < 20; i++ {
		d.pushBottom(mkTask(i))
	}
	if d.steal() == nil { // advance top so the window is mid-ring
		t.Fatal("steal from a 20-task deque returned nil")
	}
	d.clearStale() // pool-return with 19 tasks still queued
	if n := d.size(); n != 0 {
		t.Fatalf("pooled deque reports size %d, want 0 (ghost window)", n)
	}

	// The reused deque must serve both ends again.
	d.pushBottom(mkTask(100))
	d.pushBottom(mkTask(101))
	if got := d.steal(); got == nil || got.depth != 100 {
		t.Fatalf("steal after reuse = %v, want task 100 (top side blocked by ghost window?)", got)
	}
	if got := d.popBottom(); got == nil || got.depth != 101 {
		t.Fatalf("popBottom after reuse = %v, want task 101", got)
	}
}

// TestSchedulerPoolReuseAfterUndrainedFini replays the pollution path
// end to end at the scheduler level: Fini a scheduler with queued
// tasks (as TestStealBatchConstrainedSingle legitimately does), then
// Init fresh schedulers from the shared pool and check every slot
// starts empty and fully operational on both queue ends.
func TestSchedulerPoolReuseAfterUndrainedFini(t *testing.T) {
	for round := 0; round < 8; round++ { // several rounds so pooled pairs recirculate
		s, err := NewScheduler("workfirst(16)")
		if err != nil {
			t.Fatal(err)
		}
		d := s.(*dequeScheduler)
		d.Init(2)
		for i := 0; i < 20; i++ {
			d.Push(0, &task{depth: int32(i)})
		}
		d.Steal(1, nil) // relocates part of the backlog onto slot 1
		d.Fini()        // both slots still hold tasks

		s2, err := NewScheduler("breadthfirst(16)")
		if err != nil {
			t.Fatal(err)
		}
		d2 := s2.(*dequeScheduler)
		d2.Init(2)
		for i := 0; i < 2; i++ {
			if q := d2.Queued(i); q != 0 {
				t.Fatalf("round %d: fresh region slot %d starts with %d queued tasks", round, i, q)
			}
		}
		d2.Push(0, &task{depth: 7})
		if tk := d2.Steal(1, nil); tk == nil || tk.depth != 7 {
			t.Fatalf("round %d: steal from reused slot = %v, want the pushed task", round, tk)
		}
		d2.Fini()
	}
}
