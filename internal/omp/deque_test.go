package omp

import (
	"sync"
	"testing"
	"testing/quick"
)

func mkTask(id int) *task {
	return &task{depth: int32(id)} // depth doubles as an identity tag in these tests
}

func TestDequeLIFOOwner(t *testing.T) {
	d := newDeque()
	for i := 0; i < 10; i++ {
		d.pushBottom(mkTask(i))
	}
	for i := 9; i >= 0; i-- {
		got := d.popBottom()
		if got == nil || got.depth != int32(i) {
			t.Fatalf("popBottom = %v, want task %d", got, i)
		}
	}
	if d.popBottom() != nil {
		t.Fatal("popBottom on empty deque should return nil")
	}
}

func TestDequeFIFOSteal(t *testing.T) {
	d := newDeque()
	for i := 0; i < 10; i++ {
		d.pushBottom(mkTask(i))
	}
	for i := 0; i < 10; i++ {
		got := d.steal()
		if got == nil || got.depth != int32(i) {
			t.Fatalf("steal = %v, want task %d", got, i)
		}
	}
	if d.steal() != nil {
		t.Fatal("steal on empty deque should return nil")
	}
}

func TestDequeInterleavedOwnerOps(t *testing.T) {
	d := newDeque()
	d.pushBottom(mkTask(1))
	d.pushBottom(mkTask(2))
	if got := d.popBottom(); got.depth != 2 {
		t.Fatalf("pop = %d, want 2", got.depth)
	}
	d.pushBottom(mkTask(3))
	if got := d.steal(); got.depth != 1 {
		t.Fatalf("steal = %d, want 1", got.depth)
	}
	if got := d.popBottom(); got.depth != 3 {
		t.Fatalf("pop = %d, want 3", got.depth)
	}
	if d.size() != 0 {
		t.Fatalf("size = %d, want 0", d.size())
	}
}

func TestDequeGrowth(t *testing.T) {
	d := newDeque()
	const n = 10 * initialDequeCap
	for i := 0; i < n; i++ {
		d.pushBottom(mkTask(i))
	}
	if d.size() != n {
		t.Fatalf("size = %d, want %d", d.size(), n)
	}
	// Oldest half out the top, newest half out the bottom.
	for i := 0; i < n/2; i++ {
		if got := d.steal(); got == nil || got.depth != int32(i) {
			t.Fatalf("steal %d = %v", i, got)
		}
	}
	for i := n - 1; i >= n/2; i-- {
		if got := d.popBottom(); got == nil || got.depth != int32(i) {
			t.Fatalf("pop %d = %v", i, got)
		}
	}
}

func TestDequeStealIfPredicate(t *testing.T) {
	d := newDeque()
	d.pushBottom(mkTask(7))
	if got := d.stealIf(func(t *task) bool { return false }); got != nil {
		t.Fatal("stealIf with rejecting predicate should leave the task")
	}
	if d.size() != 1 {
		t.Fatalf("size = %d after rejected steal, want 1", d.size())
	}
	if got := d.stealIf(func(t *task) bool { return t.depth == 7 }); got == nil {
		t.Fatal("stealIf with accepting predicate should take the task")
	}
}

// TestDequeConcurrentStealers checks that, under concurrent thieves
// and an active owner, every pushed task is returned exactly once.
func TestDequeConcurrentStealers(t *testing.T) {
	const (
		numTasks   = 20000
		numThieves = 4
	)
	d := newDeque()
	seen := make([]int32, numTasks)
	var wg sync.WaitGroup
	var mu sync.Mutex
	record := func(tk *task) {
		mu.Lock()
		seen[tk.depth]++
		mu.Unlock()
	}
	for i := 0; i < numThieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			empties := 0
			for empties < 10000 {
				if tk := d.steal(); tk != nil {
					record(tk)
					empties = 0
				} else {
					empties++
				}
			}
		}()
	}
	// Owner: interleave pushes and pops.
	for i := 0; i < numTasks; i++ {
		d.pushBottom(mkTask(i))
		if i%3 == 0 {
			if tk := d.popBottom(); tk != nil {
				record(tk)
			}
		}
	}
	for {
		tk := d.popBottom()
		if tk == nil {
			break
		}
		record(tk)
	}
	wg.Wait()
	// Drain stragglers that a losing popBottom left behind.
	for {
		tk := d.steal()
		if tk == nil {
			break
		}
		record(tk)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("task %d returned %d times, want exactly once", id, n)
		}
	}
}

// TestDequeSequentialSemantics drives the deque with random
// owner-side operation sequences and checks it behaves as a plain
// double-ended queue.
func TestDequeSequentialSemantics(t *testing.T) {
	f := func(ops []uint8) bool {
		d := newDeque()
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				d.pushBottom(mkTask(next))
				model = append(model, next)
				next++
			case 1: // pop bottom
				got := d.popBottom()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if got == nil || int(got.depth) != want {
						return false
					}
				}
			case 2: // steal (top)
				got := d.steal()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := model[0]
					model = model[1:]
					if got == nil || int(got.depth) != want {
						return false
					}
				}
			}
		}
		return int(d.size()) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
