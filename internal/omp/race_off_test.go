//go:build !race

package omp

// raceEnabled reports whether the race detector is active. Alloc
// regression tests loosen their pool-dependent thresholds under race:
// sync.Pool deliberately drops a fraction of Put/Get pairs when the
// detector is on (to widen schedule coverage), so cross-region
// recycling is probabilistic there.
const raceEnabled = false
