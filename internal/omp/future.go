package omp

import "sync/atomic"

// Future is the typed result of a task created with Spawn: a
// single-assignment cell the producing task fills and any task of the
// region can Wait on. It is the structured alternative to writing
// through a captured pointer and calling Taskwait.
//
// A blocked Wait parks on the team's waitBell (the same futex-style
// word taskwait and Taskgroup use; see Team.wakeWaiters), so a Future
// carries no park state of its own — just the value and a done flag.
type Future[T any] struct {
	// fn is the producing function, carried in the Future itself so
	// the spawn path needs no per-spawn closure: the task stores the
	// Future in its fut slot and the shared runFuture body below
	// recovers fn through the interface. Cleared after the run so the
	// captured environment does not outlive the task just because the
	// caller holds the Future for its value.
	fn   func(*Context) T
	val  T
	done atomic.Bool
}

// Done reports whether the producing task has completed.
func (f *Future[T]) Done() bool { return f.done.Load() }

// runFuture is the task body of every Spawn-created task; it
// implements the unexported futureRunner interface the task struct's
// fut slot is typed as (see task.go). Executing through the interface
// instead of a wrapping closure is what keeps Spawn at one allocation:
// the Future struct itself is the only per-spawn heap object.
func (f *Future[T]) runFuture(tc *Context) {
	defer func() {
		f.fn = nil
		f.done.Store(true)
		// Broadcast after publishing done: a Wait that registered
		// on the bell and re-checked before this store is woken by
		// the broadcast; one that re-checks after sees done and
		// never parks (Team.wakeWaiters has the full argument).
		tc.w.team.wakeWaiters()
	}()
	f.val = f.fn(tc)
}

// Spawn creates a task computing fn and returns a Future for its
// result. All task options apply: dependences (In/Out/InOut),
// Priority, Untied, If, Final, Captured. If the producing task
// panics, the Future completes with the zero value and the panic is
// re-raised when the parallel region returns, as for any task.
func Spawn[T any](c *Context, fn func(*Context) T, opts ...TaskOpt) *Future[T] {
	f := &Future[T]{fn: fn}
	cfg := &c.w.taskCfg // see Context.Task for why the scratch is safe
	cfg.reset()
	for _, o := range opts {
		o(cfg)
	}
	cfg.fut = f
	c.spawnTask(nil, cfg)
	return f
}

// Wait blocks until the producing task has completed and returns its
// value. Like taskwait, waiting is a task scheduling point: the
// calling thread executes other ready tasks while blocked, subject to
// the OpenMP task scheduling constraint (suspended in a tied task it
// may only run descendants of that task). Wait may be called from any
// task of the region, any number of times, on any number of threads —
// completion broadcasts on the team bell wake every parked waiter.
//
// When tracing, a blocking Wait is recorded as a taskwait event on
// the waiting task: the trace format has no single-task join, so the
// replayed constraint is a conservative join on all children the
// waiter has spawned so far (exact for the common wait-for-all
// pattern, pessimistic when unrelated children are still running).
func (f *Future[T]) Wait(c *Context) T {
	if f.done.Load() {
		return f.val
	}
	w, cur := c.w, c.task
	w.stats.futureWaits.Add(1)
	if cur.node != nil {
		cur.node.Taskwait()
	}
	constraint := cur
	if cur.untied {
		constraint = nil
	}
	for !f.done.Load() {
		if w.runOne(constraint) {
			continue
		}
		w.stats.taskwaitParks.Add(1)
		w.team.waitPark(f.done.Load)
	}
	return f.val
}
