package omp

import (
	"reflect"
	"sync"
	"sync/atomic"
)

// Future is the typed result of a task created with Spawn: a
// single-assignment cell the producing task fills and any task of the
// region can Wait on. It is the structured alternative to writing
// through a captured pointer and calling Taskwait.
//
// A blocked Wait parks on the team's waitBell (the same futex-style
// word taskwait and Taskgroup use; see Team.wakeWaiters), so a Future
// carries no park state of its own — just the value and a done flag.
//
// Lifetime: Future cells are pool-recycled (see futPoolFor), so a
// Future that was Wait()ed must not be used again after the region —
// or, on a persistent team, the submission DAG — that created it has
// completed. A Future that was never Wait()ed is exempt: it stays
// valid indefinitely (a caller may retain it across regions, poll
// Done, and Wait on it from a later region), at the cost of one cell
// left to the garbage collector.
type Future[T any] struct {
	// fn is the producing function, carried in the Future itself so
	// the spawn path needs no per-spawn closure: the task stores the
	// Future in its fut slot and the shared runFuture body below
	// recovers fn through the interface. Cleared after the run so the
	// captured environment does not outlive the task just because the
	// caller holds the Future for its value.
	fn   func(*Context) T
	val  T
	done atomic.Bool
	// consumed marks cells whose value was delivered through Wait.
	// Only consumed cells are recycled at quiescence: an unconsumed
	// cell may still be retained by application code (the documented
	// keep-a-handle-across-regions pattern), so it is dropped to the
	// GC instead. Set by every Wait; read only by the region-end /
	// submission-quiescence recycler, after all waiters joined.
	consumed atomic.Bool
}

// Done reports whether the producing task has completed.
func (f *Future[T]) Done() bool { return f.done.Load() }

// runFuture is the task body of every Spawn-created task; it
// implements the unexported futureRunner interface the task struct's
// fut slot is typed as (see task.go). Executing through the interface
// instead of a wrapping closure is what keeps Spawn at one allocation:
// the Future struct itself is the only per-spawn heap object.
func (f *Future[T]) runFuture(tc *Context) {
	defer func() {
		f.fn = nil
		f.done.Store(true)
		// Broadcast after publishing done: a Wait that registered
		// on the bell and re-checked before this store is woken by
		// the broadcast; one that re-checks after sees done and
		// never parks (Team.wakeWaiters has the full argument).
		tc.w.team.wakeWaiters()
	}()
	f.val = f.fn(tc)
}

// futCell is the type-erased recycling face of *Future[T]: the worker
// struct cannot hold typed cells, so the grave list stores this
// interface and tryRecycle dispatches back into the generic method
// that knows the cell's pool.
type futCell interface {
	futureRunner
	tryRecycle()
}

// futPools maps reflect.Type of Future[T] to the *sync.Pool recycling
// cells of that instantiation. Go has no generic package-level
// variables, so the per-type pool is materialized on first use; the
// steady-state lookup is one lock-free read-map hit with no
// allocation, which is what keeps Spawn at zero allocations.
var futPools sync.Map // reflect.Type -> *sync.Pool

func futPoolFor[T any]() *sync.Pool {
	key := reflect.TypeFor[Future[T]]()
	if p, ok := futPools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := futPools.LoadOrStore(key, &sync.Pool{New: func() any { return new(Future[T]) }})
	return p.(*sync.Pool)
}

// tryRecycle resets the cell and returns it to its typed pool — but
// only when it was both produced and consumed in its region. An
// unconsumed cell may still be held by application code (retained
// across regions), and an unproduced one belongs to a task that never
// ran (panic path); both are dropped to the GC with fields intact.
// Called only at region end / submission quiescence, after every
// worker and waiter of the region has joined (pool.go's grave
// discipline), so no concurrent reader of the cell can exist.
func (f *Future[T]) tryRecycle() {
	if !f.consumed.Load() || !f.done.Load() {
		return
	}
	var zero T
	f.fn = nil
	f.val = zero
	f.done.Store(false)
	f.consumed.Store(false)
	futPoolFor[T]().Put(f)
}

// Spawn creates a task computing fn and returns a Future for its
// result. All task options apply: dependences (In/Out/InOut),
// Priority, Untied, If, Final, Captured. If the producing task
// panics, the Future completes with the zero value and the panic is
// re-raised when the parallel region returns, as for any task.
//
// Spawn allocates nothing in steady state: the cell comes from a
// per-type pool and is buried on the creating worker's future grave,
// to be recycled at region (or submission) quiescence if Wait
// consumed it — the same two-tier discipline task structs use. See
// the Future type's lifetime note for the one rule this imposes.
func Spawn[T any](c *Context, fn func(*Context) T, opts ...TaskOpt) *Future[T] {
	f := futPoolFor[T]().Get().(*Future[T])
	f.fn = fn
	c.w.buryFuture(f)
	cfg := &c.w.taskCfg // see Context.Task for why the scratch is safe
	cfg.reset()
	for _, o := range opts {
		o(cfg)
	}
	cfg.fut = f
	c.spawnTask(nil, cfg)
	return f
}

// Wait blocks until the producing task has completed and returns its
// value. Like taskwait, waiting is a task scheduling point: the
// calling thread executes other ready tasks while blocked, subject to
// the OpenMP task scheduling constraint (suspended in a tied task it
// may only run descendants of that task). Wait may be called from any
// task of the region, any number of times, on any number of threads —
// completion broadcasts on the team bell wake every parked waiter.
// Wait consumes the Future: once any Wait has returned, the cell is
// recycled when its creating region (or submission DAG) reaches
// quiescence and must not be touched after that point (see the type's
// lifetime note).
//
// When tracing, a blocking Wait is recorded as a taskwait event on
// the waiting task: the trace format has no single-task join, so the
// replayed constraint is a conservative join on all children the
// waiter has spawned so far (exact for the common wait-for-all
// pattern, pessimistic when unrelated children are still running).
func (f *Future[T]) Wait(c *Context) T {
	// Mark the cell consumed before anything else: the recycler runs
	// only at quiescence (after this Wait has returned and its region
	// joined), so the store can never race a reset. Done() deliberately
	// does not consume — polling keeps a cell retainable.
	f.consumed.Store(true)
	if f.done.Load() {
		return f.val
	}
	w, cur := c.w, c.task
	w.stats.futureWaits.Add(1)
	if cur.node != nil {
		cur.node.Taskwait()
	}
	constraint := cur
	if cur.untied {
		constraint = nil
	}
	for !f.done.Load() {
		if w.runOne(constraint) {
			continue
		}
		w.stats.taskwaitParks.Add(1)
		w.team.waitPark(f.done.Load)
	}
	return f.val
}
