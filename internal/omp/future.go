package omp

import "sync/atomic"

// latch is a reusable broadcast wakeup: park blocks until the next
// signal (or returns immediately if done already holds), and signal
// wakes every parked goroutine by closing the current wait channel.
// It generalizes the task/taskgroup park protocol to any number of
// concurrent waiters, which futures need (several tasks may Wait on
// the same Future).
type latch struct {
	mu   spinlessMutex
	wake chan struct{}
}

// signal wakes all current parkers. Safe to call repeatedly.
func (l *latch) signal() {
	l.mu.lock()
	if l.wake != nil {
		close(l.wake)
		l.wake = nil
	}
	l.mu.unlock()
}

// park blocks until signal, unless done() already holds. The
// done-check runs under the latch lock, so a signal sent after done
// became true cannot be missed.
func (l *latch) park(done func() bool) {
	l.mu.lock()
	if done() {
		l.mu.unlock()
		return
	}
	if l.wake == nil {
		l.wake = make(chan struct{})
	}
	ch := l.wake
	l.mu.unlock()
	<-ch
}

// Future is the typed result of a task created with Spawn: a
// single-assignment cell the producing task fills and any task of the
// region can Wait on. It is the structured alternative to writing
// through a captured pointer and calling Taskwait.
type Future[T any] struct {
	val  T
	done atomic.Bool
	l    latch
}

// Done reports whether the producing task has completed.
func (f *Future[T]) Done() bool { return f.done.Load() }

// Spawn creates a task computing fn and returns a Future for its
// result. All task options apply: dependences (In/Out/InOut),
// Priority, Untied, If, Final, Captured. If the producing task
// panics, the Future completes with the zero value and the panic is
// re-raised when the parallel region returns, as for any task.
func Spawn[T any](c *Context, fn func(*Context) T, opts ...TaskOpt) *Future[T] {
	f := &Future[T]{}
	cfg := &c.w.taskCfg // see Context.Task for why the scratch is safe
	cfg.reset()
	for _, o := range opts {
		o(cfg)
	}
	// The future's latch rides in the config directly (rather than
	// through an appended TaskOpt closure) so the hot path allocates
	// only the Future and the producing body below; dependence release
	// uses it to wake parked waiters (see enqueueReleased).
	cfg.latch = &f.l
	c.spawnTask(func(tc *Context) {
		defer func() {
			f.done.Store(true)
			f.l.signal()
		}()
		f.val = fn(tc)
	}, cfg)
	return f
}

// Wait blocks until the producing task has completed and returns its
// value. Like taskwait, waiting is a task scheduling point: the
// calling thread executes other ready tasks while blocked, subject to
// the OpenMP task scheduling constraint (suspended in a tied task it
// may only run descendants of that task). Wait may be called from any
// task of the region, any number of times, on any number of threads.
//
// When tracing, a blocking Wait is recorded as a taskwait event on
// the waiting task: the trace format has no single-task join, so the
// replayed constraint is a conservative join on all children the
// waiter has spawned so far (exact for the common wait-for-all
// pattern, pessimistic when unrelated children are still running).
func (f *Future[T]) Wait(c *Context) T {
	if f.done.Load() {
		return f.val
	}
	w, cur := c.w, c.task
	w.stats.futureWaits++
	if cur.node != nil {
		cur.node.Taskwait()
	}
	constraint := cur
	if cur.untied {
		constraint = nil
	}
	for !f.done.Load() {
		if w.runOne(constraint) {
			continue
		}
		w.stats.taskwaitParks++
		f.l.park(f.done.Load)
	}
	return f.val
}
