package omp

import "testing"

// Steady-state allocation regression tests for the spawn hot paths.
// After a warm-up region fills the recycling tiers (pool.go), a
// deferred or undeferred task costs no runtime allocation at all (the
// task struct is recycled and the execution Context is embedded in
// it), and a Future spawn costs only the Future itself (the producing
// fn rides inside it — no wrapping closure; see future.go).
// Thresholds leave headroom for a GC emptying the pool
// mid-measurement; the pre-recycling runtime sat at ~4 (deferred),
// ~3 (undeferred) and ~8 (future) allocations per task, so even the
// loosest bound here pins a >50% reduction.
//
// Measurements run on a one-thread team: AllocsPerRun pins
// GOMAXPROCS to 1, and a single worker keeps the counts deterministic
// (no stealing, no racing pool refills).

const allocTasks = 2000

func allocsPerTask(t *testing.T, body func(c *Context)) float64 {
	t.Helper()
	return testing.AllocsPerRun(10, func() { Parallel(1, body) }) / allocTasks
}

func TestTaskAllocsDeferred(t *testing.T) {
	noop := func(c *Context) {}
	got := allocsPerTask(t, func(c *Context) {
		for i := 0; i < allocTasks; i++ {
			c.Task(noop)
			if i%64 == 63 {
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
	if got > 1.0 {
		t.Errorf("deferred spawn path: %.3f allocs/task, want <= 1.0 (steady state is ~0)", got)
	}
}

func TestTaskAllocsUndeferred(t *testing.T) {
	noop := func(c *Context) {}
	got := allocsPerTask(t, func(c *Context) {
		for i := 0; i < allocTasks; i++ {
			c.Task(noop, If(false))
		}
	})
	if got > 1.0 {
		t.Errorf("undeferred spawn path: %.3f allocs/task, want <= 1.0 (steady state is ~0)", got)
	}
}

func TestFutureSpawnAllocs(t *testing.T) {
	fn := func(c *Context) int { return 1 }
	got := allocsPerTask(t, func(c *Context) {
		for i := 0; i < allocTasks; i++ {
			f := Spawn(c, fn)
			if i%64 == 63 {
				f.Wait(c)
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
	// The Future struct (which carries fn; see future.go's runFuture)
	// is the only inherent per-spawn heap object; the task itself and
	// the execution path must be free.
	if got > 1.2 {
		t.Errorf("future spawn path: %.3f allocs/task, want <= 1.2 (steady state is ~1)", got)
	}
}

// TestDependenceAllocsSteadyState pins the dependence-table recycling:
// a parent resolving depend clauses reuses a pooled tracker and its
// entry structs, so a chain of dependent siblings costs a small
// constant per task (successor-list append), not a map + entry per
// parent.
func TestDependenceAllocsSteadyState(t *testing.T) {
	buf := new(int)
	body := func(c *Context) { *buf++ }
	got := allocsPerTask(t, func(c *Context) {
		for i := 0; i < allocTasks; i++ {
			c.Task(body, InOut(buf))
			if i%64 == 63 {
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
	if got > 3.0 {
		t.Errorf("dependent spawn path: %.3f allocs/task, want <= 3.0", got)
	}
}
