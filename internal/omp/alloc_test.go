package omp

import "testing"

// Steady-state allocation regression tests for the spawn hot paths.
// After a warm-up region fills the recycling tiers (pool.go), a
// deferred or undeferred task costs no runtime allocation at all (the
// task struct is recycled and the execution Context is embedded in
// it), and a consumed Future spawn is likewise free (the cell comes
// from a typed pool and recycles at region end; see future.go).
// Thresholds leave headroom for a GC emptying the pool
// mid-measurement; the pre-recycling runtime sat at ~4 (deferred),
// ~3 (undeferred) and ~8 (future) allocations per task, so even the
// loosest bound here pins a >50% reduction.
//
// Measurements run on a one-thread team: AllocsPerRun pins
// GOMAXPROCS to 1, and a single worker keeps the counts deterministic
// (no stealing, no racing pool refills).

const allocTasks = 2000

func allocsPerTask(t *testing.T, body func(c *Context)) float64 {
	t.Helper()
	return testing.AllocsPerRun(10, func() { Parallel(1, body) }) / allocTasks
}

func TestTaskAllocsDeferred(t *testing.T) {
	noop := func(c *Context) {}
	got := allocsPerTask(t, func(c *Context) {
		for i := 0; i < allocTasks; i++ {
			c.Task(noop)
			if i%64 == 63 {
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
	if got > 1.0 {
		t.Errorf("deferred spawn path: %.3f allocs/task, want <= 1.0 (steady state is ~0)", got)
	}
}

func TestTaskAllocsUndeferred(t *testing.T) {
	noop := func(c *Context) {}
	got := allocsPerTask(t, func(c *Context) {
		for i := 0; i < allocTasks; i++ {
			c.Task(noop, If(false))
		}
	})
	if got > 1.0 {
		t.Errorf("undeferred spawn path: %.3f allocs/task, want <= 1.0 (steady state is ~0)", got)
	}
}

func TestFutureSpawnAllocs(t *testing.T) {
	fn := func(c *Context) int { return 1 }
	got := allocsPerTask(t, func(c *Context) {
		var fs [64]*Future[int]
		for i := 0; i < allocTasks; i++ {
			fs[i%64] = Spawn(c, fn)
			if i%64 == 63 {
				for _, f := range fs {
					f.Wait(c)
				}
			}
		}
		c.Taskwait()
	})
	// Since the typed cell pools (futPoolFor, future.go), a consumed
	// Future costs no per-spawn heap object at all: the cell recycles
	// at region end exactly like the task struct. Every future in the
	// loop is Wait()ed, so steady state is ~0 (the residue is the
	// per-region futGrave slice growth, amortized over allocTasks).
	// Under race the cell pool drops a random fraction of its traffic
	// (see raceEnabled), so only the order of magnitude is pinned.
	limit := 0.05
	if raceEnabled {
		limit = 0.6
	}
	if got > limit {
		t.Errorf("future spawn path: %.3f allocs/task, want <= %.2f (steady state is ~0)", got, limit)
	}
}

// TestDependenceAllocsSteadyState pins the dependence-table recycling:
// a parent resolving depend clauses reuses a pooled tracker and its
// entry structs, so a chain of dependent siblings costs a small
// constant per task (successor-list append), not a map + entry per
// parent.
func TestDependenceAllocsSteadyState(t *testing.T) {
	buf := new(int)
	body := func(c *Context) { *buf++ }
	got := allocsPerTask(t, func(c *Context) {
		for i := 0; i < allocTasks; i++ {
			c.Task(body, InOut(buf))
			if i%64 == 63 {
				c.Taskwait()
			}
		}
		c.Taskwait()
	})
	if got > 3.0 {
		t.Errorf("dependent spawn path: %.3f allocs/task, want <= 3.0", got)
	}
}
