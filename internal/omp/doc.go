// Package omp implements an OpenMP 3.0-style task-parallel runtime
// on goroutines: SPMD parallel regions with a fixed thread team,
// explicit tasks with tied/untied semantics, taskwait, task-executing
// barriers, single/master, loop worksharing with static/dynamic/
// guided schedules, named critical sections, threadprivate storage,
// if/final clauses, and pluggable runtime cut-off and scheduling
// policies.
//
// It is the substrate for the Go reproduction of the Barcelona OpenMP
// Tasks Suite (BOTS, Duran et al., ICPP 2009): every construct the
// nine BOTS benchmarks use from OpenMP 3.0 has a counterpart here
// with the same scheduling-relevant semantics. Tasks are scheduled by
// per-worker lock-free Chase–Lev deques with random-victim work
// stealing; a thread suspended at a taskwait executes other tasks
// subject to the OpenMP task scheduling constraint (tied tasks may
// only be interleaved with descendants; untied tasks with anything).
//
// The runtime can record the full task graph of a region through a
// trace.Recorder (see WithRecorder); the internal/sim package replays
// such traces on arbitrary virtual thread counts to reproduce the
// paper's scalability studies on hosts with few cores.
package omp
