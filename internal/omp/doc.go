// Package omp implements an OpenMP-style task-parallel runtime on
// goroutines: SPMD parallel regions with a fixed thread team,
// explicit tasks with tied/untied semantics, taskwait, task-executing
// barriers, single/master, loop worksharing with static/dynamic/
// guided schedules, named critical sections, threadprivate storage,
// if/final clauses, and pluggable runtime cut-off and scheduling
// policies.
//
// It is the substrate for the Go reproduction of the Barcelona OpenMP
// Tasks Suite (BOTS, Duran et al., ICPP 2009): every construct the
// nine BOTS benchmarks use from OpenMP 3.0 has a counterpart here
// with the same scheduling-relevant semantics. Tasks are scheduled by
// per-worker lock-free Chase–Lev deques with random-victim work
// stealing; a thread suspended at a taskwait executes other tasks
// subject to the OpenMP task scheduling constraint (tied tasks may
// only be interleaved with descendants; untied tasks with anything).
//
// Beyond the 3.0 core, the runtime provides the OpenMP 4.x tasking
// extensions the paper's future-work discussion points toward:
//
//   - Task dependences: the In, Out and InOut task options declare
//     the storage a task reads/writes, and the runtime orders sibling
//     tasks through a per-parent dependence table — a task with
//     unfinished predecessors is created but held until they finish,
//     replacing taskwait/barrier phase synchronization (see
//     DESIGN.md for the resolution and release protocol).
//   - Typed futures: Spawn[T] creates a task with a typed result and
//     Future.Wait blocks with taskwait semantics, executing other
//     ready tasks while waiting.
//   - Priorities: the Priority option routes tasks through
//     per-worker priority queues consulted before the deques by both
//     owners and thieves.
//
// The runtime can record the full task graph of a region — including
// dependence edges and priorities — through a trace.Recorder (see
// WithRecorder); the internal/sim package replays such traces on
// arbitrary virtual thread counts to reproduce the paper's
// scalability studies on hosts with few cores.
package omp
