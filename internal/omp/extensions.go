package omp

import "sync/atomic"

// This file holds constructs beyond the OpenMP 3.0 core that the BOTS
// paper's discussion points toward: taskyield and taskgroup (added in
// OpenMP 3.1/4.0 and natural follow-ons for task suites), the
// sections worksharing construct (the pre-3.0 way to express task-like
// parallelism, which the paper's introduction contrasts tasks
// against), and a reduction helper.

// Taskyield is an explicit scheduling point (OpenMP 3.1): the current
// task allows the thread to execute one other ready task, subject to
// the same scheduling constraint as taskwait. It returns true if a
// task was executed.
func (c *Context) Taskyield() bool {
	constraint := c.task
	if c.task.untied {
		constraint = nil
	}
	return c.w.runOne(constraint)
}

// Taskgroup executes body and then waits for *all* descendant tasks
// created inside it (OpenMP 4.0 taskgroup), not only direct children
// as taskwait does. It is implemented with a dedicated completion
// counter threaded through the task tree.
func (c *Context) Taskgroup(body func(*Context)) {
	tg := &taskgroup{}
	prev := c.task.group
	c.task.group = tg
	body(c)
	c.task.group = prev
	// Drain: execute tasks while the group has live members.
	constraint := c.task
	if c.task.untied {
		constraint = nil
	}
	for tg.live.Load() > 0 {
		if c.w.runOne(constraint) {
			continue
		}
		tg.park()
	}
}

// taskgroup tracks the live descendant count of one taskgroup region.
type taskgroup struct {
	live atomic.Int64
	wake chan struct{}
	mu   spinlessMutex
}

// spinlessMutex is a tiny mutex built on a channel-free CAS loop with
// Gosched; it avoids a sync.Mutex per taskgroup on the hot path.
// (Taskgroups are rare; this keeps the struct small.)
type spinlessMutex struct{ state atomic.Int32 }

func (m *spinlessMutex) lock() {
	for !m.state.CompareAndSwap(0, 1) {
		// Taskgroup signalling sections are a handful of instructions;
		// spinning is cheaper than parking here.
	}
}
func (m *spinlessMutex) unlock() { m.state.Store(0) }

func (tg *taskgroup) enter() { tg.live.Add(1) }

func (tg *taskgroup) leave() {
	if tg.live.Add(-1) == 0 {
		tg.signal()
	}
}

// signal delivers one wakeup token to a parked Taskgroup drain. It is
// called when the group's live count reaches zero and when a
// dependence release makes a group member runnable (the parked
// drainer may be the only thread able to execute it).
func (tg *taskgroup) signal() {
	tg.mu.lock()
	if tg.wake != nil {
		select {
		case tg.wake <- struct{}{}:
		default:
		}
	}
	tg.mu.unlock()
}

func (tg *taskgroup) park() {
	tg.mu.lock()
	if tg.live.Load() == 0 {
		tg.mu.unlock()
		return
	}
	if tg.wake == nil {
		tg.wake = make(chan struct{}, 1)
	}
	ch := tg.wake
	tg.mu.unlock()
	<-ch
}

// Sections executes each function on some thread of the team, at most
// one thread per section (the OpenMP sections worksharing construct),
// with an implicit barrier at the end. Every thread of the team must
// encounter the construct.
func (c *Context) Sections(sections ...func(*Context)) {
	idx := c.w.loopIdx
	c.w.loopIdx++
	st := c.w.team.loopStateFor(idx, 0)
	for {
		i := int(st.next.Add(1)) - 1
		if i >= len(sections) {
			break
		}
		sections[i](c)
	}
	c.Barrier()
}

// Reduce folds the per-thread values of tp into a single result using
// op, under the construct's critical section — the NQueens reduction
// pattern (§III-B of the paper) packaged as a helper. It must be
// called by every thread of the team; the reduced value is returned
// on all of them after an implicit barrier. The first thread to
// arrive seeds *out with zero (the operation's identity), so the
// caller need not pre-initialize it and any stale value in *out is
// discarded, matching how an OpenMP reduction privatizes and seeds
// its variable.
func Reduce[T any](c *Context, tp *ThreadPrivate[T], zero T, op func(T, T) T, out *T) {
	idx := c.w.reduceIdx
	c.w.reduceIdx++
	tm := c.w.team
	c.Critical("omp.reduce", func() {
		tm.wsMu.Lock()
		first := !tm.wsReduces[idx]
		if first {
			tm.wsReduces[idx] = true
		}
		tm.wsMu.Unlock()
		if first {
			*out = zero
		}
		*out = op(*out, *tp.Get(c))
	})
	c.Barrier()
}
