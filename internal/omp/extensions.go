package omp

import "sync/atomic"

// This file holds constructs beyond the OpenMP 3.0 core that the BOTS
// paper's discussion points toward: taskyield and taskgroup (added in
// OpenMP 3.1/4.0 and natural follow-ons for task suites), the
// sections worksharing construct (the pre-3.0 way to express task-like
// parallelism, which the paper's introduction contrasts tasks
// against), and a reduction helper.

// Taskyield is an explicit scheduling point (OpenMP 3.1): the current
// task allows the thread to execute one other ready task, subject to
// the same scheduling constraint as taskwait. It returns true if a
// task was executed.
func (c *Context) Taskyield() bool {
	constraint := c.task
	if c.task.untied {
		constraint = nil
	}
	return c.w.runOne(constraint)
}

// Taskgroup executes body and then waits for *all* descendant tasks
// created inside it (OpenMP 4.0 taskgroup), not only direct children
// as taskwait does. It is implemented with a dedicated completion
// counter threaded through the task tree.
func (c *Context) Taskgroup(body func(*Context)) {
	tg := &taskgroup{}
	prev := c.task.group
	c.task.group = tg
	body(c)
	c.task.group = prev
	// Drain: execute tasks while the group has live members. A park
	// blocks on the team waitBell; every descendant completion that
	// empties the group broadcasts there (see task.finish and
	// Team.wakeWaiters), as does a dependence release that makes a
	// group member runnable (the parked drainer may be the only thread
	// able to execute it).
	constraint := c.task
	if c.task.untied {
		constraint = nil
	}
	for tg.live.Load() > 0 {
		if c.w.runOne(constraint) {
			continue
		}
		c.w.team.waitPark(func() bool { return tg.live.Load() == 0 })
	}
}

// taskgroup tracks the live descendant count of one taskgroup region.
// It is a bare counter: parking and waking go through the team
// waitBell, so the group needs no mutex or channel of its own.
type taskgroup struct {
	live atomic.Int64
	// sub, when non-nil, is the persistent-team submission this group
	// belongs to: the whole submitted subtree is threaded through the
	// group, and the submission completes when the group empties (see
	// persistent.go). nil for ordinary Taskgroup constructs.
	sub *Submission
}

func (tg *taskgroup) enter() { tg.live.Add(1) }

// leave decrements the live count and reports whether the group just
// emptied — the caller (task.finish) broadcasts on the team bell.
func (tg *taskgroup) leave() bool {
	return tg.live.Add(-1) == 0
}

// Sections executes each function on some thread of the team, at most
// one thread per section (the OpenMP sections worksharing construct),
// with an implicit barrier at the end. Every thread of the team must
// encounter the construct.
func (c *Context) Sections(sections ...func(*Context)) {
	idx := c.w.loopIdx
	c.w.loopIdx++
	st := c.w.team.loopStateFor(idx, 0)
	for {
		i := int(st.next.Add(1)) - 1
		if i >= len(sections) {
			break
		}
		sections[i](c)
	}
	c.Barrier()
}

// Reduce folds the per-thread values of tp into a single result using
// op, under the construct's critical section — the NQueens reduction
// pattern (§III-B of the paper) packaged as a helper. It must be
// called by every thread of the team; the reduced value is returned
// on all of them after an implicit barrier. The first thread to
// arrive seeds *out with zero (the operation's identity), so the
// caller need not pre-initialize it and any stale value in *out is
// discarded, matching how an OpenMP reduction privatizes and seeds
// its variable.
func Reduce[T any](c *Context, tp *ThreadPrivate[T], zero T, op func(T, T) T, out *T) {
	idx := c.w.reduceIdx
	c.w.reduceIdx++
	tm := c.w.team
	c.Critical("omp.reduce", func() {
		tm.wsMu.Lock()
		first := !tm.wsReduces[idx]
		if first {
			tm.wsReduces[idx] = true
		}
		tm.wsMu.Unlock()
		if first {
			*out = zero
		}
		*out = op(*out, *tp.Get(c))
	})
	c.Barrier()
}
