package omp

import (
	"strings"
	"testing"
)

// TestCutoffNameRoundTrip pins the registry contract lab stores rely
// on: for every registered cut-off, the default instance's Name()
// resolves back through NewCutoff, and the resolved policy renders
// the same name — so a cut-off label recorded in a sweep can always
// be replayed. (Defaulted MaxTasks{} used to render "maxtasks(0)",
// which NewCutoff rejected; and "maxdepth" was missing from the
// registry entirely.)
func TestCutoffNameRoundTrip(t *testing.T) {
	for _, name := range Cutoffs() {
		p, err := NewCutoff(name)
		if err != nil {
			t.Fatalf("NewCutoff(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewCutoff(%q).Name() = %q; default instances must render the bare registry name", name, p.Name())
		}
		rt, err := NewCutoff(p.Name())
		if err != nil {
			t.Errorf("NewCutoff(%q) does not round-trip: %v", p.Name(), err)
		} else if rt.Name() != p.Name() {
			t.Errorf("round-trip of %q changed the name to %q", p.Name(), rt.Name())
		}
	}
}

// TestCutoffParameterizedForms checks the name(limit) vocabulary
// manifests use to sweep cut-off limits.
func TestCutoffParameterizedForms(t *testing.T) {
	cases := []struct {
		name string
		want CutoffPolicy
	}{
		{"maxtasks(128)", MaxTasks{Limit: 128}},
		{"maxqueue(16)", MaxQueue{Limit: 16}},
		{"maxdepth(8)", MaxDepth{Limit: 8}},
		{"adaptive(4,64)", Adaptive{LowWater: 4, HighWater: 64}},
		{"maxtasks", MaxTasks{}},
		{"maxdepth", MaxDepth{}},
		{"adaptive", Adaptive{}},
		{"", NoCutoff{}},
		{"none", NoCutoff{}},
	}
	for _, tc := range cases {
		p, err := NewCutoff(tc.name)
		if err != nil {
			t.Errorf("NewCutoff(%q): %v", tc.name, err)
			continue
		}
		if p != tc.want {
			t.Errorf("NewCutoff(%q) = %#v, want %#v", tc.name, p, tc.want)
		}
		// Every parameterized instance must round-trip too.
		if rt, err := NewCutoff(p.Name()); err != nil {
			t.Errorf("NewCutoff(%q).Name() = %q does not resolve: %v", tc.name, p.Name(), err)
		} else if rt != p {
			t.Errorf("round-trip of %q = %#v, want %#v", p.Name(), rt, p)
		}
	}

	bad := []string{
		"maxtasks(",            // malformed
		"maxtasks()",           // empty parameter list
		"maxtasks(x)",          // non-integer
		"maxtasks(1,2)",        // too many
		"maxtasks(-3)",         // non-positive limit
		"none(3)",              // none takes no parameters
		"adaptive(4)",          // adaptive takes zero or two
		"adaptive(64,4)",       // inverted watermarks
		"adaptive(0,64)",       // non-positive low watermark
		"maxdepth(4294967296)", // overflows int32 depth range
		"(3)",                  // no base name
		"bogus(3)",             // unknown base
		"maxdepth(8",           // unbalanced
	}
	for _, name := range bad {
		if _, err := NewCutoff(name); err == nil {
			t.Errorf("NewCutoff(%q) should fail", name)
		}
	}
}

// TestMaxDepthPolicy checks maxdepth semantics: the default limit
// defers shallow tasks and inlines deep ones, and the configured
// limit is honored by the runtime end to end.
func TestMaxDepthPolicy(t *testing.T) {
	if p := (MaxDepth{}); !p.Defer(nil, nil, 1) || p.Defer(nil, nil, defaultMaxDepth+1) {
		t.Fatalf("MaxDepth{} default limit broken")
	}
	p, err := NewCutoff("maxdepth(2)")
	if err != nil {
		t.Fatal(err)
	}
	var res int64
	st := Parallel(2, func(c *Context) {
		c.Single(func(c *Context) {
			c.Task(func(c *Context) { parFib(c, 10, &res) })
		})
	}, WithCutoff(p))
	if want := fibSeq(10); res != want {
		t.Fatalf("fib(10) under maxdepth(2) = %d, want %d", res, want)
	}
	if st.TasksUndeferred == 0 {
		t.Fatalf("maxdepth(2) inlined no tasks: %+v", st)
	}
	if st.TasksCreated == 0 {
		t.Fatalf("maxdepth(2) deferred no tasks: %+v", st)
	}
}

// TestCutoffUnknownErrorListsMaxdepth ensures the vocabulary error
// mentions the newly registered policy.
func TestCutoffUnknownErrorListsMaxdepth(t *testing.T) {
	_, err := NewCutoff("bogus")
	if err == nil || !strings.Contains(err.Error(), "maxdepth") {
		t.Fatalf("unknown-cutoff error should list maxdepth, got %v", err)
	}
}
