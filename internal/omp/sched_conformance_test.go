package omp

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSchedulerRegistry checks the registry vocabulary and its error
// behaviour — every layer (lab manifests, CLI flags) resolves names
// through it, so this is the contract those layers rely on.
func TestSchedulerRegistry(t *testing.T) {
	names := Schedulers()
	for _, want := range []string{"workfirst", "breadthfirst", "centralized", "locality"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	s, err := NewScheduler("")
	if err != nil || s.Name() != DefaultScheduler {
		t.Fatalf(`NewScheduler("") = %v, %v; want the default %q`, s, err, DefaultScheduler)
	}
	if _, err := NewScheduler("bogus"); err == nil || !strings.Contains(err.Error(), "workfirst") {
		t.Fatalf("unknown-scheduler error should list the vocabulary, got %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("WithScheduler should panic on an unknown name")
			}
		}()
		WithScheduler("bogus")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate RegisterScheduler should panic")
			}
		}()
		RegisterScheduler("workfirst", func() Scheduler { return nil })
	}()
}

// TestSchedulerSeedPerRegion checks the per-region victim-selection
// seeding: the deque-family schedulers must surface a non-zero seed
// in Stats that differs across repeated regions (so steal orders are
// not replayed), while the centralized pool — no randomized decisions
// — reports zero.
func TestSchedulerSeedPerRegion(t *testing.T) {
	seeds := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		st := Parallel(2, func(c *Context) {
			c.Single(func(c *Context) {
				c.Task(func(c *Context) {})
				c.Taskwait()
			})
		}, WithScheduler("workfirst"))
		if st.SchedulerSeed == 0 {
			t.Fatal("workfirst region reported a zero scheduler seed")
		}
		if seeds[st.SchedulerSeed] {
			t.Fatalf("seed %#x repeated across regions", st.SchedulerSeed)
		}
		seeds[st.SchedulerSeed] = true
	}
	st := Parallel(2, func(c *Context) {}, WithScheduler("centralized"))
	if st.SchedulerSeed != 0 {
		t.Fatalf("centralized region reported seed %#x, want 0 (no randomized decisions)", st.SchedulerSeed)
	}
}

// TestCutoffRegistry checks the runtime cut-off name vocabulary.
func TestCutoffRegistry(t *testing.T) {
	for _, name := range []string{"none", "maxtasks", "maxqueue", "maxdepth", "adaptive"} {
		if _, err := NewCutoff(name); err != nil {
			t.Errorf("NewCutoff(%q): %v", name, err)
		}
	}
	if p, err := NewCutoff(""); err != nil || p.Name() != "none" {
		t.Fatalf(`NewCutoff("") = %v, %v; want NoCutoff`, p, err)
	}
	if _, err := NewCutoff("sometimes"); err == nil || !strings.Contains(err.Error(), "maxtasks") {
		t.Fatalf("unknown-cutoff error should list the vocabulary, got %v", err)
	}
}

// TestSchedulerConformance runs the shared scheduler contract against
// every registered scheduler: the taskwait scheduling constraint and
// the tied-task constraint, dependence hold/release, priority
// ordering, panic propagation, and barrier drain must hold however
// tasks are queued and consumed.
func TestSchedulerConformance(t *testing.T) {
	for _, name := range Schedulers() {
		name := name
		t.Run(name, func(t *testing.T) {
			opt := WithScheduler(name)

			t.Run("TaskwaitFib", func(t *testing.T) {
				var got int64
				st := Parallel(4, func(c *Context) {
					c.Single(func(c *Context) {
						c.Task(func(c *Context) { parFib(c, 15, &got) })
					})
				}, opt)
				if want := fibSeq(15); got != want {
					t.Fatalf("fib(15) = %d, want %d", got, want)
				}
				if st.TotalTasks() == 0 {
					t.Fatal("no tasks recorded")
				}
			})

			// A thread suspended in a *tied* task's taskwait may only
			// execute descendants of that task: the sibling X must
			// never run inside P's wait, under any queue discipline.
			t.Run("TiedConstraint", func(t *testing.T) {
				var inPWait, violation atomic.Bool
				Parallel(1, func(c *Context) {
					c.Task(func(c *Context) { // X: sibling of P
						if inPWait.Load() {
							violation.Store(true)
						}
					})
					c.Task(func(c *Context) { // P: tied
						inPWait.Store(true)
						c.Task(func(c *Context) {})
						c.Taskwait() // may run P's child, never X
						inPWait.Store(false)
					})
					c.Taskwait()
				}, opt)
				if violation.Load() {
					t.Fatal("sibling task ran inside a tied task's taskwait")
				}
			})

			t.Run("DependenceHoldRelease", func(t *testing.T) {
				var x int64
				var bad atomic.Bool
				buf := new(int)
				st := Parallel(4, func(c *Context) {
					c.Single(func(c *Context) {
						c.Task(func(c *Context) {
							time.Sleep(2 * time.Millisecond)
							atomic.StoreInt64(&x, 1)
						}, Out(buf))
						c.Task(func(c *Context) {
							if atomic.LoadInt64(&x) != 1 {
								bad.Store(true)
							}
							atomic.StoreInt64(&x, 2)
						}, InOut(buf))
						c.Task(func(c *Context) {
							if atomic.LoadInt64(&x) != 2 {
								bad.Store(true)
							}
						}, In(buf))
					})
				}, opt)
				if bad.Load() {
					t.Fatal("dependence chain executed out of order")
				}
				if st.DepEdges < 2 {
					t.Fatalf("DepEdges = %d, want >= 2", st.DepEdges)
				}
				if st.TasksDepDeferred == 0 || st.DepReleases == 0 {
					t.Fatalf("expected held+released tasks, got %+v", st)
				}
			})

			// All four schedulers support the priority hint: on one
			// worker, prioritized ready tasks must run highest-first.
			t.Run("PriorityOrder", func(t *testing.T) {
				var order []int
				Parallel(1, func(c *Context) {
					c.Task(func(c *Context) {
						for _, p := range []int{2, 5, 1, 4, 3} {
							p := p
							c.Task(func(c *Context) { order = append(order, p) }, Priority(p))
						}
						c.Taskwait()
					})
					c.Taskwait()
				}, opt)
				want := []int{5, 4, 3, 2, 1}
				if len(order) != len(want) {
					t.Fatalf("ran %d prioritized tasks, want %d", len(order), len(want))
				}
				for i := range want {
					if order[i] != want[i] {
						t.Fatalf("execution order %v, want %v", order, want)
					}
				}
			})

			t.Run("PanicPropagation", func(t *testing.T) {
				var ran atomic.Int64
				func() {
					defer func() {
						if r := recover(); r != "boom" {
							t.Errorf("recovered %v, want boom", r)
						}
					}()
					Parallel(4, func(c *Context) {
						c.Single(func(c *Context) {
							for i := 0; i < 20; i++ {
								c.Task(func(c *Context) { ran.Add(1) })
							}
							c.Task(func(c *Context) { panic("boom") })
						})
					}, opt)
					t.Error("Parallel should re-raise the task panic")
				}()
				if ran.Load() != 20 {
					t.Errorf("region did not drain after panic: %d/20 tasks ran", ran.Load())
				}
			})

			t.Run("BarrierDrain", func(t *testing.T) {
				var n atomic.Int64
				Parallel(4, func(c *Context) {
					for i := 0; i < 50; i++ {
						c.Task(func(c *Context) { n.Add(1) })
					}
					c.Barrier()
					if got := n.Load(); got != 200 {
						t.Errorf("after barrier: %d tasks ran, want 200", got)
					}
				}, opt)
			})

			// A thief that parked on the doorbell (after the
			// advertisement word reported an empty team) must wake and
			// reach tasks that a worker advertises later: the region
			// starts with a long quiet phase — long past the spin
			// budget, so the other workers genuinely park — and only
			// then produces work. Pinning IdleParks > 0 proves the
			// park happened; completion of all tasks with cross-worker
			// execution proves the advertisement woke the parkers.
			t.Run("ParkedThiefWakesOnAdvertise", func(t *testing.T) {
				var ran atomic.Int64
				st := Parallel(4, func(c *Context) {
					c.Single(func(c *Context) {
						time.Sleep(10 * time.Millisecond) // peers exhaust spin and park
						for i := 0; i < 64; i++ {
							c.Task(func(c *Context) {
								time.Sleep(100 * time.Microsecond)
								ran.Add(1)
							})
						}
						c.Taskwait()
					})
				}, opt)
				if got := ran.Load(); got != 64 {
					t.Fatalf("%d tasks ran, want 64", got)
				}
				if st.IdleParks == 0 {
					t.Fatal("no worker parked during the quiet phase; the wake path was not exercised")
				}
				if st.TasksStolen == 0 {
					t.Fatal("all tasks ran on the producer: parked workers never picked up advertised work")
				}
			})

			// A single generator on a multi-worker team: the other
			// workers must reach the queued tasks (by stealing, or via
			// the shared pool) and every task must run exactly once.
			t.Run("WorkDistribution", func(t *testing.T) {
				var n atomic.Int64
				st := Parallel(4, func(c *Context) {
					c.Single(func(c *Context) {
						for i := 0; i < 200; i++ {
							c.Task(func(c *Context) {
								time.Sleep(100 * time.Microsecond)
								n.Add(1)
							})
						}
						c.Taskwait()
					})
				}, opt)
				if n.Load() != 200 {
					t.Fatalf("%d tasks ran, want 200", n.Load())
				}
				if st.TasksStolen == 0 {
					t.Fatal("single generator, 4 workers: expected cross-worker execution")
				}
			})
		})
	}
}
