package omp

import (
	"sync"
	"sync/atomic"
)

// prioQueue holds a worker's ready tasks that carry a non-zero
// priority. Unlike the Chase–Lev deque it is a small mutex-guarded
// structure: priorities are rare (a handful of critical-path tasks
// among thousands), so contention is negligible and a scan beats
// heap bookkeeping at these sizes. Both the owner and thieves take
// from it, always highest-priority first, FIFO among equals. The
// atomic length keeps the empty case — every runOne of a program
// that never uses Priority — lock-free.
type prioQueue struct {
	n     atomic.Int32
	mu    sync.Mutex
	items []prioItem
	seq   uint64
}

type prioItem struct {
	t   *task
	seq uint64
}

// push appends a task. Both push and take are mutex-guarded, so
// either may be called from any goroutine (the centralized scheduler
// shares one prioQueue across the whole team).
func (q *prioQueue) push(t *task) {
	q.mu.Lock()
	q.items = append(q.items, prioItem{t: t, seq: q.seq})
	q.seq++
	q.n.Store(int32(len(q.items)))
	q.mu.Unlock()
}

// take removes and returns the highest-priority task accepted by
// pred (nil accepts all), breaking ties by insertion order. It
// returns nil when no admissible task is queued. The empty check is
// a single atomic load, so callers may probe freely on hot paths.
func (q *prioQueue) take(pred func(*task) bool) *task {
	if q.n.Load() == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	best := -1
	for i := range q.items {
		it := &q.items[i]
		if pred != nil && !pred(it.t) {
			continue
		}
		if best < 0 || it.t.priority > q.items[best].t.priority ||
			(it.t.priority == q.items[best].t.priority && it.seq < q.items[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	t := q.items[best].t
	q.items = append(q.items[:best], q.items[best+1:]...)
	q.n.Store(int32(len(q.items)))
	return t
}

// size returns the current number of queued priority tasks.
func (q *prioQueue) size() int64 { return int64(q.n.Load()) }

// clearStale nils stale item slots beyond the live length (take's
// truncating append leaves the last removed element duplicated in the
// backing array) so a pooled queue does not pin dead tasks across
// regions. Called only from quiescent contexts (scheduler Fini).
func (q *prioQueue) clearStale() {
	items := q.items[:cap(q.items)]
	for i := range items {
		items[i] = prioItem{}
	}
	q.items = q.items[:0]
	q.n.Store(0)
}
