package omp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bots/internal/obs"
	"bots/internal/trace"
)

// Team is one parallel region's thread team: a set of workers
// executing an SPMD region body plus the explicit tasks it creates,
// with all task placement and consumption delegated to a Scheduler.
type Team struct {
	workers []*worker
	cutoff  CutoffPolicy
	sched   Scheduler
	// adv is sched's work-advertisement view, when it provides one
	// (cached type assertion; nil otherwise). runOne consults it
	// before a steal attempt so an idle worker on an empty team goes
	// straight to the park instead of sweeping P queue tops.
	adv workAdvertiser
	rec *trace.Recorder
	// fr, when non-nil, receives spawn/steal/park/wake/submit/finish
	// events (WithFlightRecorder). Every event site nil-checks it, so
	// the default configuration pays one predictable branch.
	fr *obs.FlightRecorder
	// pinWorkers makes every worker goroutine wire itself to an OS
	// thread (runtime.LockOSThread) for the region's lifetime — the
	// oversubscription/pinning lab axis (WithPinning).
	pinWorkers bool

	// Cache-line padding between the hot atomic clusters below: each
	// cluster has a distinct writer population and write rate, and
	// without separation a write to one (liveTasks, touched by every
	// spawn and finish on every core) would keep invalidating the line
	// under the read-mostly words next to it (idleWaiters, loaded on
	// every enqueue; waitParkers, loaded on every completion). The
	// padding microbench in internal/perf (pad.go) measures the
	// cross-core invalidation cost these pads remove; the separations
	// are pinned by TestPaddedLayout. The Team is allocated once per
	// region, so the size cost is irrelevant.
	_ [64]byte

	// liveTasks counts deferred tasks created and not yet finished;
	// barriers wait for it to reach zero. The hottest shared word of a
	// region: every task creation and completion writes it from
	// whichever core runs the task, so it gets a line of its own.
	liveTasks atomic.Int64
	_         [56]byte

	// Barrier state (sense-reversing, task-executing). barBells holds
	// one completion bell per barrier-generation parity: workers parked
	// at generation g block on barBells[g&1], and the completing worker
	// closes it — a closed-channel broadcast wakes *every* parker of
	// that generation and cannot be absorbed, unlike doorbell tokens,
	// which workers that already advanced to generation g+1 can drain
	// through their own spin→park cycles before a still-parked
	// generation-g worker is handed one (a real lost-wakeup observed as
	// one worker asleep at a completed barrier while the rest park at
	// the next). The slot for g+1 is re-armed by the completer of g
	// *before* barGen advances, so a generation-g+1 parker — which
	// loads its bell only after observing barGen == g+1 — always finds
	// a fresh channel; the slot being recycled belonged to g-1, whose
	// parkers all left (completing g required their arrival).
	barGen     atomic.Int64
	barArrived atomic.Int64
	barBells   [2]chan struct{}
	_          [32]byte // barrier cluster: 32 bytes of fields + pad = one line

	// Doorbell for the bounded-spin→park idle protocol: workers that
	// exhaust their spin budget register in idleWaiters and block on
	// the doorbell channel; every task enqueue and every submission
	// rings it. The channel's capacity is the team size, so a
	// non-blocking send can never lose a wake while any worker still
	// needs one (≤ n-1 parkers ⇒ a full buffer already holds a token
	// for each). Barrier completion broadcasts via barBells above, not
	// doorbell tokens. See barrier for the lost-wakeup argument.
	// idleWaiters is read-mostly: loaded by ring() on every enqueue,
	// written only at park/unpark edges — so its line stays in the
	// shared state of every core's cache as long as nothing hot is
	// co-located with it.
	idleWaiters atomic.Int32
	doorbell    chan struct{}
	_           [48]byte

	// waitBell is the futex-style park word for condition waiters —
	// taskwait, Future.Wait and Taskgroup drains. A waiter registers
	// in waitParkers, loads the current bell, re-checks its condition,
	// and blocks on the bell; every completion event that can satisfy
	// a waiter (a subtree's last child finishing, a future completing,
	// a taskgroup emptying, a dependence release) broadcasts via
	// wakeWaiters, which swaps in a fresh bell and closes the old one.
	// Broadcasts are recipient-agnostic — every parked waiter re-checks
	// its own condition — which is what lets one shared word replace
	// the old per-task mutex + lazily-allocated wake channel without
	// misdirected-token deadlocks; the close-based broadcast (rather
	// than depositing tokens) is what makes it absorption-proof. See
	// wakeWaiters for the lost-wakeup argument.
	// waitParkers is likewise read-mostly (loaded by wakeWaiters on
	// every completion that could satisfy a waiter).
	waitParkers atomic.Int32
	waitBell    atomic.Pointer[chan struct{}]
	_           [48]byte

	// Worksharing bookkeeping: per-construct-instance state, keyed by
	// each thread's private construct counter (all threads encounter
	// worksharing constructs in the same order, per OpenMP rules).
	wsMu      sync.Mutex
	wsSingles map[int64]bool
	wsLoops   map[int64]*loopState
	wsReduces map[int64]bool

	// panicVal holds the first panic raised by a task or region body;
	// Parallel re-raises it after the region completes.
	panicMu  sync.Mutex
	panicVal any
}

// TeamOpt configures a parallel region.
type TeamOpt func(*teamConfig)

type teamConfig struct {
	cutoff CutoffPolicy
	sched  Scheduler
	rec    *trace.Recorder
	fr     *obs.FlightRecorder
	pin    bool
}

// WithCutoff installs a runtime cut-off policy (default NoCutoff).
func WithCutoff(p CutoffPolicy) TeamOpt { return func(c *teamConfig) { c.cutoff = p } }

// WithScheduler selects the task scheduler by registry name; the
// empty name selects DefaultScheduler. It panics on an unknown name —
// layers that accept user input validate through NewScheduler (or
// Schedulers) first, so by the time an option list is assembled the
// name is a programming error if invalid. A scheduler instance
// belongs to one region, so the option constructs a fresh one each
// time it is applied: the same TeamOpt value may be reused across
// (even concurrent) Parallel calls.
func WithScheduler(name string) TeamOpt {
	if _, err := NewScheduler(name); err != nil {
		panic(err)
	}
	return func(c *teamConfig) {
		s, err := NewScheduler(name)
		if err != nil {
			panic(err)
		}
		c.sched = s
	}
}

// WithRecorder attaches a task-graph recorder; every task event in
// the region is recorded for later simulation.
func WithRecorder(r *trace.Recorder) TeamOpt { return func(c *teamConfig) { c.rec = r } }

// WithPinning wires each worker goroutine to its own OS thread
// (runtime.LockOSThread) for the region's — or persistent team's —
// lifetime. Go cannot bind an OS thread to a particular core, but
// locking removes goroutine migration between threads, which is the
// controllable half of CPU affinity: with GOMAXPROCS >= team size,
// each pinned worker keeps its P, its timer state, and its cache
// working set. The lab's oversubscription axis sweeps this knob
// against the Procs axis (see internal/lab and core.RunConfig).
func WithPinning(on bool) TeamOpt { return func(c *teamConfig) { c.pin = on } }

// worker is one team thread.
type worker struct {
	id   int
	team *Team
	cur  *task // task currently executing on this worker

	singleIdx int64 // private counter of single constructs encountered
	loopIdx   int64 // private counter of loop constructs encountered
	reduceIdx int64 // private counter of Reduce constructs encountered

	// Task-recycling tiers (pool.go); owner-only.
	freeTasks []*task
	grave     []*task
	futGrave  []futCell
	freeSuccs []*succNode

	// taskCfg is the scratch task-creation config Task/Spawn apply
	// options into; owner-only. Living in the worker (already on the
	// heap) keeps the opaque option calls from forcing a per-spawn
	// heap allocation of the config.
	taskCfg taskConfig

	// Reusable constraint predicate: runOne installs the suspended
	// tied task in predConstraint and hands schedulers predFn, so a
	// constrained pick allocates no closure. predFn is built once per
	// worker; predConstraint is only read during the synchronous
	// PopLocal/Steal calls of this worker's own runOne.
	predConstraint *task
	predFn         func(*task) bool

	stats workerStats
}

// Parallel executes body on a team of n threads, each running in its
// own goroutine, with an implicit task-executing barrier at the end
// of the region (the region returns only when every explicit task has
// completed). It returns the region's aggregated runtime statistics.
//
// Nested Parallel calls are not supported (the BOTS benchmarks do not
// use nested parallel regions); use tasks for nested parallelism.
func Parallel(n int, body func(*Context), opts ...TeamOpt) *Stats {
	if n < 1 {
		n = 1
	}
	tm, implicit := newTeam(n, opts)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := tm.workers[i]
		it := implicit[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tm.pinWorkers {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			w.cur = it
			func() {
				defer func() {
					if r := recover(); r != nil {
						tm.recordPanic(r)
					}
				}()
				it.ctx = Context{w: w, task: it}
				body(&it.ctx)
			}()
			// Join the final barrier even if the body panicked, so
			// the rest of the team is not wedged waiting for us.
			tm.barrier(w)
		}()
	}
	wg.Wait()
	st := tm.shutdown(implicit)
	if tm.panicVal != nil {
		panic(tm.panicVal)
	}
	return st
}

// newTeam builds the team structure shared by Parallel and
// NewPersistentTeam: n workers with their predicate closures, the
// initialized scheduler, and one implicit (depth-0) task per worker
// drawn from the global pool.
func newTeam(n int, opts []TeamOpt) (*Team, []*task) {
	cfg := teamConfig{cutoff: NoCutoff{}}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.sched == nil {
		s, err := NewScheduler(DefaultScheduler)
		if err != nil {
			panic(err) // the default is registered by this package
		}
		cfg.sched = s
	}
	tm := &Team{
		cutoff:     cfg.cutoff,
		sched:      cfg.sched,
		rec:        cfg.rec,
		fr:         cfg.fr,
		pinWorkers: cfg.pin,
		doorbell:   make(chan struct{}, n),
		wsSingles:  make(map[int64]bool),
		wsLoops:    make(map[int64]*loopState),
		wsReduces:  make(map[int64]bool),
	}
	tm.barBells[0] = make(chan struct{})
	tm.barBells[1] = make(chan struct{})
	wb := make(chan struct{})
	tm.waitBell.Store(&wb)
	tm.adv, _ = cfg.sched.(workAdvertiser)
	tm.sched.Init(n)
	tm.workers = make([]*worker, n)
	implicit := make([]*task, n)
	for i := 0; i < n; i++ {
		w := &worker{id: i, team: tm}
		w.predFn = func(c *task) bool { return c.isDescendantOf(w.predConstraint) }
		tm.workers[i] = w
		it := taskPool.Get().(*task)
		it.team = tm
		if tm.rec != nil {
			it.node = tm.rec.Root()
		}
		implicit[i] = it
	}
	return tm, implicit
}

// shutdown finalizes a team after every worker goroutine has joined:
// no thief or waiter can hold a task reference anymore, so the team's
// tasks recycle into the global pool (pool.go) — including on the
// panic path. Returns the final aggregated stats.
func (tm *Team) shutdown(implicit []*task) *Stats {
	tm.sched.Fini()
	if regionEndHook != nil {
		regionEndHook(tm)
	}
	for _, w := range tm.workers {
		w.releaseTasks()
	}
	for _, it := range implicit {
		it.reset()
		taskPool.Put(it)
	}
	return tm.aggregateStats()
}

// regionEndHook, when non-nil, observes each team after its final
// barrier and before task recycling. Tests use it to assert region
// invariants (e.g. the live-task count returning to zero).
var regionEndHook func(*Team)

// barrierSpinRounds is the bounded spin budget: consecutive empty
// probes a worker makes at a barrier before it parks on the team
// doorbell. Short enough that an idle worker stops burning its core
// (and stops hammering other workers' queue tops with failing steal
// CASes) almost immediately; long enough to ride out the common
// task-about-to-be-pushed window without a park/wake round trip.
const barrierSpinRounds = 32

// barrier is the team barrier: a scheduling point at which arriving
// workers execute queued tasks (from any queue, unconstrained) until
// every worker has arrived and no live task remains, as OpenMP
// requires of barriers.
//
// Idle protocol (bounded spin → park): after barrierSpinRounds empty
// probes the worker registers in idleWaiters, re-probes once, and
// blocks on the doorbell and this generation's barrier bell. The
// re-probe after registration is what makes the park lose no wakeups:
// an enqueuer writes its queue before loading idleWaiters, and a
// parker increments idleWaiters before reading the queues — both
// through sequentially-consistent atomics — so either the parker's
// re-probe sees the task or the enqueuer sees the registration and
// rings. Barrier completion closes the generation's bell, which
// releases every parked peer at once; a closed channel cannot be
// drained by workers that already advanced to the next generation,
// which is why completion does not use doorbell tokens (a bounded
// token supply can be absorbed by the next generation's own spin→park
// cycles, starving a still-parked worker of the old one).
func (tm *Team) barrier(w *worker) {
	w.stats.barriers.Add(1)
	n := int64(len(tm.workers))
	gen := tm.barGen.Load()
	bell := tm.barBells[gen&1]
	tm.barArrived.Add(1)
	idle := 0
	for tm.barGen.Load() == gen {
		if w.runOne(nil) {
			idle = 0
			continue
		}
		if tm.barArrived.Load() == n && tm.liveTasks.Load() == 0 {
			if tm.barArrived.CompareAndSwap(n, 0) {
				// Re-arm the next generation's bell before publishing the
				// generation change: a worker parks on barBells[g&1] only
				// after loading barGen == g, so it can never observe the
				// slot mid-recycle. Closing the current bell then wakes
				// every generation-gen parker, no matter how many.
				tm.barBells[(gen+1)&1] = make(chan struct{})
				tm.barGen.Add(1)
				close(bell)
			}
			continue
		}
		idle++
		if idle < barrierSpinRounds {
			if idle > 4 {
				runtime.Gosched()
			}
			continue
		}
		// Spin budget exhausted: park until an enqueue rings or the
		// barrier completion closes the bell. Register first, then
		// re-check every wake condition (runnable task, completable or
		// completed barrier) so no concurrent wake can be missed.
		tm.idleWaiters.Add(1)
		if w.runOne(nil) || tm.barGen.Load() != gen ||
			(tm.barArrived.Load() == n && tm.liveTasks.Load() == 0) {
			tm.idleWaiters.Add(-1)
			idle = 0
			continue
		}
		w.stats.idleParks.Add(1) // counted only when the worker truly blocks
		tm.parkOnDoorbell(w, bell)
		tm.idleWaiters.Add(-1)
		idle = 0
	}
}

// parkOnDoorbell blocks w until a doorbell token arrives (task
// enqueue, submission, shutdown) or bell is closed (barrier
// completion broadcast; pass nil when no barrier bell applies, e.g.
// the persistent team's serve loop). Wrapped in flight-recorder
// park/wake events when a recorder is attached (park carries the
// live-task count, wake the park duration in ns).
func (tm *Team) parkOnDoorbell(w *worker, bell chan struct{}) {
	fr := tm.fr
	if fr == nil {
		select {
		case <-tm.doorbell:
		case <-bell:
		}
		return
	}
	fr.Record(w.id, obs.EvPark, tm.liveTasks.Load())
	t0 := time.Now()
	select {
	case <-tm.doorbell:
	case <-bell:
	}
	fr.Record(w.id, obs.EvWake, int64(time.Since(t0)))
}

// ring wakes one parked worker, if any. Called after every task
// enqueue (see worker.enqueue). The load-then-send is cheap enough
// for the spawn hot path: with no parker registered it is a single
// atomic load.
func (tm *Team) ring() {
	if tm.idleWaiters.Load() > 0 {
		select {
		case tm.doorbell <- struct{}{}:
		default:
		}
	}
}

// ringAll deposits one doorbell token per worker — a bounded one-shot
// wake used by persistent-team shutdown (workers re-check `closed`
// and exit, never re-park) and by tests. Barrier completion does NOT
// use it: its tokens can be absorbed by workers spinning through
// later park cycles, so barriers broadcast by closing barBells
// instead (see barrier).
func (tm *Team) ringAll() {
	for range tm.workers {
		select {
		case tm.doorbell <- struct{}{}:
		default:
		}
	}
}

// wakeWaiters broadcasts to every parked condition waiter (taskwait,
// Future.Wait, Taskgroup). With no waiter registered it is a single
// atomic load — the common completion path stays as cheap as the old
// per-task signalWake's mutex-free fast path, without the per-task
// mutex + channel behind it.
//
// No-lost-wakeup argument (all atomics are sequentially consistent):
// a waiter increments waitParkers, loads the current bell, re-checks
// its wait condition, then blocks on the loaded bell; a completer
// changes the waited-on state, then loads waitParkers. If the
// waiter's re-check missed the state change, the change — and
// therefore the completer's waitParkers load — is ordered after the
// waiter's increment, so the completer observes the registration and
// broadcasts by swapping in a fresh bell and closing the one it
// replaced. The waiter loaded its bell *before* the re-check, so the
// bell it blocks on is the swapped-out one (or an even older one,
// already closed): the close reaches it. Closing — rather than
// depositing tokens — makes the broadcast absorption-proof: no
// sequence of other waiters' park/re-check cycles can consume it.
// The fresh channel is allocated only when a parker is registered, so
// the common completion path stays allocation-free.
func (tm *Team) wakeWaiters() {
	if tm.waitParkers.Load() == 0 {
		return
	}
	fresh := make(chan struct{})
	old := tm.waitBell.Swap(&fresh)
	close(*old)
}

// waitPark blocks the calling worker until the next completion
// broadcast, unless cond() already holds after registration. Callers
// loop around it re-checking their own condition: a wake proves only
// that *some* completion happened. The bell load MUST precede the
// cond() re-check — loading after would let a completer swap and
// close the old bell between the (failed) re-check and the load,
// leaving the waiter parked on a bell nobody will ever close.
func (tm *Team) waitPark(cond func() bool) {
	tm.waitParkers.Add(1)
	bell := tm.waitBell.Load()
	if cond() {
		tm.waitParkers.Add(-1)
		return
	}
	<-*bell
	tm.waitParkers.Add(-1)
}

// runOne tries to execute one ready task, honouring the OpenMP task
// scheduling constraint: when constraint is non-nil (a suspended tied
// task), only descendants of that task may run on this thread. It
// returns true if a task was executed.
//
// The pick order is the scheduler's: local area first (priority
// queue, then own queue under the scheduler's discipline), then a
// steal. The runtime only counts — every placement decision lives in
// the Scheduler.
func (w *worker) runOne(constraint *task) bool {
	var pred func(*task) bool
	if constraint != nil {
		// Reuse the worker's prebuilt predicate closure instead of
		// allocating one per call; predConstraint is only read inside
		// the synchronous scheduler calls below, so a nested runOne
		// (from a task body suspended deeper) may freely overwrite it.
		w.predConstraint = constraint
		pred = w.predFn
	}
	sched := w.team.sched
	t := sched.PopLocal(w.id, pred)
	if t == nil && len(w.team.workers) > 1 {
		// Consult the work-advertisement word before sweeping victims:
		// when no other worker advertises queued work, skip the steal
		// attempt entirely — no counter churn, no remote cache-line
		// probes — and let the caller proceed to its park. Liveness is
		// preserved because every Push sets the advertisement before
		// the doorbell ring, and every parker re-probes after
		// registering (see advMask and barrier).
		if adv := w.team.adv; adv == nil || adv.HasStealableWork(w.id) {
			w.stats.stealAttempts.Add(1)
			t = sched.Steal(w.id, pred)
			if t == nil {
				w.stats.stealFails.Add(1)
			} else if fr := w.team.fr; fr != nil {
				fr.Record(w.id, obs.EvSteal, int64(t.depth))
			}
		}
	}
	if t == nil {
		return false
	}
	w.execute(t, t.parent != nil && t.creator != w)
	return true
}

// execute runs task t to completion on w (tasks never migrate once
// started: tied semantics are the baseline, and untied tasks differ
// only in their scheduling-point flexibility). A panic in the task
// body is contained: completion bookkeeping still runs (so waiters
// and barriers are not wedged), the first panic value is recorded,
// and Parallel re-raises it after the region drains.
func (w *worker) execute(t *task, stolen bool) {
	if stolen {
		w.stats.tasksStolen.Add(1)
	}
	prev := w.cur
	w.cur = t
	defer func() {
		if r := recover(); r != nil {
			w.team.recordPanic(r)
		}
		t.finish(w)
		w.cur = prev
	}()
	t.ctx = Context{w: w, task: t}
	t.run(&t.ctx)
}

// recordPanic stores the first panic raised by any task or region
// body of the team.
func (tm *Team) recordPanic(v any) {
	tm.panicMu.Lock()
	if tm.panicVal == nil {
		tm.panicVal = v
	}
	tm.panicMu.Unlock()
}
