package omp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bots/internal/trace"
)

// Team is one parallel region's thread team: a set of workers
// executing an SPMD region body plus the explicit tasks it creates,
// with all task placement and consumption delegated to a Scheduler.
type Team struct {
	workers []*worker
	cutoff  CutoffPolicy
	sched   Scheduler
	rec     *trace.Recorder

	// liveTasks counts deferred tasks created and not yet finished;
	// barriers wait for it to reach zero.
	liveTasks atomic.Int64

	// Barrier state (sense-reversing, task-executing).
	barGen     atomic.Int64
	barArrived atomic.Int64

	// Worksharing bookkeeping: per-construct-instance state, keyed by
	// each thread's private construct counter (all threads encounter
	// worksharing constructs in the same order, per OpenMP rules).
	wsMu      sync.Mutex
	wsSingles map[int64]bool
	wsLoops   map[int64]*loopState
	wsReduces map[int64]bool

	// panicVal holds the first panic raised by a task or region body;
	// Parallel re-raises it after the region completes.
	panicMu  sync.Mutex
	panicVal any
}

// TeamOpt configures a parallel region.
type TeamOpt func(*teamConfig)

type teamConfig struct {
	cutoff CutoffPolicy
	sched  Scheduler
	rec    *trace.Recorder
}

// WithCutoff installs a runtime cut-off policy (default NoCutoff).
func WithCutoff(p CutoffPolicy) TeamOpt { return func(c *teamConfig) { c.cutoff = p } }

// WithScheduler selects the task scheduler by registry name; the
// empty name selects DefaultScheduler. It panics on an unknown name —
// layers that accept user input validate through NewScheduler (or
// Schedulers) first, so by the time an option list is assembled the
// name is a programming error if invalid. A scheduler instance
// belongs to one region, so the option constructs a fresh one each
// time it is applied: the same TeamOpt value may be reused across
// (even concurrent) Parallel calls.
func WithScheduler(name string) TeamOpt {
	if _, err := NewScheduler(name); err != nil {
		panic(err)
	}
	return func(c *teamConfig) {
		s, err := NewScheduler(name)
		if err != nil {
			panic(err)
		}
		c.sched = s
	}
}

// WithRecorder attaches a task-graph recorder; every task event in
// the region is recorded for later simulation.
func WithRecorder(r *trace.Recorder) TeamOpt { return func(c *teamConfig) { c.rec = r } }

// worker is one team thread.
type worker struct {
	id   int
	team *Team
	cur  *task // task currently executing on this worker

	singleIdx int64 // private counter of single constructs encountered
	loopIdx   int64 // private counter of loop constructs encountered
	reduceIdx int64 // private counter of Reduce constructs encountered

	stats workerStats
}

// Parallel executes body on a team of n threads, each running in its
// own goroutine, with an implicit task-executing barrier at the end
// of the region (the region returns only when every explicit task has
// completed). It returns the region's aggregated runtime statistics.
//
// Nested Parallel calls are not supported (the BOTS benchmarks do not
// use nested parallel regions); use tasks for nested parallelism.
func Parallel(n int, body func(*Context), opts ...TeamOpt) *Stats {
	if n < 1 {
		n = 1
	}
	cfg := teamConfig{cutoff: NoCutoff{}}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.sched == nil {
		s, err := NewScheduler(DefaultScheduler)
		if err != nil {
			panic(err) // the default is registered by this package
		}
		cfg.sched = s
	}
	tm := &Team{
		cutoff:    cfg.cutoff,
		sched:     cfg.sched,
		rec:       cfg.rec,
		wsSingles: make(map[int64]bool),
		wsLoops:   make(map[int64]*loopState),
		wsReduces: make(map[int64]bool),
	}
	tm.sched.Init(n)
	tm.workers = make([]*worker, n)
	implicit := make([]*task, n)
	for i := 0; i < n; i++ {
		tm.workers[i] = &worker{id: i, team: tm}
		it := &task{team: tm, untied: false}
		if tm.rec != nil {
			it.node = tm.rec.Root()
		}
		implicit[i] = it
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := tm.workers[i]
		it := implicit[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.cur = it
			func() {
				defer func() {
					if r := recover(); r != nil {
						tm.recordPanic(r)
					}
				}()
				body(&Context{w: w, task: it})
			}()
			// Join the final barrier even if the body panicked, so
			// the rest of the team is not wedged waiting for us.
			tm.barrier(w)
		}()
	}
	wg.Wait()
	tm.sched.Fini()
	if tm.panicVal != nil {
		panic(tm.panicVal)
	}
	return tm.aggregateStats()
}

// barrier is the team barrier: a scheduling point at which arriving
// workers execute queued tasks (from any queue, unconstrained) until
// every worker has arrived and no live task remains, as OpenMP
// requires of barriers.
func (tm *Team) barrier(w *worker) {
	w.stats.barriers++
	gen := tm.barGen.Load()
	tm.barArrived.Add(1)
	idle := 0
	for tm.barGen.Load() == gen {
		if w.runOne(nil) {
			idle = 0
			continue
		}
		if tm.barArrived.Load() == int64(len(tm.workers)) && tm.liveTasks.Load() == 0 {
			if tm.barArrived.CompareAndSwap(int64(len(tm.workers)), 0) {
				tm.barGen.Add(1)
			}
			continue
		}
		idle++
		if idle == 1 {
			w.stats.idleParks++
		}
		idlePause(idle)
	}
}

// idlePause backs off progressively: spin, yield, then sleep briefly.
func idlePause(n int) {
	switch {
	case n < 4:
		// busy spin
	case n < 64:
		runtime.Gosched()
	default:
		time.Sleep(20 * time.Microsecond)
	}
}

// runOne tries to execute one ready task, honouring the OpenMP task
// scheduling constraint: when constraint is non-nil (a suspended tied
// task), only descendants of that task may run on this thread. It
// returns true if a task was executed.
//
// The pick order is the scheduler's: local area first (priority
// queue, then own queue under the scheduler's discipline), then a
// steal. The runtime only counts — every placement decision lives in
// the Scheduler.
func (w *worker) runOne(constraint *task) bool {
	var pred func(*task) bool
	if constraint != nil {
		pred = func(c *task) bool { return c.isDescendantOf(constraint) }
	}
	sched := w.team.sched
	t := sched.PopLocal(w.id, pred)
	if t == nil && len(w.team.workers) > 1 {
		w.stats.stealAttempts++
		t = sched.Steal(w.id, pred)
		if t == nil {
			w.stats.stealFails++
		}
	}
	if t == nil {
		return false
	}
	w.execute(t, t.parent != nil && t.creator != w)
	return true
}

// execute runs task t to completion on w (tasks never migrate once
// started: tied semantics are the baseline, and untied tasks differ
// only in their scheduling-point flexibility). A panic in the task
// body is contained: completion bookkeeping still runs (so waiters
// and barriers are not wedged), the first panic value is recorded,
// and Parallel re-raises it after the region drains.
func (w *worker) execute(t *task, stolen bool) {
	if stolen {
		w.stats.tasksStolen++
	}
	prev := w.cur
	w.cur = t
	defer func() {
		if r := recover(); r != nil {
			w.team.recordPanic(r)
		}
		t.finish(w)
		w.cur = prev
	}()
	t.body(&Context{w: w, task: t})
}

// recordPanic stores the first panic raised by any task or region
// body of the team.
func (tm *Team) recordPanic(v any) {
	tm.panicMu.Lock()
	if tm.panicVal == nil {
		tm.panicVal = v
	}
	tm.panicMu.Unlock()
}
