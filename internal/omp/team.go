package omp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bots/internal/trace"
)

// Policy selects the order in which a worker consumes its own deque.
type Policy uint8

const (
	// WorkFirst pops the worker's own deque LIFO (depth-first), the
	// classic work-stealing discipline: thieves still steal FIFO from
	// the top, taking the shallowest (largest) subtrees.
	WorkFirst Policy = iota
	// BreadthFirst consumes the worker's own deque FIFO as well, so
	// tasks execute roughly in creation order.
	BreadthFirst
)

func (p Policy) String() string {
	switch p {
	case WorkFirst:
		return "work-first"
	case BreadthFirst:
		return "breadth-first"
	}
	return "unknown"
}

// Team is one parallel region's thread team: a set of workers with
// work-stealing deques executing an SPMD region body plus the
// explicit tasks it creates.
type Team struct {
	workers []*worker
	cutoff  CutoffPolicy
	policy  Policy
	rec     *trace.Recorder

	// liveTasks counts deferred tasks created and not yet finished;
	// barriers wait for it to reach zero.
	liveTasks atomic.Int64

	// Barrier state (sense-reversing, task-executing).
	barGen     atomic.Int64
	barArrived atomic.Int64

	// Worksharing bookkeeping: per-construct-instance state, keyed by
	// each thread's private construct counter (all threads encounter
	// worksharing constructs in the same order, per OpenMP rules).
	wsMu      sync.Mutex
	wsSingles map[int64]bool
	wsLoops   map[int64]*loopState
	wsReduces map[int64]bool

	// panicVal holds the first panic raised by a task or region body;
	// Parallel re-raises it after the region completes.
	panicMu  sync.Mutex
	panicVal any
}

// TeamOpt configures a parallel region.
type TeamOpt func(*teamConfig)

type teamConfig struct {
	cutoff CutoffPolicy
	policy Policy
	rec    *trace.Recorder
}

// WithCutoff installs a runtime cut-off policy (default NoCutoff).
func WithCutoff(p CutoffPolicy) TeamOpt { return func(c *teamConfig) { c.cutoff = p } }

// WithPolicy selects the local scheduling policy (default WorkFirst).
func WithPolicy(p Policy) TeamOpt { return func(c *teamConfig) { c.policy = p } }

// WithRecorder attaches a task-graph recorder; every task event in
// the region is recorded for later simulation.
func WithRecorder(r *trace.Recorder) TeamOpt { return func(c *teamConfig) { c.rec = r } }

// worker is one team thread.
type worker struct {
	id   int
	team *Team
	dq   *deque
	pq   *prioQueue // ready tasks with non-zero priority
	cur  *task      // task currently executing on this worker

	singleIdx int64 // private counter of single constructs encountered
	loopIdx   int64 // private counter of loop constructs encountered
	reduceIdx int64 // private counter of Reduce constructs encountered

	rng   uint64 // victim-selection PRNG state
	stats workerStats
}

// Parallel executes body on a team of n threads, each running in its
// own goroutine, with an implicit task-executing barrier at the end
// of the region (the region returns only when every explicit task has
// completed). It returns the region's aggregated runtime statistics.
//
// Nested Parallel calls are not supported (the BOTS benchmarks do not
// use nested parallel regions); use tasks for nested parallelism.
func Parallel(n int, body func(*Context), opts ...TeamOpt) *Stats {
	if n < 1 {
		n = 1
	}
	cfg := teamConfig{cutoff: NoCutoff{}, policy: WorkFirst}
	for _, o := range opts {
		o(&cfg)
	}
	tm := &Team{
		cutoff:    cfg.cutoff,
		policy:    cfg.policy,
		rec:       cfg.rec,
		wsSingles: make(map[int64]bool),
		wsLoops:   make(map[int64]*loopState),
		wsReduces: make(map[int64]bool),
	}
	tm.workers = make([]*worker, n)
	implicit := make([]*task, n)
	for i := 0; i < n; i++ {
		tm.workers[i] = &worker{id: i, team: tm, dq: newDeque(), pq: &prioQueue{}, rng: uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
		it := &task{team: tm, untied: false}
		if tm.rec != nil {
			it.node = tm.rec.Root()
		}
		implicit[i] = it
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := tm.workers[i]
		it := implicit[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.cur = it
			func() {
				defer func() {
					if r := recover(); r != nil {
						tm.recordPanic(r)
					}
				}()
				body(&Context{w: w, task: it})
			}()
			// Join the final barrier even if the body panicked, so
			// the rest of the team is not wedged waiting for us.
			tm.barrier(w)
		}()
	}
	wg.Wait()
	if tm.panicVal != nil {
		panic(tm.panicVal)
	}
	return tm.aggregateStats()
}

// barrier is the team barrier: a scheduling point at which arriving
// workers execute queued tasks (from any deque, unconstrained) until
// every worker has arrived and no live task remains, as OpenMP
// requires of barriers.
func (tm *Team) barrier(w *worker) {
	w.stats.barriers++
	gen := tm.barGen.Load()
	tm.barArrived.Add(1)
	idle := 0
	for tm.barGen.Load() == gen {
		if w.runOne(nil) {
			idle = 0
			continue
		}
		if tm.barArrived.Load() == int64(len(tm.workers)) && tm.liveTasks.Load() == 0 {
			if tm.barArrived.CompareAndSwap(int64(len(tm.workers)), 0) {
				tm.barGen.Add(1)
			}
			continue
		}
		idle++
		idlePause(idle)
	}
}

// idlePause backs off progressively: spin, yield, then sleep briefly.
func idlePause(n int) {
	switch {
	case n < 4:
		// busy spin
	case n < 64:
		runtime.Gosched()
	default:
		time.Sleep(20 * time.Microsecond)
	}
}

// runOne tries to execute one ready task, honouring the OpenMP task
// scheduling constraint: when constraint is non-nil (a suspended tied
// task), only descendants of that task may run on this thread. It
// returns true if a task was executed.
func (w *worker) runOne(constraint *task) bool {
	var pred func(*task) bool
	if constraint != nil {
		pred = func(c *task) bool { return c.isDescendantOf(constraint) }
	}
	// 0. Own priority queue: prioritized tasks run before anything in
	// the regular deque.
	if t := w.pq.take(pred); t != nil {
		w.execute(t, t.parent != nil && t.creator != w)
		return true
	}
	// 1. Own deque. A constrained (tied) waiter must use the LIFO
	// bottom end regardless of policy: its own unstarted children are
	// always the most recent pushes, so this is the only end where
	// progress toward the taskwait is guaranteed — with FIFO
	// consumption they could sit buried behind non-descendants and
	// every worker could park with runnable children queued.
	var t *task
	if w.team.policy == BreadthFirst && constraint == nil {
		t = w.dq.steal() // FIFO end of own deque
	} else {
		t = w.dq.popBottom()
		if t != nil && constraint != nil && !t.isDescendantOf(constraint) {
			// Cannot run it here now; put it back for thieves and park.
			w.dq.pushBottom(t)
			t = nil
		}
	}
	if t != nil {
		w.execute(t, t.parent != nil && t.creator != w)
		return true
	}
	// 2. Steal from a random victim, then sweep the rest; victims'
	// priority queues are raided before their deques.
	n := len(w.team.workers)
	if n == 1 {
		return false
	}
	start := int(w.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		v := w.team.workers[(start+i)%n]
		if v == w {
			continue
		}
		if t := v.pq.take(pred); t != nil {
			w.execute(t, true)
			return true
		}
		if t := v.dq.stealIf(pred); t != nil {
			w.execute(t, true)
			return true
		}
	}
	return false
}

// execute runs task t to completion on w (tasks never migrate once
// started: tied semantics are the baseline, and untied tasks differ
// only in their scheduling-point flexibility). A panic in the task
// body is contained: completion bookkeeping still runs (so waiters
// and barriers are not wedged), the first panic value is recorded,
// and Parallel re-raises it after the region drains.
func (w *worker) execute(t *task, stolen bool) {
	if stolen {
		w.stats.tasksStolen++
	}
	prev := w.cur
	w.cur = t
	defer func() {
		if r := recover(); r != nil {
			w.team.recordPanic(r)
		}
		t.finish(w)
		w.cur = prev
	}()
	t.body(&Context{w: w, task: t})
}

// recordPanic stores the first panic raised by any task or region
// body of the team.
func (tm *Team) recordPanic(v any) {
	tm.panicMu.Lock()
	if tm.panicVal == nil {
		tm.panicVal = v
	}
	tm.panicMu.Unlock()
}

// nextRand is xorshift64* for victim selection.
func (w *worker) nextRand() uint64 {
	x := w.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	w.rng = x
	return x * 0x2545f4914f6cdd1d
}
