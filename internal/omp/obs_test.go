package omp

import (
	"strings"
	"testing"
	"time"

	"bots/internal/obs"
)

// spawnTree submits a small task tree: root spawns fan children, each
// recording a unit of work, then taskwaits.
func spawnTree(fan int) func(*Context) {
	return func(c *Context) {
		for i := 0; i < fan; i++ {
			c.Task(func(c *Context) { c.AddWork(1) })
		}
		c.Taskwait()
	}
}

// TestPersistentTeamRegisterObs: a registered team renders live
// gauges and monotone counters, and scraping stays safe after Close.
func TestPersistentTeamRegisterObs(t *testing.T) {
	pt := NewPersistentTeam(2)
	reg := obs.NewRegistry()
	pt.RegisterObs(reg, obs.Label{Name: "team", Value: "t0"})

	for i := 0; i < 8; i++ {
		pt.SubmitWait(spawnTree(16))
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`bots_team_workers{team="t0"} 2`,
		`bots_team_queued_tasks{team="t0",worker="0"}`,
		`bots_team_queued_tasks{team="t0",worker="1"}`,
		`bots_team_live_tasks{team="t0"}`,
		`bots_team_parked_workers{team="t0"}`,
		"# TYPE bots_team_tasks_created_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(out, `bots_team_tasks_created_total{team="t0"} 128`) {
		t.Errorf("tasks_created counter wrong in:\n%s", out)
	}

	pt.Close()
	// Post-Close scrape: accessors return zeros, no panic, no race
	// into freed scheduler state.
	b.Reset()
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `bots_team_live_tasks{team="t0"} 0`) {
		t.Errorf("post-Close live_tasks not zero:\n%s", b.String())
	}
	if pt.Queued(0) != 0 || pt.LiveTasks() != 0 || pt.ParkedWorkers() != 0 || pt.InflightSubmissions() != 0 {
		t.Errorf("post-Close accessors not zero")
	}
}

// TestFlightRecorderPersistentTeam: an enabled recorder captures the
// submit/spawn/finish timeline of real submissions.
func TestFlightRecorderPersistentTeam(t *testing.T) {
	fr := obs.NewFlightRecorder(2, 1024)
	pt := NewPersistentTeam(2, WithFlightRecorder(fr))
	for i := 0; i < 4; i++ {
		pt.SubmitWait(spawnTree(8))
	}
	pt.Close()

	var spawns, finishes, submits int
	for _, ev := range fr.Snapshot() {
		switch ev.Kind {
		case obs.EvSpawn:
			spawns++
		case obs.EvFinish:
			finishes++
		case obs.EvSubmit:
			submits++
			if ev.Worker != -1 {
				t.Errorf("submit event on worker ring %d", ev.Worker)
			}
		}
	}
	if submits != 4 {
		t.Errorf("submits = %d, want 4", submits)
	}
	// 4 submissions × (1 root + 8 children) finish events; spawn
	// events only for tasks that were actually deferred (≤ 32).
	if finishes != 4*9 {
		t.Errorf("finishes = %d, want 36", finishes)
	}
	if spawns > 32 {
		t.Errorf("spawns = %d, want ≤ 32", spawns)
	}
}

// TestFlightRecorderParallel: WithFlightRecorder also works on plain
// Parallel regions.
func TestFlightRecorderParallel(t *testing.T) {
	fr := obs.NewFlightRecorder(2, 256)
	Parallel(2, func(c *Context) {
		c.Single(func(c *Context) {
			for i := 0; i < 8; i++ {
				c.Task(func(c *Context) { c.AddWork(1) })
			}
			c.Taskwait()
		})
	}, WithFlightRecorder(fr))
	var finishes int
	for _, ev := range fr.Snapshot() {
		if ev.Kind == obs.EvFinish {
			finishes++
		}
	}
	if finishes != 8 {
		t.Errorf("finishes = %d, want 8", finishes)
	}
}

// TestStallDetector wedges a team artificially — inflating liveTasks
// so the workers park with "work outstanding" that never arrives —
// and checks the detector fires and the flight-recorder dump ends in
// the parked workers' park events.
func TestStallDetector(t *testing.T) {
	const workers = 2
	fr := obs.NewFlightRecorder(workers, 256)
	pt := NewPersistentTeam(workers, WithFlightRecorder(fr))

	// Run something first so the timeline is non-trivial.
	pt.SubmitWait(spawnTree(4))

	// Wedge: claim a live task exists, then wake the (already idle)
	// workers so they re-check, find nothing runnable, and park again
	// observing the wedge. liveTasks>0 with all workers parked is
	// exactly the stall signature.
	pt.tm.liveTasks.Add(1)
	pt.tm.ringAll()
	wedgedPark := func() bool {
		if pt.ParkedWorkers() != workers {
			return false
		}
		last := map[int]obs.Event{}
		for _, ev := range fr.Snapshot() {
			if ev.Worker >= 0 {
				last[ev.Worker] = ev
			}
		}
		for w := 0; w < workers; w++ {
			if ev, ok := last[w]; !ok || ev.Kind != obs.EvPark || ev.Arg <= 0 {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(5 * time.Second)
	for !wedgedPark() {
		if time.Now().After(deadline) {
			t.Fatal("workers never re-parked under the wedge")
		}
		time.Sleep(time.Millisecond)
	}

	fired := make(chan struct{}, 1)
	stop := pt.StartStallMonitor(20*time.Millisecond, 5*time.Millisecond, func() {
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("stall detector did not fire")
	}
	stop()

	// The dump's last event per parked worker must be its park.
	last := map[int]obs.Event{}
	for _, ev := range fr.Snapshot() {
		if ev.Worker >= 0 {
			last[ev.Worker] = ev // snapshot is time-sorted
		}
	}
	for w := 0; w < workers; w++ {
		ev, ok := last[w]
		if !ok {
			t.Errorf("worker %d has no events", w)
			continue
		}
		if ev.Kind != obs.EvPark {
			t.Errorf("worker %d last event = %v, want park", w, ev.Kind)
		}
		if ev.Arg <= 0 {
			t.Errorf("worker %d park event live-task arg = %d, want > 0", w, ev.Arg)
		}
	}

	// Unwedge and shut down cleanly.
	pt.tm.liveTasks.Add(-1)
	pt.Close()
}

// TestStallDetectorQuietTeam: no fire on a healthy idle team (parked
// workers with zero live tasks is normal idleness, not a stall).
func TestStallDetectorQuietTeam(t *testing.T) {
	pt := NewPersistentTeam(2)
	defer pt.Close()
	pt.SubmitWait(spawnTree(4))
	fired := make(chan struct{}, 1)
	stop := pt.StartStallMonitor(10*time.Millisecond, 2*time.Millisecond, func() {
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	defer stop()
	select {
	case <-fired:
		t.Fatal("detector fired on idle team")
	case <-time.After(100 * time.Millisecond):
	}
}
