package omp

// TaskloopOpt configures a Taskloop construct.
type TaskloopOpt func(*taskloopConfig)

type taskloopConfig struct {
	grainsize int
	numTasks  int
	untied    bool
	nogroup   bool
}

// Grainsize sets the iterations-per-task chunk (OpenMP grainsize
// clause). Mutually exclusive with NumTasks; the last one set wins.
func Grainsize(n int) TaskloopOpt {
	return func(c *taskloopConfig) { c.grainsize = n; c.numTasks = 0 }
}

// NumTasks sets the number of generated tasks (OpenMP num_tasks
// clause).
func NumTasks(n int) TaskloopOpt {
	return func(c *taskloopConfig) { c.numTasks = n; c.grainsize = 0 }
}

// TaskloopUntied makes the generated tasks untied.
func TaskloopUntied() TaskloopOpt { return func(c *taskloopConfig) { c.untied = true } }

// Nogroup removes the implicit taskgroup: Taskloop returns without
// waiting for the generated tasks.
func Nogroup() TaskloopOpt { return func(c *taskloopConfig) { c.nogroup = true } }

// Taskloop executes body(c, i) for every i in [lo, hi) by splitting
// the iteration space into chunks and creating one explicit task per
// chunk (the OpenMP 4.5 taskloop construct — the standardized form of
// the "tasks inside a loop" pattern BOTS Alignment and SparseLU hand
// roll). Unless Nogroup is given, Taskloop waits for all generated
// tasks (and their descendants) before returning, per the implicit
// taskgroup of the construct.
//
// Unlike For, Taskloop is not a worksharing construct: exactly one
// thread encounters it (typically inside Single) and the runtime
// spreads the chunks through the task pool.
func (c *Context) Taskloop(lo, hi int, body func(*Context, int), opts ...TaskloopOpt) {
	cfg := taskloopConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	total := hi - lo
	if total <= 0 {
		return
	}
	chunk := cfg.grainsize
	if cfg.numTasks > 0 {
		chunk = (total + cfg.numTasks - 1) / cfg.numTasks
	}
	if chunk <= 0 {
		// Default: aim for a few chunks per thread.
		chunk = total / (4 * c.NumThreads())
		if chunk < 1 {
			chunk = 1
		}
	}
	var topts []TaskOpt
	if cfg.untied {
		topts = append(topts, Untied())
	}
	emit := func(c *Context) {
		for base := lo; base < hi; base += chunk {
			base := base
			end := base + chunk
			if end > hi {
				end = hi
			}
			c.Task(func(c *Context) {
				for i := base; i < end; i++ {
					body(c, i)
				}
			}, topts...)
		}
	}
	if cfg.nogroup {
		emit(c)
		return
	}
	c.Taskgroup(emit)
}
